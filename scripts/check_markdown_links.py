#!/usr/bin/env python3
"""Markdown link lint for the docs tree.

Checks every inline link ``[text](target)`` in the given markdown files:

* relative file targets must exist on disk (relative to the linking file);
* ``file.md#anchor`` / ``#anchor`` fragments must match a heading in the
  target file (GitHub slug rules: lowercase, punctuation stripped, spaces
  to dashes);
* ``http(s)://`` / ``mailto:`` targets are skipped — CI must not depend on
  the network.

Exits non-zero listing every broken link. Run locally as:

    python3 scripts/check_markdown_links.py README.md docs/*.md
"""

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"^```.*?^```", re.MULTILINE | re.DOTALL)


def slugify(heading: str) -> str:
    """GitHub-style anchor slug for a heading line."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def anchors_of(path: Path, cache: dict) -> set:
    if path not in cache:
        body = CODE_FENCE_RE.sub("", path.read_text(encoding="utf-8"))
        cache[path] = {slugify(h) for h in HEADING_RE.findall(body)}
    return cache[path]


def check_file(path: Path, cache: dict) -> list:
    errors = []
    body = CODE_FENCE_RE.sub("", path.read_text(encoding="utf-8"))
    for target in LINK_RE.findall(body):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        file_part, _, anchor = target.partition("#")
        dest = (path.parent / file_part).resolve() if file_part else path
        if not dest.exists():
            errors.append(f"{path}: broken link target '{target}'")
            continue
        if anchor and dest.suffix == ".md":
            if anchor not in anchors_of(dest, cache):
                errors.append(f"{path}: no heading for anchor '{target}'")
    return errors


def main(argv: list) -> int:
    if not argv:
        print("usage: check_markdown_links.py FILE.md [FILE.md ...]")
        return 2
    cache = {}
    errors = []
    for name in argv:
        errors += check_file(Path(name), cache)
    for e in errors:
        print(e)
    print(f"checked {len(argv)} files: "
          f"{'OK' if not errors else f'{len(errors)} broken links'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
