// Tests for the zero-copy data plane (docs/PERFORMANCE.md): the pooled
// refcounted rt::Buffer (bucket reuse, adopt semantics, refcount release
// across rank threads — the latter is what the TSan CI job watches),
// O(1)-deep-copy shared-payload collectives, and arrival-order schedule
// draining under seeded delay/reorder fault plans.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "rt/buffer.hpp"
#include "rt/runtime.hpp"
#include "sched/executor.hpp"
#include "trace/trace.hpp"

namespace dad = mxn::dad;
namespace rt = mxn::rt;
namespace sched = mxn::sched;
namespace trace = mxn::trace;
using dad::AxisDist;
using dad::Index;
using dad::Point;

namespace {

std::uint64_t copied() { return trace::counter("rt.bytes_copied").value(); }
std::uint64_t pool_hits() { return trace::counter("rt.pool.hit").value(); }

}  // namespace

// ---------------------------------------------------------------------------
// Buffer + pool mechanics
// ---------------------------------------------------------------------------

TEST(Buffer, NullBufferIsEmpty) {
  rt::Buffer b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.data(), nullptr);
  EXPECT_EQ(b.use_count(), 0);
  EXPECT_FALSE(b.unique());
}

TEST(Buffer, AllocateIsUniqueAndWritable) {
  auto b = rt::Buffer::allocate(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_TRUE(b.unique());
  std::memset(b.mutable_data(), 0x5a, b.size());
  EXPECT_EQ(static_cast<unsigned char>(b.span()[99]), 0x5au);
}

TEST(Buffer, AdoptingAVectorPreservesItsStorage) {
  std::vector<std::byte> v(1000, std::byte{7});
  const std::byte* storage = v.data();
  const auto before = copied();
  rt::Buffer b(std::move(v));
  EXPECT_EQ(b.data(), storage);  // zero copy: same heap block
  EXPECT_EQ(copied(), before);   // and nothing counted
  EXPECT_EQ(b.size(), 1000u);
}

TEST(Buffer, CopyOfCountsTheCopy) {
  std::vector<std::byte> v(512, std::byte{3});
  const auto before = copied();
  auto b = rt::Buffer::copy_of(v);
  EXPECT_EQ(copied(), before + 512);
  EXPECT_NE(b.data(), v.data());
  EXPECT_TRUE(std::memcmp(b.data(), v.data(), 512) == 0);
}

TEST(Buffer, RefcountSharingAndRelease) {
  auto a = rt::Buffer::allocate(64);
  rt::Buffer b = a;  // share
  EXPECT_EQ(a.use_count(), 2);
  EXPECT_EQ(b.data(), a.data());
  EXPECT_FALSE(a.unique());
  EXPECT_THROW((void)a.mutable_data(), rt::UsageError);
  b.reset();
  EXPECT_TRUE(a.unique());
  EXPECT_NO_THROW((void)a.mutable_data());
}

TEST(Buffer, PoolReusesBucketBlocks) {
  rt::buffer_pool_trim();
  const std::byte* first;
  {
    auto b = rt::Buffer::allocate(1000);  // 1 KiB bucket
    first = b.data();
  }  // released to the freelist
  const auto hits_before = pool_hits();
  auto b2 = rt::Buffer::allocate(900);  // same bucket, different size
  EXPECT_EQ(b2.data(), first);          // the very block came back
  EXPECT_EQ(b2.size(), 900u);
  EXPECT_EQ(pool_hits(), hits_before + 1);
}

TEST(Buffer, FreelistIsCapped) {
  rt::buffer_pool_trim();
  std::vector<rt::Buffer> live;
  for (int i = 0; i < 48; ++i) live.push_back(rt::Buffer::allocate(256));
  live.clear();  // all released at once; cap is 32 per bucket
  EXPECT_LE(rt::buffer_pool_stats().free_blocks, 32);
}

TEST(Buffer, OversizeAllocationsAreUnpooled) {
  rt::buffer_pool_trim();
  {
    auto jumbo = rt::Buffer::allocate((std::size_t{1} << 24) + 1);
    (void)jumbo;
  }
  EXPECT_EQ(rt::buffer_pool_stats().free_blocks, 0);  // not parked
}

TEST(Buffer, ViewChecksSizeAndTruncateRequiresSoleOwner) {
  auto b = rt::Buffer::allocate(24);
  EXPECT_EQ(b.view<double>().size(), 3u);
  EXPECT_THROW((void)rt::Buffer::allocate(25).view<double>(), rt::UsageError);
  b.truncate(16);
  EXPECT_EQ(b.size(), 16u);
  EXPECT_THROW(b.truncate(17), rt::UsageError);
  rt::Buffer shared = b;
  (void)shared;
  EXPECT_THROW(b.truncate(8), rt::UsageError);
}

TEST(Buffer, ToVectorIsACountedDeepCopy) {
  auto b = rt::Buffer::allocate(128);
  std::memset(b.mutable_data(), 0x11, 128);
  const auto before = copied();
  auto v = b.to_vector();
  EXPECT_EQ(copied(), before + 128);
  EXPECT_EQ(v.size(), 128u);
  EXPECT_NE(reinterpret_cast<const std::byte*>(v.data()), b.data());
}

// Blocks allocated on one rank thread are routinely released on another
// (receiver drops the payload) and then recycled by a third. TSan watches
// the refcount release and freelist handoff here.
TEST(Buffer, CrossThreadFreeAndRealloc) {
  rt::spawn(4, [](rt::Communicator& comm) {
    const int n = comm.size();
    for (int round = 0; round < 50; ++round) {
      auto b = rt::Buffer::allocate(4096);
      auto* p = reinterpret_cast<int*>(b.mutable_data());
      p[0] = comm.rank() * 1000 + round;
      comm.send((comm.rank() + 1) % n, 5, std::move(b));
      auto m = comm.recv((comm.rank() + n - 1) % n, 5);
      ASSERT_EQ(m.payload.view<int>()[0],
                ((comm.rank() + n - 1) % n) * 1000 + round);
    }
  });
}

// ---------------------------------------------------------------------------
// Move-through messaging and shared-payload collectives
// ---------------------------------------------------------------------------

TEST(ZeroCopy, SendMovesTheBlockToTheReceiver) {
  rt::spawn(2, [](rt::Communicator& comm) {
    if (comm.rank() == 0) {
      auto b = rt::Buffer::allocate(256);
      const std::byte* block = b.data();
      std::memset(b.mutable_data(), 0x42, 256);
      const auto before = copied();
      comm.send(1, 3, std::move(b));
      EXPECT_EQ(copied(), before);  // the send itself copied nothing
      comm.send_value(1, 4, reinterpret_cast<std::uintptr_t>(block));
    } else {
      auto m = comm.recv(0, 3);
      const auto block = comm.recv_value<std::uintptr_t>(0, 4);
      // Same heap block end to end: producer's pack is the only copy ever.
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(m.payload.data()), block);
      EXPECT_EQ(static_cast<unsigned char>(m.payload.span()[255]), 0x42u);
    }
  });
}

// A bcast of a >1 MiB payload to 7 destinations must perform ZERO deep
// copies: every mailbox holds a reference to the root's block.
TEST(ZeroCopy, BcastSharesOnePayloadAcrossDestinations) {
  static constexpr std::size_t kBytes = 2 << 20;  // 2 MiB
  const auto before = copied();
  rt::spawn(8, [](rt::Communicator& comm) {
    rt::Buffer payload;
    if (comm.rank() == 0) {
      payload = rt::Buffer::allocate(kBytes);
      auto* p = reinterpret_cast<std::uint32_t*>(payload.mutable_data());
      for (std::size_t i = 0; i < kBytes / 4; ++i)
        p[i] = static_cast<std::uint32_t>(i);
    }
    auto got = comm.bcast(std::move(payload), 0);
    ASSERT_EQ(got.size(), kBytes);
    const auto words = got.view<std::uint32_t>();
    EXPECT_EQ(words[1], 1u);
    EXPECT_EQ(words[kBytes / 4 - 1], kBytes / 4 - 1);
    comm.barrier();
  });
  EXPECT_EQ(copied(), before) << "bcast deep-copied a shared payload";
}

// alltoall(v) where one rank fans the SAME >1 MiB block to every peer:
// O(1) deep copies (zero, in fact) regardless of the fan-out width.
TEST(ZeroCopy, AlltoallSharedPayloadIsNotDeepCopied) {
  static constexpr std::size_t kBytes = (1 << 20) + 512;  // > 1 MiB, odd size
  const auto before = copied();
  rt::spawn(4, [](rt::Communicator& comm) {
    auto block = rt::Buffer::allocate(kBytes);
    std::memset(block.mutable_data(), 0x80 + comm.rank(), kBytes);
    // Every outgoing entry references the same block.
    std::vector<rt::Buffer> out(comm.size(), block);
    auto in = comm.alltoall(std::move(out));
    for (int s = 0; s < comm.size(); ++s) {
      ASSERT_EQ(in[s].size(), kBytes);
      EXPECT_EQ(static_cast<unsigned char>(in[s].span()[kBytes - 1]),
                0x80u + s);
    }
    comm.barrier();
  });
  EXPECT_EQ(copied(), before) << "alltoall deep-copied shared payloads";
}

// ---------------------------------------------------------------------------
// Arrival-order schedule draining
// ---------------------------------------------------------------------------

namespace {

double tagged(const Point& p) { return 1000.0 * p[0] + p[1] + 0.25; }

/// 8x3 redistribution where each source sleeps a rank-staggered amount so
/// payloads arrive in an order unlike the schedule's peer order; the result
/// must still be exact. `plan` optionally adds seeded chaos on top.
void run_staggered_redistribution(std::optional<rt::FaultPlan> plan,
                                  bool stagger) {
  auto src = dad::make_regular(std::vector<AxisDist>{
      AxisDist::block(24, 8), AxisDist::block(12, 1)});
  auto dst = dad::make_regular(std::vector<AxisDist>{
      AxisDist::block(24, 1), AxisDist::block(12, 3)});
  const int m = 8, n = 3;
  rt::SpawnOptions opts;
  opts.deadlock_timeout_ms = 20000;
  opts.faults = plan;
  rt::spawn(m + n, [&](rt::Communicator& world) {
    auto c = sched::split_coupling(world, m, n);
    const int ms = c.my_src_rank();
    const int md = c.my_dst_rank();
    std::unique_ptr<dad::DistArray<double>> a, b;
    if (ms >= 0) {
      a = std::make_unique<dad::DistArray<double>>(src, ms);
      a->fill(tagged);
      // Later schedule peers send FIRST: reverse-staggered sleeps.
      if (stagger)
        std::this_thread::sleep_for(
            std::chrono::milliseconds(5 * (m - ms)));
    }
    if (md >= 0) b = std::make_unique<dad::DistArray<double>>(dst, md);
    auto s = sched::build_region_schedule(*src, *dst, ms, md);
    sched::execute<double>(s, a.get(), b.get(), c, 7);
    if (md >= 0)
      b->for_each_owned([&](const Point& p, const double& v) {
        ASSERT_DOUBLE_EQ(v, tagged(p)) << "at " << p[0] << "," << p[1];
      });
  }, opts);
}

}  // namespace

TEST(ArrivalOrder, StaggeredSendersStillYieldExactResult) {
  run_staggered_redistribution(std::nullopt, /*stagger=*/true);
}

TEST(ArrivalOrder, SeededDelayPlanStillYieldsExactResult) {
  // Half the data messages delay their sender by 10 ms (deterministic in
  // the seed), scrambling arrival order relative to schedule order.
  run_staggered_redistribution(
      rt::FaultPlan{.seed = 99, .delay = 0.5, .delay_ms = 10},
      /*stagger=*/false);
}

TEST(ArrivalOrder, SeededReorderPlanStillYieldsExactResult) {
  run_staggered_redistribution(
      rt::FaultPlan{.seed = 1234, .reorder = 0.75}, /*stagger=*/false);
}

// Back-to-back transfers on the SAME tag: a fast peer's payload for
// transfer k+1 queues while transfer k is still draining. The owed-peer
// predicate must leave it queued for the next round — a bare any-source
// receive would consume it and corrupt both transfers.
TEST(ArrivalOrder, BackToBackTransfersOnOneTagStayAligned) {
  auto src = dad::make_regular(std::vector<AxisDist>{AxisDist::block(40, 4)});
  auto dst = dad::make_regular(std::vector<AxisDist>{AxisDist::block(40, 2)});
  const int m = 4, n = 2;
  rt::spawn(m + n, [&](rt::Communicator& world) {
    auto c = sched::split_coupling(world, m, n);
    const int ms = c.my_src_rank();
    const int md = c.my_dst_rank();
    std::unique_ptr<dad::DistArray<double>> a, b;
    if (ms >= 0) a = std::make_unique<dad::DistArray<double>>(src, ms);
    if (md >= 0) b = std::make_unique<dad::DistArray<double>>(dst, md);
    auto s = sched::build_region_schedule(*src, *dst, ms, md);
    for (int round = 0; round < 6; ++round) {
      if (ms >= 0) {
        a->fill([&](const Point& p) { return 100.0 * round + p[0]; });
        // Sources race ahead at wildly different speeds.
        std::this_thread::sleep_for(std::chrono::milliseconds(3 * ms));
      }
      sched::execute<double>(s, a.get(), b.get(), c, 7);
      if (md >= 0)
        b->for_each_owned([&](const Point& p, const double& v) {
          ASSERT_DOUBLE_EQ(v, 100.0 * round + p[0])
              << "round " << round << " at " << p[0];
        });
    }
  });
}
