// Tests for the DRI module (§5 related work: the Data Reorganization
// Interface as "a specialized and low-level DAD and M×N component") and for
// HPF-style array-to-template alignment (§2.2.2).

#include <gtest/gtest.h>

#include <complex>
#include <memory>

#include "dad/alignment.hpp"
#include "dri/dri.hpp"
#include "rt/runtime.hpp"
#include "sched/cache.hpp"
#include "sched/executor.hpp"

namespace dri = mxn::dri;
namespace dad = mxn::dad;
namespace sched = mxn::sched;
namespace rt = mxn::rt;
using dad::AxisDist;
using dad::Point;

// ---------------------------------------------------------------------------
// DRI
// ---------------------------------------------------------------------------

TEST(Dri, TypeWidths) {
  EXPECT_EQ(dri::type_width(dri::DataType::Float), 4u);
  EXPECT_EQ(dri::type_width(dri::DataType::ComplexDouble), 16u);
  EXPECT_EQ(dri::type_width(dri::DataType::Short), 2u);
  EXPECT_EQ(dri::type_width(dri::DataType::Byte), 1u);
}

TEST(Dri, DistributionValidation) {
  EXPECT_THROW(dri::Distribution(dri::DataType::Float, {},
                                 {}),
               rt::UsageError);
  EXPECT_THROW(dri::Distribution(dri::DataType::Float, {4, 4, 4, 4},
                                 {dri::Partition::block_over(1),
                                  dri::Partition::block_over(1),
                                  dri::Partition::block_over(1),
                                  dri::Partition::block_over(1)}),
               rt::UsageError)
      << "DRI datasets are limited to three dimensions";
  EXPECT_THROW(dri::Distribution(dri::DataType::Float, {8, 8},
                                 {dri::Partition::block_over(2)}),
               rt::UsageError);
}

TEST(Dri, ReorgRequiresMatchingTypesAndExtents) {
  rt::spawn(2, [](rt::Communicator& world) {
    dri::Distribution a(dri::DataType::Float, {8},
                        {dri::Partition::block_over(2)});
    dri::Distribution b(dri::DataType::Double, {8},
                        {dri::Partition::block_over(2)});
    dri::Distribution c(dri::DataType::Float, {9},
                        {dri::Partition::block_over(2)});
    EXPECT_THROW(dri::Reorg(world, a, b, 3), rt::UsageError);
    EXPECT_THROW(dri::Reorg(world, a, c, 3), rt::UsageError);
  });
}

namespace {

/// Full reorganization between 2-producer / 2-consumer distributions of a
/// 2-D complex<float> dataset, driven with the given chunk size.
void run_reorg(std::size_t chunk_bytes) {
  using cfloat = std::complex<float>;
  rt::spawn(4, [&](rt::Communicator& world) {
    dri::Distribution src(dri::DataType::ComplexFloat, {8, 6},
                          {dri::Partition::block_over(2),
                           dri::Partition::collapsed()});
    dri::Distribution dst(dri::DataType::ComplexFloat, {8, 6},
                          {dri::Partition::collapsed(),
                           dri::Partition::cyclic_over(2)});
    dri::Reorg reorg(world, src, dst, 9);

    // Roles: ranks 0,1 source; ranks 2,3 destination.
    std::vector<cfloat> sbuf, dbuf;
    const int me = world.rank();
    if (me < 2) {
      sbuf.resize(static_cast<std::size_t>(src.local_count(me)));
      // Fill by global coordinates through the descriptor.
      const auto& d = *src.descriptor();
      for (std::size_t l = 0; l < sbuf.size(); ++l) {
        const auto p = d.local_to_global(me, static_cast<dad::Index>(l));
        sbuf[l] = cfloat(float(p[0]), float(p[1]));
      }
    }
    if (me >= 2) dbuf.resize(static_cast<std::size_t>(dst.local_count(me - 2)));

    int steps = 0;
    while (reorg.step(std::as_bytes(std::span<const cfloat>(sbuf)),
                      std::as_writable_bytes(std::span<cfloat>(dbuf)),
                      chunk_bytes))
      ++steps;
    EXPECT_TRUE(reorg.complete());
    if (chunk_bytes < 64) {
      EXPECT_GT(steps, 0);
    }

    if (me >= 2) {
      const auto& d = *dst.descriptor();
      for (std::size_t l = 0; l < dbuf.size(); ++l) {
        const auto p = d.local_to_global(me - 2, static_cast<dad::Index>(l));
        EXPECT_EQ(dbuf[l], cfloat(float(p[0]), float(p[1])));
      }
    }
  });
}

}  // namespace

TEST(Dri, ReorgMovesEverythingAtOnce) { run_reorg(SIZE_MAX); }

TEST(Dri, ChunkedGetPutLoopCompletes) {
  // The DRI model: "the user provides send and receive buffers and
  // repeatedly calls DRI get/put operations until the operation is
  // complete." 48-byte chunks force many rounds.
  run_reorg(48);
}

TEST(Dri, ReorgPlanIsReusableAfterReset) {
  rt::spawn(2, [](rt::Communicator& world) {
    dri::Distribution src(dri::DataType::Integer, {10},
                          {dri::Partition::block_over(2)});
    dri::Distribution dst(dri::DataType::Integer, {10},
                          {dri::Partition::cyclic_over(2)});
    dri::Reorg reorg(world, src, dst, 21);
    for (int round = 0; round < 3; ++round) {
      std::vector<std::int32_t> sbuf(
          static_cast<std::size_t>(src.local_count(world.rank())));
      std::vector<std::int32_t> dbuf(
          static_cast<std::size_t>(dst.local_count(world.rank())));
      const auto& sd = *src.descriptor();
      for (std::size_t l = 0; l < sbuf.size(); ++l)
        sbuf[l] = 100 * round +
                  static_cast<std::int32_t>(
                      sd.local_to_global(world.rank(),
                                         static_cast<dad::Index>(l))[0]);
      reorg.run(std::as_bytes(std::span<const std::int32_t>(sbuf)),
                std::as_writable_bytes(std::span<std::int32_t>(dbuf)));
      const auto& dd = *dst.descriptor();
      for (std::size_t l = 0; l < dbuf.size(); ++l)
        EXPECT_EQ(dbuf[l],
                  100 * round +
                      static_cast<std::int32_t>(dd.local_to_global(
                          world.rank(), static_cast<dad::Index>(l))[0]));
      reorg.reset();
    }
  });
}

// ---------------------------------------------------------------------------
// Alignment
// ---------------------------------------------------------------------------

TEST(Alignment, InheritsTemplateDistributionShifted) {
  // 12-cell template, 3-rank blocks of 4. An 6-cell array aligned at
  // offset 3 spans template cells [3,9): rank0 owns array [0,1), rank1
  // owns [1,5), rank2 owns [5,6).
  auto tpl = dad::make_regular(std::vector<AxisDist>{AxisDist::block(12, 3)});
  auto arr = dad::align(*tpl, Point{3}, Point{6});
  EXPECT_EQ(arr.nranks(), 3);
  EXPECT_EQ(arr.local_volume(0), 1);
  EXPECT_EQ(arr.local_volume(1), 4);
  EXPECT_EQ(arr.local_volume(2), 1);
  EXPECT_EQ(arr.owner(Point{0}), 0);
  EXPECT_EQ(arr.owner(Point{1}), 1);
  EXPECT_EQ(arr.owner(Point{5}), 2);
}

TEST(Alignment, RanksOutsideWindowOwnNothing) {
  auto tpl = dad::make_regular(std::vector<AxisDist>{AxisDist::block(16, 4)});
  auto arr = dad::align(*tpl, Point{0}, Point{4});
  EXPECT_EQ(arr.local_volume(0), 4);
  for (int r = 1; r < 4; ++r) EXPECT_EQ(arr.local_volume(r), 0);
}

TEST(Alignment, RejectsWindowsOutsideTemplate) {
  auto tpl = dad::make_regular(std::vector<AxisDist>{AxisDist::block(8, 2)});
  EXPECT_THROW(dad::align(*tpl, Point{5}, Point{4}), rt::UsageError);
  EXPECT_THROW(dad::align(*tpl, Point{-1}, Point{4}), rt::UsageError);
  EXPECT_THROW(dad::align(*tpl, Point{0}, Point{0}), rt::UsageError);
}

TEST(Alignment, AlignedArraysRedistributeThroughNormalSchedules) {
  // Two arrays aligned at different offsets of the same 2-D template; a
  // redistribution between them must land src(i,j) at dst(i,j).
  auto tpl = dad::make_regular(std::vector<AxisDist>{
      AxisDist::block(10, 2), AxisDist::block(10, 2)});
  auto a = dad::make_aligned(tpl, Point{0, 0}, Point{6, 6});
  auto b = dad::make_aligned(tpl, Point{4, 4}, Point{6, 6});
  rt::spawn(4, [&](rt::Communicator& world) {
    auto c = sched::self_coupling(world);
    dad::DistArray<double> src(a, world.rank());
    dad::DistArray<double> dst(b, world.rank());
    src.fill([](const Point& p) { return 13.0 * p[0] + p[1]; });
    auto s = sched::build_region_schedule(*a, *b, world.rank(), world.rank());
    sched::execute<double>(s, &src, &dst, c, 31);
    dst.for_each_owned([](const Point& p, const double& v) {
      EXPECT_DOUBLE_EQ(v, 13.0 * p[0] + p[1]);
    });
  });
}

TEST(Alignment, ConformingAlignedArraysShareCachedSchedules) {
  auto tpl = dad::make_regular(std::vector<AxisDist>{AxisDist::block(12, 2)});
  auto a1 = dad::make_aligned(tpl, Point{2}, Point{8});
  auto a2 = dad::make_aligned(tpl, Point{2}, Point{8});  // same alignment
  auto bdesc = dad::make_regular(std::vector<AxisDist>{AxisDist::cyclic(8, 2)});
  mxn::sched::ScheduleCache cache;
  cache.get(a1, bdesc, 0, -1);
  cache.get(a2, bdesc, 0, -1);  // structurally equal -> hit
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}
