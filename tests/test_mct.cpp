// Tests for the Model Coupling Toolkit layer (src/mct): GlobalSegMap,
// AttrVect, Router/Rearranger, distributed sparse-matrix interpolation,
// accumulators, merging, grids and conservative integrals.

#include <gtest/gtest.h>

#include <numeric>

#include "mct/accumulator.hpp"
#include "mct/attr_vect.hpp"
#include "mct/global_seg_map.hpp"
#include "mct/grid.hpp"
#include "mct/merge.hpp"
#include "mct/registry.hpp"
#include "mct/router.hpp"
#include "mct/sparse_matrix.hpp"
#include "rt/runtime.hpp"

namespace mct = mxn::mct;
namespace rt = mxn::rt;
using mct::AttrVect;
using mct::GlobalSegMap;
using mct::Index;

// ---------------------------------------------------------------------------
// GlobalSegMap
// ---------------------------------------------------------------------------

TEST(GlobalSegMap, BlockDecomposition) {
  auto g = GlobalSegMap::block(10, 3);
  EXPECT_EQ(g.nprocs(), 3);
  EXPECT_EQ(g.local_size(0), 4);
  EXPECT_EQ(g.local_size(2), 2);
  EXPECT_EQ(g.owner(0), 0);
  EXPECT_EQ(g.owner(9), 2);
  EXPECT_EQ(g.local_index(1, 5), 1);
  EXPECT_EQ(g.global_index(1, 1), 5);
}

TEST(GlobalSegMap, CyclicDecomposition) {
  auto g = GlobalSegMap::cyclic(8, 2, 2);
  // Chunks: [0,2)p0 [2,4)p1 [4,6)p0 [6,8)p1
  EXPECT_EQ(g.owner(3), 1);
  EXPECT_EQ(g.owner(5), 0);
  EXPECT_EQ(g.local_size(0), 4);
  EXPECT_EQ(g.local_index(0, 4), 2);
  EXPECT_EQ(g.footprint(0),
            (std::vector<mxn::linear::Segment>{{0, 2}, {4, 6}}));
}

TEST(GlobalSegMap, ValidationRejectsBadPartitions) {
  using Seg = GlobalSegMap::Seg;
  EXPECT_THROW(GlobalSegMap(10, {Seg{0, 5, 0}}), rt::UsageError);  // gap
  EXPECT_THROW(GlobalSegMap(10, {Seg{0, 6, 0}, Seg{5, 5, 1}}),
               rt::UsageError);  // overlap
  EXPECT_THROW(GlobalSegMap(10, {Seg{0, 11, 0}}), rt::UsageError);
  EXPECT_THROW(GlobalSegMap(10, {Seg{0, 10, -1}}), rt::UsageError);
}

TEST(GlobalSegMap, LocalGlobalRoundTrip) {
  auto g = GlobalSegMap::cyclic(23, 4, 3);
  for (int r = 0; r < g.nprocs(); ++r) {
    for (Index l = 0; l < g.local_size(r); ++l) {
      const Index gi = g.global_index(r, l);
      EXPECT_EQ(g.owner(gi), r);
      EXPECT_EQ(g.local_index(r, gi), l);
    }
  }
}

TEST(GlobalSegMap, PackUnpackRoundTrip) {
  auto g = GlobalSegMap::cyclic(17, 3, 2);
  rt::PackBuffer b;
  g.pack(b);
  auto bytes = std::move(b).take();
  rt::UnpackBuffer u(bytes);
  EXPECT_TRUE(GlobalSegMap::unpack(u) == g);
}

// ---------------------------------------------------------------------------
// AttrVect
// ---------------------------------------------------------------------------

TEST(AttrVect, FieldsAreNamedAndContiguous) {
  AttrVect av({"temp", "salt"}, 5);
  EXPECT_EQ(av.nfields(), 2);
  EXPECT_EQ(av.length(), 5);
  av.field("temp")[3] = 7.5;
  av.at(av.field_index("salt"), 0) = -1.0;
  EXPECT_DOUBLE_EQ(av.at(0, 3), 7.5);
  EXPECT_DOUBLE_EQ(av.field(1)[0], -1.0);
  EXPECT_THROW((void)av.field("ghost"), rt::UsageError);
  EXPECT_THROW(AttrVect({"a", "a"}, 3), rt::UsageError);
}

TEST(AttrVect, LikeCopiesSchemaNotData) {
  AttrVect av({"x"}, 4);
  av.field(0)[0] = 9;
  auto b = AttrVect::like(av, 7);
  EXPECT_EQ(b.length(), 7);
  EXPECT_EQ(b.nfields(), 1);
  EXPECT_DOUBLE_EQ(b.field(0)[0], 0.0);
}

// ---------------------------------------------------------------------------
// Router and Rearranger
// ---------------------------------------------------------------------------

TEST(Router, MovesMultiFieldDataBetweenComponents) {
  const Index gsize = 24;
  const int m = 3, n = 2;
  auto src_map = GlobalSegMap::block(gsize, m);
  auto dst_map = GlobalSegMap::cyclic(gsize, n, 3);
  rt::spawn(m + n, [&](rt::Communicator& world) {
    const bool is_src = world.rank() < m;
    auto cohort = world.split(is_src ? 0 : 1, world.rank());
    mct::RouterConfig cfg;
    cfg.channel = world;
    cfg.cohort = cohort;
    std::vector<int> a(m), b(n);
    std::iota(a.begin(), a.end(), 0);
    std::iota(b.begin(), b.end(), m);
    cfg.my_ranks = is_src ? a : b;
    cfg.peer_ranks = is_src ? b : a;
    cfg.tag = 10;

    if (is_src) {
      auto router = mct::Router::source(cfg, src_map);
      AttrVect av({"u", "v"}, src_map.local_size(cohort.rank()));
      for (Index l = 0; l < av.length(); ++l) {
        const Index g = src_map.global_index(cohort.rank(), l);
        av.field("u")[l] = 1.0 * g;
        av.field("v")[l] = -2.0 * g;
      }
      router.send(av);
    } else {
      auto router = mct::Router::destination(cfg, dst_map);
      AttrVect av({"u", "v"}, dst_map.local_size(cohort.rank()));
      router.recv(av);
      for (Index l = 0; l < av.length(); ++l) {
        const Index g = dst_map.global_index(cohort.rank(), l);
        EXPECT_DOUBLE_EQ(av.field("u")[l], 1.0 * g);
        EXPECT_DOUBLE_EQ(av.field("v")[l], -2.0 * g);
      }
    }
  });
}

TEST(Router, RepeatedTransfersReuseSchedule) {
  const Index gsize = 12;
  auto src_map = GlobalSegMap::block(gsize, 2);
  auto dst_map = GlobalSegMap::block(gsize, 2);
  rt::spawn(4, [&](rt::Communicator& world) {
    const bool is_src = world.rank() < 2;
    auto cohort = world.split(is_src ? 0 : 1, world.rank());
    mct::RouterConfig cfg;
    cfg.channel = world;
    cfg.cohort = cohort;
    cfg.my_ranks = is_src ? std::vector<int>{0, 1} : std::vector<int>{2, 3};
    cfg.peer_ranks = is_src ? std::vector<int>{2, 3} : std::vector<int>{0, 1};
    cfg.tag = 20;
    if (is_src) {
      auto router = mct::Router::source(cfg, src_map);
      AttrVect av({"f"}, src_map.local_size(cohort.rank()));
      for (int step = 0; step < 5; ++step) {
        for (Index l = 0; l < av.length(); ++l)
          av.field(0)[l] = step * 100.0 + src_map.global_index(cohort.rank(), l);
        router.send(av);
      }
    } else {
      auto router = mct::Router::destination(cfg, dst_map);
      AttrVect av({"f"}, dst_map.local_size(cohort.rank()));
      for (int step = 0; step < 5; ++step) {
        router.recv(av);
        for (Index l = 0; l < av.length(); ++l)
          EXPECT_DOUBLE_EQ(av.field(0)[l],
                           step * 100.0 +
                               dst_map.global_index(cohort.rank(), l));
      }
    }
  });
}

TEST(Rearranger, IntraComponentRedistribution) {
  const Index gsize = 20;
  auto block = GlobalSegMap::block(gsize, 4);
  auto cyc = GlobalSegMap::cyclic(gsize, 4, 2);
  rt::spawn(4, [&](rt::Communicator& world) {
    mct::Rearranger rearr(world, block, cyc, 30);
    AttrVect src({"q"}, block.local_size(world.rank()));
    AttrVect dst({"q"}, cyc.local_size(world.rank()));
    for (Index l = 0; l < src.length(); ++l)
      src.field(0)[l] = 3.0 * block.global_index(world.rank(), l);
    rearr.rearrange(src, dst);
    for (Index l = 0; l < dst.length(); ++l)
      EXPECT_DOUBLE_EQ(dst.field(0)[l],
                       3.0 * cyc.global_index(world.rank(), l));
  });
}

// ---------------------------------------------------------------------------
// Sparse matrix interpolation
// ---------------------------------------------------------------------------

namespace {

/// Linear interpolation matrix from a coarse grid of `nc` points to a fine
/// grid of `nf = 2*nc - 1` points: fine point 2i maps to coarse i; fine
/// point 2i+1 averages coarse i and i+1. Rows owned per row_map.
std::vector<mct::SparseMatrix::Element> interp_rows(
    const GlobalSegMap& row_map, int rank) {
  std::vector<mct::SparseMatrix::Element> es;
  for (const auto& s : row_map.segs_of(rank)) {
    for (Index r = s.start; r < s.start + s.length; ++r) {
      if (r % 2 == 0) {
        es.push_back({r, r / 2, 1.0});
      } else {
        es.push_back({r, r / 2, 0.5});
        es.push_back({r, r / 2 + 1, 0.5});
      }
    }
  }
  return es;
}

}  // namespace

TEST(SparseMatrix, DistributedInterpolationMatchesSerial) {
  const Index nc = 9, nf = 2 * nc - 1;
  auto col_map = GlobalSegMap::block(nc, 3);
  auto row_map = GlobalSegMap::cyclic(nf, 3, 2);
  rt::spawn(3, [&](rt::Communicator& world) {
    const int me = world.rank();
    mct::SparseMatrix A(world, row_map, col_map, interp_rows(row_map, me),
                        40);
    AttrVect x({"t", "p"}, col_map.local_size(me));
    for (Index l = 0; l < x.length(); ++l) {
      const Index g = col_map.global_index(me, l);
      x.field("t")[l] = 2.0 * g;        // linear: interpolation is exact
      x.field("p")[l] = 5.0 - 0.5 * g;
    }
    AttrVect y({"t", "p"}, row_map.local_size(me));
    A.matvec(x, y);
    for (Index l = 0; l < y.length(); ++l) {
      const Index g = row_map.global_index(me, l);
      const double coarse_coord = g / 2.0;  // fine g sits at coarse g/2
      EXPECT_DOUBLE_EQ(y.field("t")[l], 2.0 * coarse_coord);
      EXPECT_DOUBLE_EQ(y.field("p")[l], 5.0 - 0.5 * coarse_coord);
    }
  });
}

TEST(SparseMatrix, HaloOnlyFetchesRemoteColumns) {
  const Index n = 12;
  auto map = GlobalSegMap::block(n, 2);
  rt::spawn(2, [&](rt::Communicator& world) {
    // Identity matrix: every needed column is local; halo must be empty.
    std::vector<mct::SparseMatrix::Element> es;
    for (const auto& s : map.segs_of(world.rank()))
      for (Index r = s.start; r < s.start + s.length; ++r)
        es.push_back({r, r, 1.0});
    mct::SparseMatrix A(world, map, map, es, 41);
    EXPECT_EQ(A.halo_size(), 0u);
    AttrVect x({"f"}, map.local_size(world.rank()));
    for (Index l = 0; l < x.length(); ++l) x.field(0)[l] = l + 1.0;
    AttrVect y({"f"}, map.local_size(world.rank()));
    A.matvec(x, y);
    for (Index l = 0; l < y.length(); ++l)
      EXPECT_DOUBLE_EQ(y.field(0)[l], l + 1.0);
  });
}

TEST(SparseMatrix, RejectsForeignRows) {
  auto map = GlobalSegMap::block(8, 2);
  rt::spawn(2, [&](rt::Communicator& world) {
    if (world.rank() == 0) {
      // Row 7 belongs to rank 1.
      EXPECT_THROW(mct::SparseMatrix(world, map, map, {{7, 0, 1.0}}, 42),
                   rt::UsageError);
    }
    // Note: constructor is collective; rank 1 builds an empty matrix and
    // the alltoall pairs with rank 0's failed constructor — so rank 0 must
    // also complete the collective. Build a valid empty one instead.
    mct::SparseMatrix ok(world, map, map, {}, 43);
    EXPECT_EQ(ok.local_nnz(), 0u);
  });
}

// ---------------------------------------------------------------------------
// Accumulator, merge, grid integrals
// ---------------------------------------------------------------------------

TEST(Accumulator, AveragesOverSteps) {
  mct::Accumulator acc({"h"}, 3);
  AttrVect av({"h"}, 3);
  for (int step = 1; step <= 4; ++step) {
    for (Index i = 0; i < 3; ++i) av.field(0)[i] = step * (i + 1.0);
    acc.accumulate(av);
  }
  EXPECT_EQ(acc.steps(), 4);
  auto mean = acc.average();
  EXPECT_DOUBLE_EQ(mean.field(0)[0], 2.5);       // (1+2+3+4)/4
  EXPECT_DOUBLE_EQ(mean.field(0)[2], 3 * 2.5);
  acc.reset();
  EXPECT_EQ(acc.steps(), 0);
  EXPECT_THROW(acc.average(), rt::UsageError);
}

TEST(Merge, FractionWeightedBlend) {
  AttrVect ocean({"flux"}, 2), ice({"flux"}, 2), out({"flux"}, 2);
  ocean.field(0)[0] = 10.0;
  ocean.field(0)[1] = 20.0;
  ice.field(0)[0] = 30.0;
  ice.field(0)[1] = 40.0;
  std::vector<double> f_ocean = {0.75, 0.0};
  std::vector<double> f_ice = {0.25, 0.5};
  mct::merge(out, {{&ocean, f_ocean}, {&ice, f_ice}});
  EXPECT_DOUBLE_EQ(out.field(0)[0], 0.75 * 10 + 0.25 * 30);
  EXPECT_DOUBLE_EQ(out.field(0)[1], 40.0);  // normalized: only ice covers
}

TEST(Merge, Validation) {
  AttrVect a({"x"}, 2), out({"x"}, 2);
  std::vector<double> zero = {0.0, 0.0};
  EXPECT_THROW(mct::merge(out, {}), rt::UsageError);
  EXPECT_THROW(mct::merge(out, {{&a, zero}}), rt::UsageError);
}

TEST(Grid, MaskedIntegralAndAverage) {
  rt::spawn(2, [](rt::Communicator& world) {
    // 4 local points each; one masked out on rank 1.
    mct::GeneralGrid grid({"x"}, 4);
    for (Index i = 0; i < 4; ++i) grid.area()[i] = 0.5;
    if (world.rank() == 1) grid.mask()[3] = 0;
    AttrVect av({"t"}, 4);
    for (Index i = 0; i < 4; ++i)
      av.field(0)[i] = world.rank() * 4.0 + i;  // values 0..7
    const double integral = mct::spatial_integral(av, 0, grid, world);
    // Unmasked values: 0..6 (7 masked), each weighted 0.5.
    EXPECT_DOUBLE_EQ(integral, 0.5 * (0 + 1 + 2 + 3 + 4 + 5 + 6));
    const double avg = mct::spatial_average(av, 0, grid, world);
    EXPECT_DOUBLE_EQ(avg, 3.0);
  });
}

TEST(Grid, ConservativeInterpolationPreservesIntegral) {
  // Paired integrals around a conservative (row-sum preserving by area)
  // interpolation: coarse -> fine with linear weights, fine areas half the
  // coarse ones except endpoints — built so total integral is conserved.
  const Index nc = 5, nf = 2 * nc - 1;
  auto col_map = GlobalSegMap::block(nc, 2);
  auto row_map = GlobalSegMap::block(nf, 2);
  rt::spawn(2, [&](rt::Communicator& world) {
    const int me = world.rank();
    mct::SparseMatrix A(world, row_map, col_map, interp_rows(row_map, me),
                        44);
    // Coarse field and grid: unit areas.
    AttrVect x({"q"}, col_map.local_size(me));
    mct::GeneralGrid coarse({"x"}, col_map.local_size(me));
    for (Index l = 0; l < x.length(); ++l) {
      const Index g = col_map.global_index(me, l);
      x.field(0)[l] = 1.0 + g;
      // Interior coarse points spread half their weight to each neighbor
      // midpoint; end points keep 3/4. Choose areas that make the matrix
      // conservative: w_c = A^T w_f with fine areas below.
      coarse.area()[l] = (g == 0 || g == nc - 1) ? 0.75 : 1.0;
    }
    AttrVect y({"q"}, row_map.local_size(me));
    A.matvec(x, y);
    mct::GeneralGrid fine({"x"}, row_map.local_size(me));
    for (Index l = 0; l < fine.length(); ++l) fine.area()[l] = 0.5;
    const double before = mct::spatial_integral(x, 0, coarse, world);
    const double after = mct::spatial_integral(y, 0, fine, world);
    EXPECT_NEAR(before, after, 1e-12);
  });
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(Registry, ProcessIdLookup) {
  mct::Registry reg;
  reg.add("atm", {0, 1, 2});
  reg.add("ocn", {3, 4});
  EXPECT_EQ(reg.world_rank("ocn", 1), 4);
  EXPECT_TRUE(reg.member("atm", 2));
  EXPECT_FALSE(reg.member("atm", 3));
  EXPECT_EQ(reg.cohort_rank("ocn", 3), 0);
  EXPECT_EQ(reg.cohort_rank("ocn", 0), -1);
  EXPECT_THROW(reg.add("atm", {5}), rt::UsageError);
  EXPECT_THROW((void)reg.ranks_of("ice"), rt::UsageError);
  EXPECT_THROW((void)reg.world_rank("atm", 9), rt::UsageError);
}
