// Stress and semantics tests for the sharded per-peer mailbox: 16+ source
// lanes hammered concurrently (the configuration the TSan CI job watches),
// per-(src, tag) FIFO across wildcard receives, get_if predicate matching,
// probe/try_get, the overflow lane, and the fault-injection reorder /
// duplicate semantics the chaos suite relies on.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "rt/mailbox.hpp"
#include "rt/message.hpp"
#include "rt/universe.hpp"
#include "trace/trace.hpp"

namespace rt = mxn::rt;
namespace trace = mxn::trace;

namespace {

/// Payload carrying (src, seq) so receivers can audit ordering.
rt::Buffer stamp(int src, int seq) {
  std::uint64_t v = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
                     << 32) |
                    static_cast<std::uint32_t>(seq);
  return rt::Buffer::copy_of(
      {reinterpret_cast<const std::byte*>(&v), sizeof(v)});
}

int stamped_src(const rt::Message& m) {
  std::uint64_t v = 0;
  std::memcpy(&v, m.payload.data(), sizeof(v));
  return static_cast<int>(v >> 32);
}

int stamped_seq(const rt::Message& m) {
  std::uint64_t v = 0;
  std::memcpy(&v, m.payload.data(), sizeof(v));
  return static_cast<int>(v & 0xffffffffu);
}

}  // namespace

TEST(Mailbox, SpecificSourceReceiveIsFifo) {
  rt::Universe uni(1, /*deadlock_timeout_ms=*/0);
  rt::Mailbox box(&uni, 0, /*nlanes=*/4);
  for (int seq = 0; seq < 8; ++seq) box.put({2, 7, stamp(2, seq)});
  box.put({1, 7, stamp(1, 99)});  // different lane, must not interfere
  for (int seq = 0; seq < 8; ++seq) {
    rt::Message m = box.get(2, 7);
    EXPECT_EQ(m.src, 2);
    EXPECT_EQ(stamped_seq(m), seq);
  }
  EXPECT_EQ(box.get(1, 7).src, 1);
}

TEST(Mailbox, WildcardsMatchAcrossLanesAndTags) {
  rt::Universe uni(1, 0);
  rt::Mailbox box(&uni, 0, 4);
  box.put({0, 5, stamp(0, 0)});
  box.put({3, 9, stamp(3, 0)});
  EXPECT_TRUE(box.probe(rt::kAnySource, 9));
  EXPECT_TRUE(box.probe(3, rt::kAnyTag));
  EXPECT_FALSE(box.probe(1, rt::kAnyTag));
  EXPECT_FALSE(box.probe(rt::kAnySource, 2));
  int got = 0;
  while (auto m = box.try_get(rt::kAnySource, rt::kAnyTag)) ++got;
  EXPECT_EQ(got, 2);
  EXPECT_FALSE(box.probe(rt::kAnySource, rt::kAnyTag));
}

TEST(Mailbox, TagFilteringSkipsNonMatchingMessagesInLane) {
  rt::Universe uni(1, 0);
  rt::Mailbox box(&uni, 0, 2);
  box.put({1, 10, stamp(1, 0)});
  box.put({1, 20, stamp(1, 1)});
  box.put({1, 10, stamp(1, 2)});
  rt::Message m = box.get(1, 20);  // skips the queued tag-10 message
  EXPECT_EQ(stamped_seq(m), 1);
  EXPECT_EQ(stamped_seq(box.get(1, 10)), 0);
  EXPECT_EQ(stamped_seq(box.get(1, 10)), 2);
}

TEST(Mailbox, GetIfHonorsPredicateAndFifoAmongMatches) {
  rt::Universe uni(1, 0);
  rt::Mailbox box(&uni, 0, 2);
  for (int seq = 0; seq < 6; ++seq) box.put({0, 1, stamp(0, seq)});
  const auto odd = [](const rt::Message& m) { return stamped_seq(m) % 2 == 1; };
  EXPECT_EQ(stamped_seq(box.get_if(0, 1, odd)), 1);
  EXPECT_EQ(stamped_seq(box.get_if(0, 1, odd)), 3);
  // Non-matching messages stayed queued, still FIFO.
  EXPECT_EQ(stamped_seq(box.get(0, 1)), 0);
  EXPECT_EQ(stamped_seq(box.get(0, 1)), 2);
  EXPECT_EQ(stamped_seq(box.get_if(rt::kAnySource, rt::kAnyTag, odd)), 5);
  EXPECT_EQ(stamped_seq(box.get(0, 1)), 4);
}

TEST(Mailbox, ReorderFaultQueueJumpsWithinItsLane) {
  rt::Universe uni(1, 0);
  rt::Mailbox box(&uni, 0, 2);
  box.put({0, 1, stamp(0, 0)});
  box.put({0, 1, stamp(0, 1)});
  box.put({0, 1, stamp(0, 2)}, /*reorder=*/true);  // jumps its lane's queue
  box.put({1, 1, stamp(1, 7)});  // other lanes unaffected
  EXPECT_EQ(stamped_seq(box.get(0, 1)), 2);
  EXPECT_EQ(stamped_seq(box.get(0, 1)), 0);
  EXPECT_EQ(stamped_seq(box.get(0, 1)), 1);
  EXPECT_EQ(stamped_seq(box.get(1, 1)), 7);
}

TEST(Mailbox, DuplicateDeliverySharesOnePayloadBlock) {
  rt::Universe uni(1, 0);
  rt::Mailbox box(&uni, 0, 2);
  rt::Buffer payload = stamp(0, 42);
  const std::byte* storage = payload.data();
  box.put({0, 1, payload});  // refcount bump, no copy
  box.put({0, 1, std::move(payload)});
  rt::Message a = box.get(0, 1);
  rt::Message b = box.get(0, 1);
  EXPECT_EQ(a.payload.data(), storage);
  EXPECT_EQ(b.payload.data(), storage);
  EXPECT_EQ(stamped_seq(a), 42);
  EXPECT_EQ(stamped_seq(b), 42);
}

TEST(Mailbox, OutOfRangeSourcesShareTheOverflowLane) {
  rt::Universe uni(1, 0);
  rt::Mailbox box(&uni, 0, 4);
  box.put({99, 1, stamp(99, 0)});
  box.put({-7, 1, stamp(-7, 1)});
  box.put({99, 1, stamp(99, 2)});
  EXPECT_TRUE(box.probe(99, 1));
  // Specific-source matching still filters by src inside the shared lane.
  EXPECT_EQ(stamped_seq(box.get(99, 1)), 0);
  EXPECT_EQ(stamped_seq(box.get(-7, 1)), 1);
  EXPECT_EQ(stamped_seq(box.get(99, 1)), 2);
  // A zero-lane box degenerates to a single queue and still works.
  rt::Mailbox tiny(&uni, 0, 0);
  tiny.put({5, 3, stamp(5, 0)});
  EXPECT_EQ(tiny.get(rt::kAnySource, rt::kAnyTag).src, 5);
}

TEST(Mailbox, BlockedGetWakesOnArrivalFromAnotherThread) {
  rt::Universe uni(2, 0);
  rt::Mailbox box(&uni, 0, 4);
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    box.put({3, 11, stamp(3, 1)});
  });
  rt::Message m = box.get(3, 11, /*timeout_ms=*/5000);
  EXPECT_EQ(stamped_seq(m), 1);
  producer.join();
}

// The headline stress: 16 concurrent source lanes against one consumer
// issuing wildcard receives, specific receives, get_if and probes — the
// shape the TSan job must find race-free. Per-(src, tag) FIFO must hold for
// every lane regardless of interleaving.
TEST(MailboxStress, SixteenLanesConcurrentFifo) {
  constexpr int kSources = 16;
  constexpr int kPerSource = 400;
  rt::Universe uni(kSources + 1, 0);
  rt::Mailbox box(&uni, 0, kSources);

  std::vector<std::thread> producers;
  producers.reserve(kSources);
  for (int src = 0; src < kSources; ++src) {
    producers.emplace_back([&box, src] {
      for (int seq = 0; seq < kPerSource; ++seq)
        box.put({src, 1, stamp(src, seq)});
    });
  }

  std::vector<int> next(kSources, 0);
  int received = 0;
  while (received < kSources * kPerSource) {
    rt::Message m = box.get(rt::kAnySource, 1, /*timeout_ms=*/30000);
    const int src = m.src;
    ASSERT_GE(src, 0);
    ASSERT_LT(src, kSources);
    ASSERT_EQ(stamped_src(m), src);
    ASSERT_EQ(stamped_seq(m), next[src]) << "lane " << src << " out of order";
    ++next[src];
    ++received;
  }
  for (auto& t : producers) t.join();
  EXPECT_FALSE(box.probe(rt::kAnySource, rt::kAnyTag));
  for (int src = 0; src < kSources; ++src) EXPECT_EQ(next[src], kPerSource);
}

// Same fleet, but the consumer alternates matching styles and the producers
// interleave two tags — exercising lane scans that skip non-matching
// messages while the lanes are being filled.
TEST(MailboxStress, MixedMatchingUnderConcurrency) {
  constexpr int kSources = 16;
  constexpr int kPerSource = 120;  // per tag
  rt::Universe uni(kSources + 1, 0);
  rt::Mailbox box(&uni, 0, kSources);

  std::vector<std::thread> producers;
  for (int src = 0; src < kSources; ++src) {
    producers.emplace_back([&box, src] {
      for (int seq = 0; seq < kPerSource; ++seq) {
        box.put({src, 1, stamp(src, seq)});
        box.put({src, 2, stamp(src, seq)});
      }
    });
  }

  const auto even = [](const rt::Message& m) {
    return stamped_seq(m) % 2 == 0;
  };
  // Phase 1: drain tag 1 fully while pulling every EVEN tag-2 seq with
  // get_if — predicate receives racing live producers, skipping queued odd
  // messages. FIFO-among-matches means each lane's evens arrive in order.
  std::vector<int> next1(kSources, 0);
  std::vector<int> next_even(kSources, 0);
  for (int i = 0; i < kSources * kPerSource; ++i) {
    rt::Message m = box.get(rt::kAnySource, 1, 30000);
    ASSERT_EQ(stamped_seq(m), next1[m.src]) << "lane " << m.src;
    ++next1[m.src];
    if (i % 2 == 0) {  // fires kSources*kPerSource/2 times == the even count
      rt::Message e = box.get_if(rt::kAnySource, 2, even, 30000);
      ASSERT_EQ(stamped_seq(e) % 2, 0);
      ASSERT_EQ(stamped_seq(e), next_even[e.src]) << "lane " << e.src;
      next_even[e.src] += 2;
    }
  }
  // Phase 2: only the odd tag-2 messages remain, in order per lane.
  std::vector<int> next_odd(kSources, 1);
  for (int i = 0; i < kSources * kPerSource / 2; ++i) {
    rt::Message m = box.get(rt::kAnySource, 2, 30000);
    ASSERT_EQ(stamped_seq(m) % 2, 1);
    ASSERT_EQ(stamped_seq(m), next_odd[m.src]) << "lane " << m.src;
    next_odd[m.src] += 2;
  }
  for (auto& t : producers) t.join();
  EXPECT_FALSE(box.probe(rt::kAnySource, rt::kAnyTag));
  // The stress is the real assertion; the counter just has to exist.
  EXPECT_GE(trace::counter("rt.mailbox.lane_contention").value(), 0u);
}
