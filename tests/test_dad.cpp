// Unit and property tests for the Distributed Array Descriptor (src/dad):
// patch geometry, per-axis distributions, templates (regular + explicit),
// local storage mapping, and the extract/inject pack kernels.

#include <gtest/gtest.h>

#include <numeric>
#include <random>
#include <set>

#include "dad/dist_array.hpp"

namespace dad = mxn::dad;
using dad::AxisDist;
using dad::Descriptor;
using dad::Index;
using dad::Patch;
using dad::Point;

namespace {

Patch patch1(Index lo, Index hi) {
  return Patch::make(1, Point{lo}, Point{hi});
}
Patch patch2(Index lo0, Index hi0, Index lo1, Index hi1) {
  return Patch::make(2, Point{lo0, lo1}, Point{hi0, hi1});
}

}  // namespace

// ---------------------------------------------------------------------------
// Patch geometry
// ---------------------------------------------------------------------------

TEST(Patch, VolumeAndEmptiness) {
  EXPECT_EQ(patch2(0, 4, 0, 5).volume(), 20);
  EXPECT_FALSE(patch2(0, 4, 0, 5).empty());
  EXPECT_TRUE(patch2(2, 2, 0, 5).empty());
}

TEST(Patch, IntersectionBasics) {
  auto a = patch2(0, 10, 0, 10);
  auto b = patch2(5, 15, 3, 8);
  auto c = Patch::intersect(a, b);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(*c, patch2(5, 10, 3, 8));
  EXPECT_FALSE(Patch::intersect(patch2(0, 5, 0, 5), patch2(5, 9, 0, 5)));
}

TEST(Patch, OffsetRoundTripRowMajor) {
  auto p = patch2(2, 5, 10, 14);  // 3 x 4
  EXPECT_EQ(p.offset_of(Point{2, 10}), 0);
  EXPECT_EQ(p.offset_of(Point{2, 11}), 1);  // last axis fastest
  EXPECT_EQ(p.offset_of(Point{3, 10}), 4);
  for (Index off = 0; off < p.volume(); ++off)
    EXPECT_EQ(p.offset_of(p.point_at(off)), off);
}

TEST(Patch, ForEachPointVisitsRowMajorOnce) {
  auto p = patch2(0, 2, 0, 3);
  std::vector<Point> visited;
  p.for_each_point([&](const Point& pt) { visited.push_back(pt); });
  ASSERT_EQ(visited.size(), 6u);
  EXPECT_EQ(visited[0], (Point{0, 0}));
  EXPECT_EQ(visited[1], (Point{0, 1}));
  EXPECT_EQ(visited[3], (Point{1, 0}));
}

TEST(Patch, PackUnpackRoundTrip) {
  auto p = Patch::make(3, Point{1, 2, 3}, Point{4, 5, 6});
  mxn::rt::PackBuffer b;
  p.pack(b);
  auto bytes = std::move(b).take();
  mxn::rt::UnpackBuffer u(bytes);
  EXPECT_EQ(Patch::unpack(u), p);
}

// ---------------------------------------------------------------------------
// Axis distributions
// ---------------------------------------------------------------------------

TEST(AxisDist, BlockSplitsEvenly) {
  auto d = AxisDist::block(10, 3);  // blocks of ceil(10/3)=4: 4,4,2
  EXPECT_EQ(d.local_count(0), 4);
  EXPECT_EQ(d.local_count(1), 4);
  EXPECT_EQ(d.local_count(2), 2);
  EXPECT_EQ(d.owner(0), 0);
  EXPECT_EQ(d.owner(3), 0);
  EXPECT_EQ(d.owner(4), 1);
  EXPECT_EQ(d.owner(9), 2);
}

TEST(AxisDist, CyclicDealsRoundRobin) {
  auto d = AxisDist::cyclic(7, 3);
  EXPECT_EQ(d.owner(0), 0);
  EXPECT_EQ(d.owner(1), 1);
  EXPECT_EQ(d.owner(2), 2);
  EXPECT_EQ(d.owner(3), 0);
  EXPECT_EQ(d.local_count(0), 3);  // 0,3,6
  EXPECT_EQ(d.local_count(1), 2);
  EXPECT_EQ(d.intervals_of(0).size(), 3u);
}

TEST(AxisDist, BlockCyclicIntermediateBlocks) {
  auto d = AxisDist::block_cyclic(20, 2, 3);
  // blocks: [0,3)p0 [3,6)p1 [6,9)p0 [9,12)p1 [12,15)p0 [15,18)p1 [18,20)p0
  EXPECT_EQ(d.owner(7), 0);
  EXPECT_EQ(d.owner(10), 1);
  EXPECT_EQ(d.local_count(0), 3 + 3 + 3 + 2);
  EXPECT_EQ(d.local_count(1), 9);
  EXPECT_EQ(d.intervals_of(0).back(), (dad::IndexInterval{18, 20}));
}

TEST(AxisDist, GeneralizedBlockUnevenSizes) {
  auto d = AxisDist::generalized_block({5, 0, 7, 3});
  EXPECT_EQ(d.extent(), 15);
  EXPECT_EQ(d.nprocs(), 4);
  EXPECT_EQ(d.owner(4), 0);
  EXPECT_EQ(d.owner(5), 2);  // proc 1 owns nothing
  EXPECT_EQ(d.owner(12), 3);
  EXPECT_TRUE(d.intervals_of(1).empty());
  EXPECT_EQ(d.local_count(2), 7);
}

TEST(AxisDist, ImplicitArbitraryOwners) {
  auto d = AxisDist::implicit({2, 2, 0, 1, 0, 0, 2});
  EXPECT_EQ(d.nprocs(), 3);
  EXPECT_EQ(d.owner(0), 2);
  EXPECT_EQ(d.owner(3), 1);
  EXPECT_EQ(d.local_count(0), 3);
  EXPECT_EQ(d.local_count(2), 3);
  // proc 0 owns {2,4,5} -> local offsets 0,1,2
  EXPECT_EQ(d.local_offset(0, 2), 0);
  EXPECT_EQ(d.local_offset(0, 4), 1);
  EXPECT_EQ(d.local_offset(0, 5), 2);
  EXPECT_EQ(d.global_index(0, 1), 4);
}

TEST(AxisDist, ImplicitDescriptorCostIsPerElement) {
  auto implicit = AxisDist::implicit(std::vector<int>(1000, 0), 4);
  auto block = AxisDist::block(1000, 4);
  EXPECT_EQ(implicit.descriptor_entries(), 1000u);
  EXPECT_EQ(block.descriptor_entries(), 0u);
}

TEST(AxisDist, RejectsBadArguments) {
  EXPECT_THROW(AxisDist::block(0, 2), mxn::rt::UsageError);
  EXPECT_THROW(AxisDist::block_cyclic(10, 0, 2), mxn::rt::UsageError);
  EXPECT_THROW(AxisDist::block_cyclic(10, 2, 0), mxn::rt::UsageError);
  EXPECT_THROW(AxisDist::generalized_block({}), mxn::rt::UsageError);
  EXPECT_THROW(AxisDist::generalized_block({1, -1}), mxn::rt::UsageError);
  EXPECT_THROW(AxisDist::implicit({0, 3}, 2), mxn::rt::UsageError);
  EXPECT_THROW((void)AxisDist::block(10, 2).owner(10), mxn::rt::UsageError);
  EXPECT_THROW((void)AxisDist::block(10, 2).local_offset(0, 7),
               mxn::rt::UsageError);
}

// Property sweep: for every kind, the per-proc intervals partition [0,extent)
// and local_offset/global_index are inverse bijections.
struct AxisCase {
  std::string name;
  AxisDist dist;
};

class AxisPartitionSweep : public ::testing::TestWithParam<AxisCase> {};

TEST_P(AxisPartitionSweep, IntervalsPartitionTheAxis) {
  const auto& d = GetParam().dist;
  std::vector<int> seen(d.extent(), 0);
  for (int p = 0; p < d.nprocs(); ++p) {
    for (const auto& iv : d.intervals_of(p)) {
      for (Index i = iv.lo; i < iv.hi; ++i) {
        ++seen[i];
        EXPECT_EQ(d.owner(i), p);
      }
    }
  }
  for (Index i = 0; i < d.extent(); ++i) EXPECT_EQ(seen[i], 1) << "index " << i;
}

TEST_P(AxisPartitionSweep, LocalGlobalRoundTrip) {
  const auto& d = GetParam().dist;
  for (int p = 0; p < d.nprocs(); ++p) {
    for (Index l = 0; l < d.local_count(p); ++l) {
      const Index g = d.global_index(p, l);
      EXPECT_EQ(d.owner(g), p);
      EXPECT_EQ(d.local_offset(p, g), l);
    }
  }
}

TEST_P(AxisPartitionSweep, SurvivesSerialization) {
  const auto& d = GetParam().dist;
  mxn::rt::PackBuffer b;
  d.pack(b);
  auto bytes = std::move(b).take();
  mxn::rt::UnpackBuffer u(bytes);
  EXPECT_EQ(AxisDist::unpack(u), d);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, AxisPartitionSweep,
    ::testing::Values(
        AxisCase{"collapsed", AxisDist::collapsed(17)},
        AxisCase{"block_even", AxisDist::block(12, 4)},
        AxisCase{"block_ragged", AxisDist::block(13, 4)},
        AxisCase{"block_more_procs", AxisDist::block(3, 5)},
        AxisCase{"cyclic", AxisDist::cyclic(11, 3)},
        AxisCase{"bc2", AxisDist::block_cyclic(29, 3, 2)},
        AxisCase{"bc5", AxisDist::block_cyclic(29, 4, 5)},
        AxisCase{"genblock", AxisDist::generalized_block({4, 9, 0, 4})},
        AxisCase{"implicit",
                 AxisDist::implicit({1, 0, 1, 2, 2, 0, 0, 1, 2, 0})}),
    [](const auto& info) { return info.param.name; });

// ---------------------------------------------------------------------------
// Descriptors
// ---------------------------------------------------------------------------

TEST(Descriptor, RegularGridRankLayout) {
  // 2-D: axis0 block over 2 procs, axis1 block over 3 procs -> 6 ranks,
  // rank = coord0*3 + coord1 (row-major).
  auto d = Descriptor::regular(
      {AxisDist::block(4, 2), AxisDist::block(6, 3)});
  EXPECT_EQ(d.nranks(), 6);
  EXPECT_EQ(d.ndim(), 2);
  EXPECT_EQ(d.owner(Point{0, 0}), 0);
  EXPECT_EQ(d.owner(Point{0, 2}), 1);
  EXPECT_EQ(d.owner(Point{0, 4}), 2);
  EXPECT_EQ(d.owner(Point{2, 0}), 3);
  EXPECT_EQ(d.owner(Point{3, 5}), 5);
  for (int r = 0; r < 6; ++r) {
    ASSERT_EQ(d.patches_of(r).size(), 1u);
    EXPECT_EQ(d.local_volume(r), 4);
  }
}

TEST(Descriptor, CollapsedAxisKeepsAxisOnOneProc) {
  auto d = Descriptor::regular(
      {AxisDist::block(8, 4), AxisDist::collapsed(10)});
  EXPECT_EQ(d.nranks(), 4);
  EXPECT_EQ(d.patches_of(0)[0], patch2(0, 2, 0, 10));
}

TEST(Descriptor, CyclicAxisProducesManyPatches) {
  auto d = Descriptor::regular({AxisDist::cyclic(8, 2)});
  EXPECT_EQ(d.patches_of(0).size(), 4u);
  EXPECT_EQ(d.patches_of(1).size(), 4u);
  EXPECT_EQ(d.local_volume(0), 4);
}

TEST(Descriptor, ExplicitPatchesQuadrants) {
  std::vector<dad::OwnedPatch> ps = {
      {patch2(0, 2, 0, 3), 0},
      {patch2(0, 2, 3, 6), 1},
      {patch2(2, 4, 0, 3), 2},
      {patch2(2, 4, 3, 6), 3},
  };
  auto d = Descriptor::explicit_patches(2, Point{4, 6}, ps, 4);
  EXPECT_TRUE(d.is_explicit());
  EXPECT_EQ(d.owner(Point{1, 2}), 0);
  EXPECT_EQ(d.owner(Point{3, 3}), 3);
  EXPECT_EQ(d.local_volume(1), 6);
  EXPECT_EQ(d.descriptor_entries(), 4u);
}

TEST(Descriptor, ExplicitRejectsOverlap) {
  std::vector<dad::OwnedPatch> ps = {
      {patch1(0, 6), 0},
      {patch1(5, 10), 1},
  };
  EXPECT_THROW(Descriptor::explicit_patches(1, Point{10}, ps, 2),
               mxn::rt::UsageError);
}

TEST(Descriptor, ExplicitRejectsGaps) {
  std::vector<dad::OwnedPatch> ps = {
      {patch1(0, 4), 0},
      {patch1(5, 10), 1},  // index 4 uncovered
  };
  EXPECT_THROW(Descriptor::explicit_patches(1, Point{10}, ps, 2),
               mxn::rt::UsageError);
}

TEST(Descriptor, ExplicitRejectsOutOfBoundsAndBadOwner) {
  EXPECT_THROW(Descriptor::explicit_patches(
                   1, Point{10}, {{patch1(0, 11), 0}}, 1),
               mxn::rt::UsageError);
  EXPECT_THROW(Descriptor::explicit_patches(
                   1, Point{10}, {{patch1(0, 10), 3}}, 2),
               mxn::rt::UsageError);
}

TEST(Descriptor, SameShapeIgnoresDistribution) {
  auto a = Descriptor::regular({AxisDist::block(12, 3)});
  auto b = Descriptor::regular({AxisDist::cyclic(12, 4)});
  auto c = Descriptor::regular({AxisDist::block(13, 3)});
  EXPECT_TRUE(a.same_shape(b));
  EXPECT_FALSE(a.same_shape(c));
}

TEST(Descriptor, EqualityIsStructural) {
  auto a = Descriptor::regular({AxisDist::block(12, 3)});
  auto b = Descriptor::regular({AxisDist::block(12, 3)});
  auto c = Descriptor::regular({AxisDist::block_cyclic(12, 3, 2)});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

struct DescriptorCase {
  std::string name;
  std::shared_ptr<const Descriptor> desc;
};

DescriptorCase make_case(std::string name, Descriptor d) {
  return {std::move(name),
          std::make_shared<const Descriptor>(std::move(d))};
}

class DescriptorSweep : public ::testing::TestWithParam<DescriptorCase> {};

// Property: the rank patch lists exactly cover the global index space and
// agree with owner().
TEST_P(DescriptorSweep, PatchesExactlyCoverIndexSpace) {
  const auto& d = *GetParam().desc;
  std::map<std::vector<Index>, int> cover;
  Index total = 0;
  for (int r = 0; r < d.nranks(); ++r) {
    for (const auto& p : d.patches_of(r)) {
      p.for_each_point([&](const Point& pt) {
        std::vector<Index> key(pt.begin(), pt.begin() + d.ndim());
        auto [it, inserted] = cover.emplace(key, r);
        EXPECT_TRUE(inserted) << "point covered twice";
        EXPECT_EQ(d.owner(pt), r);
        ++total;
      });
    }
    EXPECT_EQ(d.local_volume(r),
              static_cast<Index>(d.patches_of(r).size()
                                     ? std::accumulate(
                                           d.patches_of(r).begin(),
                                           d.patches_of(r).end(), Index{0},
                                           [](Index acc, const Patch& p) {
                                             return acc + p.volume();
                                           })
                                     : 0));
  }
  EXPECT_EQ(total, d.total_volume());
}

// Property: global_to_local / local_to_global are inverse bijections onto
// [0, local_volume).
TEST_P(DescriptorSweep, LocalStorageMappingIsBijective) {
  const auto& d = *GetParam().desc;
  for (int r = 0; r < d.nranks(); ++r) {
    std::set<Index> offsets;
    for (const auto& p : d.patches_of(r)) {
      p.for_each_point([&](const Point& pt) {
        const Index off = d.global_to_local(r, pt);
        EXPECT_GE(off, 0);
        EXPECT_LT(off, d.local_volume(r));
        EXPECT_TRUE(offsets.insert(off).second);
        EXPECT_EQ(d.local_to_global(r, off), pt);
      });
    }
  }
}

TEST_P(DescriptorSweep, SurvivesSerialization) {
  const auto& d = *GetParam().desc;
  mxn::rt::PackBuffer b;
  d.pack(b);
  auto bytes = std::move(b).take();
  mxn::rt::UnpackBuffer u(bytes);
  EXPECT_TRUE(Descriptor::unpack(u) == d);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DescriptorSweep,
    ::testing::Values(
        make_case("block1d",
                  Descriptor::regular({AxisDist::block(23, 4)})),
        make_case("cyclic1d",
                  Descriptor::regular({AxisDist::cyclic(17, 3)})),
        make_case("bc2d",
                  Descriptor::regular({AxisDist::block_cyclic(12, 2, 2),
                                       AxisDist::cyclic(9, 3)})),
        make_case("gen2d",
                  Descriptor::regular(
                      {AxisDist::generalized_block({3, 0, 5}),
                       AxisDist::block(7, 2)})),
        make_case("implicit1d",
                  Descriptor::regular({AxisDist::implicit(
                      {0, 1, 0, 2, 2, 1, 0, 0, 1, 2, 2, 0})})),
        make_case("collapsed3d",
                  Descriptor::regular({AxisDist::block(6, 2),
                                       AxisDist::collapsed(5),
                                       AxisDist::cyclic(4, 2)})),
        make_case("explicit2d",
                  Descriptor::explicit_patches(
                      2, Point{6, 6},
                      {{patch2(0, 3, 0, 6), 0},
                       {patch2(3, 6, 0, 2), 1},
                       {patch2(3, 6, 2, 6), 2}},
                      3))),
    [](const auto& info) { return info.param.name; });

// ---------------------------------------------------------------------------
// DistArray
// ---------------------------------------------------------------------------

TEST(DistArray, FillAndAtAgree) {
  auto d = dad::make_regular(
      std::vector<AxisDist>{AxisDist::block(6, 2), AxisDist::cyclic(6, 3)});
  for (int r = 0; r < d->nranks(); ++r) {
    dad::DistArray<double> a(d, r);
    a.fill([](const Point& p) { return 100.0 * p[0] + p[1]; });
    for (const auto& patch : d->patches_of(r)) {
      patch.for_each_point([&](const Point& pt) {
        EXPECT_DOUBLE_EQ(a.at(pt), 100.0 * pt[0] + pt[1]);
      });
    }
  }
}

TEST(DistArray, ExtractInjectRoundTrip) {
  auto d = dad::make_regular(
      std::vector<AxisDist>{AxisDist::block(8, 2), AxisDist::block(8, 2)});
  dad::DistArray<int> a(d, 0);
  a.fill([](const Point& p) { return static_cast<int>(10 * p[0] + p[1]); });

  // Region inside rank 0's patch [0,4)x[0,4).
  auto region = patch2(1, 3, 1, 4);
  auto vals = a.extract(region);
  ASSERT_EQ(vals.size(), 6u);
  // Row-major region order: (1,1),(1,2),(1,3),(2,1),(2,2),(2,3)
  EXPECT_EQ(vals[0], 11);
  EXPECT_EQ(vals[2], 13);
  EXPECT_EQ(vals[3], 21);

  // Zero the region then inject back.
  std::vector<int> zeros(6, 0);
  a.inject(region, zeros.data());
  EXPECT_EQ(a.at(Point{1, 1}), 0);
  a.inject(region, vals.data());
  EXPECT_EQ(a.at(Point{1, 1}), 11);
  EXPECT_EQ(a.at(Point{2, 3}), 23);
}

TEST(DistArray, ExtractRejectsRegionSpanningPatches) {
  auto d = dad::make_regular(std::vector<AxisDist>{AxisDist::cyclic(8, 2)});
  dad::DistArray<int> a(d, 0);
  // Rank 0 owns {0,2,4,6}: region [0,3) spans two owned patches.
  EXPECT_THROW(a.extract(patch1(0, 3)), mxn::rt::UsageError);
}

TEST(DistArray, LocalSpanMatchesVolume) {
  auto d = dad::make_regular(std::vector<AxisDist>{AxisDist::block(10, 3)});
  dad::DistArray<float> a(d, 2);
  EXPECT_EQ(a.local().size(), static_cast<std::size_t>(d->local_volume(2)));
}
