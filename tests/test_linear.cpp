// Tests for the linearization intermediate representation (src/linear):
// segment algebra, axis-order mappings, and footprints with storage
// provenance.

#include <gtest/gtest.h>

#include <numeric>

#include "dad/dist_array.hpp"
#include "linear/linearization.hpp"

namespace dad = mxn::dad;
namespace lin = mxn::linear;
using dad::AxisDist;
using dad::Index;
using dad::Point;
using lin::Linearization;
using lin::Segment;

TEST(Segments, NormalizeSortsAndMerges) {
  auto out = lin::normalize({{5, 9}, {0, 3}, {3, 5}, {12, 12}, {8, 10}});
  EXPECT_EQ(out, (std::vector<Segment>{{0, 10}}));
}

TEST(Segments, IntersectTwoPointer) {
  std::vector<Segment> a = {{0, 5}, {10, 20}, {30, 40}};
  std::vector<Segment> b = {{3, 12}, {15, 35}};
  auto c = lin::intersect(a, b);
  EXPECT_EQ(c, (std::vector<Segment>{{3, 5}, {10, 12}, {15, 20}, {30, 35}}));
  EXPECT_EQ(lin::total_length(c), 2 + 2 + 5 + 5);
}

TEST(Segments, IntersectDisjointIsEmpty) {
  EXPECT_TRUE(lin::intersect({{0, 5}}, {{5, 9}}).empty());
}

TEST(Linearization, RowMajorMatchesOffsets) {
  auto l = Linearization::row_major(2, Point{3, 4});
  EXPECT_EQ(l.total(), 12);
  EXPECT_EQ(l.offset_of(Point{0, 0}), 0);
  EXPECT_EQ(l.offset_of(Point{0, 1}), 1);
  EXPECT_EQ(l.offset_of(Point{1, 0}), 4);
  EXPECT_EQ(l.fastest_axis(), 1);
  EXPECT_TRUE(l.is_row_major());
}

TEST(Linearization, ColumnMajorReversesAxes) {
  auto l = Linearization::column_major(2, Point{3, 4});
  EXPECT_EQ(l.offset_of(Point{1, 0}), 1);
  EXPECT_EQ(l.offset_of(Point{0, 1}), 3);
  EXPECT_EQ(l.fastest_axis(), 0);
  EXPECT_FALSE(l.is_row_major());
}

TEST(Linearization, OffsetPointRoundTrip) {
  auto l = Linearization::axis_order(3, Point{2, 3, 4}, {1, 2, 0});
  for (Index off = 0; off < l.total(); ++off)
    EXPECT_EQ(l.offset_of(l.point_at(off)), off);
}

TEST(Linearization, RejectsBadOrder) {
  EXPECT_THROW(Linearization::axis_order(2, Point{2, 2}, {0, 0}),
               mxn::rt::UsageError);
  EXPECT_THROW(Linearization::axis_order(2, Point{2, 2}, {0, 2}),
               mxn::rt::UsageError);
}

TEST(Footprint, BlockDistributionIsOneSegment) {
  auto d = dad::Descriptor::regular({AxisDist::block(12, 3)});
  auto l = Linearization::row_major(1, Point{12});
  EXPECT_EQ(lin::footprint(d, 0, l), (std::vector<Segment>{{0, 4}}));
  EXPECT_EQ(lin::footprint(d, 2, l), (std::vector<Segment>{{8, 12}}));
}

TEST(Footprint, CyclicDistributionIsManySegments) {
  auto d = dad::Descriptor::regular({AxisDist::cyclic(8, 2)});
  auto l = Linearization::row_major(1, Point{8});
  EXPECT_EQ(lin::footprint(d, 1, l),
            (std::vector<Segment>{{1, 2}, {3, 4}, {5, 6}, {7, 8}}));
}

TEST(Footprint, TwoDimensionalBlockRowMajor) {
  // 4x4 block over 2x2 grid; rank 1 owns rows 0-1, cols 2-3.
  auto d = dad::Descriptor::regular(
      {AxisDist::block(4, 2), AxisDist::block(4, 2)});
  auto l = Linearization::row_major(2, Point{4, 4});
  EXPECT_EQ(lin::footprint(d, 1, l), (std::vector<Segment>{{2, 4}, {6, 8}}));
}

TEST(Footprint, FootprintsPartitionLinearSpace) {
  auto d = dad::Descriptor::regular(
      {AxisDist::block_cyclic(9, 2, 2), AxisDist::cyclic(7, 3)});
  for (const auto& l : {Linearization::row_major(2, Point{9, 7}),
                        Linearization::column_major(2, Point{9, 7})}) {
    std::vector<Segment> all;
    for (int r = 0; r < d.nranks(); ++r) {
      auto f = lin::footprint(d, r, l);
      all.insert(all.end(), f.begin(), f.end());
      // Footprint size equals local volume.
      EXPECT_EQ(lin::total_length(f), d.local_volume(r));
    }
    auto merged = lin::normalize(all);
    ASSERT_EQ(merged.size(), 1u);
    EXPECT_EQ(merged[0], (Segment{0, 63}));
    // Disjointness: total length conserved under merge.
    EXPECT_EQ(lin::total_length(all), 63);
  }
}

TEST(Footprint, ProvenanceLocatesEveryElement) {
  auto desc = dad::make_regular(std::vector<AxisDist>{
      AxisDist::block(6, 2), AxisDist::cyclic(6, 2)});
  auto l = Linearization::column_major(2, Point{6, 6});
  for (int r = 0; r < desc->nranks(); ++r) {
    dad::DistArray<int> a(desc, r);
    a.fill([&](const Point& p) { return static_cast<int>(l.offset_of(p)); });
    auto prov = lin::footprint_with_provenance(*desc, r, l);
    for (const auto& ps : prov) {
      for (Index k = ps.seg.lo; k < ps.seg.hi; ++k) {
        const Index storage =
            ps.storage_offset + (k - ps.seg.lo) * ps.storage_stride;
        EXPECT_EQ(a.local()[static_cast<std::size_t>(storage)], k)
            << "rank " << r << " linear index " << k;
      }
    }
  }
}

TEST(Footprint, DimensionMismatchRejected) {
  auto d = dad::Descriptor::regular({AxisDist::block(12, 3)});
  auto l = Linearization::row_major(2, Point{3, 4});
  EXPECT_THROW(lin::footprint(d, 0, l), mxn::rt::UsageError);
}
