// Tests for the Distributed CCA Architecture framework (src/dca):
// communicator-based process participation, barrier-before-delivery (the
// paper's Figure 5 synchronization fix — including reproducing the deadlock
// when the barrier is disabled), alltoallv-style user-specified parallel
// data, Go ports and one-way methods.

#include <gtest/gtest.h>

#include <chrono>
#include <numeric>
#include <thread>

#include "dca/framework.hpp"
#include "rt/runtime.hpp"
#include "sidl/parser.hpp"

namespace dca = mxn::dca;
namespace rt = mxn::rt;
using dca::DcaValue;

namespace {

const char* kSidl = R"(
  package dcademo {
    interface Solver {
      collective double sum_all(in double x);
      collective void deposit(in parallel array<double,1> data);
      collective void minmax(in array<double,1> values, out double lo,
                             out double hi);
      collective oneway void log_event(in string what);
      collective double slow_reduce(in double x);
    }
  }
)";

std::vector<int> iota_ranks(int from, int count) {
  std::vector<int> r(count);
  std::iota(r.begin(), r.end(), from);
  return r;
}

struct ServerData {
  std::vector<double> deposited;  // per callee rank: concatenated chunks
  int events = 0;
};

std::shared_ptr<dca::DcaServant> make_solver(ServerData* data) {
  auto pkg = mxn::sidl::parse_package(kSidl);
  auto s = std::make_shared<dca::DcaServant>(pkg.interface("Solver"));
  s->bind("sum_all",
          [](dca::DcaContext& ctx, std::vector<DcaValue>& args) -> DcaValue {
            const double x = std::get<double>(args[0]);
            return ctx.cohort.allreduce(
                x * (ctx.cohort.rank() + 1),
                [](double a, double b) { return a + b; });
          });
  s->bind("deposit",
          [data](dca::DcaContext&, std::vector<DcaValue>& args) -> DcaValue {
            const auto& in = std::get<dca::ParallelIn>(args[0]);
            data->deposited.clear();
            for (const auto& chunk : in.chunks)
              data->deposited.insert(data->deposited.end(), chunk.begin(),
                                     chunk.end());
            return {};
          });
  s->bind("minmax",
          [](dca::DcaContext&, std::vector<DcaValue>& args) -> DcaValue {
            const auto& v = std::get<std::vector<double>>(args[0]);
            args[1] = *std::min_element(v.begin(), v.end());
            args[2] = *std::max_element(v.begin(), v.end());
            return {};
          });
  s->bind("log_event",
          [data](dca::DcaContext&, std::vector<DcaValue>&) -> DcaValue {
            ++data->events;
            return {};
          });
  s->bind("slow_reduce",
          [](dca::DcaContext& ctx, std::vector<DcaValue>& args) -> DcaValue {
            return ctx.cohort.allreduce(
                std::get<double>(args[0]),
                [](double a, double b) { return a + b; });
          });
  return s;
}

}  // namespace

TEST(Dca, FullCohortCollectiveCall) {
  rt::spawn(5, [](rt::Communicator& world) {
    dca::DcaFramework fw(world);
    fw.instantiate("client", iota_ranks(0, 2));
    fw.instantiate("server", iota_ranks(2, 3));
    ServerData data;
    if (fw.member_of("server"))
      fw.add_provides("server", "solver", make_solver(&data));
    if (fw.member_of("client")) {
      auto pkg = mxn::sidl::parse_package(kSidl);
      fw.register_uses("client", "solver", pkg.interface("Solver"));
    }
    fw.connect("client", "solver", "server", "solver");
    if (fw.member_of("server")) {
      EXPECT_EQ(fw.serve("server", 1), 1);
    } else {
      auto port = fw.get_port("client", "solver");
      auto r = port->call(fw.cohort("client"), "sum_all", {2.0});
      EXPECT_DOUBLE_EQ(std::get<double>(r.ret), 2.0 * (1 + 2 + 3));
    }
  });
}

TEST(Dca, SubsetParticipationViaCommunicator) {
  // Only caller ranks {1, 2} of a 3-rank client participate; rank 0 sits
  // out entirely — the participation flexibility the DCA argues for.
  rt::spawn(5, [](rt::Communicator& world) {
    dca::DcaFramework fw(world);
    fw.instantiate("client", iota_ranks(0, 3));
    fw.instantiate("server", iota_ranks(3, 2));
    ServerData data;
    if (fw.member_of("server"))
      fw.add_provides("server", "solver", make_solver(&data));
    if (fw.member_of("client")) {
      auto pkg = mxn::sidl::parse_package(kSidl);
      fw.register_uses("client", "solver", pkg.interface("Solver"));
    }
    fw.connect("client", "solver", "server", "solver");
    if (fw.member_of("server")) {
      EXPECT_EQ(fw.serve("server", 1), 1);
    } else {
      auto cohort = fw.cohort("client");
      auto sub = cohort.split(cohort.rank() >= 1 ? 0 : rt::kUndefinedColor,
                              cohort.rank());
      if (!sub.is_null()) {
        auto port = fw.get_port("client", "solver");
        auto r = port->call(sub, "sum_all", {1.0});
        EXPECT_DOUBLE_EQ(std::get<double>(r.ret), 3.0);
      }
    }
  });
}

TEST(Dca, AlltoallvParallelData) {
  // Two participants scatter slices to two callees via counts/displs.
  rt::spawn(4, [](rt::Communicator& world) {
    dca::DcaFramework fw(world);
    fw.instantiate("client", iota_ranks(0, 2));
    fw.instantiate("server", iota_ranks(2, 2));
    ServerData data;
    if (fw.member_of("server"))
      fw.add_provides("server", "solver", make_solver(&data));
    if (fw.member_of("client")) {
      auto pkg = mxn::sidl::parse_package(kSidl);
      fw.register_uses("client", "solver", pkg.interface("Solver"));
    }
    fw.connect("client", "solver", "server", "solver");
    if (fw.member_of("server")) {
      fw.serve("server", 1);
      // Callee j receives participant 0's then participant 1's chunk.
      const double base = 100.0 * fw.cohort("server").rank();
      ASSERT_EQ(data.deposited.size(), 4u);
      EXPECT_DOUBLE_EQ(data.deposited[0], base + 0);      // from part 0
      EXPECT_DOUBLE_EQ(data.deposited[1], base + 1);
      EXPECT_DOUBLE_EQ(data.deposited[2], 1000 + base);   // from part 1
      EXPECT_DOUBLE_EQ(data.deposited[3], 1000 + base + 1);
    } else {
      auto cohort = fw.cohort("client");
      auto port = fw.get_port("client", "solver");
      // Participant k's buffer: [to_callee0 x2, to_callee1 x2].
      dca::ParallelOut po;
      const double base = cohort.rank() == 0 ? 0.0 : 1000.0;
      po.data = {base + 0, base + 1, base + 100, base + 101};
      po.counts = {2, 2};
      po.displs = {0, 2};
      port->call(cohort, "deposit", {std::move(po)});
    }
  });
}

TEST(Dca, OutParametersAndReplicatedArrays) {
  rt::spawn(2, [](rt::Communicator& world) {
    dca::DcaFramework fw(world);
    fw.instantiate("client", {0});
    fw.instantiate("server", {1});
    ServerData data;
    if (fw.member_of("server")) {
      fw.add_provides("server", "solver", make_solver(&data));
      fw.connect("client", "solver", "server", "solver");
      fw.serve("server", 1);
    } else {
      auto pkg = mxn::sidl::parse_package(kSidl);
      fw.register_uses("client", "solver", pkg.interface("Solver"));
      fw.connect("client", "solver", "server", "solver");
      auto port = fw.get_port("client", "solver");
      auto r = port->call(fw.cohort("client"), "minmax",
                          {std::vector<double>{3.5, -2.0, 7.25}, DcaValue{},
                           DcaValue{}});
      EXPECT_DOUBLE_EQ(std::get<double>(r.args[1]), -2.0);
      EXPECT_DOUBLE_EQ(std::get<double>(r.args[2]), 7.25);
    }
  });
}

TEST(Dca, OnewayEventsAndGoPorts) {
  rt::spawn(3, [](rt::Communicator& world) {
    dca::DcaFramework fw(world);
    fw.instantiate("client", iota_ranks(0, 2));
    fw.instantiate("server", {2});
    ServerData data;
    if (fw.member_of("server")) {
      fw.add_provides("server", "solver", make_solver(&data));
      fw.add_go("server", [&] {
        // 2 oneway events + 1 sync call.
        fw.serve("server", 3);
        return data.events == 2 ? 0 : 7;
      });
    }
    if (fw.member_of("client")) {
      auto pkg = mxn::sidl::parse_package(kSidl);
      fw.register_uses("client", "solver", pkg.interface("Solver"));
      fw.add_go("client", [&] {
        auto cohort = fw.cohort("client");
        auto port = fw.get_port("client", "solver");
        port->call_oneway(cohort, "log_event", {std::string("a")});
        port->call_oneway(cohort, "log_event", {std::string("b")});
        auto r = port->call(cohort, "sum_all", {1.0});
        return std::get<double>(r.ret) == 1.0 ? 0 : 8;
      });
    }
    fw.connect("client", "solver", "server", "solver");
    EXPECT_EQ(fw.start_all(), 0);
  });
}

TEST(Dca, ParallelOutValidation) {
  rt::spawn(2, [](rt::Communicator& world) {
    dca::DcaFramework fw(world);
    fw.instantiate("client", {0});
    fw.instantiate("server", {1});
    ServerData data;
    if (fw.member_of("server")) {
      fw.add_provides("server", "solver", make_solver(&data));
      fw.connect("client", "solver", "server", "solver");
    } else {
      auto pkg = mxn::sidl::parse_package(kSidl);
      fw.register_uses("client", "solver", pkg.interface("Solver"));
      fw.connect("client", "solver", "server", "solver");
      auto port = fw.get_port("client", "solver");
      auto cohort = fw.cohort("client");
      dca::ParallelOut bad;
      bad.data = {1.0};
      bad.counts = {5};  // overruns buffer
      bad.displs = {0};
      EXPECT_THROW(port->call(cohort, "deposit", {bad}), rt::UsageError);
      dca::ParallelOut wrong_n;
      wrong_n.data = {1.0};
      wrong_n.counts = {1, 1};  // server has 1 rank
      wrong_n.displs = {0, 0};
      EXPECT_THROW(port->call(cohort, "deposit", {wrong_n}), rt::UsageError);
    }
  });
}

// ---------------------------------------------------------------------------
// Figure 5: the synchronization problem
// ---------------------------------------------------------------------------

namespace {

/// The paper's Figure 5 scenario. Client cohort of 3. Processes {1,2} make
/// collective call A; later all of {0,1,2} make collective call B. Process
/// 0 reaches its (only) call immediately; processes 1 and 2 reach call A
/// first. Without barrier-delayed delivery the server can commit to call B
/// (first fragment from process 0) and then wait forever for fragments
/// from processes 1 and 2, which are blocked on call A's return.
void fig5_scenario(bool barrier, int deadlock_timeout_ms) {
  rt::spawn(
      4,
      [&](rt::Communicator& world) {
        dca::DcaFramework fw(world, {.barrier_before_delivery = barrier});
        fw.instantiate("client", iota_ranks(0, 3));
        fw.instantiate("server", {3});
        ServerData data;
        if (fw.member_of("server")) {
          fw.add_provides("server", "solver", make_solver(&data));
          fw.connect("client", "solver", "server", "solver");
          fw.serve("server", 2);
        } else {
          auto pkg = mxn::sidl::parse_package(kSidl);
          fw.register_uses("client", "solver", pkg.interface("Solver"));
          fw.connect("client", "solver", "server", "solver");
          auto cohort = fw.cohort("client");
          auto port = fw.get_port("client", "solver");
          // Subset for call A = cohort ranks {1,2}.
          auto subA = cohort.split(
              cohort.rank() >= 1 ? 0 : rt::kUndefinedColor, cohort.rank());
          if (cohort.rank() == 0) {
            // Reach call B first: without the barrier its fragment is
            // delivered immediately and the server commits to call B.
            port->call(cohort, "slow_reduce", {1.0});  // call B
          } else {
            // Ranks 1,2 arrive later, issue call A, and block on its
            // return — so their call-B fragments never materialize.
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
            port->call(subA, "sum_all", {1.0});        // call A
            port->call(cohort, "slow_reduce", {1.0});  // call B
          }
        }
      },
      {.deadlock_timeout_ms = deadlock_timeout_ms});
}

}  // namespace

TEST(DcaFig5, BarrierDelayedDeliveryCompletes) {
  // With the barrier, call B's delivery is delayed until ranks 1,2 reach it
  // — which is after call A completes. No deadlock.
  fig5_scenario(/*barrier=*/true, /*deadlock_timeout_ms=*/2000);
}

TEST(DcaFig5, NoBarrierDeadlocks) {
  // Without the barrier the system deadlocks exactly as Figure 5 predicts;
  // the runtime watchdog detects it.
  EXPECT_THROW(fig5_scenario(/*barrier=*/false, /*deadlock_timeout_ms=*/400),
               rt::DeadlockError);
}
