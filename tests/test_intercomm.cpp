// Tests for the InterComm layer (src/intercomm): partitioned explicit
// descriptors with the distributed schedule builder, LocalArray, and
// timestamp-coordinated import/export under Exact, LowerBound and
// UpperBound matching.

#include <gtest/gtest.h>

#include <chrono>
#include <numeric>
#include <thread>

#include "core/erased_exec.hpp"
#include "intercomm/coupler.hpp"
#include "intercomm/distributed_schedule.hpp"
#include "intercomm/local_array.hpp"
#include "rt/runtime.hpp"

namespace ic = mxn::intercomm;
namespace dad = mxn::dad;
namespace core = mxn::core;
namespace sched = mxn::sched;
namespace rt = mxn::rt;
using dad::AxisDist;
using dad::Patch;
using dad::Point;

namespace {

Patch patch2(dad::Index lo0, dad::Index hi0, dad::Index lo1, dad::Index hi1) {
  return Patch::make(2, Point{lo0, lo1}, Point{hi0, hi1});
}

/// Endpoint configs for exporter ranks [0,m) and importer ranks [m,m+n).
ic::EndpointConfig make_cfg(rt::Communicator world, rt::Communicator cohort,
                            int m, int n, bool exporter, int id = 0) {
  ic::EndpointConfig cfg;
  cfg.channel = std::move(world);
  cfg.cohort = std::move(cohort);
  std::vector<int> exp(m), imp(n);
  std::iota(exp.begin(), exp.end(), 0);
  std::iota(imp.begin(), imp.end(), m);
  cfg.my_ranks = exporter ? exp : imp;
  cfg.peer_ranks = exporter ? imp : exp;
  cfg.coupling_id = id;
  return cfg;
}

}  // namespace

// ---------------------------------------------------------------------------
// LocalArray
// ---------------------------------------------------------------------------

TEST(LocalArray, FillAtExtractInject) {
  ic::LocalArray<double> a({patch2(0, 2, 0, 3), patch2(5, 7, 1, 3)});
  a.fill([](const Point& p) { return 10.0 * p[0] + p[1]; });
  EXPECT_DOUBLE_EQ(a.at(Point{1, 2}), 12.0);
  EXPECT_DOUBLE_EQ(a.at(Point{6, 1}), 61.0);
  EXPECT_THROW((void)a.at(Point{3, 0}), rt::UsageError);

  auto region = patch2(5, 7, 2, 3);
  std::vector<double> out(2);
  a.extract(region, out.data());
  EXPECT_DOUBLE_EQ(out[0], 52.0);
  EXPECT_DOUBLE_EQ(out[1], 62.0);
  std::vector<double> in = {-1.0, -2.0};
  a.inject(region, in.data());
  EXPECT_DOUBLE_EQ(a.at(Point{5, 2}), -1.0);
}

TEST(LocalArray, RejectsOverlapAndEmpty) {
  EXPECT_THROW(ic::LocalArray<int>({patch2(0, 2, 0, 2), patch2(1, 3, 0, 2)}),
               rt::UsageError);
  EXPECT_THROW(ic::LocalArray<int>({patch2(0, 0, 0, 2)}), rt::UsageError);
}

// ---------------------------------------------------------------------------
// Distributed (partitioned-descriptor) schedule builder
// ---------------------------------------------------------------------------

TEST(PartitionedSchedule, MatchesReplicatedBuilder) {
  // Same decomposition built both ways must produce identical transfers.
  auto src = dad::make_regular(std::vector<AxisDist>{
      AxisDist::block(12, 2), AxisDist::block(6, 1)});
  auto dst = dad::make_regular(std::vector<AxisDist>{
      AxisDist::block(12, 3), AxisDist::block(6, 1)});
  const int m = 2, n = 3;
  rt::spawn(m + n, [&](rt::Communicator& world) {
    auto c = sched::split_coupling(world, m, n);
    const int ms = c.my_src_rank(), md = c.my_dst_rank();
    auto replicated = sched::build_region_schedule(*src, *dst, ms, md);
    auto partitioned = ic::build_region_schedule_partitioned(
        ms >= 0 ? src->patches_of(ms) : std::vector<Patch>{},
        md >= 0 ? dst->patches_of(md) : std::vector<Patch>{}, c, 50);
    ASSERT_EQ(partitioned.sends.size(), replicated.sends.size());
    for (std::size_t i = 0; i < partitioned.sends.size(); ++i) {
      EXPECT_EQ(partitioned.sends[i].peer, replicated.sends[i].peer);
      EXPECT_EQ(partitioned.sends[i].regions, replicated.sends[i].regions);
    }
    ASSERT_EQ(partitioned.recvs.size(), replicated.recvs.size());
    for (std::size_t i = 0; i < partitioned.recvs.size(); ++i)
      EXPECT_EQ(partitioned.recvs[i].elements,
                replicated.recvs[i].elements);
  });
}

TEST(PartitionedSchedule, MovesIrregularPatchesEndToEnd) {
  // Source: 2 ranks with irregular patches covering [0,6)x[0,4); importers:
  // 2 ranks with a different irregular cover. No global descriptor exists.
  rt::spawn(4, [&](rt::Communicator& world) {
    auto c = sched::split_coupling(world, 2, 2);
    const int ms = c.my_src_rank(), md = c.my_dst_rank();
    std::vector<Patch> mine;
    if (ms == 0) mine = {patch2(0, 3, 0, 4)};
    if (ms == 1) mine = {patch2(3, 6, 0, 2), patch2(3, 6, 2, 4)};
    if (md == 0) mine = {patch2(0, 6, 0, 1), patch2(0, 6, 3, 4)};
    if (md == 1) mine = {patch2(0, 6, 1, 3)};

    ic::LocalArray<double> arr(mine);
    if (ms >= 0) arr.fill([](const Point& p) { return 7.0 * p[0] + p[1]; });

    auto s = ic::build_region_schedule_partitioned(
        ms >= 0 ? mine : std::vector<Patch>{},
        md >= 0 ? mine : std::vector<Patch>{}, c, 60);

    // Execute through the erased executor.
    auto field = ic::make_local_field("f", &arr);
    core::execute_erased(s, ms >= 0 ? &field : nullptr,
                         md >= 0 ? &field : nullptr, c, 70);
    if (md >= 0) {
      arr.for_each_owned([](const Point& p, const double& v) {
        EXPECT_DOUBLE_EQ(v, 7.0 * p[0] + p[1]);
      });
    }
  });
}

// ---------------------------------------------------------------------------
// Timestamp-coordinated import/export
// ---------------------------------------------------------------------------

namespace {

/// Run an exporter program (m ranks) against an importer program (n ranks).
void run_coupled(
    int m, int n, ic::MatchPolicy policy, int depth,
    const std::function<void(ic::Exporter&, dad::DistArray<double>&,
                             rt::Communicator&)>& exporter_body,
    const std::function<void(ic::Importer&, dad::DistArray<double>&,
                             rt::Communicator&)>& importer_body) {
  auto exp_desc = dad::make_regular(std::vector<AxisDist>{
      AxisDist::block(12, m)});
  auto imp_desc = dad::make_regular(std::vector<AxisDist>{
      AxisDist::cyclic(12, n)});
  rt::spawn(m + n, [&](rt::Communicator& world) {
    const bool is_exp = world.rank() < m;
    auto cohort = world.split(is_exp ? 0 : 1, world.rank());
    auto cfg = make_cfg(world, cohort, m, n, is_exp);
    if (is_exp) {
      dad::DistArray<double> arr(exp_desc, cohort.rank());
      auto exp = ic::Exporter::replicated(
          cfg, core::make_field("f", &arr, core::AccessMode::Read), policy,
          depth);
      exporter_body(exp, arr, cohort);
      exp.finalize();
    } else {
      dad::DistArray<double> arr(imp_desc, cohort.rank());
      auto imp = ic::Importer::replicated(
          cfg, core::make_field("f", &arr, core::AccessMode::Write), policy);
      importer_body(imp, arr, cohort);
      imp.close();
    }
  });
}

}  // namespace

TEST(Coupler, ExactMatchSamplesEveryOtherStep) {
  // Exporter produces ts = 1..6; importer samples ts = 2, 4, 6. Buffer deep
  // enough that no export ages out regardless of timing.
  run_coupled(
      2, 2, ic::MatchPolicy::Exact, 8,
      [](ic::Exporter& exp, dad::DistArray<double>& arr, rt::Communicator&) {
        for (int t = 1; t <= 6; ++t) {
          arr.fill([t](const Point& p) { return 100.0 * t + p[0]; });
          exp.do_export(t);
        }
      },
      [](ic::Importer& imp, dad::DistArray<double>& arr, rt::Communicator&) {
        for (int t = 2; t <= 6; t += 2) {
          EXPECT_EQ(imp.do_import(t), t);
          arr.for_each_owned([t](const Point& p, const double& v) {
            EXPECT_DOUBLE_EQ(v, 100.0 * t + p[0]);
          });
        }
      });
}

TEST(Coupler, LowerBoundPicksGreatestEarlierExport) {
  // Exports at ts = 10, 20, 30; import at 25 must match 20; import at 31
  // is only decidable at stream end (finalize) and matches 30.
  run_coupled(
      2, 1, ic::MatchPolicy::LowerBound, 4,
      [](ic::Exporter& exp, dad::DistArray<double>& arr, rt::Communicator&) {
        for (int t : {10, 20, 30}) {
          arr.fill([t](const Point& p) { return t + 0.001 * p[0]; });
          exp.do_export(t);
        }
      },
      [](ic::Importer& imp, dad::DistArray<double>& arr, rt::Communicator&) {
        EXPECT_EQ(imp.do_import(25), 20);
        arr.for_each_owned([](const Point& p, const double& v) {
          EXPECT_DOUBLE_EQ(v, 20 + 0.001 * p[0]);
        });
        EXPECT_EQ(imp.do_import(31), 30);
      });
}

TEST(Coupler, UpperBoundWaitsForFreshEnoughData) {
  // Exports at ts = 10, 20, 30. An import at 12 must match 20 — and is
  // only decidable once an export >= 12 exists; an import at 31 has no
  // match even at stream end.
  run_coupled(
      1, 2, ic::MatchPolicy::UpperBound, 8,
      [](ic::Exporter& exp, dad::DistArray<double>& arr, rt::Communicator&) {
        for (int t : {10, 20, 30}) {
          arr.fill([t](const Point& p) { return t + 0.5 * p[0]; });
          exp.do_export(t);
        }
      },
      [](ic::Importer& imp, dad::DistArray<double>& arr, rt::Communicator&) {
        EXPECT_EQ(imp.do_import(12), 20);
        arr.for_each_owned([](const Point& p, const double& v) {
          EXPECT_DOUBLE_EQ(v, 20 + 0.5 * p[0]);
        });
        EXPECT_EQ(imp.do_import(30), 30);
        EXPECT_THROW(imp.do_import(31), ic::NoMatchError);
      });
}

TEST(Coupler, ExactMissThrowsNoMatch) {
  // Import ts=5 while exports are 2, 4, 6: decidable (max >= 5), no match.
  run_coupled(
      1, 1, ic::MatchPolicy::Exact, 4,
      [](ic::Exporter& exp, dad::DistArray<double>& arr, rt::Communicator&) {
        for (int t : {2, 4, 6}) {
          arr.fill([](const Point&) { return 0.0; });
          exp.do_export(t);
        }
      },
      [](ic::Importer& imp, dad::DistArray<double>&, rt::Communicator&) {
        EXPECT_THROW(imp.do_import(5), ic::NoMatchError);
        EXPECT_EQ(imp.do_import(6), 6);
      });
}

TEST(Coupler, BufferDepthAgesOutOldExports) {
  // Depth 2: after exports 1,2,3 only {2,3} remain; Exact import of 1 fails.
  run_coupled(
      1, 1, ic::MatchPolicy::Exact, 2,
      [](ic::Exporter& exp, dad::DistArray<double>& arr, rt::Communicator&) {
        for (int t : {1, 2, 3}) {
          arr.fill([](const Point&) { return 1.0; });
          exp.do_export(t);
        }
      },
      [](ic::Importer& imp, dad::DistArray<double>&, rt::Communicator&) {
        // Let the exporter finish all three exports first, so ts=1 has
        // deterministically aged out of its depth-2 buffer.
        std::this_thread::sleep_for(std::chrono::milliseconds(300));
        EXPECT_THROW(imp.do_import(1), ic::NoMatchError);
        EXPECT_EQ(imp.do_import(3), 3);
      });
}

TEST(Coupler, ExporterRunsAheadWithoutBlocking) {
  // The exporter finishes all its exports before the importer asks for
  // anything — the asynchronous decoupling §4.4 emphasizes.
  run_coupled(
      2, 2, ic::MatchPolicy::LowerBound, 8,
      [](ic::Exporter& exp, dad::DistArray<double>& arr, rt::Communicator&) {
        for (int t = 1; t <= 5; ++t) {
          arr.fill([t](const Point& p) { return 10.0 * t + p[0]; });
          exp.do_export(t);
        }
        // All exports issued; finalize() (in the harness) answers imports.
      },
      [](ic::Importer& imp, dad::DistArray<double>& arr, rt::Communicator&) {
        EXPECT_EQ(imp.do_import(3), 3);
        EXPECT_EQ(imp.do_import(100), 5);  // end-of-stream lower bound
        arr.for_each_owned([](const Point& p, const double& v) {
          EXPECT_DOUBLE_EQ(v, 50.0 + p[0]);
        });
      });
}

TEST(Coupler, StatsCountTransfersAndMisses) {
  run_coupled(
      1, 1, ic::MatchPolicy::Exact, 4,
      [](ic::Exporter& exp, dad::DistArray<double>& arr, rt::Communicator&) {
        arr.fill([](const Point&) { return 0.0; });
        exp.do_export(1);
        exp.do_export(2);
      },
      [](ic::Importer& imp, dad::DistArray<double>&, rt::Communicator&) {
        EXPECT_EQ(imp.do_import(2), 2);
        EXPECT_THROW(imp.do_import(7), ic::NoMatchError);
        EXPECT_EQ(imp.stats().transfers, 1u);
        EXPECT_EQ(imp.stats().requests, 2u);
        EXPECT_EQ(imp.stats().unmatched, 1u);
      });
}

TEST(Coupler, PartitionedCouplingMovesData) {
  // Explicit irregular patches on both sides, coupled with timestamps.
  rt::spawn(3, [&](rt::Communicator& world) {
    const bool is_exp = world.rank() < 2;
    auto cohort = world.split(is_exp ? 0 : 1, world.rank());
    auto cfg = make_cfg(world, cohort, 2, 1, is_exp, 1);
    if (is_exp) {
      std::vector<Patch> mine = cohort.rank() == 0
                                    ? std::vector<Patch>{patch2(0, 4, 0, 2)}
                                    : std::vector<Patch>{patch2(0, 4, 2, 5)};
      ic::LocalArray<double> arr(mine);
      arr.fill([](const Point& p) { return 5.0 * p[0] + p[1]; });
      auto exp = ic::Exporter::partitioned(cfg,
                                           ic::make_local_field("f", &arr),
                                           mine, ic::MatchPolicy::Exact, 2);
      exp.do_export(1);
      exp.finalize();
    } else {
      std::vector<Patch> mine = {patch2(0, 4, 0, 5)};
      ic::LocalArray<double> arr(mine);
      auto imp = ic::Importer::partitioned(cfg,
                                           ic::make_local_field("f", &arr),
                                           mine, ic::MatchPolicy::Exact);
      EXPECT_EQ(imp.do_import(1), 1);
      arr.for_each_owned([](const Point& p, const double& v) {
        EXPECT_DOUBLE_EQ(v, 5.0 * p[0] + p[1]);
      });
      imp.close();
    }
  });
}
