// Tests for elastic M×N rescaling (docs/RESCALING.md): Layout validation,
// schedule-cache epoch lifecycle, live grow/shrink repartitioning with
// element-exact migration, the unchanged-side keep path, and the acceptance
// chaos scenario — a component rescaled 4×3 → 6×2 → 2×5 → 4×3 mid-stream under
// seeded faults, with transfers staying element-exact and an interleaved
// PRMI conversation staying exactly-once.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include <chrono>
#include <thread>

#include "core/mxn_component.hpp"
#include "prmi/distributed_framework.hpp"
#include "rt/runtime.hpp"
#include "sched/cache.hpp"
#include "sidl/parser.hpp"
#include "trace/trace.hpp"

namespace core = mxn::core;
namespace dad = mxn::dad;
namespace prmi = mxn::prmi;
namespace rt = mxn::rt;
namespace sched = mxn::sched;
namespace trace = mxn::trace;
using dad::AxisDist;
using dad::Point;

namespace {

constexpr dad::Index kRows = 24;
constexpr dad::Index kCols = 10;

double value_at(const Point& p) { return 7.0 * p[0] + p[1]; }

/// The side-`s` decomposition of the shared kRows×kCols global array for a
/// cohort of `n` ranks. The two sides deliberately use different
/// distribution kinds so every transfer and every migration actually
/// redistributes.
dad::DescriptorPtr desc_for(int s, int n) {
  if (s == 0)
    return dad::make_regular(
        std::vector<AxisDist>{AxisDist::block(kRows, n),
                              AxisDist::collapsed(kCols)});
  return dad::make_regular(std::vector<AxisDist>{
      AxisDist::cyclic(kRows, n), AxisDist::collapsed(kCols)});
}

int index_in(const std::vector<int>& ranks, int r) {
  for (std::size_t i = 0; i < ranks.size(); ++i)
    if (ranks[i] == r) return static_cast<int>(i);
  return -1;
}

void expect_exact(dad::DistArray<double>& arr) {
  arr.for_each_owned([&](const Point& p, const double& v) {
    EXPECT_DOUBLE_EQ(v, value_at(p)) << "at (" << p[0] << "," << p[1] << ")";
  });
}

}  // namespace

// ---------------------------------------------------------------------------
// Layout
// ---------------------------------------------------------------------------

TEST(RescaleLayout, ValidationAndSideLookup) {
  core::Layout l{{0, 1, 2}, {4, 6}};
  l.validate(8);
  EXPECT_EQ(l.side_of(1), 0);
  EXPECT_EQ(l.side_of(6), 1);
  EXPECT_EQ(l.side_of(3), -1);  // spectator
  EXPECT_EQ(l.side(0).size(), 3u);
  EXPECT_EQ(l.side(1).size(), 2u);

  EXPECT_THROW((core::Layout{{}, {0}}.validate(4)), rt::UsageError);
  EXPECT_THROW((core::Layout{{0}, {}}.validate(4)), rt::UsageError);
  EXPECT_THROW((core::Layout{{0, 4}, {1}}.validate(4)), rt::UsageError);
  EXPECT_THROW((core::Layout{{0, -1}, {1}}.validate(4)), rt::UsageError);
  EXPECT_THROW((core::Layout{{0, 1}, {1, 2}}.validate(4)), rt::UsageError);
  EXPECT_THROW((core::Layout{{0, 0}, {1}}.validate(4)), rt::UsageError);
}

// ---------------------------------------------------------------------------
// ScheduleCache epoch lifecycle
// ---------------------------------------------------------------------------

TEST(ScheduleCacheEpoch, RetireDropsOlderGenerations) {
  sched::ScheduleCache cache;
  auto a = desc_for(0, 2);
  auto b = desc_for(1, 3);
  cache.get(a, b, 0, -1);  // epoch 0 entry
  EXPECT_EQ(cache.size(), 1u);

  cache.set_epoch(1);
  EXPECT_EQ(cache.epoch(), 1u);
  auto c = desc_for(1, 2);
  cache.get(a, c, 0, -1);  // epoch 1 entry
  EXPECT_EQ(cache.size(), 2u);

  EXPECT_EQ(cache.retire_epochs_before(1), 1u);  // only the epoch-0 entry
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.retire_epochs_before(1), 0u);  // idempotent
}

TEST(ScheduleCacheEpoch, HitRestampsEntry) {
  // An entry reused after the epoch advances is touched to the current
  // epoch, so a connection that re-resolved the same schedule across a
  // rescale never sees its reference retired from under it.
  sched::ScheduleCache cache;
  auto a = desc_for(0, 2);
  auto b = desc_for(1, 3);
  cache.get(a, b, 0, -1);  // built at epoch 0
  cache.set_epoch(5);
  cache.get(a, b, 0, -1);  // hit: re-stamped to epoch 5
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.retire_epochs_before(5), 0u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ScheduleCacheEpoch, VersionedDescriptorsAreDistinctKeys) {
  // with_version() changes the structural hash, so descriptors of different
  // rescale generations never collide in the cache even when the
  // decomposition is identical.
  auto a = desc_for(0, 2);
  auto a2 = std::make_shared<const dad::Descriptor>(a->with_version(3));
  EXPECT_FALSE(*a == *a2);
  EXPECT_NE(a->structural_hash(), a2->structural_hash());
  EXPECT_TRUE(a->same_shape(*a2));
  EXPECT_EQ(a2->version(), 3u);

  sched::ScheduleCache cache;
  auto b = desc_for(1, 3);
  cache.get(a, b, 0, -1);
  cache.get(a2, b, 0, -1);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.size(), 2u);
}

// ---------------------------------------------------------------------------
// Elastic components
// ---------------------------------------------------------------------------

TEST(Rescale, NonElasticComponentRejected) {
  rt::spawn(2, [](rt::Communicator& world) {
    auto comp = core::make_paired_mxn(world, 1, 1);
    EXPECT_FALSE(comp->elastic());
    EXPECT_THROW(comp->rescale(core::Layout{{0}, {1}}, {}), rt::UsageError);
  });
}

TEST(Rescale, ElasticRejectsPairedProposals) {
  rt::spawn(3, [](rt::Communicator& world) {
    auto comp = core::make_elastic_mxn(world, core::Layout{{0, 1}, {2}});
    core::ConnectionSpec spec;
    EXPECT_TRUE(comp->elastic());
    EXPECT_THROW(comp->propose(spec), rt::UsageError);
    EXPECT_THROW(comp->accept_proposal(), rt::UsageError);
  });
}

namespace {

/// Drive one rank of an elastic component through the layout sequence:
/// establish a persistent side0→side1 connection, then per epoch transfer,
/// verify element-exactness on BOTH sides (side 0 checks that migration
/// preserved its data — it is only filled once, before the first epoch),
/// and rescale to the next layout.
void run_rescale_sequence(rt::Communicator& world,
                          const std::vector<core::Layout>& layouts,
                          bool reliable, int timeout_ms, int max_retries) {
  const int me = world.rank();
  auto comp = core::make_elastic_mxn(world, layouts[0]);
  EXPECT_EQ(comp->is_member(), layouts[0].side_of(me) >= 0);

  int side = layouts[0].side_of(me);
  std::unique_ptr<dad::DistArray<double>> arr;
  if (side >= 0) {
    const auto& ranks = layouts[0].side(side);
    arr = std::make_unique<dad::DistArray<double>>(
        desc_for(side, static_cast<int>(ranks.size())), index_in(ranks, me));
    if (side == 0) arr->fill(value_at);
    comp->register_field(
        core::make_field("f", arr.get(), core::AccessMode::ReadWrite));
  }

  core::ConnectionSpec spec;
  spec.src_field = spec.dst_field = "f";
  spec.src_side = 0;
  spec.one_shot = false;
  spec.reliable = reliable;
  spec.timeout_ms = timeout_ms;
  spec.max_retries = max_retries;
  comp->establish(spec);

  for (std::size_t e = 0; e < layouts.size(); ++e) {
    if (side >= 0) {
      EXPECT_EQ(comp->data_ready("f"), 1);
      expect_exact(*arr);
    }
    if (e + 1 == layouts.size()) break;

    const core::Layout& next_layout = layouts[e + 1];
    const int next_side = next_layout.side_of(me);
    std::unique_ptr<dad::DistArray<double>> next;
    std::vector<core::FieldRegistration> regs;
    if (next_side >= 0) {
      const auto& ranks = next_layout.side(next_side);
      next = std::make_unique<dad::DistArray<double>>(
          desc_for(next_side, static_cast<int>(ranks.size())),
          index_in(ranks, me));
      regs.push_back(
          core::make_field("f", next.get(), core::AccessMode::ReadWrite));
    }
    comp->rescale(next_layout, std::move(regs), timeout_ms, max_retries);
    arr = std::move(next);  // the old generation's array may die now
    side = next_side;
    EXPECT_EQ(comp->rescale_epoch(), e + 1);
    if (side >= 0) expect_exact(*arr);  // migration was element-exact
  }

  const auto& st = comp->rescale_stats();
  EXPECT_EQ(st.epochs, layouts.size() - 1);
  EXPECT_EQ(comp->layout().side0, layouts.back().side0);
  EXPECT_EQ(comp->layout().side1, layouts.back().side1);
  if (me == 0) {
    // Data moved somewhere in the channel each epoch; this rank saw at
    // least the fence.
    EXPECT_GE(st.stall_ns, 0);
    EXPECT_GE(st.rescale_ns, 0);
  }
}

const std::vector<core::Layout> kAcceptanceLayouts = {
    {{0, 1, 2, 3}, {4, 5, 6}},           // 4×3, spectators 7–11
    {{0, 1, 2, 3, 4, 5}, {6, 7}},        // 6×2: grow side 0, shrink side 1
    {{10, 11}, {2, 3, 4, 5, 6}},         // 2×5: promote cold spectators,
                                         // retire 0/1, flip 2–5 to side 1
    {{0, 1, 2, 3}, {4, 5, 6}},           // back to 4×3: side 1 shrinks INTO
                                         // an overlapping subset — cyclic
                                         // survivors 4/5/6 mutually exchange
                                         // regions (regression: the exchange
                                         // must stage before its ack wait or
                                         // this cycle deadlocks)
};

}  // namespace

TEST(Rescale, GrowShrinkPreservesDataExactly) {
  rt::spawn(12, [&](rt::Communicator& world) {
    run_rescale_sequence(world, kAcceptanceLayouts, /*reliable=*/false,
                         /*timeout_ms=*/-1, /*max_retries=*/2);
  });
}

TEST(Rescale, CountersAdvance) {
  trace::set_enabled(true);
  const auto epochs0 = trace::counter("rescale.epochs").value();
  const auto bytes0 = trace::counter("rescale.migrated_bytes").value() +
                      trace::counter("rescale.local_bytes").value();
  rt::spawn(12, [&](rt::Communicator& world) {
    run_rescale_sequence(world, kAcceptanceLayouts, false, -1, 2);
  });
  // 12 ranks × 3 rescales each.
  EXPECT_EQ(trace::counter("rescale.epochs").value() - epochs0, 36u);
  // Both transitions change every rank list, so the field bytes moved —
  // locally or on the wire — at least once per migrated side.
  EXPECT_GT(trace::counter("rescale.migrated_bytes").value() +
                trace::counter("rescale.local_bytes").value(),
            bytes0);
}

TEST(Rescale, UnchangedSideKeepsRegistrations) {
  // Side 1's rank list is identical across the rescale, so its members may
  // skip re-registration: the old arrays stay live, untouched.
  rt::spawn(5, [](rt::Communicator& world) {
    const int me = world.rank();
    const core::Layout before{{0, 1}, {2, 3}};
    const core::Layout after{{0, 1, 4}, {2, 3}};
    auto comp = core::make_elastic_mxn(world, before);

    int side = before.side_of(me);
    std::unique_ptr<dad::DistArray<double>> arr;
    if (side >= 0) {
      const auto& ranks = before.side(side);
      arr = std::make_unique<dad::DistArray<double>>(
          desc_for(side, static_cast<int>(ranks.size())),
          index_in(ranks, me));
      if (side == 0) arr->fill(value_at);
      comp->register_field(
          core::make_field("f", arr.get(), core::AccessMode::ReadWrite));
    }
    core::ConnectionSpec spec;
    spec.src_field = spec.dst_field = "f";
    spec.src_side = 0;
    spec.one_shot = false;
    comp->establish(spec);
    if (side >= 0) {
      EXPECT_EQ(comp->data_ready("f"), 1);
    }

    const int next_side = after.side_of(me);
    std::unique_ptr<dad::DistArray<double>> next;
    std::vector<core::FieldRegistration> regs;
    if (next_side == 0) {  // side 0 grew: every member re-registers
      const auto& ranks = after.side(0);
      next = std::make_unique<dad::DistArray<double>>(
          desc_for(0, static_cast<int>(ranks.size())), index_in(ranks, me));
      regs.push_back(
          core::make_field("f", next.get(), core::AccessMode::ReadWrite));
    }
    comp->rescale(after, std::move(regs));
    if (next_side == 0) {
      arr = std::move(next);
      expect_exact(*arr);
    } else if (next_side == 1) {
      // Kept registration: same array object, data intact.
      expect_exact(*arr);
    }
    if (next_side >= 0) {
      const int moved = comp->data_ready("f");
      EXPECT_EQ(moved, 1);
      expect_exact(*arr);
    }
  });
}

TEST(Rescale, OverlapShrinkMutualExchange) {
  // Shrinking a cyclic side into an overlapping subset makes the surviving
  // ranks exchange regions with EACH OTHER: with cyclic(24,3) → cyclic(24,2)
  // on {2,3} ⊂ {2,3,4}, ranks 2 and 3 each send to and receive from the
  // other. The reliable exchange must stage incoming data before waiting
  // for its own acks, or this two-cycle deadlocks (each rank parked in its
  // ack wait, nobody staging).
  rt::spawn(5, [](rt::Communicator& world) {
    run_rescale_sequence(world,
                         {{{0, 1}, {2, 3, 4}}, {{0, 1}, {2, 3}}},
                         /*reliable=*/false, /*timeout_ms=*/-1,
                         /*max_retries=*/2);
  });
}

// ---------------------------------------------------------------------------
// Acceptance: chaos rescale with interleaved exactly-once PRMI
// ---------------------------------------------------------------------------

namespace {

const char* kBumpSidl = R"(
  package elastic {
    interface Steering {
      independent int bump(in int token);
    }
  }
)";

}  // namespace

namespace {

constexpr int kCallsPerEpoch = 2;

/// Per-epoch fault-exempt (< 2^20) marker tag: the client raises it once it
/// holds every reply of the epoch's steering phase, releasing the server
/// from replay duty (below the PRMI tag range and above the migration tag
/// block, so no fault plan in this file touches it with loss).
constexpr int kPhaseDoneTag = 700000;

/// One full acceptance run under `plan`: 12 ranks, the component rescaled
/// 4×3 → 6×2 → 2×5 → 4×3 mid-stream on reliable connections, a PRMI steering
/// conversation interleaved between epochs. Asserts strict success: every
/// transfer and migration element-exact, every PRMI call answered.
/// `executions` counts server-side handler executions for the caller's
/// exactly-once assertion.
void run_chaos_scenario(const rt::FaultPlan& plan,
                        std::atomic<int>& executions) {
  rt::spawn(
      12,
      [&](rt::Communicator& world) {
          const int me = world.rank();
          prmi::DistributedFramework fw(world);
          fw.instantiate("client", {0});
          fw.instantiate("server", {7});
          auto pkg = mxn::sidl::parse_package(kBumpSidl);
          if (me == 7) {
            auto servant =
                std::make_shared<prmi::Servant>(pkg.interface("Steering"));
            servant->bind("bump",
                          [&](prmi::CalleeContext&,
                              std::vector<prmi::Value>& args) -> prmi::Value {
                            executions.fetch_add(1);
                            return std::int32_t(
                                std::get<std::int32_t>(args[0]) + 1);
                          });
            fw.add_provides("server", "steer", servant);
          }
          if (me == 0) fw.register_uses("client", "steer",
                                        pkg.interface("Steering"));
          fw.connect("client", "steer", "server", "steer");

          auto comp = core::make_elastic_mxn(world, kAcceptanceLayouts[0]);
          int side = kAcceptanceLayouts[0].side_of(me);
          std::unique_ptr<dad::DistArray<double>> arr;
          if (side >= 0) {
            const auto& ranks = kAcceptanceLayouts[0].side(side);
            arr = std::make_unique<dad::DistArray<double>>(
                desc_for(side, static_cast<int>(ranks.size())),
                index_in(ranks, me));
            if (side == 0) arr->fill(value_at);
            comp->register_field(
                core::make_field("f", arr.get(), core::AccessMode::ReadWrite));
          }

          core::ConnectionSpec spec;
          spec.src_field = spec.dst_field = "f";
          spec.src_side = 0;
          spec.one_shot = false;
          spec.reliable = true;
          spec.timeout_ms = 200;
          spec.max_retries = 12;
          comp->establish(spec);

          for (std::size_t e = 0; e < kAcceptanceLayouts.size(); ++e) {
            if (side >= 0) {
              EXPECT_EQ(comp->data_ready("f"), 1);
              expect_exact(*arr);
            }

            // Interleaved steering conversation while the coupling is live.
            if (me == 7) {
              // Serve exactly this epoch's quota of REAL invocations:
              // deduplicated retransmissions and stray control notices do
              // not count, so the loop re-enters serve() until the quota is
              // met — immune to duplicated traffic from earlier epochs.
              int served = 0;
              while (served < kCallsPerEpoch)
                served += fw.serve("server", kCallsPerEpoch - served);
              // Quota met is not the same as client satisfied: the reply to
              // the phase's last call may have been dropped, in which case
              // the client keeps retransmitting and needs the dedup replay.
              // Stay on non-blocking replay duty until the client's
              // fault-exempt done marker arrives — a blocking serve() here
              // could park the server past the other ranks' recv deadline
              // at the rescale fence.
              const int done_tag = kPhaseDoneTag + static_cast<int>(e);
              while (!world.probe(0, done_tag)) {
                EXPECT_EQ(fw.drain("server"), 0);  // replays only
                std::this_thread::sleep_for(std::chrono::milliseconds(1));
              }
              world.recv(0, done_tag);
            } else if (me == 0) {
              auto port = fw.get_port("client", "steer");
              port->set_retry_policy(prmi::RetryPolicy{
                  .timeout_ms = 150, .max_retries = 8, .backoff_ms = 2});
              for (int i = 0; i < kCallsPerEpoch; ++i) {
                const auto token =
                    std::int32_t(100 * static_cast<int>(e) + i);
                auto r = port->call_independent("bump", {token}, 0);
                EXPECT_EQ(std::get<std::int32_t>(r.ret), token + 1);
              }
              world.send(7, kPhaseDoneTag + static_cast<int>(e),
                         rt::Buffer::allocate(1));
            }

            if (e + 1 == kAcceptanceLayouts.size()) break;
            const core::Layout& next_layout = kAcceptanceLayouts[e + 1];
            const int next_side = next_layout.side_of(me);
            std::unique_ptr<dad::DistArray<double>> next;
            std::vector<core::FieldRegistration> regs;
            if (next_side >= 0) {
              const auto& ranks = next_layout.side(next_side);
              next = std::make_unique<dad::DistArray<double>>(
                  desc_for(next_side, static_cast<int>(ranks.size())),
                  index_in(ranks, me));
              regs.push_back(core::make_field("f", next.get(),
                                              core::AccessMode::ReadWrite));
            }
            comp->rescale(next_layout, std::move(regs), /*timeout_ms=*/200,
                          /*max_retries=*/12);
            arr = std::move(next);
            side = next_side;
            if (side >= 0) expect_exact(*arr);
          }
          EXPECT_EQ(comp->rescale_epoch(), kAcceptanceLayouts.size() - 1);
      },
      {.deadlock_timeout_ms = 15000,
       .default_recv_timeout_ms = 4000,
       .faults = plan,
       .trace = true});
}

}  // namespace

TEST(RescaleChaos, MidStreamUnderDupReorderDelayChaos) {
  // The ISSUE acceptance scenario: a live component is rescaled
  // 4×3 → 6×2 → 2×5 → 4×3 while reliable transfers flow under seeded chaos,
  // with
  // a PRMI steering conversation interleaved between epochs. This variant
  // puts duplication, reordering and delivery delay on EVERY message above
  // tag 900 — connection transfers, migration traffic, PRMI — exercising
  // the stale-serial discard, arrival-order staging and per-epoch migration
  // tag isolation paths. These fault classes lose nothing, so strict
  // success is required: element-exact data everywhere, every PRMI call
  // executed exactly once.
  trace::set_enabled(true);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    std::atomic<int> executions{0};
    run_chaos_scenario(rt::FaultPlan{.seed = seed,
                                     .dup = 0.15,
                                     .reorder = 0.25,
                                     .delay = 0.5,
                                     .delay_ms = 2,
                                     .min_tag = 900},
                       executions);
    EXPECT_EQ(executions.load(),
              kCallsPerEpoch * static_cast<int>(kAcceptanceLayouts.size()));
  }
}

TEST(RescaleChaos, ExactlyOncePrmiUnderDropAndDup) {
  // Same mid-stream rescale sequence, with loss-ful chaos (5% drop + 5%
  // dup) scoped to the PRMI invocation tags (>= 2^20). The epoch-keyed
  // retry plus servant dedup must absorb the loss: every steering call
  // returns the right answer and the handler runs exactly once per call —
  // duplicated or retransmitted requests are answered from the dedup
  // registry, never re-executed — while the surrounding transfers and
  // migrations stay element-exact.
  trace::set_enabled(true);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    std::atomic<int> executions{0};
    run_chaos_scenario(rt::FaultPlan{.seed = seed,
                                     .drop = 0.05,
                                     .dup = 0.05,
                                     .min_tag = 1 << 20},
                       executions);
    EXPECT_EQ(executions.load(),
              kCallsPerEpoch * static_cast<int>(kAcceptanceLayouts.size()));
  }
}
