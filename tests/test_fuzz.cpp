// Randomized end-to-end sweeps ("fuzz") across the whole coupling stack:
// random template pairs — regular, explicit, and aligned — pushed through
// the paired M×N component with different element types, checked as exact
// permutations; plus the GlobalSegMap <-> DAD bridge.

#include <gtest/gtest.h>

#include <random>

#include "core/mxn_component.hpp"
#include "dad/alignment.hpp"
#include "mct/router.hpp"
#include "rt/runtime.hpp"

namespace core = mxn::core;
namespace dad = mxn::dad;
namespace lin = mxn::linear;
namespace mct = mxn::mct;
namespace rt = mxn::rt;
using dad::AxisDist;
using dad::Index;
using dad::Point;

namespace {

AxisDist random_axis(std::mt19937& rng, Index extent, int max_procs) {
  std::uniform_int_distribution<int> kind(0, 4);
  std::uniform_int_distribution<int> np(1, max_procs);
  switch (kind(rng)) {
    case 0:
      return AxisDist::block(extent, np(rng));
    case 1:
      return AxisDist::cyclic(extent, np(rng));
    case 2: {
      std::uniform_int_distribution<Index> blk(1, 4);
      return AxisDist::block_cyclic(extent, np(rng), blk(rng));
    }
    case 3: {
      const int p = np(rng);
      std::vector<Index> sizes(p, 0);
      std::uniform_int_distribution<int> pick(0, p - 1);
      for (Index i = 0; i < extent; ++i) ++sizes[pick(rng)];
      bool any = false;
      for (auto s : sizes) any = any || s > 0;
      if (!any) sizes[0] = extent;
      return AxisDist::generalized_block(std::move(sizes));
    }
    default: {
      const int p = np(rng);
      std::vector<int> owners(extent);
      std::uniform_int_distribution<int> pick(0, p - 1);
      for (auto& o : owners) o = pick(rng);
      return AxisDist::implicit(std::move(owners), p);
    }
  }
}

/// A random descriptor over a 2-D extent; occasionally an aligned window of
/// a bigger template (exercising the HPF alignment path end to end).
dad::DescriptorPtr random_descriptor(std::mt19937& rng, Index e0, Index e1) {
  std::uniform_int_distribution<int> mode(0, 3);
  if (mode(rng) == 0) {
    // Aligned window of a larger template.
    auto tpl = dad::make_regular(std::vector<AxisDist>{
        random_axis(rng, e0 + 4, 3), random_axis(rng, e1 + 3, 2)});
    std::uniform_int_distribution<Index> o0(0, 4), o1(0, 3);
    return dad::make_aligned(tpl, Point{o0(rng), o1(rng)}, Point{e0, e1});
  }
  return dad::make_regular(std::vector<AxisDist>{
      random_axis(rng, e0, 3), random_axis(rng, e1, 2)});
}

template <class T>
void fuzz_round(unsigned seed) {
  std::mt19937 rng(seed);
  const Index e0 = 10, e1 = 7;
  auto src_desc = random_descriptor(rng, e0, e1);
  auto dst_desc = random_descriptor(rng, e0, e1);
  const int m = src_desc->nranks();
  const int n = dst_desc->nranks();

  rt::spawn(m + n, [&](rt::Communicator& world) {
    const int side = world.rank() < m ? 0 : 1;
    auto mxn = core::make_paired_mxn(world, m, n);
    auto cohort = world.split(side, world.rank());
    dad::DistArray<T> arr(side == 0 ? src_desc : dst_desc, cohort.rank());
    if (side == 0)
      arr.fill([](const Point& p) {
        return static_cast<T>(31 * p[0] + p[1] + 1);
      });
    mxn->register_field(
        core::make_field("f", &arr, core::AccessMode::ReadWrite));
    core::ConnectionSpec spec;
    spec.src_field = spec.dst_field = "f";
    spec.src_side = 0;
    mxn->establish(spec);
    mxn->data_ready("f");
    if (side == 1) {
      arr.for_each_owned([](const Point& p, const T& v) {
        EXPECT_EQ(v, static_cast<T>(31 * p[0] + p[1] + 1))
            << "at (" << p[0] << "," << p[1] << ")";
      });
    }
  });
}

}  // namespace

class MxNFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(MxNFuzz, DoubleFieldsSurviveRandomTemplatePairs) {
  fuzz_round<double>(GetParam());
}

TEST_P(MxNFuzz, Int32FieldsSurviveRandomTemplatePairs) {
  fuzz_round<std::int32_t>(GetParam() + 1000);
}

TEST_P(MxNFuzz, FloatFieldsSurviveRandomTemplatePairs) {
  fuzz_round<float>(GetParam() + 2000);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MxNFuzz, ::testing::Range(1u, 11u));

// ---------------------------------------------------------------------------
// GlobalSegMap <-> DAD bridge
// ---------------------------------------------------------------------------

TEST(GsmBridge, FromDescriptorMatchesFootprints) {
  auto desc = dad::Descriptor::regular(std::vector<AxisDist>{
      AxisDist::block_cyclic(12, 2, 3), AxisDist::block(6, 2)});
  auto l = lin::Linearization::row_major(2, Point{12, 6});
  auto gsm = mct::GlobalSegMap::from_descriptor(desc, l);
  EXPECT_EQ(gsm.gsize(), 72);
  EXPECT_EQ(gsm.nprocs(), 4);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(gsm.local_size(r), desc.local_volume(r));
    EXPECT_EQ(gsm.footprint(r), lin::footprint(desc, r, l));
  }
  // Owner agreement point by point.
  for (Index k = 0; k < gsm.gsize(); ++k)
    EXPECT_EQ(gsm.owner(k), desc.owner(l.point_at(k)));
}

TEST(GsmBridge, DadComponentCouplesToMctComponentThroughRouter) {
  // Side A describes its field with a DAD (block rows); side B is an MCT
  // component with a cyclic GSMap. The bridge numbers A's points row-major
  // so a Router can move the data.
  const Index rows = 8, cols = 4;
  auto a_desc = dad::make_regular(std::vector<AxisDist>{
      AxisDist::block(rows, 2), AxisDist::collapsed(cols)});
  auto l = lin::Linearization::row_major(2, Point{rows, cols});
  auto a_map = mct::GlobalSegMap::from_descriptor(*a_desc, l);
  auto b_map = mct::GlobalSegMap::cyclic(rows * cols, 2, 4);

  rt::spawn(4, [&](rt::Communicator& world) {
    const bool is_a = world.rank() < 2;
    auto cohort = world.split(is_a ? 0 : 1, world.rank());
    mct::RouterConfig cfg;
    cfg.channel = world;
    cfg.cohort = cohort;
    cfg.my_ranks = is_a ? std::vector<int>{0, 1} : std::vector<int>{2, 3};
    cfg.peer_ranks = is_a ? std::vector<int>{2, 3} : std::vector<int>{0, 1};
    cfg.tag = 400;
    if (is_a) {
      auto router = mct::Router::source(cfg, a_map);
      // Fill the AttrVect in the GSMap's ascending-linear storage order.
      mct::AttrVect av({"q"}, a_map.local_size(cohort.rank()));
      for (Index li = 0; li < av.length(); ++li)
        av.field(0)[li] =
            2.0 * static_cast<double>(a_map.global_index(cohort.rank(), li));
      router.send(av);
    } else {
      auto router = mct::Router::destination(cfg, b_map);
      mct::AttrVect av({"q"}, b_map.local_size(cohort.rank()));
      router.recv(av);
      for (Index li = 0; li < av.length(); ++li)
        EXPECT_DOUBLE_EQ(
            av.field(0)[li],
            2.0 * static_cast<double>(b_map.global_index(cohort.rank(), li)));
    }
  });
}
