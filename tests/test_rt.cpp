// Unit tests for the message-passing runtime substrate (src/rt) that stands
// in for MPI: matched point-to-point, collectives, communicator split,
// non-blocking requests, failure propagation and the deadlock watchdog.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "rt/runtime.hpp"

namespace rt = mxn::rt;

TEST(RtSpawn, RunsRequestedNumberOfProcesses) {
  std::atomic<int> count{0};
  rt::spawn(7, [&](rt::Communicator& comm) {
    EXPECT_EQ(comm.size(), 7);
    EXPECT_GE(comm.rank(), 0);
    EXPECT_LT(comm.rank(), 7);
    ++count;
  });
  EXPECT_EQ(count.load(), 7);
}

TEST(RtSpawn, RejectsNonPositiveProcessCount) {
  EXPECT_THROW(rt::spawn(0, [](rt::Communicator&) {}), rt::UsageError);
  EXPECT_THROW(rt::spawn(-3, [](rt::Communicator&) {}), rt::UsageError);
}

TEST(RtSpawn, PropagatesFirstExceptionAndUnblocksSiblings) {
  try {
    rt::spawn(4, [](rt::Communicator& comm) {
      if (comm.rank() == 2) throw std::logic_error("boom");
      // Everyone else blocks in a receive that will never be satisfied;
      // the abort must unwind them.
      comm.recv(rt::kAnySource, 42);
    });
    FAIL() << "expected exception";
  } catch (const std::logic_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
}

TEST(RtPointToPoint, DeliversPayloadAndMetadata) {
  rt::spawn(2, [](rt::Communicator& comm) {
    if (comm.rank() == 0) {
      std::vector<double> values = {1.5, -2.25, 3.75};
      comm.send_span<double>(1, 7, values);
    } else {
      int src = -1;
      auto got = comm.recv_vector<double>(0, 7, &src);
      EXPECT_EQ(src, 0);
      ASSERT_EQ(got.size(), 3u);
      EXPECT_DOUBLE_EQ(got[0], 1.5);
      EXPECT_DOUBLE_EQ(got[1], -2.25);
      EXPECT_DOUBLE_EQ(got[2], 3.75);
    }
  });
}

TEST(RtPointToPoint, MatchesOnSourceAndTagOutOfOrder) {
  rt::spawn(3, [](rt::Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(2, 5, 50);
      comm.send_value<int>(2, 6, 60);
    } else if (comm.rank() == 1) {
      comm.send_value<int>(2, 5, 51);
    } else {
      // Receive in an order unrelated to arrival order.
      EXPECT_EQ(comm.recv_value<int>(1, 5), 51);
      EXPECT_EQ(comm.recv_value<int>(0, 6), 60);
      EXPECT_EQ(comm.recv_value<int>(0, 5), 50);
    }
  });
}

TEST(RtPointToPoint, FifoPerSourceAndTag) {
  rt::spawn(2, [](rt::Communicator& comm) {
    constexpr int kN = 100;
    if (comm.rank() == 0) {
      for (int i = 0; i < kN; ++i) comm.send_value<int>(1, 3, i);
    } else {
      for (int i = 0; i < kN; ++i) EXPECT_EQ(comm.recv_value<int>(0, 3), i);
    }
  });
}

TEST(RtPointToPoint, AnySourceWildcardReceivesAll) {
  rt::spawn(5, [](rt::Communicator& comm) {
    if (comm.rank() == 0) {
      std::multiset<int> got;
      for (int i = 0; i < 4; ++i) {
        got.insert(comm.recv_value<int>(rt::kAnySource, 9));
      }
      EXPECT_EQ(got, (std::multiset<int>{1, 2, 3, 4}));
    } else {
      comm.send_value<int>(0, 9, comm.rank());
    }
  });
}

TEST(RtPointToPoint, SelfSendIsBufferedAndMatched) {
  rt::spawn(1, [](rt::Communicator& comm) {
    comm.send_value<int>(0, 1, 99);
    EXPECT_EQ(comm.recv_value<int>(0, 1), 99);
  });
}

TEST(RtPointToPoint, NegativeUserTagRejected) {
  rt::spawn(2, [](rt::Communicator& comm) {
    if (comm.rank() == 0) {
      EXPECT_THROW(comm.send_value<int>(1, -5, 1), rt::UsageError);
      comm.send_value<int>(1, 0, 1);  // unblock peer
    } else {
      comm.recv(0, 0);
    }
  });
}

TEST(RtPointToPoint, OutOfRangeDestinationRejected) {
  rt::spawn(2, [](rt::Communicator& comm) {
    EXPECT_THROW(comm.send_value<int>(2, 0, 1), rt::UsageError);
    EXPECT_THROW(comm.send_value<int>(-1, 0, 1), rt::UsageError);
  });
}

TEST(RtNonBlocking, IrecvCompletesViaWait) {
  rt::spawn(2, [](rt::Communicator& comm) {
    if (comm.rank() == 0) {
      auto req = comm.irecv(1, 4);
      rt::Message m = req.wait();
      EXPECT_EQ(m.src, 1);
      rt::UnpackBuffer u(m.payload);
      EXPECT_EQ(u.unpack<int>(), 1234);
    } else {
      comm.send_value<int>(0, 4, 1234);
    }
  });
}

TEST(RtNonBlocking, TestPollsWithoutBlocking) {
  rt::spawn(2, [](rt::Communicator& comm) {
    if (comm.rank() == 0) {
      auto req = comm.irecv(1, 4);
      rt::Message m;
      while (!req.test(&m)) {
      }
      EXPECT_EQ(m.src, 1);
    } else {
      comm.send_value<int>(0, 4, 7);
    }
  });
}

TEST(RtNonBlocking, WaitAllGathersEverything) {
  rt::spawn(4, [](rt::Communicator& comm) {
    if (comm.rank() == 0) {
      std::vector<rt::Request> reqs;
      for (int r = 1; r < 4; ++r) reqs.push_back(comm.irecv(r, 2));
      auto msgs = rt::wait_all(reqs);
      ASSERT_EQ(msgs.size(), 3u);
      for (int i = 0; i < 3; ++i) EXPECT_EQ(msgs[i].src, i + 1);
    } else {
      comm.send_value<int>(0, 2, comm.rank());
    }
  });
}

TEST(RtNonBlocking, CompletedRequestsAreSticky) {
  rt::spawn(2, [](rt::Communicator& comm) {
    if (comm.rank() == 0) {
      auto req = comm.irecv(1, 4);
      rt::Message first = req.wait();
      EXPECT_EQ(first.src, 1);
      // Regression: wait() used to move the message out of the request, so
      // a second wait()/test() observed a moved-from empty Message.
      rt::Message again = req.wait();
      EXPECT_EQ(again.src, 1);
      ASSERT_EQ(again.payload.size(), first.payload.size());
      rt::UnpackBuffer u(again.payload);
      EXPECT_EQ(u.unpack<int>(), 4321);
      rt::Message polled;
      EXPECT_TRUE(req.test(&polled));
      rt::UnpackBuffer up(polled.payload);
      EXPECT_EQ(up.unpack<int>(), 4321);
      // Re-reads share one refcounted block rather than copying it.
      EXPECT_EQ(first.payload.data(), again.payload.data());
      EXPECT_EQ(first.payload.data(), polled.payload.data());
    } else {
      comm.send_value<int>(0, 4, 4321);
    }
  });
}

TEST(RtTimeout, TypedReceiveHelpersHonorDeadline) {
  // Regression: recv_vector/recv_value/wait_all used to drop the per-call
  // deadline on the floor, waiting forever on the underlying recv.
  rt::spawn(2, [](rt::Communicator& comm) {
    if (comm.rank() == 0) {
      EXPECT_THROW(comm.recv_vector<int>(1, 8, nullptr, 50),
                   rt::TimeoutError);
      EXPECT_THROW(comm.recv_value<int>(1, 8, nullptr, 50), rt::TimeoutError);
      std::vector<rt::Request> reqs;
      reqs.push_back(comm.irecv(1, 8));
      EXPECT_THROW(rt::wait_all(reqs, 50), rt::TimeoutError);
      comm.send_value<int>(1, 9, 1);  // release the peer
    } else {
      comm.recv(0, 9);
    }
  });
}

TEST(RtProbe, ProbeAndTryRecv) {
  rt::spawn(2, [](rt::Communicator& comm) {
    if (comm.rank() == 0) {
      // The peer sends only on our signal, so nothing can be in flight yet.
      // (This used to race the peer's eager send: the "not arrived yet"
      // try_recv could consume the real message and livelock the probe
      // loop below.)
      EXPECT_FALSE(comm.try_recv(1, 11).has_value());
      comm.send(1, 10, std::vector<std::byte>{});
      while (!comm.probe(1, 11)) {
      }
      auto m = comm.try_recv(1, 11);
      ASSERT_TRUE(m.has_value());
      EXPECT_EQ(m->src, 1);
    } else {
      comm.recv(0, 10);
      comm.send_value<int>(0, 11, 1);
    }
  });
}

TEST(RtCollectives, BarrierSynchronizes) {
  // After a barrier, all pre-barrier sends must be observable.
  rt::spawn(6, [](rt::Communicator& comm) {
    if (comm.rank() != 0) comm.send_value<int>(0, 1, comm.rank());
    comm.barrier();
    if (comm.rank() == 0) {
      for (int i = 1; i < 6; ++i) EXPECT_TRUE(comm.probe(i, 1));
      for (int i = 1; i < 6; ++i) comm.recv(i, 1);
    }
  });
}

TEST(RtCollectives, BcastFromEveryRoot) {
  rt::spawn(4, [](rt::Communicator& comm) {
    for (int root = 0; root < 4; ++root) {
      const int value = comm.rank() == root ? 100 + root : -1;
      EXPECT_EQ(comm.bcast_value(value, root), 100 + root);
    }
  });
}

TEST(RtCollectives, BcastVector) {
  rt::spawn(3, [](rt::Communicator& comm) {
    std::vector<int> v;
    if (comm.rank() == 1) v = {3, 1, 4, 1, 5};
    auto got = comm.bcast_vector(v, 1);
    EXPECT_EQ(got, (std::vector<int>{3, 1, 4, 1, 5}));
  });
}

TEST(RtCollectives, GatherCollectsBySourceRank) {
  rt::spawn(5, [](rt::Communicator& comm) {
    auto parts = comm.gather(rt::to_bytes(comm.rank() * 10), 2);
    if (comm.rank() == 2) {
      ASSERT_EQ(parts.size(), 5u);
      for (int i = 0; i < 5; ++i) {
        rt::UnpackBuffer u(parts[i]);
        EXPECT_EQ(u.unpack<int>(), i * 10);
      }
    } else {
      EXPECT_TRUE(parts.empty());
    }
  });
}

TEST(RtCollectives, AllgatherGivesEveryoneEverything) {
  rt::spawn(4, [](rt::Communicator& comm) {
    auto all = comm.allgather_value<int>(comm.rank() + 1);
    EXPECT_EQ(all, (std::vector<int>{1, 2, 3, 4}));
  });
}

TEST(RtCollectives, AlltoallPersonalizedExchange) {
  rt::spawn(4, [](rt::Communicator& comm) {
    // Rank r sends value 10*r + dst to each dst; entry sizes differ by dst.
    std::vector<rt::Buffer> out(4);
    for (int dst = 0; dst < 4; ++dst) {
      rt::PackBuffer b;
      b.pack(10 * comm.rank() + dst);
      for (int k = 0; k < dst; ++k) b.pack(0);  // variable size
      out[dst] = std::move(b).take_buffer();
    }
    auto in = comm.alltoall(std::move(out));
    ASSERT_EQ(in.size(), 4u);
    for (int src = 0; src < 4; ++src) {
      rt::UnpackBuffer u(in[src]);
      EXPECT_EQ(u.unpack<int>(), 10 * src + comm.rank());
    }
  });
}

TEST(RtCollectives, AllreduceCombines) {
  rt::spawn(6, [](rt::Communicator& comm) {
    const int sum =
        comm.allreduce(comm.rank() + 1, [](int a, int b) { return a + b; });
    EXPECT_EQ(sum, 21);
    const int mx =
        comm.allreduce(comm.rank(), [](int a, int b) { return std::max(a, b); });
    EXPECT_EQ(mx, 5);
  });
}

TEST(RtSplit, PartitionsByColorOrderedByKey) {
  rt::spawn(6, [](rt::Communicator& comm) {
    // Even ranks -> color 0, odd -> color 1. Key reverses the order.
    const int color = comm.rank() % 2;
    auto sub = comm.split(color, -comm.rank());
    ASSERT_FALSE(sub.is_null());
    EXPECT_EQ(sub.size(), 3);
    // Reversed key order: world rank 4 gets sub-rank 0 in color 0, etc.
    const int expected_rank = (6 - 2 - comm.rank() + color) / 2 + 0;
    // color 0: world {0,2,4} keys {0,-2,-4} -> order 4,2,0
    // color 1: world {1,3,5} keys {-1,-3,-5} -> order 5,3,1
    (void)expected_rank;
    std::vector<int> expected_world =
        color == 0 ? std::vector<int>{4, 2, 0} : std::vector<int>{5, 3, 1};
    EXPECT_EQ(sub.world_rank(sub.rank()), comm.rank());
    for (int i = 0; i < 3; ++i)
      EXPECT_EQ(sub.world_rank(i), expected_world[i]);
    // The sub-communicator must carry traffic independently.
    const int total =
        sub.allreduce(comm.rank(), [](int a, int b) { return a + b; });
    EXPECT_EQ(total, color == 0 ? 6 : 9);
  });
}

TEST(RtSplit, UndefinedColorYieldsNullHandle) {
  rt::spawn(4, [](rt::Communicator& comm) {
    auto sub = comm.split(comm.rank() < 2 ? 0 : rt::kUndefinedColor, 0);
    if (comm.rank() < 2) {
      ASSERT_FALSE(sub.is_null());
      EXPECT_EQ(sub.size(), 2);
    } else {
      EXPECT_TRUE(sub.is_null());
    }
  });
}

TEST(RtSplit, RepeatedSplitsUseFreshBoards) {
  rt::spawn(4, [](rt::Communicator& comm) {
    for (int round = 0; round < 5; ++round) {
      auto sub = comm.split(comm.rank() / 2, comm.rank());
      ASSERT_EQ(sub.size(), 2);
      const int peer_sum =
          sub.allreduce(comm.rank(), [](int a, int b) { return a + b; });
      EXPECT_EQ(peer_sum, comm.rank() < 2 ? 1 : 5);
    }
  });
}

TEST(RtSplit, DupKeepsMembershipAndOrder) {
  rt::spawn(3, [](rt::Communicator& comm) {
    auto d = comm.dup();
    EXPECT_EQ(d.size(), 3);
    EXPECT_EQ(d.rank(), comm.rank());
    for (int i = 0; i < 3; ++i) EXPECT_EQ(d.world_rank(i), i);
  });
}

TEST(RtStats, CountsMessagesAndBytes) {
  rt::spawn(2, [](rt::Communicator& comm) {
    // Measure on rank 0 only; its snapshots bracket exactly one 128-byte
    // message out and one empty ack back.
    if (comm.rank() == 0) {
      auto before = comm.stats();
      std::vector<std::byte> payload(128);
      comm.send(1, 1, payload);
      comm.recv(1, 2);
      auto delta = comm.stats() - before;
      EXPECT_EQ(delta.messages, 2u);
      EXPECT_EQ(delta.bytes, 128u);
    } else {
      comm.recv(0, 1);
      comm.send(0, 2, std::vector<std::byte>{});
    }
  });
}

TEST(RtDeadlock, WatchdogDetectsAllBlocked) {
  // Every rank waits for a message that never comes.
  EXPECT_THROW(
      rt::spawn(
          3, [](rt::Communicator& comm) { comm.recv(rt::kAnySource, 0); },
          {.deadlock_timeout_ms = 200}),
      rt::DeadlockError);
}

TEST(RtDeadlock, NoFalsePositiveUnderTraffic) {
  rt::spawn(
      2,
      [](rt::Communicator& comm) {
        // Ping-pong longer than the watchdog timeout; traffic must keep
        // resetting the idle clock.
        for (int i = 0; i < 50; ++i) {
          if (comm.rank() == 0) {
            comm.send_value<int>(1, 1, i);
            comm.recv(1, 2);
          } else {
            comm.recv(0, 1);
            comm.send_value<int>(0, 2, i);
          }
        }
      },
      {.deadlock_timeout_ms = 300});
}

TEST(RtSerialize, RoundTripsMixedContent) {
  rt::PackBuffer b;
  b.pack(42);
  b.pack(std::string("hello"));
  b.pack(std::vector<double>{1.0, 2.0});
  b.pack(std::vector<std::string>{"a", "bc"});
  auto bytes = std::move(b).take();

  rt::UnpackBuffer u(bytes);
  EXPECT_EQ(u.unpack<int>(), 42);
  EXPECT_EQ(u.unpack_string(), "hello");
  EXPECT_EQ(u.unpack_vector<double>(), (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(u.unpack_string_vector(),
            (std::vector<std::string>{"a", "bc"}));
  EXPECT_TRUE(u.empty());
}

TEST(RtSerialize, TruncatedPayloadThrows) {
  rt::PackBuffer b;
  b.pack<std::uint16_t>(7);
  auto bytes = std::move(b).take();
  rt::UnpackBuffer u(bytes);
  EXPECT_THROW(u.unpack<std::uint64_t>(), rt::UsageError);
}

// Property-style sweep: a ring rotation must deliver every token exactly once
// for a range of sizes.
class RtRingSweep : public ::testing::TestWithParam<int> {};

TEST_P(RtRingSweep, RingRotationDeliversAllTokens) {
  const int n = GetParam();
  rt::spawn(n, [n](rt::Communicator& comm) {
    const int next = (comm.rank() + 1) % n;
    const int prev = (comm.rank() + n - 1) % n;
    int token = comm.rank();
    for (int step = 0; step < n; ++step) {
      comm.send_value<int>(next, 1, token);
      token = comm.recv_value<int>(prev, 1);
    }
    EXPECT_EQ(token, comm.rank());
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, RtRingSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 16));

TEST(RtRecvMatching, PredicateSelectsAcrossTagStream) {
  rt::spawn(2, [](rt::Communicator& comm) {
    if (comm.rank() == 0) {
      // Three messages on one tag; payload first byte is the kind.
      for (int kind : {7, 9, 7}) {
        rt::PackBuffer b;
        b.pack(static_cast<std::uint8_t>(kind));
        b.pack(kind * 100 + 1);
        comm.send(1, 5, std::move(b).take());
      }
    } else {
      auto want = [](std::uint8_t k) {
        return [k](const rt::Message& m) {
          rt::UnpackBuffer u(m.payload);
          return u.unpack<std::uint8_t>() == k;
        };
      };
      // Pull the kind-9 message first even though it arrived second.
      auto m9 = comm.recv_matching(0, 5, want(9));
      rt::UnpackBuffer u9(m9.payload);
      (void)u9.unpack<std::uint8_t>();
      EXPECT_EQ(u9.unpack<int>(), 901);
      // FIFO among matches: the two kind-7 messages come in send order.
      auto m7a = comm.recv_matching(0, 5, want(7));
      auto m7b = comm.recv_matching(0, 5, want(7));
      rt::UnpackBuffer ua(m7a.payload), ub(m7b.payload);
      (void)ua.unpack<std::uint8_t>();
      (void)ub.unpack<std::uint8_t>();
      EXPECT_EQ(ua.unpack<int>(), 701);
      EXPECT_EQ(ub.unpack<int>(), 701);
    }
  });
}

TEST(RtRecvMatching, BlocksUntilMatchingMessageArrives) {
  rt::spawn(2, [](rt::Communicator& comm) {
    if (comm.rank() == 0) {
      // A non-matching message first, then (after a handshake) the match.
      comm.send_value<int>(1, 3, 111);
      comm.recv(1, 4);  // peer saw the first message
      comm.send_value<int>(1, 3, 222);
    } else {
      while (!comm.probe(0, 3)) {
      }
      comm.send(0, 4, std::vector<std::byte>{});
      auto m = comm.recv_matching(0, 3, [](const rt::Message& msg) {
        rt::UnpackBuffer u(msg.payload);
        return u.unpack<int>() == 222;
      });
      rt::UnpackBuffer u(m.payload);
      EXPECT_EQ(u.unpack<int>(), 222);
      // The skipped message is still there.
      EXPECT_EQ(comm.recv_value<int>(0, 3), 111);
    }
  });
}

// ---------------------------------------------------------------------------
// subset() and epoch_fence() (elastic rescaling support)
// ---------------------------------------------------------------------------

TEST(RtSubset, MembersGetListOrderRanksOthersNull) {
  rt::spawn(6, [](rt::Communicator& world) {
    // Deliberately NOT in world-rank order: subset rank = list index.
    const std::vector<int> members{4, 1, 3};
    auto sub = world.subset(members);
    if (world.rank() == 4 || world.rank() == 1 || world.rank() == 3) {
      ASSERT_FALSE(sub.is_null());
      EXPECT_EQ(sub.size(), 3);
      const int expect_rank =
          world.rank() == 4 ? 0 : (world.rank() == 1 ? 1 : 2);
      EXPECT_EQ(sub.rank(), expect_rank);
      // The subset is a working communicator.
      EXPECT_EQ(sub.allreduce(1, [](int a, int b) { return a + b; }), 3);
    } else {
      EXPECT_TRUE(sub.is_null());
    }
  });
}

TEST(RtSubset, ValidatesMemberList) {
  rt::spawn(2, [](rt::Communicator& world) {
    EXPECT_THROW(world.subset({}), rt::UsageError);
    EXPECT_THROW(world.subset({0, 2}), rt::UsageError);   // out of range
    EXPECT_THROW(world.subset({0, -1}), rt::UsageError);  // out of range
    EXPECT_THROW(world.subset({0, 0}), rt::UsageError);   // duplicate
    // The collective still completes after consistent throws: every rank
    // threw before entering the rendezvous, so no board entry leaked.
    auto sub = world.subset({1, 0});
    EXPECT_EQ(sub.rank(), 1 - world.rank());
  });
}

TEST(RtSubset, SubsetOnLiveSplitWorksAfterADeath) {
  // The recovery path's rendezvous: subset() is a full-quorum collective
  // (it delegates to split()), so after a death the survivors first carve a
  // live-only communicator with split_live() and run subset() on THAT. The
  // dead rank is not a member of the live comm and owes it nothing.
  EXPECT_THROW(
      rt::spawn(
          4,
          [](rt::Communicator& world) {
            const int r = world.rank();
            rt::Universe* uni = world.universe();
            if (r == 2) {
              // First counted op trips the scheduled kill; the unwinding
              // KilledError is what flags the death in the universe.
              world.send_value(0, 11, 1);
              return;
            }
            for (int i = 0; i < 5000 && uni->dead() == 0; ++i)
              std::this_thread::sleep_for(std::chrono::milliseconds(1));
            ASSERT_EQ(uni->dead(), 1);
            auto live = world.split_live(0, r, 5000);
            ASSERT_FALSE(live.is_null());
            ASSERT_EQ(live.size(), 3);  // live ranks 0,1,2 = world 0,1,3
            // Pick two survivors, deliberately not in rank order: the list
            // order carries into the new comm.
            auto sub = live.subset({2, 0});
            if (r == 1) {
              EXPECT_TRUE(sub.is_null());
            } else {
              ASSERT_FALSE(sub.is_null());
              EXPECT_EQ(sub.size(), 2);
              EXPECT_EQ(sub.rank(), r == 3 ? 0 : 1);
              EXPECT_EQ(sub.allreduce(r, [](int a, int b) { return a + b; }),
                        3);
            }
          },
          {.faults = rt::FaultPlan{.kills = {{2, 0}}}}),
      rt::KilledError);
}

TEST(RtSubset, SplitLiveReleasesSurvivorsAfterADeath) {
  // split_live() shrinks its rendezvous quorum to the ranks the universe
  // does not report dead: a member that died before (or during) the call
  // must not wedge the survivors the way a plain split() would.
  EXPECT_THROW(
      rt::spawn(
          4,
          [](rt::Communicator& world) {
            const int r = world.rank();
            rt::Universe* uni = world.universe();
            if (r == 2) {
              world.send_value(0, 11, 1);  // dies on its first counted op
              return;
            }
            for (int i = 0; i < 5000 && uni->dead() == 0; ++i)
              std::this_thread::sleep_for(std::chrono::milliseconds(1));
            ASSERT_EQ(uni->dead(), 1);
            // key = -rank orders the survivors in descending world rank,
            // exercising the key sort alongside the live-only quorum.
            auto sub = world.split_live(/*color=*/7, /*key=*/-r, 5000);
            ASSERT_FALSE(sub.is_null());
            EXPECT_EQ(sub.size(), 3);
            const int expect = r == 3 ? 0 : (r == 1 ? 1 : 2);
            EXPECT_EQ(sub.rank(), expect);
            EXPECT_EQ(sub.allreduce(1, [](int a, int b) { return a + b; }),
                      3);
          },
          {.faults = rt::FaultPlan{.kills = {{2, 0}}}}),
      rt::KilledError);
}

TEST(RtEpochFence, SynchronizesAndReportsWait) {
  rt::spawn(4, [](rt::Communicator& world) {
    std::int64_t waited = world.epoch_fence();
    EXPECT_GE(waited, 0);
    // After the fence, everyone observes everyone's pre-fence sends.
    world.send(0, 7, std::vector<std::byte>{});
    const std::int64_t w2 = world.epoch_fence();
    EXPECT_GE(w2, 0);
    if (world.rank() == 0) {
      for (int r = 0; r < 4; ++r) EXPECT_TRUE(world.probe(r, 7));
    }
  });
}
