// Tests for the SIDL-subset parser (src/sidl) that drives the PRMI proxy
// layers: grammar coverage, semantic rules, and error reporting.

#include <gtest/gtest.h>

#include "sidl/parser.hpp"

namespace sidl = mxn::sidl;
using sidl::InvocationKind;
using sidl::Mode;
using sidl::TypeKind;

TEST(SidlParser, MinimalPackage) {
  auto pkg = sidl::parse_package("package p { }");
  EXPECT_EQ(pkg.name, "p");
  EXPECT_TRUE(pkg.interfaces.empty());
}

TEST(SidlParser, PackageWithVersion) {
  auto pkg = sidl::parse_package("package climate version 1.2 { }");
  EXPECT_EQ(pkg.version, "1.2");
}

TEST(SidlParser, FullInterface) {
  const char* src = R"(
    // Coupled-model flux exchange, in the spirit of the paper's examples.
    package climate version 0.9 {
      interface FluxExchange {
        collective void exchange(in parallel array<double,2> flux,
                                 out double norm);
        collective array<double,1> sample(in int count);
        independent int ping(in int token);
        collective oneway void steer(in string name, in double value);
        /* inout round-trips a buffer */
        collective void scale(inout parallel array<double,2> field,
                              in double factor);
      }
    }
  )";
  auto pkg = sidl::parse_package(src);
  ASSERT_EQ(pkg.interfaces.size(), 1u);
  const auto& i = pkg.interface("FluxExchange");
  EXPECT_EQ(i.qualified, "climate.FluxExchange");
  ASSERT_EQ(i.methods.size(), 5u);

  const auto& ex = i.method("exchange");
  EXPECT_EQ(ex.kind, InvocationKind::Collective);
  EXPECT_FALSE(ex.oneway);
  EXPECT_EQ(ex.ret.kind, TypeKind::Void);
  ASSERT_EQ(ex.params.size(), 2u);
  EXPECT_EQ(ex.params[0].mode, Mode::In);
  EXPECT_TRUE(ex.params[0].type.parallel);
  EXPECT_EQ(ex.params[0].type.kind, TypeKind::Array);
  EXPECT_EQ(ex.params[0].type.elem, TypeKind::Double);
  EXPECT_EQ(ex.params[0].type.array_ndim, 2);
  EXPECT_EQ(ex.params[1].mode, Mode::Out);
  EXPECT_EQ(ex.params[1].type.kind, TypeKind::Double);

  const auto& sample = i.method("sample");
  EXPECT_EQ(sample.ret.kind, TypeKind::Array);
  EXPECT_EQ(sample.ret.array_ndim, 1);

  const auto& ping = i.method("ping");
  EXPECT_EQ(ping.kind, InvocationKind::Independent);
  EXPECT_EQ(ping.ret.kind, TypeKind::Int);

  const auto& steer = i.method("steer");
  EXPECT_TRUE(steer.oneway);

  EXPECT_EQ(i.method_index("scale"), 4);
  EXPECT_THROW((void)i.method("nope"), std::out_of_range);
}

TEST(SidlParser, MethodsDefaultToCollective) {
  auto pkg = sidl::parse_package(
      "package p { interface I { void f(); } }");
  EXPECT_EQ(pkg.interface("I").method("f").kind,
            InvocationKind::Collective);
}

TEST(SidlParser, CommentsAreSkipped) {
  auto pkg = sidl::parse_package(R"(
    package p { // trailing
      /* block
         comment */
      interface I { void f(); }
    }
  )");
  EXPECT_EQ(pkg.interfaces.size(), 1u);
}

TEST(SidlParser, AllScalarTypes) {
  auto pkg = sidl::parse_package(R"(
    package p { interface I {
      void f(in bool a, in int b, in long c, in float d, in double e,
             in string s);
    } }
  )");
  const auto& m = pkg.interface("I").method("f");
  EXPECT_EQ(m.params[0].type.kind, TypeKind::Bool);
  EXPECT_EQ(m.params[1].type.kind, TypeKind::Int);
  EXPECT_EQ(m.params[2].type.kind, TypeKind::Long);
  EXPECT_EQ(m.params[3].type.kind, TypeKind::Float);
  EXPECT_EQ(m.params[4].type.kind, TypeKind::Double);
  EXPECT_EQ(m.params[5].type.kind, TypeKind::String);
}

TEST(SidlParser, OnewayMustReturnVoid) {
  EXPECT_THROW(sidl::parse_package(
                   "package p { interface I { oneway int f(); } }"),
               sidl::ParseError);
}

TEST(SidlParser, OnewayMayNotHaveOutParams) {
  EXPECT_THROW(
      sidl::parse_package(
          "package p { interface I { oneway void f(out int x); } }"),
      sidl::ParseError);
}

TEST(SidlParser, IndependentMayNotTakeParallelArgs) {
  EXPECT_THROW(sidl::parse_package(R"(
    package p { interface I {
      independent void f(in parallel array<double,1> x);
    } }
  )"),
               sidl::ParseError);
}

TEST(SidlParser, ParallelOnlyOnArrays) {
  EXPECT_THROW(
      sidl::parse_package(
          "package p { interface I { void f(in parallel int x); } }"),
      sidl::ParseError);
}

TEST(SidlParser, DuplicateMethodRejected) {
  EXPECT_THROW(sidl::parse_package(
                   "package p { interface I { void f(); void f(); } }"),
               sidl::ParseError);
}

TEST(SidlParser, BadArrayDimRejected) {
  EXPECT_THROW(sidl::parse_package(
                   "package p { interface I { void f(in array<double,0> x); "
                   "} }"),
               sidl::ParseError);
  EXPECT_THROW(sidl::parse_package(
                   "package p { interface I { void f(in array<double,9> x); "
                   "} }"),
               sidl::ParseError);
  EXPECT_THROW(sidl::parse_package(
                   "package p { interface I { void f(in array<string,1> x); "
                   "} }"),
               sidl::ParseError);
}

TEST(SidlParser, ErrorsCarryLineNumbers) {
  try {
    sidl::parse_package("package p {\n interface I {\n bogus f();\n } }");
    FAIL() << "expected ParseError";
  } catch (const sidl::ParseError& e) {
    EXPECT_EQ(e.line(), 3);
  }
}

TEST(SidlParser, UnterminatedCommentRejected) {
  EXPECT_THROW(sidl::parse_package("package p { /* oops"),
               sidl::ParseError);
}

TEST(SidlParser, TrailingGarbageRejected) {
  EXPECT_THROW(sidl::parse_package("package p { } extra"),
               sidl::ParseError);
}

TEST(SidlParser, TypeToStringRoundsTrip) {
  auto pkg = sidl::parse_package(R"(
    package p { interface I {
      void f(in parallel array<double,2> x);
    } }
  )");
  EXPECT_EQ(pkg.interface("I").method("f").params[0].type.to_string(),
            "parallel array<double,2>");
}
