// Tests for the C binding (src/capi) — the Babel-role language
// interoperability layer. The coupling scenario here is written strictly
// against the C API (opaque handles, status codes, raw buffers), proving a
// non-C++ component could drive the M×N machinery.

#include <gtest/gtest.h>

#include <cstring>

#include "capi/mxn_c.h"

namespace {

struct QuickstartCheck {
  int failures = 0;
};

extern "C" void quickstart_body(mxn_comm comm, void* user) {
  auto* check = static_cast<QuickstartCheck*>(user);
  const int rank = mxn_comm_rank(comm);
  const int side = rank < 2 ? 0 : 1;

  // Side 0: 2 ranks, row blocks. Side 1: 1 rank, everything.
  const int kinds_a[2] = {MXN_AXIS_BLOCK, MXN_AXIS_COLLAPSED};
  const int kinds_b[2] = {MXN_AXIS_COLLAPSED, MXN_AXIS_COLLAPSED};
  const int64_t extents[2] = {6, 4};
  const int nprocs_a[2] = {2, 1};
  const int nprocs_b[2] = {1, 1};
  mxn_dad dad = side == 0
                    ? mxn_dad_regular(2, kinds_a, extents, nprocs_a, NULL)
                    : mxn_dad_regular(2, kinds_b, extents, nprocs_b, NULL);
  if (!dad) {
    ++check->failures;
    return;
  }
  const int cohort_rank = side == 0 ? rank : 0;
  mxn_array arr = mxn_array_create(dad, cohort_rank);
  if (!arr) {
    ++check->failures;
    return;
  }

  int64_t len = 0;
  double* data = mxn_array_local(arr, &len);
  if (side == 0) {
    // Fill by global coordinates through the C API.
    int64_t coords[2];
    for (int64_t i = 0; i < len; ++i) {
      if (mxn_array_global_coords(arr, i, coords) != 0) ++check->failures;
      data[i] = 10.0 * double(coords[0]) + double(coords[1]);
    }
  }

  mxn_pair pair = mxn_pair_create(comm, 2, 1);
  if (!pair || mxn_pair_side(pair) != side) ++check->failures;
  if (mxn_pair_register(pair, "field", arr,
                        side == 0 ? MXN_READ : MXN_WRITE) != 0)
    ++check->failures;
  const int conn = mxn_pair_establish(pair, "field", /*src_side=*/0,
                                      /*one_shot=*/1, /*period=*/1);
  if (conn < 0) ++check->failures;
  if (mxn_pair_data_ready(pair, "field") != 1) ++check->failures;

  if (side == 1) {
    int64_t coords[2];
    for (int64_t i = 0; i < len; ++i) {
      mxn_array_global_coords(arr, i, coords);
      if (data[i] != 10.0 * double(coords[0]) + double(coords[1]))
        ++check->failures;
    }
    uint64_t transfers = 0, elements = 0, bytes = 0;
    if (mxn_pair_stats(pair, conn, &transfers, &elements, &bytes) != 0)
      ++check->failures;
    if (transfers != 1 || elements != 24 || bytes != 24 * sizeof(double))
      ++check->failures;
  }

  mxn_pair_destroy(pair);
  mxn_array_destroy(arr);
  mxn_dad_destroy(dad);
}

extern "C" void failing_body(mxn_comm comm, void*) {
  (void)comm;
  throw std::runtime_error("c callback blew up");
}

}  // namespace

TEST(CApi, QuickstartCouplingThroughCBinding) {
  QuickstartCheck check;
  ASSERT_EQ(mxn_spawn(3, quickstart_body, &check), 0) << mxn_last_error();
  EXPECT_EQ(check.failures, 0);
}

TEST(CApi, ErrorsReportedThroughStatusAndLastError) {
  EXPECT_NE(mxn_spawn(2, failing_body, nullptr), 0);
  EXPECT_STREQ(mxn_last_error(), "c callback blew up");

  EXPECT_NE(mxn_spawn(0, quickstart_body, nullptr), 0);
  EXPECT_NE(std::strlen(mxn_last_error()), 0u);

  EXPECT_NE(mxn_spawn(1, nullptr, nullptr), 0);
}

TEST(CApi, DadValidationSurfacesAsNull) {
  const int kinds[1] = {MXN_AXIS_BLOCK};
  const int64_t extents[1] = {0};  // invalid
  const int nprocs[1] = {2};
  EXPECT_EQ(mxn_dad_regular(1, kinds, extents, nprocs, NULL), nullptr);
  EXPECT_NE(std::strlen(mxn_last_error()), 0u);
  EXPECT_EQ(mxn_dad_regular(1, nullptr, extents, nprocs, NULL), nullptr);
  // Block-cyclic without block sizes.
  const int bc[1] = {MXN_AXIS_BLOCK_CYCLIC};
  const int64_t e[1] = {8};
  EXPECT_EQ(mxn_dad_regular(1, bc, e, nprocs, NULL), nullptr);
}

TEST(CApi, DadQueries) {
  const int kinds[1] = {MXN_AXIS_BLOCK};
  const int64_t extents[1] = {10};
  const int nprocs[1] = {3};
  mxn_dad d = mxn_dad_regular(1, kinds, extents, nprocs, NULL);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(mxn_dad_nranks(d), 3);
  EXPECT_EQ(mxn_dad_local_volume(d, 0), 4);
  EXPECT_EQ(mxn_dad_local_volume(d, 2), 2);
  EXPECT_EQ(mxn_dad_local_volume(d, 9), -1);  // bad rank -> error
  mxn_dad_destroy(d);
}

TEST(CApi, NullHandlesAreSafe) {
  EXPECT_EQ(mxn_comm_rank(nullptr), -1);
  EXPECT_EQ(mxn_comm_size(nullptr), -1);
  EXPECT_NE(mxn_comm_barrier(nullptr), 0);
  EXPECT_EQ(mxn_dad_nranks(nullptr), -1);
  EXPECT_EQ(mxn_array_local(nullptr, nullptr), nullptr);
  EXPECT_EQ(mxn_pair_side(nullptr), -1);
  mxn_dad_destroy(nullptr);
  mxn_array_destroy(nullptr);
  mxn_pair_destroy(nullptr);
}
