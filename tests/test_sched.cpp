// Tests for communication-schedule computation and execution (src/sched):
// builder correctness, the redistribution-is-a-permutation property across
// random template pairs, linearization-based schedules (incl. transpose),
// the receiver-driven protocol, and the schedule cache.

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <thread>

#include "rt/runtime.hpp"
#include "sched/cache.hpp"
#include "sched/executor.hpp"
#include "sched/receiver_driven.hpp"

namespace dad = mxn::dad;
namespace lin = mxn::linear;
namespace sched = mxn::sched;
namespace rt = mxn::rt;
using dad::AxisDist;
using dad::Descriptor;
using dad::DescriptorPtr;
using dad::Index;
using dad::Point;

namespace {

double tagged(const Point& p) { return 1000.0 * p[0] + p[1] + 0.25; }
double tagged1(const Point& p) { return static_cast<double>(p[0]) + 0.5; }

/// Run a full M x N redistribution with spawn(M+N) and verify every
/// destination element equals the source value at the same global point.
void run_redistribution(const DescriptorPtr& src, const DescriptorPtr& dst) {
  const int m = src->nranks();
  const int n = dst->nranks();
  rt::spawn(m + n, [&](rt::Communicator& world) {
    auto c = sched::split_coupling(world, m, n);
    const int ms = c.my_src_rank();
    const int md = c.my_dst_rank();

    std::unique_ptr<dad::DistArray<double>> a, b;
    if (ms >= 0) {
      a = std::make_unique<dad::DistArray<double>>(src, ms);
      a->fill(src->ndim() == 1 ? tagged1 : tagged);
    }
    if (md >= 0) b = std::make_unique<dad::DistArray<double>>(dst, md);

    auto s = sched::build_region_schedule(*src, *dst, ms, md);
    sched::execute<double>(s, a.get(), b.get(), c, 7);

    if (md >= 0) {
      b->for_each_owned([&](const Point& p, const double& v) {
        EXPECT_DOUBLE_EQ(v, src->ndim() == 1 ? tagged1(p) : tagged(p))
            << "at point " << p[0] << "," << p[1];
      });
    }
  });
}

}  // namespace

// ---------------------------------------------------------------------------
// Region schedule builder
// ---------------------------------------------------------------------------

TEST(RegionSchedule, ElementCountsAreConserved) {
  auto src = dad::make_regular(std::vector<AxisDist>{AxisDist::block(24, 3)});
  auto dst = dad::make_regular(std::vector<AxisDist>{AxisDist::block(24, 4)});
  Index sent = 0, received = 0;
  for (int r = 0; r < 3; ++r)
    sent += sched::build_region_schedule(*src, *dst, r, -1).send_elements();
  for (int r = 0; r < 4; ++r)
    received +=
        sched::build_region_schedule(*src, *dst, -1, r).recv_elements();
  EXPECT_EQ(sent, 24);
  EXPECT_EQ(received, 24);
}

TEST(RegionSchedule, SenderAndReceiverViewsAgree) {
  auto src = dad::make_regular(std::vector<AxisDist>{
      AxisDist::block_cyclic(20, 2, 3), AxisDist::block(10, 2)});
  auto dst = dad::make_regular(std::vector<AxisDist>{
      AxisDist::cyclic(20, 4), AxisDist::collapsed(10)});
  for (int s = 0; s < src->nranks(); ++s) {
    auto send_view = sched::build_region_schedule(*src, *dst, s, -1);
    for (const auto& pr : send_view.sends) {
      auto recv_view = sched::build_region_schedule(*src, *dst, -1, pr.peer);
      const auto it = std::find_if(
          recv_view.recvs.begin(), recv_view.recvs.end(),
          [&](const sched::PeerRegions& q) { return q.peer == s; });
      ASSERT_NE(it, recv_view.recvs.end());
      EXPECT_EQ(it->elements, pr.elements);
      ASSERT_EQ(it->regions.size(), pr.regions.size());
      for (std::size_t i = 0; i < pr.regions.size(); ++i)
        EXPECT_EQ(it->regions[i], pr.regions[i]) << "piece " << i;
    }
  }
}

TEST(RegionSchedule, IdentityRedistributionIsSelfOnly) {
  auto d = dad::make_regular(std::vector<AxisDist>{AxisDist::block(16, 4)});
  auto s = sched::build_region_schedule(*d, *d, 1, 1);
  ASSERT_EQ(s.sends.size(), 1u);
  EXPECT_EQ(s.sends[0].peer, 1);
  EXPECT_EQ(s.sends[0].elements, 4);
}

TEST(RegionSchedule, ShapeMismatchRejected) {
  auto a = dad::make_regular(std::vector<AxisDist>{AxisDist::block(16, 4)});
  auto b = dad::make_regular(std::vector<AxisDist>{AxisDist::block(17, 4)});
  EXPECT_THROW(sched::build_region_schedule(*a, *b, 0, -1),
               mxn::rt::UsageError);
}

// ---------------------------------------------------------------------------
// End-to-end redistribution: the Figure 1 scenario and friends
// ---------------------------------------------------------------------------

TEST(Redistribute, Fig1EightTo27ThreeDee) {
  // The paper's Figure 1: M=8 (2x2x2 grid) exporting to N=27 (3x3x3 grid).
  auto src = dad::make_regular(std::vector<AxisDist>{
      AxisDist::block(12, 2), AxisDist::block(12, 2), AxisDist::block(12, 2)});
  auto dst = dad::make_regular(std::vector<AxisDist>{
      AxisDist::block(12, 3), AxisDist::block(12, 3), AxisDist::block(12, 3)});
  const int m = src->nranks(), n = dst->nranks();
  ASSERT_EQ(m, 8);
  ASSERT_EQ(n, 27);
  rt::spawn(m + n, [&](rt::Communicator& world) {
    auto c = sched::split_coupling(world, m, n);
    const int ms = c.my_src_rank(), md = c.my_dst_rank();
    std::unique_ptr<dad::DistArray<float>> a, b;
    if (ms >= 0) {
      a = std::make_unique<dad::DistArray<float>>(src, ms);
      a->fill([](const Point& p) {
        return static_cast<float>(p[0] * 144 + p[1] * 12 + p[2]);
      });
    }
    if (md >= 0) b = std::make_unique<dad::DistArray<float>>(dst, md);
    auto s = sched::build_region_schedule(*src, *dst, ms, md);
    sched::execute<float>(s, a.get(), b.get(), c, 3);
    if (md >= 0) {
      b->for_each_owned([&](const Point& p, const float& v) {
        EXPECT_EQ(v, static_cast<float>(p[0] * 144 + p[1] * 12 + p[2]));
      });
    }
  });
}

TEST(Redistribute, BlockToBlockDifferentCounts) {
  run_redistribution(
      dad::make_regular(std::vector<AxisDist>{AxisDist::block(30, 3)}),
      dad::make_regular(std::vector<AxisDist>{AxisDist::block(30, 5)}));
}

TEST(Redistribute, BlockToCyclic) {
  run_redistribution(
      dad::make_regular(std::vector<AxisDist>{AxisDist::block(24, 4)}),
      dad::make_regular(std::vector<AxisDist>{AxisDist::cyclic(24, 3)}));
}

TEST(Redistribute, GeneralizedBlockToExplicit) {
  auto src = dad::make_regular(std::vector<AxisDist>{
      AxisDist::generalized_block({7, 0, 9}), AxisDist::block(4, 2)});
  auto dst = dad::make_explicit(
      2, Point{16, 4},
      {{dad::Patch::make(2, Point{0, 0}, Point{16, 1}), 0},
       {dad::Patch::make(2, Point{0, 1}, Point{5, 4}), 1},
       {dad::Patch::make(2, Point{5, 1}, Point{16, 4}), 2}},
      3);
  run_redistribution(src, dst);
}

TEST(Redistribute, ImplicitAxisSource) {
  auto src = dad::make_regular(std::vector<AxisDist>{
      AxisDist::implicit({0, 1, 1, 0, 2, 2, 1, 0, 2, 0, 1, 2})});
  auto dst = dad::make_regular(std::vector<AxisDist>{AxisDist::block(12, 2)});
  run_redistribution(src, dst);
}

TEST(Redistribute, SerialToParallelAndBack) {
  // N=1 on one side: the CUMULVS visualization / steering pattern.
  auto par = dad::make_regular(std::vector<AxisDist>{
      AxisDist::block(10, 4), AxisDist::block(6, 1)});
  auto ser = dad::make_regular(std::vector<AxisDist>{
      AxisDist::collapsed(10), AxisDist::collapsed(6)});
  run_redistribution(par, ser);
  run_redistribution(ser, par);
}

TEST(Redistribute, SelfCouplingTranspose) {
  // Same cohort re-decomposes a square array from row-block to col-block.
  auto rows = dad::make_regular(std::vector<AxisDist>{
      AxisDist::block(8, 4), AxisDist::collapsed(8)});
  auto cols = dad::make_regular(std::vector<AxisDist>{
      AxisDist::collapsed(8), AxisDist::block(8, 4)});
  rt::spawn(4, [&](rt::Communicator& world) {
    auto c = sched::self_coupling(world);
    dad::DistArray<double> a(rows, world.rank());
    dad::DistArray<double> b(cols, world.rank());
    a.fill(tagged);
    auto s = sched::build_region_schedule(*rows, *cols, world.rank(),
                                          world.rank());
    sched::execute<double>(s, &a, &b, c, 5);
    b.for_each_owned([&](const Point& p, const double& v) {
      EXPECT_DOUBLE_EQ(v, tagged(p));
    });
  });
}

// Property sweep: random template pairs, checked as full permutations.
class RedistributionSweep : public ::testing::TestWithParam<int> {};

TEST_P(RedistributionSweep, RandomTemplatePairsArePermutations) {
  std::mt19937 rng(GetParam());
  auto rand_axis = [&](Index extent) {
    std::uniform_int_distribution<int> kind(0, 3);
    std::uniform_int_distribution<int> np(1, 4);
    switch (kind(rng)) {
      case 0:
        return AxisDist::block(extent, np(rng));
      case 1:
        return AxisDist::cyclic(extent, np(rng));
      case 2: {
        std::uniform_int_distribution<Index> blk(1, 5);
        return AxisDist::block_cyclic(extent, np(rng), blk(rng));
      }
      default: {
        const int p = np(rng);
        std::vector<Index> sizes(p, 0);
        for (Index i = 0; i < extent; ++i) {
          std::uniform_int_distribution<int> pick(0, p - 1);
          ++sizes[pick(rng)];
        }
        // All-zero guard: dump everything on proc 0 if unlucky.
        Index tot = 0;
        for (auto s : sizes) tot += s;
        if (tot == 0) sizes[0] = extent;
        return AxisDist::generalized_block(std::move(sizes));
      }
    }
  };
  const Index e0 = 11, e1 = 9;
  auto src = std::make_shared<const Descriptor>(
      Descriptor::regular({rand_axis(e0), rand_axis(e1)}));
  auto dst = std::make_shared<const Descriptor>(
      Descriptor::regular({rand_axis(e0), rand_axis(e1)}));
  run_redistribution(src, dst);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RedistributionSweep,
                         ::testing::Range(1, 13));

TEST(RegionSchedule, PruningIsExact) {
  // Bounding-box pruning must never change the schedule, across irregular
  // template pairs (including ranks owning nothing).
  auto src = dad::make_regular(std::vector<AxisDist>{
      AxisDist::generalized_block({7, 0, 9}), AxisDist::block(6, 2)});
  auto dst = dad::make_regular(std::vector<AxisDist>{
      AxisDist::block_cyclic(16, 3, 2), AxisDist::cyclic(6, 2)});
  for (int r = 0; r < src->nranks(); ++r) {
    auto a = sched::build_region_schedule(*src, *dst, r, -1, true);
    auto b = sched::build_region_schedule(*src, *dst, r, -1, false);
    ASSERT_EQ(a.sends.size(), b.sends.size());
    for (std::size_t i = 0; i < a.sends.size(); ++i) {
      EXPECT_EQ(a.sends[i].peer, b.sends[i].peer);
      EXPECT_EQ(a.sends[i].regions, b.sends[i].regions);
    }
  }
  for (int r = 0; r < dst->nranks(); ++r) {
    auto a = sched::build_region_schedule(*src, *dst, -1, r, true);
    auto b = sched::build_region_schedule(*src, *dst, -1, r, false);
    ASSERT_EQ(a.recvs.size(), b.recvs.size());
    for (std::size_t i = 0; i < a.recvs.size(); ++i)
      EXPECT_EQ(a.recvs[i].elements, b.recvs[i].elements);
  }
}

// ---------------------------------------------------------------------------
// Segment (linearization) schedules
// ---------------------------------------------------------------------------

TEST(SegmentSchedule, MatchesRegionScheduleResult) {
  auto src = dad::make_regular(std::vector<AxisDist>{
      AxisDist::block(12, 2), AxisDist::block(8, 2)});
  auto dst = dad::make_regular(std::vector<AxisDist>{
      AxisDist::cyclic(12, 3), AxisDist::block(8, 2)});
  const auto l = lin::Linearization::row_major(2, Point{12, 8});
  const int m = src->nranks(), n = dst->nranks();
  rt::spawn(m + n, [&](rt::Communicator& world) {
    auto c = sched::split_coupling(world, m, n);
    const int ms = c.my_src_rank(), md = c.my_dst_rank();
    std::unique_ptr<dad::DistArray<double>> a, b;
    std::vector<lin::ProvenancedSegment> pa, pb;
    if (ms >= 0) {
      a = std::make_unique<dad::DistArray<double>>(src, ms);
      a->fill(tagged);
      pa = lin::footprint_with_provenance(*src, ms, l);
    }
    if (md >= 0) {
      b = std::make_unique<dad::DistArray<double>>(dst, md);
      pb = lin::footprint_with_provenance(*dst, md, l);
    }
    auto s = sched::build_segment_schedule(*src, l, *dst, l, ms, md);
    sched::execute<double>(s, a.get(), ms >= 0 ? &pa : nullptr, b.get(),
                           md >= 0 ? &pb : nullptr, c, 9);
    if (md >= 0)
      b->for_each_owned([&](const Point& p, const double& v) {
        EXPECT_DOUBLE_EQ(v, tagged(p));
      });
  });
}

TEST(SegmentSchedule, MismatchedLinearizationsExpressTranspose) {
  // Source linearized row-major, destination column-major over the
  // transposed shape: dst(i,j) = src(j,i).
  const Index rows = 6, cols = 4;
  auto src = dad::make_regular(std::vector<AxisDist>{
      AxisDist::block(rows, 2), AxisDist::collapsed(cols)});
  auto dst = dad::make_regular(std::vector<AxisDist>{
      AxisDist::block(cols, 2), AxisDist::collapsed(rows)});
  const auto lsrc = lin::Linearization::row_major(2, Point{rows, cols});
  // Column-major over the (cols, rows)-shaped destination enumerates
  // dst(:, k) fastest — the same order as src rows.
  const auto ldst = lin::Linearization::column_major(2, Point{cols, rows});
  rt::spawn(4, [&](rt::Communicator& world) {
    auto c = sched::split_coupling(world, 2, 2);
    const int ms = c.my_src_rank(), md = c.my_dst_rank();
    std::unique_ptr<dad::DistArray<double>> a, b;
    std::vector<lin::ProvenancedSegment> pa, pb;
    if (ms >= 0) {
      a = std::make_unique<dad::DistArray<double>>(src, ms);
      a->fill(tagged);
      pa = lin::footprint_with_provenance(*src, ms, lsrc);
    }
    if (md >= 0) {
      b = std::make_unique<dad::DistArray<double>>(dst, md);
      pb = lin::footprint_with_provenance(*dst, md, ldst);
    }
    auto s = sched::build_segment_schedule(*src, lsrc, *dst, ldst, ms, md);
    sched::execute<double>(s, a.get(), ms >= 0 ? &pa : nullptr, b.get(),
                           md >= 0 ? &pb : nullptr, c, 9);
    if (md >= 0)
      b->for_each_owned([&](const Point& p, const double& v) {
        EXPECT_DOUBLE_EQ(v, tagged(Point{p[1], p[0]})) << p[0] << "," << p[1];
      });
  });
}

TEST(SegmentSchedule, TotalMismatchRejected) {
  auto a = dad::make_regular(std::vector<AxisDist>{AxisDist::block(16, 2)});
  auto b = dad::make_regular(std::vector<AxisDist>{AxisDist::block(12, 2)});
  EXPECT_THROW(
      sched::build_segment_schedule(
          *a, lin::Linearization::row_major(1, Point{16}), *b,
          lin::Linearization::row_major(1, Point{12}), 0, -1),
      mxn::rt::UsageError);
}

// ---------------------------------------------------------------------------
// Receiver-driven protocol
// ---------------------------------------------------------------------------

TEST(ReceiverDriven, DeliversWithoutPrecomputedSchedule) {
  auto src = dad::make_regular(std::vector<AxisDist>{
      AxisDist::block(18, 3), AxisDist::block(6, 2)});
  auto dst = dad::make_regular(std::vector<AxisDist>{
      AxisDist::block_cyclic(18, 2, 4), AxisDist::collapsed(6)});
  const auto l = lin::Linearization::row_major(2, Point{18, 6});
  const int m = src->nranks(), n = dst->nranks();
  rt::spawn(m + n, [&](rt::Communicator& world) {
    auto c = sched::split_coupling(world, m, n);
    const int ms = c.my_src_rank(), md = c.my_dst_rank();
    std::unique_ptr<dad::DistArray<double>> a, b;
    if (ms >= 0) {
      a = std::make_unique<dad::DistArray<double>>(src, ms);
      a->fill(tagged);
    }
    if (md >= 0) b = std::make_unique<dad::DistArray<double>>(dst, md);
    sched::redistribute_receiver_driven<double>(a.get(), l, b.get(), l, c,
                                                20);
    if (md >= 0)
      b->for_each_owned([&](const Point& p, const double& v) {
        EXPECT_DOUBLE_EQ(v, tagged(p));
      });
  });
}

TEST(ReceiverDriven, SelfCouplingRedistributes) {
  auto rows = dad::make_regular(std::vector<AxisDist>{
      AxisDist::block(8, 3), AxisDist::collapsed(5)});
  auto cols = dad::make_regular(std::vector<AxisDist>{
      AxisDist::collapsed(8), AxisDist::block(5, 3)});
  const auto l = lin::Linearization::row_major(2, Point{8, 5});
  rt::spawn(3, [&](rt::Communicator& world) {
    auto c = sched::self_coupling(world);
    dad::DistArray<double> a(rows, world.rank());
    dad::DistArray<double> b(cols, world.rank());
    a.fill(tagged);
    sched::redistribute_receiver_driven<double>(&a, l, &b, l, c, 30);
    b.for_each_owned([&](const Point& p, const double& v) {
      EXPECT_DOUBLE_EQ(v, tagged(p));
    });
  });
}

// ---------------------------------------------------------------------------
// Schedule cache
// ---------------------------------------------------------------------------

TEST(ScheduleCache, HitsOnRepeatAndConformingArrays) {
  auto src = dad::make_regular(std::vector<AxisDist>{AxisDist::block(24, 2)});
  auto dst = dad::make_regular(std::vector<AxisDist>{AxisDist::cyclic(24, 2)});
  sched::ScheduleCache cache;
  const auto& s1 = cache.get(src, dst, 0, -1);
  const auto& s2 = cache.get(src, dst, 0, -1);
  EXPECT_EQ(&s1, &s2);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);

  // A structurally equal descriptor (different object) also hits.
  auto src2 = dad::make_regular(std::vector<AxisDist>{AxisDist::block(24, 2)});
  cache.get(src2, dst, 0, -1);
  EXPECT_EQ(cache.hits(), 2u);

  // Different role or template misses.
  cache.get(src, dst, 1, -1);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(ScheduleCache, StatsReportPerEntryBuildTime) {
  auto src = dad::make_regular(std::vector<AxisDist>{AxisDist::block(48, 3)});
  auto dst = dad::make_regular(std::vector<AxisDist>{AxisDist::cyclic(48, 4)});
  sched::ScheduleCache cache;
  cache.get(src, dst, 0, -1);
  cache.get(src, dst, 1, -1);
  cache.get(src, dst, 0, -1);  // hit; must not add an entry

  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 1u);
  ASSERT_EQ(stats.entries.size(), 2u);
  for (const auto& e : stats.entries) {
    EXPECT_GT(e.build_ns, 0);
    EXPECT_GT(e.messages, 0u);
    EXPECT_EQ(e.my_dst, -1);
  }
  EXPECT_GT(stats.total_build_ns, 0);
}

TEST(ScheduleCache, CacheHitReturnsFastPathSchedule) {
  // The cache builds through the Auto path (analytic here); a hit must hand
  // back the very same schedule, and it must equal the naive reference.
  auto src = dad::make_regular(std::vector<AxisDist>{
      AxisDist::cyclic(60, 3), AxisDist::block(20, 2)});
  auto dst = dad::make_regular(std::vector<AxisDist>{
      AxisDist::block(60, 2), AxisDist::block_cyclic(20, 2, 3)});
  sched::ScheduleCache cache;
  const auto& built = cache.get(src, dst, 2, 1);
  const auto& again = cache.get(src, dst, 2, 1);
  EXPECT_EQ(&built, &again);
  EXPECT_EQ(cache.hits(), 1u);

  const auto ref = sched::build_region_schedule(*src, *dst, 2, 1, false);
  ASSERT_EQ(built.sends.size(), ref.sends.size());
  ASSERT_EQ(built.recvs.size(), ref.recvs.size());
  for (std::size_t k = 0; k < ref.sends.size(); ++k) {
    EXPECT_EQ(built.sends[k].peer, ref.sends[k].peer);
    EXPECT_EQ(built.sends[k].elements, ref.sends[k].elements);
    ASSERT_EQ(built.sends[k].regions.size(), ref.sends[k].regions.size());
    for (std::size_t i = 0; i < ref.sends[k].regions.size(); ++i)
      EXPECT_EQ(built.sends[k].regions[i], ref.sends[k].regions[i]);
  }
  for (std::size_t k = 0; k < ref.recvs.size(); ++k) {
    EXPECT_EQ(built.recvs[k].peer, ref.recvs[k].peer);
    EXPECT_EQ(built.recvs[k].elements, ref.recvs[k].elements);
    ASSERT_EQ(built.recvs[k].regions.size(), ref.recvs[k].regions.size());
    for (std::size_t i = 0; i < ref.recvs[k].regions.size(); ++i)
      EXPECT_EQ(built.recvs[k].regions[i], ref.recvs[k].regions[i]);
  }
}

TEST(ScheduleCache, StructuralHashMatchesEquality) {
  auto a = dad::make_regular(std::vector<AxisDist>{AxisDist::block(24, 2),
                                                   AxisDist::cyclic(10, 3)});
  auto b = dad::make_regular(std::vector<AxisDist>{AxisDist::block(24, 2),
                                                   AxisDist::cyclic(10, 3)});
  auto c = dad::make_regular(std::vector<AxisDist>{AxisDist::block(24, 3),
                                                   AxisDist::cyclic(10, 3)});
  // Equal descriptors hash equally (the cache's bucketing invariant)...
  EXPECT_TRUE(*a == *b);
  EXPECT_EQ(a->structural_hash(), b->structural_hash());
  // ...and a different decomposition is expected to land elsewhere (not
  // guaranteed in theory, but a collision here would mean a broken hash).
  EXPECT_FALSE(*a == *c);
  EXPECT_NE(a->structural_hash(), c->structural_hash());
}

TEST(ScheduleCache, CachedScheduleServesEveryConformingArray) {
  // One cached schedule, two different arrays aligned to the same source
  // template: the second transfer must hit the cache and still move the
  // second array's values.
  auto src = dad::make_regular(std::vector<AxisDist>{AxisDist::block(12, 2)});
  auto dst = dad::make_regular(std::vector<AxisDist>{AxisDist::cyclic(12, 2)});
  rt::spawn(4, [&](rt::Communicator& world) {
    auto c = sched::split_coupling(world, 2, 2);
    const int ms = c.my_src_rank(), md = c.my_dst_rank();
    std::unique_ptr<dad::DistArray<double>> a1, a2, b;
    if (ms >= 0) {
      a1 = std::make_unique<dad::DistArray<double>>(src, ms);
      a1->fill([](const Point& p) { return double(p[0]); });
      a2 = std::make_unique<dad::DistArray<double>>(src, ms);
      a2->fill([](const Point& p) { return 100.0 + double(p[0]); });
    }
    if (md >= 0) b = std::make_unique<dad::DistArray<double>>(dst, md);

    sched::ScheduleCache cache;
    sched::execute<double>(cache.get(src, dst, ms, md), a1.get(), b.get(), c,
                           11);
    if (md >= 0)
      b->for_each_owned([](const Point& p, const double& v) {
        EXPECT_DOUBLE_EQ(v, double(p[0]));
      });
    sched::execute<double>(cache.get(src, dst, ms, md), a2.get(), b.get(), c,
                           12);
    if (md >= 0)
      b->for_each_owned([](const Point& p, const double& v) {
        EXPECT_DOUBLE_EQ(v, 100.0 + double(p[0]));
      });
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
  });
}

// ---------------------------------------------------------------------------
// Sharded / bounded schedule cache (multi-tenant fabric, docs/PERFORMANCE.md)
// ---------------------------------------------------------------------------

namespace {

/// Distinct 1-D descriptors over the SAME 24-element template (schedules
/// require identical shapes): varying the block-cyclic block size varies
/// the structural hash, so each index is a distinct cache key family.
DescriptorPtr tenant_desc(int i) {
  return dad::make_regular(
      std::vector<AxisDist>{AxisDist::block_cyclic(24, 2, 1 + i)});
}

}  // namespace

TEST(ScheduleCache, ClearResetsTallies) {
  auto src = tenant_desc(0);
  auto dst = dad::make_regular(std::vector<AxisDist>{AxisDist::cyclic(24, 2)});
  sched::ScheduleCache cache;
  cache.get(src, dst, 0, -1);
  cache.get(src, dst, 0, -1);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);

  // A cleared cache reports a clean slate: tallies must not describe rates
  // against entries that no longer exist.
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_EQ(cache.evicted(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);

  // ...and keeps counting correctly afterwards.
  cache.get(src, dst, 0, -1);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(ScheduleCache, EntryCapEvictsLeastRecentlyUsed) {
  sched::ScheduleCacheConfig cfg;
  cfg.max_entries = 2;
  sched::ScheduleCache cache(cfg);
  auto dst = dad::make_regular(std::vector<AxisDist>{AxisDist::cyclic(24, 2)});

  cache.get(tenant_desc(0), dst, 0, -1);
  cache.get(tenant_desc(1), dst, 0, -1);
  cache.get(tenant_desc(0), dst, 0, -1);  // touch 0: 1 is now coldest
  EXPECT_EQ(cache.evicted(), 0u);

  cache.get(tenant_desc(2), dst, 0, -1);  // over cap: evicts 1
  EXPECT_EQ(cache.evicted(), 1u);
  EXPECT_EQ(cache.size(), 2u);

  const auto hits_before = cache.hits();
  cache.get(tenant_desc(0), dst, 0, -1);  // survivor: hit
  EXPECT_EQ(cache.hits(), hits_before + 1);
  const auto misses_before = cache.misses();
  cache.get(tenant_desc(1), dst, 0, -1);  // victim: rebuilt
  EXPECT_EQ(cache.misses(), misses_before + 1);
}

TEST(ScheduleCache, ByteBudgetBoundsResidency) {
  // Learn one entry's cost, then budget for ~3 of them and insert 8.
  auto dst = dad::make_regular(std::vector<AxisDist>{AxisDist::cyclic(24, 2)});
  sched::ScheduleCache probe;
  probe.get(tenant_desc(0), dst, 0, -1);
  const std::size_t per_entry = probe.bytes();
  ASSERT_GT(per_entry, 0u);

  sched::ScheduleCacheConfig cfg;
  cfg.max_bytes = 3 * per_entry + per_entry / 2;
  sched::ScheduleCache cache(cfg);
  for (int i = 0; i < 8; ++i) cache.get(tenant_desc(i), dst, 0, -1);
  EXPECT_GT(cache.evicted(), 0u);
  EXPECT_LE(cache.bytes(), cfg.max_bytes);
  EXPECT_LT(cache.size(), 8u);
}

TEST(ScheduleCache, GetSharedPinsScheduleAcrossEviction) {
  sched::ScheduleCacheConfig cfg;
  cfg.max_entries = 1;
  sched::ScheduleCache cache(cfg);
  auto dst = dad::make_regular(std::vector<AxisDist>{AxisDist::cyclic(24, 2)});

  auto pinned = cache.get_shared(tenant_desc(0), dst, 0, -1);
  const std::size_t messages = pinned->message_count();
  cache.get(tenant_desc(1), dst, 0, -1);  // evicts tenant 0's entry
  cache.get(tenant_desc(2), dst, 0, -1);  // evicts tenant 1's entry
  EXPECT_GE(cache.evicted(), 2u);

  // The pin keeps the evicted schedule fully alive and unchanged.
  EXPECT_EQ(pinned->message_count(), messages);
  EXPECT_FALSE(pinned->sends.empty() && pinned->recvs.empty());
}

TEST(ScheduleCache, ConfigureReshardsWithoutLosingEntries) {
  sched::ScheduleCache cache;
  auto dst = dad::make_regular(std::vector<AxisDist>{AxisDist::cyclic(24, 2)});
  for (int i = 0; i < 6; ++i) cache.get(tenant_desc(i), dst, 0, -1);
  EXPECT_EQ(cache.size(), 6u);
  const std::size_t bytes = cache.bytes();

  sched::ScheduleCacheConfig cfg;
  cfg.shards = 4;  // unbounded, just spread
  cache.configure(cfg);
  EXPECT_EQ(cache.size(), 6u);
  EXPECT_EQ(cache.bytes(), bytes);

  const auto misses_before = cache.misses();
  for (int i = 0; i < 6; ++i) cache.get(tenant_desc(i), dst, 0, -1);
  EXPECT_EQ(cache.misses(), misses_before);  // all redistributed entries hit
}

TEST(ScheduleCache, ConcurrentLookupsAndRetirementStayExact) {
  // TSan-covered: many tenant threads hammer get()/get_shared() across a
  // sharded, budgeted cache while another thread advances the epoch and
  // retires old generations. The tallies must stay exact: every lookup is
  // either a hit or a miss (builds run inside the shard lock), regardless
  // of interleaving with eviction and retirement.
  sched::ScheduleCacheConfig cfg;
  cfg.shards = 4;
  cfg.max_entries = 16;
  sched::ScheduleCache cache(cfg);
  auto dst = dad::make_regular(std::vector<AxisDist>{AxisDist::cyclic(24, 2)});

  constexpr int kThreads = 4;
  constexpr int kLookups = 200;
  constexpr int kKeys = 24;  // > max_entries, so eviction happens live
  std::vector<DescriptorPtr> descs;
  for (int i = 0; i < kKeys; ++i) descs.push_back(tenant_desc(i));

  std::atomic<bool> stop{false};
  std::thread retirer([&] {
    std::uint64_t e = 1;
    while (!stop.load()) {
      cache.set_epoch(e);
      cache.retire_epochs_before(e);
      ++e;
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> tenants;
  for (int t = 0; t < kThreads; ++t) {
    tenants.emplace_back([&, t] {
      for (int i = 0; i < kLookups; ++i) {
        auto s = cache.get_shared(descs[(t * 7 + i) % kKeys], dst, 0, -1);
        EXPECT_GT(s->message_count(), 0u);
      }
    });
  }
  for (auto& th : tenants) th.join();
  stop.store(true);
  retirer.join();

  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<std::size_t>(kThreads) * kLookups);
}
