// Tests for parallel remote method invocation (src/prmi): the distributed
// framework, collective / independent / one-way invocation kinds, ghost
// invocations and return replication at M != N, parallel-argument
// redistribution in both directions, error propagation, and the optional
// simple-argument consistency check.

#include <gtest/gtest.h>

#include <atomic>

#include "prmi/distributed_framework.hpp"
#include "rt/runtime.hpp"
#include "sidl/parser.hpp"

namespace prmi = mxn::prmi;
namespace dad = mxn::dad;
namespace core = mxn::core;
namespace rt = mxn::rt;
using dad::AxisDist;
using dad::Point;
using prmi::Value;

namespace {

const char* kSidl = R"(
  package demo {
    interface Engine {
      collective double scale_sum(in double factor, in int count);
      collective void stats(in int x, out long doubled, inout double acc);
      collective oneway void note(in string tag);
      independent int ping(in int token);
      independent oneway void nudge(in int amount);
      collective void push(in parallel array<double,1> field);
      collective void pull(out parallel array<double,1> field);
      collective void boost(inout parallel array<double,1> field,
                            in double factor);
      collective void fail(in string reason);
    }
  }
)";

std::vector<int> iota_ranks(int from, int count) {
  std::vector<int> r(count);
  for (int i = 0; i < count; ++i) r[i] = from + i;
  return r;
}

struct ServerState {
  std::atomic<int> notes{0};
  std::atomic<int> nudges{0};
};

/// Build the demo servant used throughout. The parallel target array (per
/// cohort rank) backs push/pull/boost.
std::shared_ptr<prmi::Servant> make_engine_servant(
    rt::Communicator cohort, dad::DistArray<double>* target,
    ServerState* state) {
  auto pkg = mxn::sidl::parse_package(kSidl);
  auto servant = std::make_shared<prmi::Servant>(pkg.interface("Engine"));

  servant->bind("scale_sum", [](prmi::CalleeContext& ctx,
                                std::vector<Value>& args) -> Value {
    // An SPMD collective implementation: combine across the callee cohort.
    const double factor = std::get<double>(args[0]);
    const int count = std::get<std::int32_t>(args[1]);
    const double local = factor * count * (ctx.cohort.rank() + 1);
    const double total =
        ctx.cohort.allreduce(local, [](double a, double b) { return a + b; });
    return total;
  });

  servant->bind("stats",
                [](prmi::CalleeContext&, std::vector<Value>& args) -> Value {
                  const int x = std::get<std::int32_t>(args[0]);
                  args[1] = static_cast<std::int64_t>(2 * x);
                  args[2] = std::get<double>(args[2]) + 1.0;
                  return {};
                });

  servant->bind("note",
                [state](prmi::CalleeContext&, std::vector<Value>&) -> Value {
                  ++state->notes;
                  return {};
                });

  servant->bind("ping", [](prmi::CalleeContext& ctx,
                           std::vector<Value>& args) -> Value {
    EXPECT_FALSE(ctx.collective);
    return std::int32_t(std::get<std::int32_t>(args[0]) + 1);
  });

  servant->bind("nudge",
                [state](prmi::CalleeContext&, std::vector<Value>& args) -> Value {
                  state->nudges += std::get<std::int32_t>(args[0]);
                  return {};
                });

  servant->bind("push", [](prmi::CalleeContext&, std::vector<Value>&) -> Value {
    return {};  // data already redistributed into the target
  });

  servant->bind("pull", [](prmi::CalleeContext&, std::vector<Value>&) -> Value {
    return {};  // target contents flow back after the handler
  });

  servant->bind("boost", [target](prmi::CalleeContext&,
                                  std::vector<Value>& args) -> Value {
    const double f = std::get<double>(args[1]);
    for (auto& v : target->local()) v *= f;
    return {};
  });

  servant->bind("fail",
                [](prmi::CalleeContext&, std::vector<Value>& args) -> Value {
                  throw std::runtime_error(std::get<std::string>(args[0]));
                });

  (void)cohort;
  return servant;
}

/// Harness: spawn m client + n server processes, wire one connection, run
/// `client` on client cohort ranks while servers serve `server_calls`
/// invocations (serve-until-shutdown when < 0).
void run_client_server(
    int m, int n, int server_calls,
    const std::function<void(prmi::RemotePort&, rt::Communicator& cohort)>&
        client,
    const dad::DescriptorPtr& target_desc = nullptr,
    const std::function<void(dad::DistArray<double>&, rt::Communicator&)>&
        check_server = nullptr) {
  rt::spawn(m + n, [&](rt::Communicator& world) {
    prmi::DistributedFramework fw(world);
    fw.instantiate("client", iota_ranks(0, m));
    fw.instantiate("server", iota_ranks(m, n));

    ServerState state;
    std::unique_ptr<dad::DistArray<double>> target;

    if (fw.member_of("server")) {
      auto cohort = fw.cohort("server");
      auto desc = target_desc
                      ? target_desc
                      : dad::make_regular(std::vector<AxisDist>{
                            AxisDist::block(12, n)});
      target = std::make_unique<dad::DistArray<double>>(desc, cohort.rank());
      auto servant = make_engine_servant(cohort, target.get(), &state);
      for (const char* meth : {"push", "pull", "boost"})
        servant->set_parallel_target(
            meth, "field",
            core::make_field("field", target.get(),
                             core::AccessMode::ReadWrite));
      fw.add_provides("server", "engine", servant);
    }
    if (fw.member_of("client")) {
      auto pkg = mxn::sidl::parse_package(kSidl);
      fw.register_uses("client", "engine", pkg.interface("Engine"));
    }
    fw.connect("client", "engine", "server", "engine");

    if (fw.member_of("server")) {
      fw.serve("server", server_calls);
      if (check_server) {
        auto cohort = fw.cohort("server");
        check_server(*target, cohort);
      }
    } else {
      auto port = fw.get_port("client", "engine");
      auto cohort = fw.cohort("client");
      client(*port, cohort);
      if (server_calls < 0) port->shutdown_provider();
    }
  });
}

}  // namespace

// ---------------------------------------------------------------------------
// Collective calls
// ---------------------------------------------------------------------------

TEST(Prmi, CollectiveCallReturnsToEveryCaller) {
  // N=3 servers: scale_sum returns factor*count*(1+2+3).
  run_client_server(2, 3, 1, [](prmi::RemotePort& port, rt::Communicator&) {
    auto r = port.call("scale_sum", {2.0, std::int32_t(5)});
    EXPECT_DOUBLE_EQ(std::get<double>(r.ret), 2.0 * 5 * 6);
  });
}

TEST(Prmi, GhostInvocationsWhenFewerCallers) {
  // M=1 caller, N=4 callees: the caller's invocation fans out to all four
  // callee ranks (ghost invocations) and one return comes back.
  run_client_server(1, 4, 1, [](prmi::RemotePort& port, rt::Communicator&) {
    auto r = port.call("scale_sum", {1.0, std::int32_t(1)});
    EXPECT_DOUBLE_EQ(std::get<double>(r.ret), 1 + 2 + 3 + 4);
  });
}

TEST(Prmi, ReplicatedReturnsWhenMoreCallers) {
  // M=5 callers, N=2 callees: every caller still receives the return value.
  run_client_server(5, 2, 1, [](prmi::RemotePort& port, rt::Communicator&) {
    auto r = port.call("scale_sum", {3.0, std::int32_t(2)});
    EXPECT_DOUBLE_EQ(std::get<double>(r.ret), 3.0 * 2 * 3);
  });
}

TEST(Prmi, OutAndInoutSimpleParameters) {
  run_client_server(2, 2, 1, [](prmi::RemotePort& port, rt::Communicator&) {
    auto r = port.call("stats", {std::int32_t(21), Value{}, 0.5});
    EXPECT_EQ(std::get<std::int64_t>(r.args[1]), 42);
    EXPECT_DOUBLE_EQ(std::get<double>(r.args[2]), 1.5);
  });
}

TEST(Prmi, ConsecutiveCallsKeepOrder) {
  run_client_server(2, 2, 4, [](prmi::RemotePort& port, rt::Communicator&) {
    for (int i = 1; i <= 4; ++i) {
      auto r = port.call("scale_sum", {double(i), std::int32_t(1)});
      EXPECT_DOUBLE_EQ(std::get<double>(r.ret), i * 3.0);
    }
  });
}

TEST(Prmi, RemoteExceptionPropagates) {
  run_client_server(2, 2, 1, [](prmi::RemotePort& port, rt::Communicator&) {
    try {
      port.call("fail", {std::string("it broke")});
      FAIL() << "expected RemoteError";
    } catch (const prmi::RemoteError& e) {
      EXPECT_STREQ(e.what(), "it broke");
    }
  });
}

TEST(Prmi, ArgumentValidation) {
  run_client_server(1, 1, 1, [](prmi::RemotePort& port, rt::Communicator&) {
    EXPECT_THROW(port.call("scale_sum", {2.0}), rt::UsageError);  // arity
    EXPECT_THROW(port.call("scale_sum", {std::int32_t(1), std::int32_t(5)}),
                 prmi::TypeMismatch);
    EXPECT_THROW(port.call("nope", {}), std::out_of_range);
    EXPECT_THROW(port.call("note", {std::string("x")}), rt::UsageError)
        << "oneway methods must go through call_oneway";
    EXPECT_THROW(port.call("ping", {std::int32_t(1)}), rt::UsageError)
        << "independent methods must go through call_independent";
    // Unblock the server's pending serve(1).
    auto r = port.call("scale_sum", {1.0, std::int32_t(1)});
    EXPECT_DOUBLE_EQ(std::get<double>(r.ret), 1.0);
  });
}

TEST(Prmi, SimpleArgConsistencyCheckCatchesDivergence) {
  run_client_server(3, 1, 0, [](prmi::RemotePort& port,
                                rt::Communicator& cohort) {
    port.set_check_simple_args(true);
    // Rank-dependent "simple" argument violates the CCA convention.
    EXPECT_THROW(
        port.call("scale_sum", {double(cohort.rank()), std::int32_t(1)}),
        rt::UsageError);
  });
}

// ---------------------------------------------------------------------------
// One-way and independent calls
// ---------------------------------------------------------------------------

TEST(Prmi, OnewayReturnsImmediatelyAndExecutes) {
  // Server serves 3 oneway notes then 1 regular call (the sync point).
  run_client_server(2, 2, 4, [](prmi::RemotePort& port, rt::Communicator&) {
    for (int i = 0; i < 3; ++i) port.call_oneway("note", {std::string("t")});
    auto r = port.call("scale_sum", {1.0, std::int32_t(1)});
    EXPECT_DOUBLE_EQ(std::get<double>(r.ret), 3.0);
  });
}

TEST(Prmi, IndependentCallRoutesToOneCallee) {
  // Each caller rank i targets callee i % 3 == i, so every callee rank
  // serves exactly one invocation.
  run_client_server(3, 3, 1, [](prmi::RemotePort& port,
                                rt::Communicator& cohort) {
    auto r = port.call_independent("ping",
                                   {std::int32_t(100 + cohort.rank())});
    EXPECT_EQ(std::get<std::int32_t>(r.ret), 101 + cohort.rank());
  });
}

TEST(Prmi, IndependentCallWithExplicitTarget) {
  // All 2 callers target callee rank 1; callee 0 never serves an invoke.
  rt::spawn(4, [&](rt::Communicator& world) {
    prmi::DistributedFramework fw(world);
    fw.instantiate("client", {0, 1});
    fw.instantiate("server", {2, 3});
    ServerState state;
    std::unique_ptr<dad::DistArray<double>> target;
    if (fw.member_of("server")) {
      auto cohort = fw.cohort("server");
      auto desc = dad::make_regular(
          std::vector<AxisDist>{AxisDist::block(12, 2)});
      target = std::make_unique<dad::DistArray<double>>(desc, cohort.rank());
      fw.add_provides("server", "engine",
                      make_engine_servant(cohort, target.get(), &state));
    } else {
      auto pkg = mxn::sidl::parse_package(kSidl);
      fw.register_uses("client", "engine", pkg.interface("Engine"));
    }
    fw.connect("client", "engine", "server", "engine");
    if (fw.member_of("server")) {
      const int served = fw.serve("server", fw.cohort("server").rank() == 1
                                                ? 2
                                                : 0);
      EXPECT_EQ(served, fw.cohort("server").rank() == 1 ? 2 : 0);
    } else {
      auto port = fw.get_port("client", "engine");
      auto r = port->call_independent("ping", {std::int32_t(7)}, 1);
      EXPECT_EQ(std::get<std::int32_t>(r.ret), 8);
    }
  });
}

TEST(Prmi, IndependentOnewayNudges) {
  run_client_server(2, 1, 5, [](prmi::RemotePort& port,
                                rt::Communicator& cohort) {
    port.call_independent("nudge", {std::int32_t(10)});
    port.call_independent("nudge", {std::int32_t(5)});
    // Sync with a regular call; nudges land before it per-connection FIFO.
    auto r = port.call("scale_sum", {1.0, std::int32_t(1)});
    EXPECT_DOUBLE_EQ(std::get<double>(r.ret), 1.0);
    (void)cohort;
  });
}

// ---------------------------------------------------------------------------
// Parallel arguments
// ---------------------------------------------------------------------------

TEST(Prmi, ParallelInArgumentRedistributes) {
  const int m = 3, n = 2;
  auto caller_desc = dad::make_regular(
      std::vector<AxisDist>{AxisDist::block(12, m)});
  auto callee_desc = dad::make_regular(
      std::vector<AxisDist>{AxisDist::block(12, n)});
  run_client_server(
      m, n, 1,
      [&](prmi::RemotePort& port, rt::Communicator& cohort) {
        dad::DistArray<double> mine(caller_desc, cohort.rank());
        mine.fill([](const Point& p) { return 10.0 * p[0]; });
        auto binding =
            core::make_field("field", &mine, core::AccessMode::Read);
        port.call("push", {prmi::ParallelRef{&binding}});
      },
      callee_desc,
      [](dad::DistArray<double>& target, rt::Communicator&) {
        target.for_each_owned([](const Point& p, const double& v) {
          EXPECT_DOUBLE_EQ(v, 10.0 * p[0]);
        });
      });
}

TEST(Prmi, ParallelOutArgumentFlowsBack) {
  const int m = 2, n = 3;
  auto caller_desc = dad::make_regular(
      std::vector<AxisDist>{AxisDist::cyclic(12, m)});
  auto callee_desc = dad::make_regular(
      std::vector<AxisDist>{AxisDist::block(12, n)});
  rt::spawn(m + n, [&](rt::Communicator& world) {
    prmi::DistributedFramework fw(world);
    fw.instantiate("client", iota_ranks(0, m));
    fw.instantiate("server", iota_ranks(m, n));
    ServerState state;
    std::unique_ptr<dad::DistArray<double>> target;
    if (fw.member_of("server")) {
      auto cohort = fw.cohort("server");
      target =
          std::make_unique<dad::DistArray<double>>(callee_desc, cohort.rank());
      target->fill([](const Point& p) { return 100.0 + p[0]; });
      auto servant = make_engine_servant(cohort, target.get(), &state);
      servant->set_parallel_target(
          "pull", "field",
          core::make_field("field", target.get(), core::AccessMode::Read));
      fw.add_provides("server", "engine", servant);
      fw.connect("client", "engine", "server", "engine");
      fw.serve("server", 1);
    } else {
      auto pkg = mxn::sidl::parse_package(kSidl);
      fw.register_uses("client", "engine", pkg.interface("Engine"));
      fw.connect("client", "engine", "server", "engine");
      auto port = fw.get_port("client", "engine");
      auto cohort = fw.cohort("client");
      dad::DistArray<double> mine(caller_desc, cohort.rank());
      auto binding = core::make_field("field", &mine, core::AccessMode::Write);
      port->call("pull", {prmi::ParallelRef{&binding}});
      mine.for_each_owned([](const Point& p, const double& v) {
        EXPECT_DOUBLE_EQ(v, 100.0 + p[0]);
      });
    }
  });
}

TEST(Prmi, ParallelInoutRoundTrips) {
  const int m = 2, n = 2;
  auto caller_desc = dad::make_regular(
      std::vector<AxisDist>{AxisDist::block(12, m)});
  auto callee_desc = dad::make_regular(
      std::vector<AxisDist>{AxisDist::cyclic(12, n)});
  run_client_server(
      m, n, 1,
      [&](prmi::RemotePort& port, rt::Communicator& cohort) {
        dad::DistArray<double> mine(caller_desc, cohort.rank());
        mine.fill([](const Point& p) { return 1.0 + p[0]; });
        auto binding =
            core::make_field("field", &mine, core::AccessMode::ReadWrite);
        port.call("boost", {prmi::ParallelRef{&binding}, 10.0});
        mine.for_each_owned([](const Point& p, const double& v) {
          EXPECT_DOUBLE_EQ(v, 10.0 * (1.0 + p[0]));
        });
      },
      callee_desc);
}

TEST(Prmi, MissingTargetForOutParallelParamReportedToCaller) {
  // Deferral only covers inputs: an out/inout parallel parameter without a
  // pre-registered target is a hard error surfaced to the caller.
  rt::spawn(2, [&](rt::Communicator& world) {
    prmi::DistributedFramework fw(world);
    fw.instantiate("client", {0});
    fw.instantiate("server", {1});
    ServerState state;
    std::unique_ptr<dad::DistArray<double>> target;
    if (fw.member_of("server")) {
      auto cohort = fw.cohort("server");
      auto desc = dad::make_regular(
          std::vector<AxisDist>{AxisDist::block(12, 1)});
      target = std::make_unique<dad::DistArray<double>>(desc, cohort.rank());
      // Deliberately no set_parallel_target for "pull" (out param).
      fw.add_provides("server", "engine",
                      make_engine_servant(cohort, target.get(), &state));
      fw.connect("client", "engine", "server", "engine");
      // Layout requests are control traffic: serve-until-shutdown handles
      // them without counting an invocation.
      EXPECT_EQ(fw.serve("server", -1), 0);
    } else {
      auto pkg = mxn::sidl::parse_package(kSidl);
      fw.register_uses("client", "engine", pkg.interface("Engine"));
      fw.connect("client", "engine", "server", "engine");
      auto port = fw.get_port("client", "engine");
      auto desc = dad::make_regular(
          std::vector<AxisDist>{AxisDist::block(12, 1)});
      dad::DistArray<double> mine(desc, 0);
      auto binding = core::make_field("f", &mine, core::AccessMode::Write);
      EXPECT_THROW(port->call("pull", {prmi::ParallelRef{&binding}}),
                   prmi::RemoteError);
      port->shutdown_provider();
    }
  });
}

TEST(Prmi, DeferredParallelInputPulledMidCall) {
  // §2.4's second strategy end to end: the callee registers NO layout for
  // push's parallel input; the handler decides the layout during the call
  // and pulls the data; the parked callers serve the pull and then get the
  // return.
  const int m = 2, n = 2;
  auto caller_desc = dad::make_regular(
      std::vector<AxisDist>{AxisDist::block(12, m)});
  auto late_desc = dad::make_regular(
      std::vector<AxisDist>{AxisDist::cyclic(12, n)});
  rt::spawn(m + n, [&](rt::Communicator& world) {
    prmi::DistributedFramework fw(world);
    fw.instantiate("client", iota_ranks(0, m));
    fw.instantiate("server", iota_ranks(m, n));
    auto pkg = mxn::sidl::parse_package(kSidl);
    if (fw.member_of("server")) {
      auto cohort = fw.cohort("server");
      dad::DistArray<double> late(late_desc, cohort.rank());
      auto servant = std::make_shared<prmi::Servant>(pkg.interface("Engine"));
      servant->bind("push", [&](prmi::CalleeContext& ctx,
                                std::vector<Value>& args) -> Value {
        // The parameter arrives as an unfilled slot; choose the layout NOW
        // and pull.
        EXPECT_TRUE(std::holds_alternative<std::monostate>(args[0]));
        auto target =
            core::make_field("late", &late, core::AccessMode::ReadWrite);
        ctx.pull(0, target);
        double local = 0;
        for (double v : late.local()) local += v;
        const double total = ctx.cohort.allreduce(
            local, [](double a, double b) { return a + b; });
        EXPECT_DOUBLE_EQ(total, 66.0);  // sum 0..11
        return {};
      });
      // NOTE: no set_parallel_target for "push" — it is deferred.
      fw.add_provides("server", "engine", servant);
      fw.connect("client", "engine", "server", "engine");
      EXPECT_EQ(fw.serve("server", 1), 1);
      late.for_each_owned([](const Point& p, const double& v) {
        EXPECT_DOUBLE_EQ(v, double(p[0]));
      });
    } else {
      fw.register_uses("client", "engine", pkg.interface("Engine"));
      fw.connect("client", "engine", "server", "engine");
      auto port = fw.get_port("client", "engine");
      auto cohort = fw.cohort("client");
      dad::DistArray<double> mine(caller_desc, cohort.rank());
      mine.fill([](const Point& p) { return double(p[0]); });
      auto binding = core::make_field("f", &mine, core::AccessMode::Read);
      port->call("push", {prmi::ParallelRef{&binding}});
    }
  });
}

TEST(Prmi, OnewayWithDeferredParamRejected) {
  const char* sidl = R"(
    package d { interface I {
      collective oneway void fire(in parallel array<double,1> d);
    } }
  )";
  rt::spawn(2, [&](rt::Communicator& world) {
    prmi::DistributedFramework fw(world);
    fw.instantiate("client", {0});
    fw.instantiate("server", {1});
    auto pkg = mxn::sidl::parse_package(sidl);
    if (fw.member_of("server")) {
      auto servant = std::make_shared<prmi::Servant>(pkg.interface("I"));
      servant->bind("fire",
                    [](prmi::CalleeContext&, std::vector<Value>&) -> Value {
                      return {};
                    });
      fw.add_provides("server", "i", servant);  // no target: deferred
      fw.connect("client", "i", "server", "i");
      EXPECT_EQ(fw.serve("server", -1), 0);
    } else {
      fw.register_uses("client", "i", pkg.interface("I"));
      fw.connect("client", "i", "server", "i");
      auto port = fw.get_port("client", "i");
      auto desc = dad::make_regular(
          std::vector<AxisDist>{AxisDist::block(4, 1)});
      dad::DistArray<double> mine(desc, 0);
      auto binding = core::make_field("f", &mine, core::AccessMode::Read);
      EXPECT_THROW(port->call_oneway("fire", {prmi::ParallelRef{&binding}}),
                   rt::UsageError);
      port->shutdown_provider();
    }
  });
}

// ---------------------------------------------------------------------------
// Framework wiring errors
// ---------------------------------------------------------------------------

TEST(Prmi, InterfaceMismatchRejectedAtConnect) {
  rt::spawn(2, [&](rt::Communicator& world) {
    prmi::DistributedFramework fw(world);
    fw.instantiate("client", {0});
    fw.instantiate("server", {1});
    ServerState state;
    std::unique_ptr<dad::DistArray<double>> target;
    if (fw.member_of("server")) {
      auto cohort = fw.cohort("server");
      auto desc = dad::make_regular(
          std::vector<AxisDist>{AxisDist::block(4, 1)});
      target = std::make_unique<dad::DistArray<double>>(desc, 0);
      fw.add_provides("server", "engine",
                      make_engine_servant(cohort, target.get(), &state));
      fw.connect("client", "engine", "server", "engine");  // provider side ok
    } else {
      auto other = mxn::sidl::parse_package(
          "package other { interface Engine { void f(); } }");
      fw.register_uses("client", "engine", other.interface("Engine"));
      EXPECT_THROW(fw.connect("client", "engine", "server", "engine"),
                   rt::UsageError);
    }
  });
}

TEST(Prmi, UnknownComponentAndPortErrors) {
  rt::spawn(1, [&](rt::Communicator& world) {
    prmi::DistributedFramework fw(world);
    fw.instantiate("a", {0});
    EXPECT_THROW(fw.cohort("nope"), rt::UsageError);
    EXPECT_THROW(fw.instantiate("a", {0}), rt::UsageError);
    EXPECT_THROW(fw.instantiate("b", {}), rt::UsageError);
    EXPECT_THROW(fw.instantiate("c", {5}), rt::UsageError);
    EXPECT_THROW(fw.get_port("a", "x"), rt::UsageError);
    EXPECT_THROW(fw.serve("nope"), rt::UsageError);
  });
}

// Parameterized M x N sweep for collective calls with a parallel argument.
class PrmiShapeSweep : public ::testing::TestWithParam<std::pair<int, int>> {
};

TEST_P(PrmiShapeSweep, ParallelPushAcrossShapes) {
  const auto [m, n] = GetParam();
  auto caller_desc = dad::make_regular(
      std::vector<AxisDist>{AxisDist::block(24, m)});
  auto callee_desc = dad::make_regular(
      std::vector<AxisDist>{AxisDist::block(24, n)});
  run_client_server(
      m, n, 1,
      [&](prmi::RemotePort& port, rt::Communicator& cohort) {
        dad::DistArray<double> mine(caller_desc, cohort.rank());
        mine.fill([](const Point& p) { return 3.0 * p[0] + 1; });
        auto binding = core::make_field("f", &mine, core::AccessMode::Read);
        port.call("push", {prmi::ParallelRef{&binding}});
      },
      callee_desc,
      [](dad::DistArray<double>& target, rt::Communicator&) {
        target.for_each_owned([](const Point& p, const double& v) {
          EXPECT_DOUBLE_EQ(v, 3.0 * p[0] + 1);
        });
      });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PrmiShapeSweep,
    ::testing::Values(std::pair{1, 3}, std::pair{3, 1}, std::pair{2, 4},
                      std::pair{4, 2}, std::pair{3, 3}));
