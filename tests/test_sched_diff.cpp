// Differential tests for the schedule fast paths: every build path
// (Naive with pruning, Indexed, Analytic, and Auto) must produce a schedule
// element-for-element identical — same peers, same canonical region order,
// same element counts — to the retained naive no-prune reference, across a
// randomized sweep of distribution kinds, dimensionalities and cohort
// sizes. Plus global conservation (sum of sends == sum of recvs == global
// volume) and a differential check of the segment-schedule rewrite against
// the per-peer footprint + intersect formulation it replaced.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <random>
#include <thread>

#include "dad/dist_array.hpp"
#include "linear/linearization.hpp"
#include "sched/schedule.hpp"
#include "trace/trace.hpp"

namespace dad = mxn::dad;
namespace lin = mxn::linear;
namespace sched = mxn::sched;
using dad::AxisDist;
using dad::Descriptor;
using dad::DescriptorPtr;
using dad::Index;
using dad::Point;

namespace {

using Rng = std::mt19937;

int rand_int(Rng& rng, int lo, int hi) {  // inclusive
  return std::uniform_int_distribution<int>(lo, hi)(rng);
}

/// Random distribution for one axis of `extent` over `nprocs` grid coords,
/// covering every AxisKind.
AxisDist random_axis(Rng& rng, Index extent, int nprocs) {
  if (nprocs == 1 && rand_int(rng, 0, 1) == 0)
    return AxisDist::collapsed(extent);
  switch (rand_int(rng, 0, 3)) {
    case 0:
      return AxisDist::block(extent, nprocs);
    case 1:
      return AxisDist::cyclic(extent, nprocs);
    case 2:
      return AxisDist::block_cyclic(
          extent, nprocs, rand_int(rng, 1, static_cast<int>(extent) / 2 + 1));
    default: {
      if (rand_int(rng, 0, 1) == 0) {
        // Generalized block: random positive sizes summing to extent.
        std::vector<Index> sizes(static_cast<std::size_t>(nprocs), 1);
        Index rest = extent - nprocs;
        for (int i = 0; i + 1 < nprocs && rest > 0; ++i) {
          const Index take = rand_int(rng, 0, static_cast<int>(rest));
          sizes[static_cast<std::size_t>(i)] += take;
          rest -= take;
        }
        sizes.back() += rest;
        return AxisDist::generalized_block(std::move(sizes));
      }
      // Implicit: arbitrary owner per index.
      std::vector<int> owners(static_cast<std::size_t>(extent));
      for (auto& o : owners) o = rand_int(rng, 0, nprocs - 1);
      return AxisDist::implicit(std::move(owners), nprocs);
    }
  }
}

/// Random factorization of `nranks` into `ndim` per-axis grid sizes.
std::vector<int> random_grid(Rng& rng, int ndim, int nranks) {
  std::vector<int> g(static_cast<std::size_t>(ndim), 1);
  int rest = nranks;
  for (int a = 0; a < ndim - 1; ++a) {
    std::vector<int> divs;
    for (int d = 1; d <= rest; ++d)
      if (rest % d == 0) divs.push_back(d);
    g[static_cast<std::size_t>(a)] =
        divs[static_cast<std::size_t>(rand_int(rng, 0, static_cast<int>(divs.size()) - 1))];
    rest /= g[static_cast<std::size_t>(a)];
  }
  g[static_cast<std::size_t>(ndim - 1)] = rest;
  std::shuffle(g.begin(), g.end(), rng);
  return g;
}

DescriptorPtr random_regular(Rng& rng, int ndim, int nranks,
                             const Point& extents) {
  const auto grid = random_grid(rng, ndim, nranks);
  std::vector<AxisDist> axes;
  for (int a = 0; a < ndim; ++a)
    axes.push_back(
        random_axis(rng, extents[a], grid[static_cast<std::size_t>(a)]));
  return dad::make_regular(std::move(axes));
}

/// Explicit descriptor with the same patch geometry as `reg` but owners
/// permuted — exercises the explicit/indexed path with a guaranteed exact
/// cover.
DescriptorPtr explicit_from(Rng& rng, const Descriptor& reg) {
  std::vector<int> perm(static_cast<std::size_t>(reg.nranks()));
  std::iota(perm.begin(), perm.end(), 0);
  std::shuffle(perm.begin(), perm.end(), rng);
  std::vector<dad::OwnedPatch> patches;
  for (int r = 0; r < reg.nranks(); ++r)
    for (const auto& p : reg.patches_of(r))
      patches.push_back({p, perm[static_cast<std::size_t>(r)]});
  return dad::make_explicit(reg.ndim(), reg.extents(), std::move(patches),
                            reg.nranks());
}

DescriptorPtr random_descriptor(Rng& rng, int ndim, int nranks,
                                const Point& extents) {
  auto reg = random_regular(rng, ndim, nranks, extents);
  if (rand_int(rng, 0, 3) == 0) return explicit_from(rng, *reg);
  return reg;
}

void expect_identical(const sched::RegionSchedule& got,
                      const sched::RegionSchedule& want,
                      const std::string& label) {
  ASSERT_EQ(got.sends.size(), want.sends.size()) << label;
  ASSERT_EQ(got.recvs.size(), want.recvs.size()) << label;
  for (std::size_t k = 0; k < want.sends.size(); ++k) {
    EXPECT_EQ(got.sends[k].peer, want.sends[k].peer) << label << " send " << k;
    EXPECT_EQ(got.sends[k].elements, want.sends[k].elements)
        << label << " send " << k;
    ASSERT_EQ(got.sends[k].regions.size(), want.sends[k].regions.size())
        << label << " send " << k;
    for (std::size_t i = 0; i < want.sends[k].regions.size(); ++i)
      ASSERT_EQ(got.sends[k].regions[i], want.sends[k].regions[i])
          << label << " send " << k << " region " << i;
  }
  for (std::size_t k = 0; k < want.recvs.size(); ++k) {
    EXPECT_EQ(got.recvs[k].peer, want.recvs[k].peer) << label << " recv " << k;
    EXPECT_EQ(got.recvs[k].elements, want.recvs[k].elements)
        << label << " recv " << k;
    ASSERT_EQ(got.recvs[k].regions.size(), want.recvs[k].regions.size())
        << label << " recv " << k;
    for (std::size_t i = 0; i < want.recvs[k].regions.size(); ++i)
      ASSERT_EQ(got.recvs[k].regions[i], want.recvs[k].regions[i])
          << label << " recv " << k << " region " << i;
  }
}

struct Cohorts {
  int m;
  int n;
};
constexpr Cohorts kCohorts[] = {{4, 3}, {8, 2}, {16, 16}};

Point extents_for(Rng& rng, int ndim) {
  // Small enough that the naive reference stays cheap, large enough to
  // produce multi-interval cyclic/block-cyclic patch sets.
  Point e{};
  for (int a = 0; a < ndim; ++a)
    e[a] = rand_int(rng, 17, ndim == 3 ? 24 : 40);
  return e;
}

}  // namespace

TEST(ScheduleDiff, AllPathsMatchNaiveReferenceAcrossRandomSweep) {
  Rng rng(20260806);
  for (const auto& co : kCohorts) {
    for (int ndim = 1; ndim <= 3; ++ndim) {
      for (int trial = 0; trial < 3; ++trial) {
        const Point extents = extents_for(rng, ndim);
        const auto src = random_descriptor(rng, ndim, co.m, extents);
        const auto dst = random_descriptor(rng, ndim, co.n, extents);
        const bool regular = !src->is_explicit() && !dst->is_explicit();
        const std::string tag = src->to_string() + " -> " + dst->to_string();

        // Every rank of both cohorts, both roles at once where they overlap.
        const int rmax = std::max(co.m, co.n);
        for (int r = 0; r < rmax; ++r) {
          const int ms = r < co.m ? r : -1;
          const int md = r < co.n ? r : -1;
          const auto ref =
              sched::build_region_schedule(*src, *dst, ms, md, false);
          expect_identical(sched::build_region_schedule(
                               *src, *dst, ms, md, sched::BuildPath::Naive),
                           ref, tag + " [naive+prune r" + std::to_string(r));
          expect_identical(sched::build_region_schedule(
                               *src, *dst, ms, md, sched::BuildPath::Indexed),
                           ref, tag + " [indexed r" + std::to_string(r));
          expect_identical(
              sched::build_region_schedule(*src, *dst, ms, md,
                                           sched::BuildPath::Auto),
              ref, tag + " [auto r" + std::to_string(r));
          if (regular)
            expect_identical(
                sched::build_region_schedule(*src, *dst, ms, md,
                                             sched::BuildPath::Analytic),
                ref, tag + " [analytic r" + std::to_string(r));
        }
      }
    }
  }
}

TEST(ScheduleDiff, GlobalConservationEveryDistributionKind) {
  Rng rng(987654321);
  for (const auto& co : kCohorts) {
    for (int ndim = 1; ndim <= 3; ++ndim) {
      const Point extents = extents_for(rng, ndim);
      const auto src = random_descriptor(rng, ndim, co.m, extents);
      const auto dst = random_descriptor(rng, ndim, co.n, extents);
      const Index volume = src->total_volume();
      ASSERT_EQ(volume, dst->total_volume());

      Index sent = 0, received = 0;
      for (int s = 0; s < co.m; ++s)
        sent += sched::build_region_schedule(*src, *dst, s, -1).send_elements();
      for (int d = 0; d < co.n; ++d)
        received +=
            sched::build_region_schedule(*src, *dst, -1, d).recv_elements();
      EXPECT_EQ(sent, volume) << src->to_string() << " -> " << dst->to_string();
      EXPECT_EQ(received, volume)
          << src->to_string() << " -> " << dst->to_string();
    }
  }
}

TEST(ScheduleDiff, SegmentScheduleMatchesPerPeerIntersection) {
  Rng rng(424242);
  for (int trial = 0; trial < 6; ++trial) {
    const int ndim = rand_int(rng, 1, 3);
    const Point extents = extents_for(rng, ndim);
    const auto src = random_descriptor(rng, ndim, 6, extents);
    const auto dst = random_descriptor(rng, ndim, 4, extents);
    const auto src_lin = rand_int(rng, 0, 1) == 0
                             ? lin::Linearization::row_major(ndim, extents)
                             : lin::Linearization::column_major(ndim, extents);
    const auto dst_lin = rand_int(rng, 0, 1) == 0
                             ? lin::Linearization::row_major(ndim, extents)
                             : lin::Linearization::column_major(ndim, extents);

    for (int r = 0; r < 6; ++r) {
      const int ms = r;
      const int md = r < 4 ? r : -1;
      const auto got =
          sched::build_segment_schedule(*src, src_lin, *dst, dst_lin, ms, md);

      // Reference: the per-peer footprint + intersect formulation.
      sched::SegmentSchedule want;
      const auto mine_s = lin::footprint(*src, ms, src_lin);
      for (int d = 0; d < dst->nranks(); ++d) {
        auto common = lin::intersect(mine_s, lin::footprint(*dst, d, dst_lin));
        if (common.empty()) continue;
        sched::PeerSegments ps;
        ps.peer = d;
        ps.elements = lin::total_length(common);
        ps.segs = std::move(common);
        want.sends.push_back(std::move(ps));
      }
      if (md >= 0) {
        const auto mine_d = lin::footprint(*dst, md, dst_lin);
        for (int s = 0; s < src->nranks(); ++s) {
          auto common =
              lin::intersect(lin::footprint(*src, s, src_lin), mine_d);
          if (common.empty()) continue;
          sched::PeerSegments ps;
          ps.peer = s;
          ps.elements = lin::total_length(common);
          ps.segs = std::move(common);
          want.recvs.push_back(std::move(ps));
        }
      }

      ASSERT_EQ(got.sends.size(), want.sends.size());
      ASSERT_EQ(got.recvs.size(), want.recvs.size());
      for (std::size_t k = 0; k < want.sends.size(); ++k) {
        EXPECT_EQ(got.sends[k].peer, want.sends[k].peer);
        EXPECT_EQ(got.sends[k].elements, want.sends[k].elements);
        EXPECT_EQ(got.sends[k].segs, want.sends[k].segs);
      }
      for (std::size_t k = 0; k < want.recvs.size(); ++k) {
        EXPECT_EQ(got.recvs[k].peer, want.recvs[k].peer);
        EXPECT_EQ(got.recvs[k].elements, want.recvs[k].elements);
        EXPECT_EQ(got.recvs[k].segs, want.recvs[k].segs);
      }
    }
  }
}

TEST(ScheduleDiff, AnalyticPathRejectsExplicitTemplates) {
  Rng rng(7);
  auto reg = random_regular(rng, 2, 4, Point{12, 12, 0, 0});
  auto exp = explicit_from(rng, *reg);
  EXPECT_THROW(sched::build_region_schedule(*exp, *reg, 0, 0,
                                            sched::BuildPath::Analytic),
               mxn::rt::UsageError);
  EXPECT_THROW(sched::build_region_schedule(*reg, *exp, 0, 0,
                                            sched::BuildPath::Analytic),
               mxn::rt::UsageError);
}

TEST(ScheduleDiff, FastPathCountersAdvance) {
  auto a = dad::make_regular(std::vector<AxisDist>{AxisDist::cyclic(64, 4)});
  auto b = dad::make_regular(std::vector<AxisDist>{AxisDist::block(64, 3)});

  const auto fast0 = mxn::trace::counter("sched.fastpath.hits").value();
  (void)sched::build_region_schedule(*a, *b, 0, 0, sched::BuildPath::Analytic);
  EXPECT_GT(mxn::trace::counter("sched.fastpath.hits").value(), fast0);

  const auto idx0 = mxn::trace::counter("sched.index.hits").value();
  const auto builds0 = mxn::trace::counter("sched.index.builds").value();
  (void)sched::build_region_schedule(*a, *b, 0, 0, sched::BuildPath::Indexed);
  EXPECT_GT(mxn::trace::counter("sched.index.hits").value(), idx0);
  EXPECT_GT(mxn::trace::counter("sched.index.builds").value(), builds0);
  // The spatial index is memoized per descriptor: a second indexed build
  // reuses it.
  const auto builds1 = mxn::trace::counter("sched.index.builds").value();
  (void)sched::build_region_schedule(*a, *b, 0, 0, sched::BuildPath::Indexed);
  EXPECT_EQ(mxn::trace::counter("sched.index.builds").value(), builds1);
}

TEST(ScheduleDiff, FootprintCacheHitsOnRepeatedSegmentBuilds) {
  auto src = dad::make_regular(std::vector<AxisDist>{AxisDist::cyclic(96, 6)});
  auto dst = dad::make_regular(std::vector<AxisDist>{AxisDist::block(96, 4)});
  const auto l = lin::Linearization::row_major(1, Point{96, 0, 0, 0});

  lin::footprint_cache_clear();
  (void)sched::build_segment_schedule(*src, l, *dst, l, 0, 0);
  const auto first = lin::footprint_cache_stats();
  EXPECT_GT(first.misses, 0u);
  (void)sched::build_segment_schedule(*src, l, *dst, l, 1, 1);
  const auto second = lin::footprint_cache_stats();
  // The first build's ownership maps already cached every rank's footprint
  // on both sides, so the second rank's build is served entirely from cache.
  EXPECT_GT(second.hits, first.hits);
  EXPECT_EQ(second.misses, first.misses);
}

// ---------------------------------------------------------------------------
// Delta schedules (elastic rescaling, docs/RESCALING.md)
// ---------------------------------------------------------------------------

namespace {

/// Channel-rank overlap patterns between a cohort of `m` and a cohort of
/// `n`: the delta builder's local/wire split depends only on which slots
/// map to the same channel rank, so these cover pure-wire (disjoint),
/// full-survival (identical), and mixed retire/survive/admit layouts.
std::pair<std::vector<int>, std::vector<int>> overlap_lists(int pattern,
                                                            int m, int n) {
  std::vector<int> from(static_cast<std::size_t>(m));
  std::vector<int> to(static_cast<std::size_t>(n));
  switch (pattern) {
    case 0:  // disjoint: every element moves on the wire
      std::iota(from.begin(), from.end(), 0);
      std::iota(to.begin(), to.end(), m);
      break;
    case 1:  // identical prefix: maximal same-rank overlap
      std::iota(from.begin(), from.end(), 0);
      std::iota(to.begin(), to.end(), 0);
      break;
    default:  // staggered: retire the first half, admit at the tail
      std::iota(from.begin(), from.end(), 0);
      std::iota(to.begin(), to.end(), m / 2);
      break;
  }
  return {std::move(from), std::move(to)};
}

double global_value(const Point& p) {
  return 13.0 * p[0] + 3.0 * p[1] + p[2];
}

}  // namespace

TEST(DeltaSchedule, SplitsFullScheduleExactlyIntoLocalAndWire) {
  // For every participant the delta must partition the full redistribution
  // schedule: wire traffic plus same-channel-rank local regions account for
  // every element, and no wire pair connects a rank to itself.
  Rng rng(20260808);
  for (const auto& co : kCohorts) {
    for (int pattern = 0; pattern < 3; ++pattern) {
      const auto [from_ranks, to_ranks] =
          overlap_lists(pattern, co.m, co.n);
      for (int ndim = 1; ndim <= 3; ++ndim) {
        const Point extents = extents_for(rng, ndim);
        const auto from = random_descriptor(rng, ndim, co.m, extents);
        const auto to = random_descriptor(rng, ndim, co.n, extents);

        Index moved_out = 0, moved_in = 0, local_total = 0;
        const int channel_size = 64;
        for (int ch = 0; ch < channel_size; ++ch) {
          int my_from = -1, my_to = -1;
          for (std::size_t i = 0; i < from_ranks.size(); ++i)
            if (from_ranks[i] == ch) my_from = static_cast<int>(i);
          for (std::size_t i = 0; i < to_ranks.size(); ++i)
            if (to_ranks[i] == ch) my_to = static_cast<int>(i);
          if (my_from < 0 && my_to < 0) continue;

          const auto delta = sched::build_delta_schedule(
              *from, *to, my_from, my_to, from_ranks, to_ranks);
          const auto full = sched::build_region_schedule(
              *from, *to, my_from, my_to);

          // Partition: wire + local == full, on both roles.
          EXPECT_EQ(delta.wire_send_elements() + delta.local_elements,
                    full.send_elements())
              << "pattern " << pattern << " rank " << ch;
          EXPECT_EQ(delta.wire_recv_elements() + delta.local_elements,
                    full.recv_elements())
              << "pattern " << pattern << " rank " << ch;

          // No self-pairs on the wire.
          for (const auto& pr : delta.wire.sends)
            EXPECT_NE(to_ranks.at(static_cast<std::size_t>(pr.peer)), ch);
          for (const auto& pr : delta.wire.recvs)
            EXPECT_NE(from_ranks.at(static_cast<std::size_t>(pr.peer)), ch);

          // Local regions really are owned on both sides by this rank.
          Index local_vol = 0;
          for (const auto& r : delta.local) local_vol += r.volume();
          EXPECT_EQ(local_vol, delta.local_elements);

          moved_out += delta.wire_send_elements();
          moved_in += delta.wire_recv_elements();
          local_total += delta.local_elements;
        }
        // Conservation across the channel: everything sent is received,
        // and wire + local covers the global volume exactly once.
        EXPECT_EQ(moved_out, moved_in);
        EXPECT_EQ(moved_out + local_total, from->total_volume())
            << "pattern " << pattern << ": " << from->to_string() << " -> "
            << to->to_string();
      }
    }
  }
}

TEST(DeltaSchedule, SimulatedMigrationMatchesDirectRedistribution) {
  // The end-to-end differential: materialize the old decomposition, apply
  // the delta (local extract→inject moves plus simulated wire transfers),
  // and require the new decomposition to be element-for-element identical
  // to building the new state directly. Runs across random distribution
  // kinds and all three overlap patterns.
  Rng rng(77002026);
  for (int trial = 0; trial < 12; ++trial) {
    const int pattern = trial % 3;
    const int m = rand_int(rng, 2, 6), n = rand_int(rng, 2, 6);
    const auto [from_ranks, to_ranks] = overlap_lists(pattern, m, n);
    const int ndim = rand_int(rng, 1, 3);
    const Point extents = extents_for(rng, ndim);
    const auto from = random_descriptor(rng, ndim, m, extents);
    const auto to = random_descriptor(rng, ndim, n, extents);

    // Old state: every from-rank's array filled from the global function.
    std::vector<dad::DistArray<double>> old_arrays;
    old_arrays.reserve(static_cast<std::size_t>(m));
    for (int r = 0; r < m; ++r) {
      old_arrays.emplace_back(from, r);
      old_arrays.back().fill(global_value);
    }
    std::vector<dad::DistArray<double>> new_arrays;
    new_arrays.reserve(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) new_arrays.emplace_back(to, r);

    // Apply each participant's delta. Wire recvs pull straight from the
    // sending rank's array — canonical region nesting guarantees the
    // receiver's region list equals the sender's for the pair.
    for (int d = 0; d < n; ++d) {
      const int ch = to_ranks[static_cast<std::size_t>(d)];
      int my_from = -1;
      for (std::size_t i = 0; i < from_ranks.size(); ++i)
        if (from_ranks[i] == ch) my_from = static_cast<int>(i);
      const auto delta = sched::build_delta_schedule(*from, *to, my_from, d,
                                                     from_ranks, to_ranks);
      for (const auto& region : delta.local) {
        const auto buf =
            old_arrays[static_cast<std::size_t>(my_from)].extract(region);
        new_arrays[static_cast<std::size_t>(d)].inject(region, buf.data());
      }
      for (const auto& pr : delta.wire.recvs) {
        auto& src_arr = old_arrays[static_cast<std::size_t>(pr.peer)];
        for (const auto& region : pr.regions) {
          const auto buf = src_arr.extract(region);
          new_arrays[static_cast<std::size_t>(d)].inject(region, buf.data());
        }
      }
    }

    // Every new rank must now hold exactly the directly-built state.
    for (int d = 0; d < n; ++d) {
      new_arrays[static_cast<std::size_t>(d)].for_each_owned(
          [&](const Point& p, const double& v) {
            ASSERT_DOUBLE_EQ(v, global_value(p))
                << "trial " << trial << " rank " << d;
          });
    }
  }
}

TEST(DeltaSchedule, ValidatesChannelRankLists) {
  auto from = dad::make_regular(std::vector<AxisDist>{AxisDist::block(24, 2)});
  auto to = dad::make_regular(std::vector<AxisDist>{AxisDist::cyclic(24, 3)});
  const std::vector<int> from_ranks{0, 1};
  const std::vector<int> to_ranks{1, 2, 3};
  // Wrong list lengths.
  EXPECT_THROW(
      sched::build_delta_schedule(*from, *to, 0, -1, {0}, to_ranks),
      mxn::rt::UsageError);
  EXPECT_THROW(
      sched::build_delta_schedule(*from, *to, 0, -1, from_ranks, {1, 2}),
      mxn::rt::UsageError);
  // Inconsistent slots: claims from-slot 1 (channel 1) and to-slot 2
  // (channel 3) simultaneously.
  EXPECT_THROW(
      sched::build_delta_schedule(*from, *to, 1, 2, from_ranks, to_ranks),
      mxn::rt::UsageError);
  // Consistent: from-slot 1 and to-slot 0 both map to channel rank 1.
  const auto d =
      sched::build_delta_schedule(*from, *to, 1, 0, from_ranks, to_ranks);
  EXPECT_EQ(d.wire_send_elements() + d.wire_recv_elements() +
                2 * d.local_elements,
            d.wire.send_elements() + d.wire.recv_elements() +
                2 * d.local_elements);
}

// ---------------------------------------------------------------------------
// Footprint/ownership cache accounting (ISSUE 9 satellite bugfixes)
// ---------------------------------------------------------------------------

TEST(FootprintCache, ClearResetsTallies) {
  auto d = dad::make_regular(std::vector<AxisDist>{AxisDist::block(48, 4)});
  const auto l = lin::Linearization::row_major(1, Point{48, 0, 0, 0});

  lin::footprint_cache_clear();
  (void)lin::footprint_cached(*d, 0, l);
  (void)lin::footprint_cached(*d, 0, l);
  (void)lin::ownership_map_cached(*d, l);
  auto s = lin::footprint_cache_stats();
  EXPECT_GT(s.hits + s.misses + s.ownership_hits + s.ownership_misses, 0u);

  lin::footprint_cache_clear();
  s = lin::footprint_cache_stats();
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, 0u);
  EXPECT_EQ(s.ownership_hits, 0u);
  EXPECT_EQ(s.ownership_misses, 0u);
  EXPECT_EQ(s.races, 0u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.bytes, 0u);
}

TEST(FootprintCache, OwnershipBilledToItsOwnCounters) {
  auto d = dad::make_regular(std::vector<AxisDist>{AxisDist::cyclic(96, 6)});
  const auto l = lin::Linearization::row_major(1, Point{96, 0, 0, 0});

  lin::footprint_cache_clear();
  // A cold ownership-map build is ONE ownership miss — the per-rank
  // footprint lookups its build path runs internally are a build detail
  // and must not inflate the footprint tallies.
  (void)lin::ownership_map_cached(*d, l);
  auto s = lin::footprint_cache_stats();
  EXPECT_EQ(s.ownership_misses, 1u);
  EXPECT_EQ(s.ownership_hits, 0u);
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, 0u);

  // The build did seed the per-rank footprint entries, though: a real
  // application footprint lookup now hits, billed to the footprint tally.
  (void)lin::footprint_cached(*d, 3, l);
  s = lin::footprint_cache_stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 0u);

  // And a repeat ownership lookup is an ownership hit, not a footprint one.
  (void)lin::ownership_map_cached(*d, l);
  s = lin::footprint_cache_stats();
  EXPECT_EQ(s.ownership_hits, 1u);
  EXPECT_EQ(s.ownership_misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  lin::footprint_cache_clear();
}

TEST(FootprintCache, ConcurrentColdLookupsCountOneMissRestRacesOrHits) {
  auto d = dad::make_regular(std::vector<AxisDist>{AxisDist::block(256, 8)});
  const auto l = lin::Linearization::row_major(1, Point{256, 0, 0, 0});

  lin::footprint_cache_clear();
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> ready{0};
  std::vector<lin::SegmentsPtr> out(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) {}  // start line: maximize the race
      out[t] = lin::footprint_cached(*d, 5, l);
    });
  }
  for (auto& th : threads) th.join();

  // Everyone got the same immutable footprint...
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(*out[t], *out[0]);
  // ...and the tallies stay exact: exactly one thread's build won (the
  // miss); every other thread either hit or lost the insert race — a racer
  // performed a redundant build but neither hit nor missed the cache.
  const auto s = lin::footprint_cache_stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits + s.races, static_cast<std::size_t>(kThreads) - 1);
  lin::footprint_cache_clear();
}

TEST(FootprintCache, BudgetEvictsButHandlesStayValid) {
  auto d = dad::make_regular(std::vector<AxisDist>{AxisDist::block(512, 32)});
  const auto l = lin::Linearization::row_major(1, Point{512, 0, 0, 0});

  lin::footprint_cache_clear();
  lin::FootprintCacheConfig cfg;
  cfg.shards = 2;
  cfg.max_entries = 8;
  lin::footprint_cache_configure(cfg);

  std::vector<lin::SegmentsPtr> held;
  for (int r = 0; r < 32; ++r) held.push_back(lin::footprint_cached(*d, r, l));
  auto s = lin::footprint_cache_stats();
  EXPECT_GT(s.evictions, 0u);
  EXPECT_LE(s.entries, cfg.max_entries);

  // Eviction drops the cache's reference only; every handle stays usable.
  for (int r = 0; r < 32; ++r) {
    ASSERT_TRUE(held[r]);
    EXPECT_EQ(lin::total_length(*held[r]), 512 / 32);
  }

  lin::footprint_cache_configure(lin::FootprintCacheConfig{});
  lin::footprint_cache_clear();
}
