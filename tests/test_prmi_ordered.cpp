// Tests for totally-ordered PRMI serving (src/prmi serve_ordered): under
// concurrent multi-client traffic every callee cohort rank must service the
// same invocation sequence, so SPMD handlers that communicate in-cohort
// (allreduce etc.) pair their collectives correctly — the "parallel
// consistency" concern of §2.4.

#include <gtest/gtest.h>

#include <numeric>

#include "prmi/distributed_framework.hpp"
#include "rt/runtime.hpp"
#include "sidl/parser.hpp"

namespace prmi = mxn::prmi;
namespace rt = mxn::rt;
using prmi::Value;

namespace {

const char* kSidl = R"(
  package ord { interface S {
    collective double echo_sum(in double x);
    independent int poke(in int x);
  } }
)";

/// Two single-rank clients hammer a 2-rank server concurrently; the handler
/// allreduces its argument over the callee cohort. If the two cohort ranks
/// ever service different calls simultaneously, the allreduce pairs
/// mismatched arguments and a client sees a sum != 2 * its argument.
void run_contention(bool ordered, int calls_per_client) {
  rt::spawn(4, [&](rt::Communicator& world) {
    prmi::DistributedFramework fw(world);
    fw.instantiate("a", {0});
    fw.instantiate("b", {1});
    fw.instantiate("server", {2, 3});
    auto pkg = mxn::sidl::parse_package(kSidl);
    if (fw.member_of("server")) {
      auto servant = std::make_shared<prmi::Servant>(pkg.interface("S"));
      servant->bind("echo_sum", [](prmi::CalleeContext& ctx,
                                   std::vector<Value>& args) -> Value {
        return ctx.cohort.allreduce(
            std::get<double>(args[0]),
            [](double a, double b) { return a + b; });
      });
      fw.add_provides("server", "s", servant);
      fw.connect("a", "s", "server", "s");
      fw.connect("b", "s", "server", "s");
      const int total = 2 * calls_per_client;
      if (ordered)
        EXPECT_EQ(fw.serve_ordered("server", total), total);
      else
        EXPECT_EQ(fw.serve("server", total), total);
    } else {
      const std::string me = world.rank() == 0 ? "a" : "b";
      fw.register_uses(me, "s", pkg.interface("S"));
      if (me == "a") {
        fw.connect("a", "s", "server", "s");
        fw.connect("b", "s", "server", "s");
      } else {
        fw.connect("a", "s", "server", "s");
        fw.connect("b", "s", "server", "s");
      }
      auto port = fw.get_port(me, "s");
      const double base = world.rank() == 0 ? 10.0 : 1000.0;
      for (int i = 0; i < calls_per_client; ++i) {
        auto r = port->call("echo_sum", {base + i});
        EXPECT_DOUBLE_EQ(std::get<double>(r.ret), 2 * (base + i))
            << "cohort ranks serviced mismatched invocations";
      }
    }
  });
}

}  // namespace

TEST(PrmiOrdered, ConsistentUnderTwoClientContention) {
  run_contention(/*ordered=*/true, 25);
}

TEST(PrmiOrdered, SingleClientBehavesLikeSerialServe) {
  rt::spawn(3, [&](rt::Communicator& world) {
    prmi::DistributedFramework fw(world);
    fw.instantiate("c", {0});
    fw.instantiate("server", {1, 2});
    auto pkg = mxn::sidl::parse_package(kSidl);
    if (fw.member_of("server")) {
      auto servant = std::make_shared<prmi::Servant>(pkg.interface("S"));
      servant->bind("echo_sum", [](prmi::CalleeContext& ctx,
                                   std::vector<Value>& args) -> Value {
        return ctx.cohort.allreduce(
            std::get<double>(args[0]),
            [](double a, double b) { return a + b; });
      });
      fw.add_provides("server", "s", servant);
      fw.connect("c", "s", "server", "s");
      // Serve-until-shutdown in ordered mode.
      EXPECT_EQ(fw.serve_ordered("server", -1), 3);
    } else {
      fw.register_uses("c", "s", pkg.interface("S"));
      fw.connect("c", "s", "server", "s");
      auto port = fw.get_port("c", "s");
      for (int i = 1; i <= 3; ++i) {
        auto r = port->call("echo_sum", {double(i)});
        EXPECT_DOUBLE_EQ(std::get<double>(r.ret), 2.0 * i);
      }
      port->shutdown_provider();
    }
  });
}

TEST(PrmiOrdered, IndependentCallsRejected) {
  // The server's serve_ordered throws on the independent invocation; the
  // blocked client is unwound by the abort path and spawn() rethrows the
  // server's error.
  EXPECT_THROW(
      rt::spawn(2,
                [&](rt::Communicator& world) {
                  prmi::DistributedFramework fw(world);
                  fw.instantiate("c", {0});
                  fw.instantiate("server", {1});
                  auto pkg = mxn::sidl::parse_package(kSidl);
                  if (fw.member_of("server")) {
                    auto servant = std::make_shared<prmi::Servant>(
                        pkg.interface("S"));
                    servant->bind("poke",
                                  [](prmi::CalleeContext&,
                                     std::vector<Value>& a) -> Value {
                                    return std::get<std::int32_t>(a[0]);
                                  });
                    fw.add_provides("server", "s", servant);
                    fw.connect("c", "s", "server", "s");
                    fw.serve_ordered("server", 1);
                  } else {
                    fw.register_uses("c", "s", pkg.interface("S"));
                    fw.connect("c", "s", "server", "s");
                    auto port = fw.get_port("c", "s");
                    (void)port->call_independent("poke", {std::int32_t(1)});
                  }
                }),
      rt::UsageError);
}

TEST(PrmiOrdered, LayoutRequestsServicedTransparently) {
  const char* sidl = R"(
    package ord2 { interface P {
      collective void push(in parallel array<double,1> d);
    } }
  )";
  auto caller_desc = mxn::dad::make_regular(
      std::vector<mxn::dad::AxisDist>{mxn::dad::AxisDist::block(8, 1)});
  auto callee_desc = mxn::dad::make_regular(
      std::vector<mxn::dad::AxisDist>{mxn::dad::AxisDist::block(8, 2)});
  rt::spawn(3, [&](rt::Communicator& world) {
    prmi::DistributedFramework fw(world);
    fw.instantiate("c", {0});
    fw.instantiate("server", {1, 2});
    auto pkg = mxn::sidl::parse_package(sidl);
    if (fw.member_of("server")) {
      auto cohort = fw.cohort("server");
      mxn::dad::DistArray<double> target(callee_desc, cohort.rank());
      auto servant = std::make_shared<prmi::Servant>(pkg.interface("P"));
      servant->bind("push",
                    [](prmi::CalleeContext&, std::vector<Value>&) -> Value {
                      return {};
                    });
      servant->set_parallel_target(
          "push", "d",
          mxn::core::make_field("d", &target, mxn::core::AccessMode::ReadWrite));
      fw.add_provides("server", "s", servant);
      fw.connect("c", "s", "server", "s");
      EXPECT_EQ(fw.serve_ordered("server", 1), 1);
      target.for_each_owned([](const mxn::dad::Point& p, const double& v) {
        EXPECT_DOUBLE_EQ(v, 3.0 * p[0]);
      });
    } else {
      fw.register_uses("c", "s", pkg.interface("P"));
      fw.connect("c", "s", "server", "s");
      auto port = fw.get_port("c", "s");
      mxn::dad::DistArray<double> mine(caller_desc, 0);
      mine.fill([](const mxn::dad::Point& p) { return 3.0 * p[0]; });
      auto binding =
          mxn::core::make_field("d", &mine, mxn::core::AccessMode::Read);
      port->call("push", {prmi::ParallelRef{&binding}});
    }
  });
}
