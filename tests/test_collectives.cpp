// Correctness + cost sweep for the log-depth collective set: binomial-tree
// bcast/gather/reduce, dissemination barrier, recursive-doubling
// allgather/allreduce. Covers non-zero roots, size-1 and non-power-of-two
// communicators, split sub-communicators, exact counter-asserted message
// counts (the acceptance criterion: allreduce at n = 16 is 4 rounds /
// 16*4 messages), and tag-reuse alignment of back-to-back collectives.

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <numeric>
#include <thread>
#include <vector>

#include "rt/runtime.hpp"

namespace rt = mxn::rt;

namespace {

/// Exact comm-wide message count of one collective at size n.
///
/// Barriers cannot bracket the measurement (their own messages pollute the
/// delta, and a fast rank races past a barrier before rank 0 snapshots), so
/// ranks rendezvous on shared atomics instead: every rank has issued ALL of
/// its sends before it increments `done` (sends are counted at send time,
/// inside the collective call), so once done == n the second snapshot
/// brackets exactly the measured collective's traffic. The per-comm stats
/// counters are shared by every rank, so rank 0's delta sees all sends.
std::uint64_t measured_messages(
    int n, const std::function<void(rt::Communicator&)>& coll) {
  std::atomic<int> ready{0};
  std::atomic<int> done{0};
  std::atomic<bool> go{false};
  rt::StatsSnapshot before{};
  std::uint64_t count = 0;
  rt::spawn(n, [&](rt::Communicator& comm) {
    ++ready;
    while (ready.load() < n) std::this_thread::yield();
    if (comm.rank() == 0) {
      before = comm.stats();
      go.store(true);
    }
    while (!go.load()) std::this_thread::yield();
    coll(comm);
    ++done;
    if (comm.rank() == 0) {
      while (done.load() < n) std::this_thread::yield();
      count = (comm.stats() - before).messages;
    }
  });
  return count;
}

}  // namespace

// ---------------------------------------------------------------------------
// Exact message counts (StatsSnapshot deltas)
// ---------------------------------------------------------------------------

TEST(CollectiveCounts, BarrierIsDissemination) {
  // n * ceil(log2 n): one send per rank per round.
  EXPECT_EQ(measured_messages(8, [](rt::Communicator& c) { c.barrier(); }),
            8u * 3u);
  EXPECT_EQ(measured_messages(6, [](rt::Communicator& c) { c.barrier(); }),
            6u * 3u);
  EXPECT_EQ(measured_messages(1, [](rt::Communicator& c) { c.barrier(); }),
            0u);
}

TEST(CollectiveCounts, BcastBinomialIsNMinusOne) {
  // Tree changes the depth, not the count: still one message per non-root.
  EXPECT_EQ(measured_messages(
                8, [](rt::Communicator& c) { c.bcast_value<int>(7, 3); }),
            7u);
  EXPECT_EQ(measured_messages(
                5, [](rt::Communicator& c) { c.bcast_value<int>(7, 4); }),
            4u);
}

TEST(CollectiveCounts, GatherBinomialIsNMinusOne) {
  EXPECT_EQ(measured_messages(8,
                              [](rt::Communicator& c) {
                                (void)c.gather(rt::to_bytes(c.rank()), 5);
                              }),
            7u);
}

TEST(CollectiveCounts, ReduceBinomialIsNMinusOne) {
  EXPECT_EQ(measured_messages(8,
                              [](rt::Communicator& c) {
                                const double v[2] = {1.0 * c.rank(), 1.0};
                                (void)c.reduce(std::span<const double>(v),
                                               std::plus<>(), 2);
                              }),
            7u);
}

TEST(CollectiveCounts, AllgatherRecursiveDoublingAndFallback) {
  // Power of two: recursive doubling, n * log2 n.
  EXPECT_EQ(measured_messages(8,
                              [](rt::Communicator& c) {
                                (void)c.allgather_value<int>(c.rank());
                              }),
            8u * 3u);
  // Non-power-of-two: binomial gather + bundle bcast, 2(n-1).
  EXPECT_EQ(measured_messages(6,
                              [](rt::Communicator& c) {
                                (void)c.allgather_value<int>(c.rank());
                              }),
            2u * 5u);
}

TEST(CollectiveCounts, AllreduceFourRoundsAtSixteen) {
  // The acceptance criterion: at n = 16 recursive doubling completes in
  // ceil(log2 16) = 4 rounds, every rank sending once per round.
  static_assert(rt::ceil_log2(16) == 4);
  const auto msgs = measured_messages(16, [](rt::Communicator& c) {
    (void)c.allreduce(c.rank() + 1, std::plus<>());
  });
  EXPECT_EQ(msgs, 16u * static_cast<unsigned>(rt::ceil_log2(16)));
  EXPECT_EQ(msgs, 64u);
}

TEST(CollectiveCounts, AllreduceNonPow2FoldsIn) {
  // n = 6: 2 fold-in + 4 * log2(4) core + 2 fold-out.
  EXPECT_EQ(measured_messages(6,
                              [](rt::Communicator& c) {
                                (void)c.allreduce(c.rank(), std::plus<>());
                              }),
            2u + 4u * 2u + 2u);
}

TEST(CollectiveCounts, AlltoallIsNSquared) {
  EXPECT_EQ(measured_messages(4,
                              [](rt::Communicator& c) {
                                std::vector<rt::Buffer> out(4);
                                for (int i = 0; i < 4; ++i)
                                  out[i] = rt::Buffer(rt::to_bytes(i));
                                (void)c.alltoall(std::move(out));
                              }),
            16u);  // includes the n self-deliveries
}

// ---------------------------------------------------------------------------
// Correctness: roots, sizes, payload shapes
// ---------------------------------------------------------------------------

TEST(CollectiveCorrectness, BcastEveryRootNonPow2) {
  rt::spawn(7, [](rt::Communicator& comm) {
    for (int root = 0; root < 7; ++root) {
      std::vector<int> v;
      if (comm.rank() == root) {
        v.resize(static_cast<std::size_t>(root) + 3);
        std::iota(v.begin(), v.end(), root * 100);
      }
      auto got = comm.bcast_vector(v, root);
      ASSERT_EQ(got.size(), static_cast<std::size_t>(root) + 3);
      for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], root * 100 + static_cast<int>(i));
    }
  });
}

TEST(CollectiveCorrectness, GatherVariableSizesEveryRoot) {
  // Exercises the bundle framing: entry sizes differ per rank, and interior
  // tree nodes differ per root because the tree is root-rotated.
  rt::spawn(6, [](rt::Communicator& comm) {
    for (int root = 0; root < 6; ++root) {
      rt::PackBuffer b;
      for (int k = 0; k <= comm.rank(); ++k) b.pack(10 * comm.rank() + k);
      auto parts = comm.gather(std::move(b).take_buffer(), root);
      if (comm.rank() != root) {
        EXPECT_TRUE(parts.empty());
        continue;
      }
      ASSERT_EQ(parts.size(), 6u);
      for (int src = 0; src < 6; ++src) {
        rt::UnpackBuffer u(parts[src]);
        for (int k = 0; k <= src; ++k) EXPECT_EQ(u.unpack<int>(), 10 * src + k);
        EXPECT_TRUE(u.empty());
      }
    }
  });
}

class CollectiveSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveSizeSweep, AllgatherEveryRankEverything) {
  const int n = GetParam();
  rt::spawn(n, [n](rt::Communicator& comm) {
    auto all = comm.allgather_value<int>(comm.rank() * 3 + 1);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) EXPECT_EQ(all[i], i * 3 + 1);
  });
}

TEST_P(CollectiveSizeSweep, VectorAllreduceSumAndMax) {
  const int n = GetParam();
  rt::spawn(n, [n](rt::Communicator& comm) {
    const double mine[3] = {1.0 * comm.rank(), 1.0, -1.0 * comm.rank()};
    auto sums = comm.allreduce(std::span<const double>(mine), std::plus<>());
    ASSERT_EQ(sums.size(), 3u);
    const double tri = n * (n - 1) / 2.0;
    EXPECT_DOUBLE_EQ(sums[0], tri);
    EXPECT_DOUBLE_EQ(sums[1], 1.0 * n);
    EXPECT_DOUBLE_EQ(sums[2], -tri);

    const int mx = comm.allreduce(
        comm.rank() == n / 2 ? 1000 : comm.rank(),
        [](int a, int b) { return std::max(a, b); });
    EXPECT_EQ(mx, 1000);
  });
}

TEST_P(CollectiveSizeSweep, VectorReduceAtLastRoot) {
  const int n = GetParam();
  rt::spawn(n, [n](rt::Communicator& comm) {
    const int root = n - 1;
    const std::int64_t mine[2] = {comm.rank() + 1, 1};
    auto out =
        comm.reduce(std::span<const std::int64_t>(mine), std::plus<>(), root);
    if (comm.rank() == root) {
      ASSERT_EQ(out.size(), 2u);
      EXPECT_EQ(out[0], static_cast<std::int64_t>(n) * (n + 1) / 2);
      EXPECT_EQ(out[1], n);
    } else {
      EXPECT_TRUE(out.empty());
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectiveSizeSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 16));

TEST(CollectiveCorrectness, SizeOneCommunicatorIsLocalAndSilent) {
  rt::spawn(1, [](rt::Communicator& comm) {
    const auto before = comm.stats();
    comm.barrier();
    EXPECT_EQ(comm.bcast_value<int>(42, 0), 42);
    auto g = comm.gather(rt::to_bytes(7), 0);
    ASSERT_EQ(g.size(), 1u);
    auto all = comm.allgather_value<int>(9);
    EXPECT_EQ(all, std::vector<int>{9});
    const double v[1] = {2.5};
    EXPECT_DOUBLE_EQ(comm.reduce(std::span<const double>(v), std::plus<>(),
                                 0)[0],
                     2.5);
    EXPECT_DOUBLE_EQ(comm.allreduce(2.5, std::plus<>()), 2.5);
    // Nothing above should have touched the wire.
    EXPECT_EQ((comm.stats() - before).messages, 0u);
  });
}

TEST(CollectiveCorrectness, RootOutOfRangeNamesTheOperation) {
  rt::spawn(2, [](rt::Communicator& comm) {
    try {
      (void)comm.bcast_value<int>(1, 5);
      FAIL() << "expected UsageError";
    } catch (const rt::UsageError& e) {
      EXPECT_NE(std::string(e.what()).find("bcast"), std::string::npos);
    }
  });
}

// ---------------------------------------------------------------------------
// Split sub-communicators
// ---------------------------------------------------------------------------

TEST(CollectiveSplit, SubcommunicatorCollectivesAreIndependent) {
  rt::spawn(8, [](rt::Communicator& comm) {
    auto sub = comm.split(comm.rank() % 2, comm.rank());
    ASSERT_EQ(sub.size(), 4);
    // Collectives inside the sub-communicator see sub-ranks only.
    const int sum = sub.allreduce(comm.rank(), std::plus<>());
    EXPECT_EQ(sum, comm.rank() % 2 == 0 ? 0 + 2 + 4 + 6 : 1 + 3 + 5 + 7);
    const int root_val = sub.bcast_value(sub.rank() == 3 ? 77 : -1, 3);
    EXPECT_EQ(root_val, 77);
    sub.barrier();
    // The parent communicator still works afterwards, with parent ranks.
    const int world_sum = comm.allreduce(1, std::plus<>());
    EXPECT_EQ(world_sum, 8);
  });
}

TEST(CollectiveSplit, SubcommMessageCountsUseSubSize) {
  // A 4-rank subcomm allreduce is 4 * log2(4) messages on the SUBCOMM's
  // counters; the parent's counters are untouched by it.
  rt::spawn(8, [](rt::Communicator& comm) {
    auto sub = comm.split(comm.rank() / 4, comm.rank());
    ASSERT_EQ(sub.size(), 4);
    const auto parent_before = comm.stats();
    sub.barrier();
    const auto sub_before = sub.stats();
    (void)sub.allreduce(1.0, std::plus<>());
    sub.barrier();
    if (sub.rank() == 0) {
      // barrier...barrier brackets loosely here (other subcomm ranks may
      // still be mid-barrier), so assert >= the allreduce and < adding
      // another collective's worth; the exact-count methodology lives in
      // CollectiveCounts above.
      const auto delta = (sub.stats() - sub_before).messages;
      EXPECT_GE(delta, 4u * 2u);
      EXPECT_EQ((comm.stats() - parent_before).messages, 0u);
    }
  });
}

// ---------------------------------------------------------------------------
// Tag reuse: back-to-back collectives stay aligned
// ---------------------------------------------------------------------------

TEST(CollectiveTagReuse, BackToBackAlltoallRoundsStayAligned) {
  // Eager sends mean a fast rank's round-k+1 payload can be queued while a
  // slow peer's round-k payload is still in flight; the owed-peer gate must
  // keep every round exact. Stamp payloads with (round, src) and replay
  // many rounds.
  constexpr int kRounds = 25;
  rt::spawn(5, [](rt::Communicator& comm) {
    for (int round = 0; round < kRounds; ++round) {
      std::vector<rt::Buffer> out(5);
      for (int dst = 0; dst < 5; ++dst) {
        rt::PackBuffer b;
        b.pack(round);
        b.pack(comm.rank());
        b.pack(dst);
        out[dst] = std::move(b).take_buffer();
      }
      auto in = comm.alltoall(std::move(out));
      for (int src = 0; src < 5; ++src) {
        rt::UnpackBuffer u(in[src]);
        EXPECT_EQ(u.unpack<int>(), round);
        EXPECT_EQ(u.unpack<int>(), src);
        EXPECT_EQ(u.unpack<int>(), comm.rank());
      }
    }
  });
}

TEST(CollectiveTagReuse, AlltoallExactUnderSeededDelays) {
  // A negative min_tag lets the plan inject delays INTO the collective tag
  // range (delays are content- and order-preserving, unlike drop/dup), which
  // forces senders to deschedule mid send-loop — the interleaving that would
  // let a bare any-source drain steal a later round's payload.
  constexpr int kRounds = 8;
  rt::spawn(
      4,
      [](rt::Communicator& comm) {
        for (int round = 0; round < kRounds; ++round) {
          std::vector<rt::Buffer> out(4);
          for (int dst = 0; dst < 4; ++dst)
            out[dst] = rt::Buffer(rt::to_bytes(1000 * round + 10 * comm.rank() + dst));
          auto in = comm.alltoall(std::move(out));
          for (int src = 0; src < 4; ++src) {
            rt::UnpackBuffer u(in[src]);
            EXPECT_EQ(u.unpack<int>(), 1000 * round + 10 * src + comm.rank());
          }
        }
      },
      {.faults = rt::FaultPlan{
           .seed = 17, .delay = 0.35, .delay_ms = 2, .min_tag = -100}});
}

TEST(CollectiveTagReuse, MixedCollectiveSequenceUnderSeededDelays) {
  // Consecutive collectives of every kind on one communicator, with delays
  // injected into the collective tags: per-(src,tag) FIFO plus uniform
  // program order must keep round k's receives matched to round k's sends.
  constexpr int kRounds = 6;
  rt::spawn(
      6,
      [](rt::Communicator& comm) {
        for (int round = 0; round < kRounds; ++round) {
          const int root = round % 6;
          EXPECT_EQ(comm.bcast_value(comm.rank() == root ? round : -1, root),
                    round);
          const int sum = comm.allreduce(comm.rank() + round, std::plus<>());
          EXPECT_EQ(sum, 15 + 6 * round);
          auto all = comm.allgather_value<int>(round * 10 + comm.rank());
          for (int i = 0; i < 6; ++i) EXPECT_EQ(all[i], round * 10 + i);
          comm.barrier();
        }
      },
      {.default_recv_timeout_ms = 5000,
       .faults = rt::FaultPlan{
           .seed = 23, .delay = 0.25, .delay_ms = 1, .min_tag = -100}});
}
