// Tests for erasure-coded state redundancy (docs/REDUNDANCY.md): encode
// snapshot/parity distribution, option and usage validation, and the
// acceptance chaos scenarios — a seeded plan kills one rank mid-coupling
// under drop/dup/reorder/delay, the survivors detect the death, rebuild the
// dead rank's patches from XOR parity, splice the cohort (shrink onto
// survivors AND admit a spectator replacement), and the resumed coupling
// stays element-exact with an interleaved PRMI conversation exactly-once.
// Killing more ranks than the parity tolerates must raise RebuildError on
// every live rank — never hang.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/mxn_component.hpp"
#include "prmi/distributed_framework.hpp"
#include "redundancy/redundancy.hpp"
#include "rt/runtime.hpp"
#include "sidl/parser.hpp"
#include "trace/trace.hpp"

namespace core = mxn::core;
namespace dad = mxn::dad;
namespace prmi = mxn::prmi;
namespace red = mxn::redundancy;
namespace rt = mxn::rt;
namespace trace = mxn::trace;
using dad::AxisDist;
using dad::Point;

namespace {

// Temporary diagnostics for the chaos scenarios (enabled via RED_DEBUG=1).
bool red_debug() {
  static const bool on = std::getenv("RED_DEBUG") != nullptr;
  return on;
}
#define RDBG(rank, ...)                                              \
  do {                                                               \
    if (red_debug()) {                                               \
      std::fprintf(stderr, "[t=%lld r=%d] ",                         \
                   (long long)std::chrono::duration_cast<            \
                       std::chrono::milliseconds>(                   \
                       std::chrono::steady_clock::now()              \
                           .time_since_epoch())                      \
                       .count() %                                    \
                       1000000,                                      \
                   rank);                                            \
      std::fprintf(stderr, __VA_ARGS__);                             \
      std::fprintf(stderr, "\n");                                    \
    }                                                                \
  } while (0)

constexpr dad::Index kRows = 24;
constexpr dad::Index kCols = 10;

double value_at(const Point& p) { return 7.0 * p[0] + p[1]; }
double sentinel_at(const Point&) { return -4444.0; }

/// Side-`s` decomposition of the shared global array for `n` cohort ranks;
/// block vs cyclic so every coupling and every rebuild migration actually
/// redistributes.
dad::DescriptorPtr desc_for(int s, int n) {
  if (s == 0)
    return dad::make_regular(
        std::vector<AxisDist>{AxisDist::block(kRows, n),
                              AxisDist::collapsed(kCols)});
  return dad::make_regular(std::vector<AxisDist>{
      AxisDist::cyclic(kRows, n), AxisDist::collapsed(kCols)});
}

int index_in(const std::vector<int>& ranks, int r) {
  for (std::size_t i = 0; i < ranks.size(); ++i)
    if (ranks[i] == r) return static_cast<int>(i);
  return -1;
}

void expect_exact(dad::DistArray<double>& arr) {
  arr.for_each_owned([&](const Point& p, const double& v) {
    EXPECT_DOUBLE_EQ(v, value_at(p)) << "at (" << p[0] << "," << p[1] << ")";
  });
}

}  // namespace

// ---------------------------------------------------------------------------
// Construction and encode
// ---------------------------------------------------------------------------

TEST(Redundancy, RequiresElasticComponentAndSaneOptions) {
  rt::spawn(2, [](rt::Communicator& world) {
    auto paired = core::make_paired_mxn(world, 1, 1);
    EXPECT_THROW({ red::RedundancyGroup g(paired, {}); }, rt::UsageError);

    auto elastic = core::make_elastic_mxn(world, core::Layout{{0}, {1}});
    EXPECT_THROW({ red::RedundancyGroup g(elastic, {.group_size = 1}); },
                 rt::UsageError);
    EXPECT_THROW({ red::RedundancyGroup g(nullptr, {}); }, rt::UsageError);
    red::RedundancyGroup ok(elastic, {.group_size = 2});
    EXPECT_FALSE(ok.encoded());
  });
}

TEST(Redundancy, EncodeSnapshotsAndDistributesParity) {
  trace::set_enabled(true);
  const auto enc0 = trace::counter("redundancy.encodes").value();
  rt::spawn(5, [](rt::Communicator& world) {
    const int me = world.rank();
    const core::Layout layout{{0, 1}, {2, 3}};  // rank 4 is a spectator
    auto comp = core::make_elastic_mxn(world, layout);
    const int side = layout.side_of(me);
    std::unique_ptr<dad::DistArray<double>> arr;
    if (side >= 0) {
      const auto& ranks = layout.side(side);
      arr = std::make_unique<dad::DistArray<double>>(
          desc_for(side, static_cast<int>(ranks.size())),
          index_in(ranks, me));
      arr->fill(value_at);
      comp->register_field(
          core::make_field("f", arr.get(), core::AccessMode::ReadWrite));
    }

    red::RedundancyGroup group(comp, {.group_size = 4});
    const auto st = group.encode();
    if (side < 0) {
      // Spectators no-op and hold no epoch.
      EXPECT_EQ(st.epoch, 0u);
      EXPECT_FALSE(group.encoded());
      return;
    }
    EXPECT_EQ(st.epoch, 1u);
    EXPECT_TRUE(group.encoded());
    // The blob is exactly this rank's owned elements of "f".
    const auto& ranks = layout.side(side);
    const auto elems = desc_for(side, static_cast<int>(ranks.size()))
                           ->local_volume(index_in(ranks, me));
    EXPECT_EQ(st.blob_bytes, static_cast<std::uint64_t>(elems) * 8u);
    // With a 4-member group each rank holds parity of ~blob/(m-1) per peer
    // contribution — nonzero whenever data exists.
    EXPECT_GT(st.parity_bytes, 0u);
    EXPECT_GT(st.sent_bytes, st.blob_bytes);  // 3 chunks + headers

    // A second epoch supersedes the first.
    EXPECT_EQ(group.encode().epoch, 2u);
  });
  EXPECT_GE(trace::counter("redundancy.encodes").value() - enc0, 4u);
}

TEST(Redundancy, EncodeRejectsWriteOnlyFields) {
  rt::spawn(2, [](rt::Communicator& world) {
    const core::Layout layout{{0}, {1}};
    auto comp = core::make_elastic_mxn(world, layout);
    const int side = layout.side_of(world.rank());
    dad::DistArray<double> arr(desc_for(side, 1), 0);
    comp->register_field(
        core::make_field("f", &arr, core::AccessMode::Write));
    red::RedundancyGroup group(comp, {.group_size = 2});
    EXPECT_THROW(group.encode(), rt::UsageError);
  });
}

TEST(Redundancy, RecoverRequiresADeadRank) {
  rt::spawn(2, [](rt::Communicator& world) {
    const core::Layout layout{{0}, {1}};
    auto comp = core::make_elastic_mxn(world, layout);
    const int side = layout.side_of(world.rank());
    dad::DistArray<double> arr(desc_for(side, 1), 0);
    comp->register_field(
        core::make_field("f", &arr, core::AccessMode::ReadWrite));
    red::RedundancyGroup group(comp, {.group_size = 2});
    group.encode();
    // Nobody died: recover refuses up front, before any communication.
    EXPECT_THROW(group.recover(layout, {}), rt::UsageError);
  });
}

// ---------------------------------------------------------------------------
// Acceptance: mid-coupling kill, rebuild, splice, resume — under chaos
// ---------------------------------------------------------------------------

namespace {

const char* kSteerSidl = R"(
  package resilient {
    interface Steering {
      independent int bump(in int token);
    }
  }
)";

constexpr int kCallsPerPhase = 2;
/// Fault-exempt marker (above the migration tag blocks, below the PRMI
/// range) the client raises when a steering phase is fully answered,
/// releasing the server from dedup-replay duty.
constexpr int kPhaseDoneTag = 700000;

struct ChaosOutcome {
  std::atomic<int> rebuilt_ranks{0};   // ranks that completed recover()
  std::atomic<int> exact_ranks{0};     // members exact after resume
  std::atomic<int> executions{0};      // PRMI handler runs (exactly-once)
  std::atomic<int> resumed{0};         // members with a committed resume round
  std::atomic<std::uint64_t> rebuilt_bytes{0};
};

/// One full kill/rebuild/resume run. 8 ranks, 4×3 coupling (side 0 =
/// {0,1,2,3}, side 1 = {4,5,6}, rank 7 spectator). The plan kills source
/// rank 2 mid-stream under drop/dup/reorder/delay chaos; survivors detect
/// the death through their typed deadlines (or the universe's death flags),
/// rebuild rank 2's patches from XOR parity and splice onto `new_layout` —
/// shrink ({0,1,3}) or spectator replacement ({0,1,3,7}). A PRMI steering
/// conversation (client rank 0, server rank 7) brackets the failure.
void run_kill_rebuild_scenario(const rt::FaultPlan& plan,
                               const core::Layout& new_layout,
                               ChaosOutcome& out) {
  const core::Layout layout{{0, 1, 2, 3}, {4, 5, 6}};
  rt::spawn(
      8,
      [&](rt::Communicator& world) {
        const int me = world.rank();
        rt::Universe* uni = world.universe();

        prmi::DistributedFramework fw(world);
        fw.instantiate("client", {0});
        fw.instantiate("server", {7});
        auto pkg = mxn::sidl::parse_package(kSteerSidl);
        if (me == 7) {
          auto servant =
              std::make_shared<prmi::Servant>(pkg.interface("Steering"));
          servant->bind("bump",
                        [&](prmi::CalleeContext&,
                            std::vector<prmi::Value>& args) -> prmi::Value {
                          out.executions.fetch_add(1);
                          return std::int32_t(
                              std::get<std::int32_t>(args[0]) + 1);
                        });
          fw.add_provides("server", "steer", servant);
        }
        if (me == 0)
          fw.register_uses("client", "steer", pkg.interface("Steering"));
        fw.connect("client", "steer", "server", "steer");

        auto comp = core::make_elastic_mxn(world, layout);
        int side = layout.side_of(me);
        std::unique_ptr<dad::DistArray<double>> arr;
        if (side >= 0) {
          const auto& ranks = layout.side(side);
          arr = std::make_unique<dad::DistArray<double>>(
              desc_for(side, static_cast<int>(ranks.size())),
              index_in(ranks, me));
          if (side == 0) arr->fill(value_at);
          comp->register_field(
              core::make_field("f", arr.get(), core::AccessMode::ReadWrite));
        }

        core::ConnectionSpec spec;
        spec.src_field = spec.dst_field = "f";
        spec.src_side = 0;
        spec.one_shot = false;
        spec.reliable = true;
        spec.timeout_ms = 200;
        spec.max_retries = 8;
        comp->establish(spec);

        // Warm transfer: both sides now hold the exact field, so the encode
        // snapshot below covers members of BOTH sides with known data.
        if (side >= 0) {
          EXPECT_EQ(comp->data_ready("f"), 1);
          expect_exact(*arr);
        }

        RDBG(me, "encode: begin");
        red::RedundancyGroup group(
            comp, {.group_size = 4, .timeout_ms = 3000, .max_retries = 8});
        group.encode();
        EXPECT_EQ(group.encoded(), side >= 0);
        RDBG(me, "encode: done");

        // Steering phase 1, while everyone is alive.
        auto steer_phase = [&](int phase) {
          if (me == 7) {
            int served = 0;
            while (served < kCallsPerPhase)
              served += fw.serve("server", kCallsPerPhase - served);
            const int done_tag = kPhaseDoneTag + phase;
            while (!world.probe(0, done_tag)) {
              EXPECT_EQ(fw.drain("server"), 0);
              std::this_thread::sleep_for(std::chrono::milliseconds(1));
            }
            world.recv(0, done_tag);
          } else if (me == 0) {
            auto port = fw.get_port("client", "steer");
            // Generous retry budget: after the recovery the server may lag
            // the client by a couple of in-flight coupling rounds before it
            // reaches serve(); each retry rides out ~150 ms of that.
            port->set_retry_policy(prmi::RetryPolicy{
                .timeout_ms = 150, .max_retries = 25, .backoff_ms = 2});
            for (int i = 0; i < kCallsPerPhase; ++i) {
              const auto token = std::int32_t(100 * phase + i);
              auto r = port->call_independent("bump", {token}, 0);
              EXPECT_EQ(std::get<std::int32_t>(r.ret), token + 1);
            }
            world.send(7, kPhaseDoneTag + phase, rt::Buffer::allocate(1));
          }
        };
        steer_phase(0);
        RDBG(me, "phase0 done");
        // A (fault-exempt, internal-tag) barrier lines the members up so
        // the kill lands inside the stream below, not on a straggler
        // mid-handshake. Should the kill land inside the barrier itself,
        // the timeout IS the detection.
        try {
          world.barrier();
        } catch (const rt::TimeoutError&) {
          RDBG(me, "barrier timed out");
        }
        RDBG(me, "stream: begin");

        // Keep the coupling streaming until the seeded kill fires. The
        // killed rank unwinds with KilledError (propagates; the runtime
        // notes the death); survivors fail a round with a typed error or
        // observe the universe's death flags.
        // Typed round failures are only a hint — chaos can fail a round
        // spuriously while everyone is still alive (and a rank that stops
        // making progress on a false alarm would freeze its own op clock,
        // so the seeded kill could never fire). The universe's death note
        // is the authoritative signal: stream until it appears. The killed
        // rank's own data_ready raises KilledError, which propagates.
        const auto stream_deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(25);
        while (uni->dead() == 0 &&
               std::chrono::steady_clock::now() < stream_deadline) {
          if (side >= 0) {
            try {
              comp->data_ready("f");
            } catch (const core::TransferError&) {
            } catch (const rt::TimeoutError&) {
            }
          } else {
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
          }
        }
        RDBG(me, "stream: exit (dead=%d)", uni->dead());
        ASSERT_GT(uni->dead(), 0)
            << "rank " << me << " never observed the seeded kill";

        // Two-phase rebuild + splice onto the new layout. Fresh arrays are
        // sentinel-filled: every correct element below was injected by the
        // recovery, and elements in regions the dead rank owned can only
        // come from the XOR rebuild.
        const int new_side = new_layout.side_of(me);
        std::unique_ptr<dad::DistArray<double>> next;
        std::vector<core::FieldRegistration> regs;
        if (new_side >= 0) {
          const auto& ranks = new_layout.side(new_side);
          next = std::make_unique<dad::DistArray<double>>(
              desc_for(new_side, static_cast<int>(ranks.size())),
              index_in(ranks, me));
          next->fill(sentinel_at);
          regs.push_back(
              core::make_field("f", next.get(), core::AccessMode::ReadWrite));
        }
        RDBG(me, "recover: begin");
        const auto rs =
            group.recover(new_layout, std::move(regs), /*timeout_ms=*/8000,
                          /*max_retries=*/8);
        RDBG(me, "recover: done");
        out.rebuilt_ranks.fetch_add(1);
        EXPECT_EQ(rs.dead_channel_ranks, std::vector<int>{2});
        out.rebuilt_bytes.fetch_add(rs.rebuilt_bytes);
        EXPECT_FALSE(group.encoded());  // the epoch was spent

        arr = std::move(next);
        side = new_side;
        if (side >= 0) expect_exact(*arr);  // snapshot state restored

        // Resume the coupling on the spliced cohort: still element-exact.
        // Under chaos a source round commits almost every attempt (the
        // destinations ack each retry), but a destination round needs an
        // attempt where every source's commit lands inside one timeout
        // window — so sources must KEEP streaming until every member has
        // seen a committed round, or the destinations starve mid-retry.
        // Failed rounds leave the field untouched; committed rounds are
        // idempotent, so the last committed round determines the data.
        if (side >= 0) {
          const int members = static_cast<int>(new_layout.side0.size() +
                                               new_layout.side1.size());
          bool committed = false;
          const auto resume_deadline =
              std::chrono::steady_clock::now() + std::chrono::seconds(30);
          while (out.resumed.load() < members &&
                 std::chrono::steady_clock::now() < resume_deadline) {
            try {
              if (comp->data_ready("f") == 1 && !committed) {
                committed = true;
                out.resumed.fetch_add(1);
                RDBG(me, "resume: committed round");
              }
            } catch (const core::TransferError&) {
            } catch (const rt::TimeoutError&) {
            }
          }
          EXPECT_TRUE(committed)
              << "rank " << me << ": no post-recovery round committed";
          expect_exact(*arr);
          bool exact = true;
          arr->for_each_owned([&](const Point& p, const double& v) {
            if (v != value_at(p)) exact = false;
          });
          if (exact) out.exact_ranks.fetch_add(1);
        }

        // Steering phase 2 across the recovery: exactly-once end to end.
        steer_phase(1);
      },
      {.deadlock_timeout_ms = 45000,
       // Wide enough that the splice-time subset() rendezvous tolerates the
       // skew ranks accumulate exiting the stream at different moments.
       .default_recv_timeout_ms = 12000,
       .faults = plan,
       .trace = true});
}

}  // namespace

TEST(RedundancyChaos, KillShrinkOntoSurvivorsUnderChaos) {
  trace::set_enabled(true);
  ChaosOutcome out;
  const rt::FaultPlan plan{.seed = 11,
                           .drop = 0.02,
                           .dup = 0.08,
                           .reorder = 0.15,
                           .delay = 0.3,
                           .delay_ms = 2,
                           .kills = {{2, 200}},
                           .min_tag = 900};
  // The killed rank's KilledError is rethrown by spawn() after the
  // survivors finish — the run as a whole still "lost a rank".
  EXPECT_THROW(
      run_kill_rebuild_scenario(plan, core::Layout{{0, 1, 3}, {4, 5, 6}},
                                out),
      rt::KilledError);
  EXPECT_EQ(out.rebuilt_ranks.load(), 7);  // every live rank recovered
  EXPECT_EQ(out.exact_ranks.load(), 6);    // 3 + 3 members after the shrink
  EXPECT_GT(out.rebuilt_bytes.load(), 0u);
  EXPECT_EQ(out.executions.load(), 2 * kCallsPerPhase);
}

TEST(RedundancyChaos, KillReplaceWithSpectatorUnderChaos) {
  trace::set_enabled(true);
  ChaosOutcome out;
  const rt::FaultPlan plan{.seed = 23,
                           .drop = 0.02,
                           .dup = 0.08,
                           .reorder = 0.15,
                           .delay = 0.3,
                           .delay_ms = 2,
                           .kills = {{2, 200}},
                           .min_tag = 900};
  // Spectator 7 is admitted in the dead rank's place: the side keeps its
  // width, and the PRMI server lives on through its own promotion.
  EXPECT_THROW(
      run_kill_rebuild_scenario(plan, core::Layout{{0, 1, 3, 7}, {4, 5, 6}},
                                out),
      rt::KilledError);
  EXPECT_EQ(out.rebuilt_ranks.load(), 7);
  EXPECT_EQ(out.exact_ranks.load(), 7);  // 4 + 3 members after replacement
  EXPECT_GT(out.rebuilt_bytes.load(), 0u);
  EXPECT_EQ(out.executions.load(), 2 * kCallsPerPhase);
}

// ---------------------------------------------------------------------------
// Over-tolerance and no-epoch failures: typed, never a hang
// ---------------------------------------------------------------------------

TEST(RedundancyChaos, TwoDeathsInOneGroupRaiseRebuildError) {
  // Ranks 1 and 2 share the first parity group ({0,1,2,3} at group_size=4):
  // XOR parity cannot reconstruct two missing stripes, so every live rank
  // must get a clean RebuildError from recover() — not a hang.
  std::atomic<int> rebuild_errors{0};
  const core::Layout layout{{0, 1, 2, 3}, {4, 5}};
  EXPECT_THROW(
      rt::spawn(
          6,
          [&](rt::Communicator& world) {
            const int me = world.rank();
            rt::Universe* uni = world.universe();
            auto comp = core::make_elastic_mxn(world, layout);
            const int side = layout.side_of(me);
            const auto& ranks = layout.side(side);
            dad::DistArray<double> arr(
                desc_for(side, static_cast<int>(ranks.size())),
                index_in(ranks, me));
            if (side == 0) arr.fill(value_at);
            comp->register_field(
                core::make_field("f", &arr, core::AccessMode::ReadWrite));
            core::ConnectionSpec spec;
            spec.src_field = spec.dst_field = "f";
            spec.src_side = 0;
            spec.one_shot = false;
            spec.reliable = true;
            spec.timeout_ms = 150;
            spec.max_retries = 4;
            comp->establish(spec);

            red::RedundancyGroup group(
                comp, {.group_size = 4, .timeout_ms = 3000, .max_retries = 6});
            group.encode();
            try {
              world.barrier();
            } catch (const rt::TimeoutError&) {
            }

            // Stream until BOTH seeded kills have landed.
            for (int round = 0; round < 300 && uni->dead() < 2; ++round) {
              try {
                comp->data_ready("f");
              } catch (const core::TransferError&) {
              } catch (const rt::TimeoutError&) {
              }
            }
            for (int i = 0; i < 15000 && uni->dead() < 2; ++i)
              std::this_thread::sleep_for(std::chrono::milliseconds(1));
            ASSERT_EQ(uni->dead(), 2);

            std::vector<core::FieldRegistration> regs;
            const core::Layout shrunk{{0, 3}, {4, 5}};
            const int new_side = shrunk.side_of(me);
            std::unique_ptr<dad::DistArray<double>> holder;
            if (new_side >= 0) {
              const auto& nr = shrunk.side(new_side);
              holder = std::make_unique<dad::DistArray<double>>(
                  desc_for(new_side, static_cast<int>(nr.size())),
                  index_in(nr, me));
              regs.push_back(core::make_field("f", holder.get(),
                                              core::AccessMode::ReadWrite));
            }
            try {
              group.recover(shrunk, std::move(regs), 8000, 4);
              ADD_FAILURE() << "recover() reconstructed an unrecoverable "
                               "loss on rank "
                            << me;
            } catch (const red::RebuildError&) {
              rebuild_errors.fetch_add(1);
            }
          },
          {.deadlock_timeout_ms = 30000,
           .default_recv_timeout_ms = 3000,
           .faults = rt::FaultPlan{.seed = 3,
                                   .kills = {{1, 220}, {2, 260}},
                                   .min_tag = 900}}),
      rt::KilledError);
  EXPECT_EQ(rebuild_errors.load(), 4);
}

TEST(RedundancyChaos, RecoverWithoutEncodeRaisesRebuildError) {
  // A rank died but encode() was never run: there is no epoch to rebuild
  // from, and recover() must say so typed on every live rank.
  std::atomic<int> rebuild_errors{0};
  const core::Layout layout{{0, 1}, {2, 3}};
  EXPECT_THROW(
      rt::spawn(
          4,
          [&](rt::Communicator& world) {
            const int me = world.rank();
            rt::Universe* uni = world.universe();
            auto comp = core::make_elastic_mxn(world, layout);
            const int side = layout.side_of(me);
            const auto& ranks = layout.side(side);
            dad::DistArray<double> arr(
                desc_for(side, static_cast<int>(ranks.size())),
                index_in(ranks, me));
            if (side == 0) arr.fill(value_at);
            comp->register_field(
                core::make_field("f", &arr, core::AccessMode::ReadWrite));
            core::ConnectionSpec spec;
            spec.src_field = spec.dst_field = "f";
            spec.src_side = 0;
            spec.one_shot = false;
            spec.reliable = true;
            spec.timeout_ms = 150;
            spec.max_retries = 4;
            comp->establish(spec);

            red::RedundancyGroup group(comp, {.group_size = 2});
            try {
              world.barrier();
            } catch (const rt::TimeoutError&) {
            }
            for (int round = 0; round < 300 && uni->dead() == 0; ++round) {
              try {
                comp->data_ready("f");
              } catch (const core::TransferError&) {
              } catch (const rt::TimeoutError&) {
              }
            }
            for (int i = 0; i < 15000 && uni->dead() == 0; ++i)
              std::this_thread::sleep_for(std::chrono::milliseconds(1));
            ASSERT_GT(uni->dead(), 0);

            const core::Layout shrunk{{0}, {2, 3}};
            std::vector<core::FieldRegistration> regs;
            const int new_side = shrunk.side_of(me);
            std::unique_ptr<dad::DistArray<double>> holder;
            if (new_side >= 0) {
              const auto& nr = shrunk.side(new_side);
              holder = std::make_unique<dad::DistArray<double>>(
                  desc_for(new_side, static_cast<int>(nr.size())),
                  index_in(nr, me));
              regs.push_back(core::make_field("f", holder.get(),
                                              core::AccessMode::ReadWrite));
            }
            try {
              group.recover(shrunk, std::move(regs), 8000, 4);
              ADD_FAILURE() << "recover() without an encode epoch succeeded "
                               "on rank "
                            << me;
            } catch (const red::RebuildError&) {
              rebuild_errors.fetch_add(1);
            }
          },
          {.deadlock_timeout_ms = 30000,
           .default_recv_timeout_ms = 3000,
           .faults = rt::FaultPlan{.kills = {{1, 120}}}}),
      rt::KilledError);
  EXPECT_EQ(rebuild_errors.load(), 3);
}
