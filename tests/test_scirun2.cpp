// Tests for the SCIRun2-style PRMI layer (src/scirun2): typed stubs
// validated against SIDL signatures, collective/independent/oneway glue,
// distributed-array parameters, and the run-time sub-setting mechanism.

#include <gtest/gtest.h>

#include <numeric>

#include "rt/runtime.hpp"
#include "scirun2/stub.hpp"

namespace sr2 = mxn::scirun2;
namespace prmi = mxn::prmi;
namespace dad = mxn::dad;
namespace core = mxn::core;
namespace rt = mxn::rt;
using dad::AxisDist;
using dad::Point;
using prmi::Value;

namespace {

const char* kSidl = R"(
  package sim {
    interface Field {
      collective double norm(in parallel array<double,1> data);
      collective long count_above(in parallel array<double,1> data,
                                  in double threshold);
      collective oneway void mark(in int step);
      independent int probe(in int where);
      collective string describe(in bool verbose);
      collective double analyze(in double x, out long count,
                                inout double acc);
    }
  }
)";

struct ServerState {
  int marks = 0;
};

void run_pair(int m, int n, int server_calls,
              const std::function<void(sr2::CompiledInterface&,
                                       rt::Communicator&)>& client) {
  rt::spawn(m + n, [&](rt::Communicator& world) {
    prmi::DistributedFramework fw(world);
    std::vector<int> cranks(m), sranks(n);
    std::iota(cranks.begin(), cranks.end(), 0);
    std::iota(sranks.begin(), sranks.end(), m);
    fw.instantiate("client", cranks);
    fw.instantiate("server", sranks);

    ServerState state;
    std::unique_ptr<dad::DistArray<double>> target;
    if (fw.member_of("server")) {
      auto cohort = fw.cohort("server");
      auto desc = dad::make_regular(
          std::vector<AxisDist>{AxisDist::block(16, n)});
      target = std::make_unique<dad::DistArray<double>>(desc, cohort.rank());
      auto pkg = mxn::sidl::parse_package(kSidl);
      auto servant = std::make_shared<prmi::Servant>(pkg.interface("Field"));

      servant->bind("norm", [&target](prmi::CalleeContext& ctx,
                                      std::vector<Value>&) -> Value {
        double local = 0;
        for (double v : target->local()) local += v * v;
        return ctx.cohort.allreduce(local,
                                    [](double a, double b) { return a + b; });
      });
      servant->bind("count_above", [&target](prmi::CalleeContext& ctx,
                                             std::vector<Value>& args)
                                       -> Value {
        const double thr = std::get<double>(args[1]);
        std::int64_t local = 0;
        for (double v : target->local())
          if (v > thr) ++local;
        return ctx.cohort.allreduce(
            local, [](std::int64_t a, std::int64_t b) { return a + b; });
      });
      servant->bind("mark",
                    [&state](prmi::CalleeContext&, std::vector<Value>&)
                        -> Value {
                      ++state.marks;
                      return {};
                    });
      servant->bind("probe", [](prmi::CalleeContext& ctx,
                                std::vector<Value>& args) -> Value {
        return std::int32_t(std::get<std::int32_t>(args[0]) * 10 +
                            ctx.cohort.rank());
      });
      servant->bind("analyze", [](prmi::CalleeContext&,
                                  std::vector<Value>& args) -> Value {
        const double x = std::get<double>(args[0]);
        args[1] = std::int64_t(42);
        args[2] = std::get<double>(args[2]) * 2.0;
        return x + 1.0;
      });
      servant->bind("describe",
                    [](prmi::CalleeContext&, std::vector<Value>& args)
                        -> Value {
                      return std::string(std::get<bool>(args[0])
                                             ? "field[16] verbose"
                                             : "field");
                    });
      for (const char* meth : {"norm", "count_above"})
        servant->set_parallel_target(
            meth, "data",
            core::make_field("data", target.get(),
                             core::AccessMode::ReadWrite));
      fw.add_provides("server", "field", servant);
      fw.connect("client", "field", "server", "field");
      fw.serve("server", server_calls);
    } else {
      auto pkg = mxn::sidl::parse_package(kSidl);
      fw.register_uses("client", "field", pkg.interface("Field"));
      fw.connect("client", "field", "server", "field");
      sr2::CompiledInterface iface(fw.get_port("client", "field"));
      auto cohort = fw.cohort("client");
      client(iface, cohort);
    }
  });
}

}  // namespace

TEST(Scirun2, TypedStubCollectiveWithParallelArg) {
  run_pair(2, 2, 1, [](sr2::CompiledInterface& iface,
                       rt::Communicator& cohort) {
    auto norm = iface.stub<double(sr2::Distributed)>("norm");
    auto desc = dad::make_regular(
        std::vector<AxisDist>{AxisDist::block(16, 2)});
    dad::DistArray<double> mine(desc, cohort.rank());
    mine.fill([](const Point&) { return 2.0; });
    auto binding = core::make_field("d", &mine, core::AccessMode::Read);
    EXPECT_DOUBLE_EQ(norm(sr2::Distributed{&binding}), 16 * 4.0);
  });
}

TEST(Scirun2, TypedStubWithMixedArgs) {
  run_pair(2, 2, 1, [](sr2::CompiledInterface& iface,
                       rt::Communicator& cohort) {
    auto count =
        iface.stub<std::int64_t(sr2::Distributed, double)>("count_above");
    auto desc = dad::make_regular(
        std::vector<AxisDist>{AxisDist::block(16, 2)});
    dad::DistArray<double> mine(desc, cohort.rank());
    mine.fill([](const Point& p) { return static_cast<double>(p[0]); });
    auto binding = core::make_field("d", &mine, core::AccessMode::Read);
    EXPECT_EQ(count(sr2::Distributed{&binding}, 11.5), 4);  // 12..15
  });
}

TEST(Scirun2, TypedStubScalarAndString) {
  run_pair(1, 1, 2, [](sr2::CompiledInterface& iface, rt::Communicator&) {
    auto describe = iface.stub<std::string(bool)>("describe");
    EXPECT_EQ(describe(true), "field[16] verbose");
    EXPECT_EQ(describe(false), "field");
  });
}

TEST(Scirun2, OnewayAndIndependentStubs) {
  run_pair(2, 2, 4, [](sr2::CompiledInterface& iface,
                       rt::Communicator& cohort) {
    auto mark = iface.stub<void(std::int32_t)>("mark");
    mark(1);  // oneway collective: each callee rank gets it once
    auto probe = iface.stub<std::int32_t(std::int32_t)>("probe");
    // Independent: caller rank i -> callee rank i.
    EXPECT_EQ(probe(7), 70 + cohort.rank());
    // Sync with a collective so the serve count is deterministic: mark is
    // 1 logical call per callee rank, probe 1 per callee rank, describe 2.
    auto describe = iface.stub<std::string(bool)>("describe");
    EXPECT_EQ(describe(false), "field");
    EXPECT_EQ(describe(true), "field[16] verbose");
  });
}

TEST(Scirun2, OutAndInoutTypedStubs) {
  run_pair(2, 2, 1, [](sr2::CompiledInterface& iface, rt::Communicator&) {
    auto analyze = iface.stub<double(double, sr2::Out<std::int64_t>,
                                     sr2::InOut<double>)>("analyze");
    std::int64_t count = 0;
    double acc = 1.5;
    const double r = analyze(3.0, sr2::Out<std::int64_t>{&count},
                             sr2::InOut<double>{&acc});
    EXPECT_DOUBLE_EQ(r, 4.0);
    EXPECT_EQ(count, 42);
    EXPECT_DOUBLE_EQ(acc, 3.0);
  });
}

TEST(Scirun2, OutWrapperModeValidation) {
  run_pair(1, 1, 0, [](sr2::CompiledInterface& iface, rt::Communicator&) {
    // Missing wrappers: plain in-style signature must be rejected.
    EXPECT_THROW(
        (iface.stub<double(double, std::int64_t, double)>("analyze")),
        rt::UsageError);
    // Wrapper on an in-parameter is equally wrong.
    EXPECT_THROW((iface.stub<std::string(sr2::Out<bool>)>("describe")),
                 rt::UsageError);
  });
}

TEST(Scirun2, StubSignatureValidation) {
  run_pair(1, 1, 0, [](sr2::CompiledInterface& iface, rt::Communicator&) {
    // Wrong return type.
    EXPECT_THROW((iface.stub<std::int32_t(bool)>("describe")),
                 rt::UsageError);
    // Wrong arity.
    EXPECT_THROW((iface.stub<std::string()>("describe")), rt::UsageError);
    // Wrong parameter type.
    EXPECT_THROW((iface.stub<std::string(double)>("describe")),
                 rt::UsageError);
    // Parallel parameter cannot bind to a plain vector.
    EXPECT_THROW((iface.stub<double(std::vector<double>)>("norm")),
                 rt::UsageError);
    // Unknown method.
    EXPECT_THROW((iface.stub<void()>("ghost")), std::out_of_range);
  });
}

TEST(Scirun2, SubsetParticipation) {
  // 4 callers; only cohort ranks {1,3} participate in a subset call. The
  // callee-side parallel target is fed from arrays decomposed over the TWO
  // participants.
  run_pair(4, 2, 2, [](sr2::CompiledInterface& iface,
                       rt::Communicator& cohort) {
    // Full-cohort call first.
    auto desc4 = dad::make_regular(
        std::vector<AxisDist>{AxisDist::block(16, 4)});
    dad::DistArray<double> a4(desc4, cohort.rank());
    a4.fill([](const Point&) { return 1.0; });
    auto b4 = core::make_field("d", &a4, core::AccessMode::Read);
    auto norm = iface.stub<double(sr2::Distributed)>("norm");
    EXPECT_DOUBLE_EQ(norm(sr2::Distributed{&b4}), 16.0);

    // Subset call by ranks {1,3}.
    auto sub = iface.subset({1, 3});
    if (cohort.rank() == 1 || cohort.rank() == 3) {
      ASSERT_TRUE(sub.has_value());
      auto desc2 = dad::make_regular(
          std::vector<AxisDist>{AxisDist::block(16, 2)});
      const int sub_rank = cohort.rank() == 1 ? 0 : 1;
      dad::DistArray<double> a2(desc2, sub_rank);
      a2.fill([](const Point&) { return 3.0; });
      auto b2 = core::make_field("d", &a2, core::AccessMode::Read);
      auto sub_norm = sub->stub<double(sr2::Distributed)>("norm");
      EXPECT_DOUBLE_EQ(sub_norm(sr2::Distributed{&b2}), 16 * 9.0);
    } else {
      EXPECT_FALSE(sub.has_value());
    }
  });
}
