// Tests for the multi-tenant connection fabric (src/fabric): tenant
// registry and per-tenant counters, per-connection transmission-policy
// selection/override, PRMI call batching driven by the fabric's drain tick,
// and exactly-once batch delivery under injected message chaos.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>

#include "core/transmission_policy.hpp"
#include "fabric/fabric.hpp"
#include "rt/runtime.hpp"
#include "sidl/parser.hpp"
#include "trace/trace.hpp"

namespace core = mxn::core;
namespace dad = mxn::dad;
namespace fabric = mxn::fabric;
namespace prmi = mxn::prmi;
namespace rt = mxn::rt;
namespace trace = mxn::trace;
using dad::AxisDist;
using dad::Point;
using prmi::Value;

namespace {

std::uint64_t ctr(const std::string& name) {
  return trace::counter(name).value();
}

std::vector<int> iota_ranks(int from, int count) {
  std::vector<int> r(count);
  for (int i = 0; i < count; ++i) r[i] = from + i;
  return r;
}

const char* kSidl = R"(
  package fab {
    interface Engine {
      independent int ping(in int token);
      independent int bump(in int amount);
      collective double sum(in double x);
    }
  }
)";

/// Client/server harness for the PRMI tenants: m callers + n callees, one
/// connection. `bumps` counts bump() executions per callee rank (the
/// exactly-once witness).
void run_prmi(
    int m, int n,
    const std::function<void(prmi::RemotePort&, rt::Communicator&)>& client,
    const std::function<void(int executed)>& check_server = nullptr,
    const rt::SpawnOptions& opts = {}) {
  rt::spawn(
      m + n,
      [&](rt::Communicator& world) {
        prmi::DistributedFramework fw(world);
        fw.instantiate("client", iota_ranks(0, m));
        fw.instantiate("server", iota_ranks(m, n));
        std::atomic<int> executed{0};
        if (fw.member_of("server")) {
          auto pkg = mxn::sidl::parse_package(kSidl);
          auto servant =
              std::make_shared<prmi::Servant>(pkg.interface("Engine"));
          servant->bind("ping", [](prmi::CalleeContext& ctx,
                                   std::vector<Value>& args) -> Value {
            EXPECT_FALSE(ctx.collective);
            return std::int32_t(std::get<std::int32_t>(args[0]) + 1);
          });
          servant->bind("bump", [&executed](prmi::CalleeContext&,
                                            std::vector<Value>& args) -> Value {
            return std::int32_t(
                executed.fetch_add(std::get<std::int32_t>(args[0])) +
                std::get<std::int32_t>(args[0]));
          });
          servant->bind("sum", [](prmi::CalleeContext& ctx,
                                  std::vector<Value>& args) -> Value {
            return ctx.cohort.allreduce(
                std::get<double>(args[0]) * (ctx.cohort.rank() + 1),
                [](double a, double b) { return a + b; });
          });
          fw.add_provides("server", "engine", servant);
        } else {
          auto pkg = mxn::sidl::parse_package(kSidl);
          fw.register_uses("client", "engine", pkg.interface("Engine"));
        }
        fw.connect("client", "engine", "server", "engine");
        if (fw.member_of("server")) {
          try {
            fw.serve("server", -1);
          } catch (const rt::TimeoutError&) {
          }
          if (check_server) check_server(executed.load());
        } else {
          auto port = fw.get_port("client", "engine");
          auto cohort = fw.cohort("client");
          client(*port, cohort);
          cohort.barrier();  // quiesce before the shutdown notice
          port->shutdown_provider();
        }
      },
      opts);
}

double value_at(const Point& p) { return 3.0 * p[0] + 0.5; }

}  // namespace

// ---------------------------------------------------------------------------
// Connection tenants
// ---------------------------------------------------------------------------

TEST(Fabric, ConnectionTenantsTickThroughRegistry) {
  const int m = 2, n = 2;
  auto src_desc =
      dad::make_regular(std::vector<AxisDist>{AxisDist::block(12, m)});
  auto dst_desc =
      dad::make_regular(std::vector<AxisDist>{AxisDist::cyclic(12, n)});
  const auto tenants0 = ctr("fabric.tenants");
  rt::spawn(m + n, [&](rt::Communicator& world) {
    std::shared_ptr<core::MxNComponent> mxn =
        core::make_paired_mxn(world, m, n);
    const int side = world.rank() < m ? 0 : 1;
    auto cohort = world.split(side, world.rank());

    constexpr int kTenants = 3;
    std::vector<std::unique_ptr<dad::DistArray<double>>> arrs;
    fabric::Fabric fab;
    for (int t = 0; t < kTenants; ++t) {
      arrs.push_back(std::make_unique<dad::DistArray<double>>(
          side == 0 ? src_desc : dst_desc, cohort.rank()));
      if (side == 0) arrs.back()->fill(value_at);
      const std::string fname = "f" + std::to_string(t);
      mxn->register_field(core::make_field(
          fname, arrs.back().get(),
          side == 0 ? core::AccessMode::Read : core::AccessMode::Write));
      core::ConnectionSpec spec;
      spec.src_field = spec.dst_field = fname;
      spec.src_side = 0;
      spec.one_shot = false;
      auto id = mxn->establish(spec);
      EXPECT_EQ(fab.add_connection("tenant" + std::to_string(t), mxn, id),
                t);
    }
    EXPECT_EQ(fab.tenants(), static_cast<std::size_t>(kTenants));

    // Two drain ticks: every tenant transfers twice; non-participants of a
    // connection would simply not advance (here all ranks participate).
    EXPECT_EQ(fab.drain_tick(), static_cast<std::size_t>(kTenants));
    EXPECT_EQ(fab.drain_tick(), static_cast<std::size_t>(kTenants));
    for (int t = 0; t < kTenants; ++t) {
      EXPECT_EQ(fab.stats(t).ticks, 2u);
      EXPECT_EQ(fab.stats(t).advanced, 2u);
      EXPECT_EQ(fab.tenant_name(t), "tenant" + std::to_string(t));
      if (side == 1)
        arrs[t]->for_each_owned([&](const Point& p, const double& v) {
          EXPECT_DOUBLE_EQ(v, value_at(p));
        });
    }
  });
  // Registration flowed into the process-wide gauge and per-tenant
  // counters (4 ranks × 3 tenants registered).
  EXPECT_EQ(ctr("fabric.tenants") - tenants0, 12u);
  EXPECT_GE(ctr("fabric.tenant.tenant0.ticks"), 2u);
  EXPECT_GE(ctr("fabric.tenant.tenant0.advanced"), 2u);
}

TEST(Fabric, PolicySelectionFollowsSpecAndCanBeOverridden) {
  const int m = 2, n = 2;
  auto src_desc =
      dad::make_regular(std::vector<AxisDist>{AxisDist::block(8, m)});
  auto dst_desc =
      dad::make_regular(std::vector<AxisDist>{AxisDist::block(8, n)});
  rt::spawn(m + n, [&](rt::Communicator& world) {
    auto mxn = core::make_paired_mxn(world, m, n);
    const int side = world.rank() < m ? 0 : 1;
    auto cohort = world.split(side, world.rank());
    dad::DistArray<double> arr(side == 0 ? src_desc : dst_desc,
                               cohort.rank());
    if (side == 0) arr.fill(value_at);
    mxn->register_field(core::make_field(
        "f", &arr,
        side == 0 ? core::AccessMode::Read : core::AccessMode::Write));

    core::ConnectionSpec spec;
    spec.src_field = spec.dst_field = "f";
    spec.src_side = 0;
    spec.one_shot = false;
    auto eager_id = mxn->establish(spec);
    spec.handshake = true;
    auto rendezvous_id = mxn->establish(spec);
    spec.handshake = false;
    spec.reliable = true;
    spec.timeout_ms = 2000;
    auto reliable_id = mxn->establish(spec);

    // The spec's wire-level flags select the policy on every rank.
    EXPECT_STREQ(mxn->policy_name(eager_id), "eager");
    EXPECT_STREQ(mxn->policy_name(rendezvous_id), "rendezvous");
    EXPECT_STREQ(mxn->policy_name(reliable_id), "reliable-two-phase");

    // All three actually move data under their policies.
    for (auto id : {eager_id, rendezvous_id, reliable_id})
      EXPECT_TRUE(mxn->data_ready_connection(id));
    if (side == 1)
      arr.for_each_owned([&](const Point& p, const double& v) {
        EXPECT_DOUBLE_EQ(v, value_at(p));
      });

    // Per-connection override: swap the rendezvous tenant to eager (a
    // collective decision — every rank swaps, keeping both sides agreed).
    EXPECT_NO_THROW(mxn->set_policy(
        rendezvous_id, core::policy_from_spec(core::ConnectionSpec{})));
    EXPECT_STREQ(mxn->policy_name(rendezvous_id), "eager");
    EXPECT_TRUE(mxn->data_ready_connection(rendezvous_id));
  });
}

// ---------------------------------------------------------------------------
// PRMI batching
// ---------------------------------------------------------------------------

TEST(Fabric, BatchedCallsMatchPlainCallsAcrossTargets) {
  run_prmi(2, 2, [](prmi::RemotePort& port, rt::Communicator& cohort) {
    // Interleave queued pings across both callee ranks; results must come
    // back in queue order with the same values plain calls produce.
    constexpr int kCalls = 6;
    for (int i = 0; i < kCalls; ++i)
      EXPECT_EQ(port.queue_independent(
                    "ping", {std::int32_t(100 * cohort.rank() + i)}, i % 2),
                i);
    EXPECT_EQ(port.queued(), static_cast<std::size_t>(kCalls));

    // A plain call while the batch is open must be rejected: sequence
    // numbers must hit the wire in order.
    EXPECT_THROW(port.call_independent("ping", {std::int32_t(7)}, 0),
                 rt::UsageError);

    auto results = port.flush_batch();
    ASSERT_EQ(results.size(), static_cast<std::size_t>(kCalls));
    EXPECT_EQ(port.queued(), 0u);
    for (int i = 0; i < kCalls; ++i)
      EXPECT_EQ(std::get<std::int32_t>(results[i].ret),
                100 * cohort.rank() + i + 1);

    // The proxy is back to normal: plain calls work after the flush, and
    // an empty flush is a no-op.
    auto r = port.call_independent("ping", {std::int32_t(41)}, 0);
    EXPECT_EQ(std::get<std::int32_t>(r.ret), 42);
    EXPECT_TRUE(port.flush_batch().empty());
  });
}

TEST(Fabric, BatchRejectsUnbatchableMethods) {
  run_prmi(1, 1, [](prmi::RemotePort& port, rt::Communicator&) {
    EXPECT_THROW(port.queue_independent("sum", {1.0}), rt::UsageError);
    EXPECT_THROW(port.queue_independent("ping", {}), rt::UsageError);
    // Nothing half-queued after the rejections.
    EXPECT_EQ(port.queued(), 0u);
    auto r = port.call_independent("ping", {std::int32_t(1)});
    EXPECT_EQ(std::get<std::int32_t>(r.ret), 2);
  });
}

TEST(Fabric, PrmiTenantsFlushOnDrainTick) {
  const auto batches0 = ctr("prmi.batches");
  run_prmi(2, 2, [](prmi::RemotePort& port, rt::Communicator& cohort) {
    // The fabric is the drain clock: queue between ticks, tick coalesces.
    fabric::Fabric fab;
    // Aliasing shared_ptr: the harness owns the port for the test's
    // lifetime; the fabric row only needs a handle.
    const auto id = fab.add_prmi_client(
        "rpc" + std::to_string(cohort.rank()),
        std::shared_ptr<prmi::RemotePort>(std::shared_ptr<void>{}, &port));

    EXPECT_FALSE(fab.tick(id));  // empty queue: no progress
    constexpr int kCalls = 5;
    for (int i = 0; i < kCalls; ++i)
      port.queue_independent("ping", {std::int32_t(i)}, cohort.rank() % 2);
    EXPECT_EQ(fab.drain_tick(), 1u);
    EXPECT_EQ(port.queued(), 0u);
    const auto& results = fab.last_results(id);
    ASSERT_EQ(results.size(), static_cast<std::size_t>(kCalls));
    for (int i = 0; i < kCalls; ++i)
      EXPECT_EQ(std::get<std::int32_t>(results[i].ret), i + 1);
    EXPECT_EQ(fab.stats(id).ticks, 2u);
    EXPECT_EQ(fab.stats(id).advanced, 1u);
    EXPECT_EQ(fab.stats(id).calls, static_cast<std::uint64_t>(kCalls));
  });
  // Each caller rank shipped ONE wire message for its 5 calls.
  EXPECT_GT(ctr("prmi.batches"), batches0);
  EXPECT_GE(ctr("prmi.batched_calls"), 10u);
}

TEST(Fabric, BatchExactlyOnceUnderChaos) {
  // 5% drop + 5% dup on every PRMI message across several seeds: batch
  // retransmissions must be absorbed by the provider's seq/dedup machinery
  // — every result correct, and the side-effecting bump() executed exactly
  // once per queued call (the server-side executed total is the witness).
  constexpr int kCalls = 8, kSeeds = 4;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    run_prmi(
        1, 1,
        [](prmi::RemotePort& port, rt::Communicator&) {
          port.set_retry_policy(prmi::RetryPolicy{
              .timeout_ms = 120, .max_retries = 6, .backoff_ms = 2});
          int expect_total = 0;
          for (int i = 1; i <= kCalls; ++i) {
            port.queue_independent("bump", {std::int32_t(i)}, 0);
            expect_total += i;
          }
          auto results = port.flush_batch();
          ASSERT_EQ(results.size(), static_cast<std::size_t>(kCalls));
          // bump returns the running total: correct values prove each call
          // executed once, in order.
          int running = 0;
          for (int i = 1; i <= kCalls; ++i) {
            running += i;
            EXPECT_EQ(std::get<std::int32_t>(results[i - 1].ret), running);
          }
        },
        [](int executed) {
          EXPECT_EQ(executed, kCalls * (kCalls + 1) / 2);
        },
        {.deadlock_timeout_ms = 8000,
         .default_recv_timeout_ms = 2500,
         .faults = rt::FaultPlan{.seed = static_cast<std::uint64_t>(seed),
                                 .drop = 0.05,
                                 .dup = 0.05,
                                 .min_tag = 1 << 20}});
  }
}
