// Tests for the tracing and metrics layer (src/trace): ring overflow
// semantics, the enabled/disabled gate, counters and log2-bucket
// histograms, and the Chrome trace-event JSON exporter (structure plus the
// span names the instrumented layers are expected to emit).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "dad/dist_array.hpp"
#include "rt/runtime.hpp"
#include "sched/cache.hpp"
#include "sched/executor.hpp"
#include "trace/trace.hpp"

namespace trace = mxn::trace;
namespace dad = mxn::dad;
namespace sched = mxn::sched;
namespace rt = mxn::rt;
using dad::AxisDist;

namespace {

/// Fixture that isolates trace state: every test starts disabled and empty.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::set_enabled(false);
    trace::reset();
  }
  void TearDown() override {
    trace::set_enabled(false);
    trace::reset();
  }
};

TEST_F(TraceTest, DisabledRecordsNothing) {
  ASSERT_FALSE(trace::enabled());
  trace::instant("t.never", "test");
  { trace::Span s("t.never_span", "test"); }
  for (const auto& ev : trace::this_thread_events())
    EXPECT_STRNE(ev.name, "t.never");
  // Counters are always-on by design; spans and instants are not.
  EXPECT_EQ(trace::counter("t.c0").value(), 0u);
}

TEST_F(TraceTest, InstantAndSpanRecordWhenEnabled) {
  trace::set_enabled(true);
  trace::instant("t.mark", "test", 7);
  {
    trace::Span s("t.work", "test", 42);
  }
  const auto evs = trace::this_thread_events();
  int marks = 0, begins = 0, ends = 0;
  for (const auto& ev : evs) {
    if (std::string(ev.name) == "t.mark") {
      ++marks;
      EXPECT_EQ(ev.kind, trace::EventKind::Instant);
      EXPECT_EQ(ev.arg, 7u);
    }
    if (std::string(ev.name) == "t.work") {
      if (ev.kind == trace::EventKind::Begin) ++begins;
      if (ev.kind == trace::EventKind::End) ++ends;
    }
  }
  EXPECT_EQ(marks, 1);
  EXPECT_EQ(begins, 1);
  EXPECT_EQ(ends, 1);
}

TEST_F(TraceTest, RingOverflowKeepsNewest) {
  trace::set_enabled(true);
  const std::size_t n = trace::kRingCapacity + 100;
  for (std::size_t i = 0; i < n; ++i)
    trace::instant("t.flood", "test", i);
  const auto evs = trace::this_thread_events();
  ASSERT_EQ(evs.size(), trace::kRingCapacity);
  // Oldest-first snapshot: the first retained event is i = n - capacity,
  // the last is i = n - 1.
  EXPECT_EQ(evs.front().arg, n - trace::kRingCapacity);
  EXPECT_EQ(evs.back().arg, n - 1);
  for (std::size_t k = 1; k < evs.size(); ++k)
    EXPECT_EQ(evs[k].arg, evs[k - 1].arg + 1);
}

TEST_F(TraceTest, CounterAccumulates) {
  auto& c = trace::counter("t.acc");
  c.add(3);
  c.add(4);
  EXPECT_EQ(c.value(), 7u);
  // Same name returns the same counter.
  EXPECT_EQ(trace::counter("t.acc").value(), 7u);
  trace::reset();
  EXPECT_EQ(c.value(), 0u);  // reference stays valid across reset
}

TEST_F(TraceTest, HistogramLog2Buckets) {
  auto& h = trace::histogram("t.lat");
  EXPECT_EQ(trace::Histogram::bucket_of(0), 0);
  EXPECT_EQ(trace::Histogram::bucket_of(1), 1);
  EXPECT_EQ(trace::Histogram::bucket_of(2), 2);
  EXPECT_EQ(trace::Histogram::bucket_of(3), 2);
  EXPECT_EQ(trace::Histogram::bucket_of(4), 3);
  EXPECT_EQ(trace::Histogram::bucket_of(1023), 10);
  EXPECT_EQ(trace::Histogram::bucket_of(1024), 11);

  h.record(0);
  h.record(1);
  h.record(2);
  h.record(3);
  h.record(1000);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1006u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(10), 1u);
  // bucket_lo gives the inclusive lower bound of each bucket.
  EXPECT_EQ(trace::Histogram::bucket_lo(0), 0u);
  EXPECT_EQ(trace::Histogram::bucket_lo(1), 1u);
  EXPECT_EQ(trace::Histogram::bucket_lo(2), 2u);
  EXPECT_EQ(trace::Histogram::bucket_lo(11), 1024u);
}

TEST_F(TraceTest, SpanFeedsHistogramEvenWhenDisabled) {
  ASSERT_FALSE(trace::enabled());
  auto& h = trace::histogram("t.span_ns");
  { trace::Span s("t.timed", "test", 0, &h); }
  EXPECT_EQ(h.count(), 1u);
}

TEST_F(TraceTest, ChromeTraceExportParsesAndContainsExpectedSpans) {
  trace::set_enabled(true);
  // Run a tiny 1x2 redistribution through the instrumented stack so the
  // trace holds real spans from sched + rt.
  auto src = dad::make_regular(std::vector<AxisDist>{AxisDist::block(16, 1)});
  auto dst = dad::make_regular(std::vector<AxisDist>{AxisDist::block(16, 2)});
  rt::spawn(3, [&](rt::Communicator& world) {
    auto c = sched::split_coupling(world, 1, 2);
    const int ms = c.my_src_rank(), md = c.my_dst_rank();
    std::unique_ptr<dad::DistArray<double>> a, b;
    if (ms >= 0) {
      a = std::make_unique<dad::DistArray<double>>(src, ms);
      a->fill([](const dad::Point& p) { return double(p[0]); });
    }
    if (md >= 0) b = std::make_unique<dad::DistArray<double>>(dst, md);
    sched::ScheduleCache cache;
    for (int rep = 0; rep < 2; ++rep) {
      const auto& s = cache.get(src, dst, ms, md);
      sched::execute<double>(s, a.get(), b.get(), c, 9);
    }
    world.barrier();
  });

  const char* path = "test_trace_out.json";
  trace::write_chrome_trace(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  std::remove(path);

  // Light-weight structural checks (no JSON library in the image): the
  // document is one object with a traceEvents array of balanced objects.
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  long depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char ch = json[i];
    if (in_string) {
      if (ch == '\\') ++i;
      else if (ch == '"') in_string = false;
      continue;
    }
    if (ch == '"') in_string = true;
    else if (ch == '{' || ch == '[') ++depth;
    else if (ch == '}' || ch == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);

  // The instrumented layers must show up by name.
  EXPECT_NE(json.find("\"sched.build\""), std::string::npos);
  EXPECT_NE(json.find("\"sched.execute\""), std::string::npos);
  EXPECT_NE(json.find("\"sched.cache.hit\""), std::string::npos);
  EXPECT_NE(json.find("\"sched.cache.miss\""), std::string::npos);
  EXPECT_NE(json.find("\"rt.send\""), std::string::npos);
  EXPECT_NE(json.find("\"rt.recv\""), std::string::npos);
  EXPECT_NE(json.find("\"rt.barrier\""), std::string::npos);
  // Counter metadata rides along.
  EXPECT_NE(json.find("counter.rt.messages"), std::string::npos);
}

TEST_F(TraceTest, TailReportShowsRecentEventsPerRank) {
  trace::set_enabled(true);
  trace::set_thread_rank(5);
  trace::instant("t.tail_a", "test", 1);
  trace::instant("t.tail_b", "test", 2);
  const std::string report = trace::tail_report(4);
  EXPECT_NE(report.find("rank 5"), std::string::npos);
  EXPECT_NE(report.find("t.tail_a"), std::string::npos);
  EXPECT_NE(report.find("t.tail_b"), std::string::npos);
  trace::set_thread_rank(-1);
}

}  // namespace
