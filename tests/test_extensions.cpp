// Tests for the paper's flagged extensions: the particle-based container
// (§4.1, "under development") and the filter-pipeline / super-component
// machinery (§6, future work).

#include <gtest/gtest.h>

#include <random>

#include "core/particle_set.hpp"
#include "core/pipeline.hpp"
#include "rt/runtime.hpp"

namespace core = mxn::core;
namespace dad = mxn::dad;
namespace rt = mxn::rt;
using dad::AxisDist;
using dad::Point;

namespace {

struct Particle {
  double x = 0;
  double y = 0;
  int id = 0;
};

Point cell_of(const Particle& p) {
  return Point{static_cast<dad::Index>(p.x), static_cast<dad::Index>(p.y)};
}

}  // namespace

// ---------------------------------------------------------------------------
// ParticleSet
// ---------------------------------------------------------------------------

TEST(ParticleSet, MigrateBringsEveryParticleHome) {
  auto desc = dad::make_regular(std::vector<AxisDist>{
      AxisDist::block(8, 2), AxisDist::block(8, 2)});
  rt::spawn(4, [&](rt::Communicator& world) {
    core::ParticleSet<Particle> set(desc, world.rank());
    // Every rank seeds particles scattered over the WHOLE domain.
    std::mt19937 rng(world.rank() + 1);
    std::uniform_real_distribution<double> coord(0.0, 8.0);
    for (int i = 0; i < 50; ++i)
      set.particles().push_back(
          {coord(rng), coord(rng), world.rank() * 1000 + i});
    EXPECT_GT(set.misplaced(cell_of), 0u);

    set.migrate(world, cell_of, 500);

    EXPECT_EQ(set.misplaced(cell_of), 0u);
    for (const auto& p : set.particles())
      EXPECT_EQ(desc->owner(cell_of(p)), world.rank());
    // Conservation: the total particle count is unchanged.
    const int total = world.allreduce(
        static_cast<int>(set.particles().size()),
        [](int a, int b) { return a + b; });
    EXPECT_EQ(total, 200);
  });
}

TEST(ParticleSet, MigrateIsIdempotentWhenHome) {
  auto desc = dad::make_regular(std::vector<AxisDist>{AxisDist::block(4, 2)});
  rt::spawn(2, [&](rt::Communicator& world) {
    core::ParticleSet<Particle> set(desc, world.rank());
    set.particles().push_back({world.rank() == 0 ? 0.5 : 2.5, 0, 7});
    set.migrate(world, [](const Particle& p) {
      return Point{static_cast<dad::Index>(p.x)};
    }, 501);
    ASSERT_EQ(set.particles().size(), 1u);
    EXPECT_EQ(set.particles()[0].id, 7);
  });
}

TEST(ParticleSet, MxNTransferReownsByDestinationDecomposition) {
  // Source: 2 ranks, row blocks. Destination: 3 ranks, column blocks.
  auto src_desc = dad::make_regular(std::vector<AxisDist>{
      AxisDist::block(6, 2), AxisDist::collapsed(6)});
  auto dst_desc = dad::make_regular(std::vector<AxisDist>{
      AxisDist::collapsed(6), AxisDist::block(6, 3)});
  rt::spawn(5, [&](rt::Communicator& world) {
    mxn::sched::Coupling c = mxn::sched::split_coupling(world, 2, 3);
    const int ms = c.my_src_rank(), md = c.my_dst_rank();
    std::unique_ptr<core::ParticleSet<Particle>> src, dst;
    if (ms >= 0) {
      src = std::make_unique<core::ParticleSet<Particle>>(src_desc, ms);
      // 18 particles per source rank, all inside its own rows.
      for (int i = 0; i < 18; ++i)
        src->particles().push_back(
            {ms * 3 + (i % 3) + 0.5, double(i % 6) + 0.5, ms * 100 + i});
    }
    if (md >= 0)
      dst = std::make_unique<core::ParticleSet<Particle>>(dst_desc, md);

    core::ParticleSet<Particle>::transfer(src.get(), dst.get(), c, cell_of,
                                          510);

    if (ms >= 0) {
      EXPECT_TRUE(src->particles().empty());
    }
    if (md >= 0) {
      for (const auto& p : dst->particles())
        EXPECT_EQ(dst_desc->owner(cell_of(p)), md);
      const auto cohort_total = static_cast<int>(dst->particles().size());
      EXPECT_EQ(cohort_total, 12);  // 36 particles over 3 column ranks
    }
  });
}

TEST(ParticleSet, MigrateValidatesCohort) {
  auto desc = dad::make_regular(std::vector<AxisDist>{AxisDist::block(4, 2)});
  rt::spawn(3, [&](rt::Communicator& world) {
    core::ParticleSet<Particle> set(desc, 0);
    EXPECT_THROW(set.migrate(world,
                             [](const Particle& p) {
                               return Point{static_cast<dad::Index>(p.x)};
                             },
                             520),
                 rt::UsageError);
  });
}

// ---------------------------------------------------------------------------
// Pipeline
// ---------------------------------------------------------------------------

TEST(Pipeline, StagesApplyInOrder) {
  core::Pipeline p;
  p.add(core::scale_stage(2.0)).add(core::offset_stage(1.0));
  std::vector<double> v = {1.0, 2.0};
  p.apply(v);
  EXPECT_DOUBLE_EQ(v[0], 3.0);  // 1*2 + 1
  EXPECT_DOUBLE_EQ(v[1], 5.0);
}

TEST(Pipeline, FuseComposesAffineRunsExactly) {
  core::Pipeline p;
  p.add(core::scale_stage(2.0))
      .add(core::offset_stage(3.0))
      .add(core::scale_stage(-1.0))
      .add(core::offset_stage(0.5));
  auto f = p.fuse();
  EXPECT_EQ(f.size(), 1u);
  std::vector<double> a = {0.0, 1.0, -4.5}, b = a;
  p.apply(a);
  f.apply(b);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(Pipeline, NonAffineStagesAreFusionBarriers) {
  core::Pipeline p;
  p.add(core::scale_stage(2.0))
      .add(core::offset_stage(1.0))
      .add(core::clamp_stage(0.0, 10.0))
      .add(core::scale_stage(0.5));
  auto f = p.fuse();
  EXPECT_EQ(f.size(), 3u);  // fused-affine, clamp, affine
  std::vector<double> a = {-3.0, 4.0, 100.0}, b = a;
  p.apply(a);
  f.apply(b);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(Pipeline, UnitConversionStage) {
  core::Pipeline p;
  p.add(core::kelvin_to_fahrenheit_stage());
  std::vector<double> v = {273.15, 373.15};
  p.apply(v);
  EXPECT_NEAR(v[0], 32.0, 1e-9);
  EXPECT_NEAR(v[1], 212.0, 1e-9);
}

TEST(Pipeline, RejectsNullStage) {
  core::Pipeline p;
  EXPECT_THROW(p.add(core::TransformStage{}), rt::UsageError);
}

TEST(Pipeline, DescribeListsStages) {
  core::Pipeline p;
  p.add(core::scale_stage(3.0)).add(core::clamp_stage(0, 1));
  EXPECT_NE(p.describe().find("scale"), std::string::npos);
  EXPECT_NE(p.describe().find("clamp"), std::string::npos);
}
