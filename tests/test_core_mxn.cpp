// Tests for the CCA component model (direct-connected framework, ports,
// cohorts) and the M×N data-redistribution component (src/core).

#include <gtest/gtest.h>

#include <memory>

#include "core/framework.hpp"
#include "core/mxn_component.hpp"
#include "rt/runtime.hpp"

namespace core = mxn::core;
namespace dad = mxn::dad;
namespace rt = mxn::rt;
using dad::AxisDist;
using dad::Point;

namespace {

// --- toy components for framework tests -------------------------------------

class CounterPort : public core::Port {
 public:
  virtual int increment() = 0;
};

class CounterComponent : public core::Component, public CounterPort {
 public:
  void set_services(core::Services& s) override {
    s.add_provides_port("counter", "test.Counter",
                        std::shared_ptr<core::Port>(
                            static_cast<CounterPort*>(this), [](auto*) {}));
  }
  int increment() override { return ++count_; }
  int count_ = 0;
};

class DriverComponent : public core::Component, public core::GoPort {
 public:
  void set_services(core::Services& s) override {
    svc_ = &s;
    s.register_uses_port("work", "test.Counter");
    s.add_provides_port("go", "cca.Go",
                        std::shared_ptr<core::Port>(
                            static_cast<core::GoPort*>(this), [](auto*) {}));
  }
  int go() override {
    auto port = svc_->get_port_as<CounterPort>("work");
    for (int i = 0; i < 3; ++i) last_ = port->increment();
    return 0;
  }
  core::Services* svc_ = nullptr;
  int last_ = 0;
};

double value_at(const Point& p) { return 7.0 * p[0] + p[1]; }

}  // namespace

// ---------------------------------------------------------------------------
// Direct-connected framework
// ---------------------------------------------------------------------------

TEST(Framework, ConnectAndInvokeIsADirectCall) {
  rt::spawn(1, [](rt::Communicator& world) {
    core::Framework fw(world);
    auto counter = std::make_shared<CounterComponent>();
    auto driver = std::make_shared<DriverComponent>();
    fw.instantiate("counter", counter);
    fw.instantiate("driver", driver);
    fw.connect("driver", "work", "counter", "counter");
    EXPECT_EQ(fw.go("driver"), 0);
    EXPECT_EQ(counter->count_, 3);
    EXPECT_EQ(driver->last_, 3);
  });
}

TEST(Framework, GoAllRunsEveryGoPort) {
  rt::spawn(1, [](rt::Communicator& world) {
    core::Framework fw(world);
    auto counter = std::make_shared<CounterComponent>();
    auto d1 = std::make_shared<DriverComponent>();
    auto d2 = std::make_shared<DriverComponent>();
    fw.instantiate("counter", counter);
    fw.instantiate("d1", d1);
    fw.instantiate("d2", d2);
    fw.connect("d1", "work", "counter", "counter");
    fw.connect("d2", "work", "counter", "counter");
    EXPECT_EQ(fw.go_all(), 0);
    EXPECT_EQ(counter->count_, 6);
  });
}

TEST(Framework, TypeMismatchRejected) {
  rt::spawn(1, [](rt::Communicator& world) {
    core::Framework fw(world);
    fw.instantiate("counter", std::make_shared<CounterComponent>());
    fw.instantiate("driver", std::make_shared<DriverComponent>());
    EXPECT_THROW(fw.connect("driver", "work", "counter", "nope"),
                 rt::UsageError);
    // Port exists but type string differs.
    class Bogus : public core::Component {
      void set_services(core::Services& s) override {
        s.register_uses_port("work", "test.OtherType");
      }
    };
    fw.instantiate("bogus", std::make_shared<Bogus>());
    EXPECT_THROW(fw.connect("bogus", "work", "counter", "counter"),
                 rt::UsageError);
  });
}

TEST(Framework, UnconnectedUsesPortThrowsOnGet) {
  rt::spawn(1, [](rt::Communicator& world) {
    core::Framework fw(world);
    auto driver = std::make_shared<DriverComponent>();
    fw.instantiate("driver", driver);
    EXPECT_THROW(fw.go("driver"), rt::UsageError);
  });
}

TEST(Framework, DisconnectAndReconnect) {
  rt::spawn(1, [](rt::Communicator& world) {
    core::Framework fw(world);
    auto counter = std::make_shared<CounterComponent>();
    auto driver = std::make_shared<DriverComponent>();
    fw.instantiate("counter", counter);
    fw.instantiate("driver", driver);
    fw.connect("driver", "work", "counter", "counter");
    fw.disconnect("driver", "work");
    EXPECT_THROW(fw.go("driver"), rt::UsageError);
    fw.connect("driver", "work", "counter", "counter");
    EXPECT_EQ(fw.go("driver"), 0);
  });
}

TEST(Framework, CohortSpansFrameworkProcesses) {
  rt::spawn(4, [](rt::Communicator& world) {
    core::Framework fw(world);
    class CohortProbe : public core::Component {
     public:
      void set_services(core::Services& s) override {
        auto c = s.cohort();
        sum = c.allreduce(c.rank(), [](int a, int b) { return a + b; });
      }
      int sum = -1;
    };
    auto probe = std::make_shared<CohortProbe>();
    fw.instantiate("probe", probe);
    EXPECT_EQ(probe->sum, 6);
  });
}

TEST(Framework, DuplicateInstanceNameRejected) {
  rt::spawn(1, [](rt::Communicator& world) {
    core::Framework fw(world);
    fw.instantiate("c", std::make_shared<CounterComponent>());
    EXPECT_THROW(fw.instantiate("c", std::make_shared<CounterComponent>()),
                 rt::UsageError);
  });
}

// ---------------------------------------------------------------------------
// MxN component
// ---------------------------------------------------------------------------

namespace {

/// Spawn m+n processes with paired MxN components and hand each process its
/// component, side and cohort communicator.
void with_paired_mxn(
    int m, int n,
    const std::function<void(core::MxNComponent&, int /*side*/,
                             rt::Communicator& /*cohort*/)>& body) {
  rt::spawn(m + n, [&](rt::Communicator& world) {
    auto comp = core::make_paired_mxn(world, m, n);
    auto cohort = world.split(world.rank() < m ? 0 : 1, world.rank());
    body(*comp, world.rank() < m ? 0 : 1, cohort);
  });
}

}  // namespace

TEST(MxNComponent, OneShotTransferMovesField) {
  const int m = 3, n = 2;
  auto src_desc = dad::make_regular(std::vector<AxisDist>{
      AxisDist::block(12, m), AxisDist::collapsed(5)});
  auto dst_desc = dad::make_regular(std::vector<AxisDist>{
      AxisDist::cyclic(12, n), AxisDist::collapsed(5)});
  with_paired_mxn(m, n, [&](core::MxNComponent& mxn, int side,
                            rt::Communicator& cohort) {
    dad::DistArray<double> arr(side == 0 ? src_desc : dst_desc,
                               cohort.rank());
    if (side == 0) arr.fill(value_at);
    mxn.register_field(core::make_field(
        "temperature", &arr,
        side == 0 ? core::AccessMode::Read : core::AccessMode::Write));

    core::ConnectionSpec spec;
    spec.src_field = spec.dst_field = "temperature";
    spec.src_side = 0;
    spec.one_shot = true;
    auto id = mxn.establish(spec);
    EXPECT_TRUE(mxn.active(id));

    EXPECT_EQ(mxn.data_ready("temperature"), 1);
    EXPECT_FALSE(mxn.active(id));

    if (side == 1) {
      arr.for_each_owned([&](const Point& p, const double& v) {
        EXPECT_DOUBLE_EQ(v, value_at(p));
      });
      EXPECT_EQ(mxn.stats(id).transfers, 1u);
      EXPECT_EQ(mxn.stats(id).elements, 12u * 5u / n);
    }

    // A retired one-shot connection moves nothing further.
    EXPECT_EQ(mxn.data_ready("temperature"), 0);
  });
}

TEST(MxNComponent, PersistentPeriodicTransfers) {
  const int m = 2, n = 2;
  auto src_desc = dad::make_regular(std::vector<AxisDist>{
      AxisDist::block(8, m)});
  auto dst_desc = dad::make_regular(std::vector<AxisDist>{
      AxisDist::block(8, n)});
  with_paired_mxn(m, n, [&](core::MxNComponent& mxn, int side,
                            rt::Communicator& cohort) {
    dad::DistArray<int> arr(side == 0 ? src_desc : dst_desc, cohort.rank());
    mxn.register_field(
        core::make_field("field", &arr,
                         side == 0 ? core::AccessMode::Read
                                   : core::AccessMode::Write));
    core::ConnectionSpec spec;
    spec.src_field = spec.dst_field = "field";
    spec.src_side = 0;
    spec.one_shot = false;
    spec.period = 3;  // source exports every 3rd iteration
    auto id = mxn.establish(spec);

    const int iterations = 9;
    if (side == 0) {
      for (int it = 1; it <= iterations; ++it) {
        arr.fill([&](const Point& p) {
          return static_cast<int>(100 * it + p[0]);
        });
        mxn.data_ready("field");
      }
      EXPECT_EQ(mxn.stats(id).transfers, 3u);
    } else {
      for (int t = 1; t <= iterations / 3; ++t) {
        mxn.data_ready("field");
        const int it = 3 * t;  // every 3rd source iteration arrives
        arr.for_each_owned([&](const Point& p, const int& v) {
          EXPECT_EQ(v, 100 * it + static_cast<int>(p[0]));
        });
      }
      EXPECT_EQ(mxn.stats(id).transfers, 3u);
    }
    EXPECT_TRUE(mxn.active(id));
    mxn.disconnect(id);
    EXPECT_FALSE(mxn.active(id));
  });
}

TEST(MxNComponent, HandshakeBoundsProducerSkew) {
  // With handshake on, the source's dataReady cannot complete before the
  // destination has acknowledged; we verify the transfer count stays in
  // lockstep even when the consumer is "slow".
  const int m = 2, n = 1;
  auto src_desc = dad::make_regular(std::vector<AxisDist>{
      AxisDist::block(10, m)});
  auto dst_desc = dad::make_regular(std::vector<AxisDist>{
      AxisDist::collapsed(10)});
  with_paired_mxn(m, n, [&](core::MxNComponent& mxn, int side,
                            rt::Communicator& cohort) {
    dad::DistArray<double> arr(side == 0 ? src_desc : dst_desc,
                               cohort.rank());
    if (side == 0) arr.fill(value_at);
    mxn.register_field(
        core::make_field("f", &arr,
                         side == 0 ? core::AccessMode::Read
                                   : core::AccessMode::Write));
    core::ConnectionSpec spec;
    spec.src_field = spec.dst_field = "f";
    spec.src_side = 0;
    spec.one_shot = false;
    spec.handshake = true;
    auto id = mxn.establish(spec);
    for (int it = 0; it < 4; ++it) mxn.data_ready("f");
    EXPECT_EQ(mxn.stats(id).transfers, 4u);
  });
}

TEST(MxNComponent, ReverseDirectionConnection) {
  // src_side == 1: side 1 exports, side 0 imports.
  const int m = 2, n = 3;
  auto a_desc = dad::make_regular(std::vector<AxisDist>{
      AxisDist::block(9, m)});
  auto b_desc = dad::make_regular(std::vector<AxisDist>{
      AxisDist::block(9, n)});
  with_paired_mxn(m, n, [&](core::MxNComponent& mxn, int side,
                            rt::Communicator& cohort) {
    dad::DistArray<double> arr(side == 0 ? a_desc : b_desc, cohort.rank());
    if (side == 1)
      arr.fill([](const Point& p) { return 3.0 * p[0]; });
    mxn.register_field(core::make_field("f", &arr,
                                        core::AccessMode::ReadWrite));
    core::ConnectionSpec spec;
    spec.src_field = spec.dst_field = "f";
    spec.src_side = 1;
    mxn.establish(spec);
    mxn.data_ready("f");
    if (side == 0)
      arr.for_each_owned([](const Point& p, const double& v) {
        EXPECT_DOUBLE_EQ(v, 3.0 * p[0]);
      });
  });
}

TEST(MxNComponent, ProposalInitiatedConnection) {
  // Side 0 proposes; side 1 merely accepts whatever arrives — the legacy-
  // code pattern where one side (or a third party driving it) decides the
  // coupling.
  const int m = 2, n = 2;
  auto src_desc = dad::make_regular(std::vector<AxisDist>{
      AxisDist::block(6, m)});
  auto dst_desc = dad::make_regular(std::vector<AxisDist>{
      AxisDist::cyclic(6, n)});
  with_paired_mxn(m, n, [&](core::MxNComponent& mxn, int side,
                            rt::Communicator& cohort) {
    dad::DistArray<float> arr(side == 0 ? src_desc : dst_desc,
                              cohort.rank());
    if (side == 0)
      arr.fill([](const Point& p) { return static_cast<float>(p[0]); });
    mxn.register_field(core::make_field("f", &arr,
                                        core::AccessMode::ReadWrite));
    core::ConnectionId id;
    if (side == 0) {
      core::ConnectionSpec spec;
      spec.src_field = spec.dst_field = "f";
      spec.src_side = 0;
      id = mxn.propose(spec);
    } else {
      id = mxn.accept_proposal();
    }
    mxn.data_ready("f");
    EXPECT_EQ(mxn.stats(id).transfers, 1u);
    if (side == 1)
      arr.for_each_owned([](const Point& p, const float& v) {
        EXPECT_EQ(v, static_cast<float>(p[0]));
      });
  });
}

TEST(MxNComponent, MultipleConnectionsSameField) {
  // One exporter feeds two separate connections (different periods) of the
  // same field to the peer side.
  const int m = 2, n = 2;
  auto src_desc = dad::make_regular(std::vector<AxisDist>{
      AxisDist::block(8, m)});
  auto dst_desc = dad::make_regular(std::vector<AxisDist>{
      AxisDist::block(8, n)});
  with_paired_mxn(m, n, [&](core::MxNComponent& mxn, int side,
                            rt::Communicator& cohort) {
    dad::DistArray<int> a(side == 0 ? src_desc : dst_desc, cohort.rank());
    dad::DistArray<int> b(side == 0 ? src_desc : dst_desc, cohort.rank());
    mxn.register_field(core::make_field("a", &a, core::AccessMode::ReadWrite));
    mxn.register_field(core::make_field("b", &b, core::AccessMode::ReadWrite));
    core::ConnectionSpec s1;
    s1.src_field = "a";
    s1.dst_field = "a";
    s1.src_side = 0;
    s1.one_shot = false;
    core::ConnectionSpec s2 = s1;
    s2.src_field = "a";
    s2.dst_field = "b";
    auto id1 = mxn.establish(s1);
    auto id2 = mxn.establish(s2);
    if (side == 0) {
      a.fill([](const Point& p) { return static_cast<int>(p[0] + 1); });
      EXPECT_EQ(mxn.data_ready("a"), 2);
    } else {
      EXPECT_EQ(mxn.data_ready("a"), 1);
      EXPECT_EQ(mxn.data_ready("b"), 1);
      a.for_each_owned([](const Point& p, const int& v) {
        EXPECT_EQ(v, static_cast<int>(p[0] + 1));
      });
      b.for_each_owned([](const Point& p, const int& v) {
        EXPECT_EQ(v, static_cast<int>(p[0] + 1));
      });
    }
    EXPECT_TRUE(mxn.active(id1));
    EXPECT_TRUE(mxn.active(id2));
  });
}

TEST(MxNComponent, AccessModeEnforced) {
  const int m = 1, n = 1;
  auto desc = dad::make_regular(std::vector<AxisDist>{AxisDist::block(4, 1)});
  with_paired_mxn(m, n, [&](core::MxNComponent& mxn, int side,
                            rt::Communicator& cohort) {
    dad::DistArray<int> arr(desc, cohort.rank());
    // Register with the *wrong* mode for the role each side will play.
    mxn.register_field(core::make_field(
        "f", &arr,
        side == 0 ? core::AccessMode::Write : core::AccessMode::Read));
    core::ConnectionSpec spec;
    spec.src_field = spec.dst_field = "f";
    spec.src_side = 0;
    EXPECT_THROW(mxn.establish(spec), rt::UsageError);
  });
}

TEST(MxNComponent, RegistrationValidation) {
  with_paired_mxn(1, 1, [&](core::MxNComponent& mxn, int /*side*/,
                            rt::Communicator& cohort) {
    auto desc =
        dad::make_regular(std::vector<AxisDist>{AxisDist::block(4, 2)});
    dad::DistArray<int> arr(desc, 0);
    // Descriptor decomposed over 2 ranks but cohort has 1.
    EXPECT_THROW(mxn.register_field(
                     core::make_field("f", &arr, core::AccessMode::Read)),
                 rt::UsageError);
    EXPECT_THROW(mxn.data_ready("ghost"), rt::UsageError);
    EXPECT_THROW(mxn.unregister_field("ghost"), rt::UsageError);
    auto ok = dad::make_regular(std::vector<AxisDist>{AxisDist::block(4, 1)});
    dad::DistArray<int> arr2(ok, cohort.rank());
    mxn.register_field(core::make_field("g", &arr2, core::AccessMode::Read));
    EXPECT_THROW(mxn.register_field(
                     core::make_field("g", &arr2, core::AccessMode::Read)),
                 rt::UsageError);
    mxn.unregister_field("g");
  });
}

TEST(MxNComponent, ProvidesMxNServicePortThroughFramework) {
  // Figure 3 wiring: application components talk to the co-located MxN
  // component through an ordinary CCA port connection.
  const int m = 2, n = 2;
  auto src_desc = dad::make_regular(std::vector<AxisDist>{
      AxisDist::block(8, m)});
  auto dst_desc = dad::make_regular(std::vector<AxisDist>{
      AxisDist::block(8, n)});
  rt::spawn(m + n, [&](rt::Communicator& world) {
    const int side = world.rank() < m ? 0 : 1;
    auto cohort = world.split(side, world.rank());
    core::Framework fw(cohort);  // one framework instance per program

    auto mxn = core::make_paired_mxn(world, m, n);
    fw.instantiate("mxn", mxn);

    class App : public core::Component {
     public:
      void set_services(core::Services& s) override {
        svc = &s;
        s.register_uses_port("coupler", "mxn.MxNService");
      }
      core::Services* svc = nullptr;
    };
    auto app = std::make_shared<App>();
    fw.instantiate("app", app);
    fw.connect("app", "coupler", "mxn", "mxn");

    auto port = app->svc->get_port_as<core::MxNService>("coupler");
    dad::DistArray<double> arr(side == 0 ? src_desc : dst_desc,
                               cohort.rank());
    if (side == 0) arr.fill(value_at);
    port->register_field(
        core::make_field("f", &arr, core::AccessMode::ReadWrite));
    core::ConnectionSpec spec;
    spec.src_field = spec.dst_field = "f";
    spec.src_side = 0;
    port->establish(spec);
    port->data_ready("f");
    if (side == 1)
      arr.for_each_owned([&](const Point& p, const double& v) {
        EXPECT_DOUBLE_EQ(v, value_at(p));
      });
  });
}

// Parameterized sweep over (M, N) shapes, including the paper's 8x27.
class MxNShapeSweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(MxNShapeSweep, BlockToBlockAcrossShapes) {
  const auto [m, n] = GetParam();
  const dad::Index extent = 36;
  auto src_desc = dad::make_regular(std::vector<AxisDist>{
      AxisDist::block(extent, m)});
  auto dst_desc = dad::make_regular(std::vector<AxisDist>{
      AxisDist::block(extent, n)});
  with_paired_mxn(m, n, [&](core::MxNComponent& mxn, int side,
                            rt::Communicator& cohort) {
    dad::DistArray<double> arr(side == 0 ? src_desc : dst_desc,
                               cohort.rank());
    if (side == 0)
      arr.fill([](const Point& p) { return 2.5 * p[0]; });
    mxn.register_field(
        core::make_field("f", &arr, core::AccessMode::ReadWrite));
    core::ConnectionSpec spec;
    spec.src_field = spec.dst_field = "f";
    spec.src_side = 0;
    mxn.establish(spec);
    mxn.data_ready("f");
    if (side == 1)
      arr.for_each_owned([](const Point& p, const double& v) {
        EXPECT_DOUBLE_EQ(v, 2.5 * p[0]);
      });
  });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MxNShapeSweep,
    ::testing::Values(std::pair{1, 4}, std::pair{4, 1}, std::pair{2, 3},
                      std::pair{3, 2}, std::pair{4, 4}, std::pair{8, 27}));

TEST(MxNComponent, CheckpointRestoreRoundTrip) {
  // CUMULVS-style fault tolerance: snapshot registered fields, clobber
  // them (the "failure"), restore, and verify bit-exact recovery.
  const int m = 2, n = 1;
  auto desc = dad::make_regular(std::vector<AxisDist>{
      AxisDist::block(10, m), AxisDist::collapsed(3)});
  auto ser = dad::make_regular(std::vector<AxisDist>{
      AxisDist::collapsed(10), AxisDist::collapsed(3)});
  with_paired_mxn(m, n, [&](core::MxNComponent& mxn, int side,
                            rt::Communicator& cohort) {
    dad::DistArray<double> temp(side == 0 ? desc : ser, cohort.rank());
    dad::DistArray<double> salt(side == 0 ? desc : ser, cohort.rank());
    if (side == 0) {
      temp.fill([](const Point& p) { return 1.5 * p[0] + p[1]; });
      salt.fill([](const Point& p) { return 40.0 - p[0]; });
    }
    mxn.register_field(
        core::make_field("temp", &temp, core::AccessMode::ReadWrite));
    mxn.register_field(
        core::make_field("salt", &salt, core::AccessMode::ReadWrite));

    if (side == 0) {
      const auto blob = mxn.checkpoint_fields();
      for (auto& v : temp.local()) v = -777.0;  // simulated corruption
      for (auto& v : salt.local()) v = -888.0;
      mxn.restore_fields(blob);
      temp.for_each_owned([](const Point& p, const double& v) {
        EXPECT_DOUBLE_EQ(v, 1.5 * p[0] + p[1]);
      });
      salt.for_each_owned([](const Point& p, const double& v) {
        EXPECT_DOUBLE_EQ(v, 40.0 - p[0]);
      });
    }
  });
}

TEST(MxNComponent, RestoreValidatesShapeAndNames) {
  with_paired_mxn(1, 1, [&](core::MxNComponent& mxn, int /*side*/,
                            rt::Communicator& cohort) {
    auto d1 = dad::make_regular(std::vector<AxisDist>{AxisDist::block(8, 1)});
    auto d2 = dad::make_regular(std::vector<AxisDist>{AxisDist::block(4, 1)});
    dad::DistArray<double> a(d1, cohort.rank());
    mxn.register_field(core::make_field("a", &a, core::AccessMode::ReadWrite));
    const auto blob = mxn.checkpoint_fields();

    // Unknown field name after re-registration under another name.
    mxn.unregister_field("a");
    dad::DistArray<double> b(d2, cohort.rank());
    mxn.register_field(core::make_field("b", &b, core::AccessMode::ReadWrite));
    EXPECT_THROW(mxn.restore_fields(blob), rt::UsageError);

    // Same name, wrong decomposition size.
    mxn.unregister_field("b");
    dad::DistArray<double> a2(d2, cohort.rank());
    mxn.register_field(core::make_field("a", &a2, core::AccessMode::ReadWrite));
    EXPECT_THROW(mxn.restore_fields(blob), rt::UsageError);
  });
}

TEST(MxNComponent, WriteOnlyFieldsSkippedInCheckpoint) {
  with_paired_mxn(1, 1, [&](core::MxNComponent& mxn, int /*side*/,
                            rt::Communicator& cohort) {
    auto d = dad::make_regular(std::vector<AxisDist>{AxisDist::block(4, 1)});
    dad::DistArray<double> r(d, cohort.rank()), w(d, cohort.rank());
    r.local()[0] = 3.25;
    mxn.register_field(core::make_field("r", &r, core::AccessMode::Read));
    mxn.register_field(core::make_field("w", &w, core::AccessMode::Write));
    const auto blob = mxn.checkpoint_fields();
    // Only the readable field is in the blob; restoring fails because "r"
    // is read-only (not writable) — restore into a ReadWrite registration.
    mxn.unregister_field("r");
    dad::DistArray<double> r2(d, cohort.rank());
    mxn.register_field(core::make_field("r", &r2, core::AccessMode::ReadWrite));
    mxn.restore_fields(blob);
    EXPECT_DOUBLE_EQ(r2.local()[0], 3.25);
    EXPECT_DOUBLE_EQ(w.local()[0], 0.0);  // untouched
  });
}
