// Chaos / soak tests for the fault-injection harness (src/rt/fault) and the
// failure-semantics hardening built on it: typed per-call deadlines, the
// reliable two-phase M×N transfer, PRMI epoch-keyed retry, and DCA coupling
// under timing chaos. Every scenario runs under a seeded FaultPlan and must
// either complete correctly or raise a typed error on every affected rank —
// no hangs, no partially injected destination state.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/mxn_component.hpp"
#include "dca/framework.hpp"
#include "prmi/distributed_framework.hpp"
#include "rt/runtime.hpp"
#include "sidl/parser.hpp"
#include "trace/trace.hpp"

namespace core = mxn::core;
namespace dad = mxn::dad;
namespace dca = mxn::dca;
namespace prmi = mxn::prmi;
namespace rt = mxn::rt;
namespace trace = mxn::trace;
using dad::AxisDist;
using dad::Point;

namespace {

std::uint64_t ctr(const char* name) { return trace::counter(name).value(); }

/// Classify an escaped runtime error so ranks can record "I failed, typed"
/// without the test caring which deadline fired first.
std::string classify(const std::function<void()>& body) {
  try {
    body();
    return "ok";
  } catch (const rt::KilledError&) {
    return "killed";
  } catch (const core::TransferError&) {
    return "transfer";
  } catch (const rt::TimeoutError&) {
    return "timeout";
  } catch (const rt::DeadlockError&) {
    return "deadlock";
  } catch (const rt::AbortError&) {
    return "abort";
  }
}

std::vector<int> iota_ranks(int from, int count) {
  std::vector<int> r(count);
  for (int i = 0; i < count; ++i) r[i] = from + i;
  return r;
}

}  // namespace

// ---------------------------------------------------------------------------
// FaultPlan spec parsing
// ---------------------------------------------------------------------------

TEST(FaultPlan, ParseAndRoundTrip) {
  auto p = rt::FaultPlan::parse(
      "seed=7,drop=0.25,dup=0.5,reorder=0.125,delay=1,delay_ms=3,"
      "kill_rank=2,kill_after=40,min_tag=1000");
  EXPECT_EQ(p.seed, 7u);
  EXPECT_DOUBLE_EQ(p.drop, 0.25);
  EXPECT_DOUBLE_EQ(p.dup, 0.5);
  EXPECT_DOUBLE_EQ(p.reorder, 0.125);
  EXPECT_DOUBLE_EQ(p.delay, 1.0);
  EXPECT_EQ(p.delay_ms, 3);
  EXPECT_EQ(p.kill_rank, 2);
  EXPECT_EQ(p.kill_after, 40);
  EXPECT_EQ(p.min_tag, 1000);
  EXPECT_TRUE(p.enabled());

  // to_string() emits valid spec syntax.
  auto q = rt::FaultPlan::parse(p.to_string());
  EXPECT_EQ(q.seed, p.seed);
  EXPECT_DOUBLE_EQ(q.drop, p.drop);
  EXPECT_EQ(q.kill_after, p.kill_after);
  EXPECT_EQ(q.min_tag, p.min_tag);

  EXPECT_FALSE(rt::FaultPlan{}.enabled());
}

TEST(FaultPlan, KillListParseAndRoundTrip) {
  // Multi-kill syntax: a "kill=" value is a list of rank@after entries.
  auto p = rt::FaultPlan::parse("seed=3,kill=2@40,5@90,min_tag=900");
  ASSERT_EQ(p.kills.size(), 2u);
  EXPECT_EQ(p.kills[0], (rt::KillSpec{2, 40}));
  EXPECT_EQ(p.kills[1], (rt::KillSpec{5, 90}));
  EXPECT_EQ(p.min_tag, 900);
  EXPECT_TRUE(p.enabled());

  // to_string() re-emits the list and parses back to the same plan.
  auto q = rt::FaultPlan::parse(p.to_string());
  EXPECT_EQ(q.kills, p.kills);
  EXPECT_EQ(q.min_tag, p.min_tag);

  // all_kills() merges the legacy pair with the list; when a rank appears
  // in both, the earliest operation index wins.
  rt::FaultPlan m;
  m.kill_rank = 2;
  m.kill_after = 40;
  m.kills = {{5, 90}, {2, 10}};
  const auto all = m.all_kills();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0], (rt::KillSpec{2, 10}));
  EXPECT_EQ(all[1], (rt::KillSpec{5, 90}));
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(rt::FaultPlan::parse("bogus=1"), rt::UsageError);
  EXPECT_THROW(rt::FaultPlan::parse("drop"), rt::UsageError);
  EXPECT_THROW(rt::FaultPlan::parse("drop=abc"), rt::UsageError);
  EXPECT_THROW(rt::FaultPlan::parse("drop=0.5x"), rt::UsageError);
  EXPECT_THROW(rt::FaultPlan::parse("drop=1.5"), rt::UsageError);
  EXPECT_THROW(rt::FaultPlan::parse("dup=-0.1"), rt::UsageError);
  EXPECT_THROW(rt::FaultPlan::parse("kill=2"), rt::UsageError);
  EXPECT_THROW(rt::FaultPlan::parse("kill=2@"), rt::UsageError);
  EXPECT_THROW(rt::FaultPlan::parse("kill=x@4"), rt::UsageError);
}

TEST(FaultPlan, FromEnvironment) {
  ::setenv("MXN_FAULTS", "seed=11,drop=0.1", 1);
  auto p = rt::FaultPlan::from_env();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->seed, 11u);
  EXPECT_DOUBLE_EQ(p->drop, 0.1);
  ::unsetenv("MXN_FAULTS");
  EXPECT_FALSE(rt::FaultPlan::from_env().has_value());
}

// ---------------------------------------------------------------------------
// Runtime-level failure semantics
// ---------------------------------------------------------------------------

TEST(FaultRt, RecvTimeoutIsTypedAndPerCall) {
  // One stalled rank fails fast with TimeoutError while its sibling keeps
  // working — distinct from the watchdog's all-ranks-idle DeadlockError.
  rt::spawn(2, [](rt::Communicator& world) {
    if (world.rank() == 0) {
      EXPECT_THROW(world.recv(1, 7, 80), rt::TimeoutError);
    }
  });
}

TEST(FaultRt, DropsAreDeterministicPerSeed) {
  constexpr int kMsgs = 40;
  auto run = [](std::uint64_t seed) {
    const auto dropped_before = ctr("fault.dropped");
    std::atomic<int> received{0};
    rt::spawn(
        2,
        [&](rt::Communicator& world) {
          if (world.rank() == 0) {
            for (int i = 0; i < kMsgs; ++i) world.send_value(1, 7, i);
          } else {
            int last = -1;
            try {
              for (;;) {
                auto m = world.recv(0, 7, 150);
                rt::UnpackBuffer u(m.payload);
                const int v = u.unpack<int>();
                EXPECT_GT(v, last);  // drops never reorder survivors
                last = v;
                ++received;
              }
            } catch (const rt::TimeoutError&) {
              // stream exhausted
            }
          }
        },
        {.faults = rt::FaultPlan{.seed = seed, .drop = 0.3, .min_tag = 1}});
    return std::pair<int, std::uint64_t>(received.load(),
                                         ctr("fault.dropped") - dropped_before);
  };

  auto [recv_a, drop_a] = run(42);
  auto [recv_b, drop_b] = run(42);
  EXPECT_EQ(recv_a, recv_b);  // same seed -> byte-identical fate sequence
  EXPECT_EQ(drop_a, drop_b);
  EXPECT_GT(drop_a, 0u);
  EXPECT_EQ(recv_a + static_cast<int>(drop_a), kMsgs);
}

TEST(FaultRt, DupReorderDelayStillDeliverEverything) {
  // Duplication, reordering and delay are content-preserving: every logical
  // message remains receivable (matched receives pull the right envelope).
  constexpr int kMsgs = 30;
  const auto dup0 = ctr("fault.duplicated");
  const auto reord0 = ctr("fault.reordered");
  rt::spawn(
      2,
      [&](rt::Communicator& world) {
        if (world.rank() == 0) {
          for (int i = 0; i < kMsgs; ++i) world.send_value(1, i + 1, i);
        } else {
          for (int i = 0; i < kMsgs; ++i)
            EXPECT_EQ(world.recv_value<int>(0, i + 1), i);
        }
      },
      {.default_recv_timeout_ms = 2000,
       .faults = rt::FaultPlan{
           .seed = 9, .dup = 0.25, .reorder = 0.25, .delay = 0.2,
           .min_tag = 1}});
  EXPECT_GT(ctr("fault.duplicated") + ctr("fault.reordered"), dup0 + reord0);
}

TEST(FaultRt, KillRaisesTypedErrorsOnEveryRank) {
  // 3-rank message ring; the plan kills rank 1 a few operations in. The
  // killed rank dies with KilledError; the survivors starve and fail their
  // per-call deadlines with TimeoutError. Nobody hangs.
  const auto killed0 = ctr("fault.killed");
  std::array<std::string, 3> outcome;
  rt::spawn(
      3,
      [&](rt::Communicator& world) {
        const int r = world.rank();
        outcome[r] = classify([&] {
          for (int it = 0; it < 10; ++it) {
            world.send_value((r + 1) % 3, 3, it);
            (void)world.recv_value<int>((r + 2) % 3, 3);
          }
        });
      },
      {.default_recv_timeout_ms = 200,
       .faults = rt::FaultPlan{.kill_rank = 1, .kill_after = 4}});

  EXPECT_EQ(outcome[1], "killed");
  EXPECT_EQ(outcome[0], "timeout");
  EXPECT_EQ(outcome[2], "timeout");
  EXPECT_EQ(ctr("fault.killed") - killed0, 1u);
}

TEST(FaultRt, MultiKillFiresEveryScheduledRank) {
  // A kill list takes down two of four ring ranks, each at its own op
  // count; both die typed, the survivors starve typed, and the universe's
  // per-rank death flags name exactly the scheduled victims.
  const auto killed0 = ctr("fault.killed");
  std::array<std::string, 4> outcome;
  std::vector<int> dead_seen;
  EXPECT_THROW(
      rt::spawn(
          4,
          [&](rt::Communicator& world) {
            const int r = world.rank();
            rt::Universe* uni = world.universe();
            outcome[r] = classify([&] {
              for (int it = 0; it < 20; ++it) {
                world.send_value((r + 1) % 4, 3, it);
                // Swallow starvation so a later-scheduled victim keeps
                // making counted ops after an earlier victim dies — only
                // the kill itself may escape.
                try {
                  (void)world.recv_value<int>((r + 3) % 4, 3);
                } catch (const rt::TimeoutError&) {}
              }
            });
            // The runtime notes a death when KilledError UNWINDS the rank's
            // lambda — rethrow so the universe's flags get set (and spawn
            // reports the kill).
            if (outcome[r] == "killed")
              throw rt::KilledError("rethrow scheduled kill");
            if (r == 0) {
              // Both deaths are noted once the killed lambdas unwind.
              for (int i = 0; i < 5000 && uni->dead() < 2; ++i)
                std::this_thread::sleep_for(std::chrono::milliseconds(1));
              dead_seen = uni->dead_ranks();
            }
          },
          {.default_recv_timeout_ms = 100,
           .faults = rt::FaultPlan{.kills = {{1, 4}, {3, 8}}}}),
      rt::KilledError);

  EXPECT_EQ(outcome[1], "killed");
  EXPECT_EQ(outcome[3], "killed");
  EXPECT_EQ(outcome[0], "ok");
  EXPECT_EQ(outcome[2], "ok");
  EXPECT_EQ(ctr("fault.killed") - killed0, 2u);
  EXPECT_EQ(dead_seen, (std::vector<int>{1, 3}));
}

TEST(FaultRt, SurvivorTimeoutNamesDeadRankAndCountsDetection) {
  // Survivor-side death detection: once the runtime has noted a kill, a
  // survivor's timed-out wait names the dead rank in its message and bumps
  // the fault.dead_rank_detected counter.
  const auto detected0 = ctr("fault.dead_rank_detected");
  std::string seen;
  EXPECT_THROW(
      rt::spawn(
          2,
          [&](rt::Communicator& world) {
            const int r = world.rank();
            rt::Universe* uni = world.universe();
            if (r == 1) {
              // First counted op trips the kill immediately; the KilledError
              // unwinds the lambda, which is what notes the death.
              world.send_value(0, 7, 1);
              return;
            }
            for (int i = 0; i < 5000 && uni->dead() == 0; ++i)
              std::this_thread::sleep_for(std::chrono::milliseconds(1));
            ASSERT_EQ(uni->dead(), 1);
            try {
              (void)world.recv_value<int>(1, 9, nullptr, 100);
              FAIL() << "recv from a dead rank must time out";
            } catch (const rt::TimeoutError& e) {
              seen = e.what();
            }
          },
          {.default_recv_timeout_ms = 2000,
           .faults = rt::FaultPlan{.kills = {{1, 0}}}}),
      rt::KilledError);

  EXPECT_NE(seen.find("known dead rank(s): 1"), std::string::npos) << seen;
  EXPECT_NE(seen.find("fault-injected kill"), std::string::npos) << seen;
  EXPECT_GT(ctr("fault.dead_rank_detected"), detected0);
}

TEST(FaultRt, SelfSendsAreExemptFromChaos) {
  // Regression: a Drop injected on a self-send (e.g. a rank's own alltoall
  // entry) deadlocked the rank waiting on its own message. Self-delivery is
  // a local queue push and bypasses the fault block entirely — even under
  // drop = 1.0 a rank can always talk to itself.
  const auto dropped0 = ctr("fault.dropped");
  rt::spawn(
      2,
      [](rt::Communicator& world) {
        for (int i = 0; i < 10; ++i) {
          world.send_value(world.rank(), 5, i);
          EXPECT_EQ(world.recv_value<int>(world.rank(), 5), i);
        }
      },
      {.default_recv_timeout_ms = 300,
       .faults = rt::FaultPlan{.seed = 5, .drop = 1.0, .min_tag = 1}});
  // No send was eligible for the plan, so nothing was dropped.
  EXPECT_EQ(ctr("fault.dropped") - dropped0, 0u);
}

// ---------------------------------------------------------------------------
// Tree collectives under kill plans: an interior node's death must surface
// as KilledError on the dead rank and TimeoutError on exactly the ranks
// whose tree/exchange path runs through it — never a hang.
// ---------------------------------------------------------------------------

TEST(FaultCollectives, BcastInteriorKillStarvesOnlyItsSubtree) {
  // Binomial bcast, n = 8, root 0: rank 2 receives from 0 and forwards to
  // its only child, rank 3. Killing 2 before its first operation starves 3;
  // the other subtrees (1; 4,5,6,7) complete untouched.
  std::array<std::string, 8> outcome;
  rt::spawn(
      8,
      [&](rt::Communicator& world) {
        const int r = world.rank();
        outcome[r] = classify([&] {
          EXPECT_EQ(world.bcast_value(r == 0 ? 99 : -1, 0), 99);
        });
      },
      {.default_recv_timeout_ms = 200,
       .faults = rt::FaultPlan{.kill_rank = 2, .kill_after = 0}});
  EXPECT_EQ(outcome[2], "killed");
  EXPECT_EQ(outcome[3], "timeout");
  for (int r : {0, 1, 4, 5, 6, 7}) EXPECT_EQ(outcome[r], "ok") << "rank " << r;
}

TEST(FaultCollectives, GatherInteriorKillTimesOutAncestors) {
  // Binomial gather toward root 0, n = 8: rank 6 bundles child 7 and ships
  // to rank 4, which ships to the root. Killing 6 at its first operation
  // (the receive from 7) leaves 7 done (its send does not block) but times
  // out 6's ancestors: 4 and the root.
  std::array<std::string, 8> outcome;
  rt::spawn(
      8,
      [&](rt::Communicator& world) {
        outcome[world.rank()] = classify(
            [&] { (void)world.gather(rt::to_bytes(world.rank()), 0); });
      },
      {.default_recv_timeout_ms = 200,
       .faults = rt::FaultPlan{.kill_rank = 6, .kill_after = 0}});
  EXPECT_EQ(outcome[6], "killed");
  EXPECT_EQ(outcome[4], "timeout");
  EXPECT_EQ(outcome[0], "timeout");
  for (int r : {1, 2, 3, 5, 7}) EXPECT_EQ(outcome[r], "ok") << "rank " << r;
}

TEST(FaultCollectives, BarrierKillTimesOutEverySurvivor) {
  // Dissemination barrier: every rank's exit transitively requires a send
  // rooted at every other rank, so a rank killed before its first send
  // times out ALL survivors — the barrier can never falsely complete.
  std::array<std::string, 6> outcome;
  rt::spawn(
      6,
      [&](rt::Communicator& world) {
        outcome[world.rank()] = classify([&] { world.barrier(); });
      },
      {.default_recv_timeout_ms = 200,
       .faults = rt::FaultPlan{.kill_rank = 4, .kill_after = 0}});
  EXPECT_EQ(outcome[4], "killed");
  for (int r : {0, 1, 2, 3, 5})
    EXPECT_EQ(outcome[r], "timeout") << "rank " << r;
}

TEST(FaultCollectives, AllreduceMidExchangeKillPartitionsOutcomes) {
  // Recursive doubling, n = 8. Rank 5's counted ops: round-1 send (0) and
  // receive (1) with partner 4, then the round-2 send to partner 7 — where
  // kill_after = 2 fires, before delivery. Round 2 starves 7; round 3 then
  // starves 5's and 7's round-3 partners (1 and 3). The 0/2/4/6 exchange
  // subgraph never routes through the dead rank and completes.
  std::array<std::string, 8> outcome;
  rt::spawn(
      8,
      [&](rt::Communicator& world) {
        outcome[world.rank()] = classify([&] {
          (void)world.allreduce(world.rank() + 1,
                                [](int a, int b) { return a + b; });
        });
      },
      {.default_recv_timeout_ms = 250,
       .faults = rt::FaultPlan{.kill_rank = 5, .kill_after = 2}});
  EXPECT_EQ(outcome[5], "killed");
  for (int r : {1, 3, 7}) EXPECT_EQ(outcome[r], "timeout") << "rank " << r;
  for (int r : {0, 2, 4, 6}) EXPECT_EQ(outcome[r], "ok") << "rank " << r;
}

// ---------------------------------------------------------------------------
// Reliable M×N transfer under chaos
// ---------------------------------------------------------------------------

namespace {

double value_at(const Point& p) { return 7.0 * p[0] + p[1]; }
constexpr double kSentinel = -7.5;
double sentinel_at(const Point&) { return kSentinel; }

struct MxnRunResult {
  std::array<std::string, 4> outcome;
  std::array<bool, 2> dst_correct{false, false};    // indexed by dst cohort rank
  std::array<bool, 2> dst_untouched{false, false};
};

/// One 2×2 one-shot reliable transfer under `plan`. Per rank: outcome is
/// "ok" or a typed error name; destination ranks additionally report whether
/// their field ended up fully correct or fully untouched (sentinel).
MxnRunResult run_mxn_chaos(const rt::FaultPlan& plan) {
  const int m = 2, n = 2;
  auto src_desc = dad::make_regular(std::vector<AxisDist>{
      AxisDist::block(12, m), AxisDist::collapsed(5)});
  auto dst_desc = dad::make_regular(std::vector<AxisDist>{
      AxisDist::cyclic(12, n), AxisDist::collapsed(5)});
  MxnRunResult res;
  rt::spawn(
      m + n,
      [&](rt::Communicator& world) {
        auto comp = core::make_paired_mxn(world, m, n);
        const int side = world.rank() < m ? 0 : 1;
        auto cohort = world.split(side, world.rank());
        dad::DistArray<double> arr(side == 0 ? src_desc : dst_desc,
                                   cohort.rank());
        arr.fill(side == 0 ? value_at : sentinel_at);
        comp->register_field(core::make_field(
            "f", &arr,
            side == 0 ? core::AccessMode::Read : core::AccessMode::Write));

        res.outcome[world.rank()] = classify([&] {
          core::ConnectionSpec spec;
          spec.src_field = spec.dst_field = "f";
          spec.src_side = 0;
          spec.one_shot = true;
          spec.reliable = true;
          spec.timeout_ms = 120;
          spec.max_retries = 6;
          comp->establish(spec);
          comp->data_ready("f");
        });

        if (side == 1) {
          bool correct = true, untouched = true;
          arr.for_each_owned([&](const Point& p, const double& v) {
            if (v != value_at(p)) correct = false;
            if (v != kSentinel) untouched = false;
          });
          res.dst_correct[cohort.rank()] = correct;
          res.dst_untouched[cohort.rank()] = untouched;
        }
      },
      {.deadlock_timeout_ms = 4000,
       .default_recv_timeout_ms = 400,
       .faults = plan});
  return res;
}

}  // namespace

TEST(FaultMxN, ReliableOneShotUnderChaosSeeds) {
  // Soak: a dozen deterministic drop+dup plans against the reliable one-shot
  // transfer. Invariants, per seed: every rank finishes "ok" or with a typed
  // error (the spawn returning at all proves no hang), and a destination
  // that did not succeed keeps its field byte-identical to the sentinel —
  // the staged-inject guarantee. Retries must absorb most of the chaos.
  const auto retries0 = ctr("mxn.retries");
  const auto dropped0 = ctr("fault.dropped");
  int full_success = 0;
  const int kSeeds = 12;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    // min_tag = 1000 scopes the chaos to M×N connection traffic (descriptor
    // exchange, data, acks, commits) and spares rt collectives.
    auto res = run_mxn_chaos(rt::FaultPlan{
        .seed = static_cast<std::uint64_t>(seed),
        .drop = 0.04,
        .dup = 0.05,
        .min_tag = 1000});

    bool all_ok = true;
    for (int r = 0; r < 4; ++r) {
      EXPECT_NE(res.outcome[r], "");  // every rank reached classification
      if (res.outcome[r] != "ok") all_ok = false;
    }
    if (all_ok) {
      ++full_success;
      EXPECT_TRUE(res.dst_correct[0]);
      EXPECT_TRUE(res.dst_correct[1]);
    }
    // Dst invariant regardless of outcome: fully correct or fully untouched.
    for (int d = 0; d < 2; ++d)
      EXPECT_TRUE(res.dst_correct[d] || res.dst_untouched[d])
          << "destination " << d << " holds partially injected state";
  }
  // With 4% drop and 6 retries the large majority of seeds must complete.
  EXPECT_GE(full_success, kSeeds / 2);
  EXPECT_GT(ctr("fault.dropped"), dropped0);
  EXPECT_GT(ctr("mxn.retries"), retries0);
}

TEST(FaultMxN, KillMidStreamFailsTypedEverywhereThenSurvivorsSucceed) {
  // Acceptance scenario: kill one rank mid-way through a stream of reliable
  // transfers. Every survivor must unwind with a typed error within its
  // deadline (no watchdog hang), the surviving destination must hold a
  // consistent iteration snapshot (never a partial mix), and a retry on the
  // surviving configuration must succeed.
  const int m = 2, n = 2, iters = 50;
  auto src_desc = dad::make_regular(std::vector<AxisDist>{
      AxisDist::block(8, m)});
  // Block → cyclic: every destination receives from BOTH sources, so the
  // kill must fail every surviving participant (no untouched 1:1 pairing).
  auto dst_desc = dad::make_regular(std::vector<AxisDist>{
      AxisDist::cyclic(8, n)});

  std::array<std::string, 4> outcome;
  std::atomic<int> dst_completed{-1};
  std::atomic<bool> dst_consistent{false};

  rt::spawn(
      m + n,
      [&](rt::Communicator& world) {
        auto comp = core::make_paired_mxn(world, m, n);
        const int side = world.rank() < m ? 0 : 1;
        auto cohort = world.split(side, world.rank());
        dad::DistArray<double> arr(side == 0 ? src_desc : dst_desc,
                                   cohort.rank());
        arr.fill(sentinel_at);
        comp->register_field(core::make_field(
            "f", &arr,
            side == 0 ? core::AccessMode::Read : core::AccessMode::Write));

        int completed = 0;
        outcome[world.rank()] = classify([&] {
          core::ConnectionSpec spec;
          spec.src_field = spec.dst_field = "f";
          spec.src_side = 0;
          spec.one_shot = false;
          spec.reliable = true;
          spec.timeout_ms = 150;
          spec.max_retries = 1;
          comp->establish(spec);
          for (int it = 1; it <= iters; ++it) {
            if (side == 0)
              arr.fill([&](const Point& p) { return 100.0 * it + p[0]; });
            comp->data_ready("f");
            completed = it;
          }
        });

        if (side == 1 && world.rank() == 3) {
          // Atomicity: the surviving destination's field is exactly the
          // snapshot of its last completed iteration (or untouched).
          bool consistent = true;
          arr.for_each_owned([&](const Point& p, const double& v) {
            const double want =
                completed == 0 ? kSentinel : 100.0 * completed + p[0];
            if (v != want) consistent = false;
          });
          dst_completed = completed;
          dst_consistent = consistent;
        }
      },
      {.deadlock_timeout_ms = 5000,
       .default_recv_timeout_ms = 400,
       // Kill the destination leader (world rank 2) ~80 counted ops in:
       // establishment is long done, the transfer stream is in flight.
       .faults = rt::FaultPlan{.kill_rank = 2, .kill_after = 80}});

  EXPECT_EQ(outcome[2], "killed");
  for (int r : {0, 1, 3}) {
    EXPECT_NE(outcome[r], "ok") << "rank " << r
                                << " cannot complete 50 transfers through a "
                                   "dead peer";
    EXPECT_TRUE(outcome[r] == "transfer" || outcome[r] == "timeout")
        << "rank " << r << " got '" << outcome[r] << "'";
  }
  EXPECT_LT(dst_completed.load(), iters);
  EXPECT_TRUE(dst_consistent.load());

  // Retry on the surviving configuration: the application re-couples with a
  // destination decomposition that excludes the dead rank and transfers the
  // same field successfully.
  auto dst1_desc = dad::make_regular(std::vector<AxisDist>{
      AxisDist::block(8, 1)});
  rt::spawn(m + 1, [&](rt::Communicator& world) {
    auto comp = core::make_paired_mxn(world, m, 1);
    const int side = world.rank() < m ? 0 : 1;
    auto cohort = world.split(side, world.rank());
    dad::DistArray<double> arr(side == 0 ? src_desc : dst1_desc,
                               cohort.rank());
    arr.fill(side == 0 ? value_at : sentinel_at);
    comp->register_field(core::make_field(
        "f", &arr,
        side == 0 ? core::AccessMode::Read : core::AccessMode::Write));
    core::ConnectionSpec spec;
    spec.src_field = spec.dst_field = "f";
    spec.src_side = 0;
    spec.one_shot = true;
    spec.reliable = true;
    spec.timeout_ms = 500;
    comp->establish(spec);
    EXPECT_EQ(comp->data_ready("f"), 1);
    if (side == 1)
      arr.for_each_owned([](const Point& p, const double& v) {
        EXPECT_DOUBLE_EQ(v, value_at(p));
      });
  });
}

// ---------------------------------------------------------------------------
// PRMI invocation retry under chaos
// ---------------------------------------------------------------------------

namespace {

const char* kEngineSidl = R"(
  package chaos {
    interface Engine {
      collective double scale_sum(in double factor, in int count);
      independent int ping(in int token);
    }
  }
)";

}  // namespace

TEST(FaultPrmi, InvokeRetriesThroughDupAndDrop) {
  // 2 caller ranks × 2 callee ranks, 5% drop + 5% dup on every PRMI message
  // (min_tag = 1<<20 scopes chaos to invocation headers and replies). The
  // epoch-keyed retry plus servant-side dedup must deliver exactly-once
  // semantics: every collective and independent call returns the correct
  // value, with retries and deduplicated requests visible in the registry.
  const auto retries0 = ctr("prmi.retries");
  const auto dropped0 = ctr("fault.dropped");
  const int kCalls = 10, kSeeds = 8;
  trace::set_enabled(true);

  for (int seed = 1; seed <= kSeeds; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    std::array<std::string, 4> outcome;
    outcome.fill("ok");
    rt::spawn(
        4,
        [&](rt::Communicator& world) {
          prmi::DistributedFramework fw(world);
          fw.instantiate("client", iota_ranks(0, 2));
          fw.instantiate("server", iota_ranks(2, 2));
          if (fw.member_of("server")) {
            auto pkg = mxn::sidl::parse_package(kEngineSidl);
            auto servant =
                std::make_shared<prmi::Servant>(pkg.interface("Engine"));
            servant->bind("scale_sum", [](prmi::CalleeContext& ctx,
                                          std::vector<prmi::Value>& args)
                              -> prmi::Value {
              const double f = std::get<double>(args[0]);
              const int c = std::get<std::int32_t>(args[1]);
              return ctx.cohort.allreduce(
                  f * c * (ctx.cohort.rank() + 1),
                  [](double a, double b) { return a + b; });
            });
            servant->bind("ping", [](prmi::CalleeContext&,
                                     std::vector<prmi::Value>& args)
                              -> prmi::Value {
              return std::int32_t(std::get<std::int32_t>(args[0]) + 1);
            });
            fw.add_provides("server", "engine", servant);
          } else {
            auto pkg = mxn::sidl::parse_package(kEngineSidl);
            fw.register_uses("client", "engine", pkg.interface("Engine"));
          }
          fw.connect("client", "engine", "server", "engine");

          outcome[world.rank()] = classify([&] {
            if (fw.member_of("server")) {
              // Serve until the clients' shutdown notice; if that notice is
              // itself dropped, the idle deadline ends the loop typed.
              try {
                fw.serve("server", -1);
              } catch (const rt::TimeoutError&) {
              }
            } else {
              auto cohort = fw.cohort("client");
              auto port = fw.get_port("client", "engine");
              port->set_retry_policy(prmi::RetryPolicy{
                  .timeout_ms = 120, .max_retries = 6, .backoff_ms = 2});
              for (int i = 1; i <= kCalls; ++i) {
                auto r = port->call("scale_sum", {double(i), std::int32_t{3}});
                // allreduce over 2 callee ranks: i*3*(1+2)
                EXPECT_DOUBLE_EQ(std::get<double>(r.ret), i * 9.0);
                auto p = port->call_independent("ping", {std::int32_t(10 * i)},
                                                cohort.rank() % 2);
                EXPECT_EQ(std::get<std::int32_t>(p.ret), 10 * i + 1);
              }
              cohort.barrier();  // quiesce before the shutdown notice
              port->shutdown_provider();
            }
          });
        },
        {.deadlock_timeout_ms = 8000,
         .default_recv_timeout_ms = 2500,
         .faults = rt::FaultPlan{.seed = static_cast<std::uint64_t>(seed),
                                 .drop = 0.05,
                                 .dup = 0.05,
                                 .min_tag = 1 << 20},
         .trace = true});
    for (int r = 0; r < 4; ++r) EXPECT_EQ(outcome[r], "ok");
  }

  // The chaos must actually have fired, and the retry machinery absorbed it.
  EXPECT_GT(ctr("fault.dropped"), dropped0);
  EXPECT_GT(ctr("prmi.retries"), retries0);

  // Counters (including injected-fault and retry totals) ride along in the
  // Chrome trace export.
  const std::string path = ::testing::TempDir() + "/mxn_chaos_trace.json";
  ASSERT_TRUE(trace::write_chrome_trace(path));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  EXPECT_NE(json.find("prmi.retries"), std::string::npos);
  EXPECT_NE(json.find("fault.dropped"), std::string::npos);
  trace::set_enabled(false);
}

// ---------------------------------------------------------------------------
// DCA coupling under timing chaos
// ---------------------------------------------------------------------------

TEST(FaultDca, CouplingSurvivesDelayChaos) {
  // Delay faults are content-preserving, so a correct protocol must produce
  // bit-identical results under arbitrary timing skew; this soaks the DCA
  // barrier-before-delivery machinery across every user-visible tag
  // (min_tag = 0; internal negative-tag collectives stay spared).
  const char* kSolverSidl = R"(
    package chaosdca {
      interface Solver {
        collective double sum_all(in double x);
        collective void deposit(in parallel array<double,1> data);
      }
    }
  )";
  const auto delayed0 = ctr("fault.delayed");
  for (int seed = 1; seed <= 6; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    rt::spawn(
        4,
        [&](rt::Communicator& world) {
          dca::DcaFramework fw(world);
          fw.instantiate("client", iota_ranks(0, 2));
          fw.instantiate("server", iota_ranks(2, 2));
          std::vector<double> deposited;
          if (fw.member_of("server")) {
            auto pkg = mxn::sidl::parse_package(kSolverSidl);
            auto s = std::make_shared<dca::DcaServant>(
                pkg.interface("Solver"));
            s->bind("sum_all", [](dca::DcaContext& ctx,
                                  std::vector<dca::DcaValue>& args)
                        -> dca::DcaValue {
              return ctx.cohort.allreduce(
                  std::get<double>(args[0]) * (ctx.cohort.rank() + 1),
                  [](double a, double b) { return a + b; });
            });
            s->bind("deposit", [&](dca::DcaContext&,
                                   std::vector<dca::DcaValue>& args)
                        -> dca::DcaValue {
              const auto& in = std::get<dca::ParallelIn>(args[0]);
              deposited.clear();
              for (const auto& chunk : in.chunks)
                deposited.insert(deposited.end(), chunk.begin(), chunk.end());
              return {};
            });
            fw.add_provides("server", "solver", s);
          } else {
            auto pkg = mxn::sidl::parse_package(kSolverSidl);
            fw.register_uses("client", "solver", pkg.interface("Solver"));
          }
          fw.connect("client", "solver", "server", "solver");
          if (fw.member_of("server")) {
            fw.serve("server", 2);
            const double base = 100.0 * fw.cohort("server").rank();
            ASSERT_EQ(deposited.size(), 2u);
            EXPECT_DOUBLE_EQ(deposited[0], base);
            EXPECT_DOUBLE_EQ(deposited[1], 1000 + base);
          } else {
            auto cohort = fw.cohort("client");
            auto port = fw.get_port("client", "solver");
            auto r = port->call(cohort, "sum_all", {2.0});
            EXPECT_DOUBLE_EQ(std::get<double>(r.ret), 2.0 * (1 + 2));
            dca::ParallelOut po;
            const double base = cohort.rank() == 0 ? 0.0 : 1000.0;
            po.data = {base + 0, base + 100};
            po.counts = {1, 1};
            po.displs = {0, 1};
            port->call(cohort, "deposit", {std::move(po)});
          }
        },
        {.deadlock_timeout_ms = 8000,
         .faults = rt::FaultPlan{.seed = static_cast<std::uint64_t>(seed),
                                 .delay = 0.5,
                                 .delay_ms = 1,
                                 .min_tag = 0}});
  }
  EXPECT_GT(ctr("fault.delayed"), delayed0);
}
