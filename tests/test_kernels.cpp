// Differential tests for the strided copy kernel layer (rt/kernels): every
// ISA tier must produce byte-identical results to the retained scalar
// reference (sched::pack_segments_scalar / unpack_segments_scalar) over
// randomized segment sets — strides 1..17, odd lengths, unaligned storage
// offsets, every element width the data plane moves. Also covers the run
// coalescer's promotion rules and the pooled-buffer alignment contract the
// alignment-aware entry points rely on.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstring>
#include <random>
#include <vector>

#include "rt/buffer.hpp"
#include "rt/kernels.hpp"
#include "sched/executor.hpp"
#include "trace/trace.hpp"

namespace rt = mxn::rt;
namespace sched = mxn::sched;
namespace trace = mxn::trace;
namespace kern = mxn::rt::kernels;
using mxn::linear::ProvenancedSegment;
using mxn::linear::Segment;
using kern::Isa;

namespace {

/// Every tier the hardware supports, scalar first. set_isa clamps, so
/// requesting an unsupported tier is visible as active_isa() != requested.
std::vector<Isa> supported_tiers() {
  const Isa original = kern::active_isa();
  std::vector<Isa> tiers;
  for (Isa isa : {Isa::Scalar, Isa::Sse2, Isa::Avx2}) {
    kern::set_isa(isa);
    if (kern::active_isa() == isa) tiers.push_back(isa);
  }
  kern::set_isa(original);
  return tiers;
}

/// RAII tier override so a failing assertion cannot leak a forced tier into
/// later tests.
struct IsaGuard {
  Isa saved = kern::active_isa();
  explicit IsaGuard(Isa isa) { kern::set_isa(isa); }
  ~IsaGuard() { kern::set_isa(saved); }
};

/// A deliberately awkward element: 12 bytes, no SIMD lane width divides it.
struct Odd12 {
  std::uint32_t a, b, c;
  bool operator==(const Odd12&) const = default;
};

template <class T>
T element_of(std::uint64_t i) {
  if constexpr (std::is_same_v<T, Odd12>) {
    return Odd12{static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(i * 3 + 1),
                 static_cast<std::uint32_t>(i * 7 + 5)};
  } else if constexpr (std::is_same_v<T, double>) {
    return static_cast<double>(i) * 0.75 + 0.125;
  } else {
    return static_cast<T>(i * 2654435761u + 12345u);
  }
}

/// Random provenance tiling of the linear index space [0, total): contiguous
/// linear coverage, each piece with its own storage offset and stride in
/// 1..17 (non-overlapping storage, like a real footprint).
struct Layout {
  std::vector<ProvenancedSegment> prov;
  std::int64_t storage_elems = 0;
};

Layout random_layout(std::mt19937& rng, std::int64_t total) {
  std::uniform_int_distribution<std::int64_t> len_d(1, 37);
  std::uniform_int_distribution<std::int64_t> stride_d(1, 17);
  std::uniform_int_distribution<std::int64_t> gap_d(0, 5);
  Layout lay;
  std::int64_t lo = 0, storage = 0;
  while (lo < total) {
    ProvenancedSegment ps;
    const std::int64_t len = std::min(len_d(rng), total - lo);
    ps.seg = {lo, lo + len};
    storage += gap_d(rng);  // unaligned storage offsets on purpose
    ps.storage_offset = storage;
    ps.storage_stride = stride_d(rng);
    storage += len * ps.storage_stride;
    lay.prov.push_back(ps);
    lo += len;
  }
  lay.storage_elems = storage + 1;
  return lay;
}

/// Random ascending segment set inside [0, total).
std::vector<Segment> random_segments(std::mt19937& rng, std::int64_t total) {
  std::uniform_int_distribution<std::int64_t> len_d(1, 23);
  std::uniform_int_distribution<std::int64_t> gap_d(0, 11);
  std::vector<Segment> segs;
  std::int64_t lo = gap_d(rng);
  while (lo < total) {
    const std::int64_t hi = std::min(total, lo + len_d(rng));
    segs.push_back({lo, hi});
    lo = hi + gap_d(rng);
  }
  return segs;
}

template <class T>
void differential_round(std::mt19937& rng) {
  const std::int64_t total = 400;
  const Layout lay = random_layout(rng, total);
  const auto segs = random_segments(rng, total);
  std::int64_t elems = 0;
  for (const auto& s : segs) elems += s.hi - s.lo;
  if (elems == 0) return;

  std::vector<T> storage(static_cast<std::size_t>(lay.storage_elems));
  for (std::size_t i = 0; i < storage.size(); ++i)
    storage[i] = element_of<T>(i);

  // Pack: kernel output must be byte-identical to the scalar reference.
  std::vector<T> ref(static_cast<std::size_t>(elems));
  sched::pack_segments_scalar<T>(lay.prov, segs, storage.data(), ref.data());
  std::vector<T> out(static_cast<std::size_t>(elems), element_of<T>(999));
  sched::pack_segments<T>(lay.prov, segs, storage.data(), out.data());
  ASSERT_EQ(0, std::memcmp(out.data(), ref.data(),
                           out.size() * sizeof(T)));

  // A compiled plan must replay to the same bytes — twice, since reuse
  // across transfers is its whole point.
  const kern::RunPlan plan = sched::compile_run_plan(lay.prov, segs);
  for (int replay = 0; replay < 2; ++replay) {
    std::fill(out.begin(), out.end(), element_of<T>(999));
    plan.gather(storage.data(), out.data(), sizeof(T));
    ASSERT_EQ(0, std::memcmp(out.data(), ref.data(),
                             out.size() * sizeof(T)));
  }

  // Unpack: scatter the packed buffer into two fresh storages and compare.
  std::vector<T> st_ref(storage.size(), element_of<T>(777));
  std::vector<T> st_out(storage.size(), element_of<T>(777));
  sched::unpack_segments_scalar<T>(lay.prov, segs, st_ref.data(), ref.data());
  sched::unpack_segments<T>(lay.prov, segs, st_out.data(), ref.data());
  ASSERT_EQ(0, std::memcmp(st_out.data(), st_ref.data(),
                           st_out.size() * sizeof(T)));

  // Plan-replayed unpack, same oracle.
  std::fill(st_out.begin(), st_out.end(), element_of<T>(777));
  plan.scatter(st_out.data(), ref.data(), sizeof(T));
  ASSERT_EQ(0, std::memcmp(st_out.data(), st_ref.data(),
                           st_out.size() * sizeof(T)));
}

template <class T>
void run_differential_suite() {
  for (Isa isa : supported_tiers()) {
    IsaGuard guard(isa);
    std::mt19937 rng(20260808);
    for (int round = 0; round < 40; ++round) differential_round<T>(rng);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// pack/unpack_segments vs the scalar reference, every width, every tier
// ---------------------------------------------------------------------------

TEST(KernelDifferential, Width1) { run_differential_suite<std::uint8_t>(); }
TEST(KernelDifferential, Width2) { run_differential_suite<std::uint16_t>(); }
TEST(KernelDifferential, Width4) { run_differential_suite<std::uint32_t>(); }
TEST(KernelDifferential, Width8) { run_differential_suite<std::uint64_t>(); }
TEST(KernelDifferential, WidthDouble) { run_differential_suite<double>(); }
TEST(KernelDifferential, Width12Odd) { run_differential_suite<Odd12>(); }

// Deterministic shapes that must hit each dispatch path: pure strided
// (cyclic), block train (block-cyclic), contiguous promotion.
TEST(KernelDifferential, EveryStride1To17) {
  for (Isa isa : supported_tiers()) {
    IsaGuard guard(isa);
    for (std::int64_t stride = 1; stride <= 17; ++stride) {
      for (std::int64_t n : {1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 33, 101}) {
        ProvenancedSegment ps;
        ps.seg = {0, n};
        ps.storage_offset = 3;  // odd offset: never vector-aligned
        ps.storage_stride = stride;
        std::vector<ProvenancedSegment> prov{ps};
        std::vector<Segment> segs{{0, n}};
        std::vector<std::uint64_t> storage(
            static_cast<std::size_t>(3 + n * stride + 1));
        for (std::size_t i = 0; i < storage.size(); ++i)
          storage[i] = element_of<std::uint64_t>(i);
        std::vector<std::uint64_t> ref(static_cast<std::size_t>(n));
        std::vector<std::uint64_t> out(static_cast<std::size_t>(n));
        sched::pack_segments_scalar<std::uint64_t>(prov, segs, storage.data(),
                                                   ref.data());
        sched::pack_segments<std::uint64_t>(prov, segs, storage.data(),
                                            out.data());
        ASSERT_EQ(out, ref) << "stride=" << stride << " n=" << n
                            << " isa=" << kern::isa_name(isa);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// RunCoalescer promotion rules
// ---------------------------------------------------------------------------

namespace {

std::vector<kern::BlockRun> collect(
    const std::vector<std::array<std::int64_t, 3>>& adds) {
  std::vector<kern::BlockRun> runs;
  kern::RunCoalescer co(
      [](void* ctx, const kern::BlockRun& r) {
        static_cast<std::vector<kern::BlockRun>*>(ctx)->push_back(r);
      },
      &runs);
  for (const auto& a : adds) co.add(a[0], a[1], a[2]);
  co.flush();
  return runs;
}

}  // namespace

TEST(RunCoalescer, AdjacentContiguousRunsFuseIntoOneMemcpy) {
  // A cyclic footprint packed toward one block peer: unit segments whose
  // storage happens to be consecutive. One memcpy, not N.
  const auto runs = collect({{10, 1, 4}, {14, 1, 4}, {18, 1, 8}});
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].storage_off, 10);
  EXPECT_EQ(runs[0].block_len, 16);
  EXPECT_EQ(runs[0].count, 1);
  EXPECT_EQ(runs[0].buf_off, 0);
}

TEST(RunCoalescer, EqualLengthConstantDeltaRunsFormABlockTrain) {
  // Block-cyclic: 4-element blocks every 12 elements.
  const auto runs = collect({{0, 1, 4}, {12, 1, 4}, {24, 1, 4}, {36, 1, 4}});
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].block_len, 4);
  EXPECT_EQ(runs[0].block_stride, 12);
  EXPECT_EQ(runs[0].count, 4);
}

TEST(RunCoalescer, UnitRunsWithConstantDeltaBecomeAStridedRun) {
  // A block peer unpacking cyclic data: length-1 runs every k elements
  // degenerate into the strided gather/scatter kernels.
  const auto runs = collect({{5, 1, 1}, {8, 1, 1}, {11, 1, 1}, {14, 1, 1}});
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].block_len, 1);
  EXPECT_EQ(runs[0].block_stride, 3);
  EXPECT_EQ(runs[0].count, 4);
}

TEST(RunCoalescer, StridedRunsMergeAcrossAddCalls) {
  // Two strided adds that continue the same lattice merge into one run.
  const auto runs = collect({{0, 5, 3}, {15, 5, 2}});
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].block_stride, 5);
  EXPECT_EQ(runs[0].count, 5);
}

TEST(RunCoalescer, PatternBreaksEmitSeparateRuns) {
  const auto runs = collect({{0, 1, 4}, {12, 1, 5}, {100, 7, 3}});
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0].block_len, 4);
  EXPECT_EQ(runs[1].block_len, 5);
  EXPECT_EQ(runs[1].buf_off, 4);
  EXPECT_EQ(runs[2].block_stride, 7);
  EXPECT_EQ(runs[2].buf_off, 9);
}

// ---------------------------------------------------------------------------
// Dispatch accounting and alignment contract
// ---------------------------------------------------------------------------

TEST(KernelCounters, StridedTrafficLandsInTheKernelCounters) {
  const std::uint64_t simd0 = trace::counter("sched.kernel.simd_bytes").value();
  const std::uint64_t scalar0 =
      trace::counter("sched.kernel.scalar_bytes").value();
  const std::uint64_t memcpy0 =
      trace::counter("sched.kernel.memcpy_bytes").value();

  std::vector<std::uint64_t> storage(1024);
  std::vector<std::uint64_t> buf(128);
  kern::BlockRun strided{0, 1, 7, 128, 0};
  kern::gather_run(storage.data(), buf.data(), sizeof(std::uint64_t), strided);
  kern::BlockRun contiguous{0, 128, 0, 1, 0};
  kern::gather_run(storage.data(), buf.data(), sizeof(std::uint64_t),
                   contiguous);

  const std::uint64_t moved =
      trace::counter("sched.kernel.simd_bytes").value() - simd0 +
      trace::counter("sched.kernel.scalar_bytes").value() - scalar0;
  EXPECT_EQ(moved, 128u * 8u);  // strided bytes, simd or scalar by tier
  EXPECT_EQ(trace::counter("sched.kernel.memcpy_bytes").value() - memcpy0,
            128u * 8u);
}

TEST(KernelAlignment, PooledBuffersHonorTheKernelAlignmentContract) {
  // The alignment-aware entry points assume pool-served payloads are
  // kBufferAlign-aligned; assert it across every bucket size.
  for (std::size_t n : {1u, 64u, 65u, 4096u, 100000u}) {
    auto b = rt::Buffer::allocate(n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % rt::kBufferAlign,
              0u)
        << "size " << n;
  }
}

TEST(KernelAlignment, MisalignedSpanFallbackIsCounted) {
  auto& fallbacks = trace::counter("sched.align.fallback");
  const std::uint64_t before = fallbacks.value();
  alignas(8) std::array<std::byte, 33> raw{};
  std::vector<double> fb;
  // Offset by one byte: cannot be aliased as double, must copy and count.
  const double* p =
      sched::detail::aligned_or_copy<double>({raw.data() + 1, 32}, fb);
  EXPECT_EQ(fb.size(), 4u);
  EXPECT_EQ(p, fb.data());
  EXPECT_EQ(fallbacks.value(), before + 1);

  // Aligned spans alias in place and do not count.
  const double* q =
      sched::detail::aligned_or_copy<double>({raw.data(), 32}, fb);
  EXPECT_EQ(reinterpret_cast<const std::byte*>(q), raw.data());
  EXPECT_EQ(fallbacks.value(), before + 1);
}

TEST(KernelIsa, NamesAndOverrideRoundTrip) {
  const Isa original = kern::active_isa();
  EXPECT_STREQ(kern::isa_name(Isa::Scalar), "scalar");
  EXPECT_STREQ(kern::isa_name(Isa::Sse2), "sse2");
  EXPECT_STREQ(kern::isa_name(Isa::Avx2), "avx2");
  kern::set_isa(Isa::Scalar);
  EXPECT_EQ(kern::active_isa(), Isa::Scalar);
  kern::set_isa(original);
  EXPECT_EQ(kern::active_isa(), original);
}
