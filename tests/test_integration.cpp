// Cross-module integration tests: scenarios that chain several subsystems
// the way the examples (and the paper's motivating applications) do —
// redistribution + PRMI in one application, pipelines around transfers,
// chained redistributions through an intermediate decomposition, and an
// end-to-end mini climate step (Router -> interpolation -> merge ->
// integral) checked for conservation.

#include <gtest/gtest.h>

#include <numeric>

#include "core/mxn_component.hpp"
#include "core/pipeline.hpp"
#include "mct/grid.hpp"
#include "mct/merge.hpp"
#include "mct/router.hpp"
#include "mct/sparse_matrix.hpp"
#include "prmi/distributed_framework.hpp"
#include "rt/runtime.hpp"
#include "sched/executor.hpp"
#include "sidl/parser.hpp"

namespace core = mxn::core;
namespace dad = mxn::dad;
namespace mct = mxn::mct;
namespace prmi = mxn::prmi;
namespace sched = mxn::sched;
namespace rt = mxn::rt;
using dad::AxisDist;
using dad::Point;

TEST(Integration, ChainedRedistributionsPreserveData) {
  // block(3) -> cyclic(2) -> explicit(4) over the same 5-process world;
  // every hop re-decomposes over a different sub-cohort.
  const dad::Index n = 24;
  auto d1 = dad::make_regular(std::vector<AxisDist>{AxisDist::block(n, 3)});
  auto d2 = dad::make_regular(std::vector<AxisDist>{AxisDist::cyclic(n, 2)});
  std::vector<dad::OwnedPatch> ps;
  for (int r = 0; r < 4; ++r)
    ps.push_back({dad::Patch::make(1, Point{r * 6}, Point{(r + 1) * 6}), r});
  auto d3 = dad::make_explicit(1, Point{n}, ps, 4);

  rt::spawn(5, [&](rt::Communicator& world) {
    // Hop 1: ranks 0-2 -> ranks 3-4.
    {
      auto c = sched::split_coupling(world, 3, 2);
      const int ms = c.my_src_rank(), md = c.my_dst_rank();
      std::unique_ptr<dad::DistArray<double>> a, b;
      if (ms >= 0) {
        a = std::make_unique<dad::DistArray<double>>(d1, ms);
        a->fill([](const Point& p) { return 7.0 * p[0]; });
      }
      if (md >= 0) b = std::make_unique<dad::DistArray<double>>(d2, md);
      auto s = sched::build_region_schedule(*d1, *d2, ms, md);
      sched::execute<double>(s, a.get(), b.get(), c, 11);
      // Hop 2: ranks 3-4 -> ranks 0-3 (overlapping cohorts).
      sched::Coupling c2;
      c2.channel = world;
      c2.src_ranks = {3, 4};
      c2.dst_ranks = {0, 1, 2, 3};
      const int m2 = c2.my_src_rank(), md2 = c2.my_dst_rank();
      std::unique_ptr<dad::DistArray<double>> out;
      if (md2 >= 0) out = std::make_unique<dad::DistArray<double>>(d3, md2);
      auto s2 = sched::build_region_schedule(*d2, *d3, m2, md2);
      sched::execute<double>(s2, b.get(), out.get(), c2, 12);
      if (md2 >= 0) {
        out->for_each_owned([](const Point& p, const double& v) {
          EXPECT_DOUBLE_EQ(v, 7.0 * p[0]);
        });
      }
    }
  });
}

TEST(Integration, PipelineAroundMxNTransfer) {
  // Producer exports in Kelvin; the consumer's pipeline converts to
  // Fahrenheit and clamps — the §6 filter-chain pattern; the fused
  // super-component must agree with stagewise execution.
  const int m = 2, n = 2;
  auto src_desc = dad::make_regular(std::vector<AxisDist>{
      AxisDist::block(16, m)});
  auto dst_desc = dad::make_regular(std::vector<AxisDist>{
      AxisDist::cyclic(16, n)});
  rt::spawn(m + n, [&](rt::Communicator& world) {
    const int side = world.rank() < m ? 0 : 1;
    auto mxn = core::make_paired_mxn(world, m, n);
    auto cohort = world.split(side, world.rank());
    dad::DistArray<double> arr(side == 0 ? src_desc : dst_desc,
                               cohort.rank());
    if (side == 0)
      arr.fill([](const Point& p) { return 273.15 + p[0]; });
    mxn->register_field(
        core::make_field("t", &arr, core::AccessMode::ReadWrite));
    core::ConnectionSpec spec;
    spec.src_field = spec.dst_field = "t";
    spec.src_side = 0;
    mxn->establish(spec);
    mxn->data_ready("t");
    if (side == 1) {
      core::Pipeline p;
      p.add(core::kelvin_to_fahrenheit_stage())
          .add(core::clamp_stage(32.0, 50.0));
      auto fused = p.fuse();
      std::vector<double> stagewise(arr.local().begin(), arr.local().end());
      p.apply(stagewise);
      fused.apply(arr.local());
      for (std::size_t i = 0; i < stagewise.size(); ++i)
        EXPECT_DOUBLE_EQ(arr.local()[i], stagewise[i]);
      arr.for_each_owned([](const Point& p2, const double& v) {
        const double f = std::min(50.0, (273.15 + p2[0]) * 1.8 - 459.67);
        EXPECT_NEAR(v, std::max(32.0, f), 1e-9);
      });
    }
  });
}

TEST(Integration, PrmiDrivesMxNCoupledSolvers) {
  // A controller (1 rank) uses PRMI to command a parallel solver (2 ranks)
  // which redistributes its state to a viewer decomposition and reports a
  // checksum back through the same call — method invocation and data
  // redistribution composed in one application.
  const char* sidl = R"(
    package i { interface Ctl {
      collective double step(in parallel array<double,1> state);
    } }
  )";
  auto view_desc = dad::make_regular(std::vector<AxisDist>{
      AxisDist::block(12, 2)});
  auto ctl_desc = dad::make_regular(std::vector<AxisDist>{
      AxisDist::collapsed(12)});
  rt::spawn(3, [&](rt::Communicator& world) {
    prmi::DistributedFramework fw(world);
    fw.instantiate("controller", {0});
    fw.instantiate("solver", {1, 2});
    auto pkg = mxn::sidl::parse_package(sidl);
    if (fw.member_of("solver")) {
      auto cohort = fw.cohort("solver");
      dad::DistArray<double> state(view_desc, cohort.rank());
      auto servant = std::make_shared<prmi::Servant>(pkg.interface("Ctl"));
      servant->bind("step", [&state](prmi::CalleeContext& ctx,
                                     std::vector<prmi::Value>&)
                                -> prmi::Value {
        double local = 0;
        for (double v : state.local()) local += v;
        return ctx.cohort.allreduce(local,
                                    [](double a, double b) { return a + b; });
      });
      servant->set_parallel_target(
          "step", "state",
          core::make_field("state", &state, core::AccessMode::ReadWrite));
      fw.add_provides("solver", "ctl", servant);
      fw.connect("controller", "ctl", "solver", "ctl");
      fw.serve("solver", 1);
    } else {
      fw.register_uses("controller", "ctl", pkg.interface("Ctl"));
      fw.connect("controller", "ctl", "solver", "ctl");
      auto port = fw.get_port("controller", "ctl");
      dad::DistArray<double> mine(ctl_desc, 0);
      mine.fill([](const Point& p) { return double(p[0]); });
      auto binding = core::make_field("s", &mine, core::AccessMode::Read);
      auto r = port->call("step", {prmi::ParallelRef{&binding}});
      EXPECT_DOUBLE_EQ(std::get<double>(r.ret), 66.0);  // 0+..+11
    }
  });
}

TEST(Integration, MiniClimateStepConservesEnergy) {
  // Router -> conservative interpolation -> merge -> paired integrals, all
  // in one spawn: the distilled climate_coupling example as a test.
  const mct::Index nc = 9, nf = 2 * nc - 1;
  auto atm_map = mct::GlobalSegMap::block(nc, 2);
  auto atm_on_ocn = mct::GlobalSegMap::block(nc, 2);
  auto ocn_map = mct::GlobalSegMap::block(nf, 2);
  rt::spawn(4, [&](rt::Communicator& world) {
    const bool is_atm = world.rank() < 2;
    auto cohort = world.split(is_atm ? 0 : 1, world.rank());
    mct::RouterConfig cfg;
    cfg.channel = world;
    cfg.cohort = cohort;
    cfg.my_ranks = is_atm ? std::vector<int>{0, 1} : std::vector<int>{2, 3};
    cfg.peer_ranks = is_atm ? std::vector<int>{2, 3} : std::vector<int>{0, 1};
    cfg.tag = 300;
    if (is_atm) {
      auto router = mct::Router::source(cfg, atm_map);
      mct::AttrVect flux({"q"}, atm_map.local_size(cohort.rank()));
      for (mct::Index l = 0; l < flux.length(); ++l)
        flux.field(0)[l] = 5.0 + atm_map.global_index(cohort.rank(), l);
      router.send(flux);
    } else {
      auto router = mct::Router::destination(cfg, atm_on_ocn);
      const int me = cohort.rank();
      std::vector<mct::SparseMatrix::Element> es;
      for (const auto& s : ocn_map.segs_of(me)) {
        for (auto r = s.start; r < s.start + s.length; ++r) {
          if (r % 2 == 0) {
            es.push_back({r, r / 2, 1.0});
          } else {
            es.push_back({r, r / 2, 0.5});
            es.push_back({r, r / 2 + 1, 0.5});
          }
        }
      }
      mct::SparseMatrix interp(cohort, ocn_map, atm_on_ocn, es, 301);
      mct::AttrVect in({"q"}, atm_on_ocn.local_size(me));
      mct::AttrVect out({"q"}, ocn_map.local_size(me));
      router.recv(in);
      interp.matvec(in, out);
      mct::GeneralGrid coarse({"x"}, in.length());
      for (mct::Index l = 0; l < in.length(); ++l) {
        const auto g = atm_on_ocn.global_index(me, l);
        coarse.area()[l] = (g == 0 || g == nc - 1) ? 0.75 : 1.0;
      }
      mct::GeneralGrid fine({"x"}, out.length());
      for (mct::Index l = 0; l < out.length(); ++l) fine.area()[l] = 0.5;
      const double before = mct::spatial_integral(in, 0, coarse, cohort);
      const double after = mct::spatial_integral(out, 0, fine, cohort);
      EXPECT_NEAR(before, after, 1e-12);
      // Merge with a constant ice flux and check bounds.
      mct::AttrVect ice({"q"}, out.length());
      for (mct::Index l = 0; l < out.length(); ++l) ice.field(0)[l] = 1.0;
      std::vector<double> f_o(out.length(), 0.8), f_i(out.length(), 0.2);
      mct::AttrVect blended({"q"}, out.length());
      mct::merge(blended, {{&out, f_o}, {&ice, f_i}});
      for (mct::Index l = 0; l < out.length(); ++l)
        EXPECT_DOUBLE_EQ(blended.field(0)[l],
                         0.8 * out.field(0)[l] + 0.2);
    }
  });
}
