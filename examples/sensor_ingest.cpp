// §6 outlook, realized: "dynamically inserting data from large sensor
// arrays into a running computation (such as weather modeling) ... will
// mean connecting non-computational components with computational ones."
//
// A serial "sensor gateway" component (N = 1) streams irregular station
// observations into a 4-process weather model over two M×N mechanisms:
//  - station observations as PARTICLES (the §4.1 particle container):
//    each observation migrates to whichever model rank owns its grid cell;
//  - a quality-controlled gridded correction field over a persistent M×N
//    channel, unit-converted through a fused filter pipeline on arrival.

#include <cstdio>
#include <random>

#include "core/mxn_component.hpp"
#include "core/particle_set.hpp"
#include "core/pipeline.hpp"
#include "rt/runtime.hpp"

namespace core = mxn::core;
namespace dad = mxn::dad;
namespace rt = mxn::rt;
namespace sched = mxn::sched;
using dad::AxisDist;
using dad::Index;
using dad::Point;

namespace {

constexpr int kModelProcs = 4;
constexpr Index kGrid = 16;  // 16x16 cells
constexpr int kFrames = 3;

struct Observation {
  double x = 0, y = 0;   // position in grid coordinates
  double value = 0;      // measured temperature, Kelvin
  int station = 0;
};

Point cell_of(const Observation& o) {
  return Point{static_cast<Index>(o.x), static_cast<Index>(o.y)};
}

}  // namespace

int main() {
  // Model: 2x2 block decomposition. Gateway: everything in one cell-less
  // "collapsed" rank.
  auto model_desc = dad::make_regular(std::vector<AxisDist>{
      AxisDist::block(kGrid, 2), AxisDist::block(kGrid, 2)});
  auto gateway_desc = dad::make_regular(std::vector<AxisDist>{
      AxisDist::collapsed(kGrid), AxisDist::collapsed(kGrid)});

  rt::spawn(kModelProcs + 1, [&](rt::Communicator& world) {
    const int side = world.rank() < kModelProcs ? 0 : 1;  // 0 = model
    auto mxn = core::make_paired_mxn(world, kModelProcs, 1);
    auto cohort = world.split(side, world.rank());

    // Gridded correction field over a persistent channel.
    dad::DistArray<double> correction(side == 0 ? model_desc : gateway_desc,
                                      cohort.rank());
    mxn->register_field(core::make_field(
        "correction", &correction,
        side == 0 ? core::AccessMode::Write : core::AccessMode::Read));
    core::ConnectionSpec spec;
    spec.src_field = spec.dst_field = "correction";
    spec.src_side = 1;  // the gateway exports
    spec.one_shot = false;
    mxn->establish(spec);

    // Observation particles ride the particle container.
    sched::Coupling pc;
    pc.channel = world;
    pc.src_ranks = {kModelProcs};  // gateway is the particle source
    pc.dst_ranks.resize(kModelProcs);
    for (int i = 0; i < kModelProcs; ++i) pc.dst_ranks[i] = i;

    if (side == 1) {
      // The sensor gateway: synthesize stations, push frames.
      std::mt19937 rng(7);
      std::uniform_real_distribution<double> coord(0.0, double(kGrid));
      core::ParticleSet<Observation> outbox(gateway_desc, 0);
      for (int frame = 0; frame < kFrames; ++frame) {
        correction.fill([&](const Point& p) {
          return 273.15 + 0.1 * frame + 0.01 * (p[0] + p[1]);
        });
        mxn->data_ready("correction");
        for (int s = 0; s < 40; ++s)
          outbox.particles().push_back(
              {coord(rng), coord(rng), 250.0 + s % 30, frame * 100 + s});
        core::ParticleSet<Observation>::transfer(&outbox, nullptr, pc,
                                                 cell_of, 700);
        std::printf("[gateway] frame %d: pushed correction grid + 40 "
                    "observations\n",
                    frame);
      }
    } else {
      // The weather model: assimilate frames.
      core::Pipeline qc;
      qc.add(core::kelvin_to_fahrenheit_stage())
          .add(core::clamp_stage(-80.0, 140.0));
      auto fused = qc.fuse();
      core::ParticleSet<Observation> inbox(model_desc, cohort.rank());
      for (int frame = 0; frame < kFrames; ++frame) {
        mxn->data_ready("correction");
        fused.apply(correction.local());
        core::ParticleSet<Observation>::transfer(nullptr, &inbox, pc,
                                                 cell_of, 700);
        int local_obs = static_cast<int>(inbox.particles().size());
        for (const auto& o : inbox.particles()) {
          if (model_desc->owner(cell_of(o)) != cohort.rank())
            throw std::runtime_error("observation landed on wrong rank");
        }
        const int total = cohort.allreduce(
            local_obs, [](int a, int b) { return a + b; });
        if (cohort.rank() == 0)
          std::printf("[model] frame %d: %d observations assimilated, "
                      "correction[0]=%.2f F\n",
                      frame, total, correction.local()[0]);
        inbox.particles().clear();
      }
    }
  });

  std::printf("sensor_ingest: non-computational sensor component streamed "
              "%d frames into a running %d-process model\n",
              kFrames, kModelProcs);
  return 0;
}
