// Fluid-structure coupling in the InterComm idiom (paper §4.4): a fluid
// solver on 2 processes exports the pressure on an irregular wetted-surface
// region every step; a structure solver on 1 process imports it at its own,
// slower cadence. The two programs never coordinate directly — imports are
// matched to exports by timestamp under the LOWERBOUND rule of the
// coordination specification, and the descriptors are *partitioned*: no
// process ever sees the global patch list.

#include <cstdio>

#include "intercomm/coupler.hpp"
#include "intercomm/local_array.hpp"
#include "rt/runtime.hpp"

namespace ic = mxn::intercomm;
namespace rt = mxn::rt;
using mxn::dad::Patch;

namespace {

using mxn::dad::Index;
using mxn::dad::Point;

Patch patch2(Index lo0, Index hi0, Index lo1, Index hi1) {
  return Patch::make(2, Point{lo0, lo1}, Point{hi0, hi1});
}

double pressure(const Point& p, int step) {
  return 1.0 + 0.1 * step + 0.01 * (3 * p[0] + p[1]);
}

}  // namespace

int main() {
  constexpr int kFluidProcs = 2;
  constexpr int kFluidSteps = 10;

  rt::spawn(kFluidProcs + 1, [&](rt::Communicator& world) {
    const bool is_fluid = world.rank() < kFluidProcs;
    auto cohort = world.split(is_fluid ? 0 : 1, world.rank());

    ic::EndpointConfig cfg;
    cfg.channel = world;
    cfg.cohort = cohort;
    cfg.my_ranks = is_fluid ? std::vector<int>{0, 1} : std::vector<int>{2};
    cfg.peer_ranks = is_fluid ? std::vector<int>{2} : std::vector<int>{0, 1};

    if (is_fluid) {
      // Irregular interface patches: rank 0 owns an L-shaped corner, rank 1
      // the remainder of the 6x4 wetted surface.
      std::vector<Patch> mine =
          cohort.rank() == 0
              ? std::vector<Patch>{patch2(0, 3, 0, 2), patch2(0, 1, 2, 4)}
              : std::vector<Patch>{patch2(3, 6, 0, 2), patch2(1, 6, 2, 4)};
      ic::LocalArray<double> surface(mine);
      auto exporter = ic::Exporter::partitioned(
          cfg, ic::make_local_field("pressure", &surface), mine,
          ic::MatchPolicy::LowerBound, /*buffer_depth=*/16);

      for (int step = 1; step <= kFluidSteps; ++step) {
        surface.fill([&](const Point& p) { return pressure(p, step); });
        exporter.do_export(step);
      }
      exporter.finalize();
      if (cohort.rank() == 0)
        std::printf("[fluid] exported %d steps; %llu transfers actually "
                    "moved data (%llu elements)\n",
                    kFluidSteps,
                    static_cast<unsigned long long>(
                        exporter.stats().transfers),
                    static_cast<unsigned long long>(
                        exporter.stats().elements));
    } else {
      std::vector<Patch> mine = {patch2(0, 6, 0, 4)};
      ic::LocalArray<double> surface(mine);
      auto importer = ic::Importer::partitioned(
          cfg, ic::make_local_field("pressure", &surface), mine,
          ic::MatchPolicy::LowerBound);

      // The structure advances with a time step 2.5x the fluid's: it asks
      // for fluid states at t = 2.5, 5.0, 7.5 and gets the latest export
      // not newer than each.
      for (double t : {2.5, 5.0, 7.5}) {
        const auto matched =
            importer.do_import(static_cast<std::int64_t>(t * 2) / 2);
        long mismatches = 0;
        surface.for_each_owned([&](const Point& p, const double& v) {
          if (v != pressure(p, static_cast<int>(matched))) ++mismatches;
        });
        std::printf("[structure] wanted t<=%.1f, matched fluid step %lld "
                    "(%ld mismatches)\n",
                    t, static_cast<long long>(matched), mismatches);
        if (mismatches != 0)
          throw std::runtime_error("imported surface is inconsistent");
      }
      importer.close();
    }
  });

  std::printf("fluid_structure: timestamp-coordinated coupling with "
              "partitioned descriptors completed\n");
  return 0;
}
