// A tour of parallel remote method invocation semantics (paper §2.4, §4.2):
// a 3-process client drives a 2-process "solver" component in a distributed
// framework through every invocation kind — collective calls with ghost
// invocations and replicated returns, an independent one-to-one call, a
// one-way notification, a parallel (distributed-array) argument
// redistributed in-call, and SCIRun2-style typed stubs with run-time
// subsetting.

#include <cstdio>
#include <numeric>

#include "rt/runtime.hpp"
#include "scirun2/stub.hpp"
#include "sidl/parser.hpp"

namespace prmi = mxn::prmi;
namespace sr2 = mxn::scirun2;
namespace dad = mxn::dad;
namespace core = mxn::core;
namespace rt = mxn::rt;
using dad::AxisDist;
using dad::Point;
using prmi::Value;

namespace {

const char* kSidl = R"(
  package tour {
    interface Solver {
      collective double residual(in parallel array<double,1> rhs);
      collective void configure(in string scheme, out long iterations);
      collective oneway void trace(in string what);
      independent int owner_of(in int index);
    }
  }
)";

constexpr int kClients = 3;
constexpr int kServers = 2;
constexpr dad::Index kUnknowns = 18;

}  // namespace

int main() {
  auto client_desc = dad::make_regular(
      std::vector<AxisDist>{AxisDist::block(kUnknowns, kClients)});
  auto server_desc = dad::make_regular(
      std::vector<AxisDist>{AxisDist::cyclic(kUnknowns, kServers)});

  rt::spawn(kClients + kServers, [&](rt::Communicator& world) {
    prmi::DistributedFramework fw(world);
    fw.instantiate("client", {0, 1, 2});
    fw.instantiate("solver", {3, 4});

    if (fw.member_of("solver")) {
      auto cohort = fw.cohort("solver");
      dad::DistArray<double> rhs(server_desc, cohort.rank());
      auto pkg = mxn::sidl::parse_package(kSidl);
      auto servant = std::make_shared<prmi::Servant>(pkg.interface("Solver"));

      servant->bind("residual", [&rhs](prmi::CalleeContext& ctx,
                                       std::vector<Value>&) -> Value {
        // The parallel argument has already been redistributed into `rhs`
        // under OUR cyclic layout; compute ||rhs|| collectively.
        double local = 0;
        for (double v : rhs.local()) local += v * v;
        return ctx.cohort.allreduce(local,
                                    [](double a, double b) { return a + b; });
      });
      servant->bind("configure",
                    [](prmi::CalleeContext&, std::vector<Value>& args)
                        -> Value {
                      const auto& scheme = std::get<std::string>(args[0]);
                      args[1] = static_cast<std::int64_t>(
                          scheme == "multigrid" ? 12 : 64);
                      return {};
                    });
      servant->bind("trace",
                    [&cohort](prmi::CalleeContext&, std::vector<Value>& args)
                        -> Value {
                      if (cohort.rank() == 0)
                        std::printf("[solver] trace: %s\n",
                                    std::get<std::string>(args[0]).c_str());
                      return {};
                    });
      servant->bind("owner_of", [&](prmi::CalleeContext&,
                                    std::vector<Value>& args) -> Value {
        const auto idx = std::get<std::int32_t>(args[0]);
        return std::int32_t(server_desc->owner(Point{idx}));
      });
      servant->set_parallel_target(
          "residual", "rhs",
          core::make_field("rhs", &rhs, core::AccessMode::ReadWrite));
      fw.add_provides("solver", "solve", servant);
      fw.connect("client", "solve", "solver", "solve");
      // 1 trace + 1 configure + 1 residual + 1 independent each from 3
      // clients routed i%2 -> rank0: 2, rank1: 1 + 1 subset residual.
      fw.serve("solver", -1);
    } else {
      auto pkg = mxn::sidl::parse_package(kSidl);
      fw.register_uses("client", "solve", pkg.interface("Solver"));
      fw.connect("client", "solve", "solver", "solve");
      auto cohort = fw.cohort("client");
      auto port = fw.get_port("client", "solve");

      // One-way: fire and forget.
      port->call_oneway("trace", {std::string("starting tour")});

      // Collective with out-parameter; M=3 callers, N=2 callees — ghost
      // invocations on the callee side, replicated returns on ours.
      auto r = port->call("configure", {std::string("multigrid"), Value{}});
      if (cohort.rank() == 0)
        std::printf("[client] configure(multigrid) -> %lld iterations\n",
                    static_cast<long long>(std::get<std::int64_t>(r.args[1])));

      // Parallel argument: our block-decomposed rhs is redistributed to the
      // solver's cyclic layout inside the call.
      dad::DistArray<double> rhs(client_desc, cohort.rank());
      rhs.fill([](const Point& p) { return p[0] < 9 ? 1.0 : 2.0; });
      auto binding = core::make_field("rhs", &rhs, core::AccessMode::Read);
      auto res = port->call("residual", {prmi::ParallelRef{&binding}});
      if (cohort.rank() == 0)
        std::printf("[client] residual over %lld unknowns = %.1f "
                    "(expect %d)\n",
                    static_cast<long long>(kUnknowns),
                    std::get<double>(res.ret), 9 * 1 + 9 * 4);

      // Independent: each client rank asks one solver rank a question.
      auto owner = port->call_independent(
          "owner_of", {std::int32_t(cohort.rank() * 5)});
      std::printf("[client %d] owner_of(%d) = %d\n", cohort.rank(),
                  cohort.rank() * 5, std::get<std::int32_t>(owner.ret));

      // SCIRun2 typed stubs + subsetting: ranks {0, 2} recompute the
      // residual through a subset proxy with a 2-way decomposition.
      sr2::CompiledInterface iface(port);
      auto sub = iface.subset({0, 2});
      if (sub) {
        auto sub_desc = dad::make_regular(
            std::vector<AxisDist>{AxisDist::block(kUnknowns, 2)});
        const int sub_rank = cohort.rank() == 0 ? 0 : 1;
        dad::DistArray<double> sub_rhs(sub_desc, sub_rank);
        sub_rhs.fill([](const Point&) { return 3.0; });
        auto b2 = core::make_field("rhs", &sub_rhs, core::AccessMode::Read);
        auto norm = sub->stub<double(sr2::Distributed)>("residual");
        const double v = norm(sr2::Distributed{&b2});
        if (sub_rank == 0)
          std::printf("[client subset] residual of constant 3s = %.1f "
                      "(expect %lld)\n",
                      v, static_cast<long long>(9 * kUnknowns));
      }
      // Quiesce before shutdown: rank 1 did not participate in the subset
      // call, and its shutdown notice must not overtake the subset call's
      // headers (they travel from different caller ranks).
      cohort.barrier();
      port->shutdown_provider();
    }
  });

  std::printf("prmi_tour: collective, independent, oneway, parallel-arg and "
              "subset invocations all completed\n");
  return 0;
}
