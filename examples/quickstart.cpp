// Quickstart: couple two parallel programs with different distributions of
// one 2-D array through the CCA M×N component (paper §4.1, Figure 3).
//
// Program A (3 processes) owns `field` in row-block layout; program B
// (2 processes) wants it column-cyclic. Paired MxN component instances
// exchange descriptors, compute the communication schedule once, and move
// the data with independent point-to-point transfers — no barriers.

#include <cstdio>

#include "core/mxn_component.hpp"
#include "rt/runtime.hpp"

namespace core = mxn::core;
namespace dad = mxn::dad;
namespace rt = mxn::rt;
using dad::AxisDist;
using dad::Point;

int main() {
  constexpr int kM = 3;  // program A processes
  constexpr int kN = 2;  // program B processes
  constexpr dad::Index kRows = 12, kCols = 8;

  // Program A: rows split in blocks over 3 ranks.
  auto a_desc = dad::make_regular(std::vector<AxisDist>{
      AxisDist::block(kRows, kM), AxisDist::collapsed(kCols)});
  // Program B: columns dealt cyclically over 2 ranks.
  auto b_desc = dad::make_regular(std::vector<AxisDist>{
      AxisDist::collapsed(kRows), AxisDist::cyclic(kCols, kN)});

  rt::spawn(kM + kN, [&](rt::Communicator& world) {
    const int side = world.rank() < kM ? 0 : 1;
    auto mxn = core::make_paired_mxn(world, kM, kN);
    auto cohort = world.split(side, world.rank());

    dad::DistArray<double> field(side == 0 ? a_desc : b_desc, cohort.rank());
    if (side == 0)
      field.fill([](const Point& p) { return 100.0 * p[0] + p[1]; });

    mxn->register_field(core::make_field(
        "field", &field,
        side == 0 ? core::AccessMode::Read : core::AccessMode::Write));

    core::ConnectionSpec spec;
    spec.src_field = spec.dst_field = "field";
    spec.src_side = 0;
    spec.one_shot = true;
    const auto id = mxn->establish(spec);

    mxn->data_ready("field");  // A exports, B imports — pairwise, no barrier

    if (side == 1) {
      // Verify and report.
      long errors = 0;
      field.for_each_owned([&](const Point& p, const double& v) {
        if (v != 100.0 * p[0] + p[1]) ++errors;
      });
      const auto st = mxn->stats(id);
      std::printf(
          "[B rank %d] received %llu elements (%llu bytes) in %llu "
          "transfer(s); %ld mismatches\n",
          cohort.rank(), static_cast<unsigned long long>(st.elements),
          static_cast<unsigned long long>(st.bytes),
          static_cast<unsigned long long>(st.transfers), errors);
      if (errors != 0) throw std::runtime_error("verification failed");
    }
  });

  std::printf("quickstart: %d x %d redistribution complete — %lld elements "
              "moved from a %dx1 row-block grid to a 1x%d column-cyclic "
              "grid\n",
              kM, kN, static_cast<long long>(kRows * kCols), kM, kN);
  return 0;
}
