// Interactive visualization and computational steering in the CUMULVS
// idiom (paper §4.1): a 3-process heat-diffusion simulation publishes its
// temperature field on a persistent periodic M×N channel to a serial
// (N = 1) viewer, and the viewer pushes a steering parameter — the heat
// source strength — back through a reverse persistent connection. The
// viewer samples every 2nd simulation step; neither side ever synchronizes
// beyond the pairwise dataReady transfers.

#include <cstdio>

#include "core/mxn_component.hpp"
#include "rt/runtime.hpp"

namespace core = mxn::core;
namespace dad = mxn::dad;
namespace rt = mxn::rt;
using dad::AxisDist;
using dad::Index;
using dad::Point;

int main() {
  constexpr int kSimProcs = 3;
  constexpr Index kCells = 24;
  constexpr int kSteps = 6;
  constexpr int kSamplePeriod = 2;

  auto sim_desc = dad::make_regular(
      std::vector<AxisDist>{AxisDist::block(kCells, kSimProcs)});
  auto view_desc = dad::make_regular(
      std::vector<AxisDist>{AxisDist::collapsed(kCells)});
  auto knob_desc = dad::make_regular(
      std::vector<AxisDist>{AxisDist::collapsed(1)});
  // The steering knob is a single value replicated to... the sim's rank 0;
  // sim ranks broadcast it in-cohort (out-of-band, like any SPMD program).
  auto knob_on_sim = dad::make_regular(std::vector<AxisDist>{
      AxisDist::generalized_block({1, 0, 0})});

  rt::spawn(kSimProcs + 1, [&](rt::Communicator& world) {
    const int side = world.rank() < kSimProcs ? 0 : 1;
    auto mxn = core::make_paired_mxn(world, kSimProcs, 1);
    auto cohort = world.split(side, world.rank());

    dad::DistArray<double> field(side == 0 ? sim_desc : view_desc,
                                 cohort.rank());
    dad::DistArray<double> knob(side == 0 ? knob_on_sim : knob_desc,
                                cohort.rank());
    mxn->register_field(core::make_field(
        "temperature", &field,
        side == 0 ? core::AccessMode::Read : core::AccessMode::Write));
    mxn->register_field(core::make_field(
        "source_strength", &knob,
        side == 0 ? core::AccessMode::Write : core::AccessMode::Read));

    core::ConnectionSpec viz;
    viz.src_field = viz.dst_field = "temperature";
    viz.src_side = 0;
    viz.one_shot = false;
    viz.period = kSamplePeriod;  // viewer sees every 2nd step
    core::ConnectionSpec steer;
    steer.src_field = steer.dst_field = "source_strength";
    steer.src_side = 1;
    steer.one_shot = false;
    mxn->establish(viz);
    mxn->establish(steer);

    if (side == 0) {
      // The simulation: explicit diffusion with a steerable source at 0.
      double source = 1.0;
      field.fill([](const Point&) { return 0.0; });
      for (int step = 1; step <= kSteps; ++step) {
        for (auto& v : field.local()) v *= 0.9;  // decay stand-in
        if (cohort.rank() == 0) field.local()[0] += source;
        mxn->data_ready("temperature");
        if (step % kSamplePeriod == 0) {
          // Pick up the (possibly updated) steering value after each frame.
          mxn->data_ready("source_strength");
          const double got = cohort.rank() == 0 ? knob.local()[0] : 0.0;
          source = cohort.bcast_value(got, 0);
        }
      }
    } else {
      // The viewer: pull frames and crank the source up each time.
      for (int frame = 1; frame <= kSteps / kSamplePeriod; ++frame) {
        mxn->data_ready("temperature");
        double total = 0;
        for (double v : field.local()) total += v;
        std::printf("[viewer] frame %d: total heat %.4f, hottest cell %.4f\n",
                    frame, total, field.local()[0]);
        knob.local()[0] = 1.0 + frame;  // steer: stronger source
        mxn->data_ready("source_strength");
      }
    }
  });

  std::printf("steering_dashboard: %d frames streamed over a persistent "
              "periodic M×N channel with steering feedback\n",
              kSteps / kSamplePeriod);
  return 0;
}
