// Climate-style coupled model in the MCT idiom (paper §4.5): a coarse-grid
// "atmosphere" on 3 processes and a fine-grid "ocean" on 2 processes run
// concurrently with different time steps. The atmosphere accumulates a heat
// flux over its (shorter) steps; at every coupling interval the time
// average crosses to the ocean through a Router, is interpolated onto the
// ocean grid by a distributed sparse matrix-vector multiply, blended with
// a sea-ice flux by the merge facility, and checked for conservation with
// paired area-weighted integrals.

#include <cmath>
#include <cstdio>
#include <numeric>

#include "mct/accumulator.hpp"
#include "mct/grid.hpp"
#include "mct/merge.hpp"
#include "mct/registry.hpp"
#include "mct/router.hpp"
#include "mct/sparse_matrix.hpp"
#include "rt/runtime.hpp"

namespace mct = mxn::mct;
namespace rt = mxn::rt;
using mct::AttrVect;
using mct::GlobalSegMap;
using mct::Index;

namespace {

constexpr int kAtmProcs = 3;
constexpr int kOcnProcs = 2;
constexpr Index kAtmPoints = 17;              // coarse grid
constexpr Index kOcnPoints = 2 * kAtmPoints - 1;  // fine grid (midpoints)
constexpr int kAtmStepsPerCoupling = 4;
constexpr int kCouplings = 3;

/// Linear coarse->fine interpolation weights, rows distributed by row_map.
std::vector<mct::SparseMatrix::Element> interp_elements(
    const GlobalSegMap& row_map, int rank) {
  std::vector<mct::SparseMatrix::Element> es;
  for (const auto& s : row_map.segs_of(rank)) {
    for (Index r = s.start; r < s.start + s.length; ++r) {
      if (r % 2 == 0) {
        es.push_back({r, r / 2, 1.0});
      } else {
        es.push_back({r, r / 2, 0.5});
        es.push_back({r, r / 2 + 1, 0.5});
      }
    }
  }
  return es;
}

}  // namespace

int main() {
  mct::Registry registry;
  registry.add("atm", {0, 1, 2});
  registry.add("ocn", {3, 4});

  // Decompositions: the atmosphere's own grid over its cohort; the ocean
  // holds (a) the atmosphere numbering redistributed over ITS cohort (the
  // Router target) and (b) its own fine grid.
  auto atm_map = GlobalSegMap::block(kAtmPoints, kAtmProcs);
  auto atm_on_ocn = GlobalSegMap::block(kAtmPoints, kOcnProcs);
  auto ocn_map = GlobalSegMap::block(kOcnPoints, kOcnProcs);

  rt::spawn(kAtmProcs + kOcnProcs, [&](rt::Communicator& world) {
    const bool is_atm = registry.member("atm", world.rank());
    auto cohort = world.split(is_atm ? 0 : 1, world.rank());
    const int me = cohort.rank();

    mct::RouterConfig cfg;
    cfg.channel = world;
    cfg.cohort = cohort;
    cfg.my_ranks = registry.ranks_of(is_atm ? "atm" : "ocn");
    cfg.peer_ranks = registry.ranks_of(is_atm ? "ocn" : "atm");
    cfg.tag = 100;

    if (is_atm) {
      auto router = mct::Router::source(cfg, atm_map);
      const Index nloc = atm_map.local_size(me);
      mct::Accumulator acc({"heat_flux"}, nloc);
      AttrVect state({"heat_flux"}, nloc);
      mct::GeneralGrid grid({"lon"}, nloc);
      for (Index l = 0; l < nloc; ++l) {
        const Index g = atm_map.global_index(me, l);
        grid.area()[l] = (g == 0 || g == kAtmPoints - 1) ? 0.75 : 1.0;
      }

      int step = 0;
      for (int c = 0; c < kCouplings; ++c) {
        for (int s = 0; s < kAtmStepsPerCoupling; ++s, ++step) {
          // A smooth flux field that drifts with time.
          for (Index l = 0; l < nloc; ++l) {
            const Index g = atm_map.global_index(me, l);
            state.field(0)[l] = 10.0 + g + 0.25 * step;
          }
          acc.accumulate(state);
        }
        auto mean = acc.average();
        const double sent =
            mct::spatial_integral(mean, 0, grid, cohort);
        if (me == 0)
          std::printf("[atm] coupling %d: exported time-averaged flux, "
                      "integral = %.6f\n",
                      c, sent);
        router.send(mean);
        acc.reset();
      }
    } else {
      auto router = mct::Router::destination(cfg, atm_on_ocn);
      mct::SparseMatrix interp(cohort, ocn_map, atm_on_ocn,
                               interp_elements(ocn_map, me), 101);
      const Index n_in = atm_on_ocn.local_size(me);
      const Index n_out = ocn_map.local_size(me);
      AttrVect incoming({"heat_flux"}, n_in);
      AttrVect on_ocean({"heat_flux"}, n_out);
      AttrVect ice_flux({"heat_flux"}, n_out);
      AttrVect blended({"heat_flux"}, n_out);

      // Fine-grid areas chosen so the linear interpolation conserves the
      // integral (A^T w_fine == w_coarse).
      mct::GeneralGrid fine({"lon"}, n_out);
      for (Index l = 0; l < n_out; ++l) fine.area()[l] = 0.5;
      // Coarse-side weights on the redistributed numbering, for the paired
      // integral.
      mct::GeneralGrid coarse_here({"lon"}, n_in);
      for (Index l = 0; l < n_in; ++l) {
        const Index g = atm_on_ocn.global_index(me, l);
        coarse_here.area()[l] = (g == 0 || g == kAtmPoints - 1) ? 0.75 : 1.0;
      }
      // Sea-ice covers 30% of every cell with a fixed flux.
      std::vector<double> f_open(n_out, 0.7), f_ice(n_out, 0.3);
      for (Index l = 0; l < n_out; ++l) ice_flux.field(0)[l] = 2.0;

      for (int c = 0; c < kCouplings; ++c) {
        router.recv(incoming);
        const double before =
            mct::spatial_integral(incoming, 0, coarse_here, cohort);
        interp.matvec(incoming, on_ocean);
        const double after =
            mct::spatial_integral(on_ocean, 0, fine, cohort);
        mct::merge(blended, {{&on_ocean, f_open}, {&ice_flux, f_ice}});
        if (me == 0) {
          std::printf("[ocn] coupling %d: paired integrals %.6f -> %.6f "
                      "(conservation error %.2e), blended sample = %.4f\n",
                      c, before, after, std::abs(before - after),
                      blended.field(0)[0]);
        }
        if (std::abs(before - after) > 1e-9)
          throw std::runtime_error("interpolation failed to conserve flux");
      }
    }
  });

  std::printf("climate_coupling: %d couplings of atm(%d procs, %lld pts) -> "
              "ocn(%d procs, %lld pts) completed conservatively\n",
              kCouplings, kAtmProcs, static_cast<long long>(kAtmPoints),
              kOcnProcs, static_cast<long long>(kOcnPoints));
  return 0;
}
