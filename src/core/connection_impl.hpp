#pragma once

// Internal to mxn_core: the per-connection record and the channel tag plan,
// shared by mxn_component.cpp (establishment, transfers) and rescale.cpp
// (elastic re-establishment after a layout splice). Not a public header.

#include <cstdint>
#include <memory>

#include "core/mxn_component.hpp"
#include "core/transmission_policy.hpp"
#include "sched/schedule.hpp"

namespace mxn::core {

namespace detail {

// Channel tag plan: connection `seq` uses kConnBase + 4*seq + {0: data,
// 1: ack, 2: descriptor exchange, 3: commit}; proposals travel on
// kProposalTag. The `seq` counter advances identically on both sides
// because establishment is collective across the pair (channel-collective
// for elastic components).
inline constexpr int kProposalTag = 900;
inline constexpr int kConnBase = 1000;

// Elastic migration tag block (docs/RESCALING.md): each (rescale epoch,
// side, field) triple gets a fresh {data, ack, commit} triplet, cycling
// within [kMigBase, kMigBase + 64*2*64*4) — far above any realistic
// connection count's kConnBase stream and below the PRMI reservation
// (tags >= 2^20). Fresh per-epoch tags keep duplicated stragglers of one
// migration out of the next one's matched streams even before the attempt
// serials discard them.
inline constexpr int kMigBase = 600000;

[[nodiscard]] inline int migration_tag_base(std::uint64_t epoch, int side,
                                            std::size_t field_idx) {
  return kMigBase +
         static_cast<int>(((epoch % 64) * 2 + static_cast<std::uint64_t>(side)) *
                              64 +
                          field_idx % 64) *
             4;
}

}  // namespace detail

struct MxNComponent::Connection {
  ConnectionSpec spec;
  bool i_am_src = false;
  bool i_am_dst = false;
  // Shared pin into the schedule cache (null on spectators): keeps the
  // schedule alive even if a bounded cache evicts the entry under other
  // tenants' pressure.
  std::shared_ptr<const sched::RegionSchedule> schedule;
  // How this connection's bytes move — derived from the spec's flags at
  // establish time (policy_from_spec), overridable per tenant via
  // MxNComponent::set_policy.
  std::shared_ptr<const TransmissionPolicy> policy;
  sched::Coupling coupling;
  int seq = 0;
  int src_calls = 0;
  TransferStats stats;
  bool retired = false;
  // Reliable-mode attempt serial ("invocation epoch"): bumped at the start
  // of every attempt, carried in every message, ratcheted forward when a
  // peer is seen to have retried past us.
  std::uint64_t epoch = 0;

  [[nodiscard]] int data_tag() const { return detail::kConnBase + 4 * seq; }
  [[nodiscard]] int ack_tag() const { return detail::kConnBase + 4 * seq + 1; }
  [[nodiscard]] int desc_tag() const {
    return detail::kConnBase + 4 * seq + 2;
  }
  [[nodiscard]] int commit_tag() const {
    return detail::kConnBase + 4 * seq + 3;
  }
};

}  // namespace mxn::core
