#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/component.hpp"
#include "core/field.hpp"
#include "sched/cache.hpp"
#include "sched/coupling.hpp"

namespace mxn::core {

using ConnectionId = int;

class TransmissionPolicy;  // core/transmission_policy.hpp

/// How a coupling moves data (paper §4.1, unifying the PAWS and CUMULVS
/// connection models under one interface):
///  - one_shot == true: a single transfer (PAWS send/receive pairing); the
///    connection retires after it completes.
///  - persistent: recurs automatically — the source's every `period`-th
///    dataReady() initiates a transfer (CUMULVS periodic channels).
///  - handshake: "tight" synchronization option — the source's dataReady
///    blocks until every destination peer acknowledges receipt, bounding
///    the skew between producer and consumer. Without it the source runs
///    ahead freely (loose synchronization; sends are buffered).
struct ConnectionSpec {
  std::string src_field;
  std::string dst_field;
  int src_side = 0;  // which side of the pair exports (0 or 1)
  bool one_shot = true;
  int period = 1;
  bool handshake = false;

  /// Reliable (two-phase, ack'd) transfer mode — see docs/FAULTS.md. Every
  /// transfer runs as: serial-framed data → per-peer acks → commit;
  /// destinations stage incoming payloads and inject only after every
  /// commit arrived, so a faulted attempt leaves the destination field
  /// untouched. Failed attempts are retried up to `max_retries` times under
  /// a bumped attempt serial (stale traffic from an aborted attempt is
  /// drained and discarded, never delivered); exhaustion raises
  /// TransferError with the destination state unchanged.
  bool reliable = false;

  /// Per-receive deadline (ms) during a transfer: < 0 inherits the spawn
  /// default, 0 waits forever (retries then never trigger), > 0 recommended
  /// whenever `reliable` is set.
  int timeout_ms = -1;

  /// Extra attempts after the first, in reliable mode.
  int max_retries = 2;

  void pack(rt::PackBuffer& b) const;
  static ConnectionSpec unpack(rt::UnpackBuffer& u);
};

/// Cumulative per-connection counters.
struct TransferStats {
  std::uint64_t transfers = 0;
  std::uint64_t elements = 0;
  std::uint64_t bytes = 0;
  std::uint64_t retries = 0;   // failed attempts that were retried
  std::uint64_t failures = 0;  // transfers abandoned after max_retries
};

/// Channel-rank layout of an elastic component's two sides: `side0[i]` /
/// `side1[i]` is the channel rank holding cohort rank i of that side. Every
/// channel rank on neither side is a *spectator* — it participates in the
/// collective lifecycle calls (establish, rescale) but holds no fields and
/// moves no data, and can be admitted into a side by a later rescale.
struct Layout {
  std::vector<int> side0;
  std::vector<int> side1;

  [[nodiscard]] const std::vector<int>& side(int s) const {
    return s == 0 ? side0 : side1;
  }
  /// 0, 1, or -1 for a spectator.
  [[nodiscard]] int side_of(int channel_rank) const;
  /// Throws UsageError unless both sides are non-empty, disjoint,
  /// duplicate-free and within [0, channel_size).
  void validate(int channel_size) const;
};

/// Cumulative per-component rescale counters (also mirrored into the global
/// trace registry as rescale.*). Byte counts are this rank's local view:
/// senders count what they shipped, receivers what they staged.
struct RescaleStats {
  std::uint64_t epochs = 0;
  std::uint64_t migrated_bytes = 0;  // moved over the channel
  std::uint64_t local_bytes = 0;     // same-rank fast path (extract→inject)
  std::uint64_t retries = 0;         // migration attempts that were retried
  std::int64_t stall_ns = 0;         // this rank's wait at the epoch fences
  std::int64_t rescale_ns = 0;       // total wall time inside rescale()
};

/// A reliable transfer exhausted its retries without completing. The local
/// destination field (if any) is untouched: payloads are staged and only
/// injected after the commit phase. The connection stays established — the
/// next data_ready() retries on fresh epoch tags, so a transient fault (or
/// a restored peer) can still succeed later.
class TransferError : public rt::Error {
 public:
  using Error::Error;
};

/// The provides-port interface of the M×N component (paper §4.1). Paired
/// instances are co-located with the two coupled parallel programs; the pair
/// communicates over an internal channel that is out-of-band as far as the
/// CCA specification is concerned (Figure 3).
class MxNService : public Port {
 public:
  /// Register a parallel data field by its DAD handle and local memory.
  /// Cohort-collective.
  virtual void register_field(const FieldRegistration& field) = 0;

  virtual void unregister_field(const std::string& name) = 0;

  /// Establish a connection. Cohort-collective on BOTH sides of the pair
  /// (both programs call establish with an equivalent spec); descriptors
  /// are exchanged over the channel and the communication schedule is
  /// computed (and cached) locally.
  virtual ConnectionId establish(const ConnectionSpec& spec) = 0;

  /// Propose a connection to the peer side without its prior agreement: the
  /// spec travels over the channel and the peer picks it up in
  /// accept_proposal(). Lets one side — or a third-party controller driving
  /// one side — initiate coupling, so legacy codes need no coupling logic
  /// (paper §4.1: "neither side of an M×N connection need be fully aware...
  /// of the nature of any such connections"). Cohort-collective on the
  /// calling side; returns the local connection id.
  virtual ConnectionId propose(const ConnectionSpec& spec) = 0;

  /// Receive a proposed spec from the channel and establish it locally.
  /// Cohort-collective; blocks until a proposal arrives.
  virtual ConnectionId accept_proposal() = 0;

  /// Declare this instance's local portion of `field` consistent and ready
  /// (paper §4.1). Source instances initiate their pairwise sends for every
  /// due connection on the field; destination instances complete their
  /// pairwise receives. No synchronization barrier is involved on either
  /// side. Returns the number of connections that moved data.
  virtual int data_ready(const std::string& field) = 0;

  /// Retire a connection locally.
  virtual void disconnect(ConnectionId id) = 0;

  [[nodiscard]] virtual TransferStats stats(ConnectionId id) const = 0;
  [[nodiscard]] virtual bool active(ConnectionId id) const = 0;

  /// Serialize this rank's local contents of every registered readable
  /// field — the checkpointing half of CUMULVS's fault-tolerance role
  /// ("CUMULVS: Providing fault tolerance, visualization and steering of
  /// parallel applications", paper ref [14]). The blob is per-rank; a
  /// restarted cohort re-registers its fields (same names, same
  /// decomposition) and calls restore_fields.
  [[nodiscard]] virtual std::vector<std::byte> checkpoint_fields() const = 0;

  /// Inverse of checkpoint_fields. Fields present in the blob but not
  /// currently registered (or with mismatched sizes) raise UsageError.
  virtual void restore_fields(std::span<const std::byte> blob) = 0;
};

/// Concrete M×N component. Instantiate one per process on each side of a
/// coupling; `side` is 0 or 1, `channel` spans both programs, and
/// `side_ranks[s]` lists the channel ranks of side s (index == cohort rank).
class MxNComponent final : public Component, public MxNService {
 public:
  MxNComponent(rt::Communicator channel, rt::Communicator cohort, int side,
               std::vector<int> side0_ranks, std::vector<int> side1_ranks);

  /// Elastic instance (docs/RESCALING.md): `side` is this rank's side under
  /// `layout` (-1 for a spectator, whose `cohort` is the null communicator).
  /// Prefer make_elastic_mxn, which derives cohort and side collectively.
  MxNComponent(rt::Communicator channel, rt::Communicator cohort, int side,
               Layout layout);

  // Component
  void set_services(Services& services) override;

  // MxNService
  void register_field(const FieldRegistration& field) override;
  void unregister_field(const std::string& name) override;
  ConnectionId establish(const ConnectionSpec& spec) override;
  ConnectionId propose(const ConnectionSpec& spec) override;
  ConnectionId accept_proposal() override;
  int data_ready(const std::string& field) override;
  void disconnect(ConnectionId id) override;
  [[nodiscard]] TransferStats stats(ConnectionId id) const override;
  [[nodiscard]] bool active(ConnectionId id) const override;
  [[nodiscard]] std::vector<std::byte> checkpoint_fields() const override;
  void restore_fields(std::span<const std::byte> blob) override;

  [[nodiscard]] int side() const { return side_; }

  // --- multi-tenant fabric hooks (src/fabric, docs/PERFORMANCE.md) ---------
  /// Drive exactly one connection's transfer, regardless of which field it
  /// couples — the per-tenant analogue of data_ready(field), used by the
  /// fabric to tick tenants independently. Period gating applies on the
  /// source side as in data_ready. Returns true if the connection moved
  /// data (false if retired or gated off this call).
  bool data_ready_connection(ConnectionId id);

  /// Replace the connection's transmission policy (eager / rendezvous /
  /// reliable two-phase / custom) chosen at establish time from the spec's
  /// flags. Local: each side may be overridden independently, but the two
  /// sides' policies must agree on the wire protocol they speak.
  void set_policy(ConnectionId id,
                  std::shared_ptr<const TransmissionPolicy> policy);
  /// The connection's current policy name ("eager", "rendezvous", ...).
  [[nodiscard]] const char* policy_name(ConnectionId id) const;

  /// Re-shard and budget this component's schedule cache (see
  /// sched::ScheduleCacheConfig). Connections pin their schedules, so
  /// eviction under a byte budget never invalidates an established tenant.
  void configure_schedule_cache(const sched::ScheduleCacheConfig& cfg) {
    cache_.configure(cfg);
  }
  [[nodiscard]] sched::ScheduleCache::Stats schedule_cache_stats() const {
    return cache_.stats();
  }
  [[nodiscard]] std::size_t schedule_cache_bytes() const {
    return cache_.bytes();
  }
  [[nodiscard]] std::size_t schedule_cache_evicted() const {
    return cache_.evicted();
  }

  // --- elastic rescaling (docs/RESCALING.md) -------------------------------
  /// Live repartition of this component onto `new_layout`, channel-collective
  /// over EVERY channel rank (members of either side and spectators alike):
  ///
  ///  1. epoch fence — a channel barrier drains all in-flight traffic of the
  ///     old epoch (collectivity means every rank has finished its pre-fence
  ///     data_ready calls);
  ///  2. migrate — for every registered field, an old→new delta schedule
  ///     (sched::build_delta_schedule) moves each owned region from its old
  ///     owner to its new one: same-rank regions by a local extract→inject,
  ///     the rest over the channel via the two-phase reliable exchange on
  ///     per-epoch migration tags (fault-tolerant: drop/dup/reorder/delay
  ///     are absorbed by retries and attempt serials);
  ///  3. splice — the side cohorts are rebuilt with Communicator::subset,
  ///     admitting ranks that were spectators and retiring ranks that now
  ///     are;
  ///  4. swap — field registrations are replaced by `new_fields` (their
  ///     descriptors stamped with the new epoch via Descriptor::with_version)
  ///     and every live connection's coupling and schedule are rebuilt;
  ///     only then is the previous epoch's schedule-cache generation retired.
  ///
  /// `new_fields` holds this rank's registrations for its NEW side — one per
  /// currently registered field name of that side (a field name may be
  /// omitted cohort-wide only when the side's rank list is unchanged, in
  /// which case the old registration is kept and no migration runs for it).
  /// Spectator ranks pass an empty vector. Migrated fields must be readable
  /// on the old side and writable on the new one.
  void rescale(const Layout& new_layout,
               std::vector<FieldRegistration> new_fields, int timeout_ms = -1,
               int max_retries = 2);

  /// False on spectator ranks (elastic components only).
  [[nodiscard]] bool is_member() const { return side_ >= 0; }
  [[nodiscard]] bool elastic() const { return elastic_; }
  /// Number of completed rescales (the current descriptor generation).
  [[nodiscard]] std::uint64_t rescale_epoch() const { return repoch_; }
  [[nodiscard]] const RescaleStats& rescale_stats() const { return rstats_; }
  /// Current channel-rank layout: side(0) and side(1) of the live epoch.
  [[nodiscard]] Layout layout() const { return {side_ranks_[0], side_ranks_[1]}; }

  // --- failure-recovery hooks (src/redundancy, docs/REDUNDANCY.md) ----------
  /// The pair-wide channel communicator (cheap shared handle).
  [[nodiscard]] rt::Communicator channel() const { return channel_; }
  /// This rank's side cohort communicator (null on spectators).
  [[nodiscard]] rt::Communicator cohort() const { return cohort_; }
  /// This rank's registered fields (empty on spectators).
  [[nodiscard]] const std::map<std::string, FieldRegistration>& fields() const {
    return fields_;
  }
  /// Open a recovery descriptor generation: bumps the epoch counter that
  /// stamps re-registered descriptors and keys the schedule cache, exactly
  /// like the migrate step of rescale(). Paired with splice_recovered(),
  /// which retires the generations before it. Elastic components only.
  std::uint64_t begin_recovery_epoch();
  /// Swap this component onto a recovered channel after dead ranks were
  /// rebuilt elsewhere (RedundancyGroup::recover): replaces the channel,
  /// re-mints the side cohorts (collective subset on the new channel),
  /// installs the recovered field registrations, re-establishes every live
  /// connection (descriptor re-exchange + attempt-serial alignment), and
  /// retires the pre-recovery schedule-cache generations. `new_layout` and
  /// `new_regs` use the NEW channel's rank numbering; the data migration has
  /// already happened by the time this is called. Collective over the new
  /// channel.
  void splice_recovered(rt::Communicator new_channel, Layout new_layout,
                        std::map<std::string, FieldRegistration> new_regs);

 private:
  struct Connection;

  const FieldRegistration& field(const std::string& name) const;
  ConnectionId establish_impl(const ConnectionSpec& spec);
  ConnectionId establish_elastic(const ConnectionSpec& spec);
  void run_transfer(Connection& c);
  /// Channel-collective broadcast of a descriptor from `root_channel_rank`
  /// (which packs `mine`; other ranks pass null and unpack the result).
  dad::DescriptorPtr bcast_descriptor(int root_channel_rank,
                                      const dad::DescriptorPtr& mine);
  void migrate_side(int s, const Layout& old_layout, const Layout& new_layout,
                    std::map<std::string, FieldRegistration>& incoming,
                    std::map<std::string, FieldRegistration>& new_regs,
                    int new_side, int timeout_ms, int max_retries);
  void reestablish_connections();

  rt::Communicator channel_;
  rt::Communicator cohort_;
  int side_;
  std::vector<int> side_ranks_[2];

  std::map<std::string, FieldRegistration> fields_;
  std::map<ConnectionId, std::unique_ptr<Connection>> connections_;
  sched::ScheduleCache cache_;
  int next_id_ = 1;
  // Pair-wide connection sequence number; advances identically on both
  // sides because establishment is collective across the pair.
  int seq_ = 0;

  bool elastic_ = false;
  std::uint64_t repoch_ = 0;
  RescaleStats rstats_;
};

/// Wire a pair of MxN components across one world communicator: side 0 =
/// world ranks [0, m), side 1 = [m, m+n). Every process gets its own
/// instance (SPMD). Purely a convenience for tests, examples and benches.
std::shared_ptr<MxNComponent> make_paired_mxn(rt::Communicator world, int m,
                                              int n);

/// Wire an elastic pair over `channel` (docs/RESCALING.md): channel-collective
/// — EVERY channel rank calls it with the same layout and gets an instance
/// (spectator instances included), so the component can later rescale onto
/// any subset of the channel.
std::shared_ptr<MxNComponent> make_elastic_mxn(rt::Communicator channel,
                                               Layout initial);

}  // namespace mxn::core
