#pragma once

#include <vector>

#include "dad/descriptor.hpp"
#include "rt/communicator.hpp"
#include "sched/coupling.hpp"

namespace mxn::core {

/// The "particle-based container solution" the paper reports as under
/// development for the M×N component (§4.1): dense-array descriptors cannot
/// describe particle fields, whose elements move between owners as they
/// move through space. A ParticleSet owns this rank's particles; ownership
/// is *derived* from a cell decomposition — a particle belongs to whichever
/// rank owns its cell under the DAD template — so the same descriptor
/// machinery that drives array redistribution drives particle migration and
/// M×N particle transfer.
///
/// P must be trivially copyable; `cell_of` maps a particle to its global
/// cell coordinates.
template <class P>
  requires std::is_trivially_copyable_v<P>
class ParticleSet {
 public:
  ParticleSet(dad::DescriptorPtr decomposition, int rank)
      : desc_(std::move(decomposition)), rank_(rank) {}

  [[nodiscard]] std::vector<P>& particles() { return particles_; }
  [[nodiscard]] const std::vector<P>& particles() const { return particles_; }
  [[nodiscard]] const dad::Descriptor& decomposition() const { return *desc_; }
  [[nodiscard]] int rank() const { return rank_; }

  /// Number of local particles currently on the wrong rank.
  template <class CellOf>
  [[nodiscard]] std::size_t misplaced(CellOf&& cell_of) const {
    std::size_t n = 0;
    for (const auto& p : particles_)
      if (desc_->owner(cell_of(p)) != rank_) ++n;
    return n;
  }

  /// Intra-cohort migration: after this collective call every particle
  /// lives on the rank owning its cell. One alltoall-style exchange.
  template <class CellOf>
  void migrate(rt::Communicator cohort, CellOf&& cell_of, int tag) {
    if (cohort.size() != desc_->nranks())
      throw rt::UsageError("cohort size does not match the decomposition");
    const int n = cohort.size();
    std::vector<std::vector<P>> outgoing(n);
    std::vector<P> keep;
    keep.reserve(particles_.size());
    for (const auto& p : particles_) {
      const int owner = desc_->owner(cell_of(p));
      if (owner == rank_)
        keep.push_back(p);
      else
        outgoing[owner].push_back(p);
    }
    particles_ = std::move(keep);
    // Exchange: one message per peer (empty ones included so matching is
    // trivial), tagged by `tag`.
    for (int d = 0; d < n; ++d) {
      if (d == rank_) continue;
      cohort.send_span<P>(d, tag, std::span<const P>(outgoing[d]));
    }
    for (int s = 0; s < n - 1; ++s) {
      auto incoming = cohort.recv_vector<P>(rt::kAnySource, tag);
      particles_.insert(particles_.end(), incoming.begin(), incoming.end());
    }
  }

  /// M×N transfer: move every particle of the source set to the destination
  /// cohort rank owning its cell under the DESTINATION decomposition. Both
  /// cohorts call collectively; `self` is the source set on source ranks
  /// (may also be a destination in self-couplings) and the receiving set on
  /// destination ranks. Source particles are consumed.
  template <class CellOf>
  static void transfer(ParticleSet* src_set, ParticleSet* dst_set,
                       const sched::Coupling& c, CellOf&& cell_of, int tag) {
    rt::Communicator channel = c.channel;
    // Sources need the DESTINATION decomposition to route particles. When
    // the sets are co-located (self-coupling) it is at hand; otherwise the
    // first destination rank publishes it (mirroring the MxN component's
    // descriptor exchange).
    dad::DescriptorPtr dst_desc;
    if (src_set && dst_set) {
      dst_desc = dst_set->desc_;
    } else if (dst_set && c.my_dst_rank() == 0) {
      rt::PackBuffer b;
      dst_set->desc_->pack(b);
      const rt::Buffer bytes = std::move(b).take_buffer();
      for (int s : c.src_ranks) channel.send(s, tag, bytes);
    }
    if (src_set && !dst_set) {
      auto msg = channel.recv(c.dst_ranks.at(0), tag);
      rt::UnpackBuffer u(msg.payload);
      dst_desc = std::make_shared<const dad::Descriptor>(
          dad::Descriptor::unpack(u));
    }

    if (src_set) {
      const int nd = static_cast<int>(c.dst_ranks.size());
      std::vector<std::vector<P>> outgoing(nd);
      for (const auto& p : src_set->particles_)
        outgoing[dst_desc->owner(cell_of(p))].push_back(p);
      src_set->particles_.clear();
      for (int d = 0; d < nd; ++d)
        channel.send_span<P>(c.dst_ranks[d], tag + 1,
                             std::span<const P>(outgoing[d]));
    }
    if (dst_set) {
      for (std::size_t s = 0; s < c.src_ranks.size(); ++s) {
        auto incoming =
            channel.recv_vector<P>(rt::kAnySource, tag + 1);
        dst_set->particles_.insert(dst_set->particles_.end(),
                                   incoming.begin(), incoming.end());
      }
    }
  }

 private:
  dad::DescriptorPtr desc_;
  int rank_;
  std::vector<P> particles_;
};

}  // namespace mxn::core
