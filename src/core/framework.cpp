#include "core/framework.hpp"

namespace mxn::core {

using rt::UsageError;

namespace {

struct ProvidesEntry {
  std::string type;
  PortPtr port;
};

struct UsesEntry {
  std::string type;
  PortPtr connected;  // null until connected
};

}  // namespace

class ServicesImpl final : public Services {
 public:
  ServicesImpl(Framework* fw, std::string name, rt::Communicator cohort)
      : fw_(fw), name_(std::move(name)), cohort_(std::move(cohort)) {}

  void add_provides_port(const std::string& name, const std::string& type,
                         PortPtr port) override {
    if (!port) throw UsageError("provides port must not be null");
    if (provides_.count(name))
      throw UsageError("component '" + name_ +
                       "' already provides port '" + name + "'");
    provides_[name] = {type, std::move(port)};
  }

  void register_uses_port(const std::string& name,
                          const std::string& type) override {
    if (uses_.count(name))
      throw UsageError("component '" + name_ + "' already uses port '" +
                       name + "'");
    uses_[name] = {type, nullptr};
  }

  PortPtr get_port(const std::string& uses_name) override {
    auto it = uses_.find(uses_name);
    if (it == uses_.end())
      throw UsageError("component '" + name_ + "' has no uses port '" +
                       uses_name + "'");
    if (!it->second.connected)
      throw UsageError("uses port '" + uses_name + "' of '" + name_ +
                       "' is not connected");
    return it->second.connected;
  }

  rt::Communicator cohort() override { return cohort_; }

  const std::string& instance_name() const override { return name_; }

  std::map<std::string, ProvidesEntry> provides_;
  std::map<std::string, UsesEntry> uses_;

 private:
  [[maybe_unused]] Framework* fw_;
  std::string name_;
  rt::Communicator cohort_;
};

struct Framework::Instance {
  std::shared_ptr<Component> comp;
  std::unique_ptr<ServicesImpl> services;
};

Framework::Framework(rt::Communicator comm) : comm_(std::move(comm)) {}

Framework::~Framework() = default;

Framework::Instance& Framework::find(const std::string& name) {
  auto it = instances_.find(name);
  if (it == instances_.end())
    throw UsageError("no component instance named '" + name + "'");
  return *it->second;
}

void Framework::instantiate(const std::string& name,
                            std::shared_ptr<Component> comp) {
  if (!comp) throw UsageError("component must not be null");
  if (instances_.count(name))
    throw UsageError("component instance '" + name + "' already exists");
  auto inst = std::make_unique<Instance>();
  inst->comp = std::move(comp);
  inst->services = std::make_unique<ServicesImpl>(this, name, comm_.dup());
  inst->comp->set_services(*inst->services);
  instances_[name] = std::move(inst);
  order_.push_back(name);
}

void Framework::connect(const std::string& user, const std::string& uses_port,
                        const std::string& provider,
                        const std::string& provides_port) {
  auto& u = find(user);
  auto& p = find(provider);
  auto uit = u.services->uses_.find(uses_port);
  if (uit == u.services->uses_.end())
    throw UsageError("'" + user + "' has no uses port '" + uses_port + "'");
  auto pit = p.services->provides_.find(provides_port);
  if (pit == p.services->provides_.end())
    throw UsageError("'" + provider + "' has no provides port '" +
                     provides_port + "'");
  if (uit->second.type != pit->second.type)
    throw UsageError("port type mismatch connecting '" + user + "." +
                     uses_port + "' (" + uit->second.type + ") to '" +
                     provider + "." + provides_port + "' (" +
                     pit->second.type + ")");
  if (uit->second.connected)
    throw UsageError("uses port '" + user + "." + uses_port +
                     "' is already connected");
  uit->second.connected = pit->second.port;
}

void Framework::disconnect(const std::string& user,
                           const std::string& uses_port) {
  auto& u = find(user);
  auto uit = u.services->uses_.find(uses_port);
  if (uit == u.services->uses_.end() || !uit->second.connected)
    throw UsageError("'" + user + "." + uses_port + "' is not connected");
  uit->second.connected = nullptr;
}

int Framework::go(const std::string& name) {
  auto& inst = find(name);
  for (auto& [pname, entry] : inst.services->provides_) {
    if (auto g = std::dynamic_pointer_cast<GoPort>(entry.port))
      return g->go();
  }
  throw UsageError("component '" + name + "' provides no Go port");
}

int Framework::go_all() {
  int status = 0;
  for (const auto& name : order_) {
    auto& inst = find(name);
    for (auto& [pname, entry] : inst.services->provides_) {
      if (auto g = std::dynamic_pointer_cast<GoPort>(entry.port)) {
        const int s = g->go();
        if (s != 0 && status == 0) status = s;
      }
    }
  }
  return status;
}

std::shared_ptr<Component> Framework::component(
    const std::string& name) const {
  auto it = instances_.find(name);
  if (it == instances_.end())
    throw UsageError("no component instance named '" + name + "'");
  return it->second->comp;
}

}  // namespace mxn::core
