#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/port.hpp"
#include "rt/error.hpp"

namespace mxn::core {

/// One data-transformation stage of a coupling pipeline (paper §6): unit
/// conversions, scalings, clamps — the "concatenated component filters" the
/// M×N toolkit is meant to host between redistribution endpoints. A stage
/// transforms this rank's local values in place. Stages that are affine
/// (x -> a*x + b) say so, which lets the pipeline fuse them.
struct TransformStage {
  std::string name;
  std::function<void(std::span<double>)> apply;
  /// Present iff the stage is exactly x -> affine[0]*x + affine[1].
  std::optional<std::pair<double, double>> affine;
};

inline TransformStage affine_stage(double a, double b,
                                   std::string name = "") {
  TransformStage s;
  s.name = name.empty() ? "affine(" + std::to_string(a) + "," +
                              std::to_string(b) + ")"
                        : std::move(name);
  s.apply = [a, b](std::span<double> v) {
    for (auto& x : v) x = a * x + b;
  };
  s.affine = {{a, b}};
  return s;
}

inline TransformStage scale_stage(double factor) {
  return affine_stage(factor, 0.0, "scale(" + std::to_string(factor) + ")");
}

inline TransformStage offset_stage(double delta) {
  return affine_stage(1.0, delta, "offset(" + std::to_string(delta) + ")");
}

/// Kelvin -> Fahrenheit, as the unit-conversion example of §6.
inline TransformStage kelvin_to_fahrenheit_stage() {
  return affine_stage(1.8, -459.67, "K->F");
}

inline TransformStage clamp_stage(double lo, double hi) {
  TransformStage s;
  s.name = "clamp[" + std::to_string(lo) + "," + std::to_string(hi) + "]";
  s.apply = [lo, hi](std::span<double> v) {
    for (auto& x : v) x = std::min(hi, std::max(lo, x));
  };
  return s;  // not affine
}

/// A pipeline of transformation stages applied around a redistribution.
/// §6 raises exactly this pragmatic issue: "how efficiently redistribution
/// functions compose with one another ... Super-component solutions could
/// also be explored ... by combining several successive redistribution and
/// translation components into a single optimized component."
///
/// apply() is the component-per-stage model: each stage makes its own pass
/// over the data (each filter component traverses its buffer once).
/// fuse() is the super-component: runs of adjacent affine stages compose
/// algebraically into a single stage, collapsing k passes into one exact
/// pass. Non-affine stages (clamp, table lookups) act as fusion barriers.
class Pipeline {
 public:
  Pipeline& add(TransformStage stage) {
    if (!stage.apply) throw rt::UsageError("pipeline stage must be callable");
    stages_.push_back(std::move(stage));
    return *this;
  }

  [[nodiscard]] std::size_t size() const { return stages_.size(); }
  [[nodiscard]] const std::vector<TransformStage>& stages() const {
    return stages_;
  }

  /// Component-per-stage execution: one pass over the data per stage.
  void apply(std::span<double> values) const {
    for (const auto& s : stages_) s.apply(values);
  }

  /// Super-component optimization: compose adjacent affine stages. The
  /// returned pipeline is semantically identical with <= as many passes.
  [[nodiscard]] Pipeline fuse() const {
    Pipeline out;
    std::optional<std::pair<double, double>> run;  // (a, b) accumulated
    std::string run_name;
    auto flush = [&] {
      if (!run) return;
      out.add(affine_stage(run->first, run->second, "fused[" + run_name +
                                                        "]"));
      run.reset();
      run_name.clear();
    };
    for (const auto& s : stages_) {
      if (s.affine) {
        const auto [a2, b2] = *s.affine;
        if (run) {
          // (a2*(a1*x + b1) + b2) = (a2*a1)x + (a2*b1 + b2)
          run = {{a2 * run->first, a2 * run->second + b2}};
          run_name += "|" + s.name;
        } else {
          run = s.affine;
          run_name = s.name;
        }
      } else {
        flush();
        out.add(s);
      }
    }
    flush();
    return out;
  }

  [[nodiscard]] std::string describe() const {
    std::string out;
    for (std::size_t i = 0; i < stages_.size(); ++i) {
      if (i) out += " -> ";
      out += stages_[i].name;
    }
    return out;
  }

 private:
  std::vector<TransformStage> stages_;
};

}  // namespace mxn::core
