#pragma once

#include <cstdint>

#include "core/field.hpp"
#include "sched/coupling.hpp"
#include "sched/schedule.hpp"

namespace mxn::core {

/// Traffic moved by one erased transfer (local view).
struct MovedCounts {
  std::uint64_t elements = 0;
  std::uint64_t bytes = 0;
};

/// Byte-level twin of sched::execute: performs this process's share of a
/// region schedule through the type-erased pack/unpack closures of field
/// registrations. `src` may be null when this process has no sends, `dst`
/// null when it has no receives.
///
/// Receives honor `c.recv_timeout_ms`. With `staged` set, every incoming
/// payload is buffered and validated BEFORE the first inject closure runs,
/// so a fault mid-receive (TimeoutError, payload mismatch) leaves the
/// destination field byte-for-byte untouched — the property the reliable
/// M×N transfer builds its retry on.
MovedCounts execute_erased(const sched::RegionSchedule& s,
                           const FieldRegistration* src,
                           const FieldRegistration* dst,
                           const sched::Coupling& c, int tag,
                           bool staged = false);

}  // namespace mxn::core
