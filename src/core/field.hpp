#pragma once

#include <functional>
#include <string>

#include "dad/dist_array.hpp"

namespace mxn::core {

/// Allowed M×N transfer directions for a registered field (paper §4.1: the
/// registration "indicates which access modes for M×N transfers with that
/// data field are allowed — read, write or read/write").
enum class AccessMode { Read, Write, ReadWrite };

[[nodiscard]] inline bool readable(AccessMode m) {
  return m != AccessMode::Write;
}
[[nodiscard]] inline bool writable(AccessMode m) {
  return m != AccessMode::Read;
}

/// Type-erased handle onto one registered parallel data field: the DAD plus
/// direct access to this process's patch storage, exposed as pack/unpack
/// closures. This is the "short-circuit the DA package, go straight at the
/// local memory" model §2.2.2 argues for.
struct FieldRegistration {
  std::string name;
  dad::DescriptorPtr descriptor;
  std::size_t elem_size = 0;
  AccessMode mode = AccessMode::ReadWrite;
  /// Copy `region` (inside one owned patch) out of local storage, row-major.
  std::function<void(const dad::Patch&, std::byte*)> extract;
  /// Inverse of extract.
  std::function<void(const dad::Patch&, const std::byte*)> inject;
};

/// Bind a typed DistArray as a registerable field. The array must outlive
/// the registration.
template <class T>
FieldRegistration make_field(std::string name, dad::DistArray<T>* array,
                             AccessMode mode) {
  FieldRegistration f;
  f.name = std::move(name);
  f.descriptor = array->descriptor_ptr();
  f.elem_size = sizeof(T);
  f.mode = mode;
  if (readable(mode)) {
    f.extract = [array](const dad::Patch& region, std::byte* out) {
      array->extract(region, reinterpret_cast<T*>(out));
    };
  }
  if (writable(mode)) {
    f.inject = [array](const dad::Patch& region, const std::byte* in) {
      array->inject(region, reinterpret_cast<const T*>(in));
    };
  }
  return f;
}

}  // namespace mxn::core
