#pragma once

#include <string>

#include "core/port.hpp"
#include "rt/communicator.hpp"

namespace mxn::core {

/// A component's view of its framework (the CCA Services handle). Obtained
/// in Component::set_services; used to publish provides ports, declare uses
/// ports, and fetch connected ports.
class Services {
 public:
  virtual ~Services() = default;

  /// Publish an interface this component implements.
  virtual void add_provides_port(const std::string& name,
                                 const std::string& type, PortPtr port) = 0;

  /// Declare a connection end point this component will call through.
  virtual void register_uses_port(const std::string& name,
                                  const std::string& type) = 0;

  /// Resolve a connected uses port. Throws if the port is not connected.
  virtual PortPtr get_port(const std::string& uses_name) = 0;

  /// Typed convenience over get_port.
  template <class P>
  std::shared_ptr<P> get_port_as(const std::string& uses_name) {
    auto p = std::dynamic_pointer_cast<P>(get_port(uses_name));
    if (!p)
      throw rt::UsageError("port '" + uses_name +
                           "' is connected to an incompatible provider");
    return p;
  }

  /// The communicator spanning this component's cohort — the set of
  /// identical component instances across the framework's processes (paper
  /// §2.1). Intra-cohort communication is out-of-band from the CCA
  /// framework, exactly as the paper describes.
  virtual rt::Communicator cohort() = 0;

  /// Name under which the component was instantiated.
  virtual const std::string& instance_name() const = 0;
};

/// A CCA component: a software unit instantiated on one process or, as a
/// cohort, across the processes of a parallel framework.
class Component {
 public:
  virtual ~Component() = default;

  /// Called by the framework right after instantiation; the component
  /// registers its uses/provides ports here.
  virtual void set_services(Services& services) = 0;
};

}  // namespace mxn::core
