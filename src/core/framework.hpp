#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/component.hpp"
#include "rt/communicator.hpp"
#include "rt/error.hpp"

namespace mxn::core {

/// A direct-connected CCA framework instance (paper §2.1, Figure 2 left):
/// every component instantiated here lives in this process's address space,
/// and a port invocation is a refined form of library call. Run SPMD across
/// the processes of `comm`, the identical component instances form cohorts;
/// each component's Services::cohort() is a dup of the framework
/// communicator.
///
/// All framework operations (instantiate, connect, go) are cohort-collective
/// in the SPMD sense: every process executes the same calls in the same
/// order, just as an MPI program would.
class Framework {
 public:
  explicit Framework(rt::Communicator comm);
  ~Framework();

  Framework(const Framework&) = delete;
  Framework& operator=(const Framework&) = delete;

  /// Instantiate a component under `name` and call its set_services.
  void instantiate(const std::string& name, std::shared_ptr<Component> comp);

  /// Connect user's uses port to provider's provides port. The declared
  /// type strings must match.
  void connect(const std::string& user, const std::string& uses_port,
               const std::string& provider, const std::string& provides_port);

  void disconnect(const std::string& user, const std::string& uses_port);

  /// Invoke the GoPort of the named component.
  int go(const std::string& name);

  /// Invoke every registered Go port (startup semantics of §4.3); returns
  /// the first nonzero status, else 0.
  int go_all();

  [[nodiscard]] rt::Communicator comm() const { return comm_; }

  [[nodiscard]] std::shared_ptr<Component> component(
      const std::string& name) const;

 private:
  friend class ServicesImpl;
  struct Instance;

  Instance& find(const std::string& name);

  rt::Communicator comm_;
  std::map<std::string, std::unique_ptr<Instance>> instances_;
  std::vector<std::string> order_;  // instantiation order, for go_all
};

}  // namespace mxn::core
