#include "core/mxn_component.hpp"

#include <algorithm>
#include <cstring>
#include <map>

#include "core/connection_impl.hpp"
#include "core/transmission_policy.hpp"
#include "sched/schedule.hpp"
#include "trace/trace.hpp"

namespace mxn::core {

using detail::kProposalTag;
using rt::UsageError;

void ConnectionSpec::pack(rt::PackBuffer& b) const {
  b.pack(src_field);
  b.pack(dst_field);
  b.pack(src_side);
  b.pack(one_shot);
  b.pack(period);
  b.pack(handshake);
  b.pack(reliable);
  b.pack(timeout_ms);
  b.pack(max_retries);
}

ConnectionSpec ConnectionSpec::unpack(rt::UnpackBuffer& u) {
  ConnectionSpec s;
  s.src_field = u.unpack_string();
  s.dst_field = u.unpack_string();
  s.src_side = u.unpack<int>();
  s.one_shot = u.unpack<bool>();
  s.period = u.unpack<int>();
  s.handshake = u.unpack<bool>();
  s.reliable = u.unpack<bool>();
  s.timeout_ms = u.unpack<int>();
  s.max_retries = u.unpack<int>();
  return s;
}

MxNComponent::MxNComponent(rt::Communicator channel, rt::Communicator cohort,
                           int side, std::vector<int> side0_ranks,
                           std::vector<int> side1_ranks)
    : channel_(std::move(channel)),
      cohort_(std::move(cohort)),
      side_(side) {
  if (side != 0 && side != 1) throw UsageError("side must be 0 or 1");
  side_ranks_[0] = std::move(side0_ranks);
  side_ranks_[1] = std::move(side1_ranks);
  if (static_cast<int>(side_ranks_[side_].size()) != cohort_.size())
    throw UsageError("cohort size does not match this side's rank list");
}

void MxNComponent::set_services(Services& services) {
  services.add_provides_port(
      "mxn", "mxn.MxNService",
      std::shared_ptr<MxNService>(this, [](MxNService*) {}));
}

void MxNComponent::register_field(const FieldRegistration& field) {
  if (elastic_ && side_ < 0)
    throw UsageError("spectator ranks hold no data; fields are registered "
                     "by side members only");
  if (field.name.empty()) throw UsageError("field name must not be empty");
  if (!field.descriptor) throw UsageError("field needs a descriptor");
  if (field.elem_size == 0) throw UsageError("field elem_size must be > 0");
  if (field.descriptor->nranks() != cohort_.size())
    throw UsageError("field '" + field.name + "' is decomposed over " +
                     std::to_string(field.descriptor->nranks()) +
                     " ranks but the cohort has " +
                     std::to_string(cohort_.size()));
  if (fields_.count(field.name))
    throw UsageError("field '" + field.name + "' already registered");
  fields_[field.name] = field;
}

void MxNComponent::unregister_field(const std::string& name) {
  if (!fields_.erase(name))
    throw UsageError("field '" + name + "' is not registered");
}

const FieldRegistration& MxNComponent::field(const std::string& name) const {
  auto it = fields_.find(name);
  if (it == fields_.end())
    throw UsageError("field '" + name + "' is not registered");
  return it->second;
}

ConnectionId MxNComponent::establish(const ConnectionSpec& spec) {
  return elastic_ ? establish_elastic(spec) : establish_impl(spec);
}

ConnectionId MxNComponent::propose(const ConnectionSpec& spec) {
  if (elastic_)
    throw UsageError("elastic components establish connections "
                     "channel-collectively; propose/accept is a paired-mode "
                     "mechanism");
  if (cohort_.rank() == 0) {
    rt::PackBuffer b;
    spec.pack(b);
    channel_.send(side_ranks_[1 - side_][0], kProposalTag,
                  std::move(b).take());
  }
  return establish_impl(spec);
}

ConnectionId MxNComponent::accept_proposal() {
  if (elastic_)
    throw UsageError("elastic components establish connections "
                     "channel-collectively; propose/accept is a paired-mode "
                     "mechanism");
  rt::Buffer bytes;
  if (cohort_.rank() == 0) {
    auto msg = channel_.recv(side_ranks_[1 - side_][0], kProposalTag);
    bytes = std::move(msg.payload);
  }
  bytes = cohort_.bcast(std::move(bytes), 0);
  rt::UnpackBuffer u(bytes);
  return establish_impl(ConnectionSpec::unpack(u));
}

ConnectionId MxNComponent::establish_impl(const ConnectionSpec& spec) {
  trace::Span span("mxn.establish", "mxn");
  if (spec.src_side != 0 && spec.src_side != 1)
    throw UsageError("spec.src_side must be 0 or 1");
  if (spec.period < 1) throw UsageError("spec.period must be >= 1");

  auto c = std::make_unique<Connection>();
  c->spec = spec;
  c->seq = seq_++;
  c->i_am_src = side_ == spec.src_side;
  c->i_am_dst = !c->i_am_src;
  c->policy = policy_from_spec(spec);

  const std::string& local_name =
      c->i_am_src ? spec.src_field : spec.dst_field;
  const FieldRegistration& local = field(local_name);
  if (c->i_am_src && !readable(local.mode))
    throw UsageError("field '" + local_name +
                     "' is write-only; cannot export it");
  if (c->i_am_dst && !writable(local.mode))
    throw UsageError("field '" + local_name +
                     "' is read-only; cannot import into it");

  // Exchange descriptors: cohort leaders swap over the channel, then
  // broadcast the peer's descriptor within the cohort.
  rt::Buffer peer_bytes;
  if (cohort_.rank() == 0) {
    rt::PackBuffer b;
    local.descriptor->pack(b);
    channel_.send(side_ranks_[1 - side_][0], c->desc_tag(),
                  std::move(b).take());
    auto msg = channel_.recv(side_ranks_[1 - side_][0], c->desc_tag());
    peer_bytes = std::move(msg.payload);
  }
  peer_bytes = cohort_.bcast(std::move(peer_bytes), 0);
  rt::UnpackBuffer u(peer_bytes);
  auto peer_desc = std::make_shared<const dad::Descriptor>(
      dad::Descriptor::unpack(u));

  const dad::DescriptorPtr src_desc =
      c->i_am_src ? local.descriptor : peer_desc;
  const dad::DescriptorPtr dst_desc =
      c->i_am_dst ? local.descriptor : peer_desc;

  c->coupling.channel = channel_;
  c->coupling.src_ranks = side_ranks_[spec.src_side];
  c->coupling.dst_ranks = side_ranks_[1 - spec.src_side];
  c->coupling.recv_timeout_ms = spec.timeout_ms;

  const int my_src = c->i_am_src ? cohort_.rank() : -1;
  const int my_dst = c->i_am_dst ? cohort_.rank() : -1;
  c->schedule = cache_.get_shared(src_desc, dst_desc, my_src, my_dst);

  const ConnectionId id = next_id_++;
  connections_[id] = std::move(c);
  return id;
}

void MxNComponent::run_transfer(Connection& c) {
  trace::Span span("mxn.transfer", "mxn",
                   static_cast<std::uint64_t>(c.seq));
  TransferContext ctx;
  ctx.schedule = c.schedule.get();
  ctx.src = c.i_am_src ? &field(c.spec.src_field) : nullptr;
  ctx.dst = c.i_am_dst ? &field(c.spec.dst_field) : nullptr;
  ctx.coupling = &c.coupling;
  ctx.data_tag = c.data_tag();
  ctx.ack_tag = c.ack_tag();
  ctx.commit_tag = c.commit_tag();
  ctx.timeout_ms = c.spec.timeout_ms;
  ctx.max_retries = c.spec.max_retries;
  ctx.serial = &c.epoch;
  ctx.seq = c.seq;
  ctx.stats = &c.stats;
  c.policy->transfer(ctx);
  ++c.stats.transfers;
  if (c.spec.one_shot) c.retired = true;
}

int MxNComponent::data_ready(const std::string& field_name) {
  trace::Span span("mxn.data_ready", "mxn");
  if (elastic_ && side_ < 0)
    throw UsageError("spectator ranks hold no data; data_ready is for side "
                     "members only");
  // Require the field to exist, even if no connection currently moves it.
  (void)field(field_name);
  int moved = 0;
  for (auto& [id, cptr] : connections_) {
    Connection& c = *cptr;
    if (c.retired) continue;
    if (c.i_am_src && c.spec.src_field == field_name) {
      ++c.src_calls;
      if (c.src_calls % c.spec.period != 0) continue;
      run_transfer(c);
      ++moved;
    } else if (c.i_am_dst && c.spec.dst_field == field_name) {
      run_transfer(c);
      ++moved;
    }
  }
  return moved;
}

bool MxNComponent::data_ready_connection(ConnectionId id) {
  trace::Span span("mxn.data_ready_connection", "mxn");
  if (elastic_ && side_ < 0)
    throw UsageError("spectator ranks hold no data; data_ready is for side "
                     "members only");
  auto it = connections_.find(id);
  if (it == connections_.end())
    throw UsageError("no such connection: " + std::to_string(id));
  Connection& c = *it->second;
  if (c.retired) return false;
  if (c.i_am_src) {
    ++c.src_calls;
    if (c.src_calls % c.spec.period != 0) return false;
  }
  run_transfer(c);
  return true;
}

void MxNComponent::set_policy(
    ConnectionId id, std::shared_ptr<const TransmissionPolicy> policy) {
  if (!policy) throw UsageError("set_policy: null policy");
  auto it = connections_.find(id);
  if (it == connections_.end())
    throw UsageError("no such connection: " + std::to_string(id));
  it->second->policy = std::move(policy);
}

const char* MxNComponent::policy_name(ConnectionId id) const {
  auto it = connections_.find(id);
  if (it == connections_.end())
    throw UsageError("no such connection: " + std::to_string(id));
  return it->second->policy->name();
}

void MxNComponent::disconnect(ConnectionId id) {
  auto it = connections_.find(id);
  if (it == connections_.end())
    throw UsageError("no such connection: " + std::to_string(id));
  it->second->retired = true;
}

TransferStats MxNComponent::stats(ConnectionId id) const {
  auto it = connections_.find(id);
  if (it == connections_.end())
    throw UsageError("no such connection: " + std::to_string(id));
  return it->second->stats;
}

bool MxNComponent::active(ConnectionId id) const {
  auto it = connections_.find(id);
  return it != connections_.end() && !it->second->retired;
}

std::vector<std::byte> MxNComponent::checkpoint_fields() const {
  rt::PackBuffer b;
  std::uint64_t count = 0;
  for (const auto& [name, f] : fields_)
    if (f.extract) ++count;
  b.pack(count);
  const int me = cohort_.is_null() ? -1 : cohort_.rank();  // spectator: 0 fields
  for (const auto& [name, f] : fields_) {
    if (!f.extract) continue;  // write-only fields cannot be checkpointed
    b.pack(name);
    const auto& patches = f.descriptor->patches_of(me);
    std::vector<std::byte> local(
        static_cast<std::size_t>(f.descriptor->local_volume(me)) *
        f.elem_size);
    std::size_t off = 0;
    for (const auto& patch : patches) {
      f.extract(patch, local.data() + off);
      off += static_cast<std::size_t>(patch.volume()) * f.elem_size;
    }
    b.pack(local);
  }
  return std::move(b).take();
}

void MxNComponent::restore_fields(std::span<const std::byte> blob) {
  rt::UnpackBuffer u(blob);
  const auto count = u.unpack<std::uint64_t>();
  const int me = cohort_.is_null() ? -1 : cohort_.rank();  // spectator: 0 fields
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto name = u.unpack_string();
    auto data = u.unpack_vector<std::byte>();
    const FieldRegistration& f = field(name);
    if (!f.inject)
      throw UsageError("field '" + name + "' is not writable; cannot "
                       "restore it");
    const std::size_t expect =
        static_cast<std::size_t>(f.descriptor->local_volume(me)) *
        f.elem_size;
    if (data.size() != expect)
      throw UsageError("checkpoint of field '" + name +
                       "' does not match the registered decomposition");
    std::size_t off = 0;
    for (const auto& patch : f.descriptor->patches_of(me)) {
      f.inject(patch, data.data() + off);
      off += static_cast<std::size_t>(patch.volume()) * f.elem_size;
    }
  }
}

std::shared_ptr<MxNComponent> make_paired_mxn(rt::Communicator world, int m,
                                              int n) {
  if (m + n != world.size())
    throw UsageError("make_paired_mxn: m + n must equal world size");
  const int side = world.rank() < m ? 0 : 1;
  auto cohort = world.split(side, world.rank());
  std::vector<int> side0(m), side1(n);
  for (int i = 0; i < m; ++i) side0[i] = i;
  for (int i = 0; i < n; ++i) side1[i] = m + i;
  return std::make_shared<MxNComponent>(world, cohort, side, side0, side1);
}

}  // namespace mxn::core
