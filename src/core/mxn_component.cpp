#include "core/mxn_component.hpp"

#include <algorithm>
#include <cstring>
#include <map>

#include "core/erased_exec.hpp"
#include "sched/schedule.hpp"
#include "trace/trace.hpp"

namespace mxn::core {

using rt::UsageError;

namespace {

// Channel tag plan: connection `seq` uses kConnBase + 4*seq + {0: data,
// 1: ack, 2: descriptor exchange, 3: commit}; proposals travel on
// kProposalTag. The `seq` counter advances identically on both sides
// because establishment is collective across the pair.
constexpr int kProposalTag = 900;
constexpr int kConnBase = 1000;

// Reliable-mode wire framing: every data/ack/commit payload starts with the
// sender's 8-byte attempt serial (the "epoch"). Receivers discard anything
// older than their own attempt — stale traffic from an aborted attempt is
// consumed and dropped, never mistaken for the retry.
constexpr std::size_t kSerialBytes = sizeof(std::uint64_t);

std::uint64_t peek_serial(std::span<const std::byte> payload) {
  if (payload.size() < kSerialBytes)
    throw UsageError("reliable transfer message too short for its serial");
  std::uint64_t s = 0;
  std::memcpy(&s, payload.data(), kSerialBytes);
  return s;
}

void put_serial(std::byte* out, std::uint64_t s) {
  std::memcpy(out, &s, kSerialBytes);
}

std::vector<std::byte> serial_only(std::uint64_t s) {
  std::vector<std::byte> b(kSerialBytes);
  put_serial(b.data(), s);
  return b;
}

}  // namespace

void ConnectionSpec::pack(rt::PackBuffer& b) const {
  b.pack(src_field);
  b.pack(dst_field);
  b.pack(src_side);
  b.pack(one_shot);
  b.pack(period);
  b.pack(handshake);
  b.pack(reliable);
  b.pack(timeout_ms);
  b.pack(max_retries);
}

ConnectionSpec ConnectionSpec::unpack(rt::UnpackBuffer& u) {
  ConnectionSpec s;
  s.src_field = u.unpack_string();
  s.dst_field = u.unpack_string();
  s.src_side = u.unpack<int>();
  s.one_shot = u.unpack<bool>();
  s.period = u.unpack<int>();
  s.handshake = u.unpack<bool>();
  s.reliable = u.unpack<bool>();
  s.timeout_ms = u.unpack<int>();
  s.max_retries = u.unpack<int>();
  return s;
}

struct MxNComponent::Connection {
  ConnectionSpec spec;
  bool i_am_src = false;
  bool i_am_dst = false;
  const sched::RegionSchedule* schedule = nullptr;
  sched::Coupling coupling;
  int seq = 0;
  int src_calls = 0;
  TransferStats stats;
  bool retired = false;
  // Reliable-mode attempt serial ("invocation epoch"): bumped at the start
  // of every attempt, carried in every message, ratcheted forward when a
  // peer is seen to have retried past us.
  std::uint64_t epoch = 0;

  [[nodiscard]] int data_tag() const { return kConnBase + 4 * seq; }
  [[nodiscard]] int ack_tag() const { return kConnBase + 4 * seq + 1; }
  [[nodiscard]] int desc_tag() const { return kConnBase + 4 * seq + 2; }
  [[nodiscard]] int commit_tag() const { return kConnBase + 4 * seq + 3; }
};

MxNComponent::MxNComponent(rt::Communicator channel, rt::Communicator cohort,
                           int side, std::vector<int> side0_ranks,
                           std::vector<int> side1_ranks)
    : channel_(std::move(channel)),
      cohort_(std::move(cohort)),
      side_(side) {
  if (side != 0 && side != 1) throw UsageError("side must be 0 or 1");
  side_ranks_[0] = std::move(side0_ranks);
  side_ranks_[1] = std::move(side1_ranks);
  if (static_cast<int>(side_ranks_[side_].size()) != cohort_.size())
    throw UsageError("cohort size does not match this side's rank list");
}

void MxNComponent::set_services(Services& services) {
  services.add_provides_port(
      "mxn", "mxn.MxNService",
      std::shared_ptr<MxNService>(this, [](MxNService*) {}));
}

void MxNComponent::register_field(const FieldRegistration& field) {
  if (field.name.empty()) throw UsageError("field name must not be empty");
  if (!field.descriptor) throw UsageError("field needs a descriptor");
  if (field.elem_size == 0) throw UsageError("field elem_size must be > 0");
  if (field.descriptor->nranks() != cohort_.size())
    throw UsageError("field '" + field.name + "' is decomposed over " +
                     std::to_string(field.descriptor->nranks()) +
                     " ranks but the cohort has " +
                     std::to_string(cohort_.size()));
  if (fields_.count(field.name))
    throw UsageError("field '" + field.name + "' already registered");
  fields_[field.name] = field;
}

void MxNComponent::unregister_field(const std::string& name) {
  if (!fields_.erase(name))
    throw UsageError("field '" + name + "' is not registered");
}

const FieldRegistration& MxNComponent::field(const std::string& name) const {
  auto it = fields_.find(name);
  if (it == fields_.end())
    throw UsageError("field '" + name + "' is not registered");
  return it->second;
}

ConnectionId MxNComponent::establish(const ConnectionSpec& spec) {
  return establish_impl(spec);
}

ConnectionId MxNComponent::propose(const ConnectionSpec& spec) {
  if (cohort_.rank() == 0) {
    rt::PackBuffer b;
    spec.pack(b);
    channel_.send(side_ranks_[1 - side_][0], kProposalTag,
                  std::move(b).take());
  }
  return establish_impl(spec);
}

ConnectionId MxNComponent::accept_proposal() {
  rt::Buffer bytes;
  if (cohort_.rank() == 0) {
    auto msg = channel_.recv(side_ranks_[1 - side_][0], kProposalTag);
    bytes = std::move(msg.payload);
  }
  bytes = cohort_.bcast(std::move(bytes), 0);
  rt::UnpackBuffer u(bytes);
  return establish_impl(ConnectionSpec::unpack(u));
}

ConnectionId MxNComponent::establish_impl(const ConnectionSpec& spec) {
  trace::Span span("mxn.establish", "mxn");
  if (spec.src_side != 0 && spec.src_side != 1)
    throw UsageError("spec.src_side must be 0 or 1");
  if (spec.period < 1) throw UsageError("spec.period must be >= 1");

  auto c = std::make_unique<Connection>();
  c->spec = spec;
  c->seq = seq_++;
  c->i_am_src = side_ == spec.src_side;
  c->i_am_dst = !c->i_am_src;

  const std::string& local_name =
      c->i_am_src ? spec.src_field : spec.dst_field;
  const FieldRegistration& local = field(local_name);
  if (c->i_am_src && !readable(local.mode))
    throw UsageError("field '" + local_name +
                     "' is write-only; cannot export it");
  if (c->i_am_dst && !writable(local.mode))
    throw UsageError("field '" + local_name +
                     "' is read-only; cannot import into it");

  // Exchange descriptors: cohort leaders swap over the channel, then
  // broadcast the peer's descriptor within the cohort.
  rt::Buffer peer_bytes;
  if (cohort_.rank() == 0) {
    rt::PackBuffer b;
    local.descriptor->pack(b);
    channel_.send(side_ranks_[1 - side_][0], c->desc_tag(),
                  std::move(b).take());
    auto msg = channel_.recv(side_ranks_[1 - side_][0], c->desc_tag());
    peer_bytes = std::move(msg.payload);
  }
  peer_bytes = cohort_.bcast(std::move(peer_bytes), 0);
  rt::UnpackBuffer u(peer_bytes);
  auto peer_desc = std::make_shared<const dad::Descriptor>(
      dad::Descriptor::unpack(u));

  const dad::DescriptorPtr src_desc =
      c->i_am_src ? local.descriptor : peer_desc;
  const dad::DescriptorPtr dst_desc =
      c->i_am_dst ? local.descriptor : peer_desc;

  c->coupling.channel = channel_;
  c->coupling.src_ranks = side_ranks_[spec.src_side];
  c->coupling.dst_ranks = side_ranks_[1 - spec.src_side];
  c->coupling.recv_timeout_ms = spec.timeout_ms;

  const int my_src = c->i_am_src ? cohort_.rank() : -1;
  const int my_dst = c->i_am_dst ? cohort_.rank() : -1;
  c->schedule = &cache_.get(src_desc, dst_desc, my_src, my_dst);

  const ConnectionId id = next_id_++;
  connections_[id] = std::move(c);
  return id;
}

void MxNComponent::run_transfer(Connection& c) {
  trace::Span span("mxn.transfer", "mxn",
                   static_cast<std::uint64_t>(c.seq));
  if (c.spec.reliable)
    run_transfer_reliable(c);
  else
    run_transfer_loose(c);
  ++c.stats.transfers;
  if (c.spec.one_shot) c.retired = true;
}

void MxNComponent::run_transfer_loose(Connection& c) {
  const FieldRegistration* src =
      c.i_am_src ? &field(c.spec.src_field) : nullptr;
  const FieldRegistration* dst =
      c.i_am_dst ? &field(c.spec.dst_field) : nullptr;
  const MovedCounts moved =
      execute_erased(*c.schedule, src, dst, c.coupling, c.data_tag());
  c.stats.elements += moved.elements;
  c.stats.bytes += moved.bytes;
  static trace::Counter& transfers = trace::counter("mxn.transfers");
  static trace::Counter& bytes = trace::counter("mxn.bytes");
  transfers.add(1);
  bytes.add(moved.bytes);

  if (c.spec.handshake) {
    trace::Span hs("mxn.handshake", "mxn");
    rt::Communicator channel = c.coupling.channel;
    if (c.i_am_dst) {
      for (const auto& pr : c.schedule->recvs)
        channel.send(c.coupling.src_ranks.at(pr.peer), c.ack_tag(),
                     std::vector<std::byte>{});
    } else {
      for (const auto& pr : c.schedule->sends)
        channel.recv(c.coupling.dst_ranks.at(pr.peer), c.ack_tag());
    }
  }
}

// One attempt of the two-phase reliable protocol (docs/FAULTS.md):
//
//   src: send [epoch|data] to each peer --> wait per-peer ack --> commit
//   dst: stage [epoch|data] from each peer --> ack each --> wait commits
//        --> inject the staged payloads
//
// Every message carries the sender's attempt serial; receivers consume and
// DISCARD anything older than their own attempt (self-draining), and ratchet
// forward when a peer has already retried past them. The destination injects
// only after every source's commit, so a failed attempt — TimeoutError at
// any of the waits — leaves the destination field untouched and the whole
// attempt can simply be re-run. Returns false on a retryable timeout.
bool MxNComponent::try_transfer_attempt(Connection& c) {
  const FieldRegistration* src =
      c.i_am_src ? &field(c.spec.src_field) : nullptr;
  const FieldRegistration* dst =
      c.i_am_dst ? &field(c.spec.dst_field) : nullptr;
  const sched::RegionSchedule& s = *c.schedule;
  rt::Communicator channel = c.coupling.channel;
  const int to = c.spec.timeout_ms;
  ++c.epoch;
  MovedCounts moved;
  try {
    if (c.i_am_src) {
      for (const auto& pr : s.sends) {
        const std::size_t nbytes =
            kSerialBytes +
            static_cast<std::size_t>(pr.elements) * src->elem_size;
        rt::Buffer buf = rt::Buffer::allocate(nbytes);
        std::byte* out = buf.mutable_data();
        put_serial(out, c.epoch);
        std::size_t off = kSerialBytes;
        for (const auto& region : pr.regions) {
          src->extract(region, out + off);
          off += static_cast<std::size_t>(region.volume()) * src->elem_size;
        }
        rt::note_bytes_copied(nbytes);
        moved.elements += static_cast<std::uint64_t>(pr.elements);
        moved.bytes += nbytes - kSerialBytes;
        channel.isend(c.coupling.dst_ranks.at(pr.peer), c.data_tag(),
                      std::move(buf));
      }
      for (const auto& pr : s.sends) {
        const int peer = c.coupling.dst_ranks.at(pr.peer);
        for (;;) {
          auto m = channel.recv(peer, c.ack_tag(), to);
          if (peek_serial(m.payload) >= c.epoch) break;  // else: stale ack
        }
      }
      // Every destination gets a reference to the same commit block.
      const rt::Buffer commit = serial_only(c.epoch);
      for (const auto& pr : s.sends)
        channel.send(c.coupling.dst_ranks.at(pr.peer), c.commit_tag(),
                     commit);
    }
    if (c.i_am_dst) {
      // Phase 1: stage every peer's payload BEFORE acking anyone — a
      // missing source (killed, dropped) therefore fails every participant
      // of the transfer, not just the ranks wired to it, and nothing is
      // injected yet so any failure below unwinds to the pre-transfer
      // field state.
      // Staging holds a reference to each arrived payload block (no copy),
      // and stages in ARRIVAL order: an any-source matched receive takes
      // whichever peer's payload lands first, so one slow source does not
      // hold up validation of the others. The predicate only admits peers
      // that still owe this attempt a payload; a stale serial is consumed
      // and dropped, leaving its peer owed.
      std::vector<rt::Buffer> staged(s.recvs.size());
      std::vector<std::uint64_t> serials(s.recvs.size(), 0);
      std::map<int, std::size_t> by_src;
      for (std::size_t i = 0; i < s.recvs.size(); ++i)
        by_src.emplace(c.coupling.src_ranks.at(s.recvs[i].peer), i);
      const auto owed = [&](const rt::Message& m) {
        const auto it = by_src.find(m.src);
        return it != by_src.end() && staged[it->second].empty();
      };
      std::size_t outstanding = s.recvs.size();
      while (outstanding > 0) {
        auto m = channel.recv_matching(rt::kAnySource, c.data_tag(), owed, to);
        const std::size_t i = by_src.at(m.src);
        const auto& pr = s.recvs[i];
        const std::uint64_t ser = peek_serial(m.payload);
        if (ser < c.epoch) continue;  // stale attempt: drain and drop
        if (ser > c.epoch) c.epoch = ser;
        if (m.payload.size() - kSerialBytes !=
            static_cast<std::size_t>(pr.elements) * dst->elem_size)
          throw UsageError("reliable transfer payload size mismatch");
        staged[i] = std::move(m.payload);
        serials[i] = ser;
        --outstanding;
      }
      for (std::size_t i = 0; i < s.recvs.size(); ++i)
        channel.send(c.coupling.src_ranks.at(s.recvs[i].peer), c.ack_tag(),
                     serial_only(serials[i]));
      // Phase 2: wait for every source's commit, then inject.
      for (std::size_t i = 0; i < s.recvs.size(); ++i) {
        const int peer = c.coupling.src_ranks.at(s.recvs[i].peer);
        for (;;) {
          auto m = channel.recv(peer, c.commit_tag(), to);
          if (peek_serial(m.payload) >= serials[i]) break;
        }
      }
      for (std::size_t i = 0; i < s.recvs.size(); ++i) {
        const auto& pr = s.recvs[i];
        std::size_t off = kSerialBytes;
        for (const auto& region : pr.regions) {
          dst->inject(region, staged[i].data() + off);
          off += static_cast<std::size_t>(region.volume()) * dst->elem_size;
        }
        moved.elements += static_cast<std::uint64_t>(pr.elements);
        moved.bytes += staged[i].size() - kSerialBytes;
      }
    }
  } catch (const rt::TimeoutError&) {
    return false;
  }
  c.stats.elements += moved.elements;
  c.stats.bytes += moved.bytes;
  static trace::Counter& transfers = trace::counter("mxn.transfers");
  static trace::Counter& bytes = trace::counter("mxn.bytes");
  transfers.add(1);
  bytes.add(moved.bytes);
  return true;
}

void MxNComponent::run_transfer_reliable(Connection& c) {
  static trace::Counter& retries = trace::counter("mxn.retries");
  static trace::Counter& failures = trace::counter("mxn.transfer_failures");
  const int attempts = 1 + std::max(0, c.spec.max_retries);
  for (int a = 0; a < attempts; ++a) {
    if (a > 0) {
      ++c.stats.retries;
      retries.add(1);
      trace::instant("mxn.retry", "mxn", static_cast<std::uint64_t>(c.seq));
    }
    if (try_transfer_attempt(c)) return;
  }
  ++c.stats.failures;
  failures.add(1);
  trace::instant("mxn.transfer_failure", "mxn",
                 static_cast<std::uint64_t>(c.seq));
  throw TransferError(
      "reliable transfer on connection seq " + std::to_string(c.seq) +
      " ('" + c.spec.src_field + "' -> '" + c.spec.dst_field +
      "') failed after " + std::to_string(attempts) +
      " attempts; destination field left untouched");
}

int MxNComponent::data_ready(const std::string& field_name) {
  trace::Span span("mxn.data_ready", "mxn");
  // Require the field to exist, even if no connection currently moves it.
  (void)field(field_name);
  int moved = 0;
  for (auto& [id, cptr] : connections_) {
    Connection& c = *cptr;
    if (c.retired) continue;
    if (c.i_am_src && c.spec.src_field == field_name) {
      ++c.src_calls;
      if (c.src_calls % c.spec.period != 0) continue;
      run_transfer(c);
      ++moved;
    } else if (c.i_am_dst && c.spec.dst_field == field_name) {
      run_transfer(c);
      ++moved;
    }
  }
  return moved;
}

void MxNComponent::disconnect(ConnectionId id) {
  auto it = connections_.find(id);
  if (it == connections_.end())
    throw UsageError("no such connection: " + std::to_string(id));
  it->second->retired = true;
}

TransferStats MxNComponent::stats(ConnectionId id) const {
  auto it = connections_.find(id);
  if (it == connections_.end())
    throw UsageError("no such connection: " + std::to_string(id));
  return it->second->stats;
}

bool MxNComponent::active(ConnectionId id) const {
  auto it = connections_.find(id);
  return it != connections_.end() && !it->second->retired;
}

std::vector<std::byte> MxNComponent::checkpoint_fields() const {
  rt::PackBuffer b;
  std::uint64_t count = 0;
  for (const auto& [name, f] : fields_)
    if (f.extract) ++count;
  b.pack(count);
  const int me = cohort_.rank();
  for (const auto& [name, f] : fields_) {
    if (!f.extract) continue;  // write-only fields cannot be checkpointed
    b.pack(name);
    const auto& patches = f.descriptor->patches_of(me);
    std::vector<std::byte> local(
        static_cast<std::size_t>(f.descriptor->local_volume(me)) *
        f.elem_size);
    std::size_t off = 0;
    for (const auto& patch : patches) {
      f.extract(patch, local.data() + off);
      off += static_cast<std::size_t>(patch.volume()) * f.elem_size;
    }
    b.pack(local);
  }
  return std::move(b).take();
}

void MxNComponent::restore_fields(std::span<const std::byte> blob) {
  rt::UnpackBuffer u(blob);
  const auto count = u.unpack<std::uint64_t>();
  const int me = cohort_.rank();
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto name = u.unpack_string();
    auto data = u.unpack_vector<std::byte>();
    const FieldRegistration& f = field(name);
    if (!f.inject)
      throw UsageError("field '" + name + "' is not writable; cannot "
                       "restore it");
    const std::size_t expect =
        static_cast<std::size_t>(f.descriptor->local_volume(me)) *
        f.elem_size;
    if (data.size() != expect)
      throw UsageError("checkpoint of field '" + name +
                       "' does not match the registered decomposition");
    std::size_t off = 0;
    for (const auto& patch : f.descriptor->patches_of(me)) {
      f.inject(patch, data.data() + off);
      off += static_cast<std::size_t>(patch.volume()) * f.elem_size;
    }
  }
}

std::shared_ptr<MxNComponent> make_paired_mxn(rt::Communicator world, int m,
                                              int n) {
  if (m + n != world.size())
    throw UsageError("make_paired_mxn: m + n must equal world size");
  const int side = world.rank() < m ? 0 : 1;
  auto cohort = world.split(side, world.rank());
  std::vector<int> side0(m), side1(n);
  for (int i = 0; i < m; ++i) side0[i] = i;
  for (int i = 0; i < n; ++i) side1[i] = m + i;
  return std::make_shared<MxNComponent>(world, cohort, side, side0, side1);
}

}  // namespace mxn::core
