#pragma once

#include <cstdint>
#include <optional>

#include "core/erased_exec.hpp"

namespace mxn::core {

/// One parametrized instance of the two-phase reliable exchange
/// (docs/FAULTS.md): the same wire protocol backs both reliable M×N
/// connection transfers and the patch-migration step of an elastic rescale
/// (docs/RESCALING.md). `src`/`dst` are this rank's roles — either may be
/// null; with both set the rank sends and receives in the same attempt
/// (self-coupling / overlap migration).
struct ReliableExchange {
  const sched::RegionSchedule* schedule = nullptr;
  const FieldRegistration* src = nullptr;  // null: no send role here
  const FieldRegistration* dst = nullptr;  // null: no receive role here
  const sched::Coupling* coupling = nullptr;
  int data_tag = 0;
  int ack_tag = 0;
  int commit_tag = 0;
  /// Per-receive deadline (ms): < 0 inherits the spawn default, 0 waits
  /// forever (retries then never trigger), > 0 recommended.
  int timeout_ms = -1;
  /// Attempt serial ("invocation epoch"), owned by the caller so it persists
  /// across attempts: bumped at the start of every attempt, carried in every
  /// message, ratcheted forward when a peer is seen to have retried past us.
  std::uint64_t* serial = nullptr;
};

/// One attempt of the two-phase protocol:
///
///   src: send [serial|data] to each peer --> wait per-peer ack --> commit
///   dst: stage [serial|data] from each peer --> ack each --> wait commits
///        --> inject the staged payloads
///
/// Every message carries the sender's attempt serial; receivers consume and
/// DISCARD anything older than their own attempt (self-draining), and
/// ratchet forward when a peer has already retried past them. The
/// destination injects only after every source's commit, so a failed
/// attempt — TimeoutError at any of the waits — leaves the destination
/// field untouched and the whole attempt can simply be re-run.
///
/// Returns the moved counts (this rank's sent + received payload bytes), or
/// std::nullopt on a retryable timeout.
std::optional<MovedCounts> run_reliable_attempt(const ReliableExchange& x);

}  // namespace mxn::core
