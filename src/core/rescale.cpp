#include <algorithm>
#include <string>
#include <vector>

#include "core/connection_impl.hpp"
#include "core/reliable_exchange.hpp"
#include "sched/schedule.hpp"
#include "trace/trace.hpp"

// Elastic M×N rescaling (docs/RESCALING.md): live repartitioning of a
// component onto a new channel-rank layout without quiescing the coupling.
// The control plane (field lists, flags, descriptors) travels exclusively on
// channel collectives — whose reserved negative tags the fault injector
// always spares — so a rescale stays deterministic under chaos; the data
// plane (patch migration) runs the same two-phase reliable exchange as
// reliable connection transfers and absorbs drop/dup/reorder/delay through
// retries and attempt serials.

namespace mxn::core {

using rt::UsageError;

namespace {

int index_of(int channel_rank, const std::vector<int>& ranks) {
  for (std::size_t i = 0; i < ranks.size(); ++i)
    if (ranks[i] == channel_rank) return static_cast<int>(i);
  return -1;
}

std::vector<std::string> bcast_names(rt::Communicator& ch, int root,
                                     const std::vector<std::string>& mine) {
  rt::PackBuffer b;
  if (ch.rank() == root) {
    b.pack(static_cast<std::uint64_t>(mine.size()));
    for (const auto& n : mine) b.pack(n);
  }
  auto bytes = ch.bcast(std::move(b).take_buffer(), root);
  rt::UnpackBuffer u(bytes);
  const auto n = u.unpack<std::uint64_t>();
  std::vector<std::string> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(u.unpack_string());
  return out;
}

}  // namespace

// --- Layout ----------------------------------------------------------------

int Layout::side_of(int channel_rank) const {
  if (index_of(channel_rank, side0) >= 0) return 0;
  if (index_of(channel_rank, side1) >= 0) return 1;
  return -1;
}

void Layout::validate(int channel_size) const {
  if (side0.empty() || side1.empty())
    throw UsageError("layout: both sides must be non-empty");
  std::vector<int> seen(static_cast<std::size_t>(channel_size), 0);
  for (int s = 0; s < 2; ++s) {
    for (int r : side(s)) {
      if (r < 0 || r >= channel_size)
        throw UsageError("layout: channel rank " + std::to_string(r) +
                         " out of range");
      if (seen[static_cast<std::size_t>(r)]++ != 0)
        throw UsageError("layout: channel rank " + std::to_string(r) +
                         " appears twice");
    }
  }
}

// --- construction ----------------------------------------------------------

MxNComponent::MxNComponent(rt::Communicator channel, rt::Communicator cohort,
                           int side, Layout layout)
    : channel_(std::move(channel)),
      cohort_(std::move(cohort)),
      side_(side) {
  layout.validate(channel_.size());
  if (side < -1 || side > 1) throw UsageError("side must be -1, 0 or 1");
  if (side >= 0 &&
      static_cast<int>(layout.side(side).size()) != cohort_.size())
    throw UsageError("cohort size does not match this side's rank list");
  if (side < 0 && !cohort_.is_null())
    throw UsageError("spectator ranks must pass a null cohort");
  side_ranks_[0] = std::move(layout.side0);
  side_ranks_[1] = std::move(layout.side1);
  elastic_ = true;
}

std::shared_ptr<MxNComponent> make_elastic_mxn(rt::Communicator channel,
                                               Layout initial) {
  initial.validate(channel.size());
  // Two collective subset() calls mint the side cohorts; spectators draw
  // null from both.
  rt::Communicator c0 = channel.subset(initial.side0);
  rt::Communicator c1 = channel.subset(initial.side1);
  const int side = initial.side_of(channel.rank());
  rt::Communicator cohort = side == 0   ? std::move(c0)
                            : side == 1 ? std::move(c1)
                                        : rt::Communicator{};
  return std::make_shared<MxNComponent>(std::move(channel), std::move(cohort),
                                        side, std::move(initial));
}

// --- channel-collective helpers --------------------------------------------

dad::DescriptorPtr MxNComponent::bcast_descriptor(
    int root_channel_rank, const dad::DescriptorPtr& mine) {
  rt::PackBuffer b;
  if (channel_.rank() == root_channel_rank) {
    if (!mine)
      throw UsageError("descriptor broadcast root lacks the descriptor");
    mine->pack(b);
  }
  auto bytes = channel_.bcast(std::move(b).take_buffer(), root_channel_rank);
  rt::UnpackBuffer u(bytes);
  return std::make_shared<const dad::Descriptor>(dad::Descriptor::unpack(u));
}

// --- elastic establishment --------------------------------------------------

ConnectionId MxNComponent::establish_elastic(const ConnectionSpec& spec) {
  trace::Span span("mxn.establish", "mxn");
  if (spec.src_side != 0 && spec.src_side != 1)
    throw UsageError("spec.src_side must be 0 or 1");
  if (spec.period < 1) throw UsageError("spec.period must be >= 1");

  auto c = std::make_unique<Connection>();
  c->spec = spec;
  c->seq = seq_++;
  c->i_am_src = side_ >= 0 && side_ == spec.src_side;
  c->i_am_dst = side_ >= 0 && side_ == 1 - spec.src_side;
  c->policy = policy_from_spec(spec);

  if (c->i_am_src || c->i_am_dst) {
    const std::string& local_name =
        c->i_am_src ? spec.src_field : spec.dst_field;
    const FieldRegistration& local = field(local_name);
    if (c->i_am_src && !readable(local.mode))
      throw UsageError("field '" + local_name +
                       "' is write-only; cannot export it");
    if (c->i_am_dst && !writable(local.mode))
      throw UsageError("field '" + local_name +
                       "' is read-only; cannot import into it");
  }

  // Descriptor exchange over channel collectives (reserved negative tags:
  // fault-exempt), with spectators participating — they will need every
  // connection's record if a later rescale admits them.
  const std::vector<int>& src_ranks = side_ranks_[spec.src_side];
  const std::vector<int>& dst_ranks = side_ranks_[1 - spec.src_side];
  const dad::DescriptorPtr src_desc = bcast_descriptor(
      src_ranks[0], c->i_am_src ? field(spec.src_field).descriptor : nullptr);
  const dad::DescriptorPtr dst_desc = bcast_descriptor(
      dst_ranks[0], c->i_am_dst ? field(spec.dst_field).descriptor : nullptr);

  c->coupling.channel = channel_;
  c->coupling.src_ranks = src_ranks;
  c->coupling.dst_ranks = dst_ranks;
  c->coupling.recv_timeout_ms = spec.timeout_ms;

  if (side_ >= 0) {
    const int my_src = c->i_am_src ? cohort_.rank() : -1;
    const int my_dst = c->i_am_dst ? cohort_.rank() : -1;
    c->schedule = cache_.get_shared(src_desc, dst_desc, my_src, my_dst);
  }

  const ConnectionId id = next_id_++;
  connections_[id] = std::move(c);
  return id;
}

// --- rescale ----------------------------------------------------------------

void MxNComponent::migrate_side(
    int s, const Layout& old_layout, const Layout& new_layout,
    std::map<std::string, FieldRegistration>& incoming,
    std::map<std::string, FieldRegistration>& new_regs, int new_side,
    int timeout_ms, int max_retries) {
  const std::vector<int>& old_ranks = old_layout.side(s);
  const std::vector<int>& new_ranks = new_layout.side(s);
  const int me = channel_.rank();
  const int my_old = side_ == s ? index_of(me, old_ranks) : -1;
  const int my_new = new_side == s ? index_of(me, new_ranks) : -1;

  // 1. The side's field-name list, from its OLD leader (fields_ is an
  // ordered map, so the list is sorted and identical on every old member).
  std::vector<std::string> names;
  if (me == old_ranks[0])
    for (const auto& [n, f] : fields_) names.push_back(n);
  names = bcast_names(channel_, old_ranks[0], names);

  // 2. Which fields were re-registered, from the side's NEW leader.
  std::vector<std::uint8_t> flags(names.size(), 0);
  if (me == new_ranks[0])
    for (std::size_t i = 0; i < names.size(); ++i)
      flags[i] = incoming.count(names[i]) ? 1 : 0;
  flags = channel_.bcast_vector(std::move(flags), new_ranks[0]);

  for (std::size_t fi = 0; fi < names.size(); ++fi) {
    const std::string& name = names[fi];
    const bool has_new = flags[fi] != 0;
    if (my_new >= 0 && (incoming.count(name) != 0) != has_new)
      throw UsageError("rescale: re-registration of field '" + name +
                       "' disagrees across the new cohort");
    if (my_old >= 0 && fields_.find(name) == fields_.end())
      throw UsageError("rescale: field '" + name +
                       "' is not registered on every old member");

    if (!has_new) {
      // Kept field: legal only when the side's rank list is unchanged — the
      // old registration (array, descriptor generation) stays live.
      if (old_ranks != new_ranks)
        throw UsageError("rescale: field '" + name +
                         "' was not re-registered but side " +
                         std::to_string(s) + "'s rank list changed");
      if (my_new >= 0) new_regs.emplace(name, fields_.at(name));
      continue;
    }

    // 3. Element size and descriptor agreement over channel collectives.
    const auto old_elem = channel_.bcast_value<std::uint64_t>(
        me == old_ranks[0] ? fields_.at(name).elem_size : 0, old_ranks[0]);
    const auto new_elem = channel_.bcast_value<std::uint64_t>(
        me == new_ranks[0] ? incoming.at(name).elem_size : 0, new_ranks[0]);
    if (old_elem != new_elem)
      throw UsageError("rescale: field '" + name +
                       "' changes element size across the rescale");
    const dad::DescriptorPtr old_desc = bcast_descriptor(
        old_ranks[0], my_old >= 0 ? fields_.at(name).descriptor : nullptr);
    // The new descriptor travels stamped with the new epoch, so every rank
    // keys caches on the new generation.
    dad::DescriptorPtr new_stamped;
    if (my_new >= 0)
      new_stamped = std::make_shared<const dad::Descriptor>(
          incoming.at(name).descriptor->with_version(repoch_));
    const dad::DescriptorPtr new_desc =
        bcast_descriptor(new_ranks[0], new_stamped);
    if (my_new >= 0 && !(*new_desc == *new_stamped))
      throw UsageError("rescale: field '" + name +
                       "' is registered with different descriptors across "
                       "the new cohort");
    if (!old_desc->same_shape(*new_desc))
      throw UsageError("rescale: field '" + name +
                       "' changes shape across the rescale");

    // 4. Migrate: local fast path + two-phase reliable wire exchange on
    // per-epoch migration tags.
    if (my_old >= 0 || my_new >= 0) {
      const FieldRegistration* oldf =
          my_old >= 0 ? &fields_.at(name) : nullptr;
      const FieldRegistration* newf =
          my_new >= 0 ? &incoming.at(name) : nullptr;
      const sched::DeltaSchedule delta = sched::build_delta_schedule(
          *old_desc, *new_desc, my_old, my_new, old_ranks, new_ranks);
      const bool sends_out = delta.local_elements > 0 ||
                             !delta.wire.sends.empty();
      const bool takes_in = delta.local_elements > 0 ||
                            !delta.wire.recvs.empty();
      if (oldf != nullptr && sends_out && !oldf->extract)
        throw UsageError("rescale: field '" + name +
                         "' is write-only; cannot migrate out of it");
      if (newf != nullptr && takes_in && !newf->inject)
        throw UsageError("rescale: field '" + name +
                         "' is read-only; cannot migrate into it");

      if (delta.local_elements > 0) {
        std::vector<std::byte> buf;
        for (const auto& region : delta.local) {
          buf.resize(static_cast<std::size_t>(region.volume()) * old_elem);
          oldf->extract(region, buf.data());
          newf->inject(region, buf.data());
        }
        const std::uint64_t local_bytes =
            static_cast<std::uint64_t>(delta.local_elements) * old_elem;
        rstats_.local_bytes += local_bytes;
        static trace::Counter& lb = trace::counter("rescale.local_bytes");
        lb.add(local_bytes);
      }

      if (!delta.wire.sends.empty() || !delta.wire.recvs.empty()) {
        sched::Coupling cpl;
        cpl.channel = channel_;
        cpl.src_ranks = old_ranks;
        cpl.dst_ranks = new_ranks;
        cpl.recv_timeout_ms = timeout_ms;
        const int tag_base = detail::migration_tag_base(repoch_, s, fi);
        ReliableExchange x;
        x.schedule = &delta.wire;
        x.src = oldf;
        x.dst = newf;
        x.coupling = &cpl;
        x.data_tag = tag_base;
        x.ack_tag = tag_base + 1;
        x.commit_tag = tag_base + 2;
        x.timeout_ms = timeout_ms;
        std::uint64_t serial = 0;
        x.serial = &serial;
        static trace::Counter& mig_bytes =
            trace::counter("rescale.migrated_bytes");
        static trace::Counter& mig_retries = trace::counter("rescale.retries");
        const int attempts = 1 + std::max(0, max_retries);
        bool done = false;
        for (int a = 0; a < attempts && !done; ++a) {
          if (a > 0) {
            ++rstats_.retries;
            mig_retries.add(1);
            trace::instant("rescale.retry", "mxn",
                           static_cast<std::uint64_t>(fi));
          }
          if (const auto moved = run_reliable_attempt(x)) {
            rstats_.migrated_bytes += moved->bytes;
            mig_bytes.add(moved->bytes);
            done = true;
          }
        }
        if (!done)
          throw TransferError("rescale: migration of field '" + name +
                              "' (side " + std::to_string(s) +
                              ") failed after " + std::to_string(attempts) +
                              " attempts");
      }
    }

    if (my_new >= 0) {
      FieldRegistration reg = std::move(incoming.at(name));
      reg.descriptor = new_desc;  // stamped, channel-agreed copy
      new_regs.emplace(name, std::move(reg));
      incoming.erase(name);
    }
  }
}

void MxNComponent::reestablish_connections() {
  // Re-exchange descriptors and rebuild coupling + schedule for every live
  // connection, in id order (deterministic across the channel). Runs on the
  // NEW layout: side_ranks_/side_/cohort_/fields_ are already spliced.
  for (auto& [id, cptr] : connections_) {
    Connection& c = *cptr;
    if (c.retired) continue;
    const int src_side = c.spec.src_side;
    const std::vector<int>& src_ranks = side_ranks_[src_side];
    const std::vector<int>& dst_ranks = side_ranks_[1 - src_side];
    c.i_am_src = side_ >= 0 && side_ == src_side;
    c.i_am_dst = side_ >= 0 && side_ == 1 - src_side;
    if (c.i_am_src || c.i_am_dst) {
      const std::string& local_name =
          c.i_am_src ? c.spec.src_field : c.spec.dst_field;
      if (fields_.find(local_name) == fields_.end())
        throw UsageError("rescale: live connection " + std::to_string(id) +
                         " references field '" + local_name +
                         "', which the new cohort did not re-register");
      const FieldRegistration& local = fields_.at(local_name);
      if (c.i_am_src && !readable(local.mode))
        throw UsageError("field '" + local_name +
                         "' is write-only; cannot export it");
      if (c.i_am_dst && !writable(local.mode))
        throw UsageError("field '" + local_name +
                         "' is read-only; cannot import into it");
    }
    const dad::DescriptorPtr src_desc = bcast_descriptor(
        src_ranks[0],
        c.i_am_src ? fields_.at(c.spec.src_field).descriptor : nullptr);
    const dad::DescriptorPtr dst_desc = bcast_descriptor(
        dst_ranks[0],
        c.i_am_dst ? fields_.at(c.spec.dst_field).descriptor : nullptr);
    c.coupling.channel = channel_;
    c.coupling.src_ranks = src_ranks;
    c.coupling.dst_ranks = dst_ranks;
    c.coupling.recv_timeout_ms = c.spec.timeout_ms;
    if (side_ >= 0) {
      const int my_src = c.i_am_src ? cohort_.rank() : -1;
      const int my_dst = c.i_am_dst ? cohort_.rank() : -1;
      c.schedule = cache_.get_shared(src_desc, dst_desc, my_src, my_dst);
    } else {
      c.schedule = nullptr;
    }
    // Align the reliable-mode attempt serial across the channel. Ranks
    // admitted into a role start at 0 while survivors carry the serial of
    // every attempt they ever ran; without alignment a fresh source's
    // first attempt reads as stale to a veteran destination and the
    // connection only converges by timeout racing. The fence has already
    // quiesced in-flight attempts, so jumping everyone to the maximum is
    // safe — and makes any pre-rescale straggler strictly stale.
    c.epoch = c.coupling.channel.allreduce(
        c.epoch,
        [](std::uint64_t a, std::uint64_t b) { return a < b ? b : a; });
  }
}

void MxNComponent::rescale(const Layout& new_layout,
                           std::vector<FieldRegistration> new_fields,
                           int timeout_ms, int max_retries) {
  if (!elastic_)
    throw UsageError(
        "rescale requires an elastic component (make_elastic_mxn)");
  new_layout.validate(channel_.size());
  trace::Span span("mxn.rescale", "mxn", repoch_ + 1);
  const std::int64_t t0 = trace::now_ns();

  // 1. Epoch fence: the rescale is channel-collective, so reaching the
  // fence means every rank finished its pre-fence data_ready calls; sends
  // complete eagerly into mailboxes, so the old epoch's traffic is drained
  // (reliable-mode stragglers duplicated by faults are discarded later by
  // their stale attempt serials).
  const std::int64_t stall = channel_.epoch_fence();
  rstats_.stall_ns += stall;
  static trace::Counter& stall_ns = trace::counter("rescale.stall_ns");
  stall_ns.add(static_cast<std::uint64_t>(stall));

  ++repoch_;
  ++rstats_.epochs;
  static trace::Counter& epochs = trace::counter("rescale.epochs");
  epochs.add(1);
  cache_.set_epoch(repoch_);

  const Layout old_layout{side_ranks_[0], side_ranks_[1]};
  const int new_side = new_layout.side_of(channel_.rank());

  std::map<std::string, FieldRegistration> incoming;
  for (auto& f : new_fields) {
    if (new_side < 0)
      throw UsageError("rescale: ranks that are spectators under the new "
                       "layout must not pass field registrations");
    if (f.name.empty()) throw UsageError("field name must not be empty");
    if (!f.descriptor) throw UsageError("field needs a descriptor");
    if (f.elem_size == 0) throw UsageError("field elem_size must be > 0");
    const auto new_cohort_size =
        static_cast<int>(new_layout.side(new_side).size());
    if (f.descriptor->nranks() != new_cohort_size)
      throw UsageError("rescale: field '" + f.name + "' is decomposed over " +
                       std::to_string(f.descriptor->nranks()) +
                       " ranks but the new side has " +
                       std::to_string(new_cohort_size));
    const std::string name = f.name;
    if (!incoming.emplace(name, std::move(f)).second)
      throw UsageError("rescale: field '" + name + "' passed twice");
  }

  // 2. Migrate both sides' fields onto the new layout (deterministic
  // order: side 0 then side 1, field names sorted within a side).
  std::map<std::string, FieldRegistration> new_regs;
  for (int s = 0; s < 2; ++s)
    migrate_side(s, old_layout, new_layout, incoming, new_regs, new_side,
                 timeout_ms, max_retries);
  if (!incoming.empty())
    throw UsageError("rescale: field '" + incoming.begin()->first +
                     "' is not a currently registered field of this rank's "
                     "new side");

  // 3. Splice the side cohorts: collective admission/retirement.
  rt::Communicator c0 = channel_.subset(new_layout.side0);
  rt::Communicator c1 = channel_.subset(new_layout.side1);
  cohort_ = new_side == 0   ? std::move(c0)
            : new_side == 1 ? std::move(c1)
                            : rt::Communicator{};
  side_ = new_side;
  side_ranks_[0] = new_layout.side0;
  side_ranks_[1] = new_layout.side1;
  fields_ = std::move(new_regs);

  // 4. Swap every live connection onto the new epoch's schedules, then
  // retire the previous schedule-cache generation (their references are
  // all replaced, so nothing dangles).
  reestablish_connections();
  cache_.retire_epochs_before(repoch_);

  rstats_.rescale_ns += trace::now_ns() - t0;
}

std::uint64_t MxNComponent::begin_recovery_epoch() {
  if (!elastic_)
    throw UsageError(
        "recovery requires an elastic component (make_elastic_mxn)");
  ++repoch_;
  ++rstats_.epochs;
  static trace::Counter& epochs = trace::counter("rescale.epochs");
  epochs.add(1);
  cache_.set_epoch(repoch_);
  return repoch_;
}

void MxNComponent::splice_recovered(rt::Communicator new_channel,
                                    Layout new_layout,
                                    std::map<std::string, FieldRegistration>
                                        new_regs) {
  if (!elastic_)
    throw UsageError(
        "recovery requires an elastic component (make_elastic_mxn)");
  if (new_channel.is_null())
    throw UsageError("splice_recovered: null channel");
  new_layout.validate(new_channel.size());
  // No epoch fence here: the old channel contains dead ranks, so a fence
  // could never complete. The caller (RedundancyGroup::recover) has already
  // quiesced the survivors via split_live + its own collectives, and
  // begin_recovery_epoch() bumped the generation the migration stamped onto
  // the recovered descriptors.
  channel_ = std::move(new_channel);
  rt::Communicator c0 = channel_.subset(new_layout.side0);
  rt::Communicator c1 = channel_.subset(new_layout.side1);
  const int new_side = new_layout.side_of(channel_.rank());
  cohort_ = new_side == 0   ? std::move(c0)
            : new_side == 1 ? std::move(c1)
                            : rt::Communicator{};
  side_ = new_side;
  side_ranks_[0] = std::move(new_layout.side0);
  side_ranks_[1] = std::move(new_layout.side1);
  fields_ = std::move(new_regs);
  reestablish_connections();
  cache_.retire_epochs_before(repoch_);
}

}  // namespace mxn::core
