#include "core/erased_exec.hpp"

#include "rt/buffer.hpp"
#include "sched/executor.hpp"
#include "trace/trace.hpp"

namespace mxn::core {

using rt::UsageError;

MovedCounts execute_erased(const sched::RegionSchedule& s,
                           const FieldRegistration* src,
                           const FieldRegistration* dst,
                           const sched::Coupling& c, int tag, bool staged) {
  trace::Span span("sched.execute", "sched",
                   static_cast<std::uint64_t>(s.send_elements() +
                                              s.recv_elements()));
  MovedCounts moved;
  rt::Communicator channel = c.channel;
  if (!s.sends.empty()) {
    if (!src) throw UsageError("schedule has sends but no source field");
    if (!src->extract)
      throw UsageError("field '" + src->name +
                       "' is not readable (access mode)");
  }
  if (!s.recvs.empty()) {
    if (!dst) throw UsageError("schedule has recvs but no destination field");
    if (!dst->inject)
      throw UsageError("field '" + dst->name +
                       "' is not writable (access mode)");
  }
  for (const auto& pr : s.sends) {
    const std::size_t bytes =
        static_cast<std::size_t>(pr.elements) * src->elem_size;
    rt::Buffer buf = rt::Buffer::allocate(bytes);
    std::byte* out = buf.mutable_data();
    std::size_t off = 0;
    for (const auto& region : pr.regions) {
      src->extract(region, out + off);
      off += static_cast<std::size_t>(region.volume()) * src->elem_size;
    }
    rt::note_bytes_copied(bytes);
    moved.elements += static_cast<std::uint64_t>(pr.elements);
    moved.bytes += bytes;
    channel.isend(c.dst_ranks.at(pr.peer), tag, std::move(buf));
  }
  // Staged mode: land every payload before the first inject, so a fault
  // while any receive is outstanding cannot leave the field half-written.
  // Payloads are drained in arrival order; staging keeps a reference to
  // each arrived block (no copy) until the commit walk injects from it.
  std::vector<rt::Buffer> pending;
  if (staged) pending.resize(s.recvs.size());
  sched::detail::drain_arrival_order(
      channel, c.src_ranks, s.recvs, tag, c.recv_timeout_ms,
      [&](std::size_t i, rt::Message msg) {
        const auto& pr = s.recvs[i];
        if (msg.payload.size() !=
            static_cast<std::size_t>(pr.elements) * dst->elem_size)
          throw UsageError("erased transfer payload size mismatch");
        if (staged) {
          pending[i] = std::move(msg.payload);
          return;
        }
        std::size_t off = 0;
        for (const auto& region : pr.regions) {
          dst->inject(region, msg.payload.data() + off);
          off += static_cast<std::size_t>(region.volume()) * dst->elem_size;
        }
        moved.elements += static_cast<std::uint64_t>(pr.elements);
        moved.bytes += msg.payload.size();
      });
  if (staged) {
    for (std::size_t i = 0; i < s.recvs.size(); ++i) {
      const auto& pr = s.recvs[i];
      std::size_t off = 0;
      for (const auto& region : pr.regions) {
        dst->inject(region, pending[i].data() + off);
        off += static_cast<std::size_t>(region.volume()) * dst->elem_size;
      }
      moved.elements += static_cast<std::uint64_t>(pr.elements);
      moved.bytes += pending[i].size();
    }
  }
  return moved;
}

}  // namespace mxn::core
