#include "core/erased_exec.hpp"

#include "trace/trace.hpp"

namespace mxn::core {

using rt::UsageError;

MovedCounts execute_erased(const sched::RegionSchedule& s,
                           const FieldRegistration* src,
                           const FieldRegistration* dst,
                           const sched::Coupling& c, int tag, bool staged) {
  trace::Span span("sched.execute", "sched",
                   static_cast<std::uint64_t>(s.send_elements() +
                                              s.recv_elements()));
  MovedCounts moved;
  rt::Communicator channel = c.channel;
  if (!s.sends.empty()) {
    if (!src) throw UsageError("schedule has sends but no source field");
    if (!src->extract)
      throw UsageError("field '" + src->name +
                       "' is not readable (access mode)");
  }
  if (!s.recvs.empty()) {
    if (!dst) throw UsageError("schedule has recvs but no destination field");
    if (!dst->inject)
      throw UsageError("field '" + dst->name +
                       "' is not writable (access mode)");
  }
  for (const auto& pr : s.sends) {
    std::vector<std::byte> buf(static_cast<std::size_t>(pr.elements) *
                               src->elem_size);
    std::size_t off = 0;
    for (const auto& region : pr.regions) {
      src->extract(region, buf.data() + off);
      off += static_cast<std::size_t>(region.volume()) * src->elem_size;
    }
    moved.elements += static_cast<std::uint64_t>(pr.elements);
    moved.bytes += buf.size();
    channel.send(c.dst_ranks.at(pr.peer), tag, std::move(buf));
  }
  // Staged mode: land every payload before the first inject, so a fault
  // while any receive is outstanding cannot leave the field half-written.
  std::vector<std::vector<std::byte>> pending;
  if (staged) pending.reserve(s.recvs.size());
  for (const auto& pr : s.recvs) {
    auto msg = channel.recv(c.src_ranks.at(pr.peer), tag, c.recv_timeout_ms);
    if (msg.payload.size() !=
        static_cast<std::size_t>(pr.elements) * dst->elem_size)
      throw UsageError("erased transfer payload size mismatch");
    if (staged) {
      pending.push_back(std::move(msg.payload));
      continue;
    }
    std::size_t off = 0;
    for (const auto& region : pr.regions) {
      dst->inject(region, msg.payload.data() + off);
      off += static_cast<std::size_t>(region.volume()) * dst->elem_size;
    }
    moved.elements += static_cast<std::uint64_t>(pr.elements);
    moved.bytes += msg.payload.size();
  }
  if (staged) {
    for (std::size_t i = 0; i < s.recvs.size(); ++i) {
      const auto& pr = s.recvs[i];
      std::size_t off = 0;
      for (const auto& region : pr.regions) {
        dst->inject(region, pending[i].data() + off);
        off += static_cast<std::size_t>(region.volume()) * dst->elem_size;
      }
      moved.elements += static_cast<std::uint64_t>(pr.elements);
      moved.bytes += pending[i].size();
    }
  }
  return moved;
}

}  // namespace mxn::core
