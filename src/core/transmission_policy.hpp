#pragma once

#include <cstdint>
#include <memory>

#include "core/field.hpp"
#include "core/mxn_component.hpp"
#include "sched/coupling.hpp"
#include "sched/schedule.hpp"

namespace mxn::core {

/// Everything one transfer attempt needs, bundled so a policy object can run
/// it without reaching into MxNComponent internals. All pointers borrow from
/// the owning connection for the duration of the call.
struct TransferContext {
  const sched::RegionSchedule* schedule = nullptr;
  const FieldRegistration* src = nullptr;  // null unless this rank sends
  const FieldRegistration* dst = nullptr;  // null unless this rank receives
  const sched::Coupling* coupling = nullptr;
  int data_tag = 0;
  int ack_tag = 0;
  int commit_tag = 0;
  int timeout_ms = -1;
  int max_retries = 0;
  std::uint64_t* serial = nullptr;  // reliable attempt serial (two-phase)
  int seq = 0;                      // connection seq, for trace labels
  TransferStats* stats = nullptr;
};

/// How a connection's bytes move, separated from the component that owns the
/// connection ("Promoting Component Reuse by Separating Transmission Policy
/// from Implementation", Walker et al.). A policy is chosen per connection —
/// per tenant in a multi-tenant fabric — either derived from the
/// ConnectionSpec's wire-level flags (policy_from_spec) or installed
/// explicitly via MxNComponent::set_policy. Policies are stateless and
/// shareable across connections; all per-connection state lives in the
/// TransferContext.
class TransmissionPolicy {
 public:
  virtual ~TransmissionPolicy() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  /// Run one logical transfer. Throws TransferError if the policy exhausts
  /// its delivery strategy (reliable mode), rt::TimeoutError on a plain
  /// receive deadline.
  virtual void transfer(const TransferContext& ctx) const = 0;
};

/// Loose, buffered delivery: the source pushes and runs ahead freely
/// (sends complete eagerly into mailboxes); no acknowledgement.
class EagerPolicy : public TransmissionPolicy {
 public:
  [[nodiscard]] const char* name() const override { return "eager"; }
  void transfer(const TransferContext& ctx) const override;
};

/// Eager data movement plus a per-peer ack handshake: the source blocks
/// until every destination peer confirmed receipt, bounding producer/
/// consumer skew (the "tight synchronization" option of paper §4.1).
class RendezvousPolicy : public TransmissionPolicy {
 public:
  [[nodiscard]] const char* name() const override { return "rendezvous"; }
  void transfer(const TransferContext& ctx) const override;
};

/// Two-phase (stage → ack → commit) delivery with serial-framed retries —
/// docs/FAULTS.md. A faulted attempt leaves the destination untouched;
/// exhaustion raises TransferError.
class ReliableTwoPhasePolicy : public TransmissionPolicy {
 public:
  [[nodiscard]] const char* name() const override {
    return "reliable-two-phase";
  }
  void transfer(const TransferContext& ctx) const override;
};

/// Map a spec's wire-level flags to the policy they historically selected:
/// reliable → two-phase, handshake → rendezvous, otherwise eager. The flags
/// still travel on the wire unchanged, so both sides derive the same policy
/// independently. Returns a shared singleton per kind (policies are
/// stateless).
std::shared_ptr<const TransmissionPolicy> policy_from_spec(
    const ConnectionSpec& spec);

}  // namespace mxn::core
