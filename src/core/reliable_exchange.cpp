#include "core/reliable_exchange.hpp"

#include <cstring>
#include <map>
#include <vector>

namespace mxn::core {

using rt::UsageError;

namespace {

// Reliable-mode wire framing: every data/ack/commit payload starts with the
// sender's 8-byte attempt serial. Receivers discard anything older than
// their own attempt — stale traffic from an aborted attempt is consumed and
// dropped, never mistaken for the retry.
constexpr std::size_t kSerialBytes = sizeof(std::uint64_t);

std::uint64_t peek_serial(std::span<const std::byte> payload) {
  if (payload.size() < kSerialBytes)
    throw UsageError("reliable transfer message too short for its serial");
  std::uint64_t s = 0;
  std::memcpy(&s, payload.data(), kSerialBytes);
  return s;
}

void put_serial(std::byte* out, std::uint64_t s) {
  std::memcpy(out, &s, kSerialBytes);
}

std::vector<std::byte> serial_only(std::uint64_t s) {
  std::vector<std::byte> b(kSerialBytes);
  put_serial(b.data(), s);
  return b;
}

}  // namespace

std::optional<MovedCounts> run_reliable_attempt(const ReliableExchange& x) {
  const sched::RegionSchedule& s = *x.schedule;
  const sched::Coupling& cpl = *x.coupling;
  rt::Communicator channel = cpl.channel;
  const int to = x.timeout_ms;
  std::uint64_t& serial = *x.serial;
  ++serial;
  // The serial this attempt's outbound messages carry. Staging below may
  // ratchet `serial` up when a peer is ahead; the ack/commit handshake for
  // data already sent must keep using the value it was stamped with.
  const std::uint64_t my_serial = serial;
  const bool sending = x.src != nullptr && !s.sends.empty();
  const bool receiving = x.dst != nullptr && !s.recvs.empty();
  MovedCounts moved;
  std::vector<rt::Buffer> staged(s.recvs.size());
  std::vector<std::uint64_t> serials(s.recvs.size(), 0);
  try {
    // Phase ordering matters when a rank is BOTH a source and a destination
    // of the same exchange (rescale migrations where the old and new rank
    // lists overlap): data sends are eager, but waiting for acks before
    // staging would deadlock a cyclic src→dst dependency (e.g. three
    // survivors mutually exchanging regions, each parked in its ack wait
    // with nobody staging). So: send data, stage ALL incoming, ack, and only
    // then wait for this rank's own acks and run the commit handshake.
    if (sending) {
      for (const auto& pr : s.sends) {
        const std::size_t nbytes =
            kSerialBytes +
            static_cast<std::size_t>(pr.elements) * x.src->elem_size;
        rt::Buffer buf = rt::Buffer::allocate(nbytes);
        std::byte* out = buf.mutable_data();
        put_serial(out, my_serial);
        std::size_t off = kSerialBytes;
        for (const auto& region : pr.regions) {
          x.src->extract(region, out + off);
          off += static_cast<std::size_t>(region.volume()) * x.src->elem_size;
        }
        rt::note_bytes_copied(nbytes);
        moved.elements += static_cast<std::uint64_t>(pr.elements);
        moved.bytes += nbytes - kSerialBytes;
        channel.isend(cpl.dst_ranks.at(pr.peer), x.data_tag, std::move(buf));
      }
    }
    if (receiving) {
      // Phase 1: stage every peer's payload BEFORE acking anyone — a
      // missing source (killed, dropped) therefore fails every participant
      // of the transfer, not just the ranks wired to it, and nothing is
      // injected yet so any failure below unwinds to the pre-transfer
      // field state.
      // Staging holds a reference to each arrived payload block (no copy),
      // and stages in ARRIVAL order: an any-source matched receive takes
      // whichever peer's payload lands first, so one slow source does not
      // hold up validation of the others. The predicate only admits peers
      // that still owe this attempt a payload; a stale serial is consumed
      // and dropped, leaving its peer owed.
      std::map<int, std::size_t> by_src;
      for (std::size_t i = 0; i < s.recvs.size(); ++i)
        by_src.emplace(cpl.src_ranks.at(s.recvs[i].peer), i);
      const auto owed = [&](const rt::Message& m) {
        const auto it = by_src.find(m.src);
        return it != by_src.end() && staged[it->second].empty();
      };
      std::size_t outstanding = s.recvs.size();
      while (outstanding > 0) {
        auto m = channel.recv_matching(rt::kAnySource, x.data_tag, owed, to);
        const std::size_t i = by_src.at(m.src);
        const auto& pr = s.recvs[i];
        const std::uint64_t ser = peek_serial(m.payload);
        if (ser < serial) continue;  // stale attempt: drain and drop
        if (ser > serial) serial = ser;
        if (m.payload.size() - kSerialBytes !=
            static_cast<std::size_t>(pr.elements) * x.dst->elem_size)
          throw UsageError("reliable transfer payload size mismatch");
        staged[i] = std::move(m.payload);
        serials[i] = ser;
        --outstanding;
      }
      for (std::size_t i = 0; i < s.recvs.size(); ++i)
        channel.send(cpl.src_ranks.at(s.recvs[i].peer), x.ack_tag,
                     serial_only(serials[i]));
    }
    if (sending) {
      for (const auto& pr : s.sends) {
        const int peer = cpl.dst_ranks.at(pr.peer);
        for (;;) {
          auto m = channel.recv(peer, x.ack_tag, to);
          if (peek_serial(m.payload) >= my_serial) break;  // else: stale ack
        }
      }
      // Every destination gets a reference to the same commit block.
      const rt::Buffer commit = serial_only(my_serial);
      for (const auto& pr : s.sends)
        channel.send(cpl.dst_ranks.at(pr.peer), x.commit_tag, commit);
    }
    if (receiving) {
      // Phase 2: wait for every source's commit, then inject.
      for (std::size_t i = 0; i < s.recvs.size(); ++i) {
        const int peer = cpl.src_ranks.at(s.recvs[i].peer);
        for (;;) {
          auto m = channel.recv(peer, x.commit_tag, to);
          if (peek_serial(m.payload) >= serials[i]) break;
        }
      }
      for (std::size_t i = 0; i < s.recvs.size(); ++i) {
        const auto& pr = s.recvs[i];
        std::size_t off = kSerialBytes;
        for (const auto& region : pr.regions) {
          x.dst->inject(region, staged[i].data() + off);
          off += static_cast<std::size_t>(region.volume()) * x.dst->elem_size;
        }
        moved.elements += static_cast<std::uint64_t>(pr.elements);
        moved.bytes += staged[i].size() - kSerialBytes;
      }
    }
  } catch (const rt::TimeoutError&) {
    return std::nullopt;
  }
  return moved;
}

}  // namespace mxn::core
