#pragma once

#include <memory>
#include <string>

namespace mxn::core {

/// Base class of all provides-port interfaces. A provides port is a public
/// interface a component implements; a uses port is a connection end point
/// that, once connected, becomes a reference to a provides port of the same
/// type (paper §2.1, the uses/provides design pattern).
class Port {
 public:
  virtual ~Port() = default;
};

using PortPtr = std::shared_ptr<Port>;

/// The CCA Go port: recognized by frameworks as the way to start an
/// application running — the component equivalent of `main` (paper §4.3
/// footnote 2).
class GoPort : public Port {
 public:
  /// Returns an exit status; 0 = success.
  virtual int go() = 0;
};

}  // namespace mxn::core
