#include "core/transmission_policy.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "core/erased_exec.hpp"
#include "core/reliable_exchange.hpp"
#include "trace/trace.hpp"

namespace mxn::core {

namespace {

// The shared loose data movement both eager and rendezvous ride on.
void run_loose(const TransferContext& ctx) {
  const MovedCounts moved = execute_erased(*ctx.schedule, ctx.src, ctx.dst,
                                           *ctx.coupling, ctx.data_tag);
  ctx.stats->elements += moved.elements;
  ctx.stats->bytes += moved.bytes;
  static trace::Counter& transfers = trace::counter("mxn.transfers");
  static trace::Counter& bytes = trace::counter("mxn.bytes");
  transfers.add(1);
  bytes.add(moved.bytes);
}

}  // namespace

void EagerPolicy::transfer(const TransferContext& ctx) const {
  run_loose(ctx);
}

void RendezvousPolicy::transfer(const TransferContext& ctx) const {
  run_loose(ctx);
  trace::Span hs("mxn.handshake", "mxn");
  rt::Communicator channel = ctx.coupling->channel;
  if (ctx.dst) {
    for (const auto& pr : ctx.schedule->recvs)
      channel.send(ctx.coupling->src_ranks.at(pr.peer), ctx.ack_tag,
                   std::vector<std::byte>{});
  }
  if (ctx.src) {
    for (const auto& pr : ctx.schedule->sends)
      channel.recv(ctx.coupling->dst_ranks.at(pr.peer), ctx.ack_tag);
  }
}

void ReliableTwoPhasePolicy::transfer(const TransferContext& ctx) const {
  static trace::Counter& retries = trace::counter("mxn.retries");
  static trace::Counter& failures = trace::counter("mxn.transfer_failures");
  const int attempts = 1 + std::max(0, ctx.max_retries);
  for (int a = 0; a < attempts; ++a) {
    if (a > 0) {
      ++ctx.stats->retries;
      retries.add(1);
      trace::instant("mxn.retry", "mxn", static_cast<std::uint64_t>(ctx.seq));
    }
    // One attempt of the two-phase protocol (docs/FAULTS.md), delegated to
    // the shared run_reliable_attempt — the same exchange that migrates
    // patches during an elastic rescale (rescale.cpp).
    ReliableExchange x;
    x.schedule = ctx.schedule;
    x.src = ctx.src;
    x.dst = ctx.dst;
    x.coupling = ctx.coupling;
    x.data_tag = ctx.data_tag;
    x.ack_tag = ctx.ack_tag;
    x.commit_tag = ctx.commit_tag;
    x.timeout_ms = ctx.timeout_ms;
    x.serial = ctx.serial;
    const auto moved = run_reliable_attempt(x);
    if (moved) {
      ctx.stats->elements += moved->elements;
      ctx.stats->bytes += moved->bytes;
      static trace::Counter& transfers = trace::counter("mxn.transfers");
      static trace::Counter& bytes = trace::counter("mxn.bytes");
      transfers.add(1);
      bytes.add(moved->bytes);
      return;
    }
  }
  ++ctx.stats->failures;
  failures.add(1);
  trace::instant("mxn.transfer_failure", "mxn",
                 static_cast<std::uint64_t>(ctx.seq));
  throw TransferError(
      "reliable transfer on connection seq " + std::to_string(ctx.seq) +
      " failed after " + std::to_string(attempts) +
      " attempts; destination field left untouched");
}

std::shared_ptr<const TransmissionPolicy> policy_from_spec(
    const ConnectionSpec& spec) {
  static const auto eager = std::make_shared<const EagerPolicy>();
  static const auto rendezvous = std::make_shared<const RendezvousPolicy>();
  static const auto reliable =
      std::make_shared<const ReliableTwoPhasePolicy>();
  if (spec.reliable) return reliable;
  if (spec.handshake) return rendezvous;
  return eager;
}

}  // namespace mxn::core
