#include "dri/dri.hpp"

#include <cstring>

#include "dad/dist_array.hpp"
#include "rt/error.hpp"

namespace mxn::dri {

using rt::UsageError;

std::size_t type_width(DataType t) {
  switch (t) {
    case DataType::Float: return sizeof(float);
    case DataType::Double: return sizeof(double);
    case DataType::ComplexFloat: return sizeof(std::complex<float>);
    case DataType::ComplexDouble: return sizeof(std::complex<double>);
    case DataType::Integer: return sizeof(std::int32_t);
    case DataType::Short: return sizeof(std::int16_t);
    case DataType::UnsignedShort: return sizeof(std::uint16_t);
    case DataType::Long: return sizeof(std::int64_t);
    case DataType::UnsignedLong: return sizeof(std::uint64_t);
    case DataType::Char: return sizeof(char);
    case DataType::UnsignedChar: return sizeof(unsigned char);
    case DataType::Byte: return 1;
  }
  throw UsageError("unknown DRI data type");
}

Distribution::Distribution(DataType type, std::vector<std::int64_t> extents,
                           std::vector<Partition> partitions)
    : type_(type), extents_(std::move(extents)) {
  if (extents_.empty() || extents_.size() > 3)
    throw UsageError("DRI datasets are arrays of up to three dimensions");
  if (partitions.size() != extents_.size())
    throw UsageError("one Partition per dimension required");
  std::vector<dad::AxisDist> axes;
  axes.reserve(extents_.size());
  for (std::size_t d = 0; d < extents_.size(); ++d) {
    const auto& p = partitions[d];
    switch (p.kind) {
      case Partition::Collapsed:
        axes.push_back(dad::AxisDist::collapsed(extents_[d]));
        break;
      case Partition::Block:
        axes.push_back(dad::AxisDist::block(extents_[d], p.nprocs));
        break;
      case Partition::Cyclic:
        axes.push_back(dad::AxisDist::cyclic(extents_[d], p.nprocs));
        break;
      case Partition::BlockCyclic:
        axes.push_back(
            dad::AxisDist::block_cyclic(extents_[d], p.nprocs, p.block));
        break;
    }
  }
  desc_ = dad::make_regular(std::move(axes));
}

namespace {

/// Copy a region of a packed local array (concatenated row-major patches)
/// to/from a linear buffer, in row-major region order.
void copy_region(const dad::Descriptor& desc, int rank,
                 const dad::Patch& region, std::size_t width,
                 std::byte* local, const std::byte* in, std::byte* out) {
  const std::size_t pi = desc.patch_containing(rank, region);
  const dad::Patch& owned = desc.patches_of(rank)[pi];
  const auto base = desc.patch_base(rank, pi);
  std::size_t cursor = 0;
  dad::for_each_row(region, [&](const dad::Point& row, dad::Index len) {
    const std::size_t off =
        static_cast<std::size_t>(base + owned.offset_of(row)) * width;
    const std::size_t n = static_cast<std::size_t>(len) * width;
    if (out)
      std::memcpy(out + cursor, local + off, n);
    else
      std::memcpy(local + off, in + cursor, n);
    cursor += n;
  });
}

}  // namespace

Reorg::Reorg(rt::Communicator comm, const Distribution& src,
             const Distribution& dst, int tag)
    : comm_(std::move(comm)), tag_(tag), elem_width_(src.elem_width()) {
  if (src.type() != dst.type())
    throw UsageError("DRI reorganization requires matching data types");
  src_desc_ = src.descriptor();
  dst_desc_ = dst.descriptor();
  if (!src_desc_->same_shape(*dst_desc_))
    throw UsageError("DRI reorganization requires matching global extents");
  if (src.nprocs() > comm_.size() || dst.nprocs() > comm_.size())
    throw UsageError("distribution needs more processes than the "
                     "communicator provides");

  const int me = comm_.rank();
  const int dst_base = comm_.size() - dst.nprocs();
  my_src_ = me < src.nprocs() ? me : -1;
  my_dst_ = me >= dst_base ? me - dst_base : -1;

  auto sched =
      sched::build_region_schedule(*src_desc_, *dst_desc_, my_src_, my_dst_);
  for (const auto& pr : sched.sends)
    for (const auto& region : pr.regions)
      sends_.push_back({dst_base + pr.peer, region,
                        static_cast<std::size_t>(region.volume()) *
                            elem_width_});
  for (const auto& pr : sched.recvs)
    for (const auto& region : pr.regions)
      recvs_.push_back({pr.peer, region,
                        static_cast<std::size_t>(region.volume()) *
                            elem_width_});
}

bool Reorg::step(std::span<const std::byte> local_src,
                 std::span<std::byte> local_dst, std::size_t chunk_bytes) {
  if (my_src_ >= 0 && next_send_ < sends_.size() &&
      local_src.size() <
          static_cast<std::size_t>(src_desc_->local_volume(my_src_)) *
              elem_width_)
    throw UsageError("source buffer too small for the local distribution");
  if (my_dst_ >= 0 && next_recv_ < recvs_.size() &&
      local_dst.size() <
          static_cast<std::size_t>(dst_desc_->local_volume(my_dst_)) *
              elem_width_)
    throw UsageError("destination buffer too small for the local "
                     "distribution");

  // Send phase: at least one piece, at most chunk_bytes.
  std::size_t sent = 0;
  while (next_send_ < sends_.size() &&
         (sent == 0 || sent + sends_[next_send_].bytes <= chunk_bytes)) {
    const Piece& p = sends_[next_send_];
    std::vector<std::byte> buf(p.bytes);
    copy_region(*src_desc_, my_src_, p.region, elem_width_,
                const_cast<std::byte*>(local_src.data()), nullptr,
                buf.data());
    comm_.send(p.peer_world, tag_, std::move(buf));
    sent += p.bytes;
    ++next_send_;
    if (sent >= chunk_bytes) break;
  }

  // Receive phase. While our own sends are unfinished we must not block
  // (another process may be waiting on them); once they are done, blocking
  // receives are deadlock-free.
  const bool sends_done = next_send_ >= sends_.size();
  std::size_t received = 0;
  while (next_recv_ < recvs_.size() &&
         (received == 0 || received + recvs_[next_recv_].bytes <=
                               chunk_bytes)) {
    const Piece& p = recvs_[next_recv_];
    rt::Message msg;
    if (sends_done) {
      msg = comm_.recv(p.peer_world, tag_);
    } else {
      auto m = comm_.try_recv(p.peer_world, tag_);
      if (!m) break;  // make send progress first; caller will call again
      msg = std::move(*m);
    }
    if (msg.payload.size() != p.bytes)
      throw UsageError("DRI piece size mismatch");
    copy_region(*dst_desc_, my_dst_, p.region, elem_width_,
                local_dst.data(), msg.payload.data(), nullptr);
    received += p.bytes;
    ++next_recv_;
    if (received >= chunk_bytes) break;
  }

  return !complete();
}

}  // namespace mxn::dri
