#pragma once

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

#include "dad/descriptor.hpp"
#include "rt/communicator.hpp"
#include "sched/schedule.hpp"

namespace mxn::dri {

/// The Data Reorganization Interface standard (paper §5): a DARPA-driven
/// spec from the signal/image-processing community that the paper situates
/// as "a specialized and low-level Distributed Array Descriptor and M×N
/// component". This module implements the DRI-1.0 shape faithfully:
/// datasets are arrays of up to three dimensions; block and block-cyclic
/// partitions; a fixed scalar type list; collective reorganization handled
/// at a low level, with the user owning the buffers and "repeatedly calling
/// DRI get/put operations until the operation is complete".

/// The DRI-1.0 data types.
enum class DataType : std::uint8_t {
  Float,
  Double,
  ComplexFloat,
  ComplexDouble,
  Integer,
  Short,
  UnsignedShort,
  Long,
  UnsignedLong,
  Char,
  UnsignedChar,
  Byte,
};

[[nodiscard]] std::size_t type_width(DataType t);

/// Per-dimension partitioning.
struct Partition {
  enum Kind : std::uint8_t { Collapsed, Block, Cyclic, BlockCyclic } kind =
      Block;
  std::int64_t block = 0;  // BlockCyclic only
  int nprocs = 1;

  static Partition collapsed() { return {Collapsed, 0, 1}; }
  static Partition block_over(int p) { return {Block, 0, p}; }
  static Partition cyclic_over(int p) { return {Cyclic, 0, p}; }
  static Partition block_cyclic_over(int p, std::int64_t b) {
    return {BlockCyclic, b, p};
  }
};

/// A DRI distribution: global extents (1..3 dims), one Partition per dim,
/// and the element type. Local memory layout is the canonical row-major
/// patch concatenation (DRI separates local layout from distribution; this
/// implementation fixes the local layout to the packed one).
class Distribution {
 public:
  Distribution(DataType type, std::vector<std::int64_t> extents,
               std::vector<Partition> partitions);

  [[nodiscard]] DataType type() const { return type_; }
  [[nodiscard]] std::size_t elem_width() const { return type_width(type_); }
  [[nodiscard]] int ndims() const { return static_cast<int>(extents_.size()); }
  [[nodiscard]] int nprocs() const { return desc_->nranks(); }

  /// Local element count for a rank ("blockinfo" in DRI terms).
  [[nodiscard]] std::int64_t local_count(int rank) const {
    return desc_->local_volume(rank);
  }

  /// Required local buffer size in bytes.
  [[nodiscard]] std::size_t local_bytes(int rank) const {
    return static_cast<std::size_t>(local_count(rank)) * elem_width();
  }

  [[nodiscard]] const dad::DescriptorPtr& descriptor() const { return desc_; }

 private:
  DataType type_;
  std::vector<std::int64_t> extents_;
  dad::DescriptorPtr desc_;
};

/// A planned reorganization between two distributions of the same dataset.
/// Mirrors the DRI flow: plan once (collective), then drive the transfer at
/// a low level — each step() moves at most `chunk_bytes` of this process's
/// share, and the caller keeps calling until step() reports completion.
/// step(-1) or run() moves everything at once.
class Reorg {
 public:
  /// Collective over `comm`; ranks [0, src.nprocs()) hold the source role
  /// and ranks [comm.size() - dst.nprocs(), comm.size()) the destination
  /// role (roles may overlap for in-place reorganization on one cohort).
  Reorg(rt::Communicator comm, const Distribution& src,
        const Distribution& dst, int tag);

  /// Drive the reorganization forward: issues at most `chunk_bytes` of
  /// sends and then services at most `chunk_bytes` of receives. Returns
  /// true while more calls are needed. `local_src` / `local_dst` may be
  /// empty spans on processes without the respective role.
  bool step(std::span<const std::byte> local_src,
            std::span<std::byte> local_dst,
            std::size_t chunk_bytes = SIZE_MAX);

  /// Convenience: loop step() to completion.
  void run(std::span<const std::byte> local_src,
           std::span<std::byte> local_dst) {
    while (step(local_src, local_dst)) {
    }
  }

  [[nodiscard]] bool complete() const {
    return next_send_ >= sends_.size() && next_recv_ >= recvs_.size();
  }

  /// Reset so the same plan can reorganize another dataset instance.
  void reset() {
    next_send_ = 0;
    next_recv_ = 0;
  }

  [[nodiscard]] std::size_t total_pieces() const {
    return sends_.size() + recvs_.size();
  }

 private:
  struct Piece {
    int peer_world = 0;       // rank in comm
    dad::Patch region;        // within the local side's patch
    std::size_t bytes = 0;
  };

  rt::Communicator comm_;
  int tag_;
  std::size_t elem_width_;
  dad::DescriptorPtr src_desc_, dst_desc_;
  int my_src_ = -1, my_dst_ = -1;
  std::vector<Piece> sends_, recvs_;
  std::size_t next_send_ = 0, next_recv_ = 0;
};

}  // namespace mxn::dri
