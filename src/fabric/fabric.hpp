#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/mxn_component.hpp"
#include "prmi/distributed_framework.hpp"

namespace mxn::fabric {

/// Dense per-fabric tenant handle (index into the registry).
using TenantId = int;

/// What one registered tenant has done so far, as seen by this rank.
struct TenantStats {
  std::uint64_t ticks = 0;     // tick() calls that reached the tenant
  std::uint64_t advanced = 0;  // ...of which did real work (transfer/flush)
  std::uint64_t calls = 0;     // PRMI sub-calls shipped (flush results)
};

/// Multi-tenant connection fabric (ISSUE 9 tentpole).
///
/// A serving process rarely hosts ONE M×N coupling: it multiplexes many
/// concurrent connections and PRMI client proxies — tenants — over one
/// Universe. The Fabric is the per-rank registry that gives each tenant a
/// stable id and name, drives its steady-state work (`tick`), and threads
/// the id through `src/trace` as per-tenant counters so a saturated or
/// misbehaving tenant is attributable from the metrics registry alone:
///
///   fabric.tenants                  live registrations (process-wide)
///   fabric.ticks                    tick() calls across all tenants
///   fabric.tenant.<name>.ticks      per-tenant tick volume
///   fabric.tenant.<name>.advanced   ...that performed a transfer / flush
///
/// The Fabric owns no communicators and creates no connections; it holds
/// shared_ptr handles to components/proxies registered by the application
/// and multiplexes work across them. All methods are per-rank local (no
/// collectives) and NOT thread-safe: one Fabric per driving thread, the
/// same way a Communicator is used.
class Fabric {
 public:
  /// `name` prefixes nothing (tenant counters are keyed by tenant name);
  /// it only labels trace spans emitted by drain_tick().
  explicit Fabric(std::string name = "fabric");
  ~Fabric();

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Register an established M×N connection as a tenant. tick() on it runs
  /// one data-ready transfer (MxNComponent::data_ready_connection) — a
  /// no-op returning false on spectator ranks or retired connections.
  TenantId add_connection(std::string name,
                          std::shared_ptr<core::MxNComponent> comp,
                          core::ConnectionId conn);

  /// Register a connected PRMI client proxy as a tenant. tick() on it
  /// flushes the proxy's queued batch (RemotePort::flush_batch) — a no-op
  /// returning false when nothing is queued. The application queues calls
  /// on the proxy between ticks; the fabric is the drain clock that turns
  /// k queued calls into one wire message per (peer, tick).
  TenantId add_prmi_client(std::string name,
                           std::shared_ptr<prmi::RemotePort> port);

  [[nodiscard]] std::size_t tenants() const { return rows_.size(); }
  [[nodiscard]] const std::string& tenant_name(TenantId id) const;
  [[nodiscard]] const TenantStats& stats(TenantId id) const;

  /// Drive one unit of work for one tenant. Returns true if the tenant
  /// made progress (a transfer ran / a non-empty batch flushed).
  bool tick(TenantId id);

  /// Tick every registered tenant once, in registration order; returns how
  /// many made progress. One drain tick == one coalescing window: every
  /// PRMI tenant's queue built up since the last drain goes out as one
  /// message per peer.
  std::size_t drain_tick();

  /// Results of the last flush performed by tick() on a PRMI tenant — the
  /// fabric drives the flush, the application still needs the returns.
  [[nodiscard]] const std::vector<prmi::RemotePort::Result>& last_results(
      TenantId id) const;

 private:
  struct Row {
    std::string name;
    std::shared_ptr<core::MxNComponent> comp;  // connection tenants
    core::ConnectionId conn = -1;
    std::shared_ptr<prmi::RemotePort> port;  // PRMI tenants
    TenantStats stats;
    std::vector<prmi::RemotePort::Result> last;
    trace::Counter* ticks = nullptr;     // fabric.tenant.<name>.ticks
    trace::Counter* advanced = nullptr;  // fabric.tenant.<name>.advanced
  };

  TenantId register_row(Row row);

  std::string name_;
  std::vector<Row> rows_;
};

}  // namespace mxn::fabric
