#include "fabric/fabric.hpp"

#include <stdexcept>
#include <utility>

#include "trace/trace.hpp"

namespace mxn::fabric {

namespace {

// Process-wide gauge of live tenant registrations. Counters are monotonic,
// so the gauge is a pair: registrations minus releases.
trace::Counter& registered_counter() {
  static trace::Counter& c = trace::counter("fabric.tenants");
  return c;
}
trace::Counter& released_counter() {
  static trace::Counter& c = trace::counter("fabric.tenants_released");
  return c;
}

}  // namespace

Fabric::Fabric(std::string name) : name_(std::move(name)) {}

Fabric::~Fabric() { released_counter().add(rows_.size()); }

TenantId Fabric::register_row(Row row) {
  row.ticks = &trace::counter("fabric.tenant." + row.name + ".ticks");
  row.advanced = &trace::counter("fabric.tenant." + row.name + ".advanced");
  rows_.push_back(std::move(row));
  registered_counter().add(1);
  return static_cast<TenantId>(rows_.size()) - 1;
}

TenantId Fabric::add_connection(std::string name,
                                std::shared_ptr<core::MxNComponent> comp,
                                core::ConnectionId conn) {
  if (!comp) throw std::invalid_argument("fabric: null component");
  Row row;
  row.name = std::move(name);
  row.comp = std::move(comp);
  row.conn = conn;
  return register_row(std::move(row));
}

TenantId Fabric::add_prmi_client(std::string name,
                                 std::shared_ptr<prmi::RemotePort> port) {
  if (!port) throw std::invalid_argument("fabric: null proxy");
  Row row;
  row.name = std::move(name);
  row.port = std::move(port);
  return register_row(std::move(row));
}

const std::string& Fabric::tenant_name(TenantId id) const {
  return rows_.at(static_cast<std::size_t>(id)).name;
}

const TenantStats& Fabric::stats(TenantId id) const {
  return rows_.at(static_cast<std::size_t>(id)).stats;
}

const std::vector<prmi::RemotePort::Result>& Fabric::last_results(
    TenantId id) const {
  return rows_.at(static_cast<std::size_t>(id)).last;
}

bool Fabric::tick(TenantId id) {
  Row& row = rows_.at(static_cast<std::size_t>(id));
  static trace::Counter& all_ticks = trace::counter("fabric.ticks");
  all_ticks.add(1);
  row.ticks->add(1);
  ++row.stats.ticks;

  bool progressed = false;
  if (row.comp) {
    progressed = row.comp->data_ready_connection(row.conn);
  } else if (row.port->queued() > 0) {
    row.last = row.port->flush_batch();
    row.stats.calls += row.last.size();
    progressed = true;
  }
  if (progressed) {
    row.advanced->add(1);
    ++row.stats.advanced;
  }
  return progressed;
}

std::size_t Fabric::drain_tick() {
  trace::Span span("fabric.drain_tick", "fabric", rows_.size());
  std::size_t progressed = 0;
  for (TenantId id = 0; id < static_cast<TenantId>(rows_.size()); ++id)
    if (tick(id)) ++progressed;
  return progressed;
}

}  // namespace mxn::fabric
