/* C binding for the ccamxn M×N machinery — the language-interoperability
 * role Babel plays for the CCA (paper §2.1 / Figure 4: "Some CCA frameworks
 * use Babel for language interoperability, which provides SIDL bindings for
 * C, C++ and FORTRAN"). This header is plain C89-compatible: opaque
 * handles, int status codes (0 = success), and a per-thread error string.
 *
 * Scope: enough surface for a C (or Fortran-via-ISO_C_BINDING) program to
 * spawn a cooperating process set, describe distributed arrays with DADs,
 * and couple two programs through paired M×N components.
 */
#ifndef MXN_C_H
#define MXN_C_H

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

typedef struct mxn_comm_s* mxn_comm;     /* communicator (borrowed in fn) */
typedef struct mxn_dad_s* mxn_dad;       /* distributed array descriptor  */
typedef struct mxn_array_s* mxn_array;   /* double-typed DistArray        */
typedef struct mxn_pair_s* mxn_pair;     /* paired M×N component instance */

/* Per-axis distribution kinds. */
enum {
  MXN_AXIS_COLLAPSED = 0,
  MXN_AXIS_BLOCK = 1,
  MXN_AXIS_CYCLIC = 2,
  MXN_AXIS_BLOCK_CYCLIC = 3
};

/* Field access modes. */
enum { MXN_READ = 0, MXN_WRITE = 1, MXN_READWRITE = 2 };

/* Last error message for the calling thread (valid until the next failing
 * call on that thread). Never NULL. */
const char* mxn_last_error(void);

/* --- process spawning ---------------------------------------------------- */

typedef void (*mxn_main_fn)(mxn_comm comm, void* user);

/* Run `fn` on nprocs cooperating processes; blocks until all return.
 * Returns nonzero if any process failed (see mxn_last_error). */
int mxn_spawn(int nprocs, mxn_main_fn fn, void* user);

int mxn_comm_rank(mxn_comm comm);
int mxn_comm_size(mxn_comm comm);
/* Barrier over the communicator; returns 0 on success. */
int mxn_comm_barrier(mxn_comm comm);

/* --- distributed array descriptors ---------------------------------------- */

/* Regular DAD: naxes axes, per-axis kind/extent/nprocs (+block size for
 * MXN_AXIS_BLOCK_CYCLIC; ignored otherwise). NULL on failure. */
mxn_dad mxn_dad_regular(int naxes, const int* kinds, const int64_t* extents,
                        const int* nprocs, const int64_t* blocks);
void mxn_dad_destroy(mxn_dad dad);
int mxn_dad_nranks(mxn_dad dad);
int64_t mxn_dad_local_volume(mxn_dad dad, int rank);

/* --- distributed arrays (double) ------------------------------------------ */

mxn_array mxn_array_create(mxn_dad dad, int rank);
void mxn_array_destroy(mxn_array array);
/* Pointer to and length of this rank's local storage. */
double* mxn_array_local(mxn_array array, int64_t* length);
/* Global coordinates of local element `offset` (coords has the DAD's
 * dimensionality). Returns 0 on success. */
int mxn_array_global_coords(mxn_array array, int64_t offset,
                            int64_t* coords);

/* --- paired M×N components ------------------------------------------------ */

/* Create this process's instance of a paired M×N component over `world`:
 * side 0 = world ranks [0, m), side 1 = [m, m+n). NULL on failure. */
mxn_pair mxn_pair_create(mxn_comm world, int m, int n);
void mxn_pair_destroy(mxn_pair pair);

/* Which side this process is on (0 or 1). */
int mxn_pair_side(mxn_pair pair);

/* Register a named field backed by `array` (cohort-collective). */
int mxn_pair_register(mxn_pair pair, const char* name, mxn_array array,
                      int access_mode);

/* Establish a connection (collective on BOTH sides). src_side exports the
 * field; one_shot != 0 retires the connection after one transfer; period
 * is the source-side dataReady cadence for persistent connections.
 * Returns a connection id >= 0, or -1 on failure. */
int mxn_pair_establish(mxn_pair pair, const char* field, int src_side,
                       int one_shot, int period);

/* Declare the local portion of `field` consistent; source instances export,
 * destination instances import. Returns the number of connections that
 * moved data, or -1 on failure. */
int mxn_pair_data_ready(mxn_pair pair, const char* field);

/* Cumulative transfer counters for a connection. Returns 0 on success. */
int mxn_pair_stats(mxn_pair pair, int connection, uint64_t* transfers,
                   uint64_t* elements, uint64_t* bytes);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* MXN_C_H */
