#include "capi/mxn_c.h"

#include <cstring>
#include <string>

#include "core/mxn_component.hpp"
#include "rt/runtime.hpp"

namespace {

namespace core = mxn::core;
namespace dad = mxn::dad;
namespace rt = mxn::rt;

thread_local std::string g_last_error = "";

void set_error(const std::string& what) { g_last_error = what; }

/// Run `body`, trapping exceptions into the thread-local error string.
template <class Fn>
int guarded(Fn&& body) {
  try {
    body();
    return 0;
  } catch (const std::exception& e) {
    set_error(e.what());
    return 1;
  } catch (...) {
    set_error("unknown error");
    return 1;
  }
}

}  // namespace

// Handle definitions: thin owning wrappers around the C++ objects.
struct mxn_comm_s {
  rt::Communicator comm;
};
struct mxn_dad_s {
  dad::DescriptorPtr desc;
};
struct mxn_array_s {
  std::unique_ptr<dad::DistArray<double>> array;
};
struct mxn_pair_s {
  std::shared_ptr<core::MxNComponent> comp;
  std::map<int, core::ConnectionId> conns;  // C id -> C++ id
  int next_id = 0;
};

extern "C" {

const char* mxn_last_error(void) { return g_last_error.c_str(); }

int mxn_spawn(int nprocs, mxn_main_fn fn, void* user) {
  if (!fn) {
    set_error("mxn_spawn: fn must not be NULL");
    return 1;
  }
  return guarded([&] {
    rt::spawn(nprocs, [&](rt::Communicator& comm) {
      mxn_comm_s handle{comm};
      fn(&handle, user);
    });
  });
}

int mxn_comm_rank(mxn_comm comm) { return comm ? comm->comm.rank() : -1; }
int mxn_comm_size(mxn_comm comm) { return comm ? comm->comm.size() : -1; }

int mxn_comm_barrier(mxn_comm comm) {
  if (!comm) {
    set_error("null communicator");
    return 1;
  }
  return guarded([&] { comm->comm.barrier(); });
}

mxn_dad mxn_dad_regular(int naxes, const int* kinds, const int64_t* extents,
                        const int* nprocs, const int64_t* blocks) {
  mxn_dad out = nullptr;
  const int rc = guarded([&] {
    if (naxes < 1 || !kinds || !extents || !nprocs)
      throw rt::UsageError("mxn_dad_regular: bad arguments");
    std::vector<dad::AxisDist> axes;
    axes.reserve(naxes);
    for (int a = 0; a < naxes; ++a) {
      switch (kinds[a]) {
        case MXN_AXIS_COLLAPSED:
          axes.push_back(dad::AxisDist::collapsed(extents[a]));
          break;
        case MXN_AXIS_BLOCK:
          axes.push_back(dad::AxisDist::block(extents[a], nprocs[a]));
          break;
        case MXN_AXIS_CYCLIC:
          axes.push_back(dad::AxisDist::cyclic(extents[a], nprocs[a]));
          break;
        case MXN_AXIS_BLOCK_CYCLIC:
          if (!blocks)
            throw rt::UsageError("block-cyclic axis needs a block size");
          axes.push_back(
              dad::AxisDist::block_cyclic(extents[a], nprocs[a], blocks[a]));
          break;
        default:
          throw rt::UsageError("unknown axis kind");
      }
    }
    out = new mxn_dad_s{dad::make_regular(std::move(axes))};
  });
  return rc == 0 ? out : nullptr;
}

void mxn_dad_destroy(mxn_dad d) { delete d; }

int mxn_dad_nranks(mxn_dad d) { return d ? d->desc->nranks() : -1; }

int64_t mxn_dad_local_volume(mxn_dad d, int rank) {
  if (!d) return -1;
  int64_t v = -1;
  guarded([&] { v = d->desc->local_volume(rank); });
  return v;
}

mxn_array mxn_array_create(mxn_dad d, int rank) {
  if (!d) {
    set_error("null descriptor");
    return nullptr;
  }
  mxn_array out = nullptr;
  const int rc = guarded([&] {
    out = new mxn_array_s{
        std::make_unique<dad::DistArray<double>>(d->desc, rank)};
  });
  return rc == 0 ? out : nullptr;
}

void mxn_array_destroy(mxn_array a) { delete a; }

double* mxn_array_local(mxn_array a, int64_t* length) {
  if (!a) return nullptr;
  auto span = a->array->local();
  if (length) *length = static_cast<int64_t>(span.size());
  return span.data();
}

int mxn_array_global_coords(mxn_array a, int64_t offset, int64_t* coords) {
  if (!a || !coords) {
    set_error("null argument");
    return 1;
  }
  return guarded([&] {
    const auto& desc = a->array->descriptor();
    const auto p = desc.local_to_global(a->array->rank(), offset);
    for (int d = 0; d < desc.ndim(); ++d) coords[d] = p[d];
  });
}

mxn_pair mxn_pair_create(mxn_comm world, int m, int n) {
  if (!world) {
    set_error("null communicator");
    return nullptr;
  }
  mxn_pair out = nullptr;
  const int rc = guarded([&] {
    out = new mxn_pair_s{core::make_paired_mxn(world->comm, m, n), {}, 0};
  });
  return rc == 0 ? out : nullptr;
}

void mxn_pair_destroy(mxn_pair p) { delete p; }

int mxn_pair_side(mxn_pair p) { return p ? p->comp->side() : -1; }

int mxn_pair_register(mxn_pair p, const char* name, mxn_array a,
                      int access_mode) {
  if (!p || !name || !a) {
    set_error("null argument");
    return 1;
  }
  return guarded([&] {
    const auto mode = access_mode == MXN_READ
                          ? core::AccessMode::Read
                          : access_mode == MXN_WRITE
                                ? core::AccessMode::Write
                                : core::AccessMode::ReadWrite;
    p->comp->register_field(core::make_field(name, a->array.get(), mode));
  });
}

int mxn_pair_establish(mxn_pair p, const char* field, int src_side,
                       int one_shot, int period) {
  if (!p || !field) {
    set_error("null argument");
    return -1;
  }
  int cid = -1;
  const int rc = guarded([&] {
    core::ConnectionSpec spec;
    spec.src_field = spec.dst_field = field;
    spec.src_side = src_side;
    spec.one_shot = one_shot != 0;
    spec.period = period > 0 ? period : 1;
    const auto id = p->comp->establish(spec);
    cid = p->next_id++;
    p->conns[cid] = id;
  });
  return rc == 0 ? cid : -1;
}

int mxn_pair_data_ready(mxn_pair p, const char* field) {
  if (!p || !field) {
    set_error("null argument");
    return -1;
  }
  int moved = -1;
  const int rc = guarded([&] { moved = p->comp->data_ready(field); });
  return rc == 0 ? moved : -1;
}

int mxn_pair_stats(mxn_pair p, int connection, uint64_t* transfers,
                   uint64_t* elements, uint64_t* bytes) {
  if (!p) {
    set_error("null handle");
    return 1;
  }
  return guarded([&] {
    auto it = p->conns.find(connection);
    if (it == p->conns.end())
      throw rt::UsageError("unknown connection id");
    const auto st = p->comp->stats(it->second);
    if (transfers) *transfers = st.transfers;
    if (elements) *elements = st.elements;
    if (bytes) *bytes = st.bytes;
  });
}

}  // extern "C"
