#pragma once

#include <memory>
#include <vector>

#include "sched/schedule.hpp"

namespace mxn::sched {

/// Per-process cache of region schedules keyed by (source template,
/// destination template, roles). Communication schedules can be expensive to
/// calculate (paper §2.3); because schedules are a function of templates —
/// not of the actual arrays aligned to them — one cached schedule serves
/// every conforming array and every repeat transfer.
class ScheduleCache {
 public:
  /// Look up or build the schedule for this rank's roles. The returned
  /// reference stays valid for the cache's lifetime.
  const RegionSchedule& get(const dad::DescriptorPtr& src,
                            const dad::DescriptorPtr& dst, int my_src_rank,
                            int my_dst_rank) {
    for (const auto& e : entries_) {
      if (e->my_src == my_src_rank && e->my_dst == my_dst_rank &&
          same_desc(e->src, src) && same_desc(e->dst, dst)) {
        ++hits_;
        return e->sched;
      }
    }
    ++misses_;
    auto e = std::make_unique<Entry>();
    e->src = src;
    e->dst = dst;
    e->my_src = my_src_rank;
    e->my_dst = my_dst_rank;
    e->sched = build_region_schedule(*src, *dst, my_src_rank, my_dst_rank);
    entries_.push_back(std::move(e));
    return entries_.back()->sched;
  }

  [[nodiscard]] std::size_t hits() const { return hits_; }
  [[nodiscard]] std::size_t misses() const { return misses_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }

 private:
  static bool same_desc(const dad::DescriptorPtr& a,
                        const dad::DescriptorPtr& b) {
    return a == b || *a == *b;  // pointer fast path, then structural
  }

  struct Entry {
    dad::DescriptorPtr src, dst;
    int my_src = -1, my_dst = -1;
    RegionSchedule sched;
  };
  std::vector<std::unique_ptr<Entry>> entries_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace mxn::sched
