#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "sched/schedule.hpp"
#include "trace/trace.hpp"

namespace mxn::sched {

/// Sizing knobs for a ScheduleCache. The defaults reproduce the historical
/// behaviour: a single shard with no bounds, where every entry lives until
/// clear() or epoch retirement. A multi-tenant fabric serving thousands of
/// couplings configures shards (lock spreading) and budgets (bounded
/// memory); once either budget is finite the cache evicts least-recently
/// used entries, so long-lived holders must pin schedules via get_shared().
struct ScheduleCacheConfig {
  std::size_t shards = 1;       // rounded up to a power of two
  std::size_t max_entries = 0;  // total entry cap, 0 = unbounded
  std::size_t max_bytes = 0;    // total byte budget, 0 = unbounded
};

/// Per-process cache of region schedules keyed by (source template,
/// destination template, roles). Communication schedules can be expensive to
/// calculate (paper §2.3); because schedules are a function of templates —
/// not of the actual arrays aligned to them — one cached schedule serves
/// every conforming array and every repeat transfer.
///
/// Entries are sharded by a structural hash of the key; each shard holds its
/// own mutex, hash buckets, and LRU list, so concurrent lookups from many
/// tenants contend only within a shard. get() is O(1) in the number of
/// cached schedules; the structural same_desc comparison runs only on hash
/// collisions. hits()/misses() stay exact (atomic tallies).
///
/// When a byte budget or entry cap is configured, inserts evict from the
/// cold end of the owning shard's LRU list and bump `sched.cache.evicted`.
/// Eviction drops the cache's reference only: get_shared() returns a
/// shared_ptr that keeps the schedule alive for as long as the caller holds
/// it, which is how persistent holders (connections) stay safe. The
/// reference returned by the legacy get() is only guaranteed while the
/// entry remains cached — with the default unbounded config that is the
/// cache's lifetime, as before.
class ScheduleCache {
 public:
  ScheduleCache() : ScheduleCache(ScheduleCacheConfig{}) {}
  explicit ScheduleCache(const ScheduleCacheConfig& cfg) { configure(cfg); }

  ScheduleCache(const ScheduleCache&) = delete;
  ScheduleCache& operator=(const ScheduleCache&) = delete;

  /// Re-shard and re-budget, redistributing any existing entries (their
  /// pinned shared_ptrs stay valid). Not safe against concurrent get().
  void configure(const ScheduleCacheConfig& cfg) {
    std::size_t n = 1;
    while (n < cfg.shards) n <<= 1;
    std::vector<std::shared_ptr<Entry>> survivors;
    for (auto& s : shards_)
      for (auto it = s->lru.rbegin(); it != s->lru.rend(); ++it)
        survivors.push_back((*it)->self.lock());
    cfg_ = cfg;
    cfg_.shards = n;
    shards_.clear();
    for (std::size_t i = 0; i < n; ++i)
      shards_.push_back(std::make_unique<Shard>());
    // Oldest-first reinsertion preserves relative LRU order per shard.
    for (auto& e : survivors)
      if (e) insert_entry(std::move(e));
  }

  /// Look up or build the schedule for this rank's roles, returning a
  /// shared handle that pins the schedule across eviction and epoch
  /// retirement. Persistent holders (connections that outlive many other
  /// tenants' inserts) must use this form.
  std::shared_ptr<const RegionSchedule> get_shared(
      const dad::DescriptorPtr& src, const dad::DescriptorPtr& dst,
      int my_src_rank, int my_dst_rank) {
    const std::shared_ptr<Entry> e =
        lookup(src, dst, my_src_rank, my_dst_rank);
    return {e, &e->sched};
  }

  /// Legacy lookup. The returned reference stays valid while the entry
  /// remains cached — for the cache's lifetime under the default unbounded
  /// config; until eviction when budgets are set (prefer get_shared then).
  const RegionSchedule& get(const dad::DescriptorPtr& src,
                            const dad::DescriptorPtr& dst, int my_src_rank,
                            int my_dst_rank) {
    return lookup(src, dst, my_src_rank, my_dst_rank)->sched;
  }

  [[nodiscard]] std::size_t hits() const { return hits_.load(); }
  [[nodiscard]] std::size_t misses() const { return misses_.load(); }
  [[nodiscard]] std::size_t evicted() const { return evicted_.load(); }

  [[nodiscard]] std::size_t size() const {
    std::size_t n = 0;
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> lk(s->mu);
      n += s->lru.size();
    }
    return n;
  }

  /// Total resident bytes across shards (entry structs + schedule payload).
  [[nodiscard]] std::size_t bytes() const {
    std::size_t b = 0;
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> lk(s->mu);
      b += s->bytes;
    }
    return b;
  }

  /// Drop every entry and reset the hit/miss/eviction tallies: a cleared
  /// cache reports a clean slate, not rates against entries that no longer
  /// exist. Callers wanting the lifetime numbers snapshot stats() first.
  void clear() {
    for (auto& s : shards_) {
      std::lock_guard<std::mutex> lk(s->mu);
      s->buckets.clear();
      s->lru.clear();
      s->bytes = 0;
    }
    hits_.store(0);
    misses_.store(0);
    evicted_.store(0);
  }

  /// Rescale-epoch lifecycle (docs/RESCALING.md): entries built from here on
  /// are stamped with `e`; retire_epochs_before(e) then drops every entry of
  /// an older generation. An elastic component advances the epoch at the
  /// start of a rescale, rebuilds its connections' schedules (fresh entries,
  /// fresh pins), and only then retires the old generation — so no live
  /// schedule handle ever dangles.
  void set_epoch(std::uint64_t e) { epoch_.store(e); }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_.load(); }

  /// Drop entries stamped with an epoch < `e`; returns how many. Schedule
  /// references returned by get() for the dropped entries are invalidated;
  /// get_shared() pins survive.
  std::size_t retire_epochs_before(std::uint64_t e) {
    std::size_t n = 0;
    for (auto& s : shards_) {
      std::lock_guard<std::mutex> lk(s->mu);
      for (auto it = s->buckets.begin(); it != s->buckets.end();) {
        if (it->second->epoch < e) {
          s->bytes -= it->second->bytes;
          s->lru.erase(it->second->lru_it);
          it = s->buckets.erase(it);
          ++n;
        } else {
          ++it;
        }
      }
    }
    static trace::Counter& retired = trace::counter("sched.cache.retired");
    retired.add(n);
    return n;
  }

  /// Per-entry build cost, for sizing the cache's payoff: an entry that took
  /// `build_ns` to construct saves that much on every subsequent hit.
  struct EntryStats {
    std::size_t key_hash = 0;
    int my_src = -1;
    int my_dst = -1;
    std::int64_t build_ns = 0;
    std::size_t messages = 0;
  };
  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t evicted = 0;
    std::size_t bytes = 0;
    std::int64_t total_build_ns = 0;
    std::vector<EntryStats> entries;
  };

  [[nodiscard]] Stats stats() const {
    Stats s;
    s.hits = hits_.load();
    s.misses = misses_.load();
    s.evicted = evicted_.load();
    for (const auto& sh : shards_) {
      std::lock_guard<std::mutex> lk(sh->mu);
      s.bytes += sh->bytes;
      for (const auto& [key, e] : sh->buckets) {
        s.entries.push_back(
            {key, e->my_src, e->my_dst, e->build_ns, e->sched.message_count()});
        s.total_build_ns += e->build_ns;
      }
    }
    return s;
  }

 private:
  struct Entry {
    dad::DescriptorPtr src, dst;
    int my_src = -1, my_dst = -1;
    RegionSchedule sched;
    std::int64_t build_ns = 0;
    std::uint64_t epoch = 0;
    std::size_t key = 0;
    std::size_t bytes = 0;
    std::list<Entry*>::iterator lru_it;
    std::weak_ptr<Entry> self;  // for configure()'s redistribution
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_multimap<std::size_t, std::shared_ptr<Entry>> buckets;
    std::list<Entry*> lru;  // front = most recently used
    std::size_t bytes = 0;
  };

  static bool same_desc(const dad::DescriptorPtr& a,
                        const dad::DescriptorPtr& b) {
    return a == b || *a == *b;  // pointer fast path, then structural
  }

  static std::size_t key_hash(const dad::Descriptor& src,
                              const dad::Descriptor& dst, int my_src,
                              int my_dst) {
    std::size_t h = src.structural_hash();
    h = h * 1099511628211ull + dst.structural_hash();
    h = h * 1099511628211ull + static_cast<std::size_t>(my_src + 1);
    h = h * 1099511628211ull + static_cast<std::size_t>(my_dst + 1);
    return h;
  }

  [[nodiscard]] Shard& shard_for(std::size_t key) {
    return *shards_[key & (cfg_.shards - 1)];
  }

  std::shared_ptr<Entry> lookup(const dad::DescriptorPtr& src,
                                const dad::DescriptorPtr& dst,
                                int my_src_rank, int my_dst_rank) {
    static trace::Counter& hit_count = trace::counter("sched.cache.hits");
    static trace::Counter& miss_count = trace::counter("sched.cache.misses");
    const std::size_t key = key_hash(*src, *dst, my_src_rank, my_dst_rank);
    Shard& sh = shard_for(key);
    std::lock_guard<std::mutex> lk(sh.mu);
    auto [lo, hi] = sh.buckets.equal_range(key);
    for (auto it = lo; it != hi; ++it) {
      Entry& e = *it->second;
      if (e.my_src == my_src_rank && e.my_dst == my_dst_rank &&
          same_desc(e.src, src) && same_desc(e.dst, dst)) {
        hits_.fetch_add(1);
        hit_count.add(1);
        // Touch: a hit re-stamps the entry, so an entry still in use at the
        // current epoch survives retire_epochs_before; it also moves the
        // entry to the warm end of the shard's LRU list.
        e.epoch = epoch_.load();
        sh.lru.splice(sh.lru.begin(), sh.lru, e.lru_it);
        trace::instant("sched.cache.hit", "sched");
        return it->second;
      }
    }
    misses_.fetch_add(1);
    miss_count.add(1);
    trace::instant("sched.cache.miss", "sched");
    auto e = std::make_shared<Entry>();
    e->src = src;
    e->dst = dst;
    e->my_src = my_src_rank;
    e->my_dst = my_dst_rank;
    e->epoch = epoch_.load();
    e->key = key;
    e->self = e;
    const std::int64_t t0 = trace::now_ns();
    e->sched = build_region_schedule(*src, *dst, my_src_rank, my_dst_rank);
    e->build_ns = trace::now_ns() - t0;
    e->bytes = sizeof(Entry) + e->sched.byte_size();
    sh.lru.push_front(e.get());
    e->lru_it = sh.lru.begin();
    sh.bytes += e->bytes;
    sh.buckets.emplace(key, e);
    evict_over_budget(sh, e.get());
    return e;
  }

  // Insert a pre-built entry into its home shard at the cold end (used by
  // configure()'s redistribution; caller guarantees exclusivity).
  void insert_entry(std::shared_ptr<Entry> e) {
    Shard& sh = shard_for(e->key);
    sh.lru.push_front(e.get());
    e->lru_it = sh.lru.begin();
    sh.bytes += e->bytes;
    const std::size_t key = e->key;
    sh.buckets.emplace(key, std::move(e));
    evict_over_budget(sh, nullptr);
  }

  // Drop cold entries from `sh` while this shard exceeds its slice of the
  // budget. `keep` (the entry being returned from the current lookup) is
  // never evicted, so a freshly built schedule is always handed back alive
  // even under a budget smaller than one entry.
  void evict_over_budget(Shard& sh, const Entry* keep) {
    const std::size_t cap_entries =
        cfg_.max_entries ? std::max<std::size_t>(1, cfg_.max_entries /
                                                        cfg_.shards)
                         : 0;
    const std::size_t cap_bytes =
        cfg_.max_bytes
            ? std::max<std::size_t>(1, cfg_.max_bytes / cfg_.shards)
            : 0;
    static trace::Counter& evict_count = trace::counter("sched.cache.evicted");
    while (!sh.lru.empty() &&
           ((cap_entries && sh.lru.size() > cap_entries) ||
            (cap_bytes && sh.bytes > cap_bytes))) {
      Entry* victim = sh.lru.back();
      if (victim == keep) break;
      auto [lo, hi] = sh.buckets.equal_range(victim->key);
      for (auto it = lo; it != hi; ++it) {
        if (it->second.get() == victim) {
          sh.bytes -= victim->bytes;
          sh.lru.pop_back();
          sh.buckets.erase(it);
          break;
        }
      }
      evicted_.fetch_add(1);
      evict_count.add(1);
    }
  }

  ScheduleCacheConfig cfg_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
  std::atomic<std::size_t> evicted_{0};
  std::atomic<std::uint64_t> epoch_{0};
};

}  // namespace mxn::sched
