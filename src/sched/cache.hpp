#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sched/schedule.hpp"
#include "trace/trace.hpp"

namespace mxn::sched {

/// Per-process cache of region schedules keyed by (source template,
/// destination template, roles). Communication schedules can be expensive to
/// calculate (paper §2.3); because schedules are a function of templates —
/// not of the actual arrays aligned to them — one cached schedule serves
/// every conforming array and every repeat transfer.
///
/// Entries are bucketed by a structural hash of the key, so get() is O(1)
/// in the number of cached schedules; the structural same_desc comparison
/// runs only on hash collisions. hits()/misses() stay exact.
class ScheduleCache {
 public:
  /// Look up or build the schedule for this rank's roles. The returned
  /// reference stays valid for the cache's lifetime.
  const RegionSchedule& get(const dad::DescriptorPtr& src,
                            const dad::DescriptorPtr& dst, int my_src_rank,
                            int my_dst_rank) {
    static trace::Counter& hit_count = trace::counter("sched.cache.hits");
    static trace::Counter& miss_count = trace::counter("sched.cache.misses");
    const std::size_t key = key_hash(*src, *dst, my_src_rank, my_dst_rank);
    auto [lo, hi] = buckets_.equal_range(key);
    for (auto it = lo; it != hi; ++it) {
      Entry& e = *it->second;
      if (e.my_src == my_src_rank && e.my_dst == my_dst_rank &&
          same_desc(e.src, src) && same_desc(e.dst, dst)) {
        ++hits_;
        hit_count.add(1);
        // Touch: a hit re-stamps the entry, so an entry still in use at the
        // current epoch survives retire_epochs_before.
        e.epoch = epoch_;
        trace::instant("sched.cache.hit", "sched");
        return e.sched;
      }
    }
    ++misses_;
    miss_count.add(1);
    trace::instant("sched.cache.miss", "sched");
    auto e = std::make_unique<Entry>();
    e->src = src;
    e->dst = dst;
    e->my_src = my_src_rank;
    e->my_dst = my_dst_rank;
    e->epoch = epoch_;
    const std::int64_t t0 = trace::now_ns();
    e->sched = build_region_schedule(*src, *dst, my_src_rank, my_dst_rank);
    e->build_ns = trace::now_ns() - t0;
    const RegionSchedule& out = e->sched;
    buckets_.emplace(key, std::move(e));
    return out;
  }

  [[nodiscard]] std::size_t hits() const { return hits_; }
  [[nodiscard]] std::size_t misses() const { return misses_; }
  [[nodiscard]] std::size_t size() const { return buckets_.size(); }
  void clear() { buckets_.clear(); }

  /// Rescale-epoch lifecycle (docs/RESCALING.md): entries built from here on
  /// are stamped with `e`; retire_epochs_before(e) then drops every entry of
  /// an older generation. An elastic component advances the epoch at the
  /// start of a rescale, rebuilds its connections' schedules (fresh entries,
  /// fresh references), and only then retires the old generation — so no
  /// live `const RegionSchedule&` ever dangles.
  void set_epoch(std::uint64_t e) { epoch_ = e; }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  /// Drop entries stamped with an epoch < `e`; returns how many. Schedule
  /// references returned by get() for the dropped entries are invalidated.
  std::size_t retire_epochs_before(std::uint64_t e) {
    std::size_t n = 0;
    for (auto it = buckets_.begin(); it != buckets_.end();) {
      if (it->second->epoch < e) {
        it = buckets_.erase(it);
        ++n;
      } else {
        ++it;
      }
    }
    static trace::Counter& retired = trace::counter("sched.cache.retired");
    retired.add(n);
    return n;
  }

  /// Per-entry build cost, for sizing the cache's payoff: an entry that took
  /// `build_ns` to construct saves that much on every subsequent hit.
  struct EntryStats {
    std::size_t key_hash = 0;
    int my_src = -1;
    int my_dst = -1;
    std::int64_t build_ns = 0;
    std::size_t messages = 0;
  };
  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::int64_t total_build_ns = 0;
    std::vector<EntryStats> entries;
  };

  [[nodiscard]] Stats stats() const {
    Stats s;
    s.hits = hits_;
    s.misses = misses_;
    s.entries.reserve(buckets_.size());
    for (const auto& [key, e] : buckets_) {
      s.entries.push_back(
          {key, e->my_src, e->my_dst, e->build_ns, e->sched.message_count()});
      s.total_build_ns += e->build_ns;
    }
    return s;
  }

 private:
  static bool same_desc(const dad::DescriptorPtr& a,
                        const dad::DescriptorPtr& b) {
    return a == b || *a == *b;  // pointer fast path, then structural
  }

  static std::size_t key_hash(const dad::Descriptor& src,
                              const dad::Descriptor& dst, int my_src,
                              int my_dst) {
    std::size_t h = src.structural_hash();
    h = h * 1099511628211ull + dst.structural_hash();
    h = h * 1099511628211ull + static_cast<std::size_t>(my_src + 1);
    h = h * 1099511628211ull + static_cast<std::size_t>(my_dst + 1);
    return h;
  }

  struct Entry {
    dad::DescriptorPtr src, dst;
    int my_src = -1, my_dst = -1;
    RegionSchedule sched;
    std::int64_t build_ns = 0;
    std::uint64_t epoch = 0;
  };
  std::unordered_multimap<std::size_t, std::unique_ptr<Entry>> buckets_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::uint64_t epoch_ = 0;
};

}  // namespace mxn::sched
