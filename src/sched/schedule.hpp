#pragma once

#include <vector>

#include "dad/descriptor.hpp"
#include "linear/linearization.hpp"

namespace mxn::sched {

using dad::Descriptor;
using dad::Index;
using dad::Patch;

/// Everything one rank exchanges with one peer in a redistribution, as
/// rectangular regions. Each region lies inside a single owned patch of the
/// local side (senders: a source patch; receivers: a destination patch), so
/// pack/unpack is a strided memcpy. The region list order is the canonical
/// (source patch index, destination patch index) nesting, derived
/// identically and independently on both sides — the two sides never need to
/// exchange schedule data.
struct PeerRegions {
  int peer = 0;  // rank in the other cohort
  std::vector<Patch> regions;
  Index elements = 0;
};

/// One rank's local view of a region-based communication schedule computed
/// by direct DAD x DAD patch intersection (paper §2.3). A rank can hold the
/// source role, the destination role, or both (self-coupling, e.g. an
/// in-place transpose over the same cohort).
struct RegionSchedule {
  std::vector<PeerRegions> sends;  // this rank as source; peer = dst rank
  std::vector<PeerRegions> recvs;  // this rank as destination; peer = src rank

  [[nodiscard]] Index send_elements() const {
    Index t = 0;
    for (const auto& p : sends) t += p.elements;
    return t;
  }
  [[nodiscard]] Index recv_elements() const {
    Index t = 0;
    for (const auto& p : recvs) t += p.elements;
    return t;
  }
  [[nodiscard]] std::size_t message_count() const {
    return sends.size() + recvs.size();
  }

  /// Approximate resident size, for cache byte budgets: the struct plus the
  /// capacity of every region vector (Patch is a flat POD).
  [[nodiscard]] std::size_t byte_size() const {
    std::size_t b = sizeof(RegionSchedule);
    b += sends.capacity() * sizeof(PeerRegions);
    b += recvs.capacity() * sizeof(PeerRegions);
    for (const auto& p : sends) b += p.regions.capacity() * sizeof(Patch);
    for (const auto& p : recvs) b += p.regions.capacity() * sizeof(Patch);
    return b;
  }
};

/// How build_region_schedule derives the intersections. Every path produces
/// the identical schedule — same peers, same canonical region order, same
/// element counts — they differ only in build cost.
enum class BuildPath {
  /// Analytic when both templates are regular, Indexed otherwise.
  Auto,
  /// The reference nested patch-pair loops (with bounding-box peer
  /// pruning): O(peers · P_mine · P_theirs).
  Naive,
  /// Per-rank sorted spatial index (Descriptor::spatial_index): each local
  /// patch finds overlapping peer patches by binary search + bounded sweep,
  /// then pairs are re-sorted into the canonical nesting.
  Indexed,
  /// Regular templates only: per-axis interval overlaps in closed form
  /// (dad::axis_overlaps), crossed into regions directly in canonical
  /// order. Near-independent of array extent on block/cyclic/block-cyclic
  /// axes: O(output) per peer plus a small additive term.
  Analytic,
};

/// Build the local schedule for a rank holding source rank `my_src_rank`
/// (or -1 if not in the source cohort) and destination rank `my_dst_rank`
/// (or -1). The descriptors must describe the same global index space;
/// every source element reaches exactly the destination rank(s) owning the
/// same global point.
RegionSchedule build_region_schedule(const Descriptor& src,
                                     const Descriptor& dst, int my_src_rank,
                                     int my_dst_rank, BuildPath path);

/// Back-compat entry point. `prune = true` is BuildPath::Auto; `prune =
/// false` is the naive reference with bounding-box pruning disabled too —
/// the ground truth the differential tests compare every fast path against.
RegionSchedule build_region_schedule(const Descriptor& src,
                                     const Descriptor& dst, int my_src_rank,
                                     int my_dst_rank, bool prune = true);

/// One rank's share of an old→new *delta* redistribution — the migration
/// step of an elastic rescale (docs/RESCALING.md). Regions whose old and
/// new owner are the same physical (channel) rank never touch the wire:
/// they are listed in `local` and moved by a direct extract→inject. The
/// remainder is an ordinary RegionSchedule whose peers are cohort ranks of
/// the opposite side of the delta (`wire.sends[i].peer` indexes the NEW
/// cohort, `wire.recvs[i].peer` the OLD one).
struct DeltaSchedule {
  RegionSchedule wire;
  std::vector<Patch> local;  // regions owned here under BOTH descriptors
  Index local_elements = 0;

  [[nodiscard]] Index wire_send_elements() const {
    return wire.send_elements();
  }
  [[nodiscard]] Index wire_recv_elements() const {
    return wire.recv_elements();
  }
};

/// Build the delta between two same-shape descriptors for a rank holding
/// old-cohort rank `my_from_rank` (or -1) and new-cohort rank `my_to_rank`
/// (or -1). `from_channel_ranks` / `to_channel_ranks` map cohort ranks to
/// channel ranks (index == cohort rank, as in sched::Coupling); they decide
/// which intersections are wire traffic and which stay local. Built on
/// build_region_schedule (BuildPath::Auto), so the PR-5 analytic/indexed
/// fast paths apply and the region order is the canonical nesting on both
/// sides.
DeltaSchedule build_delta_schedule(const Descriptor& from,
                                   const Descriptor& to, int my_from_rank,
                                   int my_to_rank,
                                   const std::vector<int>& from_channel_ranks,
                                   const std::vector<int>& to_channel_ranks);

/// Everything one rank exchanges with one peer, as segments of the common
/// abstract linear arrangement (Meta-Chaos / InterComm model, §2.2.1).
struct PeerSegments {
  int peer = 0;
  std::vector<linear::Segment> segs;  // ascending, disjoint
  Index elements = 0;
};

/// One rank's local view of a linearization-based schedule. The source and
/// destination sides may use different linearizations (e.g. row-major vs
/// column-major: a transpose coupling); elements correspond through equal
/// linear index.
struct SegmentSchedule {
  std::vector<PeerSegments> sends;
  std::vector<PeerSegments> recvs;

  [[nodiscard]] Index send_elements() const {
    Index t = 0;
    for (const auto& p : sends) t += p.elements;
    return t;
  }
  [[nodiscard]] Index recv_elements() const {
    Index t = 0;
    for (const auto& p : recvs) t += p.elements;
    return t;
  }
};

SegmentSchedule build_segment_schedule(const Descriptor& src,
                                       const linear::Linearization& src_lin,
                                       const Descriptor& dst,
                                       const linear::Linearization& dst_lin,
                                       int my_src_rank, int my_dst_rank);

}  // namespace mxn::sched
