#pragma once

#include <cstring>

#include "dad/dist_array.hpp"
#include "sched/coupling.hpp"
#include "sched/schedule.hpp"
#include "trace/trace.hpp"

namespace mxn::sched {

/// Execute a region schedule: this process performs exactly its own sends
/// and matched receives — independent asynchronous point-to-point transfers
/// with no synchronization barrier on either side (the dataReady() model of
/// the CCA M×N component, paper §4.1). Sends are eager, so issuing all
/// sends before draining receives cannot deadlock.
///
/// `src_arr` may be null when this process is not in the source cohort, and
/// `dst_arr` null when not in the destination cohort.
template <class T>
void execute(const RegionSchedule& sched, const dad::DistArray<T>* src_arr,
             dad::DistArray<T>* dst_arr, const Coupling& c, int tag) {
  if (!sched.sends.empty() && src_arr == nullptr)
    throw rt::UsageError("schedule has sends but no source array given");
  if (!sched.recvs.empty() && dst_arr == nullptr)
    throw rt::UsageError("schedule has recvs but no destination array given");

  trace::Span span(
      "sched.execute", "sched",
      static_cast<std::uint64_t>(sched.send_elements() +
                                 sched.recv_elements()) * sizeof(T));
  rt::Communicator channel = c.channel;  // local handle

  for (const auto& pr : sched.sends) {
    std::vector<T> buf(static_cast<std::size_t>(pr.elements));
    Index off = 0;
    for (const auto& region : pr.regions) {
      src_arr->extract(region, buf.data() + off);
      off += region.volume();
    }
    channel.send_span<T>(c.dst_ranks.at(pr.peer), tag,
                         std::span<const T>(buf));
  }

  for (const auto& pr : sched.recvs) {
    auto msg = channel.recv(c.src_ranks.at(pr.peer), tag);
    if (msg.payload.size() !=
        static_cast<std::size_t>(pr.elements) * sizeof(T))
      throw rt::UsageError("redistribution payload size mismatch");
    const T* data = reinterpret_cast<const T*>(msg.payload.data());
    Index off = 0;
    for (const auto& region : pr.regions) {
      dst_arr->inject(region, data + off);
      off += region.volume();
    }
  }
}

/// Copy the elements of `segs` (ascending, each covered by the footprint in
/// `prov`) between local storage and a linear-ordered buffer. pack=true
/// reads local -> buf; pack=false writes buf -> local.
template <class T>
void copy_segments(const std::vector<linear::ProvenancedSegment>& prov,
                   const std::vector<linear::Segment>& segs, T* local,
                   T* buf, bool pack) {
  std::size_t pi = 0;
  Index k = 0;
  for (const auto& seg : segs) {
    while (pi < prov.size() && prov[pi].seg.hi <= seg.lo) ++pi;
    std::size_t pj = pi;
    Index lo = seg.lo;
    while (lo < seg.hi) {
      if (pj >= prov.size() || prov[pj].seg.lo > lo)
        throw rt::UsageError("segment not covered by local footprint");
      const auto& p = prov[pj];
      const Index n = std::min(seg.hi, p.seg.hi) - lo;
      const Index s0 = p.storage_offset + (lo - p.seg.lo) * p.storage_stride;
      if (p.storage_stride == 1) {
        if (pack)
          std::memcpy(buf + k, local + s0,
                      static_cast<std::size_t>(n) * sizeof(T));
        else
          std::memcpy(local + s0, buf + k,
                      static_cast<std::size_t>(n) * sizeof(T));
      } else {
        for (Index i = 0; i < n; ++i) {
          if (pack)
            buf[k + i] = local[s0 + i * p.storage_stride];
          else
            local[s0 + i * p.storage_stride] = buf[k + i];
        }
      }
      lo += n;
      k += n;
      if (lo >= p.seg.hi) ++pj;
    }
  }
}

/// Execute a segment schedule. `src_prov`/`dst_prov` are the provenanced
/// footprints of the local arrays under the source/destination
/// linearizations (compute once with linear::footprint_with_provenance and
/// reuse across transfers, like the schedule itself).
template <class T>
void execute(const SegmentSchedule& sched, dad::DistArray<T>* src_arr,
             const std::vector<linear::ProvenancedSegment>* src_prov,
             dad::DistArray<T>* dst_arr,
             const std::vector<linear::ProvenancedSegment>* dst_prov,
             const Coupling& c, int tag) {
  trace::Span span(
      "sched.execute", "sched",
      static_cast<std::uint64_t>(sched.send_elements() +
                                 sched.recv_elements()) * sizeof(T));
  rt::Communicator channel = c.channel;

  for (const auto& ps : sched.sends) {
    std::vector<T> buf(static_cast<std::size_t>(ps.elements));
    copy_segments<T>(*src_prov, ps.segs, src_arr->local().data(), buf.data(),
                     /*pack=*/true);
    channel.send_span<T>(c.dst_ranks.at(ps.peer), tag,
                         std::span<const T>(buf));
  }

  for (const auto& ps : sched.recvs) {
    auto msg = channel.recv(c.src_ranks.at(ps.peer), tag);
    if (msg.payload.size() !=
        static_cast<std::size_t>(ps.elements) * sizeof(T))
      throw rt::UsageError("redistribution payload size mismatch");
    std::vector<T> buf(static_cast<std::size_t>(ps.elements));
    std::memcpy(buf.data(), msg.payload.data(), msg.payload.size());
    copy_segments<T>(*dst_prov, ps.segs, dst_arr->local().data(), buf.data(),
                     /*pack=*/false);
  }
}

}  // namespace mxn::sched
