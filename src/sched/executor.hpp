#pragma once

#include <cstdint>
#include <cstring>
#include <deque>
#include <map>

#include "dad/dist_array.hpp"
#include "rt/buffer.hpp"
#include "rt/kernels.hpp"
#include "sched/coupling.hpp"
#include "sched/schedule.hpp"
#include "trace/trace.hpp"

namespace mxn::sched {

namespace detail {

/// Drain one message per schedule entry in ARRIVAL order: a tag-matched
/// any-source receive delivers whichever peer's payload is ready first, so a
/// slow peer never head-of-line-blocks the unpacking of a fast one.
///
/// The predicate admits a message only while its sender still owes this
/// transfer a payload. That guard matters for back-to-back transfers on the
/// same tag: a fast peer's message for transfer k+1 may already be queued
/// while transfer k is draining, and a bare any-source receive would consume
/// it. Per-(src, tag) FIFO among matches keeps each peer's stream in order,
/// so the combination is exactly as safe as the old fixed-order drain.
///
/// `deliver(i, msg)` is invoked once per entry, i being the index into
/// `recvs` of the entry whose payload arrived.
template <class Entry, class Deliver>
void drain_arrival_order(rt::Communicator& channel,
                         const std::vector<int>& src_ranks,
                         const std::vector<Entry>& recvs, int tag,
                         int timeout_ms, Deliver&& deliver) {
  if (recvs.empty()) return;
  // Channel rank of the expected sender -> indices of its entries, oldest
  // first (schedules normally hold one entry per peer; a deque keeps us
  // correct if a caller ever splits a peer across entries).
  std::map<int, std::deque<std::size_t>> owed;
  for (std::size_t i = 0; i < recvs.size(); ++i)
    owed[src_ranks.at(recvs[i].peer)].push_back(i);
  const auto matches = [&owed](const rt::Message& m) {
    const auto it = owed.find(m.src);
    return it != owed.end() && !it->second.empty();
  };
  for (std::size_t k = 0; k < recvs.size(); ++k) {
    rt::Message msg =
        channel.recv_matching(rt::kAnySource, tag, matches, timeout_ms);
    auto& queue = owed.at(msg.src);
    const std::size_t i = queue.front();
    queue.pop_front();
    deliver(i, std::move(msg));
  }
}

/// Alias `bytes` as a T array when alignment permits; otherwise fall back to
/// one counted copy into `fallback`. Pooled payloads are kBufferAlign-aligned
/// and vector storage comes from operator new, so the fallback only triggers
/// for over-aligned T or serial-framed sub-spans; "sched.align.fallback"
/// counts every trip so an alignment regression on the hot path is visible
/// in the trace report rather than a silent slowdown.
template <class T>
const T* aligned_or_copy(std::span<const std::byte> bytes,
                         std::vector<T>& fallback) {
  if (reinterpret_cast<std::uintptr_t>(bytes.data()) % alignof(T) == 0)
    return reinterpret_cast<const T*>(bytes.data());
  static trace::Counter& fallbacks = trace::counter("sched.align.fallback");
  fallbacks.add(1);
  fallback.resize(bytes.size() / sizeof(T));
  std::memcpy(fallback.data(), bytes.data(), bytes.size());
  rt::note_bytes_copied(bytes.size());
  return fallback.data();
}

/// Walk the runs shared by `segs` and the local footprint `prov`, invoking
/// `fn(storage_start, storage_stride, buf_index, count)` per contiguous run.
/// Factored out so pack and unpack share one coverage-checking walk.
template <class Fn>
void for_each_segment_run(const std::vector<linear::ProvenancedSegment>& prov,
                          const std::vector<linear::Segment>& segs, Fn&& fn) {
  std::size_t pi = 0;
  Index k = 0;
  for (const auto& seg : segs) {
    while (pi < prov.size() && prov[pi].seg.hi <= seg.lo) ++pi;
    std::size_t pj = pi;
    Index lo = seg.lo;
    while (lo < seg.hi) {
      if (pj >= prov.size() || prov[pj].seg.lo > lo)
        throw rt::UsageError("segment not covered by local footprint");
      const auto& p = prov[pj];
      const Index n = std::min(seg.hi, p.seg.hi) - lo;
      const Index s0 = p.storage_offset + (lo - p.seg.lo) * p.storage_stride;
      fn(s0, p.storage_stride, k, n);
      lo += n;
      k += n;
      if (lo >= p.seg.hi) ++pj;
    }
  }
}

}  // namespace detail

/// Pack the elements of `segs` (ascending, each covered by the footprint in
/// `prov`) from local storage into a linear-ordered buffer. The raw runs of
/// the walk are streamed through rt::kernels::RunGather, which coalesces
/// adjacent unit-stride runs into single memcpys, fuses constant-delta run
/// trains into block kernels, and dispatches pure strided gathers to the
/// SIMD tiers (docs/PERFORMANCE.md, "Copy kernels").
template <class T>
void pack_segments(const std::vector<linear::ProvenancedSegment>& prov,
                   const std::vector<linear::Segment>& segs, const T* local,
                   T* buf) {
  rt::kernels::RunGather<T> rg(local, buf);
  detail::for_each_segment_run(
      prov, segs,
      [&](Index s0, Index stride, Index /*k*/, Index n) {
        // Runs arrive in buffer order, so the coalescer's implicit cursor
        // tracks k exactly.
        rg.add(s0, stride, n);
      });
  rg.flush();
}

/// Mirror image of pack_segments: scatter a linear-ordered buffer back into
/// local storage, through the same coalescing kernel layer.
template <class T>
void unpack_segments(const std::vector<linear::ProvenancedSegment>& prov,
                     const std::vector<linear::Segment>& segs, T* local,
                     const T* buf) {
  rt::kernels::RunScatter<T> rs(local, buf);
  detail::for_each_segment_run(
      prov, segs,
      [&](Index s0, Index stride, Index /*k*/, Index n) {
        rs.add(s0, stride, n);
      });
  rs.flush();
}

/// Compile the (footprint, segments) walk into a reusable
/// rt::kernels::RunPlan. pack_segments/unpack_segments re-walk and
/// re-coalesce on every call, which is right for one-shot transfers; a
/// caller that ships the same pattern repeatedly (the mct Router and
/// Rearranger reuse one schedule every timestep) compiles once and replays
/// with plan.gather()/plan.scatter(), paying only for the copies.
inline rt::kernels::RunPlan compile_run_plan(
    const std::vector<linear::ProvenancedSegment>& prov,
    const std::vector<linear::Segment>& segs) {
  rt::kernels::RunPlan plan;
  rt::kernels::RunCoalescer co(
      [](void* ctx, const rt::kernels::BlockRun& r) {
        static_cast<rt::kernels::RunPlan*>(ctx)->add(r);
      },
      &plan);
  detail::for_each_segment_run(
      prov, segs,
      [&](Index s0, Index stride, Index /*k*/, Index n) {
        co.add(s0, stride, n);
      });
  co.flush();
  return plan;
}

/// Reference implementation of pack_segments: the plain scalar loops the
/// kernel layer replaced. Kept (not just for history) as the oracle for the
/// differential kernel tests and the baseline arm of the pack/unpack
/// microbenchmark — byte-identical output to pack_segments is a hard
/// invariant.
template <class T>
void pack_segments_scalar(const std::vector<linear::ProvenancedSegment>& prov,
                          const std::vector<linear::Segment>& segs,
                          const T* local, T* buf) {
  detail::for_each_segment_run(
      prov, segs, [&](Index s0, Index stride, Index k, Index n) {
        if (stride == 1)
          std::memcpy(buf + k, local + s0,
                      static_cast<std::size_t>(n) * sizeof(T));
        else
          for (Index i = 0; i < n; ++i) buf[k + i] = local[s0 + i * stride];
      });
}

/// Scalar reference for unpack_segments; see pack_segments_scalar.
template <class T>
void unpack_segments_scalar(
    const std::vector<linear::ProvenancedSegment>& prov,
    const std::vector<linear::Segment>& segs, T* local, const T* buf) {
  detail::for_each_segment_run(
      prov, segs, [&](Index s0, Index stride, Index k, Index n) {
        if (stride == 1)
          std::memcpy(local + s0, buf + k,
                      static_cast<std::size_t>(n) * sizeof(T));
        else
          for (Index i = 0; i < n; ++i) local[s0 + i * stride] = buf[k + i];
      });
}

/// Compatibility wrapper over pack_segments / unpack_segments.
template <class T>
void copy_segments(const std::vector<linear::ProvenancedSegment>& prov,
                   const std::vector<linear::Segment>& segs, T* local,
                   T* buf, bool pack) {
  if (pack)
    pack_segments<T>(prov, segs, local, buf);
  else
    unpack_segments<T>(prov, segs, local, buf);
}

/// Execute a region schedule: this process performs exactly its own sends
/// and matched receives — independent asynchronous point-to-point transfers
/// with no synchronization barrier on either side (the dataReady() model of
/// the CCA M×N component, paper §4.1). Sends are eager, so issuing all
/// sends before draining receives cannot deadlock.
///
/// Zero-copy data plane (docs/PERFORMANCE.md): each peer's regions are
/// packed once, straight into a pooled rt::Buffer that is then MOVED through
/// the runtime; the receive side injects directly out of the arrived payload
/// block, and payloads are drained in arrival order rather than schedule
/// order. Per element transferred this costs exactly one copy (the pack) —
/// the inject into the destination array is the delivery itself.
///
/// `src_arr` may be null when this process is not in the source cohort, and
/// `dst_arr` null when not in the destination cohort.
template <class T>
void execute(const RegionSchedule& sched, const dad::DistArray<T>* src_arr,
             dad::DistArray<T>* dst_arr, const Coupling& c, int tag) {
  if (!sched.sends.empty() && src_arr == nullptr)
    throw rt::UsageError("schedule has sends but no source array given");
  if (!sched.recvs.empty() && dst_arr == nullptr)
    throw rt::UsageError("schedule has recvs but no destination array given");

  trace::Span span(
      "sched.execute", "sched",
      static_cast<std::uint64_t>(sched.send_elements() +
                                 sched.recv_elements()) * sizeof(T));
  rt::Communicator channel = c.channel;  // local handle

  for (const auto& pr : sched.sends) {
    const std::size_t bytes =
        static_cast<std::size_t>(pr.elements) * sizeof(T);
    rt::Buffer buf = rt::Buffer::allocate(bytes);
    T* out = reinterpret_cast<T*>(buf.mutable_data());
    Index off = 0;
    for (const auto& region : pr.regions) {
      src_arr->extract(region, out + off);
      off += region.volume();
    }
    rt::note_bytes_copied(bytes);
    channel.isend(c.dst_ranks.at(pr.peer), tag, std::move(buf));
  }

  detail::drain_arrival_order(
      channel, c.src_ranks, sched.recvs, tag, c.recv_timeout_ms,
      [&](std::size_t i, rt::Message msg) {
        const auto& pr = sched.recvs[i];
        if (msg.payload.size() !=
            static_cast<std::size_t>(pr.elements) * sizeof(T))
          throw rt::UsageError("redistribution payload size mismatch");
        std::vector<T> fallback;
        const T* data = detail::aligned_or_copy<T>(msg.payload.span(),
                                                   fallback);
        Index off = 0;
        for (const auto& region : pr.regions) {
          dst_arr->inject(region, data + off);
          off += region.volume();
        }
      });
}

/// Execute a segment schedule. `src_prov`/`dst_prov` are the provenanced
/// footprints of the local arrays under the source/destination
/// linearizations (compute once with linear::footprint_with_provenance and
/// reuse across transfers, like the schedule itself).
///
/// Same zero-copy discipline as the region overload: pack once into a pooled
/// buffer, move it through the runtime, unpack segments straight out of the
/// received payload in arrival order.
template <class T>
void execute(const SegmentSchedule& sched, dad::DistArray<T>* src_arr,
             const std::vector<linear::ProvenancedSegment>* src_prov,
             dad::DistArray<T>* dst_arr,
             const std::vector<linear::ProvenancedSegment>* dst_prov,
             const Coupling& c, int tag) {
  trace::Span span(
      "sched.execute", "sched",
      static_cast<std::uint64_t>(sched.send_elements() +
                                 sched.recv_elements()) * sizeof(T));
  rt::Communicator channel = c.channel;

  for (const auto& ps : sched.sends) {
    const std::size_t bytes =
        static_cast<std::size_t>(ps.elements) * sizeof(T);
    rt::Buffer buf = rt::Buffer::allocate(bytes);
    pack_segments<T>(*src_prov, ps.segs, src_arr->local().data(),
                     reinterpret_cast<T*>(buf.mutable_data()));
    rt::note_bytes_copied(bytes);
    channel.isend(c.dst_ranks.at(ps.peer), tag, std::move(buf));
  }

  detail::drain_arrival_order(
      channel, c.src_ranks, sched.recvs, tag, c.recv_timeout_ms,
      [&](std::size_t i, rt::Message msg) {
        const auto& ps = sched.recvs[i];
        if (msg.payload.size() !=
            static_cast<std::size_t>(ps.elements) * sizeof(T))
          throw rt::UsageError("redistribution payload size mismatch");
        std::vector<T> fallback;
        const T* data = detail::aligned_or_copy<T>(msg.payload.span(),
                                                   fallback);
        unpack_segments<T>(*dst_prov, ps.segs, dst_arr->local().data(), data);
      });
}

}  // namespace mxn::sched
