#pragma once

#include "dad/dist_array.hpp"
#include "sched/coupling.hpp"
#include "sched/executor.hpp"

namespace mxn::sched {

/// Schedule-free redistribution in the style of the Indiana MPI-IO M×N
/// device (paper §2.2.1): each receiver broadcasts to the senders which
/// chunks of the linearization it requires; each sender intersects the
/// request with what it owns and replies with exactly those elements. No
/// communication schedule is precomputed or stored — the protocol trades a
/// small per-transfer communication overhead (the request wave) for zero
/// schedule-build cost, which pays off for one-shot couplings.
///
/// Both sides call this collectively. The request wave costs |dst| x |src|
/// small messages; the data wave one message per (src, dst) pair with a
/// non-empty intersection (empty replies are still sent to keep matching
/// trivial, as in the original device).
template <class T>
void redistribute_receiver_driven(const dad::DistArray<T>* src_arr,
                                  const linear::Linearization& src_lin,
                                  dad::DistArray<T>* dst_arr,
                                  const linear::Linearization& dst_lin,
                                  const Coupling& c, int tag) {
  rt::Communicator channel = c.channel;
  const int request_tag = tag;
  const int data_tag = tag + 1;
  const int my_dst = c.my_dst_rank();
  const int my_src = c.my_src_rank();

  // --- receivers announce their needs --------------------------------------
  linear::SegmentsPtr my_needs_ptr;
  if (my_dst >= 0) {
    my_needs_ptr =
        linear::footprint_cached(dst_arr->descriptor(), my_dst, dst_lin);
    const auto& my_needs = *my_needs_ptr;
    rt::PackBuffer b;
    b.pack(static_cast<std::uint64_t>(my_needs.size()));
    for (const auto& s : my_needs) {
      b.pack(s.lo);
      b.pack(s.hi);
    }
    // One refcounted block shared by every sender (no per-peer copy).
    const rt::Buffer bytes = std::move(b).take_buffer();
    for (int s = 0; s < static_cast<int>(c.src_ranks.size()); ++s)
      channel.send(c.src_ranks[s], request_tag, bytes);
  }

  // --- senders answer each request with the overlap ------------------------
  if (my_src >= 0) {
    const auto prov = linear::footprint_with_provenance(
        src_arr->descriptor(), my_src, src_lin);
    std::vector<linear::Segment> mine;
    mine.reserve(prov.size());
    for (const auto& p : prov) mine.push_back(p.seg);
    mine = linear::normalize(std::move(mine));

    for (std::size_t i = 0; i < c.dst_ranks.size(); ++i) {
      auto msg = channel.recv(rt::kAnySource, request_tag);
      rt::UnpackBuffer u(msg.payload);
      const auto n = u.unpack<std::uint64_t>();
      std::vector<linear::Segment> needs(n);
      for (auto& s : needs) {
        s.lo = u.unpack<Index>();
        s.hi = u.unpack<Index>();
      }
      auto common = linear::intersect(mine, needs);

      // Reply: segment list header followed by the elements in linear order,
      // packed straight into the payload (no staging vector).
      rt::PackBuffer reply;
      reply.pack(static_cast<std::uint64_t>(common.size()));
      Index elements = 0;
      for (const auto& s : common) {
        reply.pack(s.lo);
        reply.pack(s.hi);
        elements += s.length();
      }
      const std::size_t nbytes =
          static_cast<std::size_t>(elements) * sizeof(T);
      std::byte* out = reply.append_uninitialized(nbytes);
      if (reinterpret_cast<std::uintptr_t>(out) % alignof(T) == 0) {
        pack_segments<T>(prov, common, src_arr->local().data(),
                         reinterpret_cast<T*>(out));
        rt::note_bytes_copied(nbytes);
      } else {
        std::vector<T> buf(static_cast<std::size_t>(elements));
        pack_segments<T>(prov, common, src_arr->local().data(), buf.data());
        std::memcpy(out, buf.data(), nbytes);
        rt::note_bytes_copied(2 * nbytes);
      }
      channel.send(msg.src, data_tag, std::move(reply).take());
    }
  }

  // --- receivers place the arriving data -----------------------------------
  if (my_dst >= 0) {
    const auto prov = linear::footprint_with_provenance(
        dst_arr->descriptor(), my_dst, dst_lin);
    for (std::size_t i = 0; i < c.src_ranks.size(); ++i) {
      auto msg = channel.recv(rt::kAnySource, data_tag);
      rt::UnpackBuffer u(msg.payload);
      const auto n = u.unpack<std::uint64_t>();
      std::vector<linear::Segment> segs(n);
      Index elements = 0;
      for (auto& s : segs) {
        s.lo = u.unpack<Index>();
        s.hi = u.unpack<Index>();
        elements += s.length();
      }
      // Scatter straight out of the payload — no intermediate vector.
      auto raw = u.unpack_raw(static_cast<std::size_t>(elements) * sizeof(T));
      std::vector<T> fallback;
      const T* data = detail::aligned_or_copy<T>(raw, fallback);
      unpack_segments<T>(prov, segs, dst_arr->local().data(), data);
    }
  }
}

}  // namespace mxn::sched
