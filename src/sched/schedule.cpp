#include "sched/schedule.hpp"

#include "rt/error.hpp"
#include "trace/trace.hpp"

namespace mxn::sched {

using rt::UsageError;

namespace {

void check_shapes(const Descriptor& src, const Descriptor& dst) {
  if (!src.same_shape(dst))
    throw UsageError("redistribution requires identically shaped templates (" +
                     src.to_string() + " vs " + dst.to_string() + ")");
}

}  // namespace

RegionSchedule build_region_schedule(const Descriptor& src,
                                     const Descriptor& dst, int my_src_rank,
                                     int my_dst_rank, bool prune) {
  static trace::Histogram& build_ns = trace::histogram("sched.build_ns");
  trace::Span span("sched.build", "sched", 0, &build_ns);
  check_shapes(src, dst);
  RegionSchedule out;

  if (my_src_rank >= 0) {
    // Sender side: my source patches against every destination rank's
    // patches, nested (my patch, peer patch) — the canonical order.
    const bool have_any = src.local_volume(my_src_rank) > 0;
    for (int d = 0; d < dst.nranks(); ++d) {
      if (prune && (!have_any || dst.local_volume(d) == 0 ||
                    !src.bounding_box(my_src_rank)
                         .overlaps(dst.bounding_box(d))))
        continue;
      PeerRegions pr;
      pr.peer = d;
      for (const auto& mine : src.patches_of(my_src_rank)) {
        for (const auto& theirs : dst.patches_of(d)) {
          if (auto r = Patch::intersect(mine, theirs)) {
            pr.regions.push_back(*r);
            pr.elements += r->volume();
          }
        }
      }
      if (!pr.regions.empty()) out.sends.push_back(std::move(pr));
    }
  }

  if (my_dst_rank >= 0) {
    // Receiver side: every source rank's patches against my destination
    // patches, in the sender's packing order (source patch, dest patch).
    const bool have_any = dst.local_volume(my_dst_rank) > 0;
    for (int s = 0; s < src.nranks(); ++s) {
      if (prune && (!have_any || src.local_volume(s) == 0 ||
                    !src.bounding_box(s).overlaps(
                        dst.bounding_box(my_dst_rank))))
        continue;
      PeerRegions pr;
      pr.peer = s;
      for (const auto& theirs : src.patches_of(s)) {
        for (const auto& mine : dst.patches_of(my_dst_rank)) {
          if (auto r = Patch::intersect(theirs, mine)) {
            pr.regions.push_back(*r);
            pr.elements += r->volume();
          }
        }
      }
      if (!pr.regions.empty()) out.recvs.push_back(std::move(pr));
    }
  }

  return out;
}

SegmentSchedule build_segment_schedule(const Descriptor& src,
                                       const linear::Linearization& src_lin,
                                       const Descriptor& dst,
                                       const linear::Linearization& dst_lin,
                                       int my_src_rank, int my_dst_rank) {
  if (src_lin.total() != dst_lin.total())
    throw UsageError(
        "source and destination linearizations must cover the same number of "
        "elements");
  static trace::Histogram& build_ns = trace::histogram("sched.build_ns");
  trace::Span span("sched.build_segments", "sched", 0, &build_ns);
  SegmentSchedule out;

  if (my_src_rank >= 0) {
    const auto mine = linear::footprint(src, my_src_rank, src_lin);
    for (int d = 0; d < dst.nranks(); ++d) {
      const auto theirs = linear::footprint(dst, d, dst_lin);
      auto common = linear::intersect(mine, theirs);
      if (common.empty()) continue;
      PeerSegments ps;
      ps.peer = d;
      ps.elements = linear::total_length(common);
      ps.segs = std::move(common);
      out.sends.push_back(std::move(ps));
    }
  }

  if (my_dst_rank >= 0) {
    const auto mine = linear::footprint(dst, my_dst_rank, dst_lin);
    for (int s = 0; s < src.nranks(); ++s) {
      const auto theirs = linear::footprint(src, s, src_lin);
      auto common = linear::intersect(theirs, mine);
      if (common.empty()) continue;
      PeerSegments ps;
      ps.peer = s;
      ps.elements = linear::total_length(common);
      ps.segs = std::move(common);
      out.recvs.push_back(std::move(ps));
    }
  }

  return out;
}

}  // namespace mxn::sched
