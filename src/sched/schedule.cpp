#include "sched/schedule.hpp"

#include <algorithm>
#include <array>
#include <cstdint>

#include "rt/error.hpp"
#include "trace/trace.hpp"

namespace mxn::sched {

using rt::UsageError;

namespace {

void check_shapes(const Descriptor& src, const Descriptor& dst) {
  if (!src.same_shape(dst))
    throw UsageError("redistribution requires identically shaped templates (" +
                     src.to_string() + " vs " + dst.to_string() + ")");
}

// ---------------------------------------------------------------------------
// Naive path: nested patch-pair loops, the reference all others must match.
// ---------------------------------------------------------------------------

RegionSchedule build_naive(const Descriptor& src, const Descriptor& dst,
                           int my_src_rank, int my_dst_rank, bool prune) {
  RegionSchedule out;

  if (my_src_rank >= 0) {
    // Sender side: my source patches against every destination rank's
    // patches, nested (my patch, peer patch) — the canonical order.
    const bool have_any = src.local_volume(my_src_rank) > 0;
    for (int d = 0; d < dst.nranks(); ++d) {
      if (prune && (!have_any || dst.local_volume(d) == 0 ||
                    !src.bounding_box(my_src_rank)
                         .overlaps(dst.bounding_box(d))))
        continue;
      PeerRegions pr;
      pr.peer = d;
      for (const auto& mine : src.patches_of(my_src_rank)) {
        for (const auto& theirs : dst.patches_of(d)) {
          if (auto r = Patch::intersect(mine, theirs)) {
            pr.regions.push_back(*r);
            pr.elements += r->volume();
          }
        }
      }
      if (!pr.regions.empty()) out.sends.push_back(std::move(pr));
    }
  }

  if (my_dst_rank >= 0) {
    // Receiver side: every source rank's patches against my destination
    // patches, in the sender's packing order (source patch, dest patch).
    const bool have_any = dst.local_volume(my_dst_rank) > 0;
    for (int s = 0; s < src.nranks(); ++s) {
      if (prune && (!have_any || src.local_volume(s) == 0 ||
                    !src.bounding_box(s).overlaps(
                        dst.bounding_box(my_dst_rank))))
        continue;
      PeerRegions pr;
      pr.peer = s;
      for (const auto& theirs : src.patches_of(s)) {
        for (const auto& mine : dst.patches_of(my_dst_rank)) {
          if (auto r = Patch::intersect(theirs, mine)) {
            pr.regions.push_back(*r);
            pr.elements += r->volume();
          }
        }
      }
      if (!pr.regions.empty()) out.recvs.push_back(std::move(pr));
    }
  }

  return out;
}

// ---------------------------------------------------------------------------
// Analytic path (regular x regular): per-axis closed-form interval overlaps
// crossed into regions directly in the canonical nesting.
// ---------------------------------------------------------------------------

/// One axis' overlap pairs for a (source coord, dest coord) pair, grouped by
/// source interval index. axis_overlaps emits (a_iv, b_iv)-lexicographically
/// with A = the source side, so groups are contiguous runs with ascending
/// a_iv, and within a group b_iv ascends.
struct AxisGroups {
  std::vector<dad::AxisOverlap> pairs;
  struct Group {
    std::size_t begin = 0;
    std::size_t count = 0;
  };
  std::vector<Group> groups;

  void rebuild_groups() {
    groups.clear();
    std::size_t i = 0;
    while (i < pairs.size()) {
      std::size_t j = i;
      while (j < pairs.size() && pairs[j].a_iv == pairs[i].a_iv) ++j;
      groups.push_back({i, j - i});
      i = j;
    }
  }
};

/// Emit the intersection regions for one peer from the per-axis overlap
/// groups, reproducing the naive (source patch, dest patch) nesting exactly.
/// Source patches are the row-major cross product of per-axis source
/// intervals; enumerating group tuples row-major (groups ascend by source
/// interval index) visits exactly the source patches with any overlap, in
/// naive order. For a fixed source patch the overlapping dest patches are
/// the cross product of the per-axis b_iv choices within each group;
/// enumerating those row-major matches the naive inner loop's filtered
/// order. Every emitted region is non-empty by construction.
void emit_analytic(const std::array<AxisGroups, dad::kMaxNdim>& ax, int ndim,
                   PeerRegions& pr) {
  if (ndim == 1) {
    // In 1-D the canonical nesting is exactly the (a_iv, b_iv)-lex order
    // axis_overlaps already emits — no grouping needed. Sized write into
    // the region list: per-push bookkeeping would dominate at cyclic
    // extents (measured ~6x slower).
    const auto& pairs = ax[0].pairs;
    pr.regions.resize(pairs.size());
    Patch* out = pr.regions.data();
    Index elements = 0;
    for (const auto& p : pairs) {
      out->ndim = 1;
      out->lo[0] = p.lo;
      out->hi[0] = p.hi;
      ++out;
      elements += p.hi - p.lo;
    }
    pr.elements = elements;
    return;
  }
  std::array<std::size_t, dad::kMaxNdim> g{};
  while (true) {
    std::array<std::size_t, dad::kMaxNdim> m{};
    while (true) {
      Patch& r = pr.regions.emplace_back();
      r.ndim = ndim;
      for (int a = 0; a < ndim; ++a) {
        const auto& grp = ax[a].groups[g[a]];
        const auto& p = ax[a].pairs[grp.begin + m[a]];
        r.lo[a] = p.lo;
        r.hi[a] = p.hi;
      }
      pr.elements += r.volume();
      int a = ndim - 1;
      while (a >= 0) {
        if (++m[a] < ax[a].groups[g[a]].count) break;
        m[a] = 0;
        --a;
      }
      if (a < 0) break;
    }
    int a = ndim - 1;
    while (a >= 0) {
      if (++g[a] < ax[a].groups.size()) break;
      g[a] = 0;
      --a;
    }
    if (a < 0) break;
  }
}

RegionSchedule build_analytic(const Descriptor& src, const Descriptor& dst,
                              int my_src_rank, int my_dst_rank) {
  static trace::Counter& hits = trace::counter("sched.fastpath.hits");
  hits.add(1);
  RegionSchedule out;
  const int ndim = src.ndim();
  std::array<AxisGroups, dad::kMaxNdim> ax;

  // Fill ax with the per-axis overlaps of (source rank, dest rank); false
  // if some axis has none (the patch sets cannot intersect).
  const auto pair_axes = [&](const std::array<int, dad::kMaxNdim>& sc,
                             const std::array<int, dad::kMaxNdim>& dc) {
    for (int a = 0; a < ndim; ++a) {
      ax[a].pairs.clear();
      dad::axis_overlaps(src.axes()[a], sc[a], dst.axes()[a], dc[a],
                         ax[a].pairs);
      if (ax[a].pairs.empty()) return false;
      if (ndim > 1) ax[a].rebuild_groups();
    }
    return true;
  };

  if (my_src_rank >= 0) {
    const bool have_any = src.local_volume(my_src_rank) > 0;
    const auto my_coords = src.grid_coords(my_src_rank);
    for (int d = 0; d < dst.nranks(); ++d) {
      if (!have_any || dst.local_volume(d) == 0 ||
          !src.bounding_box(my_src_rank).overlaps(dst.bounding_box(d)))
        continue;
      if (!pair_axes(my_coords, dst.grid_coords(d))) continue;
      PeerRegions pr;
      pr.peer = d;
      emit_analytic(ax, ndim, pr);
      if (!pr.regions.empty()) out.sends.push_back(std::move(pr));
    }
  }

  if (my_dst_rank >= 0) {
    const bool have_any = dst.local_volume(my_dst_rank) > 0;
    const auto my_coords = dst.grid_coords(my_dst_rank);
    for (int s = 0; s < src.nranks(); ++s) {
      if (!have_any || src.local_volume(s) == 0 ||
          !src.bounding_box(s).overlaps(dst.bounding_box(my_dst_rank)))
        continue;
      if (!pair_axes(src.grid_coords(s), my_coords)) continue;
      PeerRegions pr;
      pr.peer = s;
      emit_analytic(ax, ndim, pr);
      if (!pr.regions.empty()) out.recvs.push_back(std::move(pr));
    }
  }

  return out;
}

// ---------------------------------------------------------------------------
// Indexed path: binary search + bounded sweep over the peer's sorted patch
// index, then re-sort the pairs into the canonical nesting.
// ---------------------------------------------------------------------------

void indexed_peer_regions(const std::vector<Patch>& locals,
                          const std::vector<Descriptor::IndexedPatch>& peers,
                          bool local_is_source, PeerRegions& pr) {
  struct Pair {
    std::int64_t key;  // (source patch idx << 32) | dest patch idx
    Patch region;
  };
  std::vector<Pair> found;
  for (std::size_t i = 0; i < locals.size(); ++i) {
    const Patch& mine = locals[i];
    // Entries before `first` all have hi[0] <= mine.lo[0] (the prefix max
    // proves it), so they cannot overlap along axis 0. Entries at or past
    // the first whose lo[0] >= mine.hi[0] cannot either; the list is sorted
    // by lo[0], so the scan stops there.
    auto first = std::partition_point(
        peers.begin(), peers.end(), [&](const Descriptor::IndexedPatch& e) {
          return e.max_hi0 <= mine.lo[0];
        });
    for (auto it = first; it != peers.end() && it->patch.lo[0] < mine.hi[0];
         ++it) {
      if (auto r = Patch::intersect(mine, it->patch)) {
        const auto a = local_is_source ? static_cast<std::int64_t>(i)
                                       : static_cast<std::int64_t>(it->idx);
        const auto b = local_is_source ? static_cast<std::int64_t>(it->idx)
                                       : static_cast<std::int64_t>(i);
        found.push_back({(a << 32) | b, *r});
      }
    }
  }
  std::sort(found.begin(), found.end(),
            [](const Pair& x, const Pair& y) { return x.key < y.key; });
  pr.regions.reserve(pr.regions.size() + found.size());
  for (const auto& f : found) {
    pr.regions.push_back(f.region);
    pr.elements += f.region.volume();
  }
}

RegionSchedule build_indexed(const Descriptor& src, const Descriptor& dst,
                             int my_src_rank, int my_dst_rank) {
  static trace::Counter& hits = trace::counter("sched.index.hits");
  hits.add(1);
  RegionSchedule out;

  if (my_src_rank >= 0) {
    const auto& dst_index = dst.spatial_index();
    const bool have_any = src.local_volume(my_src_rank) > 0;
    const auto& mine = src.patches_of(my_src_rank);
    for (int d = 0; d < dst.nranks(); ++d) {
      if (!have_any || dst.local_volume(d) == 0 ||
          !src.bounding_box(my_src_rank).overlaps(dst.bounding_box(d)))
        continue;
      PeerRegions pr;
      pr.peer = d;
      indexed_peer_regions(mine, dst_index[d], /*local_is_source=*/true, pr);
      if (!pr.regions.empty()) out.sends.push_back(std::move(pr));
    }
  }

  if (my_dst_rank >= 0) {
    const auto& src_index = src.spatial_index();
    const bool have_any = dst.local_volume(my_dst_rank) > 0;
    const auto& mine = dst.patches_of(my_dst_rank);
    for (int s = 0; s < src.nranks(); ++s) {
      if (!have_any || src.local_volume(s) == 0 ||
          !src.bounding_box(s).overlaps(dst.bounding_box(my_dst_rank)))
        continue;
      PeerRegions pr;
      pr.peer = s;
      indexed_peer_regions(mine, src_index[s], /*local_is_source=*/false, pr);
      if (!pr.regions.empty()) out.recvs.push_back(std::move(pr));
    }
  }

  return out;
}

}  // namespace

RegionSchedule build_region_schedule(const Descriptor& src,
                                     const Descriptor& dst, int my_src_rank,
                                     int my_dst_rank, BuildPath path) {
  static trace::Histogram& build_ns = trace::histogram("sched.build_ns");
  trace::Span span("sched.build", "sched", 0, &build_ns);
  check_shapes(src, dst);
  if (path == BuildPath::Auto)
    path = (src.is_explicit() || dst.is_explicit()) ? BuildPath::Indexed
                                                    : BuildPath::Analytic;
  switch (path) {
    case BuildPath::Naive:
      return build_naive(src, dst, my_src_rank, my_dst_rank, /*prune=*/true);
    case BuildPath::Indexed:
      return build_indexed(src, dst, my_src_rank, my_dst_rank);
    case BuildPath::Analytic:
      if (src.is_explicit() || dst.is_explicit())
        throw UsageError(
            "analytic schedule construction requires regular templates on "
            "both sides");
      return build_analytic(src, dst, my_src_rank, my_dst_rank);
    case BuildPath::Auto:
      break;  // resolved above
  }
  throw UsageError("unknown schedule build path");
}

RegionSchedule build_region_schedule(const Descriptor& src,
                                     const Descriptor& dst, int my_src_rank,
                                     int my_dst_rank, bool prune) {
  if (prune)
    return build_region_schedule(src, dst, my_src_rank, my_dst_rank,
                                 BuildPath::Auto);
  static trace::Histogram& build_ns = trace::histogram("sched.build_ns");
  trace::Span span("sched.build", "sched", 0, &build_ns);
  check_shapes(src, dst);
  return build_naive(src, dst, my_src_rank, my_dst_rank, /*prune=*/false);
}

DeltaSchedule build_delta_schedule(const Descriptor& from,
                                   const Descriptor& to, int my_from_rank,
                                   int my_to_rank,
                                   const std::vector<int>& from_channel_ranks,
                                   const std::vector<int>& to_channel_ranks) {
  trace::Span span("sched.build_delta", "sched");
  if (static_cast<int>(from_channel_ranks.size()) != from.nranks())
    throw UsageError("delta: old channel-rank list does not match the old "
                     "descriptor's cohort size");
  if (static_cast<int>(to_channel_ranks.size()) != to.nranks())
    throw UsageError("delta: new channel-rank list does not match the new "
                     "descriptor's cohort size");
  const int my_channel =
      my_from_rank >= 0   ? from_channel_ranks.at(my_from_rank)
      : my_to_rank >= 0   ? to_channel_ranks.at(my_to_rank)
                          : -1;
  if (my_from_rank >= 0 && my_to_rank >= 0 &&
      to_channel_ranks.at(my_to_rank) != my_channel)
    throw UsageError("delta: this rank's old and new cohort slots map to "
                     "different channel ranks");

  RegionSchedule full = build_region_schedule(from, to, my_from_rank,
                                              my_to_rank, BuildPath::Auto);
  DeltaSchedule d;
  // A region whose destination is this same channel rank appears in BOTH the
  // send and the recv list (identical canonical region list); claim it from
  // the send side and drop the mirrored recv entry.
  for (auto& pr : full.sends) {
    if (to_channel_ranks.at(pr.peer) == my_channel) {
      d.local.insert(d.local.end(), pr.regions.begin(), pr.regions.end());
      d.local_elements += pr.elements;
    } else {
      d.wire.sends.push_back(std::move(pr));
    }
  }
  for (auto& pr : full.recvs) {
    if (from_channel_ranks.at(pr.peer) == my_channel) continue;
    d.wire.recvs.push_back(std::move(pr));
  }
  return d;
}

SegmentSchedule build_segment_schedule(const Descriptor& src,
                                       const linear::Linearization& src_lin,
                                       const Descriptor& dst,
                                       const linear::Linearization& dst_lin,
                                       int my_src_rank, int my_dst_rank) {
  if (src_lin.total() != dst_lin.total())
    throw UsageError(
        "source and destination linearizations must cover the same number of "
        "elements");
  static trace::Histogram& build_ns = trace::histogram("sched.build_ns");
  trace::Span span("sched.build_segments", "sched", 0, &build_ns);
  SegmentSchedule out;

  // One sweep of my cached footprint against the other side's cached
  // ownership map replaces the old per-peer footprint + intersect (which
  // recomputed every peer's footprint on every call). The ownership runs of
  // one owner are exactly that owner's normalized footprint, so the
  // per-owner output segments are identical to the per-peer intersection.
  const auto sweep = [](const std::vector<linear::Segment>& mine,
                        const std::vector<linear::OwnedSegment>& owned,
                        int nranks, std::vector<PeerSegments>& out_list) {
    std::vector<std::vector<linear::Segment>> buckets(
        static_cast<std::size_t>(nranks));
    std::size_t i = 0, j = 0;
    while (i < mine.size() && j < owned.size()) {
      const Index lo = std::max(mine[i].lo, owned[j].seg.lo);
      const Index hi = std::min(mine[i].hi, owned[j].seg.hi);
      if (lo < hi) buckets[static_cast<std::size_t>(owned[j].owner)].push_back(
          {lo, hi});
      if (mine[i].hi < owned[j].seg.hi)
        ++i;
      else
        ++j;
    }
    for (int r = 0; r < nranks; ++r) {
      auto& segs = buckets[static_cast<std::size_t>(r)];
      if (segs.empty()) continue;
      PeerSegments ps;
      ps.peer = r;
      ps.elements = linear::total_length(segs);
      ps.segs = std::move(segs);
      out_list.push_back(std::move(ps));
    }
  };

  if (my_src_rank >= 0) {
    const auto mine = linear::footprint_cached(src, my_src_rank, src_lin);
    const auto owned = linear::ownership_map_cached(dst, dst_lin);
    sweep(*mine, *owned, dst.nranks(), out.sends);
  }

  if (my_dst_rank >= 0) {
    const auto mine = linear::footprint_cached(dst, my_dst_rank, dst_lin);
    const auto owned = linear::ownership_map_cached(src, src_lin);
    sweep(*mine, *owned, src.nranks(), out.recvs);
  }

  return out;
}

}  // namespace mxn::sched
