#pragma once

#include <vector>

#include "rt/communicator.hpp"
#include "rt/error.hpp"

namespace mxn::sched {

/// Binding of a redistribution to actual processes: a channel communicator
/// that spans both cohorts, and the channel ranks of the source and
/// destination cohort members (index == cohort rank). Self-couplings (e.g. a
/// transpose within one cohort) simply list the same ranks on both sides.
struct Coupling {
  rt::Communicator channel;
  std::vector<int> src_ranks;
  std::vector<int> dst_ranks;

  /// Per-call deadline applied to every channel receive issued while
  /// executing a schedule over this coupling: < 0 inherits the spawn-wide
  /// default, 0 waits forever, > 0 throws rt::TimeoutError. Lets a transfer
  /// fail fast — and typed — when a peer dies or a message is lost, instead
  /// of parking the rank until the all-blocked watchdog trips.
  int recv_timeout_ms = -1;

  /// This process's rank in the source cohort, or -1 if it is not a member.
  [[nodiscard]] int my_src_rank() const { return role_of(src_ranks); }
  /// This process's rank in the destination cohort, or -1.
  [[nodiscard]] int my_dst_rank() const { return role_of(dst_ranks); }

 private:
  [[nodiscard]] int role_of(const std::vector<int>& ranks) const {
    const int me = channel.rank();
    for (std::size_t i = 0; i < ranks.size(); ++i)
      if (ranks[i] == me) return static_cast<int>(i);
    return -1;
  }
};

/// Convenience: source cohort = channel ranks [0, m), destination cohort =
/// channel ranks [m, m+n) — the usual layout when two parallel programs are
/// spawned side by side.
inline Coupling split_coupling(rt::Communicator channel, int m, int n) {
  if (m + n > channel.size())
    throw rt::UsageError("coupling cohorts exceed channel size");
  Coupling c;
  c.channel = std::move(channel);
  c.src_ranks.resize(m);
  c.dst_ranks.resize(n);
  for (int i = 0; i < m; ++i) c.src_ranks[i] = i;
  for (int i = 0; i < n; ++i) c.dst_ranks[i] = m + i;
  return c;
}

/// Self-coupling: both cohorts are the whole channel.
inline Coupling self_coupling(rt::Communicator channel) {
  Coupling c;
  const int n = channel.size();
  c.channel = std::move(channel);
  c.src_ranks.resize(n);
  c.dst_ranks.resize(n);
  for (int i = 0; i < n; ++i) c.src_ranks[i] = c.dst_ranks[i] = i;
  return c;
}

}  // namespace mxn::sched
