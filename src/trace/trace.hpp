#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mxn::trace {

// ===========================================================================
// Unified tracing & metrics layer (see docs/OBSERVABILITY.md).
//
// Two facilities share this header:
//  - EVENTS: per-thread fixed-capacity rings of typed spans/instants,
//    recorded only while tracing is enabled (a branch on one relaxed atomic
//    when it is not), exportable as Chrome trace-event JSON for Perfetto.
//  - METRICS: a process-wide registry of named counters and log2-bucket
//    latency histograms. Counters are always live (two relaxed fetch_adds);
//    the registry subsumes the per-communicator StatsSnapshot and the
//    ScheduleCache hit/miss integers without replacing their APIs.
// ===========================================================================

// --- enable flag -----------------------------------------------------------

namespace detail {
inline std::atomic<bool> g_enabled{false};
}  // namespace detail

/// Is event recording on? One relaxed load; the disabled fast path of every
/// instrumentation site.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

void set_enabled(bool on);

/// True when the MXN_TRACE environment variable is set to a non-empty value
/// other than "0" (parsed once per process).
bool env_enabled();

// --- thread identity -------------------------------------------------------

/// Tag the calling thread with its universe rank; rt::spawn does this for
/// every spawned "process". Untagged threads record as rank -1.
void set_thread_rank(int rank);
int thread_rank();

// --- events ----------------------------------------------------------------

inline std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

enum class EventKind : std::uint8_t { Begin, End, Instant };

/// One recorded event. `name` and `cat` must be string literals (or other
/// process-lifetime storage): rings store the pointers, not copies.
struct Event {
  const char* name = nullptr;
  const char* cat = nullptr;
  EventKind kind = EventKind::Instant;
  int rank = -1;
  std::int64_t ts_ns = 0;
  std::uint64_t arg = 0;
};

/// Events kept per thread; the ring overwrites its oldest entries.
inline constexpr std::size_t kRingCapacity = 4096;

/// Single-writer event ring. The owning thread records without locks; the
/// exporter and the deadlock watchdog read from other threads (the writer is
/// blocked or joined when they do, so snapshot reads are safe in practice).
class Ring {
 public:
  void record(const Event& e) {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    slots_[h % kRingCapacity] = e;
    head_.store(h + 1, std::memory_order_release);
  }

  /// Last min(recorded, capacity) events, oldest first.
  [[nodiscard]] std::vector<Event> snapshot() const;

  void reset() { head_.store(0, std::memory_order_release); }

  [[nodiscard]] std::uint64_t recorded() const {
    return head_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<std::uint64_t> head_{0};
  Event slots_[kRingCapacity];
};

/// Record an instantaneous event on the calling thread's ring. No-op (one
/// relaxed load) while tracing is disabled.
void instant(const char* name, const char* cat, std::uint64_t arg = 0);

/// Snapshot of the calling thread's own ring (oldest first). Mainly for
/// tests and ad-hoc inspection; exporters read every ring instead.
std::vector<Event> this_thread_events();

namespace detail {
void record_kind(const char* name, const char* cat, EventKind kind,
                 std::uint64_t arg);
}  // namespace detail

class Histogram;

/// RAII span: records Begin on construction and End on destruction when
/// tracing is enabled at construction time. Optionally feeds the span
/// duration into a latency histogram (always, even with tracing off, so
/// metrics stay meaningful without event capture — pass nullptr to skip).
class Span {
 public:
  Span(const char* name, const char* cat, std::uint64_t arg = 0,
       Histogram* duration_hist = nullptr)
      : hist_(duration_hist) {
    if (enabled()) {
      active_ = true;
      name_ = name;
      cat_ = cat;
      detail::record_kind(name, cat, EventKind::Begin, arg);
    }
    if (hist_ != nullptr) t0_ = now_ns();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span();

 private:
  bool active_ = false;
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  Histogram* hist_ = nullptr;
  std::int64_t t0_ = 0;
};

// --- metrics ---------------------------------------------------------------

/// Monotonic counter. References returned by counter() stay valid for the
/// process lifetime; hot call sites cache them in function-local statics.
class Counter {
 public:
  void add(std::uint64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Log2-bucket histogram: bucket b counts samples v with bit_width(v) == b,
/// i.e. bucket 0 holds v == 0 and bucket b >= 1 holds [2^(b-1), 2^b).
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void record(std::uint64_t v) {
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  [[nodiscard]] static int bucket_of(std::uint64_t v) {
    int b = 0;
    while (v != 0) {
      ++b;
      v >>= 1;
    }
    return b;
  }

  /// Inclusive lower bound of bucket b's value range.
  [[nodiscard]] static std::uint64_t bucket_lo(int b) {
    return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
  }

  [[nodiscard]] std::uint64_t bucket(int b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] std::uint64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }

  void reset();

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> sum_{0};
};

/// Look up (creating on first use) a named metric. Thread-safe; the returned
/// reference is stable for the process lifetime.
Counter& counter(const std::string& name);
Histogram& histogram(const std::string& name);

/// Snapshot of every registered counter / histogram mean (name -> value).
std::map<std::string, std::uint64_t> counters();
std::map<std::string, std::uint64_t> histogram_counts();

// --- capture management & export -------------------------------------------

/// Reset all rings and metric values (registered objects survive, so cached
/// references stay valid). Call only between spawns — never while traced
/// threads are running.
void reset();

/// Write everything recorded so far as Chrome trace-event JSON (one track
/// per rank; loadable in Perfetto / chrome://tracing). Registered counter
/// values ride along as metadata events. Returns false if the file could
/// not be opened.
bool write_chrome_trace(const std::string& path);

/// Human-readable causal timeline: the last `max_per_rank` events of every
/// rank's ring, one line per event. Empty string when nothing was recorded
/// (e.g. tracing disabled) — the deadlock watchdog appends this to its
/// report.
std::string tail_report(std::size_t max_per_rank);

}  // namespace mxn::trace
