#include "trace/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <sstream>

namespace mxn::trace {

namespace {

thread_local int t_rank = -1;
thread_local Ring* t_ring = nullptr;

/// Owns every ring and metric ever created. Rings and metric objects are
/// never destroyed (only reset), so raw pointers and references handed out
/// stay valid across reset() and thread exit.
struct Registry {
  std::mutex mu;
  std::deque<std::unique_ptr<Ring>> rings;
  std::deque<int> ring_ranks;  // rank tag at ring creation, index-aligned
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;

  static Registry& get() {
    static Registry* r = new Registry();  // leaked: outlives all threads
    return *r;
  }
};

Ring& ring_for_this_thread() {
  if (t_ring == nullptr) {
    auto& reg = Registry::get();
    std::lock_guard lock(reg.mu);
    reg.rings.push_back(std::make_unique<Ring>());
    reg.ring_ranks.push_back(t_rank);
    t_ring = reg.rings.back().get();
  }
  return *t_ring;
}

std::string json_escape(const char* s) {
  std::string out;
  for (; *s; ++s) {
    if (*s == '"' || *s == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(*s) < 0x20) continue;
    out.push_back(*s);
  }
  return out;
}

}  // namespace

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

bool env_enabled() {
  static const bool on = [] {
    const char* v = std::getenv("MXN_TRACE");
    return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
  }();
  return on;
}

void set_thread_rank(int rank) {
  t_rank = rank;
  // Re-tag an already-created ring (a thread may record before spawn tags
  // it, or be reused across spawns with a different rank).
  if (t_ring != nullptr) {
    auto& reg = Registry::get();
    std::lock_guard lock(reg.mu);
    for (std::size_t i = 0; i < reg.rings.size(); ++i)
      if (reg.rings[i].get() == t_ring) reg.ring_ranks[i] = rank;
  }
}

int thread_rank() { return t_rank; }

std::vector<Event> Ring::snapshot() const {
  const std::uint64_t h = head_.load(std::memory_order_acquire);
  const std::uint64_t n = std::min<std::uint64_t>(h, kRingCapacity);
  std::vector<Event> out;
  out.reserve(n);
  for (std::uint64_t i = h - n; i < h; ++i)
    out.push_back(slots_[i % kRingCapacity]);
  return out;
}

namespace detail {

void record_kind(const char* name, const char* cat, EventKind kind,
                 std::uint64_t arg) {
  ring_for_this_thread().record(
      Event{name, cat, kind, t_rank, now_ns(), arg});
}

}  // namespace detail

void instant(const char* name, const char* cat, std::uint64_t arg) {
  if (!enabled()) return;
  detail::record_kind(name, cat, EventKind::Instant, arg);
}

std::vector<Event> this_thread_events() {
  return ring_for_this_thread().snapshot();
}

Span::~Span() {
  if (hist_ != nullptr)
    hist_->record(static_cast<std::uint64_t>(now_ns() - t0_));
  if (active_) detail::record_kind(name_, cat_, EventKind::End, 0);
}

std::uint64_t Histogram::count() const {
  std::uint64_t t = 0;
  for (int b = 0; b < kBuckets; ++b)
    t += buckets_[b].load(std::memory_order_relaxed);
  return t;
}

void Histogram::reset() {
  for (int b = 0; b < kBuckets; ++b)
    buckets_[b].store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

Counter& counter(const std::string& name) {
  auto& reg = Registry::get();
  std::lock_guard lock(reg.mu);
  auto& slot = reg.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Histogram& histogram(const std::string& name) {
  auto& reg = Registry::get();
  std::lock_guard lock(reg.mu);
  auto& slot = reg.histograms[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::map<std::string, std::uint64_t> counters() {
  auto& reg = Registry::get();
  std::lock_guard lock(reg.mu);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, c] : reg.counters) out[name] = c->value();
  return out;
}

std::map<std::string, std::uint64_t> histogram_counts() {
  auto& reg = Registry::get();
  std::lock_guard lock(reg.mu);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, h] : reg.histograms) out[name] = h->count();
  return out;
}

void reset() {
  auto& reg = Registry::get();
  std::lock_guard lock(reg.mu);
  for (auto& r : reg.rings) r->reset();
  for (auto& [name, c] : reg.counters) c->reset();
  for (auto& [name, h] : reg.histograms) h->reset();
}

bool write_chrome_trace(const std::string& path) {
  auto& reg = Registry::get();
  std::vector<std::pair<int, std::vector<Event>>> per_ring;
  std::map<std::string, std::uint64_t> counter_values;
  {
    std::lock_guard lock(reg.mu);
    for (std::size_t i = 0; i < reg.rings.size(); ++i) {
      auto events = reg.rings[i]->snapshot();
      if (!events.empty())
        per_ring.emplace_back(reg.ring_ranks[i], std::move(events));
    }
    for (const auto& [name, c] : reg.counters)
      counter_values[name] = c->value();
  }

  std::int64_t base = INT64_MAX;
  for (const auto& [rank, events] : per_ring)
    for (const Event& e : events) base = std::min(base, e.ts_ns);
  if (base == INT64_MAX) base = 0;

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n", f);
  bool first = true;
  for (const auto& [rank, events] : per_ring) {
    for (const Event& e : events) {
      const char* ph = e.kind == EventKind::Begin  ? "B"
                       : e.kind == EventKind::End ? "E"
                                                  : "i";
      if (!first) std::fputs(",\n", f);
      first = false;
      std::fprintf(f,
                   "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\","
                   "\"pid\":0,\"tid\":%d,\"ts\":%.3f",
                   json_escape(e.name).c_str(), json_escape(e.cat).c_str(),
                   ph, rank, static_cast<double>(e.ts_ns - base) / 1000.0);
      if (e.kind == EventKind::Instant)
        std::fprintf(f, ",\"s\":\"t\",\"args\":{\"arg\":%llu}",
                     static_cast<unsigned long long>(e.arg));
      else if (e.kind == EventKind::Begin)
        std::fprintf(f, ",\"args\":{\"arg\":%llu}",
                     static_cast<unsigned long long>(e.arg));
      std::fputs("}", f);
    }
  }
  // Counter values as one metadata instant so a trace is self-describing.
  for (const auto& [name, v] : counter_values) {
    if (!first) std::fputs(",\n", f);
    first = false;
    std::fprintf(f,
                 "{\"name\":\"counter.%s\",\"cat\":\"metrics\",\"ph\":\"i\","
                 "\"pid\":0,\"tid\":-1,\"ts\":0.0,\"s\":\"g\","
                 "\"args\":{\"value\":%llu}}",
                 json_escape(name.c_str()).c_str(),
                 static_cast<unsigned long long>(v));
  }
  std::fputs("\n]}\n", f);
  std::fclose(f);
  return true;
}

std::string tail_report(std::size_t max_per_rank) {
  auto& reg = Registry::get();
  std::vector<std::pair<int, std::vector<Event>>> per_ring;
  {
    std::lock_guard lock(reg.mu);
    for (std::size_t i = 0; i < reg.rings.size(); ++i) {
      auto events = reg.rings[i]->snapshot();
      if (!events.empty())
        per_ring.emplace_back(reg.ring_ranks[i], std::move(events));
    }
  }
  if (per_ring.empty()) return {};
  std::sort(per_ring.begin(), per_ring.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::ostringstream os;
  for (const auto& [rank, events] : per_ring) {
    os << "  rank " << rank << " (last "
       << std::min(max_per_rank, events.size()) << " events):\n";
    const std::size_t from =
        events.size() > max_per_rank ? events.size() - max_per_rank : 0;
    for (std::size_t i = from; i < events.size(); ++i) {
      const Event& e = events[i];
      const char* k = e.kind == EventKind::Begin  ? "begin"
                      : e.kind == EventKind::End ? "end  "
                                                 : "inst ";
      os << "    " << k << " " << e.cat << "/" << e.name << " arg=" << e.arg
         << " ts=" << e.ts_ns << "\n";
    }
  }
  return os.str();
}

}  // namespace mxn::trace
