#pragma once

#include <array>
#include <vector>

#include "dad/descriptor.hpp"
#include "dad/geometry.hpp"

namespace mxn::linear {

using dad::Index;
using dad::Patch;
using dad::Point;

/// Half-open interval [lo, hi) of the abstract linear index space.
struct Segment {
  Index lo = 0;
  Index hi = 0;

  [[nodiscard]] Index length() const { return hi - lo; }
  [[nodiscard]] bool empty() const { return hi <= lo; }
  friend bool operator==(const Segment&, const Segment&) = default;
};

/// Sort segments and merge touching/overlapping ones.
std::vector<Segment> normalize(std::vector<Segment> segs);

/// Intersection of two normalized segment lists (two-pointer sweep).
std::vector<Segment> intersect(const std::vector<Segment>& a,
                               const std::vector<Segment>& b);

/// Total number of indices covered by a normalized list.
Index total_length(const std::vector<Segment>& segs);

/// A linearization maps the multidimensional global index space onto a
/// single abstract 1-D arrangement (paper §2.2.1). The mapping between the
/// source and target data is then implicit: elements with equal linear index
/// correspond. The application controls the order; axis-permutation orders
/// cover row-major, column-major and transposes. Linearization is logical —
/// nothing is ever materialized in this order; it exists only as the common
/// reference for computing communication schedules.
class Linearization {
 public:
  /// Row-major (last axis fastest) — matches DistArray patch storage order.
  static Linearization row_major(int ndim, const Point& extents);

  /// Column-major (first axis fastest).
  static Linearization column_major(int ndim, const Point& extents);

  /// Axes listed from slowest to fastest. order must be a permutation of
  /// 0..ndim-1. Using the reversed identity yields column-major; swapping
  /// two axes of the identity expresses a transpose coupling.
  static Linearization axis_order(int ndim, const Point& extents,
                                  std::array<int, dad::kMaxNdim> order);

  [[nodiscard]] int ndim() const { return ndim_; }
  [[nodiscard]] Index total() const { return total_; }
  [[nodiscard]] int fastest_axis() const { return order_[ndim_ - 1]; }
  [[nodiscard]] bool is_row_major() const;

  [[nodiscard]] Index offset_of(const Point& p) const {
    Index off = 0;
    for (int i = 0; i < ndim_; ++i)
      off = off * extents_[order_[i]] + p[order_[i]];
    return off;
  }

  [[nodiscard]] Point point_at(Index offset) const {
    Point p{};
    for (int i = ndim_ - 1; i >= 0; --i) {
      const int a = order_[i];
      p[a] = offset % extents_[a];
      offset /= extents_[a];
    }
    return p;
  }

 private:
  Linearization() = default;

  int ndim_ = 0;
  Point extents_{};
  std::array<int, dad::kMaxNdim> order_{};
  Index total_ = 0;
};

/// A run of indices that is contiguous in linear space, together with where
/// those elements live in the owning rank's local storage. `storage_stride`
/// is the storage distance between consecutive linear indices of the run: 1
/// when the linearization's fastest axis is the storage's fastest (row-major
/// over the patch), something larger for permuted orders.
struct ProvenancedSegment {
  Segment seg;
  Index storage_offset = 0;  // local storage offset of seg.lo's element
  Index storage_stride = 1;
};

/// The linear footprint of `rank` under `desc`: the set of linear indices it
/// owns, as normalized segments.
std::vector<Segment> footprint(const dad::Descriptor& desc, int rank,
                               const Linearization& lin);

/// Footprint with storage provenance, sorted by linear offset; the schedule
/// executor uses this to pack/unpack segment data with strided copies
/// instead of per-element descriptor queries.
std::vector<ProvenancedSegment> footprint_with_provenance(
    const dad::Descriptor& desc, int rank, const Linearization& lin);

}  // namespace mxn::linear
