#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <vector>

#include "dad/descriptor.hpp"
#include "dad/geometry.hpp"

namespace mxn::linear {

using dad::Index;
using dad::Patch;
using dad::Point;

/// Half-open interval [lo, hi) of the abstract linear index space.
struct Segment {
  Index lo = 0;
  Index hi = 0;

  [[nodiscard]] Index length() const { return hi - lo; }
  [[nodiscard]] bool empty() const { return hi <= lo; }
  friend bool operator==(const Segment&, const Segment&) = default;
};

/// Sort segments and merge touching/overlapping ones.
std::vector<Segment> normalize(std::vector<Segment> segs);

/// Intersection of two normalized segment lists (two-pointer sweep).
std::vector<Segment> intersect(const std::vector<Segment>& a,
                               const std::vector<Segment>& b);

/// Total number of indices covered by a normalized list.
Index total_length(const std::vector<Segment>& segs);

/// A linearization maps the multidimensional global index space onto a
/// single abstract 1-D arrangement (paper §2.2.1). The mapping between the
/// source and target data is then implicit: elements with equal linear index
/// correspond. The application controls the order; axis-permutation orders
/// cover row-major, column-major and transposes. Linearization is logical —
/// nothing is ever materialized in this order; it exists only as the common
/// reference for computing communication schedules.
class Linearization {
 public:
  /// Row-major (last axis fastest) — matches DistArray patch storage order.
  static Linearization row_major(int ndim, const Point& extents);

  /// Column-major (first axis fastest).
  static Linearization column_major(int ndim, const Point& extents);

  /// Axes listed from slowest to fastest. order must be a permutation of
  /// 0..ndim-1. Using the reversed identity yields column-major; swapping
  /// two axes of the identity expresses a transpose coupling.
  static Linearization axis_order(int ndim, const Point& extents,
                                  std::array<int, dad::kMaxNdim> order);

  [[nodiscard]] int ndim() const { return ndim_; }
  [[nodiscard]] Index total() const { return total_; }
  [[nodiscard]] int fastest_axis() const { return order_[ndim_ - 1]; }
  [[nodiscard]] bool is_row_major() const;

  /// Hash of the full identity (ndim, extents, axis order); equal
  /// linearizations hash equally. Used to key the footprint cache.
  [[nodiscard]] std::size_t structural_hash() const;

  friend bool operator==(const Linearization& a, const Linearization& b) {
    return a.ndim_ == b.ndim_ && a.extents_ == b.extents_ &&
           a.order_ == b.order_;
  }

  [[nodiscard]] Index offset_of(const Point& p) const {
    Index off = 0;
    for (int i = 0; i < ndim_; ++i)
      off = off * extents_[order_[i]] + p[order_[i]];
    return off;
  }

  [[nodiscard]] Point point_at(Index offset) const {
    Point p{};
    for (int i = ndim_ - 1; i >= 0; --i) {
      const int a = order_[i];
      p[a] = offset % extents_[a];
      offset /= extents_[a];
    }
    return p;
  }

 private:
  Linearization() = default;

  int ndim_ = 0;
  Point extents_{};
  std::array<int, dad::kMaxNdim> order_{};
  Index total_ = 0;
};

/// A run of indices that is contiguous in linear space, together with where
/// those elements live in the owning rank's local storage. `storage_stride`
/// is the storage distance between consecutive linear indices of the run: 1
/// when the linearization's fastest axis is the storage's fastest (row-major
/// over the patch), something larger for permuted orders.
struct ProvenancedSegment {
  Segment seg;
  Index storage_offset = 0;  // local storage offset of seg.lo's element
  Index storage_stride = 1;
};

/// The linear footprint of `rank` under `desc`: the set of linear indices it
/// owns, as normalized segments.
std::vector<Segment> footprint(const dad::Descriptor& desc, int rank,
                               const Linearization& lin);

/// Footprint with storage provenance, sorted by linear offset; the schedule
/// executor uses this to pack/unpack segment data with strided copies
/// instead of per-element descriptor queries.
std::vector<ProvenancedSegment> footprint_with_provenance(
    const dad::Descriptor& desc, int rank, const Linearization& lin);

/// One run of the descriptor-wide ownership map: `seg` is owned by `owner`.
struct OwnedSegment {
  Segment seg;
  int owner = 0;
  friend bool operator==(const OwnedSegment&, const OwnedSegment&) = default;
};

using SegmentsPtr = std::shared_ptr<const std::vector<Segment>>;
using OwnershipPtr = std::shared_ptr<const std::vector<OwnedSegment>>;

/// footprint(), memoized process-wide per (descriptor, rank, linearization)
/// — keyed by the descriptor's structural hash plus a shape fingerprint, so
/// structurally equal descriptor objects share entries. Thread-safe; the
/// returned vector is immutable and outlives cache clears and evictions.
/// Hits/misses are counted by `sched.footprint.hits` /
/// `sched.footprint.misses`; a lookup that loses a concurrent build race is
/// neither (it's billed to `sched.footprint.races`), so the tallies stay
/// exact under threads.
SegmentsPtr footprint_cached(const dad::Descriptor& desc, int rank,
                             const Linearization& lin);

/// The whole descriptor's ownership map under `lin`: ascending disjoint
/// (segment, owner) runs exactly covering [0, lin.total()). The runs of one
/// owner equal footprint(desc, owner, lin), so a single sweep of a local
/// footprint against this map replaces per-peer footprint + intersect.
std::vector<OwnedSegment> ownership_map(const dad::Descriptor& desc,
                                        const Linearization& lin);

/// ownership_map(), memoized like footprint_cached (keyed with rank = -1).
/// Billed to its own `sched.ownership.hits` / `sched.ownership.misses`
/// counters; the per-rank footprint lookups its build path runs internally
/// are NOT billed to the footprint tallies (they are a build detail, not
/// application lookups — billing them inflated the footprint hit rate
/// exactly when the cache was coldest).
OwnershipPtr ownership_map_cached(const dad::Descriptor& desc,
                                  const Linearization& lin);

/// Sizing knobs for the process-wide footprint/ownership cache. Defaults
/// reproduce the historical behaviour: one shard, no bounds. A serving
/// workload with many live descriptor shapes configures shards (lock
/// spreading) and budgets; over budget, least-recently-used entries are
/// evicted (`sched.footprint.evicted`) — returned SegmentsPtr/OwnershipPtr
/// handles stay valid, eviction only drops the cache's reference.
struct FootprintCacheConfig {
  std::size_t shards = 1;       // rounded up to a power of two
  std::size_t max_entries = 0;  // total entry cap, 0 = unbounded
  std::size_t max_bytes = 0;    // total byte budget, 0 = unbounded
};
void footprint_cache_configure(const FootprintCacheConfig& cfg);

struct FootprintCacheStats {
  std::size_t hits = 0;    // footprint_cached outcomes only
  std::size_t misses = 0;  // ...a miss is a build this caller performed
  std::size_t ownership_hits = 0;    // ownership_map_cached outcomes
  std::size_t ownership_misses = 0;
  std::size_t races = 0;      // lost concurrent-build races (not misses)
  std::size_t evictions = 0;  // LRU evictions under a configured budget
  std::size_t entries = 0;    // footprints + ownership maps resident
  std::size_t bytes = 0;      // resident payload bytes
};
[[nodiscard]] FootprintCacheStats footprint_cache_stats();
void footprint_cache_clear();

}  // namespace mxn::linear
