#include "linear/linearization.hpp"

#include <algorithm>

#include "rt/error.hpp"

namespace mxn::linear {

using rt::UsageError;

std::vector<Segment> normalize(std::vector<Segment> segs) {
  segs.erase(std::remove_if(segs.begin(), segs.end(),
                            [](const Segment& s) { return s.empty(); }),
             segs.end());
  std::sort(segs.begin(), segs.end(),
            [](const Segment& a, const Segment& b) { return a.lo < b.lo; });
  std::vector<Segment> out;
  for (const auto& s : segs) {
    if (!out.empty() && s.lo <= out.back().hi)
      out.back().hi = std::max(out.back().hi, s.hi);
    else
      out.push_back(s);
  }
  return out;
}

std::vector<Segment> intersect(const std::vector<Segment>& a,
                               const std::vector<Segment>& b) {
  std::vector<Segment> out;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const Index lo = std::max(a[i].lo, b[j].lo);
    const Index hi = std::min(a[i].hi, b[j].hi);
    if (lo < hi) out.push_back({lo, hi});
    if (a[i].hi < b[j].hi)
      ++i;
    else
      ++j;
  }
  return out;
}

Index total_length(const std::vector<Segment>& segs) {
  Index t = 0;
  for (const auto& s : segs) t += s.length();
  return t;
}

Linearization Linearization::row_major(int ndim, const Point& extents) {
  std::array<int, dad::kMaxNdim> order{};
  for (int i = 0; i < ndim; ++i) order[i] = i;
  return axis_order(ndim, extents, order);
}

Linearization Linearization::column_major(int ndim, const Point& extents) {
  std::array<int, dad::kMaxNdim> order{};
  for (int i = 0; i < ndim; ++i) order[i] = ndim - 1 - i;
  return axis_order(ndim, extents, order);
}

Linearization Linearization::axis_order(int ndim, const Point& extents,
                                        std::array<int, dad::kMaxNdim> order) {
  if (ndim < 1 || ndim > dad::kMaxNdim) throw UsageError("bad ndim");
  std::array<bool, dad::kMaxNdim> seen{};
  for (int i = 0; i < ndim; ++i) {
    if (order[i] < 0 || order[i] >= ndim || seen[order[i]])
      throw UsageError("axis order must be a permutation of 0..ndim-1");
    seen[order[i]] = true;
  }
  Linearization lin;
  lin.ndim_ = ndim;
  lin.extents_ = extents;
  lin.order_ = order;
  lin.total_ = 1;
  for (int a = 0; a < ndim; ++a) {
    if (extents[a] <= 0) throw UsageError("extents must be positive");
    lin.total_ *= extents[a];
  }
  return lin;
}

bool Linearization::is_row_major() const {
  for (int i = 0; i < ndim_; ++i)
    if (order_[i] != i) return false;
  return true;
}

std::vector<ProvenancedSegment> footprint_with_provenance(
    const dad::Descriptor& desc, int rank, const Linearization& lin) {
  if (desc.ndim() != lin.ndim())
    throw UsageError("linearization/descriptor dimensionality mismatch");
  const int f = lin.fastest_axis();
  std::vector<ProvenancedSegment> out;
  const auto& patches = desc.patches_of(rank);
  for (std::size_t pi = 0; pi < patches.size(); ++pi) {
    const Patch& p = patches[pi];
    const Index base = desc.patch_base(rank, pi);
    // Storage stride between consecutive indices along axis f inside this
    // row-major patch: product of extents of the axes after f.
    Index stride = 1;
    for (int a = f + 1; a < p.ndim; ++a) stride *= p.extent(a);
    // Enumerate runs along axis f: iterate the patch with axis f pinned.
    Patch starts = p;
    starts.hi[f] = starts.lo[f] + 1;
    starts.for_each_point([&](const Point& s) {
      ProvenancedSegment ps;
      ps.seg.lo = lin.offset_of(s);
      ps.seg.hi = ps.seg.lo + p.extent(f);
      ps.storage_offset = base + p.offset_of(s);
      ps.storage_stride = stride;
      out.push_back(ps);
    });
  }
  std::sort(out.begin(), out.end(),
            [](const ProvenancedSegment& a, const ProvenancedSegment& b) {
              return a.seg.lo < b.seg.lo;
            });
  return out;
}

std::vector<Segment> footprint(const dad::Descriptor& desc, int rank,
                               const Linearization& lin) {
  auto prov = footprint_with_provenance(desc, rank, lin);
  std::vector<Segment> segs;
  segs.reserve(prov.size());
  for (const auto& ps : prov) segs.push_back(ps.seg);
  return normalize(std::move(segs));
}

}  // namespace mxn::linear
