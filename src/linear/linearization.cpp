#include "linear/linearization.hpp"

#include <algorithm>
#include <mutex>
#include <unordered_map>

#include "rt/error.hpp"
#include "trace/trace.hpp"

namespace mxn::linear {

using rt::UsageError;

std::vector<Segment> normalize(std::vector<Segment> segs) {
  segs.erase(std::remove_if(segs.begin(), segs.end(),
                            [](const Segment& s) { return s.empty(); }),
             segs.end());
  std::sort(segs.begin(), segs.end(),
            [](const Segment& a, const Segment& b) { return a.lo < b.lo; });
  std::vector<Segment> out;
  for (const auto& s : segs) {
    if (!out.empty() && s.lo <= out.back().hi)
      out.back().hi = std::max(out.back().hi, s.hi);
    else
      out.push_back(s);
  }
  return out;
}

std::vector<Segment> intersect(const std::vector<Segment>& a,
                               const std::vector<Segment>& b) {
  std::vector<Segment> out;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const Index lo = std::max(a[i].lo, b[j].lo);
    const Index hi = std::min(a[i].hi, b[j].hi);
    if (lo < hi) out.push_back({lo, hi});
    if (a[i].hi < b[j].hi)
      ++i;
    else
      ++j;
  }
  return out;
}

Index total_length(const std::vector<Segment>& segs) {
  Index t = 0;
  for (const auto& s : segs) t += s.length();
  return t;
}

Linearization Linearization::row_major(int ndim, const Point& extents) {
  std::array<int, dad::kMaxNdim> order{};
  for (int i = 0; i < ndim; ++i) order[i] = i;
  return axis_order(ndim, extents, order);
}

Linearization Linearization::column_major(int ndim, const Point& extents) {
  std::array<int, dad::kMaxNdim> order{};
  for (int i = 0; i < ndim; ++i) order[i] = ndim - 1 - i;
  return axis_order(ndim, extents, order);
}

Linearization Linearization::axis_order(int ndim, const Point& extents,
                                        std::array<int, dad::kMaxNdim> order) {
  if (ndim < 1 || ndim > dad::kMaxNdim) throw UsageError("bad ndim");
  std::array<bool, dad::kMaxNdim> seen{};
  for (int i = 0; i < ndim; ++i) {
    if (order[i] < 0 || order[i] >= ndim || seen[order[i]])
      throw UsageError("axis order must be a permutation of 0..ndim-1");
    seen[order[i]] = true;
  }
  Linearization lin;
  lin.ndim_ = ndim;
  lin.extents_ = extents;
  lin.order_ = order;
  lin.total_ = 1;
  for (int a = 0; a < ndim; ++a) {
    if (extents[a] <= 0) throw UsageError("extents must be positive");
    lin.total_ *= extents[a];
  }
  return lin;
}

bool Linearization::is_row_major() const {
  for (int i = 0; i < ndim_; ++i)
    if (order_[i] != i) return false;
  return true;
}

std::vector<ProvenancedSegment> footprint_with_provenance(
    const dad::Descriptor& desc, int rank, const Linearization& lin) {
  if (desc.ndim() != lin.ndim())
    throw UsageError("linearization/descriptor dimensionality mismatch");
  const int f = lin.fastest_axis();
  std::vector<ProvenancedSegment> out;
  const auto& patches = desc.patches_of(rank);
  for (std::size_t pi = 0; pi < patches.size(); ++pi) {
    const Patch& p = patches[pi];
    const Index base = desc.patch_base(rank, pi);
    // Storage stride between consecutive indices along axis f inside this
    // row-major patch: product of extents of the axes after f.
    Index stride = 1;
    for (int a = f + 1; a < p.ndim; ++a) stride *= p.extent(a);
    // Enumerate runs along axis f: iterate the patch with axis f pinned.
    Patch starts = p;
    starts.hi[f] = starts.lo[f] + 1;
    starts.for_each_point([&](const Point& s) {
      ProvenancedSegment ps;
      ps.seg.lo = lin.offset_of(s);
      ps.seg.hi = ps.seg.lo + p.extent(f);
      ps.storage_offset = base + p.offset_of(s);
      ps.storage_stride = stride;
      out.push_back(ps);
    });
  }
  std::sort(out.begin(), out.end(),
            [](const ProvenancedSegment& a, const ProvenancedSegment& b) {
              return a.seg.lo < b.seg.lo;
            });
  return out;
}

std::vector<Segment> footprint(const dad::Descriptor& desc, int rank,
                               const Linearization& lin) {
  auto prov = footprint_with_provenance(desc, rank, lin);
  std::vector<Segment> segs;
  segs.reserve(prov.size());
  for (const auto& ps : prov) segs.push_back(ps.seg);
  return normalize(std::move(segs));
}

std::size_t Linearization::structural_hash() const {
  std::size_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(ndim_));
  for (int a = 0; a < ndim_; ++a) {
    mix(static_cast<std::uint64_t>(extents_[a]));
    mix(static_cast<std::uint64_t>(order_[a]));
  }
  return h;
}

// ---------------------------------------------------------------------------
// Footprint memoization
// ---------------------------------------------------------------------------

namespace {

/// Cache key: descriptor + linearization structural hashes plus a cheap
/// shape fingerprint guarding against hash collisions between differently
/// shaped descriptors (the hashes themselves are 64-bit FNV-1a over the
/// full canonical serializations).
struct FpKey {
  std::size_t desc_hash = 0;
  std::size_t lin_hash = 0;
  int rank = -1;  // -1 keys the whole-descriptor ownership map
  int nranks = 0;
  int ndim = 0;
  bool is_explicit = false;
  dad::Point extents{};

  friend bool operator==(const FpKey&, const FpKey&) = default;
};

struct FpKeyHash {
  std::size_t operator()(const FpKey& k) const {
    std::size_t h = k.desc_hash;
    h = h * 1099511628211ull + k.lin_hash;
    h = h * 1099511628211ull + static_cast<std::size_t>(k.rank + 1);
    return h;
  }
};

FpKey make_key(const dad::Descriptor& desc, int rank,
               const Linearization& lin) {
  FpKey k;
  k.desc_hash = desc.structural_hash();
  k.lin_hash = lin.structural_hash();
  k.rank = rank;
  k.nranks = desc.nranks();
  k.ndim = desc.ndim();
  k.is_explicit = desc.is_explicit();
  for (int a = 0; a < desc.ndim(); ++a) k.extents[a] = desc.extent(a);
  return k;
}

struct FpCache {
  std::mutex mu;
  std::unordered_map<FpKey, SegmentsPtr, FpKeyHash> footprints;
  std::unordered_map<FpKey, OwnershipPtr, FpKeyHash> ownerships;
  std::size_t hits = 0;
  std::size_t misses = 0;
};

FpCache& fp_cache() {
  static FpCache c;
  return c;
}

}  // namespace

SegmentsPtr footprint_cached(const dad::Descriptor& desc, int rank,
                             const Linearization& lin) {
  static trace::Counter& hits = trace::counter("sched.footprint.hits");
  static trace::Counter& misses = trace::counter("sched.footprint.misses");
  const FpKey key = make_key(desc, rank, lin);
  auto& c = fp_cache();
  {
    std::lock_guard<std::mutex> lock(c.mu);
    auto it = c.footprints.find(key);
    if (it != c.footprints.end()) {
      ++c.hits;
      hits.add(1);
      return it->second;
    }
    ++c.misses;
    misses.add(1);
  }
  // Compute outside the lock so concurrent ranks don't serialize; a racing
  // duplicate build is harmless (first insert wins).
  auto built =
      std::make_shared<const std::vector<Segment>>(footprint(desc, rank, lin));
  std::lock_guard<std::mutex> lock(c.mu);
  return c.footprints.emplace(key, std::move(built)).first->second;
}

std::vector<OwnedSegment> ownership_map(const dad::Descriptor& desc,
                                        const Linearization& lin) {
  std::vector<OwnedSegment> out;
  for (int r = 0; r < desc.nranks(); ++r) {
    const auto fp = footprint_cached(desc, r, lin);
    for (const auto& s : *fp) out.push_back({s, r});
  }
  std::sort(out.begin(), out.end(),
            [](const OwnedSegment& a, const OwnedSegment& b) {
              return a.seg.lo < b.seg.lo;
            });
  return out;
}

OwnershipPtr ownership_map_cached(const dad::Descriptor& desc,
                                  const Linearization& lin) {
  static trace::Counter& hits = trace::counter("sched.footprint.hits");
  static trace::Counter& misses = trace::counter("sched.footprint.misses");
  const FpKey key = make_key(desc, /*rank=*/-1, lin);
  auto& c = fp_cache();
  {
    std::lock_guard<std::mutex> lock(c.mu);
    auto it = c.ownerships.find(key);
    if (it != c.ownerships.end()) {
      ++c.hits;
      hits.add(1);
      return it->second;
    }
    ++c.misses;
    misses.add(1);
  }
  auto built = std::make_shared<const std::vector<OwnedSegment>>(
      ownership_map(desc, lin));
  std::lock_guard<std::mutex> lock(c.mu);
  return c.ownerships.emplace(key, std::move(built)).first->second;
}

FootprintCacheStats footprint_cache_stats() {
  auto& c = fp_cache();
  std::lock_guard<std::mutex> lock(c.mu);
  return {c.hits, c.misses, c.footprints.size() + c.ownerships.size()};
}

void footprint_cache_clear() {
  auto& c = fp_cache();
  std::lock_guard<std::mutex> lock(c.mu);
  c.footprints.clear();
  c.ownerships.clear();
  c.hits = 0;
  c.misses = 0;
}

}  // namespace mxn::linear
