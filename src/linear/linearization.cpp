#include "linear/linearization.hpp"

#include <algorithm>
#include <atomic>
#include <list>
#include <mutex>
#include <type_traits>
#include <unordered_map>

#include "rt/error.hpp"
#include "trace/trace.hpp"

namespace mxn::linear {

using rt::UsageError;

std::vector<Segment> normalize(std::vector<Segment> segs) {
  segs.erase(std::remove_if(segs.begin(), segs.end(),
                            [](const Segment& s) { return s.empty(); }),
             segs.end());
  std::sort(segs.begin(), segs.end(),
            [](const Segment& a, const Segment& b) { return a.lo < b.lo; });
  std::vector<Segment> out;
  for (const auto& s : segs) {
    if (!out.empty() && s.lo <= out.back().hi)
      out.back().hi = std::max(out.back().hi, s.hi);
    else
      out.push_back(s);
  }
  return out;
}

std::vector<Segment> intersect(const std::vector<Segment>& a,
                               const std::vector<Segment>& b) {
  std::vector<Segment> out;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const Index lo = std::max(a[i].lo, b[j].lo);
    const Index hi = std::min(a[i].hi, b[j].hi);
    if (lo < hi) out.push_back({lo, hi});
    if (a[i].hi < b[j].hi)
      ++i;
    else
      ++j;
  }
  return out;
}

Index total_length(const std::vector<Segment>& segs) {
  Index t = 0;
  for (const auto& s : segs) t += s.length();
  return t;
}

Linearization Linearization::row_major(int ndim, const Point& extents) {
  std::array<int, dad::kMaxNdim> order{};
  for (int i = 0; i < ndim; ++i) order[i] = i;
  return axis_order(ndim, extents, order);
}

Linearization Linearization::column_major(int ndim, const Point& extents) {
  std::array<int, dad::kMaxNdim> order{};
  for (int i = 0; i < ndim; ++i) order[i] = ndim - 1 - i;
  return axis_order(ndim, extents, order);
}

Linearization Linearization::axis_order(int ndim, const Point& extents,
                                        std::array<int, dad::kMaxNdim> order) {
  if (ndim < 1 || ndim > dad::kMaxNdim) throw UsageError("bad ndim");
  std::array<bool, dad::kMaxNdim> seen{};
  for (int i = 0; i < ndim; ++i) {
    if (order[i] < 0 || order[i] >= ndim || seen[order[i]])
      throw UsageError("axis order must be a permutation of 0..ndim-1");
    seen[order[i]] = true;
  }
  Linearization lin;
  lin.ndim_ = ndim;
  lin.extents_ = extents;
  lin.order_ = order;
  lin.total_ = 1;
  for (int a = 0; a < ndim; ++a) {
    if (extents[a] <= 0) throw UsageError("extents must be positive");
    lin.total_ *= extents[a];
  }
  return lin;
}

bool Linearization::is_row_major() const {
  for (int i = 0; i < ndim_; ++i)
    if (order_[i] != i) return false;
  return true;
}

std::vector<ProvenancedSegment> footprint_with_provenance(
    const dad::Descriptor& desc, int rank, const Linearization& lin) {
  if (desc.ndim() != lin.ndim())
    throw UsageError("linearization/descriptor dimensionality mismatch");
  const int f = lin.fastest_axis();
  std::vector<ProvenancedSegment> out;
  const auto& patches = desc.patches_of(rank);
  for (std::size_t pi = 0; pi < patches.size(); ++pi) {
    const Patch& p = patches[pi];
    const Index base = desc.patch_base(rank, pi);
    // Storage stride between consecutive indices along axis f inside this
    // row-major patch: product of extents of the axes after f.
    Index stride = 1;
    for (int a = f + 1; a < p.ndim; ++a) stride *= p.extent(a);
    // Enumerate runs along axis f: iterate the patch with axis f pinned.
    Patch starts = p;
    starts.hi[f] = starts.lo[f] + 1;
    starts.for_each_point([&](const Point& s) {
      ProvenancedSegment ps;
      ps.seg.lo = lin.offset_of(s);
      ps.seg.hi = ps.seg.lo + p.extent(f);
      ps.storage_offset = base + p.offset_of(s);
      ps.storage_stride = stride;
      out.push_back(ps);
    });
  }
  std::sort(out.begin(), out.end(),
            [](const ProvenancedSegment& a, const ProvenancedSegment& b) {
              return a.seg.lo < b.seg.lo;
            });
  return out;
}

std::vector<Segment> footprint(const dad::Descriptor& desc, int rank,
                               const Linearization& lin) {
  auto prov = footprint_with_provenance(desc, rank, lin);
  std::vector<Segment> segs;
  segs.reserve(prov.size());
  for (const auto& ps : prov) segs.push_back(ps.seg);
  return normalize(std::move(segs));
}

std::size_t Linearization::structural_hash() const {
  std::size_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(ndim_));
  for (int a = 0; a < ndim_; ++a) {
    mix(static_cast<std::uint64_t>(extents_[a]));
    mix(static_cast<std::uint64_t>(order_[a]));
  }
  return h;
}

// ---------------------------------------------------------------------------
// Footprint memoization
// ---------------------------------------------------------------------------

namespace {

/// Cache key: descriptor + linearization structural hashes plus a cheap
/// shape fingerprint guarding against hash collisions between differently
/// shaped descriptors (the hashes themselves are 64-bit FNV-1a over the
/// full canonical serializations).
struct FpKey {
  std::size_t desc_hash = 0;
  std::size_t lin_hash = 0;
  int rank = -1;  // -1 keys the whole-descriptor ownership map
  int nranks = 0;
  int ndim = 0;
  bool is_explicit = false;
  dad::Point extents{};

  friend bool operator==(const FpKey&, const FpKey&) = default;
};

struct FpKeyHash {
  std::size_t operator()(const FpKey& k) const {
    std::size_t h = k.desc_hash;
    h = h * 1099511628211ull + k.lin_hash;
    h = h * 1099511628211ull + static_cast<std::size_t>(k.rank + 1);
    return h;
  }
};

FpKey make_key(const dad::Descriptor& desc, int rank,
               const Linearization& lin) {
  FpKey k;
  k.desc_hash = desc.structural_hash();
  k.lin_hash = lin.structural_hash();
  k.rank = rank;
  k.nranks = desc.nranks();
  k.ndim = desc.ndim();
  k.is_explicit = desc.is_explicit();
  for (int a = 0; a < desc.ndim(); ++a) k.extents[a] = desc.extent(a);
  return k;
}

/// One memoized value: either a footprint (rank >= 0) or an ownership map
/// (rank == -1); the two key spaces are disjoint, so one table holds both.
struct FpEntry {
  FpKey key;
  SegmentsPtr segs;
  OwnershipPtr owns;
  std::size_t bytes = 0;
  std::list<FpEntry*>::iterator lru_it;
};

struct FpShard {
  std::mutex mu;
  std::unordered_map<FpKey, std::shared_ptr<FpEntry>, FpKeyHash> map;
  std::list<FpEntry*> lru;  // front = most recently used
  std::size_t bytes = 0;
};

struct FpCache {
  FootprintCacheConfig cfg{};  // cfg.shards always a power of two
  std::vector<std::unique_ptr<FpShard>> shards;
  std::atomic<std::size_t> fp_hits{0};
  std::atomic<std::size_t> fp_misses{0};
  std::atomic<std::size_t> own_hits{0};
  std::atomic<std::size_t> own_misses{0};
  std::atomic<std::size_t> races{0};
  std::atomic<std::size_t> evictions{0};

  FpCache() { reshard(FootprintCacheConfig{}); }

  void reshard(const FootprintCacheConfig& c) {
    std::size_t n = 1;
    while (n < c.shards) n <<= 1;
    std::vector<std::shared_ptr<FpEntry>> survivors;
    for (auto& s : shards)
      for (auto it = s->lru.rbegin(); it != s->lru.rend(); ++it)
        survivors.push_back(s->map.at((*it)->key));
    cfg = c;
    cfg.shards = n;
    shards.clear();
    for (std::size_t i = 0; i < n; ++i)
      shards.push_back(std::make_unique<FpShard>());
    for (auto& e : survivors) {
      FpShard& sh = shard_for(e->key);
      sh.lru.push_front(e.get());
      e->lru_it = sh.lru.begin();
      sh.bytes += e->bytes;
      const FpKey key = e->key;
      sh.map.emplace(key, std::move(e));
      evict_over_budget(sh);
    }
  }

  FpShard& shard_for(const FpKey& k) {
    return *shards[FpKeyHash{}(k) & (cfg.shards - 1)];
  }

  // Caller holds sh.mu. Evicted entries leave the table only; live
  // SegmentsPtr/OwnershipPtr handles keep their vectors alive.
  void evict_over_budget(FpShard& sh) {
    const std::size_t cap_entries =
        cfg.max_entries
            ? std::max<std::size_t>(1, cfg.max_entries / cfg.shards)
            : 0;
    const std::size_t cap_bytes =
        cfg.max_bytes ? std::max<std::size_t>(1, cfg.max_bytes / cfg.shards)
                      : 0;
    static trace::Counter& evicted =
        trace::counter("sched.footprint.evicted");
    while (!sh.lru.empty() &&
           ((cap_entries && sh.lru.size() > cap_entries) ||
            (cap_bytes && sh.bytes > cap_bytes))) {
      FpEntry* victim = sh.lru.back();
      sh.bytes -= victim->bytes;
      sh.lru.pop_back();
      sh.map.erase(victim->key);
      evictions.fetch_add(1);
      evicted.add(1);
    }
  }
};

FpCache& fp_cache() {
  static FpCache c;
  return c;
}

/// The shared lookup skeleton: probe (hit → touch LRU), compute outside the
/// lock, insert first-wins. Counting is exact under threads: a hit counts
/// at probe time; a miss counts only for the thread whose insert won (it
/// performed the build everyone uses); a losing racer counts a race — its
/// duplicate build is discarded, so billing it as a miss would overstate
/// cold lookups, and billing a hit would overstate cache effectiveness.
template <typename Ptr, Ptr FpEntry::* Member, typename Build>
Ptr fp_lookup(const FpKey& key, trace::Counter& hit_count,
              trace::Counter& miss_count,
              std::atomic<std::size_t>& hit_tally,
              std::atomic<std::size_t>& miss_tally, Build&& build) {
  auto& c = fp_cache();
  FpShard& sh = c.shard_for(key);
  {
    std::lock_guard<std::mutex> lock(sh.mu);
    auto it = sh.map.find(key);
    if (it != sh.map.end()) {
      hit_tally.fetch_add(1);
      hit_count.add(1);
      sh.lru.splice(sh.lru.begin(), sh.lru, it->second->lru_it);
      return (*it->second).*Member;
    }
  }
  // Compute outside the lock so concurrent ranks don't serialize; a racing
  // duplicate build is harmless (first insert wins).
  Ptr built = build();
  static trace::Counter& race_count = trace::counter("sched.footprint.races");
  std::lock_guard<std::mutex> lock(sh.mu);
  auto it = sh.map.find(key);
  if (it != sh.map.end()) {
    c.races.fetch_add(1);
    race_count.add(1);
    return (*it->second).*Member;
  }
  miss_tally.fetch_add(1);
  miss_count.add(1);
  auto e = std::make_shared<FpEntry>();
  e->key = key;
  (*e).*Member = built;
  e->bytes = sizeof(FpEntry) +
             built->capacity() * sizeof(typename std::remove_cvref_t<
                                        decltype(*built)>::value_type);
  sh.lru.push_front(e.get());
  e->lru_it = sh.lru.begin();
  sh.bytes += e->bytes;
  sh.map.emplace(key, std::move(e));
  c.evict_over_budget(sh);
  return built;
}

/// Internal footprint lookup for ownership_map's build path: same cache,
/// but not billed to the footprint hit/miss tallies — these probes are a
/// build detail of the ownership map, not application footprint lookups.
SegmentsPtr footprint_cached_unbilled(const dad::Descriptor& desc, int rank,
                                      const Linearization& lin) {
  static std::atomic<std::size_t> sink{0};
  static trace::Counter& null_count =
      trace::counter("sched.footprint.internal_lookups");
  return fp_lookup<SegmentsPtr, &FpEntry::segs>(
      make_key(desc, rank, lin), null_count, null_count, sink, sink, [&] {
        return std::make_shared<const std::vector<Segment>>(
            footprint(desc, rank, lin));
      });
}

}  // namespace

SegmentsPtr footprint_cached(const dad::Descriptor& desc, int rank,
                             const Linearization& lin) {
  static trace::Counter& hits = trace::counter("sched.footprint.hits");
  static trace::Counter& misses = trace::counter("sched.footprint.misses");
  auto& c = fp_cache();
  return fp_lookup<SegmentsPtr, &FpEntry::segs>(
      make_key(desc, rank, lin), hits, misses, c.fp_hits, c.fp_misses, [&] {
        return std::make_shared<const std::vector<Segment>>(
            footprint(desc, rank, lin));
      });
}

std::vector<OwnedSegment> ownership_map(const dad::Descriptor& desc,
                                        const Linearization& lin) {
  std::vector<OwnedSegment> out;
  for (int r = 0; r < desc.nranks(); ++r) {
    const auto fp = footprint_cached_unbilled(desc, r, lin);
    for (const auto& s : *fp) out.push_back({s, r});
  }
  std::sort(out.begin(), out.end(),
            [](const OwnedSegment& a, const OwnedSegment& b) {
              return a.seg.lo < b.seg.lo;
            });
  return out;
}

OwnershipPtr ownership_map_cached(const dad::Descriptor& desc,
                                  const Linearization& lin) {
  static trace::Counter& hits = trace::counter("sched.ownership.hits");
  static trace::Counter& misses = trace::counter("sched.ownership.misses");
  auto& c = fp_cache();
  return fp_lookup<OwnershipPtr, &FpEntry::owns>(
      make_key(desc, /*rank=*/-1, lin), hits, misses, c.own_hits,
      c.own_misses, [&] {
        return std::make_shared<const std::vector<OwnedSegment>>(
            ownership_map(desc, lin));
      });
}

void footprint_cache_configure(const FootprintCacheConfig& cfg) {
  // Redistributes existing entries. Not safe against concurrent lookups:
  // configure at startup or between phases (same contract as
  // ScheduleCache::configure).
  fp_cache().reshard(cfg);
}

FootprintCacheStats footprint_cache_stats() {
  auto& c = fp_cache();
  FootprintCacheStats s;
  s.hits = c.fp_hits.load();
  s.misses = c.fp_misses.load();
  s.ownership_hits = c.own_hits.load();
  s.ownership_misses = c.own_misses.load();
  s.races = c.races.load();
  s.evictions = c.evictions.load();
  for (auto& sh : c.shards) {
    std::lock_guard<std::mutex> lock(sh->mu);
    s.entries += sh->map.size();
    s.bytes += sh->bytes;
  }
  return s;
}

void footprint_cache_clear() {
  auto& c = fp_cache();
  for (auto& sh : c.shards) {
    std::lock_guard<std::mutex> lock(sh->mu);
    sh->map.clear();
    sh->lru.clear();
    sh->bytes = 0;
  }
  c.fp_hits.store(0);
  c.fp_misses.store(0);
  c.own_hits.store(0);
  c.own_misses.store(0);
  c.races.store(0);
  c.evictions.store(0);
}

}  // namespace mxn::linear
