#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "prmi/value.hpp"
#include "sidl/types.hpp"

namespace mxn::scirun2 {

/// Marker wrapping a parallel (distributed) array argument for typed stubs:
/// the SIDL `parallel array<...>` parameter of the SCIRun2 extension. Build
/// one with core::make_field over a DistArray.
struct Distributed {
  const core::FieldRegistration* binding = nullptr;
};

/// Mapping between native C++ types and the dynamic PRMI value model plus
/// the SIDL type they satisfy — the knowledge an IDL compiler bakes into
/// generated stubs.
template <class T>
struct ValueTraits;

#define MXN_SCIRUN2_SCALAR_TRAIT(cpp, kind_)                                \
  template <>                                                               \
  struct ValueTraits<cpp> {                                                 \
    static prmi::Value to_value(const cpp& v) { return v; }                 \
    static cpp from_value(const prmi::Value& v) { return std::get<cpp>(v); } \
    static bool matches(const sidl::TypeRef& t) {                           \
      return !t.parallel && t.kind == sidl::TypeKind::kind_;                \
    }                                                                       \
  }

MXN_SCIRUN2_SCALAR_TRAIT(bool, Bool);
MXN_SCIRUN2_SCALAR_TRAIT(std::int32_t, Int);
MXN_SCIRUN2_SCALAR_TRAIT(std::int64_t, Long);
MXN_SCIRUN2_SCALAR_TRAIT(float, Float);
MXN_SCIRUN2_SCALAR_TRAIT(double, Double);
MXN_SCIRUN2_SCALAR_TRAIT(std::string, String);

#undef MXN_SCIRUN2_SCALAR_TRAIT

template <>
struct ValueTraits<void> {
  static bool matches(const sidl::TypeRef& t) {
    return t.kind == sidl::TypeKind::Void;
  }
};

#define MXN_SCIRUN2_ARRAY_TRAIT(elem_cpp, elem_kind)                         \
  template <>                                                                \
  struct ValueTraits<std::vector<elem_cpp>> {                                \
    static prmi::Value to_value(std::vector<elem_cpp> v) {                   \
      return prmi::Value{std::in_place_type<std::vector<elem_cpp>>,          \
                         std::move(v)};                                      \
    }                                                                        \
    static std::vector<elem_cpp> from_value(const prmi::Value& v) {          \
      return std::get<std::vector<elem_cpp>>(v);                             \
    }                                                                        \
    static bool matches(const sidl::TypeRef& t) {                            \
      return !t.parallel && t.kind == sidl::TypeKind::Array &&               \
             t.elem == sidl::TypeKind::elem_kind;                            \
    }                                                                        \
  }

MXN_SCIRUN2_ARRAY_TRAIT(std::int32_t, Int);
MXN_SCIRUN2_ARRAY_TRAIT(std::int64_t, Long);
MXN_SCIRUN2_ARRAY_TRAIT(float, Float);
MXN_SCIRUN2_ARRAY_TRAIT(double, Double);

#undef MXN_SCIRUN2_ARRAY_TRAIT

template <>
struct ValueTraits<Distributed> {
  static prmi::Value to_value(const Distributed& d) {
    return prmi::ParallelRef{d.binding};
  }
  static bool matches(const sidl::TypeRef& t) { return t.parallel; }
};

}  // namespace mxn::scirun2
