#pragma once

#include <memory>
#include <string>

#include "prmi/distributed_framework.hpp"
#include "scirun2/traits.hpp"
#include "sidl/parser.hpp"

namespace mxn::scirun2 {

/// Wrappers marking out / inout parameters in typed stub signatures. The
/// pointee receives (Out) or carries-and-receives (InOut) the value.
template <class T>
struct Out {
  T* value = nullptr;
};
template <class T>
struct InOut {
  T* value = nullptr;
};

namespace detail {

template <class A>
struct ArgTraits {
  using value_type = std::decay_t<A>;
  static constexpr sidl::Mode mode = sidl::Mode::In;
};
template <class T>
struct ArgTraits<Out<T>> {
  using value_type = T;
  static constexpr sidl::Mode mode = sidl::Mode::Out;
};
template <class T>
struct ArgTraits<InOut<T>> {
  using value_type = T;
  static constexpr sidl::Mode mode = sidl::Mode::InOut;
};

template <class A>
prmi::Value arg_to_value(const A& a) {
  using Tr = ArgTraits<std::decay_t<A>>;
  if constexpr (Tr::mode == sidl::Mode::Out) {
    return prmi::Value{};  // slot; filled by the callee
  } else if constexpr (Tr::mode == sidl::Mode::InOut) {
    return ValueTraits<typename Tr::value_type>::to_value(*a.value);
  } else {
    return ValueTraits<typename Tr::value_type>::to_value(a);
  }
}

template <class A>
void arg_from_result(const prmi::Value& v, A& a) {
  using Tr = ArgTraits<std::decay_t<A>>;
  if constexpr (Tr::mode != sidl::Mode::In) {
    *a.value = ValueTraits<typename Tr::value_type>::from_value(v);
  } else {
    (void)v;
    (void)a;
  }
}

}  // namespace detail

/// A typed remote-method stub — the object an IDL compiler would generate
/// for one SIDL method (paper §4.2: "for each of these invocation types,
/// the SIDL compiler generates the glue code that provides the appropriate
/// behavior"). Here the "generated" code is a template instantiation
/// validated against the parsed SIDL signature at construction time, which
/// exercises exactly the same marshalling path.
///
/// Typed stubs cover in-parameters, the return value, and out/inout
/// parameters wrapped in scirun2::Out / scirun2::InOut.
template <class Sig>
class Stub;

template <class R, class... As>
class Stub<R(As...)> {
 public:
  Stub(std::shared_ptr<prmi::RemotePort> port, std::string method)
      : port_(std::move(port)), method_(std::move(method)) {
    const auto& m = port_->interface_desc().method(method_);
    if (!ValueTraits<R>::matches(m.ret))
      throw rt::UsageError("stub return type does not match SIDL method '" +
                           method_ + "' (" + m.ret.to_string() + ")");
    if (sizeof...(As) != m.params.size())
      throw rt::UsageError("stub arity does not match SIDL method '" +
                           method_ + "'");
    std::size_t i = 0;
    bool ok = true;
    ((ok = ok &&
           m.params[i].mode == detail::ArgTraits<std::decay_t<As>>::mode &&
           ValueTraits<typename detail::ArgTraits<
               std::decay_t<As>>::value_type>::matches(m.params[i].type),
      ++i),
     ...);
    if (!ok)
      throw rt::UsageError(
          "stub parameter types/modes do not match SIDL method '" + method_ +
          "' (wrap out/inout parameters in scirun2::Out / scirun2::InOut)");
    kind_ = m.kind;
    oneway_ = m.oneway;
  }

  R operator()(As... as) const {
    std::vector<prmi::Value> args;
    args.reserve(sizeof...(As));
    (args.push_back(detail::arg_to_value(as)), ...);
    if (kind_ == sidl::InvocationKind::Independent) {
      auto r = port_->call_independent(method_, std::move(args));
      write_outs(r, as...);
      if constexpr (!std::is_void_v<R>)
        return ValueTraits<R>::from_value(r.ret);
      else
        return;
    }
    if (oneway_) {
      port_->call_oneway(method_, std::move(args));
      if constexpr (!std::is_void_v<R>) {
        throw rt::UsageError("oneway methods return void");
      } else {
        return;
      }
    }
    auto r = port_->call(method_, std::move(args));
    write_outs(r, as...);
    if constexpr (!std::is_void_v<R>)
      return ValueTraits<R>::from_value(r.ret);
  }

 private:
  static void write_outs(const prmi::RemotePort::Result& r, As&... as) {
    std::size_t i = 0;
    ((detail::arg_from_result(r.args[i], as), ++i), ...);
  }

  std::shared_ptr<prmi::RemotePort> port_;
  std::string method_;
  sidl::InvocationKind kind_ = sidl::InvocationKind::Collective;
  bool oneway_ = false;
};

/// The caller-side artifact of "compiling" a SIDL interface for SCIRun2:
/// hands out validated typed stubs bound to a remote port, and exposes the
/// run-time sub-setting mechanism of §4.2.
class CompiledInterface {
 public:
  CompiledInterface(std::shared_ptr<prmi::RemotePort> port)
      : port_(std::move(port)) {}

  template <class Sig>
  [[nodiscard]] Stub<Sig> stub(const std::string& method) const {
    return Stub<Sig>(port_, method);
  }

  /// Restrict participation to the given caller-cohort ranks; returns an
  /// empty optional on non-participant ranks. Collective over the cohort.
  [[nodiscard]] std::optional<CompiledInterface> subset(
      const std::vector<int>& cohort_ranks) const {
    auto sub = port_->subset(cohort_ranks);
    if (!sub) return std::nullopt;
    return CompiledInterface(std::move(sub));
  }

  [[nodiscard]] const std::shared_ptr<prmi::RemotePort>& port() const {
    return port_;
  }

 private:
  std::shared_ptr<prmi::RemotePort> port_;
};

}  // namespace mxn::scirun2
