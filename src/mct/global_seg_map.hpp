#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dad/descriptor.hpp"
#include "linear/linearization.hpp"
#include "rt/serialize.hpp"

namespace mxn::mct {

using Index = std::int64_t;

/// MCT's domain decomposition descriptor (paper §4.5): the physical grid's
/// points carry a global 1-D numbering, and a GlobalSegMap assigns segments
/// of that numbering to the processes of a component. It is the mesh-level
/// counterpart of a linearization footprint — "distributed array
/// descriptors are essentially implemented at the mesh level".
///
/// A rank's local storage order is its segments in the order given,
/// concatenated (MCT convention). Segments of one rank must be disjoint;
/// together all segments must partition [0, gsize).
class GlobalSegMap {
 public:
  struct Seg {
    Index start = 0;
    Index length = 0;
    int owner = 0;
    friend bool operator==(const Seg&, const Seg&) = default;
  };

  GlobalSegMap(Index gsize, std::vector<Seg> segs);

  /// Contiguous block decomposition over `nprocs` ranks.
  static GlobalSegMap block(Index gsize, int nprocs);

  /// Round-robin decomposition with the given chunk size.
  static GlobalSegMap cyclic(Index gsize, int nprocs, Index chunk = 1);

  /// Bridge from the CCA descriptor world: number the grid points of a DAD
  /// template by `lin` and derive each rank's segments from its footprint.
  /// An AttrVect on the resulting GSMap stores points in ascending linear
  /// order, so MCT Routers can couple directly against components that
  /// describe their data with Distributed Array Descriptors.
  static GlobalSegMap from_descriptor(const dad::Descriptor& desc,
                                      const linear::Linearization& lin);

  [[nodiscard]] Index gsize() const { return gsize_; }
  [[nodiscard]] int nprocs() const { return nprocs_; }
  [[nodiscard]] const std::vector<Seg>& segs() const { return segs_; }

  /// This rank's segments, in local storage order.
  [[nodiscard]] const std::vector<Seg>& segs_of(int rank) const {
    return by_rank_.at(rank);
  }

  [[nodiscard]] Index local_size(int rank) const {
    return local_sizes_.at(rank);
  }

  [[nodiscard]] int owner(Index gidx) const;

  /// Position of `gidx` within `rank`'s concatenated segments.
  [[nodiscard]] Index local_index(int rank, Index gidx) const;

  /// Inverse of local_index.
  [[nodiscard]] Index global_index(int rank, Index lidx) const;

  /// The rank's owned global indices as normalized linear segments — the
  /// bridge to the generic schedule machinery.
  [[nodiscard]] std::vector<linear::Segment> footprint(int rank) const;

  /// The whole map as ascending (segment, owner) runs exactly covering
  /// [0, gsize), with adjacent same-owner runs coalesced — so the runs of
  /// one owner equal footprint(owner). A single sweep of a local footprint
  /// against this list replaces per-peer footprint + intersect. Precomputed
  /// at construction.
  [[nodiscard]] const std::vector<linear::OwnedSegment>& ownership_runs()
      const {
    return runs_;
  }

  void pack(rt::PackBuffer& b) const;
  static GlobalSegMap unpack(rt::UnpackBuffer& u);

  friend bool operator==(const GlobalSegMap& a, const GlobalSegMap& b) {
    return a.gsize_ == b.gsize_ && a.segs_ == b.segs_;
  }

 private:
  Index gsize_ = 0;
  int nprocs_ = 0;
  std::vector<Seg> segs_;
  std::vector<std::vector<Seg>> by_rank_;
  std::vector<Index> local_sizes_;
  // Sorted (start, seg index) for owner lookups.
  std::vector<std::pair<Index, std::size_t>> sorted_;
  // Ascending coalesced ownership runs (see ownership_runs()).
  std::vector<linear::OwnedSegment> runs_;
};

}  // namespace mxn::mct
