#include "mct/global_seg_map.hpp"

#include <algorithm>

#include "rt/error.hpp"

namespace mxn::mct {

using rt::UsageError;

GlobalSegMap::GlobalSegMap(Index gsize, std::vector<Seg> segs)
    : gsize_(gsize), segs_(std::move(segs)) {
  if (gsize <= 0) throw UsageError("GlobalSegMap gsize must be positive");
  Index covered = 0;
  int maxo = -1;
  for (const auto& s : segs_) {
    if (s.length <= 0) throw UsageError("segment length must be positive");
    if (s.start < 0 || s.start + s.length > gsize_)
      throw UsageError("segment out of range");
    if (s.owner < 0) throw UsageError("segment owner must be >= 0");
    covered += s.length;
    maxo = std::max(maxo, s.owner);
  }
  if (covered != gsize_)
    throw UsageError("segments must cover exactly gsize points (" +
                     std::to_string(covered) + " of " +
                     std::to_string(gsize_) + ")");
  // Disjointness: sort by start and check adjacency; combined with the
  // coverage count this proves an exact partition.
  sorted_.reserve(segs_.size());
  for (std::size_t i = 0; i < segs_.size(); ++i)
    sorted_.emplace_back(segs_[i].start, i);
  std::sort(sorted_.begin(), sorted_.end());
  Index expect = 0;
  for (const auto& [start, i] : sorted_) {
    if (start != expect) throw UsageError("segments overlap or leave gaps");
    expect = start + segs_[i].length;
  }

  nprocs_ = maxo + 1;
  by_rank_.assign(nprocs_, {});
  local_sizes_.assign(nprocs_, 0);
  for (const auto& s : segs_) {
    by_rank_[s.owner].push_back(s);
    local_sizes_[s.owner] += s.length;
  }

  // Ownership runs: adjacent same-owner segments merge, matching the
  // normalization footprint() applies per rank.
  runs_.reserve(sorted_.size());
  for (const auto& [start, i] : sorted_) {
    const auto& s = segs_[i];
    if (!runs_.empty() && runs_.back().owner == s.owner &&
        runs_.back().seg.hi == s.start)
      runs_.back().seg.hi = s.start + s.length;
    else
      runs_.push_back({{s.start, s.start + s.length}, s.owner});
  }
}

GlobalSegMap GlobalSegMap::block(Index gsize, int nprocs) {
  if (nprocs <= 0) throw UsageError("nprocs must be positive");
  std::vector<Seg> segs;
  const Index chunk = (gsize + nprocs - 1) / nprocs;
  Index start = 0;
  for (int p = 0; p < nprocs && start < gsize; ++p) {
    const Index len = std::min(chunk, gsize - start);
    segs.push_back({start, len, p});
    start += len;
  }
  // Ensure every rank owns at least zero points but nprocs is respected by
  // padding trailing empty ranks is not possible (segments must be
  // non-empty); callers should keep nprocs <= gsize.
  return GlobalSegMap(gsize, std::move(segs));
}

GlobalSegMap GlobalSegMap::cyclic(Index gsize, int nprocs, Index chunk) {
  if (nprocs <= 0 || chunk <= 0) throw UsageError("bad cyclic parameters");
  std::vector<Seg> segs;
  Index start = 0;
  int p = 0;
  while (start < gsize) {
    const Index len = std::min(chunk, gsize - start);
    segs.push_back({start, len, p});
    start += len;
    p = (p + 1) % nprocs;
  }
  return GlobalSegMap(gsize, std::move(segs));
}

GlobalSegMap GlobalSegMap::from_descriptor(const dad::Descriptor& desc,
                                           const linear::Linearization& lin) {
  // The cached ownership map already holds every rank's normalized
  // footprint; per-rank segment order (ascending) is unchanged.
  std::vector<Seg> segs;
  for (const auto& os : linear::ownership_map(desc, lin))
    segs.push_back({os.seg.lo, os.seg.hi - os.seg.lo, os.owner});
  return GlobalSegMap(lin.total(), std::move(segs));
}

int GlobalSegMap::owner(Index gidx) const {
  if (gidx < 0 || gidx >= gsize_) throw UsageError("global index out of range");
  auto it = std::upper_bound(
      sorted_.begin(), sorted_.end(), std::make_pair(gidx, SIZE_MAX));
  const auto& [start, i] = *std::prev(it);
  (void)start;
  return segs_[i].owner;
}

Index GlobalSegMap::local_index(int rank, Index gidx) const {
  Index off = 0;
  for (const auto& s : segs_of(rank)) {
    if (gidx >= s.start && gidx < s.start + s.length)
      return off + (gidx - s.start);
    off += s.length;
  }
  throw UsageError("global index not owned by rank");
}

Index GlobalSegMap::global_index(int rank, Index lidx) const {
  Index off = 0;
  for (const auto& s : segs_of(rank)) {
    if (lidx < off + s.length) return s.start + (lidx - off);
    off += s.length;
  }
  throw UsageError("local index out of range");
}

std::vector<linear::Segment> GlobalSegMap::footprint(int rank) const {
  std::vector<linear::Segment> out;
  out.reserve(segs_of(rank).size());
  for (const auto& s : segs_of(rank))
    out.push_back({s.start, s.start + s.length});
  return linear::normalize(std::move(out));
}

void GlobalSegMap::pack(rt::PackBuffer& b) const {
  b.pack(gsize_);
  b.pack(static_cast<std::uint64_t>(segs_.size()));
  for (const auto& s : segs_) {
    b.pack(s.start);
    b.pack(s.length);
    b.pack(s.owner);
  }
}

GlobalSegMap GlobalSegMap::unpack(rt::UnpackBuffer& u) {
  const auto gsize = u.unpack<Index>();
  const auto n = u.unpack<std::uint64_t>();
  std::vector<Seg> segs(n);
  for (auto& s : segs) {
    s.start = u.unpack<Index>();
    s.length = u.unpack<Index>();
    s.owner = u.unpack<int>();
  }
  return GlobalSegMap(gsize, std::move(segs));
}

}  // namespace mxn::mct
