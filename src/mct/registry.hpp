#pragma once

#include <map>
#include <string>
#include <vector>

#include "rt/error.hpp"

namespace mxn::mct {

/// MCT's lightweight model registry (paper §4.5): "defines the MPI
/// processes on which a module resides, and a process ID look-up table that
/// obviates the need for inter-communicators between concurrently executing
/// modules." Every process registers the full component map once; Routers
/// then address peers by world rank directly.
class Registry {
 public:
  void add(const std::string& name, std::vector<int> world_ranks) {
    if (world_ranks.empty())
      throw rt::UsageError("component needs at least one process");
    if (!comps_.emplace(name, std::move(world_ranks)).second)
      throw rt::UsageError("component '" + name + "' already registered");
  }

  [[nodiscard]] const std::vector<int>& ranks_of(
      const std::string& name) const {
    auto it = comps_.find(name);
    if (it == comps_.end())
      throw rt::UsageError("no component named '" + name + "'");
    return it->second;
  }

  /// World rank of a component's cohort rank — the look-up table.
  [[nodiscard]] int world_rank(const std::string& name, int cohort_rank) const {
    const auto& ranks = ranks_of(name);
    if (cohort_rank < 0 || cohort_rank >= static_cast<int>(ranks.size()))
      throw rt::UsageError("cohort rank out of range");
    return ranks[cohort_rank];
  }

  [[nodiscard]] bool member(const std::string& name, int world_rank) const {
    const auto& ranks = ranks_of(name);
    for (int r : ranks)
      if (r == world_rank) return true;
    return false;
  }

  /// Cohort rank of a world rank within a component, or -1.
  [[nodiscard]] int cohort_rank(const std::string& name,
                                int world_rank) const {
    const auto& ranks = ranks_of(name);
    for (std::size_t i = 0; i < ranks.size(); ++i)
      if (ranks[i] == world_rank) return static_cast<int>(i);
    return -1;
  }

 private:
  std::map<std::string, std::vector<int>> comps_;
};

}  // namespace mxn::mct
