#pragma once

#include "mct/attr_vect.hpp"
#include "rt/communicator.hpp"

namespace mxn::mct {

/// MCT's physical-grid object (paper §4.5): per-point coordinate and weight
/// fields plus an integer mask (e.g. a land/ocean mask) over this rank's
/// local points. Grids of arbitrary dimension and unstructured grids are
/// covered because nothing here assumes structure — only a point list.
class GeneralGrid {
 public:
  /// `coord_names` become real fields alongside a "grid_area" weight field.
  GeneralGrid(std::vector<std::string> coord_names, Index length)
      : mask_(static_cast<std::size_t>(length), 1) {
    coord_names.push_back("grid_area");
    data_ = AttrVect(std::move(coord_names), length);
  }

  [[nodiscard]] Index length() const { return data_.length(); }
  [[nodiscard]] AttrVect& data() { return data_; }
  [[nodiscard]] const AttrVect& data() const { return data_; }

  [[nodiscard]] std::span<double> coord(const std::string& name) {
    return data_.field(name);
  }
  [[nodiscard]] std::span<double> area() { return data_.field("grid_area"); }
  [[nodiscard]] std::span<const double> area() const {
    return data_.field("grid_area");
  }

  /// Per-point mask: 0 = excluded (e.g. land under an ocean field).
  [[nodiscard]] std::vector<int>& mask() { return mask_; }
  [[nodiscard]] const std::vector<int>& mask() const { return mask_; }

 private:
  AttrVect data_;
  std::vector<int> mask_;
};

namespace detail {

/// This rank's masked, area-weighted partial integral of one field.
[[nodiscard]] inline double local_integral(const AttrVect& av, int field,
                                           const GeneralGrid& grid) {
  if (av.length() != grid.length())
    throw rt::UsageError("AttrVect and grid lengths differ");
  double local = 0;
  auto v = av.field(field);
  auto w = grid.area();
  for (Index i = 0; i < av.length(); ++i)
    if (grid.mask()[static_cast<std::size_t>(i)] != 0) local += v[i] * w[i];
  return local;
}

}  // namespace detail

/// Masked, area-weighted spatial integral of one field over the component's
/// whole grid (cohort-collective reduction). The paired use — computing the
/// integral on the source grid before interpolation and on the destination
/// grid after — is how MCT checks conservation of global flux integrals.
[[nodiscard]] inline double spatial_integral(const AttrVect& av, int field,
                                             const GeneralGrid& grid,
                                             rt::Communicator cohort) {
  const double local = detail::local_integral(av, field, grid);
  return cohort.allreduce(local, [](double a, double b) { return a + b; });
}

/// Masked, area-weighted spatial average. The integral and the total weight
/// travel in ONE 2-element vector allreduce instead of two scalar rounds —
/// the vector-reduction pattern the log-depth collectives exist for.
[[nodiscard]] inline double spatial_average(const AttrVect& av, int field,
                                            const GeneralGrid& grid,
                                            rt::Communicator cohort) {
  double local_w = 0;
  auto w = grid.area();
  for (Index i = 0; i < grid.length(); ++i)
    if (grid.mask()[static_cast<std::size_t>(i)] != 0) local_w += w[i];
  const double sums[2] = {detail::local_integral(av, field, grid), local_w};
  const auto total = cohort.allreduce(std::span<const double>(sums),
                                      [](double a, double b) { return a + b; });
  if (total[1] == 0) throw rt::UsageError("grid has zero unmasked weight");
  return total[0] / total[1];
}

}  // namespace mxn::mct
