#include "mct/router.hpp"

#include <cstring>

#include "sched/executor.hpp"

namespace mxn::mct {

using rt::UsageError;

namespace {

/// Storage provenance of a rank under a GSMap: its segments in local
/// storage order, with cumulative storage offsets (stride 1 — each segment
/// is contiguous both in linear space and locally).
std::vector<linear::ProvenancedSegment> provenance(const GlobalSegMap& gsm,
                                                   int rank) {
  std::vector<linear::ProvenancedSegment> prov;
  Index off = 0;
  for (const auto& s : gsm.segs_of(rank)) {
    linear::ProvenancedSegment ps;
    ps.seg = {s.start, s.start + s.length};
    ps.storage_offset = off;
    ps.storage_stride = 1;
    prov.push_back(ps);
    off += s.length;
  }
  std::sort(prov.begin(), prov.end(),
            [](const auto& a, const auto& b) { return a.seg.lo < b.seg.lo; });
  return prov;
}

/// Sweep `mine` against the peer map's ownership runs once, bucketing the
/// overlaps by owner — equivalent to intersecting `mine` with every peer's
/// footprint, but O(|mine| + |runs|) instead of O(peers x map size). Owners
/// >= max_peers are dropped (they were never queried before either). The
/// callback receives (peer, segments) for each non-empty bucket, ascending.
template <class Fn>
void sweep_ownership(const std::vector<linear::Segment>& mine,
                     const std::vector<linear::OwnedSegment>& runs,
                     int max_peers, Fn&& emit) {
  std::vector<std::vector<linear::Segment>> buckets(
      static_cast<std::size_t>(max_peers));
  std::size_t i = 0, j = 0;
  while (i < mine.size() && j < runs.size()) {
    const Index lo = std::max(mine[i].lo, runs[j].seg.lo);
    const Index hi = std::min(mine[i].hi, runs[j].seg.hi);
    if (lo < hi && runs[j].owner < max_peers)
      buckets[static_cast<std::size_t>(runs[j].owner)].push_back({lo, hi});
    if (mine[i].hi < runs[j].seg.hi)
      ++i;
    else
      ++j;
  }
  for (int p = 0; p < max_peers; ++p) {
    auto& segs = buckets[static_cast<std::size_t>(p)];
    if (!segs.empty()) emit(p, std::move(segs));
  }
}

/// Pack one field's elements straight into the payload, in pack_span
/// framing (u64 count + raw doubles — the wire format is unchanged), by
/// replaying a compiled copy plan (the pattern never changes between
/// transfers, so the segment walk and run coalescing were paid once at
/// Router construction). Staging is only needed when the payload cursor
/// lands misaligned for double.
void pack_field(rt::PackBuffer& b, const rt::kernels::RunPlan& plan,
                Index elements, const double* field) {
  b.pack(static_cast<std::uint64_t>(elements));
  const std::size_t nbytes =
      static_cast<std::size_t>(elements) * sizeof(double);
  std::byte* out = b.append_uninitialized(nbytes);
  if (reinterpret_cast<std::uintptr_t>(out) % alignof(double) == 0) {
    plan.gather(field, out, sizeof(double));
    rt::note_bytes_copied(nbytes);
  } else {
    std::vector<double> staged(static_cast<std::size_t>(elements));
    plan.gather(field, staged.data(), sizeof(double));
    std::memcpy(out, staged.data(), nbytes);
    rt::note_bytes_copied(2 * nbytes);
  }
}

/// Mirror of pack_field: scatter one field's span out of the payload into
/// `field` through the compiled plan, aliasing the payload bytes in place
/// when aligned instead of copying them into a staging vector.
void unpack_field(rt::UnpackBuffer& u, const rt::kernels::RunPlan& plan,
                  Index elements, double* field, const char* mismatch_what) {
  const auto n = u.unpack<std::uint64_t>();
  if (static_cast<Index>(n) != elements) throw UsageError(mismatch_what);
  auto raw = u.unpack_raw(n * sizeof(double));
  std::vector<double> fallback;
  const double* data = sched::detail::aligned_or_copy<double>(raw, fallback);
  plan.scatter(field, data, sizeof(double));
}

/// Swap GSMaps leader-to-leader and broadcast the peer's within the cohort.
GlobalSegMap exchange_gsm(RouterConfig& cfg, const GlobalSegMap& mine,
                          int tag) {
  rt::Buffer bytes;
  if (cfg.cohort.rank() == 0) {
    rt::PackBuffer b;
    mine.pack(b);
    cfg.channel.send(cfg.peer_ranks.at(0), tag, std::move(b).take());
    bytes = cfg.channel.recv(cfg.peer_ranks.at(0), tag).payload;
  }
  bytes = cfg.cohort.bcast(std::move(bytes), 0);
  rt::UnpackBuffer u(bytes);
  return GlobalSegMap::unpack(u);
}

}  // namespace

Router Router::build(RouterConfig cfg, const GlobalSegMap& mine,
                     bool is_source) {
  if (mine.gsize() <= 0) throw UsageError("empty GSMap");
  Router r;
  const int me = cfg.cohort.rank();
  const GlobalSegMap peer_gsm = exchange_gsm(cfg, mine, cfg.tag);
  if (peer_gsm.gsize() != mine.gsize())
    throw UsageError("Router GSMaps must number the same grid (" +
                     std::to_string(mine.gsize()) + " vs " +
                     std::to_string(peer_gsm.gsize()) + " points)");

  const auto my_foot = mine.footprint(me);
  sweep_ownership(my_foot, peer_gsm.ownership_runs(),
                  static_cast<int>(cfg.peer_ranks.size()),
                  [&](int p, std::vector<linear::Segment> segs) {
                    Peer peer;
                    peer.peer = p;
                    peer.elements = linear::total_length(segs);
                    peer.segs = std::move(segs);
                    r.peers_.push_back(std::move(peer));
                  });
  r.prov_ = provenance(mine, me);
  for (auto& peer : r.peers_)
    peer.plan = sched::compile_run_plan(r.prov_, peer.segs);
  r.local_size_ = mine.local_size(me);
  r.is_source_ = is_source;
  r.cfg_ = std::move(cfg);
  return r;
}

Router Router::source(RouterConfig cfg, const GlobalSegMap& mine) {
  return build(std::move(cfg), mine, /*is_source=*/true);
}

Router Router::destination(RouterConfig cfg, const GlobalSegMap& mine) {
  return build(std::move(cfg), mine, /*is_source=*/false);
}

void Router::send(const AttrVect& av) {
  if (!is_source_) throw UsageError("send() on a destination Router");
  if (av.length() != local_size_)
    throw UsageError("AttrVect length does not match the GSMap");
  const int nf = av.nfields();
  for (const auto& peer : peers_) {
    rt::PackBuffer b;
    b.pack(nf);
    b.pack(peer.elements);
    for (int f = 0; f < nf; ++f)
      pack_field(b, peer.plan, peer.elements, av.field(f).data());
    cfg_.channel.send(cfg_.peer_ranks.at(peer.peer), cfg_.tag + 1,
                      std::move(b).take());
  }
}

void Router::recv(AttrVect& av) {
  if (is_source_) throw UsageError("recv() on a source Router");
  if (av.length() != local_size_)
    throw UsageError("AttrVect length does not match the GSMap");
  for (const auto& peer : peers_) {
    auto msg = cfg_.channel.recv(cfg_.peer_ranks.at(peer.peer), cfg_.tag + 1);
    rt::UnpackBuffer u(msg.payload);
    const int nf = u.unpack<int>();
    const auto elements = u.unpack<Index>();
    if (nf != av.nfields() || elements != peer.elements)
      throw UsageError("Router message does not match the schedule");
    for (int f = 0; f < nf; ++f)
      unpack_field(u, peer.plan, peer.elements, av.field(f).data(),
                   "Router message does not match the schedule");
  }
}

// ===========================================================================
// Rearranger
// ===========================================================================

Rearranger::Rearranger(rt::Communicator cohort, const GlobalSegMap& src,
                       const GlobalSegMap& dst, int tag)
    : cohort_(std::move(cohort)), tag_(tag) {
  if (src.gsize() != dst.gsize())
    throw UsageError("Rearranger GSMaps must number the same grid");
  const int me = cohort_.rank();
  const auto src_foot = src.footprint(me);
  const auto dst_foot = dst.footprint(me);
  sweep_ownership(src_foot, dst.ownership_runs(), cohort_.size(),
                  [&](int p, std::vector<linear::Segment> segs) {
                    Peer peer;
                    peer.peer = p;
                    peer.elements = linear::total_length(segs);
                    peer.segs = std::move(segs);
                    sends_.push_back(std::move(peer));
                  });
  sweep_ownership(dst_foot, src.ownership_runs(), cohort_.size(),
                  [&](int p, std::vector<linear::Segment> segs) {
                    Peer peer;
                    peer.peer = p;
                    peer.elements = linear::total_length(segs);
                    peer.segs = std::move(segs);
                    recvs_.push_back(std::move(peer));
                  });
  src_prov_ = provenance(src, me);
  dst_prov_ = provenance(dst, me);
  for (auto& peer : sends_)
    peer.plan = sched::compile_run_plan(src_prov_, peer.segs);
  for (auto& peer : recvs_)
    peer.plan = sched::compile_run_plan(dst_prov_, peer.segs);
  src_size_ = src.local_size(me);
  dst_size_ = dst.local_size(me);
}

void Rearranger::rearrange(const AttrVect& src_av, AttrVect& dst_av) {
  if (src_av.length() != src_size_ || dst_av.length() != dst_size_)
    throw UsageError("AttrVect lengths do not match the Rearranger GSMaps");
  if (!src_av.same_schema(dst_av))
    throw UsageError("Rearranger AttrVects must share a field schema");
  const int nf = src_av.nfields();
  for (const auto& peer : sends_) {
    rt::PackBuffer b;
    for (int f = 0; f < nf; ++f)
      pack_field(b, peer.plan, peer.elements, src_av.field(f).data());
    cohort_.send(peer.peer, tag_, std::move(b).take());
  }
  for (const auto& peer : recvs_) {
    auto msg = cohort_.recv(peer.peer, tag_);
    rt::UnpackBuffer u(msg.payload);
    for (int f = 0; f < nf; ++f)
      unpack_field(u, peer.plan, peer.elements, dst_av.field(f).data(),
                   "Rearranger message does not match the schedule");
  }
}

}  // namespace mxn::mct
