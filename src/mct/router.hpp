#pragma once

#include "mct/attr_vect.hpp"
#include "mct/global_seg_map.hpp"
#include "rt/communicator.hpp"
#include "rt/kernels.hpp"

namespace mxn::mct {

/// Binding of a Router to processes: a channel spanning both components and
/// the channel ranks of each side.
struct RouterConfig {
  rt::Communicator channel;
  rt::Communicator cohort;     // my component
  std::vector<int> my_ranks;   // channel ranks, index == cohort rank
  std::vector<int> peer_ranks;
  int tag = 0;  // distinct tag per Router pair sharing a channel
};

/// MCT's intermodule communications scheduler (paper §4.5): moves AttrVect
/// field data between two components decomposed by different GlobalSegMaps.
/// Both sides construct their Router collectively (the GSMaps are swapped
/// leader-to-leader and broadcast); the transfer schedule — which linear
/// segments go to which peer — is computed once and reused by every
/// send/recv.
class Router {
 public:
  /// Source-side Router: this component exports.
  static Router source(RouterConfig cfg, const GlobalSegMap& mine);

  /// Destination-side Router: this component imports.
  static Router destination(RouterConfig cfg, const GlobalSegMap& mine);

  /// Export all fields of `av` (length must equal the local GSMap size).
  /// Point-to-point, no barriers; safe to call before the peer posts recv.
  void send(const AttrVect& av);

  /// Import into `av`; blocks until all expected pieces arrive.
  void recv(AttrVect& av);

  [[nodiscard]] Index local_size() const { return local_size_; }
  [[nodiscard]] std::size_t peer_count() const { return peers_.size(); }

 private:
  Router() = default;
  static Router build(RouterConfig cfg, const GlobalSegMap& mine,
                      bool is_source);

  struct Peer {
    int peer = 0;  // peer cohort rank
    std::vector<linear::Segment> segs;
    Index elements = 0;
    rt::kernels::RunPlan plan;  // compiled once; replayed per transfer
  };

  RouterConfig cfg_;
  bool is_source_ = true;
  Index local_size_ = 0;
  std::vector<linear::ProvenancedSegment> prov_;  // my storage provenance
  std::vector<Peer> peers_;
};

/// MCT's intramodule parallel data redistribution: moves an AttrVect from
/// one decomposition to another within the same component (both GSMaps over
/// the same cohort). Implemented as a self-coupled Router schedule with a
/// local fast path for data that does not change owner.
class Rearranger {
 public:
  Rearranger(rt::Communicator cohort, const GlobalSegMap& src,
             const GlobalSegMap& dst, int tag);

  void rearrange(const AttrVect& src_av, AttrVect& dst_av);

 private:
  struct Peer {
    int peer = 0;
    std::vector<linear::Segment> segs;
    Index elements = 0;
    rt::kernels::RunPlan plan;  // compiled once; replayed per transfer
  };

  rt::Communicator cohort_;
  int tag_;
  Index src_size_ = 0, dst_size_ = 0;
  std::vector<linear::ProvenancedSegment> src_prov_, dst_prov_;
  std::vector<Peer> sends_, recvs_;
};

}  // namespace mxn::mct
