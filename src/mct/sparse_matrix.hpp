#pragma once

#include "mct/attr_vect.hpp"
#include "mct/global_seg_map.hpp"
#include "rt/communicator.hpp"

namespace mxn::mct {

/// MCT's distributed sparse interpolation matrix (paper §4.5): "a class
/// encapsulating distributed sparse matrix elements and communication
/// schedulers used in performing interpolation as parallel sparse
/// matrix-vector multiplication in a multi-field, cache-friendly fashion."
///
/// y = A x, where x lives on the source grid's numbering (col_map) and y on
/// the destination grid's (row_map). Elements are distributed by row: each
/// rank holds the elements whose rows it owns under row_map. The halo
/// schedule — which remote x entries this rank needs and which local x
/// entries it must serve to others — is built collectively at construction
/// and reused by every matvec.
class SparseMatrix {
 public:
  struct Element {
    Index row = 0;
    Index col = 0;
    double weight = 0.0;
  };

  /// Collective over `cohort`. `elements` are this rank's rows only.
  SparseMatrix(rt::Communicator cohort, const GlobalSegMap& row_map,
               const GlobalSegMap& col_map, std::vector<Element> elements,
               int tag);

  /// y[f][row] = sum_cols weight * x[f][col], for every field. Collective.
  void matvec(const AttrVect& x, AttrVect& y) const;

  [[nodiscard]] std::size_t local_nnz() const { return elements_.size(); }
  /// Remote x entries fetched per matvec (halo size).
  [[nodiscard]] std::size_t halo_size() const { return halo_total_; }

 private:
  rt::Communicator cohort_;
  int tag_;
  Index x_local_size_ = 0;
  Index y_local_size_ = 0;

  struct LocalElement {
    Index y_local = 0;  // local row index
    Index x_slot = 0;   // index into the assembled [local x | halo] vector
    double weight = 0.0;
  };
  std::vector<Element> elements_;
  std::vector<LocalElement> compiled_;

  // Halo schedule: which local x indices each peer wants from us, and how
  // many halo values we receive from each peer.
  struct ServeList {
    int peer = 0;
    std::vector<Index> x_locals;
  };
  std::vector<ServeList> serves_;
  struct HaloList {
    int peer = 0;
    Index count = 0;
    Index slot_base = 0;  // first slot in the halo section
  };
  std::vector<HaloList> halos_;
  std::size_t halo_total_ = 0;
};

}  // namespace mxn::mct
