#pragma once

#include "mct/attr_vect.hpp"

namespace mxn::mct {

/// MCT's register for time averaging and accumulation of field data —
/// "for use in coupling concurrently executing components that do not share
/// a common time-step, or are coupled at a frequency of multiple
/// time-steps" (paper §4.5). Accumulate every model step; hand the average
/// (or the running sum) to the coupler at the coupling frequency.
class Accumulator {
 public:
  Accumulator(std::vector<std::string> fields, Index length)
      : sum_(std::move(fields), length) {}

  void accumulate(const AttrVect& av) {
    if (!av.same_schema(sum_) || av.length() != sum_.length())
      throw rt::UsageError("accumulated AttrVect does not match");
    for (int f = 0; f < sum_.nfields(); ++f) {
      auto s = sum_.field(f);
      auto v = av.field(f);
      for (Index i = 0; i < sum_.length(); ++i) s[i] += v[i];
    }
    ++steps_;
  }

  [[nodiscard]] int steps() const { return steps_; }
  [[nodiscard]] const AttrVect& sum() const { return sum_; }

  /// Time average over the accumulated steps.
  [[nodiscard]] AttrVect average() const {
    if (steps_ == 0)
      throw rt::UsageError("cannot average an empty accumulator");
    AttrVect out = AttrVect::like(sum_, sum_.length());
    for (int f = 0; f < sum_.nfields(); ++f) {
      auto o = out.field(f);
      auto s = sum_.field(f);
      for (Index i = 0; i < sum_.length(); ++i) o[i] = s[i] / steps_;
    }
    return out;
  }

  void reset() {
    sum_.zero();
    steps_ = 0;
  }

 private:
  AttrVect sum_;
  int steps_ = 0;
};

}  // namespace mxn::mct
