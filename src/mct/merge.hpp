#pragma once

#include "mct/attr_vect.hpp"

namespace mxn::mct {

/// One source of a merge: field data plus per-point fractional weights
/// (e.g. the land / ocean / sea-ice fractions of each atmosphere cell).
struct MergeInput {
  const AttrVect* data = nullptr;
  std::span<const double> fraction;  // length() entries
};

/// MCT's merge facility (paper §4.5): "merging of state and flux data from
/// multiple sources for use by a particular model (e.g., blending of land,
/// ocean, and sea ice data for use by an atmosphere model)". Every output
/// point is the fraction-weighted sum of the inputs; fractions are
/// normalized per point so partially-covered cells stay unbiased.
inline void merge(AttrVect& out, const std::vector<MergeInput>& inputs) {
  if (inputs.empty()) throw rt::UsageError("merge needs at least one input");
  for (const auto& in : inputs) {
    if (!in.data) throw rt::UsageError("merge input data is null");
    if (!in.data->same_schema(out) || in.data->length() != out.length())
      throw rt::UsageError("merge input does not match the output schema");
    if (static_cast<Index>(in.fraction.size()) != out.length())
      throw rt::UsageError("merge fraction length mismatch");
  }
  for (Index i = 0; i < out.length(); ++i) {
    double total = 0;
    for (const auto& in : inputs) total += in.fraction[i];
    if (total <= 0)
      throw rt::UsageError("merge fractions sum to zero at a point");
    for (int f = 0; f < out.nfields(); ++f) {
      double acc = 0;
      for (const auto& in : inputs)
        acc += in.fraction[i] * in.data->field(f)[i];
      out.field(f)[i] = acc / total;
    }
  }
}

}  // namespace mxn::mct
