#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "mct/global_seg_map.hpp"
#include "rt/error.hpp"

namespace mxn::mct {

/// MCT's multi-field data storage object — "the common currency modules use
/// in data exchange" (paper §4.5). Holds `nfields` named real fields over
/// the rank's local points, stored field-major (each field contiguous, the
/// cache-friendly layout MCT advertises for its sparse matvec).
class AttrVect {
 public:
  AttrVect() = default;

  AttrVect(std::vector<std::string> fields, Index length)
      : names_(std::move(fields)), length_(length) {
    if (length < 0) throw rt::UsageError("AttrVect length must be >= 0");
    for (std::size_t i = 0; i < names_.size(); ++i) {
      if (names_[i].empty()) throw rt::UsageError("field name must not be empty");
      if (!index_.emplace(names_[i], static_cast<int>(i)).second)
        throw rt::UsageError("duplicate field name '" + names_[i] + "'");
    }
    data_.assign(names_.size() * static_cast<std::size_t>(length), 0.0);
  }

  /// Same field schema as `other` over a different local length.
  static AttrVect like(const AttrVect& other, Index length) {
    return AttrVect(other.names_, length);
  }

  [[nodiscard]] int nfields() const { return static_cast<int>(names_.size()); }
  [[nodiscard]] Index length() const { return length_; }
  [[nodiscard]] const std::vector<std::string>& field_names() const {
    return names_;
  }

  [[nodiscard]] int field_index(const std::string& name) const {
    auto it = index_.find(name);
    if (it == index_.end())
      throw rt::UsageError("AttrVect has no field '" + name + "'");
    return it->second;
  }

  [[nodiscard]] std::span<double> field(int f) {
    check_field(f);
    return {data_.data() + static_cast<std::size_t>(f) * length_,
            static_cast<std::size_t>(length_)};
  }
  [[nodiscard]] std::span<const double> field(int f) const {
    check_field(f);
    return {data_.data() + static_cast<std::size_t>(f) * length_,
            static_cast<std::size_t>(length_)};
  }
  [[nodiscard]] std::span<double> field(const std::string& name) {
    return field(field_index(name));
  }
  [[nodiscard]] std::span<const double> field(const std::string& name) const {
    return field(field_index(name));
  }

  [[nodiscard]] double& at(int f, Index i) { return field(f)[i]; }
  [[nodiscard]] double at(int f, Index i) const { return field(f)[i]; }

  void zero() { std::fill(data_.begin(), data_.end(), 0.0); }

  [[nodiscard]] bool same_schema(const AttrVect& other) const {
    return names_ == other.names_;
  }

 private:
  void check_field(int f) const {
    if (f < 0 || f >= nfields())
      throw rt::UsageError("field index out of range");
  }

  std::vector<std::string> names_;
  std::map<std::string, int> index_;
  Index length_ = 0;
  std::vector<double> data_;
};

}  // namespace mxn::mct
