#include "mct/sparse_matrix.hpp"

#include <algorithm>
#include <map>

namespace mxn::mct {

using rt::UsageError;

SparseMatrix::SparseMatrix(rt::Communicator cohort,
                           const GlobalSegMap& row_map,
                           const GlobalSegMap& col_map,
                           std::vector<Element> elements, int tag)
    : cohort_(std::move(cohort)),
      tag_(tag),
      elements_(std::move(elements)) {
  const int me = cohort_.rank();
  const int n = cohort_.size();
  x_local_size_ = col_map.local_size(me);
  y_local_size_ = row_map.local_size(me);

  // Collect the distinct x columns we need, grouped by owner.
  std::map<Index, Index> col_slot;  // global col -> slot (filled below)
  std::vector<std::vector<Index>> need(n);  // per owner: global cols
  for (const auto& e : elements_) {
    if (row_map.owner(e.row) != me)
      throw UsageError("sparse matrix element row not owned by this rank");
    if (col_slot.emplace(e.col, -1).second) {
      const int owner = col_map.owner(e.col);
      if (owner != me) need[owner].push_back(e.col);
    }
  }
  for (auto& v : need) std::sort(v.begin(), v.end());

  // Assign slots: local x first, then halo entries grouped by peer in
  // ascending column order (the order the owner will send them in).
  for (auto& [col, slot] : col_slot) {
    if (col_map.owner(col) == me) slot = col_map.local_index(me, col);
  }
  Index halo_base = x_local_size_;
  for (int p = 0; p < n; ++p) {
    if (need[p].empty()) continue;
    HaloList h;
    h.peer = p;
    h.count = static_cast<Index>(need[p].size());
    h.slot_base = halo_base;
    for (std::size_t i = 0; i < need[p].size(); ++i)
      col_slot[need[p][i]] = halo_base + static_cast<Index>(i);
    halo_base += h.count;
    halos_.push_back(h);
  }
  halo_total_ = static_cast<std::size_t>(halo_base - x_local_size_);

  // Exchange the request lists: alltoall of needed global columns; the
  // replies become our serve lists (converted to local x indices).
  std::vector<rt::Buffer> outgoing(n);
  for (int p = 0; p < n; ++p) {
    rt::PackBuffer b;
    b.pack(need[p]);
    outgoing[p] = std::move(b).take_buffer();
  }
  auto incoming = cohort_.alltoall(std::move(outgoing));
  for (int p = 0; p < n; ++p) {
    rt::UnpackBuffer u(incoming[p]);
    auto cols = u.unpack_vector<Index>();
    if (cols.empty()) continue;
    ServeList s;
    s.peer = p;
    s.x_locals.reserve(cols.size());
    for (Index c : cols) s.x_locals.push_back(col_map.local_index(me, c));
    serves_.push_back(std::move(s));
  }

  // Compile elements against the slot table.
  compiled_.reserve(elements_.size());
  for (const auto& e : elements_) {
    LocalElement le;
    le.y_local = row_map.local_index(me, e.row);
    le.x_slot = col_slot.at(e.col);
    le.weight = e.weight;
    compiled_.push_back(le);
  }
}

void SparseMatrix::matvec(const AttrVect& x, AttrVect& y) const {
  if (x.length() != x_local_size_)
    throw UsageError("x length does not match the column GSMap");
  if (y.length() != y_local_size_)
    throw UsageError("y length does not match the row GSMap");
  if (!x.same_schema(y))
    throw UsageError("matvec AttrVects must share a field schema");
  const int nf = x.nfields();

  // Serve the peers that need our x entries (multi-field payload).
  rt::Communicator cohort = cohort_;
  for (const auto& s : serves_) {
    rt::PackBuffer b;
    std::vector<double> buf(s.x_locals.size());
    for (int f = 0; f < nf; ++f) {
      auto xf = x.field(f);
      for (std::size_t i = 0; i < s.x_locals.size(); ++i)
        buf[i] = xf[static_cast<std::size_t>(s.x_locals[i])];
      b.pack_span(std::span<const double>(buf));
    }
    cohort.send(s.peer, tag_, std::move(b).take());
  }

  // Assemble [local x | halo] per field.
  const std::size_t slots = static_cast<std::size_t>(x_local_size_) +
                            halo_total_;
  std::vector<std::vector<double>> xs(nf, std::vector<double>(slots));
  for (int f = 0; f < nf; ++f) {
    auto xf = x.field(f);
    std::copy(xf.begin(), xf.end(), xs[f].begin());
  }
  for (const auto& h : halos_) {
    auto msg = cohort.recv(h.peer, tag_);
    rt::UnpackBuffer u(msg.payload);
    for (int f = 0; f < nf; ++f) {
      auto vals = u.unpack_vector<double>();
      if (static_cast<Index>(vals.size()) != h.count)
        throw UsageError("halo reply does not match the schedule");
      std::copy(vals.begin(), vals.end(),
                xs[f].begin() + static_cast<std::size_t>(h.slot_base));
    }
  }

  // Multiply, field-major (cache friendly: one field at a time).
  y.zero();
  for (int f = 0; f < nf; ++f) {
    auto yf = y.field(f);
    const auto& xf = xs[f];
    for (const auto& e : compiled_)
      yf[static_cast<std::size_t>(e.y_local)] +=
          e.weight * xf[static_cast<std::size_t>(e.x_slot)];
  }
}

}  // namespace mxn::mct
