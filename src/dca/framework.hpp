#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "rt/communicator.hpp"
#include "sidl/types.hpp"

namespace mxn::dca {

/// Caller-side description of one parallel argument, in the MPI alltoallv
/// idiom the DCA exposes (paper §4.3): the participant supplies a flat
/// buffer plus per-callee counts and displacements — "giving users the
/// tools to describe their own data redistribution layout". counts/displs
/// have one entry per callee rank.
struct ParallelOut {
  std::vector<double> data;
  std::vector<std::int64_t> counts;
  std::vector<std::int64_t> displs;
};

/// Callee-side view of a parallel argument: the chunk each participant sent
/// to this callee rank, in participant order. Assembling these into the
/// local data structure is the application's job — the flexibility (and the
/// burden) the paper attributes to the DCA model.
struct ParallelIn {
  std::vector<std::vector<double>> chunks;
};

/// Dynamic argument value for DCA port methods.
using DcaValue = std::variant<std::monostate, bool, std::int32_t,
                              std::int64_t, double, std::string,
                              std::vector<double>, ParallelOut, ParallelIn>;

/// Handler context: the callee cohort, the participating caller count for
/// this call, and the call's sequence info.
struct DcaContext {
  rt::Communicator cohort;
  int participants = 0;
};

class DcaServant {
 public:
  using Handler =
      std::function<DcaValue(DcaContext&, std::vector<DcaValue>& args)>;

  explicit DcaServant(sidl::Interface iface) : iface_(std::move(iface)) {}

  [[nodiscard]] const sidl::Interface& interface_desc() const {
    return iface_;
  }

  void bind(const std::string& method, Handler h) {
    (void)iface_.method(method);
    handlers_[method] = std::move(h);
  }

  [[nodiscard]] const Handler& handler(const std::string& method) const;

 private:
  sidl::Interface iface_;
  std::map<std::string, Handler> handlers_;
};

/// Delivery policy for collective calls with subset participation. The
/// barrier (on by default) delays delivery until every participant has
/// reached the calling point — the fix for the synchronization problem of
/// the paper's Figure 5. Turning it off reproduces the deadlock (the
/// bench and the failure-injection test do exactly that).
struct DcaPolicy {
  bool barrier_before_delivery = true;
};

class DcaPort;

/// The Distributed CCA Architecture framework (paper §4.3): an MPI-based
/// distributed framework where process participation is chosen per call by
/// passing a communicator group, parallel data layouts are user-specified
/// counts/displacements, and components start concurrently through Go
/// ports.
class DcaFramework {
 public:
  DcaFramework(rt::Communicator world, DcaPolicy policy = {});

  /// Collective over the world.
  void instantiate(const std::string& name, std::vector<int> world_ranks);
  [[nodiscard]] bool member_of(const std::string& name) const;
  [[nodiscard]] rt::Communicator cohort(const std::string& name) const;

  void add_provides(const std::string& comp, const std::string& port,
                    std::shared_ptr<DcaServant> servant);
  void register_uses(const std::string& comp, const std::string& port,
                     sidl::Interface iface);

  /// Register a Go port body for a component; start_all() runs them.
  void add_go(const std::string& comp, std::function<int()> body);

  /// Collective over the world.
  void connect(const std::string& user_comp, const std::string& uses_port,
               const std::string& prov_comp, const std::string& prov_port);

  [[nodiscard]] std::shared_ptr<DcaPort> get_port(
      const std::string& comp, const std::string& uses_port);

  /// CCA startup semantics: all Go ports are called at startup, so all
  /// components providing one start concurrently (each on its own ranks).
  /// Returns the first nonzero status on this process.
  int start_all();

  /// Provider side: service invocations. A collective call counts once.
  int serve(const std::string& comp, int max_calls = -1);

  [[nodiscard]] rt::Communicator world() const { return world_; }

 private:
  friend class DcaPort;

  struct ComponentInfo {
    int index = 0;
    std::vector<int> ranks;
    rt::Communicator cohort;
    std::map<std::string, std::shared_ptr<DcaServant>> provides;
    std::map<std::string, sidl::Interface> uses;
    std::vector<std::function<int()>> go_bodies;
  };

  struct ConnectionInfo {
    int id = 0;
    std::string user_comp, uses_port, prov_comp, prov_port;
    std::vector<int> caller_ranks, callee_ranks;
    int listen = 0;
  };

  /// A header set aside because the serve loop was committed to another
  /// call when it arrived.
  struct PendingHeader {
    int src = 0;
    rt::Buffer payload;
  };

  ComponentInfo& comp(const std::string& name);
  const ComponentInfo& comp(const std::string& name) const;

  /// Service exactly one logical invocation (gathering all fragments of the
  /// committed call before touching any other); returns false on shutdown.
  bool serve_one(ComponentInfo& provider);

  void run_call(ConnectionInfo& conn, DcaServant& servant,
                std::vector<rt::Message> fragments);

  rt::Communicator world_;
  DcaPolicy policy_;
  std::map<std::string, ComponentInfo> comps_;
  std::map<int, ConnectionInfo> conns_;
  std::map<std::string, int> uses_conn_;
  std::map<std::string, std::shared_ptr<DcaPort>> proxies_;
  std::deque<PendingHeader> pending_;
  int next_comp_index_ = 0;
  int next_conn_id_ = 0;
};

/// Caller-side proxy. Every port method takes the participation
/// communicator as its (automatically added) extra argument — the stub
/// generator of the real DCA appends it to every SIDL method; here you pass
/// it explicitly.
class DcaPort {
 public:
  struct Result {
    DcaValue ret;
    std::vector<DcaValue> args;
  };

  /// Collective call by the processes of `participants` (a communicator
  /// derived from the caller cohort; every member must call). Parallel
  /// arguments are ParallelOut on input; the callee handler sees ParallelIn.
  Result call(rt::Communicator participants, const std::string& method,
              std::vector<DcaValue> args);

  /// One-way variant (the DCA's second concurrency mechanism, §4.3).
  void call_oneway(rt::Communicator participants, const std::string& method,
                   std::vector<DcaValue> args);

  void shutdown_provider(rt::Communicator participants);

 private:
  friend class DcaFramework;
  DcaPort(DcaFramework* fw, int conn, sidl::Interface iface)
      : fw_(fw), conn_(conn), iface_(std::move(iface)) {}

  Result invoke(rt::Communicator& participants, const std::string& method,
                std::vector<DcaValue> args, bool oneway);

  DcaFramework* fw_;
  int conn_;
  sidl::Interface iface_;
  std::shared_ptr<std::int64_t> seq_ = std::make_shared<std::int64_t>(0);
};

}  // namespace mxn::dca
