#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/mxn_component.hpp"
#include "rt/buffer.hpp"
#include "rt/error.hpp"

namespace mxn::redundancy {

/// A recovery could not reconstruct the lost state: more ranks died than the
/// XOR parity scheme tolerates (one per partner group), or no encode epoch
/// covers the layout the ranks died under. Raised identically on every live
/// rank, so the cohort fails closed instead of hanging.
class RebuildError : public rt::Error {
 public:
  using Error::Error;
};

struct RedundancyOptions {
  /// Partner-group size m. The member ranks of both sides are partitioned
  /// (in ascending channel-rank order) into groups of m, and each group
  /// tolerates ONE death: every member XOR-stripes its snapshot across the
  /// other m-1 members, redset style, so each member holds one parity block
  /// of roughly blob_size / (m-1) bytes per peer group. m = 2 degrades to
  /// plain mirroring. A trailing group of 1 is folded into its predecessor.
  int group_size = 4;
  /// Per-wait deadline for encode/recover traffic; < 0 inherits the spawn
  /// default (SpawnOptions::default_recv_timeout_ms), 0 waits forever.
  int timeout_ms = -1;
  /// Extra delivery/migration attempts after the first (encode acks and the
  /// reliable exchanges of the rebuild migration).
  int max_retries = 2;
};

struct EncodeStats {
  std::uint64_t epoch = 0;        // encode generation (monotonic per group)
  std::uint64_t blob_bytes = 0;   // this rank's serialized field snapshot
  std::uint64_t parity_bytes = 0; // parity this rank now holds for partners
  std::uint64_t sent_bytes = 0;   // chunk + header bytes shipped
};

struct RecoverStats {
  std::vector<int> dead_channel_ranks;  // in the OLD channel's numbering
  std::uint64_t rebuilt_bytes = 0;   // reconstructed blob bytes (at proxies)
  std::uint64_t migrated_bytes = 0;  // wire bytes of the relayout exchanges
  std::uint64_t local_bytes = 0;     // extract->inject fast-path bytes
  std::int64_t recover_ns = 0;
};

namespace detail {
struct EncodeState;
}  // namespace detail

/// Erasure-coded state redundancy for one MxNComponent (docs/REDUNDANCY.md).
///
///   encode()  — member-collective snapshot: each member packs its locally
///               owned patches of every registered field into one pooled
///               rt::Buffer blob, splits the blob into m-1 chunks and sends
///               chunk c to the partner at group position (pos + 1 + c) % m,
///               which XORs it (zero-extended) into its parity block. Runs
///               on a dedicated tag with ack/retry/dedup delivery, so it
///               composes with live couplings and survives drop/dup/reorder
///               chaos.
///   recover() — called by EVERY live channel rank (members and spectators)
///               after the universe reports rank death: survivors rendezvous
///               via Communicator::split_live, shuffle their surviving
///               chunks, XOR-reconstruct each dead rank's blob at a proxy
///               survivor, migrate all state onto the caller-chosen new
///               layout (delta schedules + two-phase reliable exchanges,
///               sourcing dead ranks' regions from the rebuilt blobs), and
///               splice the component onto the live communicator.
///
/// One RedundancyGroup instance per rank per component, same as the
/// component itself (SPMD).
class RedundancyGroup {
 public:
  explicit RedundancyGroup(std::shared_ptr<core::MxNComponent> component,
                           RedundancyOptions opts = {});
  ~RedundancyGroup();

  RedundancyGroup(const RedundancyGroup&) = delete;
  RedundancyGroup& operator=(const RedundancyGroup&) = delete;

  /// Snapshot + parity-distribute this rank's registered fields. Collective
  /// over the component's MEMBER ranks (both sides); spectator ranks may
  /// call it and no-op. Each call opens a new encode epoch that supersedes
  /// the previous one; recover() rebuilds from the latest epoch only.
  /// Requires every registered field to be readable (a write-only field
  /// cannot be snapshotted) and at least 2 member ranks.
  EncodeStats encode();

  /// True when this rank holds an encode epoch matching the component's
  /// current layout (i.e. recover() would have parity to rebuild from).
  [[nodiscard]] bool encoded() const;

  /// Rebuild dead ranks' state and splice the component onto `new_layout`.
  /// Collective over every LIVE channel rank. `new_layout` is expressed in
  /// the OLD channel's rank numbering and must list only live ranks — shrink
  /// onto survivors or promote spectators as replacements (or both).
  /// `new_fields` carries this rank's registrations for its new side, with
  /// the same semantics as MxNComponent::rescale (spectators-to-be pass
  /// none; omitting a field cohort-wide keeps it only if its side's rank
  /// list is unchanged and lost no rank). Throws RebuildError when two dead
  /// ranks share a parity group or when no encode epoch covers the current
  /// layout; throws UsageError on inconsistent arguments.
  RecoverStats recover(const core::Layout& new_layout,
                       std::vector<core::FieldRegistration> new_fields,
                       int timeout_ms = -1, int max_retries = -1);

  [[nodiscard]] const RedundancyOptions& options() const { return opts_; }

 private:
  std::shared_ptr<core::MxNComponent> component_;
  RedundancyOptions opts_;
  std::uint64_t epoch_ = 0;
  std::unique_ptr<detail::EncodeState> state_;
};

}  // namespace mxn::redundancy
