#include "redundancy/redundancy.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/reliable_exchange.hpp"
#include "dad/dist_array.hpp"
#include "rt/serialize.hpp"
#include "sched/coupling.hpp"
#include "sched/schedule.hpp"
#include "trace/trace.hpp"

// Erasure-coded state redundancy (docs/REDUNDANCY.md): the shuffile/redset
// flow mapped onto rt messages and DAD ownership maps. encode() stripes each
// member's patch snapshot across its partner group with rotated XOR parity
// (each member's chunks live only in OTHER members' parity blocks, so any
// single death per group is recoverable); recover() reassembles dead ranks'
// blobs at proxy survivors and redistributes everything onto a caller-chosen
// layout with the same delta-schedule + two-phase reliable exchange
// machinery the elastic rescale uses — rebuilding onto a replacement or a
// shrunken cohort is exactly a redistribution onto a new layout.

namespace mxn::redundancy {

using core::FieldRegistration;
using core::Layout;
using rt::Buffer;
using rt::UsageError;

namespace detail {

struct FieldMeta {
  std::string name;
  std::uint64_t elem_size = 0;
  dad::DescriptorPtr descriptor;
  std::uint64_t offset = 0;  // byte offset of the field in the owner's blob
  std::uint64_t bytes = 0;
};

/// What a member knows about one partner: enough to rebuild and re-inject
/// the partner's blob without the partner (serialized group metadata).
struct PeerHeader {
  std::uint64_t blob_size = 0;
  int side = -1;
  int cohort_rank = -1;
  std::vector<FieldMeta> fields;
};

struct EncodeState {
  std::uint64_t epoch = 0;
  Layout layout;           // component layout at encode time
  std::vector<int> group;  // my partner group's channel ranks, ascending
  int my_pos = -1;
  int my_side = -1;
  int my_cohort = -1;
  Buffer blob;  // my snapshot: registered fields concatenated, sorted by name
  std::vector<FieldMeta> my_fields;
  std::vector<std::byte> parity;   // XOR accumulation (zero-extended)
  std::map<int, PeerHeader> peers; // channel rank -> header, my group only
};

}  // namespace detail

namespace {

// Encode traffic: one dedicated tag on the component channel, above every
// connection/migration/PRMI range (src/core/connection_impl.hpp), so an
// encode composes with live couplings. Data, acks and done markers share the
// tag and are told apart by a leading type byte.
constexpr int kRedTag = 710000;
// Rebuild-migration exchanges run on the freshly minted live communicator
// (fresh mailboxes — no residue possible); 4 tags per exchange.
constexpr int kRedMigBase = 660000;

constexpr std::uint8_t kMsgData = 0;
constexpr std::uint8_t kMsgAck = 1;
constexpr std::uint8_t kMsgDone = 2;

int index_of(int v, const std::vector<int>& xs) {
  for (std::size_t i = 0; i < xs.size(); ++i)
    if (xs[i] == v) return static_cast<int>(i);
  return -1;
}

/// Partition the member channel ranks of both sides (ascending) into partner
/// groups of `m`; a trailing singleton folds into its predecessor so every
/// group has >= 2 members (a group of 1 could not hold parity anywhere).
std::vector<std::vector<int>> make_groups(const Layout& layout, int m) {
  std::vector<int> members = layout.side0;
  members.insert(members.end(), layout.side1.begin(), layout.side1.end());
  std::sort(members.begin(), members.end());
  std::vector<std::vector<int>> groups;
  for (std::size_t i = 0; i < members.size();
       i += static_cast<std::size_t>(m))
    groups.emplace_back(
        members.begin() + static_cast<std::ptrdiff_t>(i),
        members.begin() + static_cast<std::ptrdiff_t>(
                              std::min(members.size(),
                                       i + static_cast<std::size_t>(m))));
  if (groups.size() >= 2 && groups.back().size() == 1) {
    groups[groups.size() - 2].push_back(groups.back()[0]);
    groups.pop_back();
  }
  return groups;
}

const std::vector<int>* group_containing(
    const std::vector<std::vector<int>>& groups, int rank) {
  for (const auto& g : groups)
    if (index_of(rank, g) >= 0) return &g;
  return nullptr;
}

/// Chunk geometry of one blob striped over a group of `m`: m-1 equal slices
/// (the last short, trailing ones possibly empty). Chunk c of the member at
/// group position i is held — XORed into the parity — by the member at
/// position (i + 1 + c) % m, redset style: a member's own parity never
/// covers its own data, so the death of any ONE member leaves every one of
/// its chunks recoverable from a survivor's parity.
struct ChunkGeom {
  std::uint64_t size = 0;
  std::uint64_t len = 0;  // full slice length

  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> chunk(int c) const {
    const std::uint64_t off =
        std::min(size, static_cast<std::uint64_t>(c) * len);
    return {off, std::min(size - off, len)};
  }
};

ChunkGeom geom(std::uint64_t blob_size, int group_size) {
  ChunkGeom g;
  g.size = blob_size;
  const auto nchunks = static_cast<std::uint64_t>(group_size - 1);
  g.len = nchunks > 0 ? (blob_size + nchunks - 1) / nchunks : 0;
  return g;
}

/// acc[i] ^= src[i], zero-extending acc: chunks of different lengths XOR as
/// if padded with zeros, so no group-wide size agreement round is needed.
void xor_into(std::vector<std::byte>& acc, std::span<const std::byte> src) {
  if (src.size() > acc.size()) acc.resize(src.size(), std::byte{0});
  for (std::size_t i = 0; i < src.size(); ++i) acc[i] ^= src[i];
}

std::vector<std::byte> pack_meta(int side, int cohort_rank,
                                 const std::vector<detail::FieldMeta>& fields) {
  rt::PackBuffer b;
  b.pack(static_cast<std::int32_t>(side));
  b.pack(static_cast<std::int32_t>(cohort_rank));
  b.pack(static_cast<std::uint64_t>(fields.size()));
  for (const auto& f : fields) {
    b.pack(f.name);
    b.pack(f.elem_size);
    f.descriptor->pack(b);
  }
  return std::move(b).take();
}

detail::PeerHeader unpack_meta(std::span<const std::byte> bytes,
                               std::uint64_t blob_size) {
  rt::UnpackBuffer u(bytes);
  detail::PeerHeader h;
  h.blob_size = blob_size;
  h.side = u.unpack<std::int32_t>();
  h.cohort_rank = u.unpack<std::int32_t>();
  const auto n = u.unpack<std::uint64_t>();
  std::uint64_t off = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    detail::FieldMeta fm;
    fm.name = u.unpack_string();
    fm.elem_size = u.unpack<std::uint64_t>();
    fm.descriptor = std::make_shared<const dad::Descriptor>(
        dad::Descriptor::unpack(u));
    fm.offset = off;
    fm.bytes = static_cast<std::uint64_t>(
                   fm.descriptor->local_volume(h.cohort_rank)) *
               fm.elem_size;
    off += fm.bytes;
    h.fields.push_back(std::move(fm));
  }
  return h;
}

/// Read-only FieldRegistration over a serialized blob: extract() mirrors
/// DistArray::extract but sources rows from `blob` at the field's offset,
/// using `desc`'s ownership map for cohort slot `cohort_rank`. This is how
/// both survivor snapshots and rebuilt dead-rank blobs feed the reliable
/// migration exchanges.
FieldRegistration blob_backed_field(const detail::FieldMeta& fm,
                                    const dad::DescriptorPtr& desc,
                                    int cohort_rank, Buffer blob) {
  FieldRegistration f;
  f.name = fm.name;
  f.descriptor = desc;
  f.elem_size = static_cast<std::size_t>(fm.elem_size);
  f.mode = core::AccessMode::Read;
  const std::uint64_t off = fm.offset;
  const std::uint64_t elem = fm.elem_size;
  f.extract = [desc, cohort_rank, blob = std::move(blob), off, elem](
                  const dad::Patch& region, std::byte* out) {
    const std::size_t pi = desc->patch_containing(cohort_rank, region);
    const dad::Patch& owned = desc->patches_of(cohort_rank)[pi];
    const dad::Index base = desc->patch_base(cohort_rank, pi);
    const std::byte* local = blob.data() + off;
    std::size_t written = 0;
    dad::for_each_row(region, [&](const dad::Point& row, dad::Index len) {
      const auto src =
          static_cast<std::size_t>(base + owned.offset_of(row)) * elem;
      std::memcpy(out + written, local + src,
                  static_cast<std::size_t>(len) * elem);
      written += static_cast<std::size_t>(len) * elem;
    });
  };
  return f;
}

std::vector<std::string> bcast_names(rt::Communicator& ch, int root,
                                     const std::vector<std::string>& mine) {
  rt::PackBuffer b;
  if (ch.rank() == root) b.pack(mine);
  auto bytes = ch.bcast(std::move(b).take_buffer(), root);
  rt::UnpackBuffer u(bytes);
  return u.unpack_string_vector();
}

dad::DescriptorPtr bcast_descriptor(rt::Communicator& ch, int root,
                                    const dad::DescriptorPtr& mine) {
  rt::PackBuffer b;
  if (ch.rank() == root) {
    if (!mine)
      throw UsageError("redundancy: descriptor broadcast root lacks the "
                       "descriptor");
    mine->pack(b);
  }
  auto bytes = ch.bcast(std::move(b).take_buffer(), root);
  rt::UnpackBuffer u(bytes);
  return std::make_shared<const dad::Descriptor>(dad::Descriptor::unpack(u));
}

const detail::FieldMeta* find_meta(const std::vector<detail::FieldMeta>& fs,
                                   const std::string& name) {
  for (const auto& f : fs)
    if (f.name == name) return &f;
  return nullptr;
}

/// One dead rank's blob, reassembled at its proxy survivor.
struct Rebuilt {
  Buffer blob;
  detail::PeerHeader hdr;
};

}  // namespace

// --- construction -----------------------------------------------------------

RedundancyGroup::RedundancyGroup(std::shared_ptr<core::MxNComponent> component,
                                 RedundancyOptions opts)
    : component_(std::move(component)), opts_(opts) {
  if (!component_) throw UsageError("RedundancyGroup: null component");
  if (!component_->elastic())
    throw UsageError("RedundancyGroup requires an elastic component "
                     "(make_elastic_mxn)");
  if (opts_.group_size < 2)
    throw UsageError("RedundancyGroup: group_size must be >= 2");
}

RedundancyGroup::~RedundancyGroup() = default;

bool RedundancyGroup::encoded() const {
  if (!state_) return false;
  const Layout now = component_->layout();
  return state_->layout.side0 == now.side0 && state_->layout.side1 == now.side1;
}

// --- encode -----------------------------------------------------------------

EncodeStats RedundancyGroup::encode() {
  auto& comp = *component_;
  if (!comp.is_member()) {
    state_.reset();
    return {};
  }
  trace::Span span("redundancy.encode", "redundancy");
  rt::Communicator channel = comp.channel();
  rt::Universe* uni = channel.universe();
  const Layout layout = comp.layout();
  const auto groups = make_groups(layout, opts_.group_size);
  const std::vector<int>* g = group_containing(groups, channel.rank());
  if (g == nullptr || g->size() < 2)
    throw UsageError("redundancy: encode needs at least 2 member ranks");

  auto st = std::make_unique<detail::EncodeState>();
  st->epoch = ++epoch_;
  st->layout = layout;
  st->group = *g;
  st->my_pos = index_of(channel.rank(), st->group);
  st->my_side = comp.side();
  st->my_cohort = comp.cohort().rank();

  // 1. Snapshot: every registered field's local patches, concatenated in
  // name order (std::map), each patch row-major at its descriptor base —
  // the same local-storage arrangement DistArray uses, so the blob can be
  // re-extracted per region by ownership-map lookups alone.
  std::uint64_t total = 0;
  for (const auto& [name, f] : comp.fields()) {
    if (!f.extract || !core::readable(f.mode))
      throw UsageError("redundancy: field '" + name +
                       "' is write-only; cannot snapshot it");
    detail::FieldMeta fm;
    fm.name = name;
    fm.elem_size = f.elem_size;
    fm.descriptor = f.descriptor;
    fm.offset = total;
    fm.bytes = static_cast<std::uint64_t>(
                   f.descriptor->local_volume(st->my_cohort)) *
               f.elem_size;
    total += fm.bytes;
    st->my_fields.push_back(std::move(fm));
  }
  Buffer blob = Buffer::allocate(total);
  if (total > 0) {
    std::byte* out = blob.mutable_data();
    for (const auto& fm : st->my_fields) {
      const FieldRegistration& f = comp.fields().at(fm.name);
      const auto& patches = fm.descriptor->patches_of(st->my_cohort);
      for (std::size_t i = 0; i < patches.size(); ++i) {
        const dad::Index base = fm.descriptor->patch_base(st->my_cohort, i);
        f.extract(patches[i],
                  out + fm.offset +
                      static_cast<std::size_t>(base) * fm.elem_size);
      }
    }
  }
  st->blob = std::move(blob);

  // 2. Stripe: chunk c of my blob goes to the partner at group position
  // (my_pos + 1 + c) % m; equivalently partner j holds my chunk
  // (j - my_pos - 1) mod m. Delivery is ack/retry/dedup on a dedicated tag
  // (chaos plans drop/dup/reorder user-tag traffic), with a done-marker
  // linger so no partner is left resending into a finished rank.
  const int m = static_cast<int>(st->group.size());
  const ChunkGeom gm = geom(total, m);
  const std::vector<std::byte> meta =
      pack_meta(st->my_side, st->my_cohort, st->my_fields);

  struct Outgoing {
    int dst = -1;
    Buffer payload;
    bool acked = false;
  };
  std::vector<Outgoing> out;
  EncodeStats stats;
  stats.epoch = st->epoch;
  stats.blob_bytes = total;
  for (int j = 0; j < m; ++j) {
    if (j == st->my_pos) continue;
    const int c = (j - st->my_pos - 1 + m) % m;
    const auto [coff, clen] = gm.chunk(c);
    rt::PackBuffer b;
    b.pack(kMsgData);
    b.pack(st->epoch);
    b.pack(total);
    b.pack(static_cast<std::uint64_t>(meta.size()));
    b.pack_raw(std::span<const std::byte>(meta));
    b.pack(clen);
    b.pack_raw(st->blob.span().subspan(coff, clen));
    Outgoing o;
    o.dst = st->group[static_cast<std::size_t>(j)];
    o.payload = std::move(b).take_buffer();
    stats.sent_bytes += o.payload.size();
    out.push_back(std::move(o));
  }

  rt::PackBuffer db;
  db.pack(kMsgDone);
  db.pack(st->epoch);
  const Buffer done_msg = std::move(db).take_buffer();

  const int eff = opts_.timeout_ms < 0 ? uni->default_recv_timeout_ms()
                                       : opts_.timeout_ms;
  const std::int64_t deadline =
      eff > 0 ? trace::now_ns() + static_cast<std::int64_t>(eff) * 1'000'000 *
                                      (1 + std::max(0, opts_.max_retries))
              : 0;

  // The ack/retry/done machinery exists to survive DROPPED messages, and
  // the rt mailbox is lossless unless the active fault plan injects drops
  // (dup/reorder/delay perturb order and timing but never lose delivery).
  // On a lossless transport the whole acknowledgment protocol is dead
  // weight — two extra full-group message generations per epoch — so, like
  // an MPI implementation on a reliable fabric, encode skips it: send
  // chunks, fold in the partners' chunks, exit. The plan is spawn-global,
  // so every member picks the same mode.
  const rt::FaultInjector* fi = uni->faults();
  const bool lossy = fi != nullptr && fi->plan().drop > 0;
  std::set<int> data_from;  // partners whose chunk is already folded in
  std::set<int> done_from;  // partners known to have finished this epoch
  std::size_t unacked = out.size();
  if (!lossy) {
    for (auto& o : out) o.acked = true;
    unacked = 0;
  }
  const std::size_t partners = out.size();
  bool done_sent = false;
  int quiet_ticks = 0;  // consecutive silent waits since we finished
  const auto finished = [&] {
    return unacked == 0 && data_from.size() == partners;
  };
  auto broadcast_pending = [&] {
    for (const auto& o : out)
      if (!o.acked) channel.send(o.dst, kRedTag, o.payload);
    if (finished())
      for (const auto& o : out)
        if (!done_from.count(o.dst)) channel.send(o.dst, kRedTag, done_msg);
  };
  for (const auto& o : out) channel.send(o.dst, kRedTag, o.payload);
  // Exit: all my data acked, all partner chunks folded in, and every partner
  // is known finished (sent Done) — OR, should a partner's Done itself be
  // lost after the partner exited, a quiet linger (no traffic for several
  // ticks while finished) stands in for it. A partner that still needs my
  // acks resends its data every tick, which resets the linger, so the quiet
  // exit cannot starve anyone.
  while (true) {
    if (finished()) {
      if (!lossy) break;
      if (!done_sent) {
        // Transition, not tick: a rank can finish and collect every
        // partner's Done without ever waiting out a recv, so Done must go
        // out the moment the conditions are met or partners hang on it.
        for (const auto& o : out) channel.send(o.dst, kRedTag, done_msg);
        done_sent = true;
      }
      if (done_from.size() == partners || quiet_ticks >= 4) break;
    }
    if (deadline != 0 && trace::now_ns() >= deadline)
      throw rt::TimeoutError("redundancy encode: partner exchange deadline "
                             "of " +
                             std::to_string(eff) + " ms exceeded" +
                             uni->timeout_dead_report());
    // Admit only this epoch's (or older, drained below) traffic: with
    // back-to-back encodes the group is never in epoch lockstep, and a
    // partner one epoch ahead would otherwise have its data consumed and
    // dropped here — costing it a full resend tick. Leaving future-epoch
    // messages queued hands them to this rank's own next encode() intact.
    const auto this_epoch = [&](const rt::Message& m) {
      rt::UnpackBuffer u(m.payload);
      (void)u.unpack<std::uint8_t>();
      return u.unpack<std::uint64_t>() <= st->epoch;
    };
    rt::Message msg;
    try {
      msg = channel.recv_matching(rt::kAnySource, kRedTag, this_epoch, 50);
    } catch (const rt::TimeoutError&) {
      ++quiet_ticks;
      if (lossy) broadcast_pending();  // absorb drops: resend the undelivered
      continue;
    }
    quiet_ticks = 0;
    rt::UnpackBuffer u(msg.payload);
    const auto type = u.unpack<std::uint8_t>();
    const auto ep = u.unpack<std::uint64_t>();
    if (ep != st->epoch) continue;  // stale epoch: drain and drop
    if (type == kMsgAck) {
      for (auto& o : out)
        if (o.dst == msg.src && !o.acked) {
          o.acked = true;
          --unacked;
        }
      continue;
    }
    if (type == kMsgDone) {
      done_from.insert(msg.src);
      continue;
    }
    const auto blob_size = u.unpack<std::uint64_t>();
    const auto meta_len = u.unpack<std::uint64_t>();
    const auto meta_bytes = u.unpack_raw(meta_len);
    const auto clen = u.unpack<std::uint64_t>();
    const auto chunk = u.unpack_raw(clen);
    if (lossy) {
      rt::PackBuffer ab;
      ab.pack(kMsgAck);
      ab.pack(st->epoch);
      channel.send(msg.src, kRedTag, std::move(ab).take_buffer());
    }
    if (data_from.count(msg.src)) continue;  // duplicate: re-acked, not re-XORed
    data_from.insert(msg.src);
    st->peers[msg.src] = unpack_meta(meta_bytes, blob_size);
    xor_into(st->parity, chunk);
  }

  stats.parity_bytes = st->parity.size();
  static trace::Counter& encodes = trace::counter("redundancy.encodes");
  static trace::Counter& enc_bytes =
      trace::counter("redundancy.encoded_bytes");
  static trace::Counter& par_bytes = trace::counter("redundancy.parity_bytes");
  encodes.add(1);
  enc_bytes.add(stats.blob_bytes);
  par_bytes.add(stats.parity_bytes);
  state_ = std::move(st);
  return stats;
}

// --- recover ----------------------------------------------------------------

namespace {

/// Migrate one side's fields from the encode-time snapshots (survivors) and
/// rebuilt blobs (dead ranks, via their proxies) onto the new layout over
/// the live communicator. Mirrors MxNComponent::migrate_side, with one
/// reliable exchange for the surviving slots plus one per dead slot (a
/// channel rank can play only one source role per exchange, so each proxy
/// impersonates one dead cohort slot per exchange). `tag_counter` advances
/// identically on every live rank — participants and spectators alike — so
/// tag assignment needs no extra agreement round.
void migrate_recovered_side(
    core::MxNComponent& comp, int s, const Layout& old_layout,
    const Layout& new_layout_old, const std::vector<int>& live_of_old,
    rt::Communicator& live, int me_old,
    const std::vector<int>& dead_members,
    const std::map<int, Rebuilt>& rebuilt,
    const std::map<int, int>& proxy_of, detail::EncodeState* state,
    std::uint64_t repoch, std::map<std::string, FieldRegistration>& incoming,
    std::map<std::string, FieldRegistration>& new_regs, int new_side,
    int timeout_ms, int max_retries, int& tag_counter, RecoverStats& stats) {
  const std::vector<int>& old_ranks = old_layout.side(s);
  const std::vector<int>& new_ranks = new_layout_old.side(s);
  const int my_old = comp.side() == s ? comp.cohort().rank() : -1;
  const int my_new = new_side == s ? index_of(me_old, new_ranks) : -1;
  // Per-attempt timeout slice: the retry chain as a whole gets roughly
  // `timeout_ms`, not `timeout_ms` per attempt — a rank burning a full
  // budget on each failed attempt would lag the collective splice
  // rendezvous its peers are already waiting in.
  const int attempts = 1 + std::max(0, max_retries);
  const int slice = std::max(200, timeout_ms / attempts);

  std::vector<int> side_dead;
  for (int r : old_ranks)
    if (index_of(r, dead_members) >= 0) side_dead.push_back(r);

  // The side's field-name list: from its first LIVE old member, or — when
  // the whole side died — from the proxy of its first dead rank, which
  // holds the side's metadata in its stored group headers.
  int old_root_old = -1;
  for (int r : old_ranks)
    if (live_of_old[static_cast<std::size_t>(r)] >= 0) {
      old_root_old = r;
      break;
    }
  const int names_root_live =
      old_root_old >= 0 ? live_of_old[static_cast<std::size_t>(old_root_old)]
                        : proxy_of.at(side_dead.front());
  const detail::PeerHeader* root_hdr = nullptr;
  if (old_root_old < 0 && live.rank() == names_root_live)
    root_hdr = &state->peers.at(side_dead.front());

  std::vector<std::string> names;
  if (live.rank() == names_root_live) {
    if (root_hdr != nullptr) {
      for (const auto& f : root_hdr->fields) names.push_back(f.name);
    } else {
      for (const auto& [n, f] : comp.fields()) names.push_back(n);
    }
  }
  names = bcast_names(live, names_root_live, names);

  const int new_root_live =
      live_of_old[static_cast<std::size_t>(new_ranks[0])];
  std::vector<std::uint8_t> flags(names.size(), 0);
  if (live.rank() == new_root_live)
    for (std::size_t i = 0; i < names.size(); ++i)
      flags[i] = incoming.count(names[i]) ? 1 : 0;
  flags = live.bcast_vector(std::move(flags), new_root_live);

  static trace::Counter& mig_bytes =
      trace::counter("redundancy.migrated_bytes");
  static trace::Counter& mig_retries = trace::counter("redundancy.retries");
  static trace::Counter& loc_bytes = trace::counter("redundancy.local_bytes");

  for (std::size_t fi = 0; fi < names.size(); ++fi) {
    const std::string& name = names[fi];
    const bool has_new = flags[fi] != 0;
    if (my_new >= 0 && (incoming.count(name) != 0) != has_new)
      throw UsageError("recover: re-registration of field '" + name +
                       "' disagrees across the new cohort");
    if (!has_new) {
      // Kept field: legal only when the side kept its exact rank list —
      // which implies it lost no rank, since the new list is all-live.
      if (old_ranks != new_ranks)
        throw UsageError("recover: field '" + name +
                         "' was not re-registered but side " +
                         std::to_string(s) + "'s rank list changed");
      if (my_new >= 0) new_regs.emplace(name, comp.fields().at(name));
      continue;
    }

    // Element size and descriptor agreement over live-comm collectives
    // (reserved negative tags: fault-exempt). The old descriptor comes from
    // the names root — a live old member's registration, or a proxy's
    // stored header when the side lost every member.
    const detail::FieldMeta* root_meta =
        root_hdr != nullptr ? find_meta(root_hdr->fields, name) : nullptr;
    const auto old_elem = live.bcast_value<std::uint64_t>(
        live.rank() == names_root_live
            ? (root_meta != nullptr ? root_meta->elem_size
                                    : comp.fields().at(name).elem_size)
            : 0,
        names_root_live);
    const auto new_elem = live.bcast_value<std::uint64_t>(
        live.rank() == new_root_live ? incoming.at(name).elem_size : 0,
        new_root_live);
    if (old_elem != new_elem)
      throw UsageError("recover: field '" + name +
                       "' changes element size across the recovery");
    dad::DescriptorPtr old_mine;
    if (live.rank() == names_root_live)
      old_mine = root_meta != nullptr ? root_meta->descriptor
                                      : comp.fields().at(name).descriptor;
    const dad::DescriptorPtr old_desc =
        bcast_descriptor(live, names_root_live, old_mine);
    dad::DescriptorPtr new_stamped;
    if (my_new >= 0)
      new_stamped = std::make_shared<const dad::Descriptor>(
          incoming.at(name).descriptor->with_version(repoch));
    const dad::DescriptorPtr new_desc =
        bcast_descriptor(live, new_root_live, new_stamped);
    if (my_new >= 0 && !(*new_desc == *new_stamped))
      throw UsageError("recover: field '" + name +
                       "' is registered with different descriptors across "
                       "the new cohort");
    if (!old_desc->same_shape(*new_desc))
      throw UsageError("recover: field '" + name +
                       "' changes shape across the recovery");

    // Channel-rank maps for the delta schedules, in LIVE numbering. Dead
    // slots map to -2: build_delta_schedule would otherwise classify a
    // dead-sourced region as mirrored-local (and silently drop it) whenever
    // the slot aliased a live rank.
    std::vector<int> from1(old_ranks.size());
    for (std::size_t i = 0; i < old_ranks.size(); ++i) {
      const int lr = live_of_old[static_cast<std::size_t>(old_ranks[i])];
      from1[i] = lr >= 0 ? lr : -2;
    }
    std::vector<int> to1(new_ranks.size());
    for (std::size_t i = 0; i < new_ranks.size(); ++i)
      to1[i] = live_of_old[static_cast<std::size_t>(new_ranks[i])];

    const FieldRegistration* newf =
        my_new >= 0 ? &incoming.at(name) : nullptr;
    if (newf != nullptr && !newf->inject)
      throw UsageError("recover: field '" + name +
                       "' is read-only; cannot restore into it");

    // Exchange 1: surviving old slots -> new slots, sourced from the
    // encode-time snapshots (recover restores the snapshot state — see
    // docs/REDUNDANCY.md). Recvs from dead slots are deferred to the
    // per-dead exchanges below.
    FieldRegistration snap_src;
    const int tag1 = kRedMigBase + 4 * tag_counter++;
    if (my_old >= 0 || my_new >= 0) {
      sched::DeltaSchedule delta = sched::build_delta_schedule(
          *old_desc, *new_desc, my_old, my_new, from1, to1);
      sched::RegionSchedule wire;
      wire.sends = std::move(delta.wire.sends);
      for (auto& pr : delta.wire.recvs)
        if (from1[static_cast<std::size_t>(pr.peer)] >= 0)
          wire.recvs.push_back(std::move(pr));
      if (my_old >= 0) {
        const detail::FieldMeta* fm = find_meta(state->my_fields, name);
        if (fm == nullptr)
          throw UsageError("recover: field '" + name +
                           "' has no snapshot in the encode epoch");
        snap_src = blob_backed_field(*fm, old_desc, my_old, state->blob);
      }
      if (delta.local_elements > 0) {
        std::vector<std::byte> buf;
        for (const auto& region : delta.local) {
          buf.resize(static_cast<std::size_t>(region.volume()) * old_elem);
          snap_src.extract(region, buf.data());
          newf->inject(region, buf.data());
        }
        const std::uint64_t lb =
            static_cast<std::uint64_t>(delta.local_elements) * old_elem;
        stats.local_bytes += lb;
        loc_bytes.add(lb);
      }
      if (!wire.sends.empty() || !wire.recvs.empty()) {
        sched::Coupling cpl;
        cpl.channel = live;
        cpl.src_ranks = from1;
        cpl.dst_ranks = to1;
        cpl.recv_timeout_ms = slice;
        core::ReliableExchange x;
        x.schedule = &wire;
        x.src = my_old >= 0 ? &snap_src : nullptr;
        x.dst = newf;
        x.coupling = &cpl;
        x.data_tag = tag1;
        x.ack_tag = tag1 + 1;
        x.commit_tag = tag1 + 2;
        x.timeout_ms = slice;
        std::uint64_t serial = 0;
        x.serial = &serial;
        bool ok = false;
        for (int a = 0; a < attempts && !ok; ++a) {
          if (a > 0) mig_retries.add(1);
          if (const auto moved = core::run_reliable_attempt(x)) {
            stats.migrated_bytes += moved->bytes;
            mig_bytes.add(moved->bytes);
            ok = true;
          }
        }
        if (!ok)
          throw core::TransferError(
              "recover: migration of field '" + name + "' (side " +
              std::to_string(s) + ") failed after " +
              std::to_string(attempts) + " attempts");
      }
    }

    // One exchange per dead slot: the proxy survivor impersonates the dead
    // rank's cohort slot and sources its regions from the rebuilt blob.
    for (int dk : side_dead) {
      const int d_cohort = index_of(dk, old_ranks);
      const int proxy_live = proxy_of.at(dk);
      const bool me_proxy = live.rank() == proxy_live;
      const int tag2 = kRedMigBase + 4 * tag_counter++;
      if (!me_proxy && my_new < 0) continue;
      const int my_from2 = me_proxy ? d_cohort : -1;
      std::vector<int> from2(old_ranks.size(), -2);
      from2[static_cast<std::size_t>(d_cohort)] = proxy_live;
      sched::DeltaSchedule delta2 = sched::build_delta_schedule(
          *old_desc, *new_desc, my_from2, my_new, from2, to1);
      sched::RegionSchedule wire2;
      wire2.sends = std::move(delta2.wire.sends);
      for (auto& pr : delta2.wire.recvs)
        if (pr.peer == d_cohort) wire2.recvs.push_back(std::move(pr));
      FieldRegistration dead_src;
      if (me_proxy) {
        const Rebuilt& rb = rebuilt.at(dk);
        const detail::FieldMeta* fm = find_meta(rb.hdr.fields, name);
        if (fm == nullptr)
          throw UsageError("recover: dead rank's snapshot lacks field '" +
                           name + "'");
        dead_src = blob_backed_field(*fm, old_desc, d_cohort, rb.blob);
      }
      if (delta2.local_elements > 0) {
        std::vector<std::byte> buf;
        for (const auto& region : delta2.local) {
          buf.resize(static_cast<std::size_t>(region.volume()) * old_elem);
          dead_src.extract(region, buf.data());
          newf->inject(region, buf.data());
        }
        const std::uint64_t lb =
            static_cast<std::uint64_t>(delta2.local_elements) * old_elem;
        stats.local_bytes += lb;
        loc_bytes.add(lb);
      }
      if (wire2.sends.empty() && wire2.recvs.empty()) continue;
      sched::Coupling cpl2;
      cpl2.channel = live;
      cpl2.src_ranks = from2;
      cpl2.dst_ranks = to1;
      cpl2.recv_timeout_ms = slice;
      core::ReliableExchange x2;
      x2.schedule = &wire2;
      x2.src = me_proxy ? &dead_src : nullptr;
      x2.dst = newf;
      x2.coupling = &cpl2;
      x2.data_tag = tag2;
      x2.ack_tag = tag2 + 1;
      x2.commit_tag = tag2 + 2;
      x2.timeout_ms = slice;
      std::uint64_t serial2 = 0;
      x2.serial = &serial2;
      bool ok = false;
      for (int a = 0; a < attempts && !ok; ++a) {
        if (a > 0) mig_retries.add(1);
        if (const auto moved = core::run_reliable_attempt(x2)) {
          stats.migrated_bytes += moved->bytes;
          mig_bytes.add(moved->bytes);
          ok = true;
        }
      }
      if (!ok)
        throw core::TransferError(
            "recover: rebuilt-state migration of field '" + name +
            "' (dead rank " + std::to_string(dk) + ") failed after " +
            std::to_string(attempts) + " attempts");
    }

    if (my_new >= 0) {
      FieldRegistration reg = std::move(incoming.at(name));
      reg.descriptor = new_desc;  // stamped, live-comm-agreed copy
      new_regs.emplace(name, std::move(reg));
      incoming.erase(name);
    }
  }
}

}  // namespace

RecoverStats RedundancyGroup::recover(
    const Layout& new_layout, std::vector<FieldRegistration> new_fields,
    int timeout_ms, int max_retries) {
  auto& comp = *component_;
  const std::int64_t t0 = trace::now_ns();
  trace::Span span("redundancy.rebuild", "redundancy");
  rt::Communicator old_channel = comp.channel();
  rt::Universe* uni = old_channel.universe();
  const int eff_timeout = timeout_ms >= 0 ? timeout_ms : opts_.timeout_ms;
  const int eff_retries = max_retries >= 0 ? max_retries : opts_.max_retries;

  // 1. Survivor rendezvous. The live communicator's membership — not each
  // rank's local reading of the death flags, which can race a second kill —
  // is the authoritative agreement on who is dead.
  if (uni->dead() == 0)
    throw UsageError("recover: the universe reports no dead ranks");
  rt::Communicator live =
      old_channel.split_live(0, old_channel.rank(), eff_timeout);
  std::map<int, int> old_by_uid;
  for (int r = 0; r < old_channel.size(); ++r)
    old_by_uid[old_channel.world_rank(r)] = r;
  std::vector<int> old_of_live(static_cast<std::size_t>(live.size()));
  std::vector<int> live_of_old(static_cast<std::size_t>(old_channel.size()),
                               -1);
  for (int lr = 0; lr < live.size(); ++lr) {
    const int orank = old_by_uid.at(live.world_rank(lr));
    old_of_live[static_cast<std::size_t>(lr)] = orank;
    live_of_old[static_cast<std::size_t>(orank)] = lr;
  }
  const int me_old = old_of_live[static_cast<std::size_t>(live.rank())];

  RecoverStats stats;
  for (int r = 0; r < old_channel.size(); ++r)
    if (live_of_old[static_cast<std::size_t>(r)] < 0)
      stats.dead_channel_ranks.push_back(r);
  if (stats.dead_channel_ranks.empty())
    throw UsageError("recover: every channel rank is still live");

  // 2. Argument agreement: the new layout must be byte-identical on every
  // live rank (it seeds collectives and tag assignment below).
  {
    rt::PackBuffer b;
    if (live.rank() == 0) {
      b.pack(new_layout.side0);
      b.pack(new_layout.side1);
    }
    auto bytes = live.bcast(std::move(b).take_buffer(), 0);
    rt::UnpackBuffer u(bytes);
    if (u.unpack_vector<int>() != new_layout.side0 ||
        u.unpack_vector<int>() != new_layout.side1)
      throw UsageError("recover: new layout disagrees across live ranks");
  }
  new_layout.validate(old_channel.size());
  for (int s = 0; s < 2; ++s)
    for (int r : new_layout.side(s))
      if (live_of_old[static_cast<std::size_t>(r)] < 0)
        throw UsageError("recover: new layout lists dead channel rank " +
                         std::to_string(r));

  // 3. Parity coverage. Every live MEMBER must hold an encode epoch for the
  // current layout, and the epochs must agree (encode is member-collective,
  // so they do unless a member skipped one).
  const Layout old_layout = comp.layout();
  const bool covered = comp.is_member() && state_ != nullptr &&
                       state_->layout.side0 == old_layout.side0 &&
                       state_->layout.side1 == old_layout.side1;
  const std::uint64_t mine = covered ? state_->epoch : 0;
  const auto lo = live.allreduce(
      comp.is_member() ? mine : ~std::uint64_t{0},
      [](std::uint64_t a, std::uint64_t b) { return a < b ? a : b; });
  const auto hi = live.allreduce(
      comp.is_member() ? mine : std::uint64_t{0},
      [](std::uint64_t a, std::uint64_t b) { return a < b ? b : a; });

  std::vector<int> dead_members;
  for (int d : stats.dead_channel_ranks)
    if (old_layout.side_of(d) >= 0) dead_members.push_back(d);
  if (lo == 0 || lo == ~std::uint64_t{0} || lo != hi)
    throw RebuildError(
        "recover: no common encode epoch covers the current layout — "
        "encode() was never run, predates a layout change, or was skipped "
        "by a member");

  // 4. Tolerance: one death per parity group. A second death in the same
  // group takes both the data and the parity covering it.
  const auto groups = make_groups(old_layout, opts_.group_size);
  std::map<int, int> proxy_of;  // dead member -> proxy's LIVE rank
  for (int d : dead_members) {
    const std::vector<int>* g = group_containing(groups, d);
    if (g == nullptr)
      throw UsageError("recover: dead rank " + std::to_string(d) +
                       " is not in any parity group");
    std::vector<int> survivors;
    std::vector<int> lost;
    for (int r : *g)
      (live_of_old[static_cast<std::size_t>(r)] >= 0 ? survivors : lost)
          .push_back(r);
    if (lost.size() > 1) {
      std::string who;
      for (int r : lost) who += (who.empty() ? "" : ", ") + std::to_string(r);
      throw RebuildError(
          "recover: ranks " + who +
          " share one parity group; XOR parity tolerates one death per "
          "group (group_size=" +
          std::to_string(opts_.group_size) + ")");
    }
    proxy_of[d] = live_of_old[static_cast<std::size_t>(survivors.front())];
  }

  // 5. Rebuild each dead member's blob at its proxy: survivors of its group
  // re-shuffle the chunks their parities consumed at encode, XOR them out,
  // and ship the recovered chunks to the proxy for reassembly. Collectives
  // on the live comm (alltoall: fault-exempt reserved tags), one round per
  // dead member, every live rank participating (empty payloads outside the
  // group).
  std::map<int, Rebuilt> rebuilt;
  static trace::Counter& rebuilt_ctr =
      trace::counter("redundancy.rebuilt_bytes");
  for (int d : dead_members) {
    const std::vector<int>& g = *group_containing(groups, d);
    const int m = static_cast<int>(g.size());
    const int pd = index_of(d, g);
    std::vector<int> survivors;
    for (int r : g)
      if (live_of_old[static_cast<std::size_t>(r)] >= 0)
        survivors.push_back(r);
    const int proxy_live = proxy_of.at(d);
    const bool i_survive = index_of(me_old, survivors) >= 0;
    const int my_pos = i_survive ? index_of(me_old, g) : -1;

    // Phase A: survivor pair shuffle (shuffile: move surviving blocks to
    // where the rebuild needs them). Survivor j sends each other survivor h
    // the chunk of j's blob that h's parity consumed.
    std::vector<Buffer> ship(static_cast<std::size_t>(live.size()));
    if (i_survive) {
      const ChunkGeom gmine = geom(state_->blob.size(), m);
      for (int h_old : survivors) {
        if (h_old == me_old) continue;
        const int ph = index_of(h_old, g);
        const int c = (ph - my_pos - 1 + m) % m;
        const auto [coff, clen] = gmine.chunk(c);
        rt::PackBuffer b;
        b.pack(clen);
        b.pack_raw(state_->blob.span().subspan(coff, clen));
        ship[static_cast<std::size_t>(
            live_of_old[static_cast<std::size_t>(h_old)])] =
            std::move(b).take_buffer();
      }
    }
    std::vector<Buffer> got = live.alltoall(std::move(ship));

    // Phase B: XOR the survivors' chunks out of my parity; the residue is
    // the dead rank's chunk my parity covered (redset: rebuild the missing
    // block from the XOR of the stripe).
    Buffer my_piece;
    int my_chunk = -1;
    if (i_survive) {
      std::vector<std::byte> acc = state_->parity;
      for (int j_old : survivors) {
        if (j_old == me_old) continue;
        rt::UnpackBuffer u(
            got[static_cast<std::size_t>(
                live_of_old[static_cast<std::size_t>(j_old)])]);
        const auto clen = u.unpack<std::uint64_t>();
        xor_into(acc, u.unpack_raw(clen));
      }
      my_chunk = (my_pos - pd - 1 + m) % m;
      const detail::PeerHeader& hdr = state_->peers.at(d);
      const auto [doff, dlen] = geom(hdr.blob_size, m).chunk(my_chunk);
      (void)doff;
      // Zero-extension padded the parity to the longest contribution; the
      // dead rank's chunk is a prefix of it.
      acc.resize(static_cast<std::size_t>(dlen));
      my_piece = Buffer(std::move(acc));
    }

    // Phase C: recovered chunks converge on the proxy, which reassembles
    // the dead rank's blob (its own chunk folded in locally).
    std::vector<Buffer> ship2(static_cast<std::size_t>(live.size()));
    if (i_survive && live.rank() != proxy_live) {
      rt::PackBuffer b;
      b.pack(static_cast<std::int32_t>(my_chunk));
      b.pack(static_cast<std::uint64_t>(my_piece.size()));
      b.pack_raw(my_piece.span());
      ship2[static_cast<std::size_t>(proxy_live)] = std::move(b).take_buffer();
    }
    std::vector<Buffer> got2 = live.alltoall(std::move(ship2));
    if (live.rank() == proxy_live) {
      const detail::PeerHeader& hdr = state_->peers.at(d);
      const ChunkGeom gd = geom(hdr.blob_size, m);
      std::vector<std::byte> blob(static_cast<std::size_t>(hdr.blob_size),
                                  std::byte{0});
      auto place = [&](int c, std::span<const std::byte> bytes) {
        const auto [off, clen] = gd.chunk(c);
        if (bytes.size() != clen)
          throw UsageError("recover: rebuilt chunk size mismatch");
        if (clen > 0) std::memcpy(blob.data() + off, bytes.data(), clen);
      };
      place(my_chunk, my_piece.span());
      for (int j_old : survivors) {
        if (j_old == me_old) continue;
        rt::UnpackBuffer u(
            got2[static_cast<std::size_t>(
                live_of_old[static_cast<std::size_t>(j_old)])]);
        const auto c = u.unpack<std::int32_t>();
        const auto len = u.unpack<std::uint64_t>();
        place(c, u.unpack_raw(len));
      }
      Rebuilt rb;
      rb.blob = Buffer(std::move(blob));
      rb.hdr = hdr;
      stats.rebuilt_bytes += hdr.blob_size;
      rebuilt_ctr.add(hdr.blob_size);
      rebuilt.emplace(d, std::move(rb));
    }
  }

  // 6. Redistribute everything onto the new layout: snapshot state from
  // survivors, rebuilt blobs from proxies. Same flow as a rescale migration,
  // but over the live comm and with per-dead-slot exchanges.
  const std::uint64_t repoch = comp.begin_recovery_epoch();
  const int new_side_old = new_layout.side_of(me_old);
  std::map<std::string, FieldRegistration> incoming;
  for (auto& f : new_fields) {
    if (new_side_old < 0)
      throw UsageError("recover: ranks that are spectators under the new "
                       "layout must not pass field registrations");
    if (f.name.empty()) throw UsageError("field name must not be empty");
    if (!f.descriptor) throw UsageError("field needs a descriptor");
    if (f.elem_size == 0) throw UsageError("field elem_size must be > 0");
    const auto new_cohort_size =
        static_cast<int>(new_layout.side(new_side_old).size());
    if (f.descriptor->nranks() != new_cohort_size)
      throw UsageError("recover: field '" + f.name + "' is decomposed over " +
                       std::to_string(f.descriptor->nranks()) +
                       " ranks but the new side has " +
                       std::to_string(new_cohort_size));
    const std::string name = f.name;
    if (!incoming.emplace(name, std::move(f)).second)
      throw UsageError("recover: field '" + name + "' passed twice");
  }

  std::map<std::string, FieldRegistration> new_regs;
  int tag_counter = 0;
  for (int s = 0; s < 2; ++s)
    migrate_recovered_side(comp, s, old_layout, new_layout, live_of_old, live,
                           me_old, dead_members, rebuilt, proxy_of,
                           state_.get(), repoch, incoming, new_regs,
                           new_side_old, eff_timeout, eff_retries,
                           tag_counter, stats);
  if (!incoming.empty())
    throw UsageError("recover: field '" + incoming.begin()->first +
                     "' is not a currently registered field of this rank's "
                     "new side");

  // 7. Splice: translate the layout into the live comm's numbering and swap
  // the component onto it (subset cohorts, connection re-establishment,
  // schedule-cache retirement).
  Layout live_layout;
  for (int r : new_layout.side0)
    live_layout.side0.push_back(live_of_old[static_cast<std::size_t>(r)]);
  for (int r : new_layout.side1)
    live_layout.side1.push_back(live_of_old[static_cast<std::size_t>(r)]);
  comp.splice_recovered(live, std::move(live_layout), std::move(new_regs));

  // The encode epoch covered the pre-recovery layout; it is spent.
  state_.reset();
  static trace::Counter& recoveries = trace::counter("redundancy.recoveries");
  recoveries.add(1);
  stats.recover_ns = trace::now_ns() - t0;
  return stats;
}

}  // namespace mxn::redundancy
