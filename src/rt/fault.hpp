#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace mxn::rt {

/// Deterministic, seeded chaos for one spawn (docs/FAULTS.md). A plan is
/// attached via SpawnOptions::faults (or the MXN_FAULTS environment
/// variable) and interpreted at the mailbox choke-point every message and
/// every blocking operation passes through, so every layer built on the
/// runtime — core M×N, PRMI, DCA, InterComm, MCT — inherits the chaos.
///
/// Determinism: each fault decision is a pure hash of (seed, universe rank,
/// that rank's operation counter), never of wall-clock time or thread
/// interleaving. Two runs of the same program with the same plan inject the
/// same faults at the same points of each rank's program order.
/// One scheduled kill: `rank` dies (sticky KilledError) at its `after`-th
/// counted operation. Negative values disable the entry.
struct KillSpec {
  int rank = -1;
  int after = -1;

  friend bool operator==(const KillSpec&, const KillSpec&) = default;
};

struct FaultPlan {
  std::uint64_t seed = 1;

  // Per-message fates, evaluated in this order; probabilities in [0, 1].
  double drop = 0;     // message silently discarded
  double dup = 0;      // message delivered twice
  double reorder = 0;  // message queue-jumps ahead of already-queued ones
  double delay = 0;    // sender sleeps delay_ms before delivery
  int delay_ms = 1;

  // Kill `kill_rank` when it reaches its `kill_after`-th counted operation
  // (blocking sends + blocking receives, in that rank's program order).
  // Negative values disable the kill. Legacy single-kill pair, kept for
  // back-compat; merged with `kills` by all_kills().
  int kill_rank = -1;
  int kill_after = -1;

  // Multi-kill list ("kill=2@40,5@90" in the spec syntax). Each entry kills
  // one rank at that rank's own operation count, so a plan can exceed any
  // redundancy scheme's tolerance (docs/REDUNDANCY.md).
  std::vector<KillSpec> kills;

  // Faults apply only to messages with tag >= min_tag. The default spares
  // nothing user-visible; internal collective tags (< 0) are always spared
  // so a plan cannot corrupt barrier/bcast plumbing it has no model of.
  int min_tag = 0;

  /// All scheduled kills: the legacy kill_rank/kill_after pair (when both are
  /// set) followed by `kills`. If one rank appears twice, the earliest
  /// operation count wins.
  [[nodiscard]] std::vector<KillSpec> all_kills() const;

  [[nodiscard]] bool enabled() const {
    return drop > 0 || dup > 0 || reorder > 0 || delay > 0 ||
           !all_kills().empty();
  }

  /// Parse "key=value[,key=value...]" — the MXN_FAULTS syntax, e.g.
  /// "seed=7,drop=0.05,dup=0.05,kill=2@40,5@90". A "kill=" value is a list
  /// of rank@after entries (comma-separated items after a "kill=" key that
  /// contain no '=' continue the kill list); the legacy
  /// "kill_rank=2,kill_after=40" keys are still accepted. Unknown keys and
  /// malformed values throw UsageError.
  static FaultPlan parse(const std::string& spec);

  /// Plan from MXN_FAULTS, if the variable is set and non-empty.
  static std::optional<FaultPlan> from_env();

  [[nodiscard]] std::string to_string() const;
};

/// What to do with one message about to be delivered.
enum class FaultAction : std::uint8_t { None, Drop, Duplicate, Reorder, Delay };

/// Per-universe interpreter of a FaultPlan. Thread-safe: per-rank atomic
/// counters, immutable plan. Every injected fault increments a counter in
/// the trace registry ("fault.dropped", "fault.duplicated", "fault.reordered",
/// "fault.delayed", "fault.killed") and records a trace instant, so chaos
/// runs are auditable in the Chrome/Perfetto export.
class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, int nranks);

  /// Entry hook of every counted operation (blocking send/recv) of `rank`.
  /// From the rank's kill_after-th operation on, every call throws
  /// KilledError — the death is sticky, so user code that catches the error
  /// cannot keep communicating on a "dead" rank.
  void on_op(int rank);

  /// Decide the fate of a message `rank` is sending with `tag`. Counts and
  /// traces the injected fault (Drop/Duplicate/Reorder are recorded here;
  /// the caller enacts them).
  FaultAction on_send(int rank, int tag);

  [[nodiscard]] int delay_ms() const { return plan_.delay_ms; }
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  [[nodiscard]] double uniform(int rank, std::uint64_t op) const;

  FaultPlan plan_;
  // Indexed by universe rank: counted ops (kill clock) and send decisions.
  std::vector<std::atomic<std::uint64_t>> ops_;
  std::vector<std::atomic<std::uint64_t>> sends_;
  // Indexed by universe rank: the operation count at which the rank dies,
  // or -1 for immortal ranks. Built from plan.all_kills().
  std::vector<int> kill_at_;
  std::atomic<bool> killed_{false};
};

}  // namespace mxn::rt
