#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace mxn::rt {

/// Deterministic, seeded chaos for one spawn (docs/FAULTS.md). A plan is
/// attached via SpawnOptions::faults (or the MXN_FAULTS environment
/// variable) and interpreted at the mailbox choke-point every message and
/// every blocking operation passes through, so every layer built on the
/// runtime — core M×N, PRMI, DCA, InterComm, MCT — inherits the chaos.
///
/// Determinism: each fault decision is a pure hash of (seed, universe rank,
/// that rank's operation counter), never of wall-clock time or thread
/// interleaving. Two runs of the same program with the same plan inject the
/// same faults at the same points of each rank's program order.
struct FaultPlan {
  std::uint64_t seed = 1;

  // Per-message fates, evaluated in this order; probabilities in [0, 1].
  double drop = 0;     // message silently discarded
  double dup = 0;      // message delivered twice
  double reorder = 0;  // message queue-jumps ahead of already-queued ones
  double delay = 0;    // sender sleeps delay_ms before delivery
  int delay_ms = 1;

  // Kill `kill_rank` when it reaches its `kill_after`-th counted operation
  // (blocking sends + blocking receives, in that rank's program order).
  // Negative values disable the kill.
  int kill_rank = -1;
  int kill_after = -1;

  // Faults apply only to messages with tag >= min_tag. The default spares
  // nothing user-visible; internal collective tags (< 0) are always spared
  // so a plan cannot corrupt barrier/bcast plumbing it has no model of.
  int min_tag = 0;

  [[nodiscard]] bool enabled() const {
    return drop > 0 || dup > 0 || reorder > 0 || delay > 0 ||
           (kill_rank >= 0 && kill_after >= 0);
  }

  /// Parse "key=value[,key=value...]" — the MXN_FAULTS syntax, e.g.
  /// "seed=7,drop=0.05,dup=0.05,kill_rank=2,kill_after=40". Unknown keys
  /// and malformed values throw UsageError.
  static FaultPlan parse(const std::string& spec);

  /// Plan from MXN_FAULTS, if the variable is set and non-empty.
  static std::optional<FaultPlan> from_env();

  [[nodiscard]] std::string to_string() const;
};

/// What to do with one message about to be delivered.
enum class FaultAction : std::uint8_t { None, Drop, Duplicate, Reorder, Delay };

/// Per-universe interpreter of a FaultPlan. Thread-safe: per-rank atomic
/// counters, immutable plan. Every injected fault increments a counter in
/// the trace registry ("fault.dropped", "fault.duplicated", "fault.reordered",
/// "fault.delayed", "fault.killed") and records a trace instant, so chaos
/// runs are auditable in the Chrome/Perfetto export.
class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, int nranks);

  /// Entry hook of every counted operation (blocking send/recv) of `rank`.
  /// From the rank's kill_after-th operation on, every call throws
  /// KilledError — the death is sticky, so user code that catches the error
  /// cannot keep communicating on a "dead" rank.
  void on_op(int rank);

  /// Decide the fate of a message `rank` is sending with `tag`. Counts and
  /// traces the injected fault (Drop/Duplicate/Reorder are recorded here;
  /// the caller enacts them).
  FaultAction on_send(int rank, int tag);

  [[nodiscard]] int delay_ms() const { return plan_.delay_ms; }
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  [[nodiscard]] double uniform(int rank, std::uint64_t op) const;

  FaultPlan plan_;
  // Indexed by universe rank: counted ops (kill clock) and send decisions.
  std::vector<std::atomic<std::uint64_t>> ops_;
  std::vector<std::atomic<std::uint64_t>> sends_;
  std::atomic<bool> killed_{false};
};

}  // namespace mxn::rt
