#include "rt/runtime.hpp"

#include <exception>
#include <memory>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "rt/error.hpp"
#include "rt/universe.hpp"
#include "trace/trace.hpp"

namespace mxn::rt {

void spawn(int nprocs, const std::function<void(Communicator&)>& fn,
           const SpawnOptions& opts) {
  if (nprocs <= 0) throw UsageError("spawn: nprocs must be positive");
  if (opts.trace || trace::env_enabled()) trace::set_enabled(true);

  auto uni = std::make_unique<Universe>(nprocs, opts.deadlock_timeout_ms,
                                        opts.default_recv_timeout_ms);
  const std::optional<FaultPlan> plan =
      opts.faults ? opts.faults : FaultPlan::from_env();
  if (plan && plan->enabled())
    uni->set_faults(std::make_unique<FaultInjector>(*plan, nprocs));

  std::vector<int> ids(nprocs);
  std::iota(ids.begin(), ids.end(), 0);
  auto world = std::make_shared<detail::CommState>(uni.get(), std::move(ids));

  std::mutex err_mu;
  std::exception_ptr first_error;
  std::exception_ptr kill_error;

  std::vector<std::thread> threads;
  threads.reserve(nprocs);
  for (int r = 0; r < nprocs; ++r) {
    threads.emplace_back([&, r] {
      trace::set_thread_rank(r);
      Communicator comm = Communicator::attach(world, r);
      try {
        fn(comm);
      } catch (const AbortError&) {
        // A sibling failed first; this thread was unwound deliberately.
      } catch (const KilledError&) {
        // Fault-injected death is SILENT: the siblings are not aborted —
        // they must detect the loss through their own deadlines or the
        // watchdog, exactly like peers of a crashed MPI process.
        {
          std::lock_guard lock(err_mu);
          if (!kill_error) kill_error = std::current_exception();
        }
        uni->note_death_of(r);
      } catch (...) {
        {
          std::lock_guard lock(err_mu);
          if (!first_error) first_error = std::current_exception();
        }
        uni->abort();
      }
    });
  }
  for (auto& t : threads) t.join();

  // A sibling's real error (often the Timeout/Deadlock the kill provoked)
  // outranks the kill itself, but a kill alone still surfaces as typed.
  if (first_error) std::rethrow_exception(first_error);
  if (kill_error) std::rethrow_exception(kill_error);
}

}  // namespace mxn::rt
