#pragma once

#include <functional>
#include <optional>

#include "rt/communicator.hpp"
#include "rt/fault.hpp"

namespace mxn::rt {

/// Options controlling one spawn().
struct SpawnOptions {
  /// When > 0, the watchdog declares deadlock after all threads have been
  /// blocked in matched receives with no message traffic for this long.
  int deadlock_timeout_ms = 0;

  /// When > 0, every blocking receive/split of the spawn that does not pass
  /// an explicit timeout throws TimeoutError after this many ms without a
  /// match. Unlike the watchdog (which needs EVERY rank idle), this is a
  /// per-call deadline: one stalled rank fails fast even while its siblings
  /// keep working — the knob that turns lost messages into typed errors
  /// instead of hangs (docs/FAULTS.md).
  int default_recv_timeout_ms = 0;

  /// Deterministic fault injection for this spawn (docs/FAULTS.md). When
  /// unset, the MXN_FAULTS environment variable is consulted instead.
  std::optional<FaultPlan> faults;

  /// Turn on trace-event recording for this spawn (see
  /// docs/OBSERVABILITY.md). The MXN_TRACE environment variable enables it
  /// process-wide regardless of this flag. Once enabled, recording stays on
  /// so the caller can export with trace::write_chrome_trace() after
  /// spawn() returns.
  bool trace = false;
};

/// Run `fn` on `nprocs` cooperating "processes" (threads with private
/// mailboxes, exactly the communication structure of an MPI job on a single
/// node — see DESIGN.md, Substitutions). Blocks until every process returns.
///
/// If any process throws, the universe aborts: siblings blocked in receives
/// unwind with AbortError (which is swallowed) and the first real exception
/// is rethrown from spawn() on the caller's thread.
void spawn(int nprocs, const std::function<void(Communicator&)>& fn,
           const SpawnOptions& opts = {});

}  // namespace mxn::rt
