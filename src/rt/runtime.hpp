#pragma once

#include <functional>

#include "rt/communicator.hpp"

namespace mxn::rt {

/// Options controlling one spawn().
struct SpawnOptions {
  /// When > 0, the watchdog declares deadlock after all threads have been
  /// blocked in matched receives with no message traffic for this long.
  int deadlock_timeout_ms = 0;

  /// Turn on trace-event recording for this spawn (see
  /// docs/OBSERVABILITY.md). The MXN_TRACE environment variable enables it
  /// process-wide regardless of this flag. Once enabled, recording stays on
  /// so the caller can export with trace::write_chrome_trace() after
  /// spawn() returns.
  bool trace = false;
};

/// Run `fn` on `nprocs` cooperating "processes" (threads with private
/// mailboxes, exactly the communication structure of an MPI job on a single
/// node — see DESIGN.md, Substitutions). Blocks until every process returns.
///
/// If any process throws, the universe aborts: siblings blocked in receives
/// unwind with AbortError (which is swallowed) and the first real exception
/// is rethrown from spawn() on the caller's thread.
void spawn(int nprocs, const std::function<void(Communicator&)>& fn,
           const SpawnOptions& opts = {});

}  // namespace mxn::rt
