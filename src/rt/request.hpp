#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "rt/mailbox.hpp"
#include "rt/message.hpp"

namespace mxn::rt {

/// Handle for a non-blocking operation, in the spirit of MPI_Request.
///
/// Sends in this runtime are eager (the payload block is moved — or
/// refcount-shared — into the destination mailbox at send time, no byte
/// copy), so an isend's request is born complete. An irecv's request
/// performs the matched receive lazily in wait()/test().
///
/// Completed requests are sticky: once a receive has matched, every later
/// wait()/test() returns the same message again (the payload is a
/// refcounted Buffer, so re-reading shares the block rather than copying
/// it). Copies of one Request share state, MPI_Request-style.
class Request {
 public:
  Request() = default;

  static Request completed_send() {
    Request r;
    r.st_ = std::make_shared<State>();
    r.st_->done = true;
    return r;
  }

  static Request pending_recv(Mailbox* box, int src, int tag) {
    Request r;
    r.st_ = std::make_shared<State>();
    r.st_->box = box;
    r.st_->src = src;
    r.st_->tag = tag;
    return r;
  }

  /// Block until complete. For receives, returns the matched message; for
  /// sends, returns an empty message. `timeout_ms` bounds the wait like
  /// Communicator::recv: < 0 uses the spawn-wide default, 0 waits forever,
  /// > 0 throws TimeoutError on expiry (the request stays pending and can
  /// be waited on again).
  Message wait(int timeout_ms = -1) {
    if (!st_) return {};
    if (!st_->done) {
      st_->msg = st_->box->get(st_->src, st_->tag, timeout_ms);
      st_->done = true;
    }
    // Copy, don't move: the request stays completed-with-payload so a
    // repeated wait()/test() observes the same message instead of a
    // moved-from empty one. The payload copy is a refcount bump.
    return st_->msg;
  }

  /// Poll for completion; on success copies the message into *out
  /// (refcount-shared payload — the request keeps its result).
  bool test(Message* out = nullptr) {
    if (!st_) return true;
    if (!st_->done) {
      auto m = st_->box->try_get(st_->src, st_->tag);
      if (!m) return false;
      st_->msg = std::move(*m);
      st_->done = true;
    }
    if (out) *out = st_->msg;
    return true;
  }

  [[nodiscard]] bool valid() const { return st_ != nullptr; }

 private:
  struct State {
    Mailbox* box = nullptr;
    int src = kAnySource;
    int tag = kAnyTag;
    bool done = false;
    Message msg;
  };
  std::shared_ptr<State> st_;
};

/// Wait for every request; returns the messages in request order.
/// `timeout_ms` is the per-request deadline (same semantics as
/// Request::wait); on expiry the TimeoutError propagates and the already
/// completed requests keep their results.
inline std::vector<Message> wait_all(std::vector<Request>& reqs,
                                     int timeout_ms = -1) {
  std::vector<Message> out;
  out.reserve(reqs.size());
  for (auto& r : reqs) out.push_back(r.wait(timeout_ms));
  return out;
}

}  // namespace mxn::rt
