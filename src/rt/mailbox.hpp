#pragma once

#include <condition_variable>
#include <functional>
#include <deque>
#include <mutex>
#include <optional>

#include "rt/message.hpp"
#include "rt/universe.hpp"

namespace mxn::rt {

/// Per-rank, per-communicator inbox. Receives match on (source, tag) with
/// wildcard support; messages from the same (source, tag) are delivered in
/// FIFO order, which is what makes tag-reuse by consecutive collective
/// operations safe (all ranks issue collectives in the same program order).
class Mailbox {
 public:
  /// `owner_rank` is the universe rank of the thread that receives from this
  /// box; the fault layer uses it as the kill clock for blocking receives.
  Mailbox(Universe* uni, int owner_rank);

  ~Mailbox();

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Deposit a message (called from the sending thread). With
  /// `reorder` set (fault injection), the message queue-jumps ahead of
  /// everything already waiting, violating per-(src, tag) FIFO on purpose.
  void put(Message msg, bool reorder = false);

  /// Blocking matched receive. Throws AbortError if the universe aborted,
  /// DeadlockError if the watchdog trips, TimeoutError when the deadline
  /// passes (timeout_ms < 0 selects the spawn-wide default, 0 = none).
  Message get(int src, int tag, int timeout_ms = -1);

  /// Non-blocking matched receive.
  std::optional<Message> try_get(int src, int tag);

  /// Blocking receive matched on (src, tag) AND an arbitrary payload
  /// predicate — the MPI_Mprobe analogue frameworks use to peek envelopes
  /// before committing to a message. Among matches, FIFO order holds.
  Message get_if(int src, int tag,
                 const std::function<bool(const Message&)>& pred,
                 int timeout_ms = -1);

  /// Is there a matching message queued right now? (MPI_Iprobe analogue.)
  bool probe(int src, int tag);

  /// Wake any blocked waiter so it can re-check abort/deadlock flags.
  void notify();

 private:
  // Must hold mu_. Returns index into q_ of the first match, or -1.
  int find_match(int src, int tag) const;
  int find_match_if(int src, int tag,
                    const std::function<bool(const Message&)>& pred) const;

  // Pop q_[idx]; must hold mu_.
  Message take_at(int idx);

  Universe* uni_;
  int owner_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> q_;
};

}  // namespace mxn::rt
