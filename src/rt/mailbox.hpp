#pragma once

#include <condition_variable>
#include <functional>
#include <deque>
#include <mutex>
#include <optional>

#include "rt/message.hpp"
#include "rt/universe.hpp"

namespace mxn::rt {

/// Per-rank, per-communicator inbox. Receives match on (source, tag) with
/// wildcard support; messages from the same (source, tag) are delivered in
/// FIFO order, which is what makes tag-reuse by consecutive collective
/// operations safe (all ranks issue collectives in the same program order).
class Mailbox {
 public:
  explicit Mailbox(Universe* uni);
  ~Mailbox();

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Deposit a message (called from the sending thread).
  void put(Message msg);

  /// Blocking matched receive. Throws AbortError if the universe aborted,
  /// DeadlockError if the watchdog trips while we wait.
  Message get(int src, int tag);

  /// Non-blocking matched receive.
  std::optional<Message> try_get(int src, int tag);

  /// Blocking receive matched on (src, tag) AND an arbitrary payload
  /// predicate — the MPI_Mprobe analogue frameworks use to peek envelopes
  /// before committing to a message. Among matches, FIFO order holds.
  Message get_if(int src, int tag,
                 const std::function<bool(const Message&)>& pred);

  /// Is there a matching message queued right now? (MPI_Iprobe analogue.)
  bool probe(int src, int tag);

  /// Wake any blocked waiter so it can re-check abort/deadlock flags.
  void notify();

 private:
  // Must hold mu_. Returns index into q_ of the first match, or -1.
  int find_match(int src, int tag) const;
  int find_match_if(int src, int tag,
                    const std::function<bool(const Message&)>& pred) const;

  Universe* uni_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> q_;
};

}  // namespace mxn::rt
