#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>

#include "rt/message.hpp"
#include "rt/universe.hpp"

namespace mxn::rt {

/// Per-rank, per-communicator inbox. Receives match on (source, tag) with
/// wildcard support; messages from the same (source, tag) are delivered in
/// FIFO order, which is what makes tag-reuse by consecutive collective
/// operations safe (all ranks issue collectives in the same program order).
///
/// Storage is SHARDED into one lane per source rank (plus an overflow lane
/// for out-of-range sources), so concurrent senders never serialize on a
/// single inbox mutex: each lane has its own micro-lock whose only possible
/// contention is the box's single consumer scanning while that one producer
/// deposits ("rt.mailbox.lane_contention" counts those collisions, both
/// sides). A source-specific receive touches exactly its sender's lane; a
/// wildcard receive round-robins over the lanes, skipping empty ones via a
/// per-lane message count, so an idle 64-peer inbox costs 64 atomic loads
/// to scan, not 64 mutex acquisitions.
///
/// Consumer blocking uses a separate doorbell (mutex + condvar): a producer
/// rings it only when the consumer has announced it is waiting. The
/// waiting-flag / lane-count handshake is a seq_cst Dekker pair, so either
/// the producer observes the waiting consumer and rings, or the consumer's
/// scan observes the freshly deposited message — never neither (see the
/// comment on waiting_ in mailbox.cpp).
///
/// Ordering: per-(src, tag) FIFO holds per lane exactly as it did in the
/// single-queue inbox. Wildcard receives pick among lanes in round-robin
/// order rather than global arrival order — indistinguishable to callers,
/// since cross-source arrival order was already a race, and starvation-free
/// where a fixed lowest-lane-first scan would not be.
class Mailbox {
 public:
  /// `owner_rank` is the universe rank of the thread that receives from this
  /// box; the fault layer uses it as the kill clock for blocking receives.
  /// `nlanes` is the number of source ranks that get a dedicated lane
  /// (normally the communicator size); sources outside [0, nlanes) share
  /// the overflow lane, so 0 degenerates to a single-queue box.
  Mailbox(Universe* uni, int owner_rank, int nlanes = 0);

  ~Mailbox();

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Deposit a message (called from the sending thread). With
  /// `reorder` set (fault injection), the message queue-jumps ahead of
  /// everything already waiting in its lane, violating per-(src, tag) FIFO
  /// on purpose.
  void put(Message msg, bool reorder = false);

  /// Blocking matched receive. Throws AbortError if the universe aborted,
  /// DeadlockError if the watchdog trips, TimeoutError when the deadline
  /// passes (timeout_ms < 0 selects the spawn-wide default, 0 = none).
  Message get(int src, int tag, int timeout_ms = -1);

  /// Non-blocking matched receive.
  std::optional<Message> try_get(int src, int tag);

  /// Blocking receive matched on (src, tag) AND an arbitrary payload
  /// predicate — the MPI_Mprobe analogue frameworks use to peek envelopes
  /// before committing to a message. Among matches in a lane, FIFO holds.
  Message get_if(int src, int tag,
                 const std::function<bool(const Message&)>& pred,
                 int timeout_ms = -1);

  /// Is there a matching message queued right now? (MPI_Iprobe analogue.)
  bool probe(int src, int tag);

  /// Wake any blocked waiter so it can re-check abort/deadlock flags.
  void notify();

 private:
  /// One source rank's queue. `n` mirrors q.size() (updated inside mu) so
  /// scans can skip empty lanes without taking the lock; its accesses pair
  /// with waiting_ as a seq_cst Dekker handshake.
  struct Lane {
    std::mutex mu;
    std::deque<Message> q;
    std::atomic<int> n{0};
  };

  using Pred = std::function<bool(const Message&)>;

  Lane& lane_for(int src);

  /// Pop the first (src, tag, pred) match out of `ln`, if any.
  std::optional<Message> take_from(Lane& ln, int src, int tag,
                                   const Pred* pred);

  /// Pop the first match across every lane `src` may legally occupy.
  std::optional<Message> scan(int src, int tag, const Pred* pred);

  /// Shared body of get / get_if: fast-path scan, then doorbell wait.
  Message blocking_get(int src, int tag, const Pred* pred, int timeout_ms);

  Universe* uni_;
  int owner_;
  int nlanes_;                      // dedicated lanes; +1 overflow at the end
  std::unique_ptr<Lane[]> lanes_;   // nlanes_ + 1 entries

  // Doorbell: the consumer parks on bell_cv_ under bell_mu_; producers ring
  // only when waiting_ says someone is parked (or about to be).
  std::mutex bell_mu_;
  std::condition_variable bell_cv_;
  std::atomic<bool> waiting_{false};

  // Round-robin start lane for wildcard scans (consumer thread only;
  // atomic so stray cross-thread probes stay benign under TSan).
  std::atomic<int> rr_{0};
};

}  // namespace mxn::rt
