#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "rt/error.hpp"

namespace mxn::rt {

/// Record `n` bytes duplicated on the data plane. Feeds the process-wide
/// "rt.bytes_copied" counter (docs/PERFORMANCE.md): every deep copy of
/// payload bytes — packing into a send buffer, span-to-owned-buffer copies,
/// copies out of a payload into a fresh container — is accounted here.
/// Zero-copy hand-offs (adopting a vector, moving or refcount-sharing a
/// Buffer, injecting straight out of a received payload) add nothing.
void note_bytes_copied(std::size_t n);

/// Alignment of every pool-served payload block. 64 bytes covers a cache
/// line and the widest vector width the copy kernels dispatch to, so a
/// pooled payload can always be aliased as any fundamental T and entered
/// into the SIMD pack/unpack kernels without the misalignment fallback
/// (sched.align.fallback counts when that guarantee is missed — adopted
/// vectors and serial-framed sub-spans are the only legitimate sources).
inline constexpr std::size_t kBufferAlign = 64;

namespace detail {

/// Control block + storage of one payload. Pooled blocks (`bucket` >= 0)
/// own a bucket-sized kBufferAlign-aligned allocation via `data`; adopted
/// blocks keep the caller's vector storage (whatever operator new aligned
/// it to) and point `data` into it. `size` is the logical payload length.
/// Pooled blocks return to the pool's per-bucket freelist when the last
/// reference drops.
struct BufferBlock {
  std::atomic<std::uint32_t> refs{1};
  int bucket = -1;       // pool bucket index; -1 = unpooled (adopted/oversize)
  std::size_t size = 0;  // logical payload size (<= capacity)
  std::byte* data = nullptr;       // payload bytes
  std::vector<std::byte> adopted;  // backing store of adopted blocks
  BufferBlock* next = nullptr;     // pool freelist link
};

BufferBlock* pool_acquire(std::size_t n);
BufferBlock* adopt_block(std::vector<std::byte> v);
void block_release(BufferBlock* b);

}  // namespace detail

/// Per-bucket freelist occupancy and cumulative traffic, for tests and
/// ad-hoc inspection. hits/misses also live in the trace registry as
/// "rt.pool.hit" / "rt.pool.miss".
struct BufferPoolStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  int free_blocks = 0;  // blocks currently parked across all freelists
};

BufferPoolStats buffer_pool_stats();

/// Drop every parked freelist block (used by tests to reset pointer-reuse
/// expectations; live Buffers are unaffected).
void buffer_pool_trim();

/// Refcounted, size-bucketed, pooled byte buffer — the payload currency of
/// the zero-copy data plane (docs/PERFORMANCE.md).
///
///  - allocate() draws from a thread-safe freelist of power-of-two buckets
///    (64 B .. 16 MiB); steady-state transfers recycle blocks instead of
///    touching the allocator ("rt.pool.hit" / "rt.pool.miss" count this).
///  - Copying a Buffer copies a pointer and bumps an atomic refcount, so a
///    bcast or header fan-out delivers ONE block to N destinations.
///  - Moving a Buffer into send() transfers ownership: no byte is copied
///    between the producer's pack and the consumer's unpack.
///  - A std::vector<std::byte> converts implicitly by ADOPTING its storage
///    (zero copy), which keeps PackBuffer-built payloads cheap.
///
/// Mutation discipline: a block is writable only while its handle is the
/// sole owner (refcount 1) — mutable_data() enforces this. Once a Buffer has
/// been sent (and thus possibly shared), every holder must treat the bytes
/// as immutable, exactly like an MPI send buffer after MPI_Isend.
class Buffer {
 public:
  Buffer() = default;

  /// Adopt an owned byte vector (zero copy; the vector's storage becomes
  /// the payload). Intentionally implicit: it is the bridge from the
  /// PackBuffer / to_bytes marshal world into the data plane.
  Buffer(std::vector<std::byte> v) {
    if (!v.empty()) b_ = detail::adopt_block(std::move(v));
  }

  /// A pooled, uninitialized buffer of `n` bytes.
  static Buffer allocate(std::size_t n) {
    Buffer b;
    if (n > 0) b.b_ = detail::pool_acquire(n);
    return b;
  }

  /// A pooled buffer holding a copy of `src` (counted in rt.bytes_copied).
  static Buffer copy_of(std::span<const std::byte> src) {
    Buffer b = allocate(src.size());
    if (!src.empty()) {
      std::memcpy(b.b_->data, src.data(), src.size());
      note_bytes_copied(src.size());
    }
    return b;
  }

  Buffer(const Buffer& o) : b_(o.b_) {
    if (b_) b_->refs.fetch_add(1, std::memory_order_relaxed);
  }
  Buffer& operator=(const Buffer& o) {
    Buffer tmp(o);
    std::swap(b_, tmp.b_);
    return *this;
  }
  Buffer(Buffer&& o) noexcept : b_(o.b_) { o.b_ = nullptr; }
  Buffer& operator=(Buffer&& o) noexcept {
    if (this != &o) {
      reset();
      b_ = o.b_;
      o.b_ = nullptr;
    }
    return *this;
  }
  ~Buffer() { reset(); }

  /// Drop this reference; the last one returns the block to the pool.
  void reset() {
    if (b_ && b_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1)
      detail::block_release(b_);
    b_ = nullptr;
  }

  [[nodiscard]] std::size_t size() const { return b_ ? b_->size : 0; }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] const std::byte* data() const {
    return b_ ? b_->data : nullptr;
  }

  /// Write access; throws UsageError unless this handle is the sole owner.
  [[nodiscard]] std::byte* mutable_data() {
    if (b_ == nullptr) return nullptr;
    if (b_->refs.load(std::memory_order_acquire) != 1)
      throw UsageError("Buffer::mutable_data on a shared buffer (payloads "
                       "are immutable once sent)");
    return b_->data;
  }

  /// Reduce the logical size (sole owner only; storage is kept).
  void truncate(std::size_t n) {
    if (n > size()) throw UsageError("Buffer::truncate beyond size");
    if (b_ == nullptr) return;
    if (b_->refs.load(std::memory_order_acquire) != 1)
      throw UsageError("Buffer::truncate on a shared buffer");
    b_->size = n;
  }

  [[nodiscard]] bool unique() const {
    return b_ != nullptr && b_->refs.load(std::memory_order_acquire) == 1;
  }
  [[nodiscard]] long use_count() const {
    return b_ ? static_cast<long>(b_->refs.load(std::memory_order_acquire))
              : 0;
  }

  [[nodiscard]] std::span<const std::byte> span() const {
    return {data(), size()};
  }
  operator std::span<const std::byte>() const { return span(); }

  /// Alias the payload as a span of T without copying. Throws UsageError on
  /// a size mismatch or when the storage is not aligned for T (pooled
  /// blocks are kBufferAlign-aligned and vector storage comes from operator
  /// new, so in practice any fundamental T is aligned; a serial-framed
  /// sub-span may not be).
  template <class T>
    requires std::is_trivially_copyable_v<T>
  [[nodiscard]] std::span<const T> view() const {
    if (size() % sizeof(T) != 0)
      throw UsageError("Buffer::view: size not a multiple of sizeof(T)");
    if (reinterpret_cast<std::uintptr_t>(data()) % alignof(T) != 0)
      throw UsageError("Buffer::view: payload is not aligned for T");
    return {reinterpret_cast<const T*>(data()), size() / sizeof(T)};
  }

  /// Deep copy out (counted in rt.bytes_copied).
  [[nodiscard]] std::vector<std::byte> to_vector() const {
    note_bytes_copied(size());
    return {data(), data() + size()};
  }

 private:
  detail::BufferBlock* b_ = nullptr;
};

}  // namespace mxn::rt
