#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <map>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "rt/buffer.hpp"
#include "rt/error.hpp"

namespace mxn::rt {

/// Append-only byte buffer used to marshal method arguments and array data
/// into a message payload. Components in a distributed framework never share
/// address space, so everything that crosses a port is packed through here.
class PackBuffer {
 public:
  PackBuffer() = default;

  template <class T>
    requires std::is_trivially_copyable_v<T>
  void pack(const T& value) {
    const auto* p = reinterpret_cast<const std::byte*>(&value);
    data_.insert(data_.end(), p, p + sizeof(T));
  }

  void pack(const std::string& s) {
    pack(static_cast<std::uint64_t>(s.size()));
    const auto* p = reinterpret_cast<const std::byte*>(s.data());
    data_.insert(data_.end(), p, p + s.size());
  }

  template <class T>
    requires std::is_trivially_copyable_v<T>
  void pack_span(std::span<const T> values) {
    pack(static_cast<std::uint64_t>(values.size()));
    const auto* p = reinterpret_cast<const std::byte*>(values.data());
    data_.insert(data_.end(), p, p + values.size_bytes());
    note_bytes_copied(values.size_bytes());
  }

  template <class T>
    requires std::is_trivially_copyable_v<T>
  void pack(const std::vector<T>& values) {
    pack_span(std::span<const T>(values));
  }

  void pack(const std::vector<std::string>& values) {
    pack(static_cast<std::uint64_t>(values.size()));
    for (const auto& v : values) pack(v);
  }

  /// Raw bytes without a length prefix (caller knows the framing).
  void pack_raw(std::span<const std::byte> bytes) {
    data_.insert(data_.end(), bytes.begin(), bytes.end());
    note_bytes_copied(bytes.size());
  }

  /// Extend by `n` uninitialized bytes and return a pointer to them, so a
  /// producer can pack strided data straight into the payload instead of
  /// staging it in a temporary and pack_raw-ing it (one copy, not two).
  /// The pointer is invalidated by the next pack call.
  [[nodiscard]] std::byte* append_uninitialized(std::size_t n) {
    const std::size_t at = data_.size();
    data_.resize(at + n);
    return data_.data() + at;
  }

  [[nodiscard]] std::vector<std::byte> take() && { return std::move(data_); }

  /// Hand the marshalled bytes to the data plane without copying: the
  /// vector's storage is adopted by a refcounted Buffer, ready to be moved
  /// into send() or fanned out to several destinations.
  [[nodiscard]] Buffer take_buffer() && { return Buffer(std::move(data_)); }
  [[nodiscard]] const std::vector<std::byte>& bytes() const { return data_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

 private:
  std::vector<std::byte> data_;
};

/// Cursor over a received payload; mirror image of PackBuffer.
class UnpackBuffer {
 public:
  explicit UnpackBuffer(std::span<const std::byte> data) : data_(data) {}

  template <class T>
    requires std::is_trivially_copyable_v<T>
  T unpack() {
    T value;
    need(sizeof(T));
    std::memcpy(&value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  std::string unpack_string() {
    const auto n = unpack<std::uint64_t>();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  template <class T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> unpack_vector() {
    const auto n = unpack<std::uint64_t>();
    need(n * sizeof(T));
    std::vector<T> values(n);
    std::memcpy(values.data(), data_.data() + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    note_bytes_copied(n * sizeof(T));
    return values;
  }

  std::vector<std::string> unpack_string_vector() {
    const auto n = unpack<std::uint64_t>();
    std::vector<std::string> values;
    values.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) values.push_back(unpack_string());
    return values;
  }

  /// View of the next `n` raw bytes (no copy); advances the cursor.
  std::span<const std::byte> unpack_raw(std::size_t n) {
    need(n);
    auto view = data_.subspan(pos_, n);
    pos_ += n;
    return view;
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool empty() const { return remaining() == 0; }

 private:
  void need(std::size_t n) const {
    if (pos_ + n > data_.size())
      throw UsageError("UnpackBuffer: truncated payload");
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

/// Convenience: pack a single trivially-copyable value into a payload.
template <class T>
std::vector<std::byte> to_bytes(const T& value) {
  PackBuffer b;
  b.pack(value);
  return std::move(b).take();
}

/// Convenience: view a span of trivially-copyable values as raw bytes.
template <class T>
  requires std::is_trivially_copyable_v<T>
std::span<const std::byte> as_bytes_span(std::span<const T> values) {
  return {reinterpret_cast<const std::byte*>(values.data()),
          values.size_bytes()};
}

}  // namespace mxn::rt
