#include "rt/communicator.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "trace/trace.hpp"

namespace mxn::rt {

// --- tag-reuse safety under the log-depth collectives -----------------------
//
// Every collective kind owns one reserved negative tag (communicator.hpp),
// and consecutive collectives of the same kind on one communicator reuse it.
// That stays safe under the tree/dissemination patterns for two reasons:
//
//  1. WITHIN one collective, each ordered pair (sender, receiver) uses a
//     given tag at most once — binomial trees pair each node with a distinct
//     parent/child per round, dissemination rounds use distinct offsets, and
//     the non-power-of-two allreduce fold-in/fold-out pair exchange in
//     opposite directions first-in then out (two messages on one (src,dst)
//     pair, but the receive for the second is issued strictly after the
//     first completed, so FIFO order is the program order).
//     Recursive doubling's per-round partner exchange is two messages in
//     opposite directions — again one per ordered pair.
//  2. ACROSS consecutive collectives, the mailbox delivers per-(src, tag)
//     FIFO and the MPI rule applies: all ranks issue collectives in the same
//     program order. A receive posted by collective k for source s is
//     therefore matched by s's k-th send on that tag — even if s has raced
//     ahead into collective k+1 — because every tree/dissemination receive
//     names its source explicitly. The one wildcard receiver left, alltoall,
//     admits a message only while its sender still owes the CURRENT round a
//     payload (same owed-peer argument as the schedule executors,
//     docs/PERFORMANCE.md), so a fast peer's round-k+1 payload can never be
//     consumed by round k.

namespace detail {

CommState::CommState(Universe* u, std::vector<int> member_ids)
    : uni(u), members(std::move(member_ids)) {
  boxes.reserve(members.size());
  for (std::size_t i = 0; i < members.size(); ++i)
    boxes.push_back(std::make_unique<Mailbox>(
        uni, members[i], static_cast<int>(members.size())));
  entries.resize(members.size());
  present.resize(members.size(), 0);
  results.resize(members.size());
}

}  // namespace detail

void Communicator::check_dst(int dst, const char* op) const {
  if (dst < 0 || dst >= size())
    throw UsageError(std::string(op) + ": destination rank " +
                     std::to_string(dst) +
                     " out of range for communicator of size " +
                     std::to_string(size()));
}

void Communicator::check_user_tag(int tag) const {
  if (tag < 0)
    throw UsageError("user message tags must be >= 0 (negative tags are "
                     "reserved for collectives)");
}

void Communicator::raw_send(int dst, int tag, Buffer data, const char* op) {
  check_dst(dst, op);
  st_->messages.fetch_add(1, std::memory_order_relaxed);
  st_->bytes.fetch_add(data.size(), std::memory_order_relaxed);
  st_->uni->count_message(data.size());
  trace::instant("rt.send", "rt", data.size());
  if (dst == rank_) {
    // Self-delivery is a local queue push; it cannot meaningfully be
    // dropped, reordered or delayed, and injecting a Drop here (or ticking
    // the kill clock between the send and the matching receive) would
    // deadlock the rank waiting on its own message. Deliver directly.
    st_->boxes[dst]->put(Message{rank_, tag, std::move(data)});
    return;
  }
  if (FaultInjector* f = st_->uni->faults()) {
    const int me = st_->members[rank_];  // universe rank of the sender
    f->on_op(me);                        // kill clock; may throw KilledError
    switch (f->on_send(me, tag)) {
      case FaultAction::Drop:
        return;  // the sender believes the send completed; nothing arrives
      case FaultAction::Duplicate:
        // The duplicate shares the payload block (refcount bump, no copy).
        st_->boxes[dst]->put(Message{rank_, tag, data});
        break;
      case FaultAction::Reorder:
        st_->boxes[dst]->put(Message{rank_, tag, std::move(data)},
                             /*reorder=*/true);
        return;
      case FaultAction::Delay:
        std::this_thread::sleep_for(std::chrono::milliseconds(f->delay_ms()));
        break;
      case FaultAction::None:
        break;
    }
  }
  st_->boxes[dst]->put(Message{rank_, tag, std::move(data)});
}

void Communicator::send(int dst, int tag, Buffer data) {
  check_user_tag(tag);
  raw_send(dst, tag, std::move(data));
}

void Communicator::send(int dst, int tag, std::span<const std::byte> data) {
  check_user_tag(tag);
  raw_send(dst, tag, Buffer::copy_of(data));
}

Message Communicator::recv(int src, int tag, int timeout_ms) {
  if (src != kAnySource && (src < 0 || src >= size()))
    throw UsageError("recv: source rank out of range");
  trace::Span span("rt.recv", "rt");
  return my_box().get(src, tag, timeout_ms);
}

Message Communicator::recv_matching(
    int src, int tag, const std::function<bool(const Message&)>& pred,
    int timeout_ms) {
  if (src != kAnySource && (src < 0 || src >= size()))
    throw UsageError("recv_matching: source rank out of range");
  trace::Span span("rt.recv", "rt");
  return my_box().get_if(src, tag, pred, timeout_ms);
}

Request Communicator::isend(int dst, int tag, Buffer data) {
  send(dst, tag, std::move(data));
  return Request::completed_send();
}

Request Communicator::isend(int dst, int tag, std::span<const std::byte> data) {
  send(dst, tag, data);
  return Request::completed_send();
}

Request Communicator::irecv(int src, int tag) {
  return Request::pending_recv(&my_box(), src, tag);
}

bool Communicator::probe(int src, int tag) { return my_box().probe(src, tag); }

std::optional<Message> Communicator::try_recv(int src, int tag) {
  return my_box().try_get(src, tag);
}

void Communicator::barrier() {
  // Dissemination barrier: in round k each rank signals (rank + 2^k) mod n
  // and waits on (rank - 2^k) mod n. After ceil(log2 n) rounds every rank
  // transitively heard from every other — n*ceil(log2 n) tiny messages, but
  // no rank ever serializes more than ceil(log2 n) matched operations
  // (the old gather-to-root + release made rank 0 do 2(n-1) of them).
  const int n = size();
  if (n == 1) return;
  trace::Span span("rt.barrier", "rt", static_cast<std::uint64_t>(n));
  for (int k = 1; k < n; k <<= 1) {
    raw_send((rank_ + k) % n, detail::kTagBarrier, {}, "barrier");
    coll_recv((rank_ - k + n) % n, detail::kTagBarrier);
  }
}

Buffer Communicator::bcast(Buffer data, int root) {
  const int n = size();
  check_dst(root, "bcast(root)");
  if (n == 1) return data;
  trace::Span span("rt.bcast", "rt", data.size());
  // Binomial tree on root-relative ("virtual") ranks: vrank 0 is the root;
  // a node receives from the peer that differs in its lowest set bit, then
  // forwards to vrank + mask for every mask below that bit. Still n-1
  // messages, but depth ceil(log2 n) instead of the root pushing n-1 sends
  // — and every hop forwards a reference to the SAME payload block, so a
  // bcast performs zero deep copies no matter how wide or deep.
  const int vrank = (rank_ - root + n) % n;
  int mask = 1;
  while (mask < n) {
    if (vrank & mask) {
      Message m =
          coll_recv(((vrank - mask) + root) % n, detail::kTagBcast);
      data = std::move(m.payload);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < n)
      raw_send((vrank + mask + root) % n, detail::kTagBcast, data, "bcast");
    mask >>= 1;
  }
  return data;
}

namespace {

// Gather/allgather bundle framing: a flat sequence of
// (int32 comm rank, uint64 payload size, raw payload bytes) entries.
// Bundles concatenate by plain byte append, which is what lets an interior
// tree node forward its whole subtree as one message.
void pack_entry(PackBuffer& b, int rank, const Buffer& payload) {
  b.pack(static_cast<std::int32_t>(rank));
  b.pack(static_cast<std::uint64_t>(payload.size()));
  b.pack_raw(payload.span());
}

// Unpack a bundle into the per-source slots of `out`. Entries become
// pooled blocks of their own (one counted copy per entry — the price of
// bundling; see the latency-vs-bytes note in docs/PERFORMANCE.md).
void unpack_entries(std::span<const std::byte> bundle,
                    std::vector<Buffer>& out) {
  UnpackBuffer u(bundle);
  while (!u.empty()) {
    const int src = u.unpack<std::int32_t>();
    const auto sz = u.unpack<std::uint64_t>();
    if (src < 0 || src >= static_cast<int>(out.size()))
      throw UsageError("gather: corrupt bundle entry");
    out[src] = Buffer::copy_of(u.unpack_raw(sz));
  }
}

}  // namespace

std::vector<Buffer> Communicator::gather(Buffer data, int root) {
  trace::Span span("rt.gather", "rt", data.size());
  const int n = size();
  check_dst(root, "gather(root)");
  std::vector<Buffer> out;
  if (n == 1) {
    out.resize(1);
    out[0] = std::move(data);
    return out;
  }
  // Binomial tree toward the root (the bcast tree with arrows reversed):
  // each node collects bundles from its subtree children, appends them to
  // its own entry, and ships one message to its parent. n-1 messages, depth
  // ceil(log2 n); the root performs ceil(log2 n) matched receives instead
  // of n-1.
  const int vrank = (rank_ - root + n) % n;
  PackBuffer bundle;
  std::vector<Message> children;
  int mask = 1;
  while (mask < n && (vrank & mask) == 0) {
    const int child_v = vrank + mask;
    if (child_v < n)
      children.push_back(coll_recv((child_v + root) % n, detail::kTagGather));
    mask <<= 1;
  }
  if (vrank != 0) {
    pack_entry(bundle, rank_, data);
    for (const auto& c : children) bundle.pack_raw(c.payload.span());
    raw_send(((vrank & (vrank - 1)) + root) % n, detail::kTagGather,
             std::move(bundle).take_buffer(), "gather");
    return out;
  }
  out.resize(n);
  out[root] = std::move(data);  // the root's own entry is never repacked
  for (const auto& c : children) unpack_entries(c.payload.span(), out);
  return out;
}

std::vector<Buffer> Communicator::allgather(Buffer data) {
  trace::Span span("rt.allgather", "rt", data.size());
  const int n = size();
  std::vector<Buffer> out(n);
  if (n == 1) {
    out[0] = std::move(data);
    return out;
  }
  if (n == floor_pow2(n)) {
    // Recursive doubling: after round k each rank holds the entries of its
    // 2^(k+1)-aligned block, exchanged with the partner that differs in bit
    // k. ceil(log2 n) rounds, n*log2 n messages, no root bottleneck.
    out[rank_] = std::move(data);
    for (int mask = 1; mask < n; mask <<= 1) {
      const int partner = rank_ ^ mask;
      const int mine_lo = rank_ & ~(mask - 1);  // base of the block I hold
      PackBuffer b;
      for (int r = mine_lo; r < mine_lo + mask; ++r) pack_entry(b, r, out[r]);
      raw_send(partner, detail::kTagAllgather, std::move(b).take_buffer(),
               "allgather");
      Message m = coll_recv(partner, detail::kTagAllgather);
      unpack_entries(m.payload.span(), out);
    }
    return out;
  }
  // Non-power-of-two: binomial gather to rank 0, then bcast one bundle that
  // every rank unpacks. 2(n-1) messages, 2*ceil(log2 n) depth; simpler than
  // a Bruck rotation and the bcast shares a single block by reference.
  auto parts = gather(std::move(data), 0);
  PackBuffer b;
  if (rank_ == 0)
    for (int r = 0; r < n; ++r) pack_entry(b, r, parts[r]);
  auto bytes = bcast(std::move(b).take_buffer(), 0);
  unpack_entries(bytes.span(), out);
  return out;
}

std::vector<Buffer> Communicator::alltoall(std::vector<Buffer> outgoing) {
  const int n = size();
  if (static_cast<int>(outgoing.size()) != n)
    throw UsageError("alltoall: outgoing must have one entry per rank");
  trace::Span span("rt.alltoall", "rt", static_cast<std::uint64_t>(n));
  for (int i = 0; i < n; ++i)
    raw_send(i, detail::kTagAlltoall, std::move(outgoing[i]), "alltoall");
  // Drain in arrival order, but gate the wildcard on peers that still owe
  // THIS alltoall a payload: with eager sends, a fast rank's payload for a
  // back-to-back second alltoall can already be queued while another peer's
  // first-round payload is still in flight, and a bare any-source receive
  // could consume it a round early (the executor-drain race,
  // docs/PERFORMANCE.md). One message per peer per round makes the owed set
  // a bitmap.
  std::vector<char> owed(n, 1);
  std::vector<Buffer> incoming(n);
  for (int i = 0; i < n; ++i) {
    Message m = my_box().get_if(
        kAnySource, detail::kTagAlltoall,
        [&](const Message& msg) { return owed[msg.src] != 0; });
    owed[m.src] = 0;
    incoming[m.src] = std::move(m.payload);
  }
  return incoming;
}

Communicator Communicator::subset(const std::vector<int>& members) {
  trace::Span span("rt.subset", "rt",
                   static_cast<std::uint64_t>(members.size()));
  if (members.empty())
    throw UsageError("subset: member list must not be empty");
  std::vector<bool> seen(static_cast<std::size_t>(size()), false);
  int my_index = -1;
  for (std::size_t i = 0; i < members.size(); ++i) {
    const int r = members[i];
    if (r < 0 || r >= size())
      throw UsageError("subset: member rank " + std::to_string(r) +
                       " out of range");
    if (seen[static_cast<std::size_t>(r)])
      throw UsageError("subset: member rank " + std::to_string(r) +
                       " listed twice");
    seen[static_cast<std::size_t>(r)] = true;
    if (r == rank_) my_index = static_cast<int>(i);
  }
  // split() orders by key, so the list's order carries into the new comm.
  return split(my_index >= 0 ? 0 : kUndefinedColor,
               my_index >= 0 ? my_index : 0);
}

std::int64_t Communicator::epoch_fence() {
  trace::Span span("rt.epoch_fence", "rt");
  const std::int64_t t0 = trace::now_ns();
  barrier();
  return trace::now_ns() - t0;
}

Communicator Communicator::split(int color, int key) {
  return split_impl(color, key, /*live_only=*/false, /*timeout_ms=*/-1);
}

Communicator Communicator::split_live(int color, int key, int timeout_ms) {
  return split_impl(color, key, /*live_only=*/true, timeout_ms);
}

Communicator Communicator::split_impl(int color, int key, bool live_only,
                                      int timeout_ms) {
  trace::Span span(live_only ? "rt.split_live" : "rt.split", "rt");
  auto& st = *st_;
  Universe* uni = st.uni;
  std::unique_lock lock(st.split_mu);
  using detail::CommState;
  const char* what = live_only ? "split_live" : "split";

  uni->blocked_wait(lock, st.split_cv, what,
                    [&] { return st.phase == CommState::Phase::Arrive; },
                    timeout_ms);
  st.entries[rank_] = {color, key};
  st.present[rank_] = 1;
  ++st.arrived;
  st.split_cv.notify_all();

  // The rendezvous quorum: every member for split(); every member the
  // universe does not report dead for split_live(). The quorum is
  // re-evaluated on each 50 ms wait tick, so a member dying mid-rendezvous
  // (or being reported dead later) releases the survivors.
  const auto quorum = [&] {
    if (!live_only) return size();
    int n = 0;
    for (int id : st.members)
      if (!uni->is_dead(id)) ++n;
    return n;
  };
  // The first rank to observe a full quorum (usually the last arriver)
  // computes the new communicators for every color, under the board lock.
  // Absent members — only possible with live_only — get the undefined color.
  uni->blocked_wait(
      lock, st.split_cv, what,
      [&] {
        if (st.phase == CommState::Phase::Pickup) return true;
        if (st.arrived < quorum()) return false;
        std::map<int, std::vector<int>> groups;  // color -> old-comm ranks
        for (int r = 0; r < size(); ++r) {
          if (st.present[r] && st.entries[r].color != kUndefinedColor)
            groups[st.entries[r].color].push_back(r);
        }
        for (auto& res : st.results) res = {nullptr, -1};
        for (auto& [c, ranks] : groups) {
          std::stable_sort(ranks.begin(), ranks.end(), [&](int a, int b) {
            return st.entries[a].key < st.entries[b].key;
          });
          std::vector<int> member_ids;
          member_ids.reserve(ranks.size());
          for (int r : ranks) member_ids.push_back(st.members[r]);
          auto child = std::make_shared<CommState>(uni, std::move(member_ids));
          for (std::size_t i = 0; i < ranks.size(); ++i)
            st.results[ranks[i]] = {child, static_cast<int>(i)};
        }
        st.phase = CommState::Phase::Pickup;
        st.pickers = st.arrived;
        st.picked = 0;
        st.split_cv.notify_all();
        return true;
      },
      timeout_ms);

  auto [child, new_rank] = st.results[rank_];
  if (++st.picked == st.pickers) {
    st.phase = CommState::Phase::Arrive;
    st.arrived = 0;
    std::fill(st.present.begin(), st.present.end(), 0);
    st.split_cv.notify_all();
  }
  lock.unlock();

  if (!child) return {};
  return attach(std::move(child), new_rank);
}

}  // namespace mxn::rt
