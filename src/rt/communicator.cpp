#include "rt/communicator.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "trace/trace.hpp"

namespace mxn::rt {

namespace {
// Reserved (negative) tags for the collective implementations. Consecutive
// collectives on the same communicator may reuse a tag: per-(src,tag) FIFO
// delivery plus the MPI rule that all ranks issue collectives in the same
// program order keeps them from interfering.
constexpr int kTagBarrierUp = -2;
constexpr int kTagBarrierDown = -3;
constexpr int kTagBcast = -4;
constexpr int kTagGather = -5;
constexpr int kTagAlltoall = -6;
}  // namespace

namespace detail {

CommState::CommState(Universe* u, std::vector<int> member_ids)
    : uni(u), members(std::move(member_ids)) {
  boxes.reserve(members.size());
  for (std::size_t i = 0; i < members.size(); ++i)
    boxes.push_back(std::make_unique<Mailbox>(uni, members[i]));
  entries.resize(members.size());
  results.resize(members.size());
}

}  // namespace detail

void Communicator::check_dst(int dst) const {
  if (dst < 0 || dst >= size())
    throw UsageError("send: destination rank " + std::to_string(dst) +
                     " out of range for communicator of size " +
                     std::to_string(size()));
}

void Communicator::check_user_tag(int tag) const {
  if (tag < 0)
    throw UsageError("user message tags must be >= 0 (negative tags are "
                     "reserved for collectives)");
}

void Communicator::raw_send(int dst, int tag, Buffer data) {
  check_dst(dst);
  st_->messages.fetch_add(1, std::memory_order_relaxed);
  st_->bytes.fetch_add(data.size(), std::memory_order_relaxed);
  st_->uni->count_message(data.size());
  trace::instant("rt.send", "rt", data.size());
  if (FaultInjector* f = st_->uni->faults()) {
    const int me = st_->members[rank_];  // universe rank of the sender
    f->on_op(me);                        // kill clock; may throw KilledError
    switch (f->on_send(me, tag)) {
      case FaultAction::Drop:
        return;  // the sender believes the send completed; nothing arrives
      case FaultAction::Duplicate:
        // The duplicate shares the payload block (refcount bump, no copy).
        st_->boxes[dst]->put(Message{rank_, tag, data});
        break;
      case FaultAction::Reorder:
        st_->boxes[dst]->put(Message{rank_, tag, std::move(data)},
                             /*reorder=*/true);
        return;
      case FaultAction::Delay:
        std::this_thread::sleep_for(std::chrono::milliseconds(f->delay_ms()));
        break;
      case FaultAction::None:
        break;
    }
  }
  st_->boxes[dst]->put(Message{rank_, tag, std::move(data)});
}

void Communicator::send(int dst, int tag, Buffer data) {
  check_user_tag(tag);
  raw_send(dst, tag, std::move(data));
}

void Communicator::send(int dst, int tag, std::span<const std::byte> data) {
  check_user_tag(tag);
  raw_send(dst, tag, Buffer::copy_of(data));
}

Message Communicator::recv(int src, int tag, int timeout_ms) {
  if (src != kAnySource && (src < 0 || src >= size()))
    throw UsageError("recv: source rank out of range");
  trace::Span span("rt.recv", "rt");
  return my_box().get(src, tag, timeout_ms);
}

Message Communicator::recv_matching(
    int src, int tag, const std::function<bool(const Message&)>& pred,
    int timeout_ms) {
  if (src != kAnySource && (src < 0 || src >= size()))
    throw UsageError("recv_matching: source rank out of range");
  trace::Span span("rt.recv", "rt");
  return my_box().get_if(src, tag, pred, timeout_ms);
}

Request Communicator::isend(int dst, int tag, Buffer data) {
  send(dst, tag, std::move(data));
  return Request::completed_send();
}

Request Communicator::isend(int dst, int tag, std::span<const std::byte> data) {
  send(dst, tag, data);
  return Request::completed_send();
}

Request Communicator::irecv(int src, int tag) {
  return Request::pending_recv(&my_box(), src, tag);
}

bool Communicator::probe(int src, int tag) { return my_box().probe(src, tag); }

std::optional<Message> Communicator::try_recv(int src, int tag) {
  return my_box().try_get(src, tag);
}

void Communicator::barrier() {
  // Gather-to-root then broadcast-release: 2(n-1) messages.
  const int n = size();
  if (n == 1) return;
  trace::Span span("rt.barrier", "rt", static_cast<std::uint64_t>(n));
  if (rank_ == 0) {
    for (int i = 1; i < n; ++i) my_box().get(kAnySource, kTagBarrierUp);
    for (int i = 1; i < n; ++i) raw_send(i, kTagBarrierDown, {});
  } else {
    raw_send(0, kTagBarrierUp, {});
    my_box().get(0, kTagBarrierDown);
  }
}

Buffer Communicator::bcast(Buffer data, int root) {
  const int n = size();
  if (n == 1) return data;
  trace::Span span("rt.bcast", "rt", data.size());
  if (rank_ == root) {
    // Every destination mailbox holds a reference to the SAME block: a
    // bcast performs zero deep copies no matter how wide the fan-out.
    for (int i = 0; i < n; ++i)
      if (i != root) raw_send(i, kTagBcast, data);
    return data;
  }
  Message m = my_box().get(root, kTagBcast);
  return std::move(m.payload);
}

std::vector<Buffer> Communicator::gather(Buffer data, int root) {
  trace::Span span("rt.gather", "rt", data.size());
  const int n = size();
  std::vector<Buffer> out;
  if (rank_ == root) {
    out.resize(n);
    out[root] = std::move(data);
    for (int i = 0; i < n - 1; ++i) {
      Message m = my_box().get(kAnySource, kTagGather);
      out[m.src] = std::move(m.payload);
    }
  } else {
    raw_send(root, kTagGather, std::move(data));
  }
  return out;
}

std::vector<Buffer> Communicator::allgather(Buffer data) {
  trace::Span span("rt.allgather", "rt", data.size());
  auto parts = gather(std::move(data), 0);
  // Broadcast the concatenation with a simple length-prefixed framing; the
  // concatenated block itself is then shared by reference across ranks.
  PackBuffer b;
  if (rank_ == 0) {
    for (auto& p : parts) b.pack_span(std::span<const std::byte>(p.span()));
  }
  auto bytes = bcast(std::move(b).take_buffer(), 0);
  UnpackBuffer u(bytes);
  std::vector<Buffer> out(size());
  for (int i = 0; i < size(); ++i)
    out[i] = Buffer(u.unpack_vector<std::byte>());
  return out;
}

std::vector<Buffer> Communicator::alltoall(std::vector<Buffer> outgoing) {
  const int n = size();
  if (static_cast<int>(outgoing.size()) != n)
    throw UsageError("alltoall: outgoing must have one entry per rank");
  trace::Span span("rt.alltoall", "rt", static_cast<std::uint64_t>(n));
  for (int i = 0; i < n; ++i) raw_send(i, kTagAlltoall, std::move(outgoing[i]));
  std::vector<Buffer> incoming(n);
  for (int i = 0; i < n; ++i) {
    Message m = my_box().get(kAnySource, kTagAlltoall);
    incoming[m.src] = std::move(m.payload);
  }
  return incoming;
}

Communicator Communicator::split(int color, int key) {
  trace::Span span("rt.split", "rt");
  auto& st = *st_;
  Universe* uni = st.uni;
  std::unique_lock lock(st.split_mu);

  auto wait_until = [&](auto pred) {
    uni->blocked_wait(lock, st.split_cv, "split", pred);
  };

  using detail::CommState;
  wait_until([&] { return st.phase == CommState::Phase::Arrive; });
  st.entries[rank_] = {color, key};
  if (++st.arrived == size()) {
    // Last arriver computes the new communicators for every color.
    std::map<int, std::vector<int>> groups;  // color -> ranks (in old comm)
    for (int r = 0; r < size(); ++r) {
      if (st.entries[r].color != kUndefinedColor)
        groups[st.entries[r].color].push_back(r);
    }
    for (auto& r : st.results) r = {nullptr, -1};
    for (auto& [c, ranks] : groups) {
      std::stable_sort(ranks.begin(), ranks.end(), [&](int a, int b) {
        return st.entries[a].key < st.entries[b].key;
      });
      std::vector<int> member_ids;
      member_ids.reserve(ranks.size());
      for (int r : ranks) member_ids.push_back(st.members[r]);
      auto child = std::make_shared<CommState>(uni, std::move(member_ids));
      for (std::size_t i = 0; i < ranks.size(); ++i)
        st.results[ranks[i]] = {child, static_cast<int>(i)};
    }
    st.phase = CommState::Phase::Pickup;
    st.picked = 0;
    st.split_cv.notify_all();
  } else {
    wait_until([&] { return st.phase == CommState::Phase::Pickup; });
  }

  auto [child, new_rank] = st.results[rank_];
  if (++st.picked == size()) {
    st.phase = CommState::Phase::Arrive;
    st.arrived = 0;
    st.split_cv.notify_all();
  }
  lock.unlock();

  if (!child) return {};
  return attach(std::move(child), new_rank);
}

}  // namespace mxn::rt
