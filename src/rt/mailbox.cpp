#include "rt/mailbox.hpp"

#include <chrono>

#include "rt/error.hpp"
#include "trace/trace.hpp"

namespace mxn::rt {

Mailbox::Mailbox(Universe* uni, int owner_rank)
    : uni_(uni), owner_(owner_rank) {
  uni_->register_mailbox(this);
}

Mailbox::~Mailbox() { uni_->unregister_mailbox(this); }

void Mailbox::put(Message msg, bool reorder) {
  {
    std::lock_guard lock(mu_);
    if (reorder)
      q_.push_front(std::move(msg));
    else
      q_.push_back(std::move(msg));
  }
  uni_->note_activity();
  cv_.notify_all();
}

int Mailbox::find_match(int src, int tag) const {
  for (std::size_t i = 0; i < q_.size(); ++i) {
    const Message& m = q_[i];
    if ((src == kAnySource || m.src == src) &&
        (tag == kAnyTag || m.tag == tag)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

Message Mailbox::take_at(int idx) {
  Message out = std::move(q_[idx]);
  q_.erase(q_.begin() + idx);
  return out;
}

Message Mailbox::get(int src, int tag, int timeout_ms) {
  uni_->fault_on_op(owner_);
  std::unique_lock lock(mu_);
  int idx = find_match(src, tag);
  if (idx < 0) {
    static trace::Histogram& wait_ns = trace::histogram("rt.recv_wait_ns");
    trace::Span wait("rt.wait", "rt", 0, &wait_ns);
    uni_->blocked_wait(
        lock, cv_, "recv",
        [&] {
          idx = find_match(src, tag);
          return idx >= 0;
        },
        timeout_ms);
  }
  return take_at(idx);
}

int Mailbox::find_match_if(
    int src, int tag,
    const std::function<bool(const Message&)>& pred) const {
  for (std::size_t i = 0; i < q_.size(); ++i) {
    const Message& m = q_[i];
    if ((src == kAnySource || m.src == src) &&
        (tag == kAnyTag || m.tag == tag) && pred(m)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

Message Mailbox::get_if(int src, int tag,
                        const std::function<bool(const Message&)>& pred,
                        int timeout_ms) {
  uni_->fault_on_op(owner_);
  std::unique_lock lock(mu_);
  int idx = find_match_if(src, tag, pred);
  if (idx < 0) {
    static trace::Histogram& wait_ns = trace::histogram("rt.recv_wait_ns");
    trace::Span wait("rt.wait", "rt", 0, &wait_ns);
    uni_->blocked_wait(
        lock, cv_, "recv",
        [&] {
          idx = find_match_if(src, tag, pred);
          return idx >= 0;
        },
        timeout_ms);
  }
  return take_at(idx);
}

std::optional<Message> Mailbox::try_get(int src, int tag) {
  std::lock_guard lock(mu_);
  const int idx = find_match(src, tag);
  if (idx < 0) return std::nullopt;
  return take_at(idx);
}

bool Mailbox::probe(int src, int tag) {
  std::lock_guard lock(mu_);
  return find_match(src, tag) >= 0;
}

void Mailbox::notify() { cv_.notify_all(); }

}  // namespace mxn::rt
