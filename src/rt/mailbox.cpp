#include "rt/mailbox.hpp"

#include <chrono>

#include "rt/error.hpp"
#include "trace/trace.hpp"

namespace mxn::rt {

Mailbox::Mailbox(Universe* uni) : uni_(uni) { uni_->register_mailbox(this); }

Mailbox::~Mailbox() { uni_->unregister_mailbox(this); }

void Mailbox::put(Message msg) {
  {
    std::lock_guard lock(mu_);
    q_.push_back(std::move(msg));
  }
  uni_->note_activity();
  cv_.notify_all();
}

int Mailbox::find_match(int src, int tag) const {
  for (std::size_t i = 0; i < q_.size(); ++i) {
    const Message& m = q_[i];
    if ((src == kAnySource || m.src == src) &&
        (tag == kAnyTag || m.tag == tag)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

Message Mailbox::get(int src, int tag) {
  std::unique_lock lock(mu_);
  int idx = find_match(src, tag);
  if (idx < 0) {
    static trace::Histogram& wait_ns = trace::histogram("rt.recv_wait_ns");
    trace::Span wait("rt.wait", "rt", 0, &wait_ns);
    uni_->block_enter();
    while (true) {
      if (uni_->aborted()) {
        uni_->block_exit();
        throw AbortError("universe aborted while blocked in recv");
      }
      if (uni_->deadlocked()) {
        uni_->block_exit();
        throw DeadlockError("all processes blocked in matched receives" +
                            uni_->deadlock_report());
      }
      idx = find_match(src, tag);
      if (idx >= 0) break;
      cv_.wait_for(lock, std::chrono::milliseconds(50));
      uni_->check_deadlock();
    }
    uni_->block_exit();
  }
  Message out = std::move(q_[idx]);
  q_.erase(q_.begin() + idx);
  return out;
}

int Mailbox::find_match_if(
    int src, int tag,
    const std::function<bool(const Message&)>& pred) const {
  for (std::size_t i = 0; i < q_.size(); ++i) {
    const Message& m = q_[i];
    if ((src == kAnySource || m.src == src) &&
        (tag == kAnyTag || m.tag == tag) && pred(m)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

Message Mailbox::get_if(int src, int tag,
                        const std::function<bool(const Message&)>& pred) {
  std::unique_lock lock(mu_);
  int idx = find_match_if(src, tag, pred);
  if (idx < 0) {
    static trace::Histogram& wait_ns = trace::histogram("rt.recv_wait_ns");
    trace::Span wait("rt.wait", "rt", 0, &wait_ns);
    uni_->block_enter();
    while (true) {
      if (uni_->aborted()) {
        uni_->block_exit();
        throw AbortError("universe aborted while blocked in recv");
      }
      if (uni_->deadlocked()) {
        uni_->block_exit();
        throw DeadlockError("all processes blocked in matched receives" +
                            uni_->deadlock_report());
      }
      idx = find_match_if(src, tag, pred);
      if (idx >= 0) break;
      cv_.wait_for(lock, std::chrono::milliseconds(50));
      uni_->check_deadlock();
    }
    uni_->block_exit();
  }
  Message out = std::move(q_[idx]);
  q_.erase(q_.begin() + idx);
  return out;
}

std::optional<Message> Mailbox::try_get(int src, int tag) {
  std::lock_guard lock(mu_);
  const int idx = find_match(src, tag);
  if (idx < 0) return std::nullopt;
  Message out = std::move(q_[idx]);
  q_.erase(q_.begin() + idx);
  return out;
}

bool Mailbox::probe(int src, int tag) {
  std::lock_guard lock(mu_);
  return find_match(src, tag) >= 0;
}

void Mailbox::notify() { cv_.notify_all(); }

}  // namespace mxn::rt
