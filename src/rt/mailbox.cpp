#include "rt/mailbox.hpp"

#include <chrono>
#include <utility>

#include "rt/error.hpp"
#include "trace/trace.hpp"

namespace mxn::rt {

namespace {

bool envelope_matches(const Message& m, int src, int tag) {
  return (src == kAnySource || m.src == src) &&
         (tag == kAnyTag || m.tag == tag);
}

trace::Counter& contention_counter() {
  static trace::Counter& c = trace::counter("rt.mailbox.lane_contention");
  return c;
}

/// Lock a lane's micro-lock, counting the (rare) collisions between the
/// lane's producer and the box's consumer.
std::unique_lock<std::mutex> lock_lane(std::mutex& mu) {
  std::unique_lock<std::mutex> lock(mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    contention_counter().add(1);
    lock.lock();
  }
  return lock;
}

}  // namespace

Mailbox::Mailbox(Universe* uni, int owner_rank, int nlanes)
    : uni_(uni),
      owner_(owner_rank),
      nlanes_(nlanes > 0 ? nlanes : 0),
      lanes_(new Lane[static_cast<std::size_t>(nlanes_) + 1]) {
  uni_->register_mailbox(this);
}

Mailbox::~Mailbox() { uni_->unregister_mailbox(this); }

Mailbox::Lane& Mailbox::lane_for(int src) {
  return lanes_[src >= 0 && src < nlanes_ ? src : nlanes_];
}

void Mailbox::put(Message msg, bool reorder) {
  Lane& ln = lane_for(msg.src);
  {
    auto lock = lock_lane(ln.mu);
    if (reorder)
      ln.q.push_front(std::move(msg));
    else
      ln.q.push_back(std::move(msg));
    // seq_cst: Dekker pair with the consumer's waiting_ store (below). If
    // the consumer's scan missed this message, this store precedes our
    // waiting_ load in the seq_cst order, which forces that load to see the
    // consumer waiting — so we ring the bell. Symmetrically, if we read
    // waiting_ == false, the consumer's scan is guaranteed to see n > 0.
    ln.n.fetch_add(1, std::memory_order_seq_cst);
  }
  uni_->note_activity();
  if (waiting_.load(std::memory_order_seq_cst)) {
    // Ring under the bell mutex: the consumer is either parked on bell_cv_
    // (gets the notify) or running its predicate while holding bell_mu_
    // (will rescan before parking) — a wakeup cannot fall in the gap.
    std::lock_guard<std::mutex> bell(bell_mu_);
    bell_cv_.notify_all();
  }
}

std::optional<Message> Mailbox::take_from(Lane& ln, int src, int tag,
                                          const Pred* pred) {
  if (ln.n.load(std::memory_order_seq_cst) == 0) return std::nullopt;
  auto lock = lock_lane(ln.mu);
  for (auto it = ln.q.begin(); it != ln.q.end(); ++it) {
    if (envelope_matches(*it, src, tag) && (pred == nullptr || (*pred)(*it))) {
      Message out = std::move(*it);
      ln.q.erase(it);
      ln.n.fetch_sub(1, std::memory_order_seq_cst);
      return out;
    }
  }
  return std::nullopt;
}

std::optional<Message> Mailbox::scan(int src, int tag, const Pred* pred) {
  if (src != kAnySource) return take_from(lane_for(src), src, tag, pred);
  const int n = nlanes_ + 1;
  const int start = rr_.load(std::memory_order_relaxed) % n;
  for (int i = 0; i < n; ++i) {
    const int li = (start + i) % n;
    if (auto m = take_from(lanes_[li], src, tag, pred)) {
      // Resume the next wildcard scan after the lane just served, so a
      // chatty low-numbered peer cannot starve the others.
      rr_.store((li + 1) % n, std::memory_order_relaxed);
      return m;
    }
  }
  return std::nullopt;
}

Message Mailbox::blocking_get(int src, int tag, const Pred* pred,
                              int timeout_ms) {
  uni_->fault_on_op(owner_);
  // Fast path: no doorbell traffic when the message already arrived.
  if (auto m = scan(src, tag, pred)) return std::move(*m);

  std::unique_lock<std::mutex> lock(bell_mu_);
  // Announce BEFORE scanning again (inside blocked_wait's predicate): with
  // both this store and the producer's lane-count store seq_cst, either the
  // producer sees waiting_ == true and rings, or our rescan sees its
  // deposit — the lost-wakeup interleaving is impossible. blocked_wait's
  // 50 ms deadlock/abort tick backstops the bell regardless.
  waiting_.store(true, std::memory_order_seq_cst);
  std::optional<Message> found;
  try {
    static trace::Histogram& wait_ns = trace::histogram("rt.recv_wait_ns");
    trace::Span wait("rt.wait", "rt", 0, &wait_ns);
    uni_->blocked_wait(
        lock, bell_cv_, "recv",
        [&] {
          found = scan(src, tag, pred);
          return found.has_value();
        },
        timeout_ms);
  } catch (...) {
    waiting_.store(false, std::memory_order_seq_cst);
    throw;
  }
  waiting_.store(false, std::memory_order_seq_cst);
  return std::move(*found);
}

Message Mailbox::get(int src, int tag, int timeout_ms) {
  return blocking_get(src, tag, nullptr, timeout_ms);
}

Message Mailbox::get_if(int src, int tag,
                        const std::function<bool(const Message&)>& pred,
                        int timeout_ms) {
  return blocking_get(src, tag, &pred, timeout_ms);
}

std::optional<Message> Mailbox::try_get(int src, int tag) {
  return scan(src, tag, nullptr);
}

bool Mailbox::probe(int src, int tag) {
  const auto peek = [&](Lane& ln) {
    if (ln.n.load(std::memory_order_seq_cst) == 0) return false;
    auto lock = lock_lane(ln.mu);
    for (const Message& m : ln.q)
      if (envelope_matches(m, src, tag)) return true;
    return false;
  };
  if (src != kAnySource) return peek(lane_for(src));
  for (int li = 0; li <= nlanes_; ++li)
    if (peek(lanes_[li])) return true;
  return false;
}

// Deliberately lock-free: abort/deadlock wakers call this for EVERY box,
// from inside a blocked_wait that already holds the CALLER's bell mutex —
// taking bell_mu_ here would self-deadlock the box notifying itself and
// ABBA-deadlock two boxes notifying each other. A waiter that misses the
// naked notify re-checks the abort/deadlock flags at its next 50 ms tick,
// so the wake is delayed, never lost.
void Mailbox::notify() { bell_cv_.notify_all(); }

}  // namespace mxn::rt
