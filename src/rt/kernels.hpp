#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mxn::rt::kernels {

/// Instruction tiers the strided copy kernels dispatch over at runtime.
/// Detection happens once per process (x86-64: SSE2 always, AVX2 when the
/// CPU reports it); MXN_SIMD=scalar|sse2|avx2 overrides it, and tests can
/// force a tier with set_isa() to compare outputs across paths.
enum class Isa { Scalar, Sse2, Avx2 };

[[nodiscard]] Isa active_isa();
[[nodiscard]] const char* isa_name(Isa isa);

/// Force a tier (clamped to what the CPU supports). Test hook — the
/// differential suite runs every tier over the same inputs.
void set_isa(Isa isa);

/// One coalesced copy unit between strided local storage and a contiguous
/// buffer: `count` blocks of `block_len` contiguous elements whose starts
/// are `block_stride` elements apart on the storage side, packed
/// back-to-back on the buffer side starting at `buf_off`. All quantities
/// are in elements of the caller's width:
///
///   count == 1              one contiguous run -> a single memcpy
///   block_len == 1          pure strided gather/scatter (SIMD kernels)
///   block_len > 1, count>1  fixed-size block train (unrolled small copies)
struct BlockRun {
  std::int64_t storage_off = 0;
  std::int64_t block_len = 0;
  std::int64_t block_stride = 0;
  std::int64_t count = 0;
  std::int64_t buf_off = 0;
};

/// buf <- storage (the pack direction). `width` is the element size in
/// bytes; widths 4 and 8 take the vectorized strided kernels, everything
/// else a generic per-element path. Bytes moved are accounted to
/// sched.kernel.memcpy_bytes (count == 1), sched.kernel.simd_bytes
/// (strided/block kernels) or sched.kernel.scalar_bytes (generic widths).
void gather_run(const void* storage, void* buf, std::size_t width,
                const BlockRun& r);

/// storage <- buf (the unpack direction). Same dispatch and accounting.
void scatter_run(void* storage, const void* buf, std::size_t width,
                 const BlockRun& r);

/// Streaming coalescer: feed it the raw (storage_offset, stride, count)
/// runs of a pack/unpack walk — in buffer order, the buffer cursor is
/// implicit — and it merges them into the largest BlockRuns the pattern
/// admits before dispatching:
///
///  - adjacent unit-stride runs whose storage is contiguous fuse into one
///    run (memcpy promotion: a cyclic footprint packed toward one block
///    peer becomes a single memcpy);
///  - equal-length runs whose starts advance by a constant delta fuse into
///    a strided block train (block-cyclic), degenerating for length-1 runs
///    into the SIMD gather/scatter kernels (cyclic unpack);
///  - a run that already carries a storage stride > 1 (permuted
///    linearizations) maps directly onto the strided kernels.
///
/// The merge logic is element-width-agnostic; emission binds the width.
class RunCoalescer {
 public:
  using Emit = void (*)(void* ctx, const BlockRun& run);

  RunCoalescer(Emit emit, void* ctx) : emit_(emit), ctx_(ctx) {}

  /// Append `n` elements read from storage offsets s0, s0+stride, ... .
  void add(std::int64_t s0, std::int64_t stride, std::int64_t n) {
    if (n <= 0) return;
    if (n == 1 || stride == 1)
      add_block(s0, n);  // contiguous run (n == 1 is trivially both)
    else
      add_strided(s0, stride, n);
    cursor_ += n;
  }

  /// Emit whatever is pending. Must be called before reading the result;
  /// further add()s start a fresh pattern.
  void flush() {
    if (open_) emit_(ctx_, cur_);
    open_ = false;
  }

 private:
  void add_block(std::int64_t s0, std::int64_t len) {
    if (open_) {
      if (cur_.count == 1 && s0 == cur_.storage_off + cur_.block_len) {
        cur_.block_len += len;  // contiguous growth
        return;
      }
      if (cur_.count == 1 && len == cur_.block_len) {
        cur_.block_stride = s0 - cur_.storage_off;  // open a block train
        cur_.count = 2;
        return;
      }
      if (cur_.count > 1 && len == cur_.block_len &&
          s0 == cur_.storage_off + cur_.count * cur_.block_stride) {
        ++cur_.count;  // train continues
        return;
      }
      emit_(ctx_, cur_);
    }
    cur_ = {s0, len, 0, 1, cursor_};
    open_ = true;
  }

  void add_strided(std::int64_t s0, std::int64_t stride, std::int64_t n) {
    if (open_ && cur_.block_len == 1 &&
        ((cur_.count == 1 && s0 == cur_.storage_off + stride) ||
         (cur_.count > 1 && cur_.block_stride == stride &&
          s0 == cur_.storage_off + cur_.count * stride))) {
      if (cur_.count == 1) cur_.block_stride = stride;
      cur_.count += n;
      return;
    }
    if (open_) emit_(ctx_, cur_);
    cur_ = {s0, 1, stride, n, cursor_};
    open_ = true;
  }

  Emit emit_;
  void* ctx_;
  BlockRun cur_{};
  bool open_ = false;
  std::int64_t cursor_ = 0;
};

/// A compiled copy plan: the BlockRuns a (footprint, segments) walk
/// coalesces into, kept so steady-state transfers replay the runs without
/// re-walking the segment lists or re-coalescing the pattern. The walk and
/// the merge logic cost a handful of cycles per *segment*; for cyclic
/// footprints (one element per segment) that overhead dwarfs the copy
/// itself, and it is pure waste when the schedule is fixed — an mct Router
/// ships the same (provenance, segments) pattern every timestep. Plans are
/// width-agnostic; the element width binds at gather()/scatter() time.
class RunPlan {
 public:
  /// Coalescer sink: collect one merged run.
  void add(const BlockRun& r) { runs_.push_back(r); }

  [[nodiscard]] bool empty() const { return runs_.empty(); }
  [[nodiscard]] const std::vector<BlockRun>& runs() const { return runs_; }

  /// Replay the plan in the pack direction: buf <- storage.
  void gather(const void* storage, void* buf, std::size_t width) const {
    for (const auto& r : runs_) gather_run(storage, buf, width, r);
  }

  /// Replay the plan in the unpack direction: storage <- buf.
  void scatter(void* storage, const void* buf, std::size_t width) const {
    for (const auto& r : runs_) scatter_run(storage, buf, width, r);
  }

 private:
  std::vector<BlockRun> runs_;
};

/// Typed pack-side coalescer: gathers strided storage runs into a
/// contiguous buffer. Feed add(); call flush() once at the end.
template <class T>
class RunGather {
 public:
  RunGather(const T* storage, T* buf)
      : storage_(storage), buf_(buf), co_(&RunGather::emit, this) {}

  void add(std::int64_t s0, std::int64_t stride, std::int64_t n) {
    co_.add(s0, stride, n);
  }
  void flush() { co_.flush(); }

 private:
  static void emit(void* ctx, const BlockRun& r) {
    auto* self = static_cast<RunGather*>(ctx);
    gather_run(self->storage_, self->buf_, sizeof(T), r);
  }

  const T* storage_;
  T* buf_;
  RunCoalescer co_;
};

/// Typed unpack-side coalescer: scatters a contiguous buffer back into
/// strided storage runs.
template <class T>
class RunScatter {
 public:
  RunScatter(T* storage, const T* buf)
      : storage_(storage), buf_(buf), co_(&RunScatter::emit, this) {}

  void add(std::int64_t s0, std::int64_t stride, std::int64_t n) {
    co_.add(s0, stride, n);
  }
  void flush() { co_.flush(); }

 private:
  static void emit(void* ctx, const BlockRun& r) {
    auto* self = static_cast<RunScatter*>(ctx);
    scatter_run(self->storage_, self->buf_, sizeof(T), r);
  }

  T* storage_;
  const T* buf_;
  RunCoalescer co_;
};

}  // namespace mxn::rt::kernels
