#pragma once

#include <stdexcept>
#include <string>

namespace mxn::rt {

/// Base class for all runtime errors raised by the message-passing layer.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Raised in every blocked thread when the universe watchdog concludes that
/// all threads are blocked with no message activity for longer than the
/// configured timeout (see SpawnOptions::deadlock_timeout_ms).
class DeadlockError : public Error {
 public:
  using Error::Error;
};

/// Raised in blocked sibling threads when another thread of the same spawn
/// terminated with an exception; the originating exception is rethrown from
/// spawn() itself.
class AbortError : public Error {
 public:
  using Error::Error;
};

/// Raised on malformed arguments (bad rank, negative user tag, size
/// mismatches in collectives).
class UsageError : public Error {
 public:
  using Error::Error;
};

}  // namespace mxn::rt
