#pragma once

#include <stdexcept>
#include <string>

namespace mxn::rt {

/// Base class for all runtime errors raised by the message-passing layer.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Raised in every blocked thread when the universe watchdog concludes that
/// all threads are blocked with no message activity for longer than the
/// configured timeout (see SpawnOptions::deadlock_timeout_ms).
class DeadlockError : public Error {
 public:
  using Error::Error;
};

/// Raised in blocked sibling threads when another thread of the same spawn
/// terminated with an exception; the originating exception is rethrown from
/// spawn() itself.
class AbortError : public Error {
 public:
  using Error::Error;
};

/// Raised on malformed arguments (bad rank, negative user tag, size
/// mismatches in collectives).
class UsageError : public Error {
 public:
  using Error::Error;
};

/// Raised when a blocking receive (or split/wait) exceeds its per-call
/// deadline — either an explicit timeout argument or the spawn-wide
/// SpawnOptions::default_recv_timeout_ms. Distinct from DeadlockError: a
/// timeout fires on ONE rank as soon as ITS call stalls, whereas the
/// watchdog needs every rank of the universe idle-blocked.
class TimeoutError : public Error {
 public:
  using Error::Error;
};

/// Raised by the fault-injection layer on the rank a FaultPlan kills. The
/// runtime treats it as a silent death — siblings are NOT aborted (a crashed
/// process sends no notice); they discover the failure through timeouts or
/// the watchdog. User code should let it propagate.
class KilledError : public Error {
 public:
  using Error::Error;
};

}  // namespace mxn::rt
