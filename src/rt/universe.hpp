#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "rt/error.hpp"
#include "rt/fault.hpp"
#include "trace/trace.hpp"

namespace mxn::rt {

class Mailbox;

/// Aggregate traffic counters. Snapshots are cheap to take and compare; the
/// benches use them to report messages/bytes moved per transfer.
struct StatsSnapshot {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;

  friend StatsSnapshot operator-(StatsSnapshot a, StatsSnapshot b) {
    return {a.messages - b.messages, a.bytes - b.bytes};
  }
};

/// Shared state of one spawn(): the set of "processes" (threads), global
/// traffic counters, the abort flag used to unwind siblings after a failure,
/// the optional fault injector, and the all-blocked watchdog that detects
/// communication deadlock.
///
/// The watchdog is timeout-based: when every live thread of the universe is
/// blocked in a matched receive and no message has been delivered for
/// `deadlock_timeout_ms`, all blocked threads throw DeadlockError. A timeout
/// of zero disables detection. Ranks killed by a fault plan are subtracted
/// from the all-blocked head count, so a silent death cannot mask a
/// deadlock among the survivors.
class Universe {
 public:
  Universe(int size, int deadlock_timeout_ms, int recv_timeout_ms = 0)
      : size_(size),
        deadlock_timeout_ms_(deadlock_timeout_ms),
        recv_timeout_ms_(recv_timeout_ms),
        messages_ctr_(trace::counter("rt.messages")),
        bytes_ctr_(trace::counter("rt.bytes")) {}

  [[nodiscard]] int size() const { return size_; }

  // --- traffic accounting -------------------------------------------------
  void count_message(std::uint64_t bytes) {
    messages_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(bytes, std::memory_order_relaxed);
    // Mirror into the process-wide metrics registry (docs/OBSERVABILITY.md);
    // snapshots via stats() keep working unchanged. The registry references
    // are resolved once per universe (members), keeping the magic-static
    // guard off this hot path.
    messages_ctr_.add(1);
    bytes_ctr_.add(bytes);
    note_activity();
  }

  [[nodiscard]] StatsSnapshot stats() const {
    return {messages_.load(std::memory_order_relaxed),
            bytes_.load(std::memory_order_relaxed)};
  }

  // --- abort handling -----------------------------------------------------
  void abort() {
    aborted_.store(true, std::memory_order_release);
    notify_all_mailboxes();
  }
  [[nodiscard]] bool aborted() const {
    return aborted_.load(std::memory_order_acquire);
  }

  // --- fault injection ----------------------------------------------------
  void set_faults(std::unique_ptr<FaultInjector> f) { faults_ = std::move(f); }
  [[nodiscard]] FaultInjector* faults() const { return faults_.get(); }

  /// Kill-clock tick for `rank` (a universe rank). Throws KilledError at the
  /// rank's appointed operation when a fault plan says so; no-op otherwise.
  void fault_on_op(int rank) {
    if (faults_) faults_->on_op(rank);
  }

  /// A rank died silently (fault-injected kill). The survivors are not
  /// aborted — they must discover the failure through their own deadlines,
  /// exactly like peers of a crashed MPI process.
  void note_death();
  /// note_death() that also records WHICH universe rank died, so survivors
  /// can name it in timeout errors (is_dead/dead_ranks) and a recovery layer
  /// can splice it out (Communicator::split_live, src/redundancy).
  void note_death_of(int rank);
  [[nodiscard]] int dead() const {
    return dead_.load(std::memory_order_acquire);
  }
  /// True when `rank` (a universe rank) was reported via note_death_of().
  [[nodiscard]] bool is_dead(int rank) const {
    return rank >= 0 && rank < size_ &&
           dead_flags_[static_cast<std::size_t>(rank)].load(
               std::memory_order_acquire);
  }
  /// The universe ranks reported dead so far, ascending.
  [[nodiscard]] std::vector<int> dead_ranks() const;
  /// Suffix for survivor-side timeout errors: names the known dead ranks (or
  /// is empty when none died) and bumps the fault.dead_rank_detected counter
  /// per call, so chaos tests can assert the detection happened.
  [[nodiscard]] std::string timeout_dead_report();

  // --- per-call deadlines ---------------------------------------------------
  /// Spawn-wide default receive deadline (SpawnOptions); 0 = no deadline.
  [[nodiscard]] int default_recv_timeout_ms() const {
    return recv_timeout_ms_;
  }

  /// The one blocked-wait loop of the runtime: every facility that parks a
  /// thread on a condition variable (mailbox receives, split rendezvous)
  /// funnels through here so the abort / deadlock / deadline checks exist
  /// exactly once. `ready` is re-evaluated under `lock`; `timeout_ms` < 0
  /// selects the spawn-wide default, 0 disables the deadline.
  ///
  /// Throws AbortError when the universe aborted, DeadlockError when the
  /// watchdog trips, TimeoutError when the deadline passes first.
  template <class Pred>
  void blocked_wait(std::unique_lock<std::mutex>& lock,
                    std::condition_variable& cv, const char* what,
                    Pred&& ready, int timeout_ms = -1) {
    if (ready()) return;
    const int eff = timeout_ms < 0 ? recv_timeout_ms_ : timeout_ms;
    const std::int64_t deadline_ns =
        eff > 0 ? trace::now_ns() + static_cast<std::int64_t>(eff) * 1'000'000
                : 0;
    block_enter();
    while (true) {
      if (aborted()) {
        block_exit();
        throw AbortError(std::string("universe aborted while blocked in ") +
                         what);
      }
      if (deadlocked()) {
        block_exit();
        throw DeadlockError(
            std::string("all live processes blocked in matched waits (") +
            what + ")" + deadlock_report());
      }
      if (ready()) break;
      if (deadline_ns != 0 && trace::now_ns() >= deadline_ns) {
        block_exit();
        trace::instant("rt.timeout", "rt", static_cast<std::uint64_t>(eff));
        throw TimeoutError(std::string(what) + " deadline of " +
                           std::to_string(eff) + " ms exceeded" +
                           timeout_dead_report());
      }
      cv.wait_for(lock, std::chrono::milliseconds(50));
      check_deadlock();
    }
    block_exit();
  }

  // --- deadlock watchdog ----------------------------------------------------
  void block_enter();
  void block_exit();
  void note_activity();

  /// Called from the wait loop of a blocked thread; returns true (and trips
  /// the deadlock flag, waking everyone) when every live thread has been
  /// idle-blocked past the timeout.
  bool check_deadlock();

  [[nodiscard]] bool deadlocked() const {
    return deadlocked_.load(std::memory_order_acquire);
  }

  /// Causal timeline attached to DeadlockError: each blocked rank's last few
  /// trace events (empty unless tracing was enabled). Valid — and immutable —
  /// once deadlocked() returns true.
  [[nodiscard]] const std::string& deadlock_report() const {
    return deadlock_report_;
  }

  // Mailboxes register themselves so abort/deadlock can wake their waiters.
  void register_mailbox(Mailbox* box);
  void unregister_mailbox(Mailbox* box);

 private:
  void notify_all_mailboxes();

  int size_;
  int deadlock_timeout_ms_;
  int recv_timeout_ms_;

  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> bytes_{0};
  trace::Counter& messages_ctr_;
  trace::Counter& bytes_ctr_;

  std::atomic<bool> aborted_{false};
  std::atomic<bool> deadlocked_{false};
  std::mutex report_mu_;  // serializes the one-time deadlock report build
  std::string deadlock_report_;

  std::unique_ptr<FaultInjector> faults_;
  std::atomic<int> dead_{0};
  // One flag per universe rank, set by note_death_of(). size_ is declared
  // (and constructor-initialized) before this member, so the initializer may
  // read it.
  std::unique_ptr<std::atomic<bool>[]> dead_flags_{
      new std::atomic<bool>[size_ > 0 ? static_cast<std::size_t>(size_) : 1]()};

  std::atomic<int> blocked_{0};
  // Steady-clock time (ns since epoch of the clock) at which the universe
  // became fully blocked; 0 means "not fully blocked" or activity since.
  std::atomic<std::int64_t> all_blocked_since_{0};

  std::mutex boxes_mu_;
  std::vector<Mailbox*> boxes_;
};

}  // namespace mxn::rt
