#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace mxn::rt {

class Mailbox;

/// Aggregate traffic counters. Snapshots are cheap to take and compare; the
/// benches use them to report messages/bytes moved per transfer.
struct StatsSnapshot {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;

  friend StatsSnapshot operator-(StatsSnapshot a, StatsSnapshot b) {
    return {a.messages - b.messages, a.bytes - b.bytes};
  }
};

/// Shared state of one spawn(): the set of "processes" (threads), global
/// traffic counters, the abort flag used to unwind siblings after a failure,
/// and the all-blocked watchdog that detects communication deadlock.
///
/// The watchdog is timeout-based: when every thread of the universe is
/// blocked in a matched receive and no message has been delivered for
/// `deadlock_timeout_ms`, all blocked threads throw DeadlockError. A timeout
/// of zero disables detection.
class Universe {
 public:
  Universe(int size, int deadlock_timeout_ms)
      : size_(size), deadlock_timeout_ms_(deadlock_timeout_ms) {}

  [[nodiscard]] int size() const { return size_; }

  // --- traffic accounting -------------------------------------------------
  void count_message(std::uint64_t bytes) {
    messages_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(bytes, std::memory_order_relaxed);
    // Mirror into the process-wide metrics registry (docs/OBSERVABILITY.md);
    // snapshots via stats() keep working unchanged.
    static trace::Counter& messages = trace::counter("rt.messages");
    static trace::Counter& bytes_c = trace::counter("rt.bytes");
    messages.add(1);
    bytes_c.add(bytes);
    note_activity();
  }

  [[nodiscard]] StatsSnapshot stats() const {
    return {messages_.load(std::memory_order_relaxed),
            bytes_.load(std::memory_order_relaxed)};
  }

  // --- abort handling -----------------------------------------------------
  void abort() {
    aborted_.store(true, std::memory_order_release);
    notify_all_mailboxes();
  }
  [[nodiscard]] bool aborted() const {
    return aborted_.load(std::memory_order_acquire);
  }

  // --- deadlock watchdog ----------------------------------------------------
  void block_enter();
  void block_exit();
  void note_activity();

  /// Called from the wait loop of a blocked thread; returns true (and trips
  /// the deadlock flag, waking everyone) when the whole universe has been
  /// idle-blocked past the timeout.
  bool check_deadlock();

  [[nodiscard]] bool deadlocked() const {
    return deadlocked_.load(std::memory_order_acquire);
  }

  /// Causal timeline attached to DeadlockError: each blocked rank's last few
  /// trace events (empty unless tracing was enabled). Valid — and immutable —
  /// once deadlocked() returns true.
  [[nodiscard]] const std::string& deadlock_report() const {
    return deadlock_report_;
  }

  // Mailboxes register themselves so abort/deadlock can wake their waiters.
  void register_mailbox(Mailbox* box);
  void unregister_mailbox(Mailbox* box);

 private:
  void notify_all_mailboxes();

  int size_;
  int deadlock_timeout_ms_;

  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> bytes_{0};

  std::atomic<bool> aborted_{false};
  std::atomic<bool> deadlocked_{false};
  std::mutex report_mu_;  // serializes the one-time deadlock report build
  std::string deadlock_report_;

  std::atomic<int> blocked_{0};
  // Steady-clock time (ns since epoch of the clock) at which the universe
  // became fully blocked; 0 means "not fully blocked" or activity since.
  std::atomic<std::int64_t> all_blocked_since_{0};

  std::mutex boxes_mu_;
  std::vector<Mailbox*> boxes_;
};

}  // namespace mxn::rt
