#pragma once

#include <cstddef>

#include "rt/buffer.hpp"

namespace mxn::rt {

/// Wildcards for matched receives, mirroring MPI_ANY_SOURCE / MPI_ANY_TAG.
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// A message in flight: sender rank (within the communicator it was sent
/// on), tag, and a refcounted payload. The threads of a spawn model separate
/// address spaces, exactly like MPI ranks on one node — but ownership of an
/// immutable payload block can still be TRANSFERRED (move) or SHARED
/// (refcount bump, e.g. one bcast block fanned to N mailboxes) without
/// copying a byte, because nobody mutates a payload after it is sent
/// (Buffer::mutable_data enforces sole ownership for writes).
struct Message {
  int src = 0;
  int tag = 0;
  Buffer payload;
};

}  // namespace mxn::rt
