#pragma once

#include <cstddef>
#include <vector>

namespace mxn::rt {

/// Wildcards for matched receives, mirroring MPI_ANY_SOURCE / MPI_ANY_TAG.
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// A message in flight: sender rank (within the communicator it was sent
/// on), tag, and an owned payload. Payloads are copied at send time — the
/// threads of a spawn model separate address spaces, exactly like MPI ranks
/// on one node, so no sharing of live buffers is permitted.
struct Message {
  int src = 0;
  int tag = 0;
  std::vector<std::byte> payload;
};

}  // namespace mxn::rt
