#include "rt/universe.hpp"

#include <algorithm>
#include <chrono>

#include "rt/mailbox.hpp"

namespace mxn::rt {

namespace {
std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

void Universe::block_enter() {
  const int now_blocked = blocked_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (now_blocked == size_ - dead_.load(std::memory_order_acquire)) {
    all_blocked_since_.store(steady_now_ns(), std::memory_order_release);
  }
}

void Universe::block_exit() {
  blocked_.fetch_sub(1, std::memory_order_acq_rel);
  all_blocked_since_.store(0, std::memory_order_release);
}

void Universe::note_activity() {
  all_blocked_since_.store(0, std::memory_order_release);
}

void Universe::note_death() {
  const int dead = dead_.fetch_add(1, std::memory_order_acq_rel) + 1;
  // The dying thread will never block again: if everyone still alive is
  // already parked, the all-blocked clock starts now, not at the next
  // block_enter (which may never come).
  if (blocked_.load(std::memory_order_acquire) == size_ - dead) {
    all_blocked_since_.store(steady_now_ns(), std::memory_order_release);
  }
  notify_all_mailboxes();
}

void Universe::note_death_of(int rank) {
  if (rank >= 0 && rank < size_)
    dead_flags_[static_cast<std::size_t>(rank)].store(
        true, std::memory_order_release);
  note_death();
}

std::vector<int> Universe::dead_ranks() const {
  std::vector<int> out;
  for (int r = 0; r < size_; ++r)
    if (dead_flags_[static_cast<std::size_t>(r)].load(
            std::memory_order_acquire))
      out.push_back(r);
  return out;
}

std::string Universe::timeout_dead_report() {
  if (dead_.load(std::memory_order_acquire) == 0) return {};
  // Survivor-side detection: the deadline tripped while peers are known
  // dead. Count the detection so chaos suites can assert it happened.
  static trace::Counter& detected = trace::counter("fault.dead_rank_detected");
  detected.add(1);
  const std::vector<int> dead = dead_ranks();
  if (dead.empty())
    return "; " + std::to_string(dead_.load(std::memory_order_acquire)) +
           " rank(s) known dead (fault-injected kill)";
  std::string s = "; known dead rank(s):";
  for (int r : dead) s += " " + std::to_string(r);
  s += " (fault-injected kill)";
  return s;
}

bool Universe::check_deadlock() {
  if (deadlock_timeout_ms_ <= 0) return false;
  if (deadlocked_.load(std::memory_order_acquire)) return true;
  const int live = size_ - dead_.load(std::memory_order_acquire);
  if (blocked_.load(std::memory_order_acquire) != live) return false;
  const std::int64_t since = all_blocked_since_.load(std::memory_order_acquire);
  if (since == 0) return false;
  const std::int64_t elapsed_ms = (steady_now_ns() - since) / 1'000'000;
  if (elapsed_ms < deadlock_timeout_ms_) return false;
  {
    // First tripper builds the causal timeline before publishing the flag;
    // every live rank is idle-blocked, so the event rings are quiescent.
    std::lock_guard lock(report_mu_);
    if (!deadlocked_.load(std::memory_order_acquire)) {
      const std::string tail = trace::tail_report(8);
      if (!tail.empty())
        deadlock_report_ =
            "\nLast trace events per rank at deadlock:\n" + tail;
      deadlocked_.store(true, std::memory_order_release);
      notify_all_mailboxes();
    }
  }
  return true;
}

void Universe::register_mailbox(Mailbox* box) {
  std::lock_guard lock(boxes_mu_);
  boxes_.push_back(box);
}

void Universe::unregister_mailbox(Mailbox* box) {
  std::lock_guard lock(boxes_mu_);
  boxes_.erase(std::remove(boxes_.begin(), boxes_.end(), box), boxes_.end());
}

void Universe::notify_all_mailboxes() {
  std::lock_guard lock(boxes_mu_);
  for (Mailbox* box : boxes_) box->notify();
}

}  // namespace mxn::rt
