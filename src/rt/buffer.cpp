#include "rt/buffer.hpp"

#include <cassert>
#include <mutex>
#include <new>

#include "trace/trace.hpp"

namespace mxn::rt {

namespace {

// Power-of-two buckets from 64 B to 16 MiB; anything larger is served by the
// allocator directly (one-off jumbo payloads should not pin pool memory).
constexpr int kMinShift = 6;
constexpr int kMaxShift = 24;
constexpr int kBucketCount = kMaxShift - kMinShift + 1;
// Per-bucket freelist cap: steady-state M×N traffic needs at most a handful
// of in-flight blocks per bucket; beyond that, give memory back.
constexpr int kMaxFreePerBucket = 32;

int bucket_for(std::size_t n) {
  std::size_t cap = std::size_t{1} << kMinShift;
  for (int b = 0; b < kBucketCount; ++b, cap <<= 1)
    if (n <= cap) return b;
  return -1;  // oversize: unpooled
}

struct Shelf {
  std::mutex mu;
  detail::BufferBlock* head = nullptr;
  int count = 0;
};

struct Pool {
  Shelf shelves[kBucketCount];
};

// Leaked on purpose: payloads may still be released from detached rank
// threads while static destructors run.
Pool& pool() {
  static Pool* p = new Pool;
  return *p;
}

struct Counters {
  trace::Counter& copied;
  trace::Counter& hit;
  trace::Counter& miss;
};

Counters& counters() {
  static Counters c{trace::counter("rt.bytes_copied"),
                    trace::counter("rt.pool.hit"),
                    trace::counter("rt.pool.miss")};
  return c;
}

/// Free a block and whatever storage flavor it owns: pooled/oversize blocks
/// hold a kBufferAlign-aligned raw allocation, adopted blocks free through
/// their vector.
void destroy_block(detail::BufferBlock* b) {
  if (b->data != nullptr && b->adopted.empty())
    ::operator delete(b->data, std::align_val_t{kBufferAlign});
  delete b;
}

}  // namespace

void note_bytes_copied(std::size_t n) {
  if (n > 0) counters().copied.add(static_cast<std::uint64_t>(n));
}

namespace detail {

BufferBlock* pool_acquire(std::size_t n) {
  const int bucket = bucket_for(n);
  if (bucket >= 0) {
    Shelf& shelf = pool().shelves[bucket];
    std::lock_guard<std::mutex> lock(shelf.mu);
    if (shelf.head != nullptr) {
      BufferBlock* b = shelf.head;
      shelf.head = b->next;
      --shelf.count;
      b->next = nullptr;
      b->refs.store(1, std::memory_order_relaxed);
      b->size = n;
      counters().hit.add(1);
      return b;
    }
  }
  counters().miss.add(1);
  auto* b = new BufferBlock;
  b->bucket = bucket;
  b->size = n;
  const std::size_t cap =
      bucket >= 0 ? (std::size_t{1} << (kMinShift + bucket)) : n;
  b->data = static_cast<std::byte*>(
      ::operator new(cap, std::align_val_t{kBufferAlign}));
  // The alignment contract the pack/unpack kernels and view<T> rely on.
  assert(reinterpret_cast<std::uintptr_t>(b->data) % kBufferAlign == 0);
  return b;
}

BufferBlock* adopt_block(std::vector<std::byte> v) {
  auto* b = new BufferBlock;
  b->bucket = -1;
  b->size = v.size();
  b->adopted = std::move(v);
  b->data = b->adopted.data();
  return b;
}

void block_release(BufferBlock* b) {
  if (b->bucket >= 0) {
    Shelf& shelf = pool().shelves[b->bucket];
    std::lock_guard<std::mutex> lock(shelf.mu);
    if (shelf.count < kMaxFreePerBucket) {
      b->next = shelf.head;
      shelf.head = b;
      ++shelf.count;
      return;
    }
  }
  destroy_block(b);
}

}  // namespace detail

BufferPoolStats buffer_pool_stats() {
  BufferPoolStats s;
  s.hits = counters().hit.value();
  s.misses = counters().miss.value();
  for (auto& shelf : pool().shelves) {
    std::lock_guard<std::mutex> lock(shelf.mu);
    s.free_blocks += shelf.count;
  }
  return s;
}

void buffer_pool_trim() {
  for (auto& shelf : pool().shelves) {
    std::lock_guard<std::mutex> lock(shelf.mu);
    while (shelf.head != nullptr) {
      detail::BufferBlock* b = shelf.head;
      shelf.head = b->next;
      --shelf.count;
      destroy_block(b);
    }
  }
}

}  // namespace mxn::rt
