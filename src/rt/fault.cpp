#include "rt/fault.hpp"

#include <cstdlib>
#include <sstream>

#include "rt/error.hpp"
#include "trace/trace.hpp"

namespace mxn::rt {

namespace {

// splitmix64: cheap, well-distributed stateless mixer — the decision for a
// given (seed, rank, counter) is a pure function of those three values.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double parse_double(const std::string& key, const std::string& v) {
  try {
    std::size_t used = 0;
    const double d = std::stod(v, &used);
    if (used != v.size()) throw std::invalid_argument(v);
    return d;
  } catch (const std::exception&) {
    throw UsageError("fault plan: bad value '" + v + "' for '" + key + "'");
  }
}

int parse_int(const std::string& key, const std::string& v) {
  try {
    std::size_t used = 0;
    const int i = std::stoi(v, &used);
    if (used != v.size()) throw std::invalid_argument(v);
    return i;
  } catch (const std::exception&) {
    throw UsageError("fault plan: bad value '" + v + "' for '" + key + "'");
  }
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan p;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string::npos)
      throw UsageError("fault plan: expected key=value, got '" + item + "'");
    const std::string key = item.substr(0, eq);
    const std::string val = item.substr(eq + 1);
    if (key == "seed") {
      p.seed = static_cast<std::uint64_t>(parse_int(key, val));
    } else if (key == "drop") {
      p.drop = parse_double(key, val);
    } else if (key == "dup") {
      p.dup = parse_double(key, val);
    } else if (key == "reorder") {
      p.reorder = parse_double(key, val);
    } else if (key == "delay") {
      p.delay = parse_double(key, val);
    } else if (key == "delay_ms") {
      p.delay_ms = parse_int(key, val);
    } else if (key == "kill_rank") {
      p.kill_rank = parse_int(key, val);
    } else if (key == "kill_after") {
      p.kill_after = parse_int(key, val);
    } else if (key == "min_tag") {
      p.min_tag = parse_int(key, val);
    } else {
      throw UsageError("fault plan: unknown key '" + key + "'");
    }
  }
  for (double r : {p.drop, p.dup, p.reorder, p.delay})
    if (r < 0 || r > 1)
      throw UsageError("fault plan: rates must be within [0, 1]");
  return p;
}

std::optional<FaultPlan> FaultPlan::from_env() {
  const char* v = std::getenv("MXN_FAULTS");
  if (v == nullptr || *v == '\0') return std::nullopt;
  return parse(v);
}

std::string FaultPlan::to_string() const {
  std::ostringstream os;
  os << "seed=" << seed << ",drop=" << drop << ",dup=" << dup
     << ",reorder=" << reorder << ",delay=" << delay
     << ",delay_ms=" << delay_ms << ",kill_rank=" << kill_rank
     << ",kill_after=" << kill_after << ",min_tag=" << min_tag;
  return os.str();
}

FaultInjector::FaultInjector(FaultPlan plan, int nranks)
    : plan_(plan),
      ops_(static_cast<std::size_t>(nranks)),
      sends_(static_cast<std::size_t>(nranks)) {}

void FaultInjector::on_op(int rank) {
  if (rank < 0 || rank >= static_cast<int>(ops_.size())) return;
  const auto op = ops_[rank].fetch_add(1, std::memory_order_relaxed);
  // Sticky: every operation at or past the appointed one throws, so user
  // code that (wrongly) catches KilledError cannot resurrect the rank.
  if (rank == plan_.kill_rank && plan_.kill_after >= 0 &&
      op >= static_cast<std::uint64_t>(plan_.kill_after)) {
    if (op == static_cast<std::uint64_t>(plan_.kill_after)) {
      killed_.store(true, std::memory_order_relaxed);
      static trace::Counter& killed = trace::counter("fault.killed");
      killed.add(1);
      trace::instant("fault.kill", "fault", op);
    }
    throw KilledError("fault plan killed rank " + std::to_string(rank) +
                      " at its operation #" + std::to_string(op));
  }
}

double FaultInjector::uniform(int rank, std::uint64_t op) const {
  const std::uint64_t h = mix64(plan_.seed ^ mix64(
      (static_cast<std::uint64_t>(rank) << 32) ^ op));
  return static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
}

FaultAction FaultInjector::on_send(int rank, int tag) {
  if (rank < 0 || rank >= static_cast<int>(sends_.size()))
    return FaultAction::None;
  if (tag < plan_.min_tag) return FaultAction::None;  // spares internal tags
  const auto op = sends_[rank].fetch_add(1, std::memory_order_relaxed);
  double u = uniform(rank, op);
  if (u < plan_.drop) {
    static trace::Counter& dropped = trace::counter("fault.dropped");
    dropped.add(1);
    trace::instant("fault.drop", "fault", static_cast<std::uint64_t>(tag));
    return FaultAction::Drop;
  }
  u -= plan_.drop;
  if (u < plan_.dup) {
    static trace::Counter& duplicated = trace::counter("fault.duplicated");
    duplicated.add(1);
    trace::instant("fault.dup", "fault", static_cast<std::uint64_t>(tag));
    return FaultAction::Duplicate;
  }
  u -= plan_.dup;
  if (u < plan_.reorder) {
    static trace::Counter& reordered = trace::counter("fault.reordered");
    reordered.add(1);
    trace::instant("fault.reorder", "fault", static_cast<std::uint64_t>(tag));
    return FaultAction::Reorder;
  }
  u -= plan_.reorder;
  if (u < plan_.delay) {
    static trace::Counter& delayed = trace::counter("fault.delayed");
    delayed.add(1);
    trace::instant("fault.delay", "fault", static_cast<std::uint64_t>(tag));
    return FaultAction::Delay;
  }
  return FaultAction::None;
}

}  // namespace mxn::rt
