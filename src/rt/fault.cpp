#include "rt/fault.hpp"

#include <cstdlib>
#include <map>
#include <sstream>

#include "rt/error.hpp"
#include "trace/trace.hpp"

namespace mxn::rt {

namespace {

// splitmix64: cheap, well-distributed stateless mixer — the decision for a
// given (seed, rank, counter) is a pure function of those three values.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double parse_double(const std::string& key, const std::string& v) {
  try {
    std::size_t used = 0;
    const double d = std::stod(v, &used);
    if (used != v.size()) throw std::invalid_argument(v);
    return d;
  } catch (const std::exception&) {
    throw UsageError("fault plan: bad value '" + v + "' for '" + key + "'");
  }
}

int parse_int(const std::string& key, const std::string& v) {
  try {
    std::size_t used = 0;
    const int i = std::stoi(v, &used);
    if (used != v.size()) throw std::invalid_argument(v);
    return i;
  } catch (const std::exception&) {
    throw UsageError("fault plan: bad value '" + v + "' for '" + key + "'");
  }
}

// One "rank@after" kill-list entry.
KillSpec parse_kill(const std::string& v) {
  const auto at = v.find('@');
  if (at == std::string::npos || at == 0 || at + 1 >= v.size())
    throw UsageError("fault plan: kill entries are rank@after, got '" + v +
                     "'");
  KillSpec k{parse_int("kill", v.substr(0, at)),
             parse_int("kill", v.substr(at + 1))};
  if (k.rank < 0 || k.after < 0)
    throw UsageError("fault plan: kill rank and operation must be >= 0");
  return k;
}

}  // namespace

std::vector<KillSpec> FaultPlan::all_kills() const {
  // Earliest-wins per rank: a rank can only die once, so duplicate entries
  // collapse onto the smallest operation count. Ascending rank order keeps
  // the result deterministic regardless of spec order.
  std::map<int, int> earliest;
  const auto note = [&](const KillSpec& k) {
    if (k.rank < 0 || k.after < 0) return;
    const auto it = earliest.find(k.rank);
    if (it == earliest.end() || k.after < it->second)
      earliest[k.rank] = k.after;
  };
  if (kill_rank >= 0 && kill_after >= 0) note({kill_rank, kill_after});
  for (const KillSpec& k : kills) note(k);
  std::vector<KillSpec> out;
  out.reserve(earliest.size());
  for (const auto& [r, a] : earliest) out.push_back({r, a});
  return out;
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan p;
  std::stringstream ss(spec);
  std::string item;
  bool in_kill_list = false;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string::npos) {
      // "kill=2@40,5@90" splits at the commas like every other item; an
      // '='-less item directly following a kill= key continues its list.
      if (in_kill_list) {
        p.kills.push_back(parse_kill(item));
        continue;
      }
      throw UsageError("fault plan: expected key=value, got '" + item + "'");
    }
    const std::string key = item.substr(0, eq);
    const std::string val = item.substr(eq + 1);
    in_kill_list = key == "kill";
    if (key == "kill") {
      p.kills.push_back(parse_kill(val));
    } else if (key == "seed") {
      p.seed = static_cast<std::uint64_t>(parse_int(key, val));
    } else if (key == "drop") {
      p.drop = parse_double(key, val);
    } else if (key == "dup") {
      p.dup = parse_double(key, val);
    } else if (key == "reorder") {
      p.reorder = parse_double(key, val);
    } else if (key == "delay") {
      p.delay = parse_double(key, val);
    } else if (key == "delay_ms") {
      p.delay_ms = parse_int(key, val);
    } else if (key == "kill_rank") {
      p.kill_rank = parse_int(key, val);
    } else if (key == "kill_after") {
      p.kill_after = parse_int(key, val);
    } else if (key == "min_tag") {
      p.min_tag = parse_int(key, val);
    } else {
      throw UsageError("fault plan: unknown key '" + key + "'");
    }
  }
  for (double r : {p.drop, p.dup, p.reorder, p.delay})
    if (r < 0 || r > 1)
      throw UsageError("fault plan: rates must be within [0, 1]");
  return p;
}

std::optional<FaultPlan> FaultPlan::from_env() {
  const char* v = std::getenv("MXN_FAULTS");
  if (v == nullptr || *v == '\0') return std::nullopt;
  return parse(v);
}

std::string FaultPlan::to_string() const {
  std::ostringstream os;
  os << "seed=" << seed << ",drop=" << drop << ",dup=" << dup
     << ",reorder=" << reorder << ",delay=" << delay
     << ",delay_ms=" << delay_ms << ",kill_rank=" << kill_rank
     << ",kill_after=" << kill_after << ",min_tag=" << min_tag;
  if (!kills.empty()) {
    os << ",kill=";
    for (std::size_t i = 0; i < kills.size(); ++i)
      os << (i ? "," : "") << kills[i].rank << '@' << kills[i].after;
  }
  return os.str();
}

FaultInjector::FaultInjector(FaultPlan plan, int nranks)
    : plan_(plan),
      ops_(static_cast<std::size_t>(nranks)),
      sends_(static_cast<std::size_t>(nranks)),
      kill_at_(static_cast<std::size_t>(nranks), -1) {
  for (const KillSpec& k : plan_.all_kills()) {
    if (k.rank < 0 || k.rank >= nranks) continue;
    auto& at = kill_at_[static_cast<std::size_t>(k.rank)];
    if (at < 0 || k.after < at) at = k.after;  // earliest kill wins
  }
}

void FaultInjector::on_op(int rank) {
  if (rank < 0 || rank >= static_cast<int>(ops_.size())) return;
  const auto op = ops_[rank].fetch_add(1, std::memory_order_relaxed);
  // Sticky: every operation at or past the appointed one throws, so user
  // code that (wrongly) catches KilledError cannot resurrect the rank.
  const int kill_at = kill_at_[static_cast<std::size_t>(rank)];
  if (kill_at >= 0 && op >= static_cast<std::uint64_t>(kill_at)) {
    if (op == static_cast<std::uint64_t>(kill_at)) {
      killed_.store(true, std::memory_order_relaxed);
      static trace::Counter& killed = trace::counter("fault.killed");
      killed.add(1);
      trace::instant("fault.kill", "fault", op);
    }
    throw KilledError("fault plan killed rank " + std::to_string(rank) +
                      " at its operation #" + std::to_string(op));
  }
}

double FaultInjector::uniform(int rank, std::uint64_t op) const {
  const std::uint64_t h = mix64(plan_.seed ^ mix64(
      (static_cast<std::uint64_t>(rank) << 32) ^ op));
  return static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
}

FaultAction FaultInjector::on_send(int rank, int tag) {
  if (rank < 0 || rank >= static_cast<int>(sends_.size()))
    return FaultAction::None;
  if (tag < plan_.min_tag) return FaultAction::None;  // spares internal tags
  const auto op = sends_[rank].fetch_add(1, std::memory_order_relaxed);
  double u = uniform(rank, op);
  if (u < plan_.drop) {
    static trace::Counter& dropped = trace::counter("fault.dropped");
    dropped.add(1);
    trace::instant("fault.drop", "fault", static_cast<std::uint64_t>(tag));
    return FaultAction::Drop;
  }
  u -= plan_.drop;
  if (u < plan_.dup) {
    static trace::Counter& duplicated = trace::counter("fault.duplicated");
    duplicated.add(1);
    trace::instant("fault.dup", "fault", static_cast<std::uint64_t>(tag));
    return FaultAction::Duplicate;
  }
  u -= plan_.dup;
  if (u < plan_.reorder) {
    static trace::Counter& reordered = trace::counter("fault.reordered");
    reordered.add(1);
    trace::instant("fault.reorder", "fault", static_cast<std::uint64_t>(tag));
    return FaultAction::Reorder;
  }
  u -= plan_.reorder;
  if (u < plan_.delay) {
    static trace::Counter& delayed = trace::counter("fault.delayed");
    delayed.add(1);
    trace::instant("fault.delay", "fault", static_cast<std::uint64_t>(tag));
    return FaultAction::Delay;
  }
  return FaultAction::None;
}

}  // namespace mxn::rt
