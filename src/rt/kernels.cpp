#include "rt/kernels.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

#include "trace/trace.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#define MXN_KERNELS_X86 1
#include <immintrin.h>
#else
#define MXN_KERNELS_X86 0
#endif

namespace mxn::rt::kernels {

namespace {

// Counter names carry the sched.kernel prefix: the kernels live in rt for
// layering (dad::DistArray links rt, not sched) but serve the schedule
// executors' data plane (docs/PERFORMANCE.md).
struct Counters {
  trace::Counter& memcpy_bytes;
  trace::Counter& simd_bytes;
  trace::Counter& scalar_bytes;
};

Counters& ctr() {
  static Counters c{trace::counter("sched.kernel.memcpy_bytes"),
                    trace::counter("sched.kernel.simd_bytes"),
                    trace::counter("sched.kernel.scalar_bytes")};
  return c;
}

Isa detect_isa() {
#if MXN_KERNELS_X86
#if defined(__GNUC__) || defined(__clang__)
  if (__builtin_cpu_supports("avx2")) return Isa::Avx2;
#endif
  return Isa::Sse2;  // baseline of every x86-64
#else
  return Isa::Scalar;
#endif
}

Isa best_isa() {
  static const Isa best = detect_isa();
  return best;
}

Isa clamp_isa(Isa want) {
  const Isa best = best_isa();
  return static_cast<int>(want) <= static_cast<int>(best) ? want : best;
}

Isa initial_isa() {
  if (const char* env = std::getenv("MXN_SIMD")) {
    const std::string v(env);
    if (v == "scalar") return Isa::Scalar;
    if (v == "sse2") return clamp_isa(Isa::Sse2);
    if (v == "avx2") return clamp_isa(Isa::Avx2);
  }
  return best_isa();
}

std::atomic<Isa>& isa_slot() {
  static std::atomic<Isa> isa{initial_isa()};
  return isa;
}

// --- strided gather/scatter, width 8 ---------------------------------------

void gather8_scalar(const std::uint64_t* s, std::uint64_t* d, std::int64_t n,
                    std::int64_t st) {
  for (std::int64_t i = 0; i < n; ++i) d[i] = s[i * st];
}

void scatter8_scalar(std::uint64_t* s, const std::uint64_t* d, std::int64_t n,
                     std::int64_t st) {
  for (std::int64_t i = 0; i < n; ++i) s[i * st] = d[i];
}

#if MXN_KERNELS_X86

// SSE2 tier: 4x unrolled with paired 128-bit stores. x86 has no gather
// instruction below AVX2; the win over -O2 scalar is the unrolled address
// arithmetic and wide stores.
void gather8_sse2(const std::uint64_t* s, std::uint64_t* d, std::int64_t n,
                  std::int64_t st) {
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4, s += 4 * st) {
    const __m128i a = _mm_set_epi64x(static_cast<long long>(s[st]),
                                     static_cast<long long>(s[0]));
    const __m128i b = _mm_set_epi64x(static_cast<long long>(s[3 * st]),
                                     static_cast<long long>(s[2 * st]));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(d + i), a);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(d + i + 2), b);
  }
  for (; i < n; ++i, s += st) d[i] = *s;
}

__attribute__((target("avx2"))) void gather8_avx2(const std::uint64_t* s,
                                                  std::uint64_t* d,
                                                  std::int64_t n,
                                                  std::int64_t st) {
  const __m256i idx =
      _mm256_setr_epi64x(0, st, 2 * st, 3 * st);  // element indices, scale 8
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4, s += 4 * st) {
    const __m256i v = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(s), idx, 8);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + i), v);
  }
  for (; i < n; ++i, s += st) d[i] = *s;
}

#endif  // MXN_KERNELS_X86

// --- strided gather/scatter, width 4 ---------------------------------------

void gather4_scalar(const std::uint32_t* s, std::uint32_t* d, std::int64_t n,
                    std::int64_t st) {
  for (std::int64_t i = 0; i < n; ++i) d[i] = s[i * st];
}

void scatter4_scalar(std::uint32_t* s, const std::uint32_t* d, std::int64_t n,
                     std::int64_t st) {
  for (std::int64_t i = 0; i < n; ++i) s[i * st] = d[i];
}

#if MXN_KERNELS_X86

void gather4_sse2(const std::uint32_t* s, std::uint32_t* d, std::int64_t n,
                  std::int64_t st) {
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4, s += 4 * st) {
    const __m128i v = _mm_set_epi32(static_cast<int>(s[3 * st]),
                                    static_cast<int>(s[2 * st]),
                                    static_cast<int>(s[st]),
                                    static_cast<int>(s[0]));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(d + i), v);
  }
  for (; i < n; ++i, s += st) d[i] = *s;
}

__attribute__((target("avx2"))) void gather4_avx2(const std::uint32_t* s,
                                                  std::uint32_t* d,
                                                  std::int64_t n,
                                                  std::int64_t st) {
  const int s32 = static_cast<int>(st);
  const __m256i idx = _mm256_setr_epi32(0, s32, 2 * s32, 3 * s32, 4 * s32,
                                        5 * s32, 6 * s32, 7 * s32);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8, s += 8 * st) {
    const __m256i v =
        _mm256_i32gather_epi32(reinterpret_cast<const int*>(s), idx, 4);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + i), v);
  }
  for (; i < n; ++i, s += st) d[i] = *s;
}

#endif  // MXN_KERNELS_X86

// Scatter has no SIMD store-side instruction before AVX-512; the tiers
// share one unrolled form (the unrolling is what the strided store loop
// needs — the loads are contiguous already).
void scatter8_unrolled(std::uint64_t* s, const std::uint64_t* d,
                       std::int64_t n, std::int64_t st) {
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4, s += 4 * st) {
    s[0] = d[i];
    s[st] = d[i + 1];
    s[2 * st] = d[i + 2];
    s[3 * st] = d[i + 3];
  }
  for (; i < n; ++i, s += st) *s = d[i];
}

void scatter4_unrolled(std::uint32_t* s, const std::uint32_t* d,
                       std::int64_t n, std::int64_t st) {
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4, s += 4 * st) {
    s[0] = d[i];
    s[st] = d[i + 1];
    s[2 * st] = d[i + 2];
    s[3 * st] = d[i + 3];
  }
  for (; i < n; ++i, s += st) *s = d[i];
}

// i32gather indices are 32-bit: 7*st must not overflow. Strides are local
// storage distances so this never triggers in practice, but stay correct.
constexpr std::int64_t kMaxI32Stride = (std::int64_t{1} << 28);

// --- block trains ----------------------------------------------------------

// count blocks of `bb` bytes each, storage starts `sb` bytes apart. The
// switch pins the copy size so the compiler emits straight-line vector
// moves instead of a memcpy call per block.
template <bool Gather>
void block_train(std::byte* storage, std::byte* buf, std::int64_t count,
                 std::size_t bb, std::int64_t sb) {
  auto step = [&](auto copy) {
    for (std::int64_t b = 0; b < count; ++b, storage += sb, buf += bb)
      copy(Gather ? buf : storage, Gather ? storage : buf);
  };
  switch (bb) {
    case 2:
      step([](std::byte* d, const std::byte* s) { std::memcpy(d, s, 2); });
      break;
    case 4:
      step([](std::byte* d, const std::byte* s) { std::memcpy(d, s, 4); });
      break;
    case 8:
      step([](std::byte* d, const std::byte* s) { std::memcpy(d, s, 8); });
      break;
    case 16:
      step([](std::byte* d, const std::byte* s) { std::memcpy(d, s, 16); });
      break;
    case 24:
      step([](std::byte* d, const std::byte* s) { std::memcpy(d, s, 24); });
      break;
    case 32:
      step([](std::byte* d, const std::byte* s) { std::memcpy(d, s, 32); });
      break;
    case 64:
      step([](std::byte* d, const std::byte* s) { std::memcpy(d, s, 64); });
      break;
    default:
      step([bb](std::byte* d, const std::byte* s) { std::memcpy(d, s, bb); });
      break;
  }
}

// Generic per-element strided copy for widths without a dedicated kernel.
template <bool Gather>
void strided_generic(std::byte* storage, std::byte* buf, std::int64_t n,
                     std::size_t width, std::int64_t stride_bytes) {
  for (std::int64_t i = 0; i < n; ++i, storage += stride_bytes, buf += width) {
    if constexpr (Gather)
      std::memcpy(buf, storage, width);
    else
      std::memcpy(storage, buf, width);
  }
}

}  // namespace

Isa active_isa() { return isa_slot().load(std::memory_order_relaxed); }

void set_isa(Isa isa) {
  isa_slot().store(clamp_isa(isa), std::memory_order_relaxed);
}

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::Scalar:
      return "scalar";
    case Isa::Sse2:
      return "sse2";
    case Isa::Avx2:
      return "avx2";
  }
  return "?";
}

void gather_run(const void* storage, void* buf, std::size_t width,
                const BlockRun& r) {
  const auto* src = static_cast<const std::byte*>(storage) +
                    r.storage_off * static_cast<std::int64_t>(width);
  auto* dst = static_cast<std::byte*>(buf) +
              r.buf_off * static_cast<std::int64_t>(width);
  const std::size_t bytes =
      static_cast<std::size_t>(r.block_len * r.count) * width;
  if (bytes == 0) return;
  if (r.count == 1) {  // contiguous promotion
    std::memcpy(dst, src, bytes);
    ctr().memcpy_bytes.add(bytes);
    return;
  }
  if (r.block_len == 1) {  // pure strided gather
    const Isa isa = active_isa();
    if (width == 8) {
      const auto* s = reinterpret_cast<const std::uint64_t*>(src);
      auto* d = reinterpret_cast<std::uint64_t*>(dst);
#if MXN_KERNELS_X86
      if (isa == Isa::Avx2)
        gather8_avx2(s, d, r.count, r.block_stride);
      else if (isa == Isa::Sse2)
        gather8_sse2(s, d, r.count, r.block_stride);
      else
#endif
        gather8_scalar(s, d, r.count, r.block_stride);
      (isa == Isa::Scalar ? ctr().scalar_bytes : ctr().simd_bytes).add(bytes);
      return;
    }
    if (width == 4) {
      const auto* s = reinterpret_cast<const std::uint32_t*>(src);
      auto* d = reinterpret_cast<std::uint32_t*>(dst);
#if MXN_KERNELS_X86
      if (isa == Isa::Avx2 && r.block_stride > 0 &&
          r.block_stride < kMaxI32Stride)
        gather4_avx2(s, d, r.count, r.block_stride);
      else if (isa != Isa::Scalar)
        gather4_sse2(s, d, r.count, r.block_stride);
      else
#endif
        gather4_scalar(s, d, r.count, r.block_stride);
      (isa == Isa::Scalar ? ctr().scalar_bytes : ctr().simd_bytes).add(bytes);
      return;
    }
    strided_generic<true>(const_cast<std::byte*>(src), dst, r.count, width,
                          r.block_stride * static_cast<std::int64_t>(width));
    ctr().scalar_bytes.add(bytes);
    return;
  }
  // Block train: fixed-size copies, storage side strided.
  block_train<true>(const_cast<std::byte*>(src), dst, r.count,
                    static_cast<std::size_t>(r.block_len) * width,
                    r.block_stride * static_cast<std::int64_t>(width));
  (active_isa() == Isa::Scalar ? ctr().scalar_bytes : ctr().simd_bytes)
      .add(bytes);
}

void scatter_run(void* storage, const void* buf, std::size_t width,
                 const BlockRun& r) {
  auto* dst = static_cast<std::byte*>(storage) +
              r.storage_off * static_cast<std::int64_t>(width);
  const auto* src = static_cast<const std::byte*>(buf) +
                    r.buf_off * static_cast<std::int64_t>(width);
  const std::size_t bytes =
      static_cast<std::size_t>(r.block_len * r.count) * width;
  if (bytes == 0) return;
  if (r.count == 1) {  // contiguous promotion
    std::memcpy(dst, src, bytes);
    ctr().memcpy_bytes.add(bytes);
    return;
  }
  if (r.block_len == 1) {  // pure strided scatter
    const Isa isa = active_isa();
    if (width == 8) {
      auto* s = reinterpret_cast<std::uint64_t*>(dst);
      const auto* d = reinterpret_cast<const std::uint64_t*>(src);
      if (isa == Isa::Scalar)
        scatter8_scalar(s, d, r.count, r.block_stride);
      else
        scatter8_unrolled(s, d, r.count, r.block_stride);
      (isa == Isa::Scalar ? ctr().scalar_bytes : ctr().simd_bytes).add(bytes);
      return;
    }
    if (width == 4) {
      auto* s = reinterpret_cast<std::uint32_t*>(dst);
      const auto* d = reinterpret_cast<const std::uint32_t*>(src);
      if (isa == Isa::Scalar)
        scatter4_scalar(s, d, r.count, r.block_stride);
      else
        scatter4_unrolled(s, d, r.count, r.block_stride);
      (isa == Isa::Scalar ? ctr().scalar_bytes : ctr().simd_bytes).add(bytes);
      return;
    }
    strided_generic<false>(dst, const_cast<std::byte*>(src), r.count, width,
                           r.block_stride * static_cast<std::int64_t>(width));
    ctr().scalar_bytes.add(bytes);
    return;
  }
  block_train<false>(dst, const_cast<std::byte*>(src), r.count,
                     static_cast<std::size_t>(r.block_len) * width,
                     r.block_stride * static_cast<std::int64_t>(width));
  (active_isa() == Isa::Scalar ? ctr().scalar_bytes : ctr().simd_bytes)
      .add(bytes);
}

}  // namespace mxn::rt::kernels
