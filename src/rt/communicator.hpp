#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "rt/error.hpp"
#include "rt/mailbox.hpp"
#include "rt/message.hpp"
#include "rt/request.hpp"
#include "rt/serialize.hpp"
#include "rt/universe.hpp"
#include "trace/trace.hpp"

namespace mxn::rt {

class Communicator;

/// Returned by split() for ranks that pass kUndefinedColor.
inline constexpr int kUndefinedColor = -1;

/// Smallest k with 2^k >= n (n >= 1): the round count of the log-depth
/// collectives. Exposed so tests and benches can assert message counts.
constexpr int ceil_log2(int n) {
  int k = 0;
  while ((1 << k) < n) ++k;
  return k;
}

/// Largest power of two <= n (n >= 1).
constexpr int floor_pow2(int n) {
  int p = 1;
  while (p * 2 <= n) p *= 2;
  return p;
}

namespace detail {

// Reserved (negative) tags, one per collective. Distinct tags keep different
// collective kinds out of each other's matched streams; repeats of the SAME
// kind are kept straight by per-(src, tag) FIFO delivery plus uniform
// program order — see the tag-reuse note in communicator.cpp.
inline constexpr int kTagBarrier = -2;
inline constexpr int kTagBcast = -4;
inline constexpr int kTagGather = -5;
inline constexpr int kTagAlltoall = -6;
inline constexpr int kTagAllgather = -7;
inline constexpr int kTagReduce = -8;
inline constexpr int kTagAllreduce = -9;

/// Shared state of a communicator: the member list (as universe-global
/// ids), one mailbox per member, per-communicator traffic counters and the
/// rendezvous board used to implement split() collectively.
struct CommState {
  CommState(Universe* u, std::vector<int> member_ids);

  Universe* uni;
  std::vector<int> members;  // universe ids; index == rank in this comm
  std::vector<std::unique_ptr<Mailbox>> boxes;

  std::atomic<std::uint64_t> messages{0};
  std::atomic<std::uint64_t> bytes{0};

  // --- split rendezvous board ---------------------------------------------
  enum class Phase { Arrive, Pickup };
  struct SplitEntry {
    int color = kUndefinedColor;
    int key = 0;
  };
  std::mutex split_mu;
  std::condition_variable split_cv;
  Phase phase = Phase::Arrive;
  int arrived = 0;
  int picked = 0;
  // How many ranks must pick up this round's results before the board
  // resets: size() for split(), the arrived quorum for split_live().
  int pickers = 0;
  std::vector<SplitEntry> entries;
  // Which ranks arrived this round; split_live() treats absentees (dead
  // ranks) as if they had passed kUndefinedColor.
  std::vector<char> present;
  // Per-rank result: the new comm state (null for undefined color) + rank.
  std::vector<std::pair<std::shared_ptr<CommState>, int>> results;
};

}  // namespace detail

/// A rank's handle onto a communicator. Cheap to copy; all copies held by
/// the same thread refer to the same rank. The API deliberately mirrors the
/// MPI routines the CCA prototypes were built on: matched point-to-point
/// send/recv with tags, non-blocking variants, and the collective set used
/// by the redistribution and PRMI layers (barrier, bcast, gather, allgather,
/// alltoall(v), reduce, allreduce, split). Every collective is log-depth
/// (docs/PERFORMANCE.md): dissemination barrier, binomial-tree
/// bcast/gather/reduce, recursive-doubling allgather/allreduce.
///
/// User code must use tags >= 0; negative tags are reserved for the
/// collective implementations.
class Communicator {
 public:
  Communicator() = default;  // null communicator

  [[nodiscard]] bool is_null() const { return st_ == nullptr; }
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return static_cast<int>(st_->members.size()); }

  /// Universe-global id of a member rank (used by distributed frameworks to
  /// route between components living on disjoint rank sets).
  [[nodiscard]] int world_rank(int r) const { return st_->members.at(r); }

  [[nodiscard]] Universe* universe() const { return st_->uni; }

  // --- point-to-point -------------------------------------------------------
  /// Move-through send: the payload block is handed to the destination
  /// mailbox without copying a byte. This is the primitive; the span/vector
  /// overloads below exist for callers that do not own a Buffer yet.
  void send(int dst, int tag, Buffer data);
  /// Copies the span into a pooled buffer (counted in rt.bytes_copied).
  void send(int dst, int tag, std::span<const std::byte> data);
  /// Adopts the vector's storage (zero copy).
  void send(int dst, int tag, std::vector<std::byte> data) {
    send(dst, tag, Buffer(std::move(data)));
  }

  template <class T>
    requires std::is_trivially_copyable_v<T>
  void send_span(int dst, int tag, std::span<const T> values) {
    send(dst, tag, as_bytes_span(values));
  }

  template <class T>
    requires std::is_trivially_copyable_v<T>
  void send_value(int dst, int tag, const T& value) {
    send(dst, tag, to_bytes(value));
  }

  /// Blocking matched receive; wildcards kAnySource / kAnyTag allowed.
  /// `timeout_ms` is the per-call deadline: < 0 selects the spawn-wide
  /// default (SpawnOptions::default_recv_timeout_ms), 0 waits forever, > 0
  /// throws TimeoutError when no match arrived in time.
  Message recv(int src, int tag, int timeout_ms = -1);

  /// Receive into a fresh typed vector. This is necessarily one deep copy
  /// (counted in rt.bytes_copied); callers on the hot path should recv() and
  /// alias the payload via Buffer::view<T>() instead. `timeout_ms` is the
  /// per-call deadline, with the same semantics as recv().
  template <class T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> recv_vector(int src, int tag, int* actual_src = nullptr,
                             int timeout_ms = -1) {
    Message m = recv(src, tag, timeout_ms);
    if (actual_src) *actual_src = m.src;
    if (m.payload.size() % sizeof(T) != 0)
      throw UsageError("recv_vector: payload size not a multiple of sizeof(T)");
    std::vector<T> out(m.payload.size() / sizeof(T));
    std::memcpy(out.data(), m.payload.data(), m.payload.size());
    note_bytes_copied(m.payload.size());
    return out;
  }

  template <class T>
    requires std::is_trivially_copyable_v<T>
  T recv_value(int src, int tag, int* actual_src = nullptr,
               int timeout_ms = -1) {
    Message m = recv(src, tag, timeout_ms);
    if (actual_src) *actual_src = m.src;
    UnpackBuffer u(m.payload);
    return u.unpack<T>();
  }

  Request isend(int dst, int tag, Buffer data);
  Request isend(int dst, int tag, std::span<const std::byte> data);
  Request irecv(int src, int tag);

  /// Blocking receive matched on (src, tag) and a payload predicate — the
  /// envelope-peek frameworks need to pull a specific logical message out
  /// of a shared tag stream (MPI_Mprobe analogue).
  Message recv_matching(int src, int tag,
                        const std::function<bool(const Message&)>& pred,
                        int timeout_ms = -1);

  /// Non-blocking probe for a matching queued message.
  bool probe(int src, int tag);
  /// Non-blocking matched receive.
  std::optional<Message> try_recv(int src, int tag);

  // --- collectives ----------------------------------------------------------
  /// Dissemination barrier: ceil(log2 n) rounds, one send per rank per round
  /// (n * ceil(log2 n) messages) instead of the old gather-to-root +
  /// broadcast-release whose root serialized 2(n-1) matched operations.
  void barrier();

  /// Root's payload is returned on every rank. Binomial tree: the root
  /// reaches everyone in ceil(log2 n) rounds and every hop forwards the SAME
  /// refcounted payload block — a bcast is O(1) deep copies (in fact zero)
  /// regardless of the communicator size, still n-1 messages total.
  Buffer bcast(Buffer data, int root);

  template <class T>
    requires std::is_trivially_copyable_v<T>
  T bcast_value(const T& value, int root) {
    auto bytes = bcast(rank() == root ? Buffer(to_bytes(value)) : Buffer{},
                       root);
    UnpackBuffer u(bytes);
    return u.unpack<T>();
  }

  template <class T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> bcast_vector(std::vector<T> values, int root) {
    PackBuffer b;
    if (rank() == root) b.pack(values);
    auto bytes = bcast(std::move(b).take_buffer(), root);
    UnpackBuffer u(bytes);
    return u.unpack_vector<T>();
  }

  /// Gather per-rank payloads at root. On root the result has size() entries
  /// (index == source rank); on other ranks it is empty. Binomial tree:
  /// interior nodes bundle their subtree's entries into one pooled payload,
  /// so the root performs ceil(log2 n) matched receives instead of n-1
  /// (still n-1 messages total; interior bundling trades O(B log n) extra
  /// bytes on the wire for the log-depth critical path).
  std::vector<Buffer> gather(Buffer data, int root);

  /// Everyone gets every rank's payload (index == source rank). Recursive
  /// doubling when size() is a power of two (ceil(log2 n) rounds,
  /// n * log2 n messages); otherwise a binomial gather + bcast of the
  /// bundle (2 ceil(log2 n) rounds, 2(n-1) messages).
  std::vector<Buffer> allgather(Buffer data);

  template <class T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> allgather_value(const T& value) {
    auto parts = allgather(to_bytes(value));
    std::vector<T> out;
    out.reserve(parts.size());
    for (auto& p : parts) {
      UnpackBuffer u(p);
      out.push_back(u.unpack<T>());
    }
    return out;
  }

  /// Personalized all-to-all: outgoing[i] goes to rank i; the result's entry
  /// j is what rank j sent to us. Naturally "v" — entries may differ in size.
  /// Outgoing buffers are moved (or refcount-shared if the caller keeps a
  /// handle), never deep-copied. Receives drain in arrival order behind an
  /// owed-peer predicate, so back-to-back alltoalls on one communicator can
  /// never steal each other's messages (see communicator.cpp).
  std::vector<Buffer> alltoall(std::vector<Buffer> outgoing);

  /// Element-wise reduction of equal-length spans over a binomial tree
  /// (n-1 messages, ceil(log2 n) rounds): on the root, returns the combined
  /// vector; on other ranks, returns empty. Partial results travel packed in
  /// pooled buffers and are combined in place. `op` must be associative and
  /// commutative (subtree grouping is rank-order but rotated by the root, so
  /// floating-point rounding may differ from a serial left fold).
  template <class T, class BinaryOp>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> reduce(std::span<const T> local, BinaryOp op, int root) {
    const int n = size();
    if (root < 0 || root >= n) throw UsageError("reduce: root rank out of range");
    trace::Span span("rt.reduce", "rt", local.size_bytes());
    Buffer acc = Buffer::copy_of(as_bytes_span(local));  // pooled accumulator
    const int vrank = (rank_ - root + n) % n;
    int mask = 1;
    while (mask < n && (vrank & mask) == 0) {
      const int child_v = vrank + mask;
      if (child_v < n) {
        Message m = coll_recv((child_v + root) % n, detail::kTagReduce);
        combine_into<T>(acc, m.payload, op, "reduce");
      }
      mask <<= 1;
    }
    if (vrank != 0) {
      // Parent: clear the lowest set bit of the (root-relative) rank.
      raw_send(((vrank & (vrank - 1)) + root) % n, detail::kTagReduce,
               std::move(acc), "reduce");
      return {};
    }
    auto v = acc.view<T>();
    note_bytes_copied(acc.size());
    return std::vector<T>(v.begin(), v.end());
  }

  /// Element-wise all-reduce of equal-length spans; every rank returns the
  /// combined vector. Recursive doubling when size() is a power of two —
  /// exactly ceil(log2 n) rounds, n * log2 n messages — with a binomial
  /// fold-in/fold-out for the ranks above the largest power of two
  /// otherwise. Same op requirements as reduce().
  template <class T, class BinaryOp>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> allreduce(std::span<const T> local, BinaryOp op) {
    const int n = size();
    const std::size_t count = local.size();
    if (n == 1) return std::vector<T>(local.begin(), local.end());
    trace::Span span("rt.allreduce", "rt", local.size_bytes());
    Buffer acc = Buffer::copy_of(as_bytes_span(local));
    const int pof2 = floor_pow2(n);
    // Fold-in: ranks >= pof2 ship their contribution to rank - pof2 and
    // wait for the combined result at the end.
    if (rank_ >= pof2) {
      raw_send(rank_ - pof2, detail::kTagAllreduce, std::move(acc),
               "allreduce");
      Message m = coll_recv(rank_ - pof2, detail::kTagAllreduce);
      auto v = m.payload.view<T>();
      if (v.size() != count)
        throw UsageError("allreduce: span lengths differ across ranks");
      note_bytes_copied(m.payload.size());
      return std::vector<T>(v.begin(), v.end());
    }
    if (rank_ + pof2 < n) {
      Message m = coll_recv(rank_ + pof2, detail::kTagAllreduce);
      combine_into<T>(acc, m.payload, op, "allreduce");
    }
    // Recursive doubling among the power-of-two group: partners exchange
    // accumulators (refcount-shared into the mailbox, never deep-copied) and
    // combine into a fresh pooled block each round.
    for (int mask = 1; mask < pof2; mask <<= 1) {
      const int partner = rank_ ^ mask;
      raw_send(partner, detail::kTagAllreduce, acc, "allreduce");
      Message m = coll_recv(partner, detail::kTagAllreduce);
      auto theirs = m.payload.view<T>();
      if (theirs.size() != count)
        throw UsageError("allreduce: span lengths differ across ranks");
      Buffer next = Buffer::allocate(count * sizeof(T));
      auto mine = acc.view<T>();
      T* out = reinterpret_cast<T*>(next.mutable_data());
      // Keep lower ranks as the left operand so every rank folds in the
      // same order (associativity then makes the results identical).
      const std::span<const T> lo = rank_ < partner ? mine : theirs;
      const std::span<const T> hi = rank_ < partner ? theirs : mine;
      for (std::size_t i = 0; i < count; ++i) out[i] = op(lo[i], hi[i]);
      acc = std::move(next);
    }
    // Fold-out: hand the result back to the rank folded in above. The block
    // is shared, not copied.
    if (rank_ + pof2 < n)
      raw_send(rank_ + pof2, detail::kTagAllreduce, acc, "allreduce");
    auto v = acc.view<T>();
    note_bytes_copied(acc.size());
    return std::vector<T>(v.begin(), v.end());
  }

  /// Scalar all-reduce, log-depth via the span form.
  template <class T, class BinaryOp>
    requires std::is_trivially_copyable_v<T>
  T allreduce(const T& value, BinaryOp op) {
    return allreduce(std::span<const T>(&value, 1), op)[0];
  }

  // --- communicator management ----------------------------------------------
  /// Collective. Ranks with equal color land in the same new communicator,
  /// ordered by (key, old rank). Color kUndefinedColor yields a null handle.
  Communicator split(int color, int key);

  /// split() whose rendezvous completes once every member the universe does
  /// NOT report dead (Universe::is_dead) has arrived — the only collective
  /// that can succeed on a communicator containing fault-killed ranks, and
  /// the entry point of cohort recovery (docs/REDUNDANCY.md). Dead members
  /// are treated as if they had passed kUndefinedColor; a member that dies
  /// mid-rendezvous releases the survivors on the next watchdog tick.
  /// `timeout_ms` bounds the whole rendezvous (< 0 = spawn default,
  /// 0 = no deadline).
  Communicator split_live(int color, int key, int timeout_ms = -1);

  Communicator dup() { return split(0, rank()); }

  /// Collective rank admission/retirement (the elastic-rescale splice,
  /// docs/RESCALING.md): every rank passes the SAME `members` list — ranks
  /// of this communicator, no duplicates — and the listed ranks land in the
  /// new communicator with new rank == index in the list (the list's order
  /// defines the cohort order, ascending or not). Ranks not listed are
  /// retired: they participate in the call but get a null handle.
  Communicator subset(const std::vector<int>& members);

  /// Epoch fence: a barrier that bounds the traffic epochs of the layer
  /// above. Sends in this runtime complete eagerly into the destination
  /// mailbox, so once every rank reaches the fence, all pre-fence sends
  /// have been delivered (matched or queued) — post-fence traffic can
  /// switch descriptors/tags safely. Returns this rank's wait at the fence
  /// in nanoseconds (its share of the drain stall, fed by callers into the
  /// rescale.stall_ns counter).
  std::int64_t epoch_fence();

  [[nodiscard]] StatsSnapshot stats() const {
    return {st_->messages.load(std::memory_order_relaxed),
            st_->bytes.load(std::memory_order_relaxed)};
  }

  // Internal: used by spawn() to mint the world communicator.
  static Communicator attach(std::shared_ptr<detail::CommState> st, int rank) {
    Communicator c;
    c.st_ = std::move(st);
    c.rank_ = rank;
    return c;
  }

 private:
  Communicator split_impl(int color, int key, bool live_only, int timeout_ms);
  void check_dst(int dst, const char* op) const;
  void check_user_tag(int tag) const;
  void raw_send(int dst, int tag, Buffer data, const char* op = "send");
  /// Blocking matched receive on a reserved collective tag.
  Message coll_recv(int src, int tag) { return my_box().get(src, tag); }
  Mailbox& my_box() const { return *st_->boxes[rank_]; }

  /// acc[i] = op(acc[i], theirs[i]) in place; acc must still be the sole
  /// owner of its block (it is: accumulators are shared only when sent).
  template <class T, class BinaryOp>
  void combine_into(Buffer& acc, const Buffer& theirs, BinaryOp op,
                    const char* what) {
    auto t = theirs.view<T>();
    if (theirs.size() != acc.size())
      throw UsageError(std::string(what) +
                       ": span lengths differ across ranks");
    T* a = reinterpret_cast<T*>(acc.mutable_data());
    for (std::size_t i = 0; i < t.size(); ++i) a[i] = op(a[i], t[i]);
  }

  std::shared_ptr<detail::CommState> st_;
  int rank_ = -1;
};

}  // namespace mxn::rt
