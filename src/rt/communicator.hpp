#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "rt/error.hpp"
#include "rt/mailbox.hpp"
#include "rt/message.hpp"
#include "rt/request.hpp"
#include "rt/serialize.hpp"
#include "rt/universe.hpp"

namespace mxn::rt {

class Communicator;

/// Returned by split() for ranks that pass kUndefinedColor.
inline constexpr int kUndefinedColor = -1;

namespace detail {

/// Shared state of a communicator: the member list (as universe-global
/// ids), one mailbox per member, per-communicator traffic counters and the
/// rendezvous board used to implement split() collectively.
struct CommState {
  CommState(Universe* u, std::vector<int> member_ids);

  Universe* uni;
  std::vector<int> members;  // universe ids; index == rank in this comm
  std::vector<std::unique_ptr<Mailbox>> boxes;

  std::atomic<std::uint64_t> messages{0};
  std::atomic<std::uint64_t> bytes{0};

  // --- split rendezvous board ---------------------------------------------
  enum class Phase { Arrive, Pickup };
  struct SplitEntry {
    int color = kUndefinedColor;
    int key = 0;
  };
  std::mutex split_mu;
  std::condition_variable split_cv;
  Phase phase = Phase::Arrive;
  int arrived = 0;
  int picked = 0;
  std::vector<SplitEntry> entries;
  // Per-rank result: the new comm state (null for undefined color) + rank.
  std::vector<std::pair<std::shared_ptr<CommState>, int>> results;
};

}  // namespace detail

/// A rank's handle onto a communicator. Cheap to copy; all copies held by
/// the same thread refer to the same rank. The API deliberately mirrors the
/// MPI routines the CCA prototypes were built on: matched point-to-point
/// send/recv with tags, non-blocking variants, and the collective set used
/// by the redistribution and PRMI layers (barrier, bcast, gather, allgather,
/// alltoall(v), reduce, split).
///
/// User code must use tags >= 0; negative tags are reserved for the
/// collective implementations.
class Communicator {
 public:
  Communicator() = default;  // null communicator

  [[nodiscard]] bool is_null() const { return st_ == nullptr; }
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return static_cast<int>(st_->members.size()); }

  /// Universe-global id of a member rank (used by distributed frameworks to
  /// route between components living on disjoint rank sets).
  [[nodiscard]] int world_rank(int r) const { return st_->members.at(r); }

  [[nodiscard]] Universe* universe() const { return st_->uni; }

  // --- point-to-point -------------------------------------------------------
  /// Move-through send: the payload block is handed to the destination
  /// mailbox without copying a byte. This is the primitive; the span/vector
  /// overloads below exist for callers that do not own a Buffer yet.
  void send(int dst, int tag, Buffer data);
  /// Copies the span into a pooled buffer (counted in rt.bytes_copied).
  void send(int dst, int tag, std::span<const std::byte> data);
  /// Adopts the vector's storage (zero copy).
  void send(int dst, int tag, std::vector<std::byte> data) {
    send(dst, tag, Buffer(std::move(data)));
  }

  template <class T>
    requires std::is_trivially_copyable_v<T>
  void send_span(int dst, int tag, std::span<const T> values) {
    send(dst, tag, as_bytes_span(values));
  }

  template <class T>
    requires std::is_trivially_copyable_v<T>
  void send_value(int dst, int tag, const T& value) {
    send(dst, tag, to_bytes(value));
  }

  /// Blocking matched receive; wildcards kAnySource / kAnyTag allowed.
  /// `timeout_ms` is the per-call deadline: < 0 selects the spawn-wide
  /// default (SpawnOptions::default_recv_timeout_ms), 0 waits forever, > 0
  /// throws TimeoutError when no match arrived in time.
  Message recv(int src, int tag, int timeout_ms = -1);

  /// Receive into a fresh typed vector. This is necessarily one deep copy
  /// (counted in rt.bytes_copied); callers on the hot path should recv() and
  /// alias the payload via Buffer::view<T>() instead.
  template <class T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> recv_vector(int src, int tag, int* actual_src = nullptr) {
    Message m = recv(src, tag);
    if (actual_src) *actual_src = m.src;
    if (m.payload.size() % sizeof(T) != 0)
      throw UsageError("recv_vector: payload size not a multiple of sizeof(T)");
    std::vector<T> out(m.payload.size() / sizeof(T));
    std::memcpy(out.data(), m.payload.data(), m.payload.size());
    note_bytes_copied(m.payload.size());
    return out;
  }

  template <class T>
    requires std::is_trivially_copyable_v<T>
  T recv_value(int src, int tag, int* actual_src = nullptr) {
    Message m = recv(src, tag);
    if (actual_src) *actual_src = m.src;
    UnpackBuffer u(m.payload);
    return u.unpack<T>();
  }

  Request isend(int dst, int tag, Buffer data);
  Request isend(int dst, int tag, std::span<const std::byte> data);
  Request irecv(int src, int tag);

  /// Blocking receive matched on (src, tag) and a payload predicate — the
  /// envelope-peek frameworks need to pull a specific logical message out
  /// of a shared tag stream (MPI_Mprobe analogue).
  Message recv_matching(int src, int tag,
                        const std::function<bool(const Message&)>& pred,
                        int timeout_ms = -1);

  /// Non-blocking probe for a matching queued message.
  bool probe(int src, int tag);
  /// Non-blocking matched receive.
  std::optional<Message> try_recv(int src, int tag);

  // --- collectives ----------------------------------------------------------
  void barrier();

  /// Root's payload is returned on every rank. All destinations share ONE
  /// refcounted payload block — a bcast is O(1) deep copies regardless of
  /// the communicator size.
  Buffer bcast(Buffer data, int root);

  template <class T>
    requires std::is_trivially_copyable_v<T>
  T bcast_value(const T& value, int root) {
    auto bytes = bcast(rank() == root ? Buffer(to_bytes(value)) : Buffer{},
                       root);
    UnpackBuffer u(bytes);
    return u.unpack<T>();
  }

  template <class T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> bcast_vector(std::vector<T> values, int root) {
    PackBuffer b;
    if (rank() == root) b.pack(values);
    auto bytes = bcast(std::move(b).take_buffer(), root);
    UnpackBuffer u(bytes);
    return u.unpack_vector<T>();
  }

  /// Gather per-rank payloads at root. On root the result has size() entries
  /// (index == source rank); on other ranks it is empty.
  std::vector<Buffer> gather(Buffer data, int root);

  std::vector<Buffer> allgather(Buffer data);

  template <class T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> allgather_value(const T& value) {
    auto parts = allgather(to_bytes(value));
    std::vector<T> out;
    out.reserve(parts.size());
    for (auto& p : parts) {
      UnpackBuffer u(p);
      out.push_back(u.unpack<T>());
    }
    return out;
  }

  /// Personalized all-to-all: outgoing[i] goes to rank i; the result's entry
  /// j is what rank j sent to us. Naturally "v" — entries may differ in size.
  /// Outgoing buffers are moved (or refcount-shared if the caller keeps a
  /// handle), never deep-copied.
  std::vector<Buffer> alltoall(std::vector<Buffer> outgoing);

  template <class T, class BinaryOp>
    requires std::is_trivially_copyable_v<T>
  T allreduce(const T& value, BinaryOp op) {
    auto all = allgather_value(value);
    T acc = all[0];
    for (std::size_t i = 1; i < all.size(); ++i) acc = op(acc, all[i]);
    return acc;
  }

  // --- communicator management ----------------------------------------------
  /// Collective. Ranks with equal color land in the same new communicator,
  /// ordered by (key, old rank). Color kUndefinedColor yields a null handle.
  Communicator split(int color, int key);

  Communicator dup() { return split(0, rank()); }

  [[nodiscard]] StatsSnapshot stats() const {
    return {st_->messages.load(std::memory_order_relaxed),
            st_->bytes.load(std::memory_order_relaxed)};
  }

  // Internal: used by spawn() to mint the world communicator.
  static Communicator attach(std::shared_ptr<detail::CommState> st, int rank) {
    Communicator c;
    c.st_ = std::move(st);
    c.rank_ = rank;
    return c;
  }

 private:
  void check_dst(int dst) const;
  void check_user_tag(int tag) const;
  void raw_send(int dst, int tag, Buffer data);
  Mailbox& my_box() const { return *st_->boxes[rank_]; }

  std::shared_ptr<detail::CommState> st_;
  int rank_ = -1;
};

}  // namespace mxn::rt
