#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "prmi/value.hpp"
#include "rt/communicator.hpp"
#include "sidl/types.hpp"

namespace mxn::prmi {

/// Information the framework hands a method handler at invocation time.
struct CalleeContext {
  rt::Communicator cohort;  // the callee component's cohort
  int caller_count = 0;     // M, the caller cohort size
  bool collective = true;   // false for independent (one-to-one) calls
  int seq = 0;              // per-connection invocation sequence number

  /// Pull a DEFERRED parallel `in` parameter into `target` — the second
  /// §2.4 strategy: "pass to the provides side a reference to the data
  /// object on the uses side, and delay the actual transfer of data until
  /// the provides side has specified its layout." Available only for
  /// parallel in-parameters without a pre-registered target; collective
  /// over the callee cohort (every rank must pull the same parameters in
  /// the same order, each with its own local target binding). The callers
  /// are parked in the call serving pull requests until the return.
  std::function<void(int param_index, const core::FieldRegistration& target)>
      pull;
};

/// The provider-side implementation object behind a provides port: an SPMD
/// object whose handlers run on every cohort rank for collective calls and
/// on a single rank for independent calls.
///
/// Handlers receive the argument vector in signature order: simple in/inout
/// values are populated; parallel parameters appear as ParallelRef onto the
/// pre-registered target array, whose contents have already been
/// redistributed into place for in/inout. Handlers write out/inout simple
/// results back into `args` and return the method's return Value.
class Servant {
 public:
  using Handler =
      std::function<Value(CalleeContext&, std::vector<Value>& args)>;

  explicit Servant(sidl::Interface iface) : iface_(std::move(iface)) {}

  [[nodiscard]] const sidl::Interface& interface_desc() const {
    return iface_;
  }

  /// Attach the implementation of a method. Throws if the method is not in
  /// the interface.
  void bind(const std::string& method, Handler h) {
    (void)iface_.method(method);  // validates
    handlers_[method] = std::move(h);
  }

  /// Pre-register the local target array for a parallel parameter — the
  /// "specify the layout using a special framework service before the call
  /// is received" strategy of §2.4. Must be done on every cohort rank
  /// before the first call of `method` arrives.
  void set_parallel_target(const std::string& method,
                           const std::string& param,
                           core::FieldRegistration binding) {
    const auto& m = iface_.method(method);
    for (const auto& p : m.params) {
      if (p.name != param) continue;
      if (!p.type.parallel)
        throw rt::UsageError("parameter '" + param + "' of '" + method +
                             "' is not parallel");
      targets_[method + "." + param] =
          std::make_shared<core::FieldRegistration>(std::move(binding));
      return;
    }
    throw rt::UsageError("method '" + method + "' has no parameter '" +
                         param + "'");
  }

  [[nodiscard]] const core::FieldRegistration* parallel_target(
      const std::string& method, const std::string& param) const {
    auto it = targets_.find(method + "." + param);
    return it == targets_.end() ? nullptr : it->second.get();
  }

  [[nodiscard]] const Handler& handler(const std::string& method) const {
    auto it = handlers_.find(method);
    if (it == handlers_.end())
      throw rt::UsageError("no handler bound for method '" + method + "'");
    return it->second;
  }

 private:
  sidl::Interface iface_;
  std::map<std::string, Handler> handlers_;
  std::map<std::string, std::shared_ptr<core::FieldRegistration>> targets_;
};

}  // namespace mxn::prmi
